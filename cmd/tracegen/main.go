// Command tracegen dumps the reference stream of a synthetic benchmark
// model as CSV (address, write flag, instruction gap) — useful for
// inspecting the workload models or feeding other simulators.
//
// Usage:
//
//	tracegen -bench 433 -n 1000            # 1000 refs of the milc model
//	tracegen -bench 456 -n 500 -scale 1    # at the paper's absolute sizes
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"ascc"
	"ascc/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

// run parses args and writes the trace to stdout or -o; main stays a thin
// exit-code wrapper so tests can pin the output.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		bench  = fs.Int("bench", 433, "SPEC benchmark number (Table 3)")
		n      = fs.Uint64("n", 1000, "references to emit")
		seed   = fs.Uint64("seed", 1, "random seed")
		scale  = fs.Int("scale", 8, "geometry scale divisor")
		base   = fs.Uint64("base", 0, "base address offset (give each core's trace a disjoint region, e.g. 1<<36)")
		format = fs.String("format", "csv", "output format: csv or bin (the compact binary trace format)")
		out    = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, err := ascc.BenchmarkByID(*bench)
	if err != nil {
		return err
	}
	gen := p.NewGenerator(*seed, *base, *scale)

	dst := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		dst = f
	}

	switch *format {
	case "bin":
		tw := trace.NewWriter(dst)
		for i := uint64(0); i < *n; i++ {
			if err := tw.Write(gen.Next()); err != nil {
				return err
			}
		}
		return tw.Flush()
	case "csv":
		w := bufio.NewWriter(dst)
		fmt.Fprintf(w, "# %s (%d): %s, %.0f refs/kinstr\n", p.Name, p.ID, p.Category, p.RefsPerKInstr)
		fmt.Fprintln(w, "addr,write,gap")
		for i := uint64(0); i < *n; i++ {
			ref := gen.Next()
			wr := 0
			if ref.Write {
				wr = 1
			}
			fmt.Fprintf(w, "%#x,%d,%d\n", ref.Addr, wr, ref.Gap)
		}
		return w.Flush()
	default:
		return fmt.Errorf("unknown format %q (want csv or bin)", *format)
	}
}
