// Command tracegen dumps the reference stream of a synthetic benchmark
// model as CSV (address, write flag, instruction gap) — useful for
// inspecting the workload models or feeding other simulators.
//
// Usage:
//
//	tracegen -bench 433 -n 1000            # 1000 refs of the milc model
//	tracegen -bench 456 -n 500 -scale 1    # at the paper's absolute sizes
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"ascc"
	"ascc/internal/trace"
)

func main() {
	var (
		bench  = flag.Int("bench", 433, "SPEC benchmark number (Table 3)")
		n      = flag.Uint64("n", 1000, "references to emit")
		seed   = flag.Uint64("seed", 1, "random seed")
		scale  = flag.Int("scale", 8, "geometry scale divisor")
		base   = flag.Uint64("base", 0, "base address offset (give each core's trace a disjoint region, e.g. 1<<36)")
		format = flag.String("format", "csv", "output format: csv or bin (the compact binary trace format)")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	p, err := ascc.BenchmarkByID(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	gen := p.NewGenerator(*seed, *base, *scale)

	var dst *os.File = os.Stdout
	if *out != "" {
		dst, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer dst.Close()
	}

	switch *format {
	case "bin":
		tw := trace.NewWriter(dst)
		for i := uint64(0); i < *n; i++ {
			if err := tw.Write(gen.Next()); err != nil {
				fmt.Fprintln(os.Stderr, "tracegen:", err)
				os.Exit(1)
			}
		}
		if err := tw.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
	case "csv":
		w := bufio.NewWriter(dst)
		defer w.Flush()
		fmt.Fprintf(w, "# %s (%d): %s, %.0f refs/kinstr\n", p.Name, p.ID, p.Category, p.RefsPerKInstr)
		fmt.Fprintln(w, "addr,write,gap")
		for i := uint64(0); i < *n; i++ {
			ref := gen.Next()
			wr := 0
			if ref.Write {
				wr = 1
			}
			fmt.Fprintf(w, "%#x,%d,%d\n", ref.Addr, wr, ref.Gap)
		}
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown format %q (want csv or bin)\n", *format)
		os.Exit(1)
	}
}
