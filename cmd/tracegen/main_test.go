package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ascc/internal/trace"
)

// TestRunCSVGolden pins the CSV output of a small deterministic run: the
// model header, the column header and the exact first references of milc's
// stream at seed 1 (the flag default).
func TestRunCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bench", "433", "-n", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	want := `# milc (433): streaming, 180 refs/kinstr
addr,write,gap
0x4000140,0,4
0x4000260,1,5
0x0,0,4
0x5000000,0,5
0x4000220,0,4
`
	if buf.String() != want {
		t.Errorf("CSV output drifted:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

// TestRunBinaryRoundTrip writes a binary trace to -o and reads it back:
// the records must match the CSV rendering of the same generator state.
func TestRunBinaryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.trc")
	var buf bytes.Buffer
	if err := run([]string{"-bench", "456", "-n", "64", "-seed", "9", "-format", "bin", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("-o run still wrote %d bytes to stdout", buf.Len())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	refs, err := trace.ReadBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 64 {
		t.Fatalf("%d records, want 64", len(refs))
	}
	// Same bench/seed/count via CSV must describe the same references.
	var csv bytes.Buffer
	if err := run([]string{"-bench", "456", "-n", "64", "-seed", "9"}, &csv); err != nil {
		t.Fatal(err)
	}
	parsed, err := trace.ReadCSV(&csv)
	if err != nil {
		t.Fatal(err)
	}
	for i := range refs {
		if refs[i] != parsed[i] {
			t.Fatalf("record %d differs between bin (%+v) and csv (%+v)", i, refs[i], parsed[i])
		}
	}
}

// TestRunErrors covers the rejection paths: unknown benchmark, unknown
// format, bad flag value.
func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown bench", []string{"-bench", "999"}, "benchmark"},
		{"unknown format", []string{"-format", "xml"}, "unknown format"},
		{"bad flag", []string{"-n", "minusfive"}, "invalid"},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		err := run(tc.args, &buf)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
