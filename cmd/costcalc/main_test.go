package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunDefaultGeometry pins the stdout of a bare `costcalc` run: the
// baseline geometry line and the four report sections, plus the paper's
// headline 20508-bit AVGCC overhead (Table 5).
func TestRunDefaultGeometry(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "baseline: 4096 sets, 32768 lines, 30-bit tag entries, 120 kB tags + 1024 kB data = 1144 kB\n") {
		t.Errorf("baseline line drifted:\n%s", out[:min(len(out), 120)])
	}
	for _, section := range []string{"--- ASCC ---", "--- AVGCC ---", "--- QoS-AVGCC ---", "--- DSR ---"} {
		if !strings.Contains(out, section) {
			t.Errorf("missing section %q", section)
		}
	}
	if !strings.Contains(out, "total overhead: 20508 bits (2563.5 B), 0.22% of the baseline") {
		t.Errorf("AVGCC Table-5 overhead line missing:\n%s", out)
	}
}

// TestRunFlagsChangeGeometry checks the flags reach the geometry: a 4MB
// 16-way cache has 8192 sets.
func TestRunFlagsChangeGeometry(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-size", "4194304", "-ways", "16"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "baseline: 8192 sets,") {
		t.Errorf("geometry flags not honoured:\n%s", buf.String()[:min(buf.Len(), 120)])
	}
}

// TestRunRejectsBadGeometry checks non-power-of-two set counts and bad
// flags error instead of printing garbage.
func TestRunRejectsBadGeometry(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-size", "1000000"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "power of two") {
		t.Errorf("non-power-of-two sets accepted: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("error path still wrote %d bytes of output", buf.Len())
	}
	if err := run([]string{"-ways", "notanumber"}, &buf); err == nil {
		t.Error("bad flag value accepted")
	}
}
