// Command costcalc prints the storage-cost analysis of the paper's §7
// (Table 5) for a configurable cache geometry: the baseline tag/data store
// and the overhead of ASCC, AVGCC (optionally counter-limited), the
// QoS-aware variant and DSR.
//
// Usage:
//
//	costcalc                       # the paper's 1MB/8-way/32B, 42-bit geometry
//	costcalc -size 4194304 -ways 16
//	costcalc -maxcounters 128      # the §7 limited-counter AVGCC
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ascc/internal/cost"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "costcalc:", err)
		os.Exit(1)
	}
}

// run parses args and writes the analysis to stdout; main stays a thin
// exit-code wrapper so tests can pin the output.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("costcalc", flag.ContinueOnError)
	var (
		size        = fs.Int("size", 1<<20, "cache size in bytes")
		ways        = fs.Int("ways", 8, "associativity")
		line        = fs.Int("line", 32, "line size in bytes")
		addr        = fs.Int("addr", 42, "physical address bits")
		maxCounters = fs.Int("maxcounters", 0, "limit AVGCC counters (0 = one per set)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g := cost.CacheGeometry{SizeBytes: *size, Ways: *ways, LineBytes: *line, AddressBits: *addr}
	if g.Sets() <= 0 || g.Sets()&(g.Sets()-1) != 0 {
		return fmt.Errorf("geometry yields %d sets (need a power of two)", g.Sets())
	}

	fmt.Fprintf(stdout, "baseline: %d sets, %d lines, %d-bit tag entries, %.0f kB tags + %d kB data = %.0f kB\n\n",
		g.Sets(), g.Lines(), g.TagEntryBits(),
		float64(g.TagStoreBits())/8/1024, g.SizeBytes/1024,
		float64(g.BaselineTotalBits())/8/1024)

	for _, rep := range []struct {
		name string
		r    cost.Report
	}{
		{"ASCC", cost.ASCCReport(g)},
		{"AVGCC", cost.AVGCCReport(g, *maxCounters)},
		{"QoS-AVGCC", cost.QoSAVGCCReport(g)},
		{"DSR", cost.DSRReport(g)},
	} {
		fmt.Fprintf(stdout, "--- %s ---\n%s\n", rep.name, rep.r)
	}
	return nil
}
