// Command asccbench reproduces the paper's tables and figures from the
// command line.
//
// Usage:
//
//	asccbench -exp fig8                 # one experiment (see -list)
//	asccbench -exp all                  # the full evaluation, paper order
//	asccbench -exp fig7 -scale 4 -measure 8000000
//	asccbench -list                     # experiment index
//	asccbench -mix 445+456 -policy AVGCC  # a single ad-hoc run
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ascc"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (fig1..fig11, table1/4/5, shared, mt, prefetch, spills, limited, ablation) or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		scale   = flag.Int("scale", 8, "geometry scale divisor (1 = the paper's absolute sizes; slow)")
		warmup  = flag.Uint64("warmup", 0, "warmup instructions per core (0 = default for the scale)")
		measure = flag.Uint64("measure", 0, "measured instructions per core (0 = default for the scale)")
		seed    = flag.Uint64("seed", 1, "random seed")
		seeds   = flag.Int("seeds", 1, "with -mix: repeat over N seeds and report mean ± 95% CI")
		mix     = flag.String("mix", "", "ad-hoc mix to run, e.g. 445+456 or 445+401+444+456")
		policy  = flag.String("policy", "AVGCC", "policy for -mix/-trace (baseline, CC, DSR, DSR+DIP, DSR-3S, ECC, LRS, LMS, GMS, LMS+BIP, GMS+SABIP, ASCC, ASCC-2S, AVGCC, QoS-AVGCC)")
		format  = flag.String("format", "text", "experiment output format: text, csv or json")
		traces  = flag.String("trace", "", "comma-separated trace files (.trc binary or .csv), one per core, replayed under -policy")
	)
	flag.Parse()

	if *list {
		fmt.Println("experiments (paper artefact -> id):")
		for _, id := range ascc.ExperimentIDs() {
			fmt.Println("  " + id)
		}
		return
	}

	cfg := ascc.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	if *scale != 8 {
		// Scale the default budgets so reuse cycles complete (DESIGN.md §5).
		cfg.WarmupInstr = cfg.WarmupInstr * 8 / uint64(*scale)
		cfg.MeasureInstr = cfg.MeasureInstr * 8 / uint64(*scale)
	}
	if *warmup > 0 {
		cfg.WarmupInstr = *warmup
	}
	if *measure > 0 {
		cfg.MeasureInstr = *measure
	}

	switch {
	case *traces != "":
		if err := runTraces(cfg, *traces, *policy); err != nil {
			fail(err)
		}
	case *mix != "" && *seeds > 1:
		if err := runMixSeeds(cfg, *mix, *policy, *seeds); err != nil {
			fail(err)
		}
	case *mix != "":
		if err := runMix(cfg, *mix, *policy); err != nil {
			fail(err)
		}
	case *exp == "all":
		for _, id := range ascc.ExperimentIDs() {
			if err := runExperiment(cfg, id, *format); err != nil {
				fail(err)
			}
		}
	case *exp != "":
		if err := runExperiment(cfg, *exp, *format); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "asccbench:", err)
	os.Exit(1)
}

func runExperiment(cfg ascc.Config, id, format string) error {
	start := time.Now()
	res, err := ascc.RunExperiment(cfg, id)
	if err != nil {
		return err
	}
	switch format {
	case "csv":
		if err := res.Table.CSV(os.Stdout); err != nil {
			return err
		}
	case "json":
		if err := res.Table.JSON(os.Stdout); err != nil {
			return err
		}
	case "text":
		fmt.Println(res.Table)
		fmt.Printf("[%s finished in %.1fs]\n\n", id, time.Since(start).Seconds())
	default:
		return fmt.Errorf("unknown format %q (want text, csv or json)", format)
	}
	return nil
}

// runMixSeeds repeats one mix/policy comparison across several seeds.
func runMixSeeds(cfg ascc.Config, mixSpec, policy string, n int) error {
	mixIDs, err := parseMix(mixSpec)
	if err != nil {
		return err
	}
	runner := ascc.NewRunner(cfg)
	st, err := runner.SpeedupOverSeeds(mixIDs, ascc.Policy(policy), n)
	if err != nil {
		return err
	}
	fmt.Printf("mix %s under %s vs baseline over %d seeds:\n  weighted speedup %s\n",
		ascc.MixName(mixIDs), policy, n, st)
	return nil
}

// runTraces replays externally supplied trace files, one per core.
func runTraces(cfg ascc.Config, spec, policy string) error {
	paths := strings.Split(spec, ",")
	specs := make([]ascc.TraceSpec, len(paths))
	for i, p := range paths {
		specs[i] = ascc.TraceSpec{Path: strings.TrimSpace(p)}
	}
	runner := ascc.NewRunner(cfg)
	res, err := runner.RunTraces(specs, ascc.Policy(policy))
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d traces under %s\n", len(specs), policy)
	fmt.Printf("%-6s %-20s %8s %8s %10s %10s %8s\n",
		"core", "trace", "CPI", "MPKI", "spillsOut", "spillsIn", "AML")
	for i, c := range res.Cores {
		fmt.Printf("%-6d %-20s %8.3f %8.2f %10d %10d %8.1f\n",
			i, specs[i].Path, c.CPI(), c.MPKI(), c.SpillsOut, c.SpillsIn, c.AML())
	}
	return nil
}

// parseMix parses "445+456" into benchmark ids.
func parseMix(mixSpec string) ([]int, error) {
	parts := strings.Split(mixSpec, "+")
	mixIDs := make([]int, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad mix element %q: %w", p, err)
		}
		mixIDs = append(mixIDs, id)
	}
	return mixIDs, nil
}

func runMix(cfg ascc.Config, mixSpec, policy string) error {
	mixIDs, err := parseMix(mixSpec)
	if err != nil {
		return err
	}
	runner := ascc.NewRunner(cfg)
	base, err := runner.RunMix(mixIDs, ascc.Baseline)
	if err != nil {
		return err
	}
	res, err := runner.RunMix(mixIDs, ascc.Policy(policy))
	if err != nil {
		return err
	}
	alone, err := runner.AloneCPIs(mixIDs)
	if err != nil {
		return err
	}
	ws := ascc.WeightedSpeedup(ascc.CPIs(res), alone)
	wsBase := ascc.WeightedSpeedup(ascc.CPIs(base), alone)
	fmt.Printf("mix %s under %s vs baseline: weighted speedup %+.2f%%\n",
		ascc.MixName(mixIDs), policy, 100*(ws/wsBase-1))
	fmt.Printf("%-6s %-10s %8s %8s %8s %10s %10s %8s\n",
		"core", "benchmark", "CPI", "base", "MPKI", "spillsOut", "spillsIn", "AML")
	for i, c := range res.Cores {
		p, _ := ascc.BenchmarkByID(mixIDs[i])
		fmt.Printf("%-6d %-10s %8.3f %8.3f %8.2f %10d %10d %8.1f\n",
			i, p.Name, c.CPI(), base.Cores[i].CPI(), c.MPKI(), c.SpillsOut, c.SpillsIn, c.AML())
	}
	return nil
}
