// Command asccbench reproduces the paper's tables and figures from the
// command line.
//
// Usage:
//
//	asccbench -exp fig8                 # one experiment (see -list)
//	asccbench -exp all                  # the full evaluation, paper order
//	asccbench -exp all -parallel 8      # same tables, 8 simulations at a time
//	asccbench -exp fig7 -scale 4 -measure 8000000
//	asccbench -exp all -timing          # wall-clock line after each table
//	asccbench -list                     # experiment index
//	asccbench -mix 445+456 -policy AVGCC  # a single ad-hoc run
//
// Simulations fan out across -parallel worker slots (default: all CPUs);
// output is bit-identical at every setting, only wall-clock changes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"ascc"
)

// options collects the parsed command line; validate checks it before any
// simulation runs.
type options struct {
	exp        string
	list       bool
	scale      int
	warmup     uint64
	measure    uint64
	seed       uint64
	seeds      int
	parallel   int
	mix        string
	policy     string
	policySet  bool // -policy given explicitly (flag.Visit), not defaulted
	format     string
	traces     string
	traceCache bool
	traceMB    int
	storeDir   string // resolved -arena-store root; "" = store off
	prewarm    bool
	engine     string
	cores      int
	simPar     int
	directory  bool
	sample     string
	timing     bool
	cpuprofile string
	memprofile string
}

// storeFlag parses -arena-store[=dir]: the bare flag (or "on") resolves to
// the conventional ~/.cache/ascc/arenas root, "off" (or "false"/"no"/"0")
// disables the store, and anything else is taken as the store root itself.
type storeFlag struct {
	dir *string
}

func (s storeFlag) String() string {
	if s.dir == nil {
		return ""
	}
	return *s.dir
}

// IsBoolFlag lets plain `-arena-store` (no value) mean "on".
func (s storeFlag) IsBoolFlag() bool { return true }

func (s storeFlag) Set(v string) error {
	switch strings.ToLower(v) {
	case "off", "false", "no", "0":
		*s.dir = ""
		return nil
	case "", "on", "true", "yes", "1":
		dir, err := ascc.DefaultArenaStoreDir()
		if err != nil {
			return fmt.Errorf("resolving the default arena store root: %w (pass -arena-store=DIR explicitly)", err)
		}
		*s.dir = dir
		return nil
	default:
		*s.dir = v
		return nil
	}
}

// validate rejects out-of-range values and flag combinations that would
// otherwise be silently ignored.
func (o options) validate() error {
	if o.scale < 1 {
		return fmt.Errorf("-scale must be >= 1 (got %d; 1 is the paper's absolute geometry)", o.scale)
	}
	if o.seeds < 1 {
		return fmt.Errorf("-seeds must be >= 1 (got %d)", o.seeds)
	}
	if o.parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (got %d; 0 means all CPUs)", o.parallel)
	}
	switch o.format {
	case "text", "csv", "json":
	default:
		return fmt.Errorf("unknown format %q (want text, csv or json)", o.format)
	}
	if o.mix != "" && o.traces != "" {
		return fmt.Errorf("-mix and -trace are mutually exclusive")
	}
	if o.exp != "" && (o.mix != "" || o.traces != "") {
		return fmt.Errorf("-exp cannot be combined with -mix or -trace")
	}
	if o.seeds > 1 && o.mix == "" {
		return fmt.Errorf("-seeds only applies to -mix runs")
	}
	if o.format != "text" && (o.mix != "" || o.traces != "") {
		return fmt.Errorf("-format %s only applies to -exp runs (-mix and -trace always print text)", o.format)
	}
	if o.traceMB < 0 {
		return fmt.Errorf("-trace-cache-mb must be >= 0 (got %d; 0 means the default budget)", o.traceMB)
	}
	if o.traceMB > 0 && !o.traceCache {
		return fmt.Errorf("-trace-cache-mb %d conflicts with -trace-cache=false", o.traceMB)
	}
	if o.policySet && o.mix == "" && o.traces == "" {
		return fmt.Errorf("-policy only applies to -mix and -trace runs (experiments compare the registry policies themselves)")
	}
	if o.cores < 0 {
		return fmt.Errorf("-cores must be >= 0 (got %d; 0 keeps each mix's natural width)", o.cores)
	}
	if o.cores > 64 {
		return fmt.Errorf("-cores must be <= 64 (got %d; coherence holder masks are one 64-bit word)", o.cores)
	}
	if o.cores > 0 && o.traces != "" {
		return fmt.Errorf("-cores does not apply to -trace replays (supply one trace file per core instead)")
	}
	if o.simPar < 0 {
		return fmt.Errorf("-sim-parallel must be >= 0 (got %d; 0 and 1 run each simulation serially)", o.simPar)
	}
	if _, err := ascc.ParseEngine(o.engine); err != nil {
		return fmt.Errorf("-engine %s: want refstep (per-reference descent, the default), fused (absorb clean local L2 hits in-kernel; required by -sim-parallel) or batched (the demoted turn engine)", o.engine)
	}
	if o.simPar > 1 && o.engine != "fused" {
		return fmt.Errorf("-sim-parallel %d requires the fused engine (conflicts with -engine %s)", o.simPar, o.engine)
	}
	if o.storeDir != "" && !o.traceCache {
		return fmt.Errorf("-arena-store persists the trace cache's arenas (conflicts with -trace-cache=false)")
	}
	den, err := ascc.ParseSampleRatio(o.sample)
	if err != nil {
		return fmt.Errorf("-sample %s: want 1/N (e.g. 1/8) or off", o.sample)
	}
	if den > 1 {
		if o.traces != "" {
			return fmt.Errorf("-sample does not apply to -trace replays (external traces are not re-synthesisable, so filtered variants would shadow the real stream)")
		}
		if o.prewarm {
			return fmt.Errorf("-prewarm synthesises the full-fidelity arenas; drop -sample (sampled sub-arenas are derived from them on first use)")
		}
		if o.exp == "prefetch" {
			return fmt.Errorf("-sample is incompatible with the prefetch experiment (the stride prefetcher crosses set boundaries)")
		}
		if o.exp == "sampling" {
			return fmt.Errorf("-exp sampling measures the fast path's accuracy itself and controls -sample internally")
		}
	}
	if o.prewarm {
		if !o.traceCache {
			return fmt.Errorf("-prewarm fills the trace cache (conflicts with -trace-cache=false)")
		}
		if o.storeDir == "" {
			return fmt.Errorf("-prewarm persists stream arenas, so it requires -arena-store (and conflicts with -arena-store=off)")
		}
		if o.exp != "" || o.mix != "" || o.traces != "" {
			return fmt.Errorf("-prewarm builds arenas and exits (drop -exp/-mix/-trace; run them afterwards against the warm store)")
		}
	}
	return nil
}

// config builds the harness configuration from validated options.
func (o options) config() ascc.Config {
	cfg := ascc.DefaultConfig()
	cfg.Scale = o.scale
	cfg.Seed = o.seed
	cfg.Parallel = o.parallel
	cfg.TraceCache = o.traceCache
	cfg.TraceCacheMB = o.traceMB
	cfg.ArenaStoreDir = o.storeDir
	cfg.Engine, _ = ascc.ParseEngine(o.engine) // validated
	cfg.Cores = o.cores
	cfg.SimParallel = o.simPar
	cfg.NoDirectory = !o.directory
	cfg.SampleDen, _ = ascc.ParseSampleRatio(o.sample) // validated
	if o.scale != 8 {
		// Scale the default budgets so reuse cycles complete (DESIGN.md §5).
		cfg.WarmupInstr = cfg.WarmupInstr * 8 / uint64(o.scale)
		cfg.MeasureInstr = cfg.MeasureInstr * 8 / uint64(o.scale)
	}
	if o.warmup > 0 {
		cfg.WarmupInstr = o.warmup
	}
	if o.measure > 0 {
		cfg.MeasureInstr = o.measure
	}
	return cfg
}

func main() {
	var o options
	flag.StringVar(&o.exp, "exp", "", "experiment id (fig1..fig11, table1/4/5, shared, mt, prefetch, spills, limited, ablation) or 'all'")
	flag.BoolVar(&o.list, "list", false, "list experiment ids and exit")
	flag.IntVar(&o.scale, "scale", 8, "geometry scale divisor (1 = the paper's absolute sizes; slow)")
	flag.Uint64Var(&o.warmup, "warmup", 0, "warmup instructions per core (0 = default for the scale)")
	flag.Uint64Var(&o.measure, "measure", 0, "measured instructions per core (0 = default for the scale)")
	flag.Uint64Var(&o.seed, "seed", 1, "random seed")
	flag.IntVar(&o.seeds, "seeds", 1, "with -mix: repeat over N seeds and report mean ± 95% CI")
	flag.IntVar(&o.parallel, "parallel", 0, "max simulations in flight (0 = all CPUs, 1 = sequential; results are identical at every setting)")
	flag.StringVar(&o.mix, "mix", "", "ad-hoc mix to run, e.g. 445+456 or 445+401+444+456")
	flag.StringVar(&o.policy, "policy", "AVGCC", "policy for -mix/-trace (baseline, CC, DSR, DSR+DIP, DSR-3S, ECC, LRS, LMS, GMS, LMS+BIP, GMS+SABIP, ASCC, ASCC-2S, AVGCC, QoS-AVGCC)")
	flag.StringVar(&o.format, "format", "text", "experiment output format: text, csv or json")
	flag.StringVar(&o.traces, "trace", "", "comma-separated trace files (.trc binary or .csv), one per core, replayed under -policy")
	flag.BoolVar(&o.traceCache, "trace-cache", true, "memoise each workload reference stream in a packed arena and replay it across policies (results are identical either way)")
	flag.IntVar(&o.traceMB, "trace-cache-mb", 0, "trace cache memory budget in MiB before LRU eviction (0 = default budget; requires -trace-cache)")
	flag.Var(storeFlag{&o.storeDir}, "arena-store", "persist packed stream arenas across processes: bare flag uses ~/.cache/ascc/arenas, =DIR overrides the root, =off disables (the default; results are identical cold or warm)")
	flag.BoolVar(&o.prewarm, "prewarm", false, "synthesise and persist every stream arena the experiment suite uses, then exit (requires -arena-store; later runs replay instead of regenerating)")
	flag.StringVar(&o.engine, "engine", "refstep", "below-L1 stepping engine: refstep (one descent per L1 miss, the fastest measured and the default), fused (absorb clean local L2 hits in-kernel; required by -sim-parallel) or batched (the demoted turn engine; results are bit-identical across all three)")
	flag.IntVar(&o.cores, "cores", 0, "widen every mix to this many cores by cyclic replication, max 64 (0 = each mix's natural width; single-app calibrations stay one-core)")
	flag.IntVar(&o.simPar, "sim-parallel", 0, "speculative worker goroutines inside each simulation (0 or 1 = serial; results are bit-identical at every setting)")
	flag.StringVar(&o.sample, "sample", "off", "set-sampled fast-path ratio: 1/N simulates a deterministic 1/N subset of the LLC sets (always including the policies' leader sets) on pre-filtered streams, off (the default) runs full fidelity; single-core per-set behaviour is exact, multi-core results are close estimates (DESIGN.md §16)")
	flag.BoolVar(&o.directory, "directory", true, "answer coherence holder-mask queries from the set-sharded directory (results are bit-identical either way; -directory=false is the broadcast row-scan A/B reference)")
	flag.BoolVar(&o.timing, "timing", false, "print wall-clock after each experiment table or ad-hoc run (to stderr under -format csv/json so the stream stays parseable)")
	flag.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
	flag.StringVar(&o.memprofile, "memprofile", "", "write a heap profile taken at exit to this file")
	flag.Parse()
	// Distinguish "-policy AVGCC" from the default so validate can reject
	// combinations where the flag would be silently ignored.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "policy" {
			o.policySet = true
		}
	})

	if o.list {
		fmt.Println("experiments (paper artefact -> id):")
		for _, id := range ascc.ExperimentIDs() {
			fmt.Println("  " + id)
		}
		return
	}
	if o.traces == "" && o.mix == "" && o.exp == "" && !o.prewarm {
		flag.Usage()
		os.Exit(2)
	}
	// All real work happens in run so its defers — in particular stopping
	// the CPU profile and flushing the heap profile — execute before the
	// process exits; os.Exit here would silently truncate the profiles.
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "asccbench:", err)
		os.Exit(1)
	}
}

// run executes the selected mode under the (optional) profilers.
func run(o options) error {
	if err := o.validate(); err != nil {
		return err
	}
	if o.cpuprofile != "" {
		f, err := os.Create(o.cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if o.memprofile != "" {
		defer func() {
			f, err := os.Create(o.memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "asccbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "asccbench: memprofile:", err)
			}
		}()
	}
	cfg := o.config()

	// One pool for the whole evaluation (-exp all) so experiments share
	// memoised baselines suite-wide — and for any store-backed run, so the
	// arenas every runner grew can be flushed to disk in one place after
	// the work succeeds.
	var pool *ascc.Pool
	if o.exp == "all" || o.storeDir != "" {
		pool = ascc.NewPool(cfg.Parallel)
		cfg = cfg.WithPool(pool)
	}

	err := func() error {
		switch {
		case o.prewarm:
			return timed(o, "prewarm", func() error {
				n, err := ascc.NewRunner(cfg).PrewarmArenas()
				if err != nil {
					return err
				}
				fmt.Fprintf(o.timingWriter(), "prewarmed %d stream arenas into %s\n", n, o.storeDir)
				return nil
			})
		case o.traces != "":
			return timed(o, "trace replay", func() error {
				return runTraces(cfg, o.traces, o.policy)
			})
		case o.mix != "" && o.seeds > 1:
			return timed(o, "mix "+o.mix, func() error {
				return runMixSeeds(cfg, o.mix, o.policy, o.seeds)
			})
		case o.mix != "":
			return timed(o, "mix "+o.mix, func() error {
				return runMix(cfg, o.mix, o.policy)
			})
		case o.exp == "all":
			// Experiments run one at a time (so tables stream in paper
			// order) but fan their simulations out across the workers.
			for _, id := range ascc.ExperimentIDs() {
				if err := runExperiment(cfg, id, o); err != nil {
					return err
				}
			}
			return nil
		default:
			return runExperiment(cfg, o.exp, o)
		}
	}()
	if err == nil && pool != nil {
		// Write-behind: persist every stream arena this invocation grew,
		// so the next process replays instead of regenerating. A no-op
		// without -arena-store.
		if ferr := pool.FlushArenas(); ferr != nil {
			return fmt.Errorf("flushing the arena store: %w", ferr)
		}
	}
	return err
}

// timingWriter is where -timing lines go: stdout in text mode, stderr when
// -format is csv or json so redirecting stdout still yields a
// machine-parseable stream.
func (o options) timingWriter() io.Writer {
	if o.format != "text" {
		return os.Stderr
	}
	return os.Stdout
}

// timed wraps one unit of work with the -timing wall-clock report.
func timed(o options, what string, work func() error) error {
	start := time.Now()
	if err := work(); err != nil {
		return err
	}
	if o.timing {
		fmt.Fprintf(o.timingWriter(), "[%s finished in %.1fs]\n\n", what, time.Since(start).Seconds())
	}
	return nil
}

func runExperiment(cfg ascc.Config, id string, o options) error {
	return timed(o, id, func() error {
		res, err := ascc.RunExperiment(cfg, id)
		if err != nil {
			return err
		}
		switch o.format {
		case "csv":
			return res.Table.CSV(os.Stdout)
		case "json":
			return res.Table.JSON(os.Stdout)
		case "text":
			fmt.Println(res.Table)
			return nil
		}
		return fmt.Errorf("unknown format %q (want text, csv or json)", o.format)
	})
}

// runMixSeeds repeats one mix/policy comparison across several seeds.
func runMixSeeds(cfg ascc.Config, mixSpec, policy string, n int) error {
	mixIDs, err := parseMix(mixSpec)
	if err != nil {
		return err
	}
	runner := ascc.NewRunner(cfg)
	st, err := runner.SpeedupOverSeeds(mixIDs, ascc.Policy(policy), n)
	if err != nil {
		return err
	}
	fmt.Printf("mix %s under %s vs baseline over %d seeds:\n  weighted speedup %s\n",
		ascc.MixName(mixIDs), policy, n, st)
	return nil
}

// runTraces replays externally supplied trace files, one per core.
func runTraces(cfg ascc.Config, spec, policy string) error {
	paths := strings.Split(spec, ",")
	specs := make([]ascc.TraceSpec, len(paths))
	for i, p := range paths {
		specs[i] = ascc.TraceSpec{Path: strings.TrimSpace(p)}
	}
	runner := ascc.NewRunner(cfg)
	res, err := runner.RunTraces(specs, ascc.Policy(policy))
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d traces under %s\n", len(specs), policy)
	fmt.Printf("%-6s %-20s %8s %8s %10s %10s %8s\n",
		"core", "trace", "CPI", "MPKI", "spillsOut", "spillsIn", "AML")
	for i, c := range res.Cores {
		fmt.Printf("%-6d %-20s %8.3f %8.2f %10d %10d %8.1f\n",
			i, specs[i].Path, c.CPI(), c.MPKI(), c.SpillsOut, c.SpillsIn, c.AML())
	}
	return nil
}

// parseMix parses "445+456" into benchmark ids.
func parseMix(mixSpec string) ([]int, error) {
	parts := strings.Split(mixSpec, "+")
	mixIDs := make([]int, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad mix element %q: %w", p, err)
		}
		mixIDs = append(mixIDs, id)
	}
	return mixIDs, nil
}

func runMix(cfg ascc.Config, mixSpec, policy string) error {
	mixIDs, err := parseMix(mixSpec)
	if err != nil {
		return err
	}
	// The runner widens every run the same way; widen here too so the
	// per-core report below lines up with the widened Results.
	mixIDs = ascc.ExtendMix(mixIDs, cfg.Cores)
	runner := ascc.NewRunner(cfg)
	// The runner memoises registry runs, so when -policy is "baseline" the
	// comparison below reuses the base simulation instead of repeating it,
	// and the alone-CPI calibrations share any single-app runs already done.
	base, err := runner.RunMix(mixIDs, ascc.Baseline)
	if err != nil {
		return err
	}
	res, err := runner.RunMix(mixIDs, ascc.Policy(policy))
	if err != nil {
		return err
	}
	alone, err := runner.AloneCPIs(mixIDs)
	if err != nil {
		return err
	}
	ws := ascc.WeightedSpeedup(ascc.CPIs(res), alone)
	wsBase := ascc.WeightedSpeedup(ascc.CPIs(base), alone)
	fmt.Printf("mix %s under %s vs baseline: weighted speedup %+.2f%%\n",
		ascc.MixName(mixIDs), policy, 100*(ws/wsBase-1))
	fmt.Printf("%-6s %-10s %8s %8s %8s %10s %10s %8s\n",
		"core", "benchmark", "CPI", "base", "MPKI", "spillsOut", "spillsIn", "AML")
	for i, c := range res.Cores {
		p, _ := ascc.BenchmarkByID(mixIDs[i])
		fmt.Printf("%-6d %-10s %8.3f %8.3f %8.2f %10d %10d %8.1f\n",
			i, p.Name, c.CPI(), base.Cores[i].CPI(), c.MPKI(), c.SpillsOut, c.SpillsIn, c.AML())
	}
	return nil
}
