package main

import (
	"os"
	"strings"
	"testing"

	"ascc"
)

// base returns the options the flag defaults produce.
func base() options {
	return options{scale: 8, seeds: 1, policy: "AVGCC", format: "text", traceCache: true, engine: "refstep", directory: true}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr string // empty = valid
	}{
		{"defaults", func(o *options) { o.exp = "fig8" }, ""},
		{"scale zero", func(o *options) { o.scale = 0 }, "-scale"},
		{"scale negative", func(o *options) { o.scale = -1 }, "-scale"},
		{"seeds zero", func(o *options) { o.seeds = 0 }, "-seeds"},
		{"parallel negative", func(o *options) { o.parallel = -2 }, "-parallel"},
		{"bad format", func(o *options) { o.format = "xml" }, "format"},
		{"seeds without mix", func(o *options) { o.exp = "fig8"; o.seeds = 5 }, "-seeds"},
		{"seeds with mix ok", func(o *options) { o.mix = "445+456"; o.seeds = 5 }, ""},
		{"csv with mix", func(o *options) { o.mix = "445+456"; o.format = "csv" }, "-format"},
		{"json with trace", func(o *options) { o.traces = "a.trc"; o.format = "json" }, "-format"},
		{"mix and trace", func(o *options) { o.mix = "445"; o.traces = "a.trc" }, "mutually exclusive"},
		{"exp and mix", func(o *options) { o.exp = "fig8"; o.mix = "445+456" }, "-exp"},
		{"exp and trace", func(o *options) { o.exp = "fig8"; o.traces = "a.trc" }, "-exp"},
		{"parallel ok", func(o *options) { o.exp = "all"; o.parallel = 8 }, ""},
		{"trace cache budget ok", func(o *options) { o.exp = "all"; o.traceMB = 512 }, ""},
		{"trace cache off ok", func(o *options) { o.exp = "all"; o.traceCache = false }, ""},
		{"negative cache budget", func(o *options) { o.traceMB = -1 }, "-trace-cache-mb"},
		{"budget without cache", func(o *options) { o.traceCache = false; o.traceMB = 64 }, "-trace-cache=false"},
		{"policy with exp", func(o *options) { o.exp = "fig8"; o.policy = "ASCC"; o.policySet = true }, "-policy"},
		{"policy with all", func(o *options) { o.exp = "all"; o.policySet = true }, "-policy"},
		{"policy with mix ok", func(o *options) { o.mix = "445+456"; o.policy = "ASCC"; o.policySet = true }, ""},
		{"policy with trace ok", func(o *options) { o.traces = "a.trc"; o.policySet = true }, ""},
		{"default policy with exp ok", func(o *options) { o.exp = "fig8" }, ""},
		{"engine fused ok", func(o *options) { o.exp = "all"; o.engine = "fused" }, ""},
		{"engine batched ok", func(o *options) { o.exp = "all"; o.engine = "batched" }, ""},
		{"engine unknown", func(o *options) { o.exp = "fig8"; o.engine = "turbo" }, "-engine"},
		{"timing with exp", func(o *options) { o.exp = "fig8"; o.timing = true }, ""},
		{"timing with mix", func(o *options) { o.mix = "445+456"; o.timing = true }, ""},
		{"timing with csv exp", func(o *options) { o.exp = "fig8"; o.format = "csv"; o.timing = true }, ""},
		{"cores with exp ok", func(o *options) { o.exp = "all"; o.cores = 64 }, ""},
		{"cores with mix ok", func(o *options) { o.mix = "445+456"; o.cores = 16 }, ""},
		{"cores negative", func(o *options) { o.exp = "fig8"; o.cores = -4 }, "-cores"},
		{"cores over mask", func(o *options) { o.exp = "fig8"; o.cores = 65 }, "-cores"},
		{"cores with trace", func(o *options) { o.traces = "a.trc"; o.cores = 8 }, "-cores"},
		{"sim-parallel ok", func(o *options) { o.exp = "all"; o.simPar = 4; o.engine = "fused" }, ""},
		{"sim-parallel one ok", func(o *options) { o.exp = "fig8"; o.simPar = 1 }, ""},
		{"sim-parallel negative", func(o *options) { o.exp = "fig8"; o.simPar = -1 }, "-sim-parallel"},
		{"sim-parallel non-fused engine", func(o *options) { o.exp = "fig8"; o.simPar = 4; o.engine = "refstep" }, "-sim-parallel"},
		{"sim-parallel default engine", func(o *options) { o.exp = "fig8"; o.simPar = 4 }, "-sim-parallel"},
		{"directory off ok", func(o *options) { o.exp = "all"; o.directory = false }, ""},
		{"directory off with mix ok", func(o *options) { o.mix = "445+456"; o.directory = false }, ""},
		{"arena store with exp ok", func(o *options) { o.exp = "all"; o.storeDir = "/tmp/arenas" }, ""},
		{"arena store with mix ok", func(o *options) { o.mix = "445+456"; o.storeDir = "/tmp/arenas" }, ""},
		{"arena store without cache", func(o *options) { o.exp = "fig8"; o.storeDir = "/tmp/arenas"; o.traceCache = false }, "-trace-cache=false"},
		{"prewarm ok", func(o *options) { o.prewarm = true; o.storeDir = "/tmp/arenas" }, ""},
		{"prewarm without store", func(o *options) { o.prewarm = true }, "-arena-store"},
		{"prewarm without cache", func(o *options) { o.prewarm = true; o.storeDir = "/tmp/arenas"; o.traceCache = false }, "-trace-cache=false"},
		{"prewarm with exp", func(o *options) { o.prewarm = true; o.storeDir = "/tmp/arenas"; o.exp = "fig8" }, "-prewarm"},
		{"prewarm with mix", func(o *options) { o.prewarm = true; o.storeDir = "/tmp/arenas"; o.mix = "445+456" }, "-prewarm"},
		{"prewarm with trace", func(o *options) { o.prewarm = true; o.storeDir = "/tmp/arenas"; o.traces = "a.trc" }, "-prewarm"},
		{"prewarm with seeds", func(o *options) { o.prewarm = true; o.storeDir = "/tmp/arenas"; o.seeds = 3 }, "-seeds"},
		{"sample exp ok", func(o *options) { o.exp = "all"; o.sample = "1/8" }, ""},
		{"sample mix ok", func(o *options) { o.mix = "445+456"; o.sample = "1/16" }, ""},
		{"sample off ok", func(o *options) { o.exp = "fig8"; o.sample = "off" }, ""},
		{"sample with engine ok", func(o *options) { o.exp = "all"; o.sample = "1/8"; o.engine = "fused" }, ""},
		{"sample with sim-parallel ok", func(o *options) { o.exp = "all"; o.sample = "1/8"; o.engine = "fused"; o.simPar = 4 }, ""},
		{"sample with store ok", func(o *options) { o.exp = "all"; o.sample = "1/8"; o.storeDir = "/tmp/arenas" }, ""},
		{"sample bad grammar", func(o *options) { o.exp = "fig8"; o.sample = "8" }, "-sample"},
		{"sample 1/1", func(o *options) { o.exp = "fig8"; o.sample = "1/1" }, "-sample"},
		{"sample 2/8", func(o *options) { o.exp = "fig8"; o.sample = "2/8" }, "-sample"},
		{"sample with trace", func(o *options) { o.traces = "a.trc"; o.sample = "1/8" }, "-sample"},
		{"sample with prewarm", func(o *options) { o.prewarm = true; o.storeDir = "/tmp/arenas"; o.sample = "1/8" }, "-prewarm"},
		{"sample with exp prefetch", func(o *options) { o.exp = "prefetch"; o.sample = "1/8" }, "prefetch"},
		{"sample with exp sampling", func(o *options) { o.exp = "sampling"; o.sample = "1/8" }, "-exp sampling"},
	}
	for _, tc := range cases {
		o := base()
		tc.mutate(&o)
		err := o.validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted, want error mentioning %q", tc.name, tc.wantErr)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestConfigBudgetRescale checks the scale-relative instruction budgets that
// used to divide by zero at -scale 0 (now rejected by validate).
func TestConfigBudgetRescale(t *testing.T) {
	o := base()
	o.scale = 4
	cfg := o.config()
	if cfg.Scale != 4 {
		t.Fatalf("scale %d", cfg.Scale)
	}
	def := base().config()
	if cfg.WarmupInstr != def.WarmupInstr*2 || cfg.MeasureInstr != def.MeasureInstr*2 {
		t.Fatalf("budgets not rescaled: %d/%d vs default %d/%d",
			cfg.WarmupInstr, cfg.MeasureInstr, def.WarmupInstr, def.MeasureInstr)
	}
	o = base()
	o.warmup, o.measure = 111, 222
	cfg = o.config()
	if cfg.WarmupInstr != 111 || cfg.MeasureInstr != 222 {
		t.Fatalf("explicit budgets not honoured: %d/%d", cfg.WarmupInstr, cfg.MeasureInstr)
	}
	o = base()
	o.parallel = 3
	if o.config().Parallel != 3 {
		t.Fatal("parallel not propagated to the config")
	}
}

// TestConfigEngine pins the -engine plumbing: the default selects the
// per-reference descent (the zero value, the fastest measured engine), and
// the other engines propagate by name.
func TestConfigEngine(t *testing.T) {
	if got := base().config().Engine; got != ascc.EngineRefStep {
		t.Fatalf("default config engine = %v, want refstep", got)
	}
	o := base()
	o.engine = "fused"
	if got := o.config().Engine; got != ascc.EngineFused {
		t.Fatalf("-engine fused propagated as %v", got)
	}
	o.engine = "batched"
	if got := o.config().Engine; got != ascc.EngineBatched {
		t.Fatalf("-engine batched propagated as %v", got)
	}
}

// TestConfigScaleout pins the -cores/-sim-parallel/-directory plumbing into
// the harness configuration.
func TestConfigScaleout(t *testing.T) {
	cfg := base().config()
	if cfg.Cores != 0 || cfg.SimParallel != 0 || cfg.NoDirectory {
		t.Fatalf("defaults not neutral: %+v", cfg)
	}
	o := base()
	o.cores, o.simPar, o.directory = 64, 4, false
	cfg = o.config()
	if cfg.Cores != 64 {
		t.Fatalf("-cores not propagated: %d", cfg.Cores)
	}
	if cfg.SimParallel != 4 {
		t.Fatalf("-sim-parallel not propagated: %d", cfg.SimParallel)
	}
	if !cfg.NoDirectory {
		t.Fatal("-directory=false did not propagate to the config")
	}
}

// TestConfigSample pins the -sample plumbing: the validated ratio reaches
// Config.SampleDen, and the default stays full fidelity.
func TestConfigSample(t *testing.T) {
	if got := base().config().SampleDen; got != 0 {
		t.Fatalf("default config SampleDen = %d, want 0 (full fidelity)", got)
	}
	o := base()
	o.sample = "1/8"
	if got := o.config().SampleDen; got != 8 {
		t.Fatalf("-sample 1/8 propagated as SampleDen %d", got)
	}
	o.sample = "off"
	if got := o.config().SampleDen; got != 0 {
		t.Fatalf("-sample off propagated as SampleDen %d", got)
	}
}

// TestStoreFlag pins the -arena-store value grammar: bare/on resolves to
// the conventional per-user root, off-ish spellings disable, anything else
// is the root itself; and the resolved directory reaches the harness
// configuration.
func TestStoreFlag(t *testing.T) {
	set := func(v string) (string, error) {
		dir := "sentinel"
		err := storeFlag{&dir}.Set(v)
		return dir, err
	}
	for _, v := range []string{"off", "false", "no", "0", "OFF"} {
		if dir, err := set(v); err != nil || dir != "" {
			t.Errorf("Set(%q) = %q, %v; want store disabled", v, dir, err)
		}
	}
	for _, v := range []string{"", "on", "true", "yes", "1"} {
		dir, err := set(v)
		if err != nil {
			continue // no resolvable user cache dir on this host: error is the contract
		}
		if dir == "" || dir == "sentinel" {
			t.Errorf("Set(%q) = %q; want the default store root", v, dir)
		}
	}
	if dir, err := set("/data/arenas"); err != nil || dir != "/data/arenas" {
		t.Errorf("Set(dir) = %q, %v; want the literal directory", dir, err)
	}

	o := base()
	o.storeDir = "/data/arenas"
	if got := o.config().ArenaStoreDir; got != "/data/arenas" {
		t.Fatalf("-arena-store not propagated to the config: %q", got)
	}
	if got := base().config().ArenaStoreDir; got != "" {
		t.Fatalf("store on by default: %q", got)
	}
}

// TestTimingWriter pins the -timing output routing: interleaved with the
// tables on stdout for humans, but diverted to stderr under the
// machine-readable formats so `asccbench -exp all -format csv -timing
// > out.csv` still yields a clean stream.
func TestTimingWriter(t *testing.T) {
	o := base()
	if o.timingWriter() != os.Stdout {
		t.Error("text-format timing must go to stdout")
	}
	for _, f := range []string{"csv", "json"} {
		o.format = f
		if o.timingWriter() != os.Stderr {
			t.Errorf("%s-format timing must go to stderr", f)
		}
	}
}

func TestParseMix(t *testing.T) {
	ids, err := parseMix("445+401+444+456")
	if err != nil || len(ids) != 4 || ids[0] != 445 || ids[3] != 456 {
		t.Fatalf("parseMix = %v, %v", ids, err)
	}
	if _, err := parseMix("445+abc"); err == nil {
		t.Fatal("bad mix element accepted")
	}
}
