# Repeatable verification gate for the ascc reproduction.
#
#   make check          - everything CI should run (build, vet, fmt, tests,
#                         race, bounded differential fuzz)
#   make test           - the tier-1 suite only
#   make race           - race-detector pass over the concurrent packages
#   make fuzz           - bounded run of the differential fuzzers (packed
#                         kernel vs reference model, ganged group vs
#                         independent caches, directory vs broadcast vs
#                         refmodel, trace arena codec round-trip, persistent
#                         arena-store file round-trip)
#   make cover          - aggregate internal/... statement coverage with a
#                         hard floor (scripts/cover.sh)
#   make bench          - microbenchmarks for the hot simulator paths
#   make profile        - CPU + heap profile of a representative run
#   make profile-diff   - paired CPU profiles of the fused engine vs the
#                         per-reference descent, with a pprof diff of where
#                         the absorption moved the cycles
#   make bench-baseline - kernel + end-to-end throughput, recorded in
#                         BENCH_kernel.json (packed kernel vs the frozen
#                         reference kernel)
#   make prewarm        - synthesise every experiment-suite stream into the
#                         persistent arena store (~/.cache/ascc/arenas) so
#                         later runs, sweeps and CI jobs replay from mmap

GO ?= go

.PHONY: check build vet fmt test race fuzz cover bench bench-baseline profile profile-diff prewarm clean

check: build vet fmt test race fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# The harness worker pool, the experiment fan-outs, the shared trace arenas
# and the speculative in-run engine (cmp) are the concurrent code; -race
# over just those keeps the gate fast. The experiments differentials
# (arena on/off plus store off/cold/warm, every id) outgrew go test's
# default 10-minute ceiling under the race detector's slowdown.
race:
	$(GO) test -race -timeout 30m ./internal/trace/... ./internal/harness/... ./internal/experiments/... ./internal/cmp/...

# Differential smoke: the packed kernel against the reference model, and the
# ganged tag slab against independent caches, each under ten seconds of
# fuzzed op sequences (the committed corpora always run as part of plain
# `go test`; this explores beyond them).
fuzz:
	$(GO) test ./internal/cachesim -run '^$$' -fuzz FuzzKernelEquivalence -fuzztime 10s
	$(GO) test ./internal/cachesim -run '^$$' -fuzz FuzzGroupEquivalence -fuzztime 10s
	$(GO) test ./internal/cachesim -run '^$$' -fuzz FuzzGroupProbe -fuzztime 10s
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzRefCodec -fuzztime 10s
	$(GO) test ./internal/trace/store -run '^$$' -fuzz FuzzStoreRoundTrip -fuzztime 10s
	$(GO) test ./internal/cmp -run '^$$' -fuzz FuzzBurstEquivalence -fuzztime 10s
	$(GO) test ./internal/cmp -run '^$$' -fuzz FuzzDirectoryEquivalence -fuzztime 10s
	$(GO) test ./internal/cmp -run '^$$' -fuzz FuzzSampleEquivalence -fuzztime 10s

# Aggregate statement coverage over internal/... with a floor that pins the
# baseline; a PR landing untested simulator code fails here.
cover:
	GO="$(GO)" sh scripts/cover.sh

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' . ./internal/cachesim ./internal/cmp ./internal/trace

# CPU + heap profile of the heaviest configuration (the 4-core AVGCC mix the
# end-to-end benchmark measures) through the CLI's -cpuprofile/-memprofile
# flags, with the hot functions summarised. Inspect interactively with
#   go tool pprof asccbench-cpu.prof
profile:
	$(GO) run ./cmd/asccbench -mix 445+401+444+456 -policy AVGCC \
		-cpuprofile asccbench-cpu.prof -memprofile asccbench-mem.prof >/dev/null
	$(GO) tool pprof -top -nodecount 15 asccbench-cpu.prof

# Paired engine profiles (fused vs refstep) over the same mix, then a pprof
# diff showing where the fused absorption moved the cycles (DESIGN.md 15).
profile-diff:
	GO="$(GO)" sh scripts/profile_diff.sh

bench-baseline:
	GO="$(GO)" sh scripts/bench_kernel.sh BENCH_kernel.json

# Fill the persistent arena store at the default configuration: every later
# asccbench/test/CI run with -arena-store replays packed streams from mmap'd
# files instead of re-synthesising them (DESIGN.md 14).
prewarm:
	$(GO) run ./cmd/asccbench -arena-store -prewarm

clean:
	$(GO) clean ./...
