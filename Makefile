# Repeatable verification gate for the ascc reproduction.
#
#   make check   - everything CI should run (build, vet, fmt, tests, race)
#   make test    - the tier-1 suite only
#   make race    - race-detector pass over the concurrent packages
#   make bench   - microbenchmarks for the hot simulator paths

GO ?= go

.PHONY: check build vet fmt test race bench clean

check: build vet fmt test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# The harness worker pool and the experiment fan-outs are the only
# concurrent code; -race over just those keeps the gate fast.
race:
	$(GO) test -race ./internal/harness/... ./internal/experiments/...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

clean:
	$(GO) clean ./...
