# Repeatable verification gate for the ascc reproduction.
#
#   make check          - everything CI should run (build, vet, fmt, tests,
#                         race, bounded differential fuzz)
#   make test           - the tier-1 suite only
#   make race           - race-detector pass over the concurrent packages
#   make fuzz           - bounded run of the kernel-equivalence fuzzer
#   make bench          - microbenchmarks for the hot simulator paths
#   make bench-baseline - kernel + end-to-end throughput, recorded in
#                         BENCH_kernel.json (packed kernel vs the frozen
#                         reference kernel)

GO ?= go

.PHONY: check build vet fmt test race fuzz bench bench-baseline clean

check: build vet fmt test race fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

# The harness worker pool and the experiment fan-outs are the only
# concurrent code; -race over just those keeps the gate fast.
race:
	$(GO) test -race ./internal/harness/... ./internal/experiments/...

# Differential smoke: the packed kernel against the reference model under
# ten seconds of fuzzed op sequences (the committed corpus always runs as
# part of plain `go test`; this explores beyond it).
fuzz:
	$(GO) test ./internal/cachesim -run '^$$' -fuzz FuzzKernelEquivalence -fuzztime 10s

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

bench-baseline:
	GO="$(GO)" sh scripts/bench_kernel.sh BENCH_kernel.json

clean:
	$(GO) clean ./...
