package ascc_test

import (
	"fmt"
	"os"
	"path/filepath"

	"ascc"
	"ascc/internal/trace"
)

// Example_storageCost reproduces the Table 5 arithmetic: AVGCC needs one
// 4-bit saturation counter and one insertion-policy bit per set, plus the
// A/B/D counters.
func Example_storageCost() {
	rep, _ := ascc.StorageCost("AVGCC")
	fmt.Printf("AVGCC overhead: %d bits (%.1f B), %.2f%% with the paper's kB rounding\n",
		rep.TotalOverheadBits(), float64(rep.TotalOverheadBits())/8, rep.PaperRoundedPercent())
	// Output:
	// AVGCC overhead: 20508 bits (2563.5 B), 0.17% with the paper's kB rounding
}

// Example_benchmarks lists the workload models of Table 3.
func Example_benchmarks() {
	for _, p := range ascc.Benchmarks()[:3] {
		fmt.Printf("%d.%s: %s, table MPKI %.1f\n", p.ID, p.Name, p.Category, p.TableMPKI)
	}
	// Output:
	// 401.bzip2: capacity-hungry, table MPKI 2.7
	// 429.mcf: capacity-hungry, table MPKI 40.1
	// 433.milc: streaming, table MPKI 33.1
}

// Example_mixes shows the paper's workload naming.
func Example_mixes() {
	fmt.Println(ascc.MixName(ascc.FourAppMixes()[0]))
	fmt.Println(len(ascc.TwoAppMixes()), "two-application workloads")
	// Output:
	// 445+401+444+456
	// 14 two-application workloads
}

// Example_metrics computes the paper's two evaluation metrics.
func Example_metrics() {
	cpis := []float64{2.0, 4.0}  // running together
	alone := []float64{2.0, 2.0} // each alone
	fmt.Printf("weighted speedup %.2f, fairness %.2f\n",
		ascc.WeightedSpeedup(cpis, alone), ascc.HMeanFairness(cpis, alone))
	// Output:
	// weighted speedup 1.50, fairness 0.67
}

// Example_granularity is the examples/granularity flow at a test budget:
// static set-granular ASCC versus AVGCC (which finds the granularity
// dynamically) on one four-application mix, reported as weighted-speedup
// improvement over the private-LLC baseline. The budget here is ~200x below
// the paper's, so the magnitudes (and even the sign) are not meaningful —
// run examples/granularity for the real Table 1 sweep.
func Example_granularity() {
	cfg := ascc.DefaultConfig()
	cfg.WarmupInstr, cfg.MeasureInstr = 120_000, 300_000
	runner := ascc.NewRunner(cfg)
	mix := []int{433, 462, 450, 401} // two streamers + two takers

	alone, err := runner.AloneCPIs(mix)
	if err != nil {
		panic(err)
	}
	base, err := runner.RunMix(mix, ascc.Baseline)
	if err != nil {
		panic(err)
	}
	wsBase := ascc.WeightedSpeedup(ascc.CPIs(base), alone)
	for _, pol := range []ascc.Policy{ascc.ASCC, ascc.AVGCC} {
		res, err := runner.RunMix(mix, pol)
		if err != nil {
			panic(err)
		}
		ws := ascc.WeightedSpeedup(ascc.CPIs(res), alone)
		fmt.Printf("%s on %s: %+.2f%%\n", pol, ascc.MixName(mix), 100*(ws/wsBase-1))
	}
	// Output:
	// ASCC on 433+462+450+401: -0.73%
	// AVGCC on 433+462+450+401: -0.72%
}

// Example_traceReplay is the examples/tracereplay flow at a test budget:
// record two synthetic traces in the binary format, then replay them
// through the simulator from the files, exactly as externally captured
// traces would be.
func Example_traceReplay() {
	dir, err := os.MkdirTemp("", "ascc-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	specs := make([]ascc.TraceSpec, 0, 2)
	for i, id := range []int{445, 456} {
		p, err := ascc.BenchmarkByID(id)
		if err != nil {
			panic(err)
		}
		gen := p.NewGenerator(uint64(7+i), uint64(i)<<36, 8)
		path := filepath.Join(dir, fmt.Sprintf("%s.trc", p.Name))
		f, err := os.Create(path)
		if err != nil {
			panic(err)
		}
		w := trace.NewWriter(f)
		for j := 0; j < 100_000; j++ {
			if err := w.Write(gen.Next()); err != nil {
				panic(err)
			}
		}
		if err := w.Flush(); err != nil {
			panic(err)
		}
		f.Close()
		fmt.Printf("recorded %s: %d refs\n", p.Name, w.Count())
		specs = append(specs, ascc.TraceSpec{Path: path, BaseCPI: p.BaseCPI, Overlap: p.Overlap})
	}

	cfg := ascc.DefaultConfig()
	cfg.WarmupInstr, cfg.MeasureInstr = 30_000, 80_000
	runner := ascc.NewRunner(cfg)
	for _, pol := range []ascc.Policy{ascc.Baseline, ascc.AVGCC} {
		res, err := runner.RunTraces(specs, pol)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: core0 CPI %.3f, core1 CPI %.3f\n", pol, res.Cores[0].CPI(), res.Cores[1].CPI())
	}
	// Output:
	// recorded gobmk: 100000 refs
	// recorded hmmer: 100000 refs
	// baseline: core0 CPI 3.200, core1 CPI 1.417
	// AVGCC: core0 CPI 3.200, core1 CPI 1.417
}
