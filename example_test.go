package ascc_test

import (
	"fmt"

	"ascc"
)

// Example_storageCost reproduces the Table 5 arithmetic: AVGCC needs one
// 4-bit saturation counter and one insertion-policy bit per set, plus the
// A/B/D counters.
func Example_storageCost() {
	rep, _ := ascc.StorageCost("AVGCC")
	fmt.Printf("AVGCC overhead: %d bits (%.1f B), %.2f%% with the paper's kB rounding\n",
		rep.TotalOverheadBits(), float64(rep.TotalOverheadBits())/8, rep.PaperRoundedPercent())
	// Output:
	// AVGCC overhead: 20508 bits (2563.5 B), 0.17% with the paper's kB rounding
}

// Example_benchmarks lists the workload models of Table 3.
func Example_benchmarks() {
	for _, p := range ascc.Benchmarks()[:3] {
		fmt.Printf("%d.%s: %s, table MPKI %.1f\n", p.ID, p.Name, p.Category, p.TableMPKI)
	}
	// Output:
	// 401.bzip2: capacity-hungry, table MPKI 2.7
	// 429.mcf: capacity-hungry, table MPKI 40.1
	// 433.milc: streaming, table MPKI 33.1
}

// Example_mixes shows the paper's workload naming.
func Example_mixes() {
	fmt.Println(ascc.MixName(ascc.FourAppMixes()[0]))
	fmt.Println(len(ascc.TwoAppMixes()), "two-application workloads")
	// Output:
	// 445+401+444+456
	// 14 two-application workloads
}

// Example_metrics computes the paper's two evaluation metrics.
func Example_metrics() {
	cpis := []float64{2.0, 4.0}  // running together
	alone := []float64{2.0, 2.0} // each alone
	fmt.Printf("weighted speedup %.2f, fairness %.2f\n",
		ascc.WeightedSpeedup(cpis, alone), ascc.HMeanFairness(cpis, alone))
	// Output:
	// weighted speedup 1.50, fairness 0.67
}
