// Package ascc is a from-scratch reproduction of "Adaptive Set-Granular
// Cooperative Caching" (Rolán, Fraguela, Doallo — HPCA 2012): a
// trace-driven chip-multiprocessor cache simulator with private per-core
// L1/L2 hierarchies, MESI-style broadcast coherence, synthetic SPEC
// CPU2006-like workload models, and the full family of cooperative
// last-level-cache policies the paper evaluates — ASCC, AVGCC, QoS-AVGCC,
// DSR, DSR+DIP, ECC, CC and every internal ablation.
//
// # Quick start
//
//	cfg := ascc.DefaultConfig()
//	runner := ascc.NewRunner(cfg)
//	baseline, _ := runner.RunMix([]int{445, 456}, ascc.Baseline)
//	avgcc, _ := runner.RunMix([]int{445, 456}, ascc.AVGCC)
//	fmt.Printf("AVGCC CPIs: %.2f vs baseline %.2f\n",
//		avgcc.Cores[0].CPI(), baseline.Cores[0].CPI())
//
// Benchmarks are referred to by their SPEC CPU2006 numbers (Table 3 of the
// paper): 401 bzip2, 429 mcf, 433 milc, 444 namd, 445 gobmk, 450 soplex,
// 456 hmmer, 458 sjeng, 462 libquantum, 470 lbm, 471 omnetpp, 473 astar,
// 482 sphinx3.
//
// # Reproducing the paper
//
// Every table and figure of the evaluation has a regenerator:
//
//	res, err := ascc.RunExperiment(ascc.DefaultConfig(), "fig8")
//	fmt.Println(res.Table)
//
// See DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-versus-measured results. The cmd/asccbench tool exposes the same
// runners on the command line.
package ascc

import (
	"ascc/internal/cmp"
	"ascc/internal/cost"
	"ascc/internal/experiments"
	"ascc/internal/harness"
	"ascc/internal/metrics"
	"ascc/internal/trace"
	"ascc/internal/workload"
)

// Config fixes the experimental conditions: geometry scale, instruction
// budgets, seed, prefetcher, LLC size override. See harness.Config.
type Config = harness.Config

// DefaultConfig returns the standard fast configuration: geometry scale 8,
// 1M warmup + 3M measured instructions per core, seed 1.
func DefaultConfig() Config { return harness.DefaultConfig() }

// PaperScaleConfig returns the paper's absolute geometry (scale 1) with a
// larger instruction budget. Runs are roughly 100x slower than the default
// configuration; results match the default's shape.
func PaperScaleConfig() Config {
	cfg := harness.DefaultConfig()
	cfg.Scale = 1
	cfg.WarmupInstr = 20_000_000
	cfg.MeasureInstr = 60_000_000
	return cfg
}

// Engine selects the below-L1 stepping engine (Config.Engine): the fused
// L1→L2 kernel default, the per-reference descent A/B baseline, or the
// batched turn engine kept as a differential reference. Results are
// bit-identical across engines (DESIGN.md §§12, 15).
type Engine = cmp.Engine

// The stepping engines.
const (
	EngineFused   Engine = cmp.EngineFused
	EngineRefStep Engine = cmp.EngineRefStep
	EngineBatched Engine = cmp.EngineBatched
)

// ParseEngine maps an engine name ("fused", "refstep", "batched") to its
// Engine value — the asccbench -engine flag's parser.
func ParseEngine(name string) (Engine, error) { return cmp.ParseEngine(name) }

// ParseSampleRatio maps a set-sampling ratio ("1/8", "off", "") to the
// denominator for Config.SampleDen (0 = full fidelity) — the asccbench
// -sample flag's parser. See DESIGN.md §16.
func ParseSampleRatio(v string) (int, error) { return trace.ParseSampleRatio(v) }

// Policy identifies one of the reproduced cache-management designs.
type Policy = harness.PolicyID

// The reproduced designs. Baseline is the plain private-LLC configuration
// every improvement is measured against; ASCC/AVGCC/QoSAVGCC are the
// paper's contributions; the rest are the comparison points and ablations.
const (
	Baseline Policy = harness.PBaseline
	CC       Policy = harness.PCC
	DSR      Policy = harness.PDSR
	DSRDIP   Policy = harness.PDSRDIP
	DSR3S    Policy = harness.PDSR3S
	ECC      Policy = harness.PECC
	LRS      Policy = harness.PLRS
	LMS      Policy = harness.PLMS
	GMS      Policy = harness.PGMS
	LMSBIP   Policy = harness.PLMSBIP
	GMSSABIP Policy = harness.PGMSSABIP
	ASCC     Policy = harness.PASCC
	ASCC2S   Policy = harness.PASCC2S
	AVGCC    Policy = harness.PAVGCC
	QoSAVGCC Policy = harness.PQoSAVGCC
)

// Policies lists every reproduced design.
func Policies() []Policy {
	return []Policy{Baseline, CC, DSR, DSRDIP, DSR3S, ECC, LRS, LMS, GMS,
		LMSBIP, GMSSABIP, ASCC, ASCC2S, AVGCC, QoSAVGCC}
}

// Results holds per-core statistics of one simulation (CPI, MPKI, AML,
// spill counts, off-chip accesses, ...).
type Results = cmp.Results

// CoreStats is one core's measurements.
type CoreStats = cmp.CoreStats

// System is the simulated chip-multiprocessor; build one with
// Runner.NewMixSystem to drive a simulation directly (benchmarks,
// instrumentation), or use Runner.RunMix for the memoised path.
type System = cmp.System

// Runner executes workload mixes under policies. It is safe for concurrent
// use: simulations fan out across the configuration's worker pool
// (Config.Parallel slots) and a singleflight cache memoises every registry
// run, so the expensive single-application baselines the weighted-speedup
// metrics normalise against are simulated exactly once.
type Runner = harness.Runner

// NewRunner builds a Runner.
func NewRunner(cfg Config) *Runner { return harness.NewRunner(cfg) }

// Pool bounds how many simulations run at once and shares memoised runners
// across experiments. Attach one with Config.WithPool to reuse baseline
// simulations across several RunExperiment calls; results are bit-identical
// at every pool size.
type Pool = harness.Pool

// DefaultArenaStoreDir returns the conventional root of the persistent
// arena store (~/.cache/ascc/arenas); set Config.ArenaStoreDir to it — or
// any other directory — to replay packed workload streams across
// processes instead of re-synthesising them (DESIGN.md §14).
func DefaultArenaStoreDir() (string, error) { return harness.DefaultArenaStoreDir() }

// NewPool builds a worker pool with n slots; n <= 0 uses all CPUs.
func NewPool(n int) *Pool { return harness.NewPool(n) }

// ExperimentResult is one reproduced table or figure: a renderable text
// table plus headline values.
type ExperimentResult = experiments.Result

// RunExperiment reproduces one of the paper's tables or figures by id
// ("fig1".."fig11", "table1", "table4", "table5", "shared", "mt",
// "prefetch", "spills", "limited"), or the design-choice "ablation" study
// of DESIGN.md §6. See ExperimentIDs.
func RunExperiment(cfg Config, id string) (ExperimentResult, error) {
	return experiments.ByID(cfg, id)
}

// RunAllExperiments reproduces the full evaluation in paper order.
func RunAllExperiments(cfg Config) ([]ExperimentResult, error) {
	return experiments.All(cfg)
}

// ExperimentIDs lists the reproducible artefacts in paper order.
func ExperimentIDs() []string { return experiments.IDs() }

// Benchmarks returns the 13 SPEC CPU2006 models of Table 3.
func Benchmarks() []workload.Profile { return workload.Profiles() }

// BenchmarkByID resolves a SPEC number (e.g. 433) to its model.
func BenchmarkByID(id int) (workload.Profile, error) { return workload.ByID(id) }

// TwoAppMixes returns the fourteen 2-application workloads of the
// evaluation; FourAppMixes the six 4-application workloads of Table 1.
func TwoAppMixes() [][]int  { return workload.TwoAppMixes() }
func FourAppMixes() [][]int { return workload.FourAppMixes() }

// MixName formats a mix the way the paper writes it ("445+401+444+456").
func MixName(mix []int) string { return workload.MixName(mix) }

// ExtendMix widens a mix to cores slots by cyclic replication — the same
// widening Config.Cores applies inside the runner. A no-op when cores does
// not exceed the mix length.
func ExtendMix(mix []int, cores int) []int { return workload.ExtendMix(mix, cores) }

// WeightedSpeedup computes sum(IPC_i/IPCalone_i) — the paper's performance
// metric (Snavely & Tullsen).
func WeightedSpeedup(cpis, aloneCPIs []float64) float64 {
	return metrics.WeightedSpeedup(cpis, aloneCPIs)
}

// HMeanFairness computes the harmonic mean of normalised IPCs — the
// paper's fairness metric (Luo et al.).
func HMeanFairness(cpis, aloneCPIs []float64) float64 {
	return metrics.HMeanFairness(cpis, aloneCPIs)
}

// CPIs extracts the per-core CPI vector from a run.
func CPIs(r Results) []float64 { return metrics.CPIs(r) }

// TraceSpec describes one externally supplied trace file (binary .trc or
// .csv) and its core's timing parameters; see Runner.RunTraces.
type TraceSpec = harness.TraceSpec

// SeedStats summarises a metric across independent seeds (mean, stddev,
// min/max, 95% CI); see Runner.SpeedupOverSeeds.
type SeedStats = harness.SeedStats

// StorageCost returns the Table 5 storage report for a design name
// ("ASCC", "AVGCC", "QoS-AVGCC" or "DSR") at the paper's geometry.
func StorageCost(design string) (cost.Report, error) {
	g := cost.PaperGeometry()
	switch design {
	case "ASCC":
		return cost.ASCCReport(g), nil
	case "AVGCC":
		return cost.AVGCCReport(g, 0), nil
	case "QoS-AVGCC":
		return cost.QoSAVGCCReport(g), nil
	case "DSR":
		return cost.DSRReport(g), nil
	}
	return cost.Report{}, errUnknownDesign(design)
}

type errUnknownDesign string

func (e errUnknownDesign) Error() string {
	return "ascc: unknown design " + string(e) + ` (want "ASCC", "AVGCC", "QoS-AVGCC" or "DSR")`
}
