package trace

// Persistence hooks for packed arenas (DESIGN.md §14).
//
// An Arena's packed words are what the persistent chunk-file store
// (internal/trace/store) writes to disk and maps back in. The contract has
// three parts:
//
//   - Snapshot streams a consistent frozen prefix out of a live arena (the
//     write-behind half of the store tier);
//   - AdoptFrozen rebuilds an arena directly over externally owned packed
//     words — a read-only memory mapping — without decoding or copying
//     anything but the partial tail chunk (the read-through half);
//   - WalkPacked structurally validates an untrusted word stream before it
//     is adopted, so a crafted or corrupted file can never push a replayer's
//     cursor past the chunk table (the store pairs it with checksums).
//
// An adopted arena still extends on demand: its source generator is fresh
// (position zero) while the frozen prefix already covers the first Refs()
// references, so the first extension past the prefix fast-forwards the
// generator — one synthesis pass over the prefix, paid only when a run
// outruns what the store held, after which a flush ratchets the stored
// prefix forward so no later process pays it again.

import "unsafe"

// PackCodecVersion identifies the packed-word reference codec (the
// bit-layout documented above packGapBits). The persistent arena store
// stamps it into every chunk file and rejects mismatches, so changing the
// packing only requires bumping this constant — stale files then read as
// misses and regenerate. The CI workflow's arena-store cache key mirrors
// this value; keep them in step.
const PackCodecVersion = 1

// ArenaSnapshot describes the frozen prefix one Snapshot call streamed.
type ArenaSnapshot struct {
	Words    uint64 // packed words in the prefix
	Refs     uint64 // whole references those words encode
	LastAddr uint64 // encoder's address after the prefix (delta base of the next ref)
}

// Snapshot streams the packed words of the arena's frozen prefix to fn in
// chunk-sized spans and returns the prefix's dimensions. It holds the
// writer lock for the whole call, so the spans always form one consistent
// prefix (words, reference count and encoder address agree) even while
// concurrent replayers are waiting to extend; readers of the already
// published prefix are unaffected. fn must not retain the spans.
func (a *Arena) Snapshot(fn func(span []uint64) error) (ArenaSnapshot, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cs := *a.chunks.Load()
	rem := a.wwords
	for ci := 0; rem > 0; ci++ {
		n := uint64(arenaChunkWords)
		if n > rem {
			n = rem
		}
		if err := fn(cs[ci][:n]); err != nil {
			return ArenaSnapshot{}, err
		}
		rem -= n
	}
	return ArenaSnapshot{Words: a.wwords, Refs: a.wrefs, LastAddr: a.encPrev}, nil
}

// AdoptFrozen builds an Arena whose frozen prefix aliases externally owned
// packed words — typically a read-only memory mapping of a store chunk
// file. Full chunks are adopted in place (zero copy, zero decode); only the
// partial tail chunk is copied onto the heap so that future extension never
// writes into the foreign memory, preserving the immutable-chunk-table
// reader contract. words must stay valid and unmodified for the life of the
// arena and every replayer over it, must be structurally valid (see
// WalkPacked) and must encode exactly refs references ending at lastAddr —
// the store validates all three before calling here. src continues the
// stream past the prefix exactly as NewArena would, via the fast-forward
// described in the package comment above.
func AdoptFrozen(src Generator, words []uint64, refs, lastAddr uint64) *Arena {
	a := &Arena{
		name:    src.Name(),
		src:     src,
		genBuf:  make([]Ref, arenaGenBatch),
		wwords:  uint64(len(words)),
		wrefs:   refs,
		encPrev: lastAddr,
		skip:    refs,
	}
	full := len(words) >> arenaChunkShift
	cs := make([]*arenaChunk, full, full+1)
	for i := range cs {
		cs[i] = (*arenaChunk)(unsafe.Pointer(&words[i<<arenaChunkShift]))
	}
	if rem := len(words) & arenaChunkMask; rem > 0 {
		tail := new(arenaChunk)
		copy(tail[:rem], words[full<<arenaChunkShift:])
		cs = append(cs, tail)
	}
	a.chunks.Store(&cs)
	a.nwords.Store(a.wwords)
	a.nrefs.Store(a.wrefs)
	return a
}

// fastForward discards the source generator's first skip references: the
// arena's adopted prefix already encodes them, so the generator only has to
// reach the position where live appending resumes. Writer-only (mu held);
// runs at most once per adopted arena.
func (a *Arena) fastForward() {
	for a.skip > 0 {
		n := uint64(len(a.genBuf))
		if n > a.skip {
			n = a.skip
		}
		a.src.NextBatch(a.genBuf[:n])
		a.skip -= n
	}
}

// WalkPacked scans a packed word stream exactly as a Replayer would decode
// it, without materialising references: one word per packed reference,
// three for an escape record (detected, like the decoder, by an all-ones
// gap field). It returns the number of whole references the stream encodes
// and the final decoded address, with ok=false when the stream is
// structurally invalid — an escape record truncated by the end of the
// stream, which would otherwise march a replayer's cursor past the words a
// file actually holds. The store runs this over every candidate file before
// adoption and cross-checks refs and lastAddr against the file header.
func WalkPacked(words []uint64) (refs, lastAddr uint64, ok bool) {
	var prev uint64
	n := uint64(len(words))
	for pos := uint64(0); pos < n; refs++ {
		w := words[pos]
		if (w>>1)&packGapMask == packGapMask {
			if pos+3 > n {
				return refs, prev, false
			}
			prev = words[pos+1]
			pos += 3
			continue
		}
		zz := w >> (packGapBits + 1)
		prev += uint64(int64(zz>>1) ^ -int64(zz&1))
		pos++
	}
	return refs, prev, true
}
