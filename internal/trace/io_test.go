package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func sampleRefs() []Ref {
	return []Ref{
		{Addr: 0x1000, Write: false, Gap: 3},
		{Addr: 0xdeadbeef00, Write: true, Gap: 0},
		{Addr: 0, Write: false, Gap: 1 << 20},
		{Addr: 1<<42 - 32, Write: true, Gap: 7},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range sampleRefs() {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 4 {
		t.Fatalf("count %d", w.Count())
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 4 {
		t.Fatalf("read %d refs", len(back))
	}
	for i, r := range sampleRefs() {
		if back[i] != r {
			t.Fatalf("ref %d: %+v != %+v", i, back[i], r)
		}
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	refs, err := ReadBinary(&buf)
	if err != nil || len(refs) != 0 {
		t.Fatalf("empty trace: %v refs, err %v", refs, err)
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOTATRACEFILE")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadBinary(strings.NewReader("AS")); err == nil {
		t.Fatal("truncated magic accepted")
	}
}

func TestBinaryTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Ref{Addr: 1 << 40, Gap: 5}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-1]
	if _, err := ReadBinary(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(addrs []uint64, seed uint64) bool {
		if len(addrs) == 0 {
			return true
		}
		refs := make([]Ref, len(addrs))
		for i, a := range addrs {
			refs[i] = Ref{Addr: a, Write: a%3 == 0, Gap: int32(a % 1000)}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range refs {
			if err := w.Write(r); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil || len(back) != len(refs) {
			return false
		}
		for i := range refs {
			if back[i] != refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleRefs()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range sampleRefs() {
		if back[i] != r {
			t.Fatalf("ref %d: %+v != %+v", i, back[i], r)
		}
	}
}

func TestCSVSkipsCommentsAndHeader(t *testing.T) {
	in := "# a comment\naddr,write,gap\n0x20,1,5\n\n64,0,2\n"
	refs, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 2 || refs[0].Addr != 0x20 || !refs[0].Write || refs[1].Addr != 64 {
		t.Fatalf("parsed %+v", refs)
	}
}

func TestCSVErrors(t *testing.T) {
	for name, in := range map[string]string{
		"fields": "1,2\n",
		"addr":   "zz,0,1\n",
		"write":  "0x10,7,1\n",
		"gap":    "0x10,0,-4\n",
		"empty":  "# nothing\n",
	} {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: bad CSV accepted", name)
		}
	}
}

func TestReplayCycles(t *testing.T) {
	rp, err := NewReplay("t", sampleRefs())
	if err != nil {
		t.Fatal(err)
	}
	if rp.Name() != "t" || rp.Len() != 4 {
		t.Fatalf("replay meta wrong: %s %d", rp.Name(), rp.Len())
	}
	for cycle := 0; cycle < 3; cycle++ {
		for i, want := range sampleRefs() {
			if got := rp.Next(); got != want {
				t.Fatalf("cycle %d ref %d: %+v != %+v", cycle, i, got, want)
			}
		}
	}
	if _, err := NewReplay("x", nil); err == nil {
		t.Fatal("empty replay accepted")
	}
}

func TestRecord(t *testing.T) {
	g := NewComposite("x", 1, 100, []Mixed{{Comp: &HotLines{Lines: 4}, Weight: 1}})
	refs := Record(g, 25)
	if len(refs) != 25 {
		t.Fatalf("recorded %d", len(refs))
	}
	// Recording must be replayable.
	rp, err := NewReplay("x", refs)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Next() != refs[0] {
		t.Fatal("replay differs from recording")
	}
}
