package trace

import (
	"math"
	"reflect"
	"testing"
)

// scale-8 default geometry: 512 L2 sets, 32 L1 sets, SDM stride 16.
func defaultSpec(t *testing.T, den int) *SampleSpec {
	t.Helper()
	s, err := NewSampleSpec(512, 32, 32, den, 16)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseSampleRatio(t *testing.T) {
	cases := []struct {
		in   string
		den  int
		fail bool
	}{
		{"off", 0, false}, {"", 0, false}, {"1/8", 8, false}, {"1/2", 2, false},
		{"1/1", 0, true}, {"2/8", 0, true}, {"8", 0, true}, {"1/x", 0, true},
		{"1/-4", 0, true}, {"on", 0, true},
	}
	for _, c := range cases {
		den, err := ParseSampleRatio(c.in)
		if c.fail {
			if err == nil {
				t.Errorf("ParseSampleRatio(%q) accepted", c.in)
			}
			continue
		}
		if err != nil || den != c.den {
			t.Errorf("ParseSampleRatio(%q) = %d, %v; want %d", c.in, den, err, c.den)
		}
	}
}

func TestSampleSpecValidation(t *testing.T) {
	cases := []struct {
		l2, l1, line, den int
	}{
		{512, 32, 32, 1},  // denominator < 2
		{512, 32, 32, 64}, // does not divide the granule
		{512, 32, 32, 3},  // not a power of two -> does not divide
		{512, 48, 32, 2},  // L1 sets not a power of two
		{100, 32, 32, 2},  // L2 sets not a power of two
		{16, 32, 32, 2},   // L2 smaller than L1
		{512, 32, 48, 2},  // line size not a power of two
	}
	for _, c := range cases {
		if _, err := NewSampleSpec(c.l2, c.l1, c.line, c.den, 16); err == nil {
			t.Errorf("NewSampleSpec(%+v) accepted", c)
		}
	}
}

// TestSampleSpecLeaders pins the deterministic residue choice on the scale-8
// geometry: the spill/receive SDM residues ({0,1} mod the 16-set stride)
// come first, then the DIP residues ({2,3}), then even fill.
func TestSampleSpecLeaders(t *testing.T) {
	cases := []struct {
		den  int
		want []int
	}{
		{16, []int{0, 1}},
		{8, []int{0, 1, 16, 17}},
		{4, []int{0, 1, 2, 3, 16, 17, 18, 19}},
	}
	for _, c := range cases {
		s := defaultSpec(t, c.den)
		if !reflect.DeepEqual(s.Residues, c.want) {
			t.Errorf("1/%d residues = %v, want %v", c.den, s.Residues, c.want)
		}
	}
	// 1/2 must contain every monitor residue plus an even follower spread.
	s := defaultSpec(t, 2)
	if len(s.Residues) != 16 {
		t.Fatalf("1/2 chose %d residues", len(s.Residues))
	}
	for _, r := range []int{0, 1, 2, 3, 16, 17, 18, 19} {
		if s.rank[r] < 0 {
			t.Errorf("1/2 sample dropped monitor residue %d", r)
		}
	}
}

// TestSampleRewriteRoundTrip pins the address rewrite: injective, inverted
// by UnrewriteBlock, set-index coherent with OrigSet/OrigL1Set, and sub-line
// bits preserved.
func TestSampleRewriteRoundTrip(t *testing.T) {
	s := defaultSpec(t, 8)
	cSets := uint64(s.CompactSets())
	seen := map[uint64]uint64{}
	for b := uint64(0); b < 4096; b++ {
		if !s.KeepBlock(b) {
			continue
		}
		rb := s.RewriteBlock(b)
		if prev, dup := seen[rb]; dup {
			t.Fatalf("rewrite collision: blocks %#x and %#x -> %#x", prev, b, rb)
		}
		seen[rb] = b
		if got := s.UnrewriteBlock(rb); got != b {
			t.Fatalf("unrewrite(%#x) = %#x, want %#x", rb, got, b)
		}
		cs := int(rb % cSets)
		if got := s.OrigSet(cs); got != int(b%uint64(s.Sets)) {
			t.Fatalf("block %#x: OrigSet(%d) = %d, want %d", b, cs, got, b%uint64(s.Sets))
		}
		cl1 := int(rb) % len(s.Residues)
		if got := s.OrigL1Set(cl1); got != int(b)%s.Granule {
			t.Fatalf("block %#x: OrigL1Set(%d) = %d, want %d", b, cl1, got, int(b)%s.Granule)
		}
		addr := b<<5 | 13 // 32B lines, arbitrary sub-line offset
		if got := s.RewriteAddr(addr); got != rb<<5|13 {
			t.Fatalf("RewriteAddr(%#x) = %#x, want %#x", addr, got, rb<<5|13)
		}
	}
	if len(seen) != 4096/8 {
		t.Fatalf("kept %d of 4096 blocks, want exactly 1/8", len(seen))
	}
}

// sliceGen replays a fixed script cyclically.
type sliceGen struct {
	refs []Ref
	pos  int
}

func (g *sliceGen) Name() string { return "script" }
func (g *sliceGen) Next() Ref {
	r := g.refs[g.pos]
	g.pos = (g.pos + 1) % len(g.refs)
	return r
}
func (g *sliceGen) NextBatch(buf []Ref) { FillBatch(g, buf) }

// sampleScript touches every residue of the 32-set granule with varied gaps
// and writes.
func sampleScript() []Ref {
	refs := make([]Ref, 0, 160)
	for i := 0; i < 160; i++ {
		refs = append(refs, Ref{
			Addr:  uint64(i%97) * 32,
			Write: i%5 == 0,
			Gap:   int32(i % 7),
		})
	}
	return refs
}

// TestSampledViewGapMerging drives View and FilterView over one script and
// checks the contract: both keep the same subsequence with identical merged
// gaps and write flags (FilterView at original addresses, View rewritten),
// and cumulative instructions at every kept reference exactly match the full
// stream's cumulative count at that reference.
func TestSampledViewGapMerging(t *testing.T) {
	s := defaultSpec(t, 8)
	script := sampleScript()
	filt := s.FilterView(&sliceGen{refs: script})
	rewr := s.View(&sliceGen{refs: script})

	var fullInstr int64
	pos := 0
	next := func() Ref { r := script[pos%len(script)]; pos++; return r }

	var keptInstr int64
	for i := 0; i < 300; i++ {
		f, w := filt.Next(), rewr.Next()
		// Advance the raw script to the next kept reference, summing
		// instructions.
		var raw Ref
		for {
			raw = next()
			fullInstr += int64(raw.Gap) + 1
			if s.Keep(raw.Addr) {
				break
			}
		}
		if f.Addr != raw.Addr || f.Write != raw.Write {
			t.Fatalf("kept ref %d: filter view %+v, raw %+v", i, f, raw)
		}
		if w.Addr != s.RewriteAddr(raw.Addr) || w.Write != raw.Write || w.Gap != f.Gap {
			t.Fatalf("kept ref %d: rewrite view %+v vs filter %+v (raw %+v)", i, w, f, raw)
		}
		keptInstr += int64(f.Gap) + 1
		if keptInstr != fullInstr {
			t.Fatalf("kept ref %d: cumulative instructions %d, full stream %d", i, keptInstr, fullInstr)
		}
	}
}

// TestSampledViewGapClamp pins the saturation behaviour: merged gaps beyond
// the int32 range clamp identically in both views.
func TestSampledViewGapClamp(t *testing.T) {
	s := defaultSpec(t, 8)
	// Residue 4 is not sampled at 1/8 ({0,1,16,17}); residue 0 is.
	skip := Ref{Addr: 4 * 32, Gap: math.MaxInt32 - 5}
	keep := Ref{Addr: 0, Gap: 7}
	script := []Ref{skip, skip, keep}
	f := s.FilterView(&sliceGen{refs: script}).Next()
	w := s.View(&sliceGen{refs: script}).Next()
	if f.Gap != math.MaxInt32 || w.Gap != math.MaxInt32 {
		t.Fatalf("merged gaps %d / %d, want clamped MaxInt32", f.Gap, w.Gap)
	}
}

// TestSampledViewArena packs a sampled view into an arena (the sub-arena
// path the harness caches) and checks the replay is bit-identical to
// streaming the view directly — merged gaps ride the codec's escape path
// when they outgrow the packed gap field.
func TestSampledViewArena(t *testing.T) {
	s := defaultSpec(t, 8)
	script := sampleScript()
	// Inflate one gap so at least one merged gap needs an escape record.
	script[3].Gap = 1 << 20
	direct := s.View(&sliceGen{refs: script})
	arena := NewArena(s.View(&sliceGen{refs: script}))
	rep := arena.NewReplayer()
	buf := make([]Ref, 64)
	want := make([]Ref, 64)
	for round := 0; round < 8; round++ {
		rep.NextBatch(buf)
		direct.NextBatch(want)
		for i := range buf {
			if buf[i] != want[i] {
				t.Fatalf("round %d ref %d: replay %+v, direct %+v", round, i, buf[i], want[i])
			}
		}
	}
}
