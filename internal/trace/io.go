package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Trace file support: reference streams can be serialised to a compact
// binary format (or CSV) and replayed through the simulator, so users can
// drive the CMP with traces from their own tools instead of the synthetic
// models.
//
// Binary format: the 8-byte magic "ASCCTRC1", then one record per
// reference — address as a uvarint, gap as a uvarint shifted left by one
// with the write flag in bit 0.

// binaryMagic identifies binary trace files.
const binaryMagic = "ASCCTRC1"

// Writer serialises references to the binary trace format.
type Writer struct {
	w     *bufio.Writer
	buf   [2 * binary.MaxVarintLen64]byte
	wrote bool
	n     uint64
}

// NewWriter starts a binary trace stream on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one reference.
func (t *Writer) Write(r Ref) error {
	if !t.wrote {
		if _, err := t.w.WriteString(binaryMagic); err != nil {
			return err
		}
		t.wrote = true
	}
	n := binary.PutUvarint(t.buf[:], r.Addr)
	gw := uint64(r.Gap) << 1
	if r.Write {
		gw |= 1
	}
	n += binary.PutUvarint(t.buf[n:], gw)
	if _, err := t.w.Write(t.buf[:n]); err != nil {
		return err
	}
	t.n++
	return nil
}

// Count returns the references written so far.
func (t *Writer) Count() uint64 { return t.n }

// Flush finishes the stream (writes the header even for empty traces).
func (t *Writer) Flush() error {
	if !t.wrote {
		if _, err := t.w.WriteString(binaryMagic); err != nil {
			return err
		}
		t.wrote = true
	}
	return t.w.Flush()
}

// Replay is an in-memory trace that implements Generator by cycling
// through its references endlessly (the simulator's generators are
// infinite streams; a finite trace wraps around).
type Replay struct {
	name string
	refs []Ref
	i    int
}

// NewReplay wraps a reference slice as a cyclic Generator.
func NewReplay(name string, refs []Ref) (*Replay, error) {
	if len(refs) == 0 {
		return nil, errors.New("trace: empty trace")
	}
	return &Replay{name: name, refs: refs}, nil
}

// Name implements Generator.
func (r *Replay) Name() string { return r.name }

// Len returns the number of references in one cycle.
func (r *Replay) Len() int { return len(r.refs) }

// Next implements Generator.
func (r *Replay) Next() Ref {
	ref := r.refs[r.i]
	r.i++
	if r.i == len(r.refs) {
		r.i = 0
	}
	return ref
}

// NextBatch implements Generator, copying whole runs of the cyclic trace at
// a time.
func (r *Replay) NextBatch(buf []Ref) {
	for n := 0; n < len(buf); {
		k := copy(buf[n:], r.refs[r.i:])
		n += k
		r.i += k
		if r.i == len(r.refs) {
			r.i = 0
		}
	}
}

// ReadBinary parses a binary trace stream into memory.
func ReadBinary(rd io.Reader) ([]Ref, error) {
	br := bufio.NewReader(rd)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q (not a binary trace)", magic)
	}
	var refs []Ref
	for {
		addr, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return refs, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", len(refs), err)
		}
		gw, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d truncated: %w", len(refs), err)
		}
		gap := gw >> 1
		if gap > 1<<31-1 {
			return nil, fmt.Errorf("trace: record %d: gap %d overflows", len(refs), gap)
		}
		refs = append(refs, Ref{Addr: addr, Write: gw&1 == 1, Gap: int32(gap)})
	}
}

// WriteCSV serialises references as "addr,write,gap" CSV (hex addresses),
// matching cmd/tracegen's output.
func WriteCSV(w io.Writer, refs []Ref) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("addr,write,gap\n"); err != nil {
		return err
	}
	for _, r := range refs {
		wr := 0
		if r.Write {
			wr = 1
		}
		if _, err := fmt.Fprintf(bw, "%#x,%d,%d\n", r.Addr, wr, r.Gap); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses the "addr,write,gap" CSV format. Lines starting with "#"
// and the header line are skipped. Addresses may be decimal or 0x-hex.
func ReadCSV(rd io.Reader) ([]Ref, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	var refs []Ref
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "addr,") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields, got %d", lineNo, len(parts))
		}
		addr, err := strconv.ParseUint(strings.TrimSpace(parts[0]), 0, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address: %w", lineNo, err)
		}
		wr, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil || (wr != 0 && wr != 1) {
			return nil, fmt.Errorf("trace: line %d: bad write flag %q", lineNo, parts[1])
		}
		gap, err := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 32)
		if err != nil || gap < 0 {
			return nil, fmt.Errorf("trace: line %d: bad gap %q", lineNo, parts[2])
		}
		refs = append(refs, Ref{Addr: addr, Write: wr == 1, Gap: int32(gap)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(refs) == 0 {
		return nil, errors.New("trace: no references in CSV")
	}
	return refs, nil
}

// Record captures n references from a generator into a slice (a helper for
// producing trace files from the synthetic models).
func Record(g Generator, n int) []Ref {
	refs := make([]Ref, n)
	for i := range refs {
		refs[i] = g.Next()
	}
	return refs
}
