package trace

// Memoised packed reference-stream arena (DESIGN.md §10).
//
// The engine deliberately compares policies on bit-identical reference
// streams, yet historically every policy run of a mix re-synthesised the
// same stream from scratch — after the cache kernel and coherence probes
// were optimised, trace synthesis (component mixing, Zipf sampling, RNG
// draws) was the top of the steady-state profile. An Arena generates each
// stream once, packs it at one uint64 per reference, and replays it through
// any number of Replayers: the per-run synthesis cost becomes a
// once-per-(workload, seed) cost, and the replay path is a straight decode
// with no virtual component dispatch and no RNG draws.
//
// Concurrency protocol (single-writer, frozen-prefix readers): the arena is
// append-only. A single writer at a time — serialised by Arena.mu — pulls
// batches from the source generator and packs them into fixed-size chunks;
// it publishes progress by atomically storing the word and reference counts
// *after* the words are written, and publishes chunk-table growth by
// atomically swapping an immutable chunk-pointer slice. Readers never take
// the lock: they load the published reference count and only decode below
// it (the frozen prefix), so concurrent policy runs of very different
// lengths — including the "past-quota cores keep executing" tail — share
// one arena race-free, extending it on demand when they outrun the prefix.

import (
	"sync"
	"sync/atomic"
)

// Packed-word layout, least-significant bit first:
//
//	bit  0      write flag
//	bits 1..12  instruction gap (packGapBits wide)
//	bits 13..63 zigzag-encoded address delta to the previous reference
//
// A reference whose gap or delta does not fit falls back to an escape
// record: a word whose gap field is all-ones (the delta and write bits are
// zero), followed by the full 64-bit address and a word holding
// uint32(gap)<<1 | write. The workload models emit 32-byte-aligned
// addresses within a few hundred megabytes of their base and single-digit
// gaps, so in practice every reference packs into one word; the escape
// path exists so the codec is total over arbitrary Ref values (and is
// exercised by FuzzRefCodec's committed corpus).
const (
	packGapBits   = 12
	packGapMask   = 1<<packGapBits - 1
	packDeltaBits = 63 - packGapBits // 51
	packDeltaMax  = 1<<packDeltaBits - 1
	packEscape    = uint64(packGapMask) << 1
)

// arenaChunkWords is the fixed chunk size: 64 Ki words (512 KiB) holds
// ~65 k packed references, so a full default-budget simulation run stays
// within a few dozen chunks and the copy-on-grow chunk table stays tiny.
const (
	arenaChunkShift = 16
	arenaChunkWords = 1 << arenaChunkShift
	arenaChunkMask  = arenaChunkWords - 1
)

type arenaChunk [arenaChunkWords]uint64

// arenaGenBatch is how many references the writer pulls from the source
// generator per packing iteration, and arenaExtendAhead how far past the
// requested position an extension overshoots: readers hitting the end of
// the frozen prefix then pay one writer-lock acquisition per ~16 k
// references instead of one per 64-reference simulator batch.
const (
	arenaGenBatch    = 256
	arenaExtendAhead = 16384
)

// Arena is a chunked, append-only, packed encoding of one generator's
// reference stream. Build one with NewArena, replay it with NewReplayer;
// the source generator must not be used elsewhere once handed over.
type Arena struct {
	name string

	// chunks is the immutable chunk-pointer table; the writer swaps in a
	// longer copy when it fills a chunk. nwords/nrefs are the published
	// frozen prefix: readers may decode words below nwords, which always
	// form exactly nrefs whole references.
	chunks atomic.Pointer[[]*arenaChunk]
	nwords atomic.Uint64
	nrefs  atomic.Uint64

	// Writer state, guarded by mu: the source generator, its batch buffer,
	// the writer's private word/ref counts (mirrors of nwords/nrefs), the
	// encoder's previous address, and — for arenas adopted from the
	// persistent store (AdoptFrozen) — the references the fresh generator
	// must discard before live appending resumes.
	mu      sync.Mutex
	src     Generator
	genBuf  []Ref
	wwords  uint64
	wrefs   uint64
	encPrev uint64
	skip    uint64
}

// NewArena wraps src as the single producer of a packed arena. The arena
// owns src from here on: replaying and extending consume it.
func NewArena(src Generator) *Arena {
	a := &Arena{
		name:   src.Name(),
		src:    src,
		genBuf: make([]Ref, arenaGenBatch),
	}
	empty := []*arenaChunk{}
	a.chunks.Store(&empty)
	return a
}

// Name returns the source generator's name.
func (a *Arena) Name() string { return a.name }

// Refs returns the published reference count — the frozen prefix length
// any replayer may decode without synchronisation.
func (a *Arena) Refs() uint64 { return a.nrefs.Load() }

// Bytes returns the packed storage held by the arena (the memory the
// cache's budget accounts against).
func (a *Arena) Bytes() int64 {
	return int64(len(*a.chunks.Load())) * arenaChunkWords * 8
}

// Extend generates and packs references until the frozen prefix holds at
// least minRefs of them. Any goroutine may call it; the internal lock makes
// the generator single-writer, and concurrent readers keep decoding the
// already-published prefix while the extension runs.
func (a *Arena) Extend(minRefs uint64) {
	if a.nrefs.Load() >= minRefs {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.skip > 0 {
		a.fastForward()
	}
	for a.wrefs < minRefs {
		a.src.NextBatch(a.genBuf)
		for _, ref := range a.genBuf {
			a.appendRef(ref)
		}
		a.wrefs += uint64(len(a.genBuf))
		// Publication order matters: words first, then the ref count
		// readers gate on (atomic stores order these writes).
		a.nwords.Store(a.wwords)
		a.nrefs.Store(a.wrefs)
	}
}

// appendRef packs one reference at the write position. Writer-only.
func (a *Arena) appendRef(ref Ref) {
	delta := int64(ref.Addr - a.encPrev)
	zz := uint64(delta<<1) ^ uint64(delta>>63)
	gap := ref.Gap
	a.encPrev = ref.Addr
	if zz <= packDeltaMax && gap >= 0 && gap < packGapMask {
		w := zz<<(packGapBits+1) | uint64(gap)<<1
		if ref.Write {
			w |= 1
		}
		a.appendWord(w)
		return
	}
	// Escape record: marker, full address, gap+write word.
	a.appendWord(packEscape)
	a.appendWord(ref.Addr)
	gw := uint64(uint32(gap)) << 1
	if ref.Write {
		gw |= 1
	}
	a.appendWord(gw)
}

// appendWord stores one packed word, growing the chunk table when the tail
// chunk is full. Writer-only; the swapped-in table is a fresh slice so
// concurrent readers keep a consistent view of the one they loaded.
func (a *Arena) appendWord(w uint64) {
	cs := *a.chunks.Load()
	ci := int(a.wwords >> arenaChunkShift)
	if ci == len(cs) {
		grown := make([]*arenaChunk, len(cs)+1)
		copy(grown, cs)
		grown[len(cs)] = new(arenaChunk)
		a.chunks.Store(&grown)
		cs = grown
	}
	cs[ci][a.wwords&arenaChunkMask] = w
	a.wwords++
}

// NewReplayer returns an independent reader positioned at the start of the
// stream. Replayers are cheap (a few words of cursor state), single-
// goroutine like every Generator, and allocation-free on NextBatch once the
// arena covers the replayed prefix.
func (a *Arena) NewReplayer() *Replayer {
	return &Replayer{a: a}
}

// Replayer decodes an Arena back into the exact reference stream its
// source generator would have produced. It implements Generator, so it
// drops into the simulator wherever the live generator would go.
type Replayer struct {
	a      *Arena
	pos    uint64 // absolute word cursor
	refPos uint64 // references decoded so far
	prev   uint64 // decoder's previous address (delta base)
}

// Name implements Generator.
func (r *Replayer) Name() string { return r.a.name }

// Next implements Generator.
func (r *Replayer) Next() Ref {
	var one [1]Ref
	r.NextBatch(one[:])
	return one[0]
}

// NextBatch implements Generator: a straight decode of len(buf) packed
// references into buf — no component dispatch, no RNG draws. When the
// frozen prefix runs out the arena is extended (ahead, to amortise the
// writer lock) before decoding resumes.
func (r *Replayer) NextBatch(buf []Ref) {
	need := r.refPos + uint64(len(buf))
	if need > r.a.Refs() {
		r.a.Extend(need + arenaExtendAhead)
	}
	cs := *r.a.chunks.Load()
	pos, prev := r.pos, r.prev
	for i := range buf {
		w := cs[pos>>arenaChunkShift][pos&arenaChunkMask]
		pos++
		if (w>>1)&packGapMask == packGapMask {
			// Escape record: full address, then gap+write.
			addr := cs[pos>>arenaChunkShift][pos&arenaChunkMask]
			pos++
			gw := cs[pos>>arenaChunkShift][pos&arenaChunkMask]
			pos++
			buf[i] = Ref{Addr: addr, Write: gw&1 != 0, Gap: int32(uint32(gw >> 1))}
			prev = addr
			continue
		}
		zz := w >> (packGapBits + 1)
		prev += uint64(int64(zz>>1) ^ -int64(zz&1))
		buf[i] = Ref{Addr: prev, Write: w&1 != 0, Gap: int32((w >> 1) & packGapMask)}
	}
	r.pos, r.prev, r.refPos = pos, prev, need
}

// ArenaStore is a persistent tier beneath an ArenaCache: chunk files keyed
// by the cache's stream keys, surviving the process (see
// internal/trace/store for the mmap-backed implementation). Load returns
// the stored arena for key, or nil on any miss — absent file, corruption,
// codec-version mismatch — in which case the cache falls back to live
// synthesis; src is consumed by the returned arena exactly as NewArena
// would, continuing the stream past the stored prefix. Save persists a's
// current frozen prefix under key, atomically with respect to concurrent
// readers in other processes. Implementations must be safe for concurrent
// use.
type ArenaStore interface {
	Load(key string, src Generator) *Arena
	Save(key string, a *Arena) error
}

// ArenaCache memoises arenas under a memory budget. Get is singleflight
// per key: concurrent callers for the same stream share one arena (and
// therefore one generation pass). When the packed bytes held by cached
// arenas exceed the budget, cold arenas are evicted least-recently-used
// first; replayers already holding an evicted arena keep working — eviction
// only drops the cache's reference, so the next request for that stream
// regenerates from scratch.
//
// With a persistent store attached (SetStore) the cache becomes the
// in-memory tier of a two-level hierarchy: Get reads through to the store
// on a memory miss, eviction writes a dirty arena behind before dropping
// it, and FlushStore persists everything that grew since its last save —
// so a later process replays the streams this one synthesised.
type ArenaCache struct {
	mu      sync.Mutex
	max     int64
	tick    uint64
	entries map[string]*arenaCacheEntry
	store   ArenaStore
	// saved tracks, per key, the reference count already persisted, so
	// flushes and eviction write-behinds only touch arenas that grew.
	saved map[string]uint64
}

type arenaCacheEntry struct {
	a       *Arena
	lastUse uint64
}

// NewArenaCache builds a cache bounded to maxBytes of packed stream data
// (enforced at acquisition time; an arena growing between acquisitions can
// overshoot transiently). maxBytes <= 0 means unbounded.
func NewArenaCache(maxBytes int64) *ArenaCache {
	return &ArenaCache{max: maxBytes, entries: map[string]*arenaCacheEntry{}, saved: map[string]uint64{}}
}

// SetStore attaches a persistent tier. The first store wins: runners
// sharing one pool-wide cache may race to attach (possibly with different
// roots), and swapping stores mid-flight would split the dirty-tracking
// state across directories. Attaching nil is a no-op.
func (c *ArenaCache) SetStore(s ArenaStore) {
	if s == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.store == nil {
		c.store = s
	}
}

// Store returns the attached persistent tier, nil when none.
func (c *ArenaCache) Store() ArenaStore {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.store
}

// FlushStore persists every cached arena whose frozen prefix grew since it
// was last saved (write-behind). A no-op without a store. Call it when a
// batch of runs completes — the CLI flushes once per invocation — rather
// than per run: arenas extend lazily throughout a run, so flushing early
// just rewrites files the next flush replaces. Returns the first save
// error; later arenas are still attempted.
func (c *ArenaCache) FlushStore() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.store == nil {
		return nil
	}
	var first error
	for key, e := range c.entries {
		refs := e.a.Refs()
		if refs <= c.saved[key] {
			continue
		}
		if err := c.store.Save(key, e.a); err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		c.saved[key] = refs
	}
	return first
}

// MaxBytes returns the current byte budget (<= 0 means unbounded).
func (c *ArenaCache) MaxBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.max
}

// Raise lifts the byte budget to maxBytes when that is more permissive than
// the current one (maxBytes <= 0, unbounded, wins over any bound). Budgets
// never shrink: lowering the cap mid-run would evict arenas that concurrent
// runs sharing the cache are still replaying and extending, throwing away
// their generation passes and re-paying them on the next Get. Callers that
// share one cache under different configured budgets therefore operate
// under the union of their demands.
func (c *ArenaCache) Raise(maxBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max <= 0 {
		return // already unbounded
	}
	if maxBytes <= 0 || maxBytes > c.max {
		c.max = maxBytes
	}
}

// Get returns the arena cached under key, wrapping src into a new one on
// miss. key must uniquely determine src's stream: two generators producing
// different streams must never share a key. src is consumed only when the
// key misses; on a hit it is simply discarded. With a store attached, a
// memory miss first reads through to the persistent tier — a stored arena
// adopts its mapped prefix with zero decode, and src only synthesises
// whatever a run demands beyond it.
func (c *ArenaCache) Get(key string, src Generator) *Arena {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tick++
	e, ok := c.entries[key]
	if !ok {
		var a *Arena
		if c.store != nil {
			if a = c.store.Load(key, src); a != nil {
				c.saved[key] = a.Refs()
			}
		}
		if a == nil {
			a = NewArena(src)
		}
		e = &arenaCacheEntry{a: a}
		c.entries[key] = e
	}
	e.lastUse = c.tick
	c.evict(e)
	return e.a
}

// evict drops least-recently-used entries (never keep, which the caller is
// about to use) until the cached packed bytes fit the budget. With a store
// attached, a dirty arena is written behind before it is dropped, so
// eviction costs one file write instead of a future regeneration pass.
// Called with the lock held.
func (c *ArenaCache) evict(keep *arenaCacheEntry) {
	if c.max <= 0 {
		return
	}
	for len(c.entries) > 1 && c.bytes() > c.max {
		var coldKey string
		var cold *arenaCacheEntry
		for k, e := range c.entries {
			if e == keep {
				continue
			}
			if cold == nil || e.lastUse < cold.lastUse {
				coldKey, cold = k, e
			}
		}
		if cold == nil {
			return
		}
		if c.store != nil {
			if refs := cold.a.Refs(); refs > c.saved[coldKey] {
				if c.store.Save(coldKey, cold.a) == nil {
					c.saved[coldKey] = refs
				}
			}
		}
		delete(c.entries, coldKey)
	}
}

// bytes sums the packed storage of every cached arena. Lock held.
func (c *ArenaCache) bytes() int64 {
	var n int64
	for _, e := range c.entries {
		n += e.a.Bytes()
	}
	return n
}

// Bytes returns the packed storage currently held by cached arenas.
func (c *ArenaCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes()
}

// Len returns the number of cached arenas.
func (c *ArenaCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
