// Package trace defines the memory-reference streams that drive the
// simulator and a small library of composable address-pattern components.
//
// A Generator yields an endless stream of references; the per-benchmark
// models in internal/workload are built by mixing components (sequential
// streams, cyclic loops, uniform random walks, Zipf-skewed region accesses,
// hot-line pools) over disjoint address regions, which is how the synthetic
// SPEC CPU2006 stand-ins reproduce the footprint, reuse-distance and per-set
// skew properties the paper's policies react to (see DESIGN.md §3).
package trace

import (
	"fmt"

	"ascc/internal/rng"
)

// Ref is one memory reference produced by a generator.
type Ref struct {
	Addr  uint64 // byte address
	Write bool
	Gap   int32 // non-memory instructions executed before this reference
}

// Generator produces an endless reference stream.
type Generator interface {
	// Name identifies the stream (benchmark name for workload models).
	Name() string
	// Next returns the next reference. Implementations must be
	// deterministic for a fixed construction seed.
	Next() Ref
	// NextBatch fills buf with the next len(buf) references — exactly
	// equivalent to len(buf) successive Next calls, but one dynamic
	// dispatch for the whole batch. The simulator's per-core stepping pulls
	// from a refilled batch buffer, so this is the hot entry point;
	// generators without a native bulk path can delegate to FillBatch.
	NextBatch(buf []Ref)
}

// FillBatch implements NextBatch by calling g.Next once per element, for
// generators with no native bulk path.
func FillBatch(g Generator, buf []Ref) {
	for i := range buf {
		buf[i] = g.Next()
	}
}

// Component produces addresses within a region; the Composite generator
// mixes several weighted components and adds instruction gaps and writes.
type Component interface {
	// NextAddr returns the next byte address of this pattern.
	NextAddr(r *rng.Xoshiro256) uint64
}

// SeqStream walks sequentially through [Base, Base+Footprint) with the given
// stride, wrapping around: the classic streaming pattern (milc, libquantum,
// lbm). A footprint much larger than the LLC makes every access a miss with
// no reuse.
type SeqStream struct {
	Base      uint64
	Footprint uint64
	Stride    uint64
	pos       uint64
}

// NextAddr implements Component.
func (s *SeqStream) NextAddr(_ *rng.Xoshiro256) uint64 {
	a := s.Base + s.pos
	s.pos += s.Stride
	if s.pos >= s.Footprint {
		s.pos = 0
	}
	return a
}

// Loop is a cyclic walk over a working set. It is structurally a SeqStream;
// the distinct type documents intent (a loop's footprint is commensurate
// with the cache, so its hit rate depends on allocated capacity — the
// "benefits from more ways" benchmarks of Fig. 1).
type Loop struct {
	Base      uint64
	Footprint uint64
	Stride    uint64
	pos       uint64
}

// NextAddr implements Component.
func (l *Loop) NextAddr(_ *rng.Xoshiro256) uint64 {
	a := l.Base + l.pos
	l.pos += l.Stride
	if l.pos >= l.Footprint {
		l.pos = 0
	}
	return a
}

// RandomWalk picks lines uniformly inside its region (mcf-style pointer
// chasing over a huge heap).
type RandomWalk struct {
	Base      uint64
	Footprint uint64
	Align     uint64 // address alignment, typically the line size

	n uint64 // cached Footprint/Align (computed on first use)
}

// NextAddr implements Component.
func (w *RandomWalk) NextAddr(r *rng.Xoshiro256) uint64 {
	if w.n == 0 {
		if w.Align == 0 {
			w.Align = 32
		}
		w.n = w.Footprint / w.Align
	}
	// Inline r.Uint64n(w.n), with the modulo strength-reduced to a mask for
	// power-of-two line counts (every workload model's case): bit-identical
	// to the division, minus the ~30-cycle DIV on the per-reference path.
	u := r.Uint64()
	var i uint64
	if n := w.n; n&(n-1) == 0 {
		i = u & (n - 1)
	} else {
		i = u % n
	}
	return w.Base + i*w.Align
}

// ZipfRegions divides its footprint into NumRegions regions, picks a region
// with Zipf skew and runs a short sequential burst inside it. This creates
// the non-uniform per-set demand the paper motivates with Fig. 2: popular
// regions keep a subset of cache sets under pressure while others idle.
type ZipfRegions struct {
	Base       uint64
	Footprint  uint64
	NumRegions int
	Skew       float64
	BurstLen   int // references per burst
	Stride     uint64

	zipf       *rng.Zipf
	curBase    uint64
	curOff     uint64
	burstPos   int
	regionSize uint64 // cached Footprint/NumRegions
	maxOff     uint64 // cached regionSize/Stride, at least 1
}

// NextAddr implements Component.
func (z *ZipfRegions) NextAddr(r *rng.Xoshiro256) uint64 {
	if z.zipf == nil {
		if z.Stride == 0 {
			z.Stride = 32
		}
		z.zipf = rng.NewZipf(r, z.NumRegions, z.Skew)
		z.regionSize = z.Footprint / uint64(z.NumRegions)
		z.maxOff = z.regionSize / z.Stride
		if z.maxOff == 0 {
			z.maxOff = 1
		}
	}
	if z.burstPos == 0 {
		region := z.zipf.Next()
		z.curBase = z.Base + uint64(region)*z.regionSize
		// r.Uint64n(maxOff) with the modulo reduced to a mask when the
		// offset count is a power of two (bit-identical to the division).
		u := r.Uint64()
		var off uint64
		if n := z.maxOff; n&(n-1) == 0 {
			off = u & (n - 1)
		} else {
			off = u % n
		}
		z.curOff = off * z.Stride
		z.burstPos = z.BurstLen
		if z.burstPos <= 0 {
			z.burstPos = 1
		}
	}
	a := z.curBase + z.curOff
	z.curOff += z.Stride
	if z.curOff >= z.regionSize {
		z.curOff = 0
	}
	z.burstPos--
	return a
}

// ColumnWalk models column-major traversal of a row-major matrix (blocked
// linear algebra, dynamic-programming tables): consecutive accesses are
// RowStride bytes apart, so when RowStride is a multiple of the cache's
// set span (sets × line size) a whole column of Rows lines maps to a single
// set and produces an uninterrupted burst of misses there. This is the
// per-set demand imbalance the paper's Figure 2 motivates: individual sets
// saturate (and spill) while their neighbours idle.
type ColumnWalk struct {
	Base      uint64
	Rows      int    // mean lines per column (same-set consecutive accesses)
	Cols      int    // columns; column c maps to set (base/line + SetOffset + c) mod sets
	SetOffset int    // first column's set index relative to Base (in lines)
	RowStride uint64 // byte distance between rows; the cache set span
	// VarRows gives each column a deterministic height in [Rows/2, 3*Rows/2)
	// — a ragged matrix. Different sets then need very different numbers of
	// ways, which is precisely the per-set heterogeneity (Fig. 2) that
	// set-granular policies exploit and cache-global ones cannot.
	VarRows  bool
	row, col int
}

// colRows returns the height of the current column.
func (w *ColumnWalk) colRows() int {
	if !w.VarRows {
		return w.Rows
	}
	h := w.Rows/2 + int(rng.Mix64(uint64(w.col)^w.Base)%uint64(w.Rows))
	if h < 1 {
		h = 1
	}
	return h
}

// NextAddr implements Component.
func (w *ColumnWalk) NextAddr(_ *rng.Xoshiro256) uint64 {
	a := w.Base + uint64(w.row)*w.RowStride + uint64(w.SetOffset+w.col)*32
	w.row++
	if w.row >= w.colRows() {
		w.row = 0
		w.col++
		if w.col >= w.Cols {
			w.col = 0
		}
	}
	return a
}

// HotLines accesses a small pool of very hot lines uniformly — the high-reuse
// fraction present in nearly every benchmark, keeping some sets' SSL low.
type HotLines struct {
	Base  uint64
	Lines int
	Align uint64
}

// NextAddr implements Component.
func (h *HotLines) NextAddr(r *rng.Xoshiro256) uint64 {
	if h.Align == 0 {
		h.Align = 32
	}
	// Inline r.Intn(h.Lines), with the modulo reduced to a mask for
	// power-of-two pool sizes (bit-identical to the division; every
	// workload model uses a power-of-two pool).
	u := r.Uint64()
	n := uint64(h.Lines)
	var i uint64
	if n&(n-1) == 0 {
		i = u & (n - 1)
	} else {
		i = u % n
	}
	return h.Base + i*h.Align
}

// StridedWalk produces a constant-stride stream with occasional restarts,
// the pattern a stride prefetcher captures (§6.3 sensitivity).
type StridedWalk struct {
	Base      uint64
	Footprint uint64
	Stride    uint64
	RestartP  float64 // probability of jumping to a new start point
	pos       uint64
}

// NextAddr implements Component.
func (s *StridedWalk) NextAddr(r *rng.Xoshiro256) uint64 {
	if s.RestartP > 0 && r.Bernoulli(s.RestartP) {
		s.pos = r.Uint64n(s.Footprint/s.Stride) * s.Stride
	}
	a := s.Base + s.pos
	s.pos += s.Stride
	if s.pos >= s.Footprint {
		s.pos = 0
	}
	return a
}

// Mixed is one weighted component of a Composite.
type Mixed struct {
	Comp      Component
	Weight    float64 // relative selection weight
	WriteFrac float64 // fraction of this component's references that are writes
}

// Composite is the standard workload generator: a weighted mixture of
// components plus an instruction-gap model targeting a given reference rate.
type Composite struct {
	name    string
	comps   []Mixed
	cum     []float64 // cumulative normalised weights
	gapMean float64   // mean instructions between references
	gapAcc  float64   // fractional-gap accumulator (deterministic dithering)
	r       *rng.Xoshiro256
}

// NewComposite builds a composite generator. refsPerKInstr is the memory
// references issued per 1000 instructions (the L1 sees this stream; the L2
// sees what the L1 misses). seed fixes the random sequence.
func NewComposite(name string, seed uint64, refsPerKInstr float64, comps []Mixed) *Composite {
	if len(comps) == 0 {
		panic("trace: composite with no components")
	}
	if refsPerKInstr <= 0 {
		panic(fmt.Sprintf("trace: non-positive reference rate %v", refsPerKInstr))
	}
	total := 0.0
	for _, c := range comps {
		if c.Weight <= 0 {
			panic(fmt.Sprintf("trace: non-positive component weight %v", c.Weight))
		}
		total += c.Weight
	}
	cum := make([]float64, len(comps))
	acc := 0.0
	for i, c := range comps {
		acc += c.Weight / total
		cum[i] = acc
	}
	return &Composite{
		name:    name,
		comps:   comps,
		cum:     cum,
		gapMean: 1000.0/refsPerKInstr - 1,
		r:       rng.New(seed),
	}
}

// Name implements Generator.
func (c *Composite) Name() string { return c.name }

// Next implements Generator.
func (c *Composite) Next() Ref {
	// Deterministic dithering spreads the fractional part of the mean gap
	// evenly instead of sampling, which is cheaper and keeps the instruction
	// rate exact over any window.
	c.gapAcc += c.gapMean
	gap := int32(c.gapAcc)
	c.gapAcc -= float64(gap)

	idx := 0
	if len(c.comps) > 1 {
		u := c.r.Float64()
		for idx < len(c.cum)-1 && c.cum[idx] < u {
			idx++
		}
	}
	m := &c.comps[idx]
	// Inline Bernoulli(WriteFrac) so the draw compiles to a direct Uint64
	// call; the WriteFrac >= 1 guard keeps the no-draw degenerate cases of
	// rng.Bernoulli, so the reference stream is bit-identical.
	return Ref{
		Addr:  m.Comp.NextAddr(c.r),
		Write: m.WriteFrac > 0 && (m.WriteFrac >= 1 || c.r.Float64() < m.WriteFrac),
		Gap:   gap,
	}
}

// NextBatch implements Generator. The batch loop keeps the dithering
// accumulator and the RNG in locals and draws from the component mixture
// exactly as Next does — the random sequence (and therefore every golden
// result) is bit-identical to per-reference generation. The component
// dispatch is a type switch over the concrete pattern types rather than an
// interface call: the per-reference NextAddr is the hottest dynamic call in
// the simulator, and the direct calls both skip the itab indirection and let
// the draw-free patterns (sequential streams, loops, column walks) inline.
func (c *Composite) NextBatch(buf []Ref) {
	r := c.r
	acc := c.gapAcc
	mean := c.gapMean
	comps := c.comps
	cum := c.cum
	for i := range buf {
		acc += mean
		gap := int32(acc)
		acc -= float64(gap)

		idx := 0
		if len(comps) > 1 {
			u := r.Float64()
			for idx < len(cum)-1 && cum[idx] < u {
				idx++
			}
		}
		m := &comps[idx]
		var addr uint64
		switch comp := m.Comp.(type) {
		case *HotLines:
			addr = comp.NextAddr(r)
		case *Loop:
			addr = comp.NextAddr(r)
		case *ZipfRegions:
			addr = comp.NextAddr(r)
		case *SeqStream:
			addr = comp.NextAddr(r)
		case *RandomWalk:
			addr = comp.NextAddr(r)
		case *ColumnWalk:
			addr = comp.NextAddr(r)
		default:
			addr = m.Comp.NextAddr(r)
		}
		buf[i] = Ref{
			Addr:  addr,
			Write: m.WriteFrac > 0 && (m.WriteFrac >= 1 || r.Float64() < m.WriteFrac),
			Gap:   gap,
		}
	}
	c.gapAcc = acc
}

// Counted wraps a Generator and counts emitted references; used by tests.
type Counted struct {
	Generator
	N uint64
}

// Next implements Generator.
func (c *Counted) Next() Ref {
	c.N++
	return c.Generator.Next()
}

// NextBatch implements Generator.
func (c *Counted) NextBatch(buf []Ref) {
	c.N += uint64(len(buf))
	c.Generator.NextBatch(buf)
}
