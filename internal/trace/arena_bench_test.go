package trace

import "testing"

// BenchmarkStreamThroughput compares the two ways a reference stream can
// reach the simulator: live generation (Zipf sampling, random walks, RNG
// draws per reference) versus packed arena replay (a straight decode of one
// uint64 per reference). The ratio is the per-reference synthesis cost the
// arena cache removes from every run after the first.
func BenchmarkStreamThroughput(b *testing.B) {
	const batch = 256

	b.Run("live", func(b *testing.B) {
		g := testComposite(9)
		buf := make([]Ref, batch)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.NextBatch(buf)
		}
		b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "refs/s")
	})

	b.Run("replay", func(b *testing.B) {
		// Pack a bounded prefix up front and rewind with fresh replayers so
		// the measurement is pure decode, never extension, at fixed memory.
		const prefill = 1 << 21
		a := NewArena(testComposite(9))
		a.Extend(prefill + batch)
		rp := a.NewReplayer()
		buf := make([]Ref, batch)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rp.refPos+batch > prefill {
				rp = a.NewReplayer()
			}
			rp.NextBatch(buf)
		}
		b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "refs/s")
	})
}
