package trace

import "testing"

// BenchmarkStreamThroughput compares the two ways a reference stream can
// reach the simulator: live generation (Zipf sampling, random walks, RNG
// draws per reference) versus packed arena replay (a straight decode of one
// uint64 per reference). The ratio is the per-reference synthesis cost the
// arena cache removes from every run after the first.
func BenchmarkStreamThroughput(b *testing.B) {
	const batch = 256

	b.Run("live", func(b *testing.B) {
		g := testComposite(9)
		buf := make([]Ref, batch)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.NextBatch(buf)
		}
		b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "refs/s")
	})

	b.Run("replay", func(b *testing.B) {
		// Pack a bounded prefix up front and rewind with fresh replayers so
		// the measurement is pure decode, never extension, at fixed memory.
		const prefill = 1 << 21
		a := NewArena(testComposite(9))
		a.Extend(prefill + batch)
		rp := a.NewReplayer()
		buf := make([]Ref, batch)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rp.refPos+batch > prefill {
				rp = a.NewReplayer()
			}
			rp.NextBatch(buf)
		}
		b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "refs/s")
	})
}

// BenchmarkSampledStream measures the two halves of the set-sampled fast
// path (DESIGN.md §16) at the scale-8 geometry with 1/8 sampling: "filter"
// is the one-time pass that derives the filtered stream from a packed full
// arena (decode + residue test + gap merge + rewrite), "replay" is the
// steady state every subsequent run pays — straight decode of the cached
// sampled sub-arena, where each reference stands for ~Den source references.
func BenchmarkSampledStream(b *testing.B) {
	const batch = 256
	spec, err := NewSampleSpec(512, 32, 32, 8, 16)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("filter", func(b *testing.B) {
		const prefill = 1 << 21 // source references packed up front
		a := NewArena(testComposite(9))
		a.Extend(uint64(prefill + spec.Den*batch))
		// Rewind with a fresh view well before the filter could consume the
		// prefix, so the loop never measures source extension.
		perView := prefill / (batch * 2 * spec.Den)
		v := spec.View(a.NewReplayer())
		buf := make([]Ref, batch)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%perView == perView-1 {
				v = spec.View(a.NewReplayer())
			}
			v.NextBatch(buf)
		}
		b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "refs/s")
	})

	b.Run("replay", func(b *testing.B) {
		const prefill = 1 << 18 // sampled references packed up front
		src := NewArena(testComposite(9))
		sa := NewArena(spec.View(src.NewReplayer()))
		sa.Extend(prefill + batch)
		rp := sa.NewReplayer()
		buf := make([]Ref, batch)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rp.refPos+batch > prefill {
				rp = sa.NewReplayer()
			}
			rp.NextBatch(buf)
		}
		b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "refs/s")
	})
}
