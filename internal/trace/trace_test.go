package trace

import (
	"testing"
	"testing/quick"

	"ascc/internal/rng"
)

func TestSeqStreamWraps(t *testing.T) {
	s := &SeqStream{Base: 1000, Footprint: 96, Stride: 32}
	r := rng.New(1)
	want := []uint64{1000, 1032, 1064, 1000, 1032}
	for i, w := range want {
		if got := s.NextAddr(r); got != w {
			t.Fatalf("step %d: addr %d, want %d", i, got, w)
		}
	}
}

func TestLoopMatchesSeqStream(t *testing.T) {
	l := &Loop{Base: 0, Footprint: 128, Stride: 32}
	s := &SeqStream{Base: 0, Footprint: 128, Stride: 32}
	r := rng.New(1)
	for i := 0; i < 20; i++ {
		if l.NextAddr(r) != s.NextAddr(r) {
			t.Fatalf("Loop and SeqStream diverged at step %d", i)
		}
	}
}

func TestRandomWalkStaysInRegion(t *testing.T) {
	w := &RandomWalk{Base: 1 << 20, Footprint: 1 << 16, Align: 32}
	r := rng.New(2)
	for i := 0; i < 10000; i++ {
		a := w.NextAddr(r)
		if a < 1<<20 || a >= 1<<20+1<<16 {
			t.Fatalf("address %#x outside region", a)
		}
		if a%32 != 0 {
			t.Fatalf("address %#x not line-aligned", a)
		}
	}
}

func TestZipfRegionsSkewAndBounds(t *testing.T) {
	z := &ZipfRegions{Base: 0, Footprint: 1 << 20, NumRegions: 16, Skew: 1.1, BurstLen: 8, Stride: 32}
	r := rng.New(3)
	regionSize := uint64(1<<20) / 16
	counts := make([]int, 16)
	for i := 0; i < 64000; i++ {
		a := z.NextAddr(r)
		if a >= 1<<20 {
			t.Fatalf("address %#x outside footprint", a)
		}
		counts[a/regionSize]++
	}
	if counts[0] <= counts[15]*2 {
		t.Fatalf("zipf region skew too weak: first=%d last=%d", counts[0], counts[15])
	}
}

func TestHotLinesPoolSize(t *testing.T) {
	h := &HotLines{Base: 4096, Lines: 8, Align: 32}
	r := rng.New(4)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[h.NextAddr(r)] = true
	}
	if len(seen) != 8 {
		t.Fatalf("hot pool produced %d distinct addresses, want 8", len(seen))
	}
}

func TestStridedWalkMostlySequential(t *testing.T) {
	s := &StridedWalk{Base: 0, Footprint: 1 << 16, Stride: 64, RestartP: 0.01}
	r := rng.New(5)
	prev := s.NextAddr(r)
	sequential := 0
	const n = 10000
	for i := 0; i < n; i++ {
		a := s.NextAddr(r)
		if a == prev+64 {
			sequential++
		}
		prev = a
	}
	if sequential < n*9/10 {
		t.Fatalf("only %d/%d steps sequential, want >90%%", sequential, n)
	}
}

func TestCompositeGapRate(t *testing.T) {
	// 250 refs per kinstr => mean gap of 3 instructions.
	g := NewComposite("x", 1, 250, []Mixed{{Comp: &SeqStream{Footprint: 1 << 20, Stride: 32}, Weight: 1}})
	var instr, refs uint64
	for i := 0; i < 100000; i++ {
		ref := g.Next()
		instr += uint64(ref.Gap) + 1
		refs++
	}
	rate := float64(refs) / float64(instr) * 1000
	if rate < 245 || rate > 255 {
		t.Fatalf("reference rate %.1f per kinstr, want ~250", rate)
	}
}

func TestCompositeWeights(t *testing.T) {
	a := &HotLines{Base: 0, Lines: 1}
	b := &HotLines{Base: 1 << 30, Lines: 1}
	g := NewComposite("x", 7, 100, []Mixed{
		{Comp: a, Weight: 3},
		{Comp: b, Weight: 1},
	})
	var na, nb int
	for i := 0; i < 40000; i++ {
		if g.Next().Addr < 1<<30 {
			na++
		} else {
			nb++
		}
	}
	frac := float64(na) / float64(na+nb)
	if frac < 0.72 || frac > 0.78 {
		t.Fatalf("component A fraction %.3f, want ~0.75", frac)
	}
}

func TestCompositeWriteFraction(t *testing.T) {
	g := NewComposite("x", 9, 100, []Mixed{
		{Comp: &SeqStream{Footprint: 1 << 20, Stride: 32}, Weight: 1, WriteFrac: 0.3},
	})
	writes := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if g.Next().Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("write fraction %.3f, want ~0.3", frac)
	}
}

func TestCompositeDeterminism(t *testing.T) {
	build := func() *Composite {
		return NewComposite("x", 42, 300, []Mixed{
			{Comp: &ZipfRegions{Footprint: 1 << 20, NumRegions: 8, Skew: 1, BurstLen: 4}, Weight: 2, WriteFrac: 0.2},
			{Comp: &RandomWalk{Footprint: 1 << 22}, Weight: 1},
		})
	}
	g1, g2 := build(), build()
	for i := 0; i < 5000; i++ {
		r1, r2 := g1.Next(), g2.Next()
		if r1 != r2 {
			t.Fatalf("same-seed composites diverged at ref %d: %+v vs %+v", i, r1, r2)
		}
	}
}

func TestCompositeSeedsDiffer(t *testing.T) {
	mk := func(seed uint64) *Composite {
		return NewComposite("x", seed, 300, []Mixed{
			{Comp: &RandomWalk{Footprint: 1 << 22}, Weight: 1},
		})
	}
	g1, g2 := mk(1), mk(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if g1.Next().Addr == g2.Next().Addr {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds agreed on %d/1000 addresses", same)
	}
}

func TestCompositePanicsOnBadInput(t *testing.T) {
	cases := []func(){
		func() { NewComposite("x", 1, 100, nil) },
		func() { NewComposite("x", 1, 0, []Mixed{{Comp: &HotLines{Lines: 1}, Weight: 1}}) },
		func() { NewComposite("x", 1, 100, []Mixed{{Comp: &HotLines{Lines: 1}, Weight: 0}}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestGapNonNegativeProperty(t *testing.T) {
	f := func(seed uint64, rate uint8) bool {
		r := float64(rate%200) + 1
		g := NewComposite("x", seed, r, []Mixed{
			{Comp: &SeqStream{Footprint: 1 << 16, Stride: 32}, Weight: 1},
		})
		for i := 0; i < 200; i++ {
			if g.Next().Gap < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCountedWrapper(t *testing.T) {
	g := NewComposite("base", 1, 100, []Mixed{{Comp: &HotLines{Lines: 4}, Weight: 1}})
	c := &Counted{Generator: g}
	for i := 0; i < 17; i++ {
		c.Next()
	}
	if c.N != 17 {
		t.Fatalf("counted %d refs, want 17", c.N)
	}
	if c.Name() != "base" {
		t.Fatalf("name %q, want base", c.Name())
	}
}
