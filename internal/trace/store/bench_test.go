package store

import (
	"testing"

	"ascc/internal/trace"
)

// BenchmarkStoreThroughput compares the three ways a reference stream can
// reach a fresh process: live generation (the cost every cold process
// pays), replay from a store-loaded mmap'd arena (what the persistent
// tier makes possible), and the load itself (open + map + validate,
// amortised over the refs it unlocks). store-replay vs live is the
// headline ratio of BENCH_kernel.json's "store" block: the synthesis
// work a warm store deletes from every subsequent run, sweep and CI job.
func BenchmarkStoreThroughput(b *testing.B) {
	const (
		batch   = 256
		prefill = 1 << 21
	)
	const key = "bench/0/store-test/9/8"

	b.Run("live", func(b *testing.B) {
		g := testGen(9)
		buf := make([]trace.Ref, batch)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.NextBatch(buf)
		}
		b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "refs/s")
	})

	dir := b.TempDir()
	seedStore := New(dir)
	a := trace.NewArena(testGen(9))
	a.Extend(prefill + batch)
	if err := seedStore.Save(key, a); err != nil {
		b.Fatal(err)
	}

	b.Run("store-replay", func(b *testing.B) {
		// One load, then pure decode over the mapped payload, rewinding
		// with fresh replayers at fixed memory — the steady state of a
		// warm-store run, directly comparable to the in-memory "replay"
		// case of BenchmarkStreamThroughput.
		s := New(dir)
		defer s.Close()
		la := s.Load(key, testGen(9))
		if la == nil {
			b.Fatalf("load missed (stats %+v)", s.Stats())
		}
		rp := la.NewReplayer()
		done := uint64(0)
		buf := make([]trace.Ref, batch)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if done+batch > prefill {
				rp = la.NewReplayer()
				done = 0
			}
			rp.NextBatch(buf)
			done += batch
		}
		b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "refs/s")
	})

	b.Run("load", func(b *testing.B) {
		// Full open+mmap+validate per iteration, reported as refs/s over
		// the refs each load makes available: even counting validation
		// (checksum + structural walk over every word), a load delivers
		// refs orders of magnitude faster than synthesising them.
		refs := a.Refs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := New(dir)
			if la := s.Load(key, testGen(9)); la == nil {
				b.Fatalf("load missed (stats %+v)", s.Stats())
			}
			s.Close()
		}
		b.ReportMetric(float64(b.N)*float64(refs)/b.Elapsed().Seconds(), "refs/s")
	})
}
