package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"ascc/internal/trace"
)

// fuzzKey is the fixed key the fuzzer plants candidate files under.
const fuzzKey = "fuzz/0/store-test/1/8"

// FuzzStoreRoundTrip attacks the chunk-file codec from both ends:
//
//   - the input bytes are planted verbatim as the on-disk file for a key,
//     and Load must either reject cleanly or adopt an arena whose full
//     prefix replays and extends without panicking — whatever the header,
//     checksums, key block or escape records claim;
//   - the input bytes are decoded as a reference sequence (the FuzzRefCodec
//     record format), round-tripped through Save + Load, and the replay
//     must be bit-identical to the source stream.
//
// The committed corpus under testdata/fuzz covers a valid file plus the
// rejection matrix: truncations mid-header and mid-payload, bit-flipped
// payloads and headers, version-mismatch headers, and a structurally
// truncated escape record behind valid checksums. Wired into make fuzz.
func FuzzStoreRoundTrip(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Part 1: data as an untrusted file.
		s := New(t.TempDir())
		defer s.Close()
		if err := os.MkdirAll(s.dir, 0o755); err != nil {
			t.Skip()
		}
		if err := os.WriteFile(s.path(fuzzKey), data, 0o644); err != nil {
			t.Skip()
		}
		if a := s.Load(fuzzKey, testGen(1)); a != nil {
			// Adopted: the whole prefix must be walkable and the arena
			// extensible past it without faulting.
			rp := a.NewReplayer()
			buf := make([]trace.Ref, 256)
			n := a.Refs() + 512 // fixed bound: extension grows Refs() as we read
			for done := uint64(0); done < n; done += uint64(len(buf)) {
				rp.NextBatch(buf)
			}
		}

		// Part 2: data as a reference stream, round-tripped.
		refs := fuzzRefs(data)
		if len(refs) == 0 {
			return
		}
		src, err := trace.NewReplay("fuzz", refs)
		if err != nil {
			t.Skip()
		}
		a := trace.NewArena(src)
		a.Extend(uint64(len(refs)))
		if err := s.Save(fuzzKey, a); err != nil {
			t.Fatalf("Save: %v", err)
		}
		loaded := s.Load(fuzzKey, mustReplay(t, refs))
		if loaded == nil {
			t.Fatalf("round-trip load rejected its own file (stats %+v)", s.Stats())
		}
		if loaded.Refs() != a.Refs() {
			t.Fatalf("round-trip refs %d != %d", loaded.Refs(), a.Refs())
		}
		want := mustReplay(t, refs)
		rp := loaded.NewReplayer()
		n := 2*len(refs) + 7 // cross the adoption boundary into fast-forwarded extension
		for i := 0; i < n; i++ {
			if got, exp := rp.Next(), want.Next(); got != exp {
				t.Fatalf("ref %d: got %+v want %+v", i, got, exp)
			}
		}
	})
}

func mustReplay(t *testing.T, refs []trace.Ref) *trace.Replay {
	t.Helper()
	r, err := trace.NewReplay("fuzz", refs)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// fuzzRefs decodes the input as 13-byte reference records (8-byte address,
// 4-byte gap, 1-byte write flag) — the FuzzRefCodec format.
func fuzzRefs(data []byte) []trace.Ref {
	const rec = 13
	refs := make([]trace.Ref, 0, len(data)/rec)
	for len(data) >= rec {
		refs = append(refs, trace.Ref{
			Addr:  binary.LittleEndian.Uint64(data),
			Gap:   int32(binary.LittleEndian.Uint32(data[8:])),
			Write: data[12]&1 != 0,
		})
		data = data[rec:]
	}
	return refs
}

// corpusDir is where the committed seed corpus lives; `go test -fuzz`
// picks it up automatically alongside the f.Add seeds.
const corpusDir = "testdata/fuzz/FuzzStoreRoundTrip"

// TestFuzzCorpusCommitted keeps the committed corpus honest: every seed
// shape from fuzzSeeds must exist on disk in Go's corpus-file format
// (regenerate with ASCC_WRITE_CORPUS=1 after a codec change — the seeds
// embed checksums, so they go stale together with PackCodecVersion).
func TestFuzzCorpusCommitted(t *testing.T) {
	names := []string{
		"valid-file", "truncated-header", "truncated-payload",
		"payload-bit-flip", "header-bit-flip", "version-mismatch",
		"truncated-escape", "empty", "magic-only",
	}
	seeds := fuzzSeeds()
	if len(names) != len(seeds) {
		t.Fatalf("%d corpus names for %d seeds", len(names), len(seeds))
	}
	if os.Getenv("ASCC_WRITE_CORPUS") != "" {
		if err := os.MkdirAll(corpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
			if err := os.WriteFile(filepath.Join(corpusDir, names[i]), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, name := range names {
		b, err := os.ReadFile(filepath.Join(corpusDir, name))
		if err != nil {
			t.Fatalf("committed corpus entry missing (regenerate with ASCC_WRITE_CORPUS=1): %v", err)
		}
		want := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seeds[i])) + ")\n"
		if string(b) != want {
			t.Errorf("corpus entry %s is stale (regenerate with ASCC_WRITE_CORPUS=1)", name)
		}
	}
}

// fuzzSeeds builds the in-code seed set: a valid file for fuzzKey plus
// every rejection-matrix mutation of it. The committed corpus mirrors
// these shapes (testdata/fuzz/FuzzStoreRoundTrip).
func fuzzSeeds() [][]byte {
	valid := validFileBytes()
	flipPayload := append([]byte(nil), valid...)
	flipPayload[len(flipPayload)-5] ^= 0x10
	flipHeader := append([]byte(nil), valid...)
	flipHeader[offWords] ^= 0x01
	version := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(version[offVersion:], trace.PackCodecVersion+7)
	binary.LittleEndian.PutUint64(version[offHeaderSum:], headerChecksum(version, len(fuzzKey)))
	return [][]byte{
		valid,
		valid[:17],            // truncated mid-header
		valid[:len(valid)-11], // truncated mid-payload
		flipPayload,
		flipHeader,
		version,
		truncatedEscapeBytes(),
		{},
		[]byte(magic),
	}
}

// validFileBytes renders a small valid chunk file for fuzzKey in memory.
func validFileBytes() []byte {
	words := []uint64{
		16<<13 | 1<<1,      // +8 delta, gap 1, read
		2<<13 | 3<<1 | 1,   // +1 delta, gap 3, write
		uint64(0xfff) << 1, // escape marker ...
		1 << 40,            // ... absolute address
		5 << 1,             // ... gap 5, read
	}
	refs, last, ok := trace.WalkPacked(words)
	if !ok {
		panic("fuzz seed payload invalid")
	}
	return rawFileBytes(fuzzKey, words, refs, last)
}

// truncatedEscapeBytes renders a file with valid checksums whose payload
// ends in an escape marker missing its two operand words.
func truncatedEscapeBytes() []byte {
	words := []uint64{16<<13 | 1<<1, uint64(0xfff) << 1}
	return rawFileBytes(fuzzKey, words, 2, 8)
}

// rawFileBytes is writeRawFile without the filesystem: header + key +
// payload with correct checksums for whatever claims are passed in.
func rawFileBytes(key string, words []uint64, refs, lastAddr uint64) []byte {
	off := payloadOff(len(key))
	b := make([]byte, off+8*len(words))
	copy(b, magic)
	binary.LittleEndian.PutUint32(b[offVersion:], trace.PackCodecVersion)
	binary.LittleEndian.PutUint32(b[offKeyLen:], uint32(len(key)))
	binary.LittleEndian.PutUint64(b[offWords:], uint64(len(words)))
	binary.LittleEndian.PutUint64(b[offRefs:], refs)
	binary.LittleEndian.PutUint64(b[offLastAddr:], lastAddr)
	binary.LittleEndian.PutUint64(b[offPayloadSum:], checksumWords(words))
	copy(b[headerLen:], key)
	binary.LittleEndian.PutUint64(b[offHeaderSum:], headerChecksum(b, len(key)))
	for i, w := range words {
		binary.LittleEndian.PutUint64(b[off+8*i:], w)
	}
	return b
}
