package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"ascc/internal/trace"
)

// testGen builds a representative multi-component generator — the mixture
// shape of the workload models, including escape-triggering far jumps
// between components.
func testGen(seed uint64) *trace.Composite {
	return trace.NewComposite("store-test", seed, 170, []trace.Mixed{
		{Comp: &trace.ZipfRegions{Base: 0, Footprint: 512 * 1024, NumRegions: 32, Skew: 0.9, BurstLen: 4}, Weight: 40, WriteFrac: 0.2},
		{Comp: &trace.RandomWalk{Base: 1 << 24, Footprint: 1 << 23, Align: 32}, Weight: 2},
		{Comp: &trace.HotLines{Base: 1 << 25, Lines: 512}, Weight: 90, WriteFrac: 0.25},
	})
}

// mustSave builds an arena over testGen(seed), extends it to at least
// minRefs, and publishes it under key.
func mustSave(t *testing.T, s *Store, key string, seed, minRefs uint64) *trace.Arena {
	t.Helper()
	a := trace.NewArena(testGen(seed))
	a.Extend(minRefs)
	if err := s.Save(key, a); err != nil {
		t.Fatalf("Save(%q): %v", key, err)
	}
	return a
}

// checkStream requires the replayer to reproduce testGen(seed)'s stream
// for n references.
func checkStream(t *testing.T, rp *trace.Replayer, seed uint64, n int) {
	t.Helper()
	want := testGen(seed)
	got := make([]trace.Ref, 731)
	exp := make([]trace.Ref, 731)
	for done := 0; done < n; {
		k := len(got)
		if done+k > n {
			k = n - done
		}
		rp.NextBatch(got[:k])
		want.NextBatch(exp[:k])
		for i := 0; i < k; i++ {
			if got[i] != exp[i] {
				t.Fatalf("ref %d: got %+v want %+v", done+i, got[i], exp[i])
			}
		}
		done += k
	}
}

// TestStoreRoundTrip is the core contract: save a synthesised arena, load
// it in a "fresh process" (new store, fresh generator), and replay well
// past the stored prefix — the adopted part must be bit-identical and the
// extension past it must continue the stream seamlessly (fast-forward).
func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const key = "mix/0/store-test/1/8"
	a := mustSave(t, New(dir), key, 7, 150_000)
	stored := a.Refs()

	s2 := New(dir)
	defer s2.Close()
	loaded := s2.Load(key, testGen(7))
	if loaded == nil {
		t.Fatalf("Load missed a just-saved key (stats %+v)", s2.Stats())
	}
	if got := loaded.Refs(); got != stored {
		t.Fatalf("loaded arena holds %d refs, saved %d", got, stored)
	}
	if st := s2.Stats(); st.Loads != 1 || st.Misses != 0 || st.Corrupt != 0 {
		t.Fatalf("stats %+v after one clean load", st)
	}
	// Replay to double the stored prefix: crosses adoption boundary,
	// fast-forwards the fresh generator exactly once.
	checkStream(t, loaded.NewReplayer(), 7, int(2*stored))
}

// TestStoreRatchet pins the flush ratchet: an arena loaded from the store
// and then extended saves back a longer prefix, which the next load serves
// without any synthesis of the first part.
func TestStoreRatchet(t *testing.T) {
	dir := t.TempDir()
	const key = "mix/1/store-test/1/8"
	s := New(dir)
	defer s.Close()
	first := mustSave(t, s, key, 3, 40_000).Refs()

	loaded := s.Load(key, testGen(3))
	if loaded == nil {
		t.Fatal("load missed")
	}
	loaded.Extend(2 * first)
	if err := s.Save(key, loaded); err != nil {
		t.Fatalf("re-save: %v", err)
	}

	again := s.Load(key, testGen(3))
	if again == nil {
		t.Fatal("reload missed")
	}
	if got := again.Refs(); got < 2*first {
		t.Fatalf("ratcheted file holds %d refs, want >= %d", got, 2*first)
	}
	checkStream(t, again.NewReplayer(), 3, int(again.Refs())+1000)
}

// TestStoreMiss: loading an unknown key is a counted miss, not an error.
func TestStoreMiss(t *testing.T) {
	s := New(t.TempDir())
	if a := s.Load("absent", testGen(1)); a != nil {
		t.Fatal("Load invented an arena")
	}
	if st := s.Stats(); st.Misses != 1 || st.Corrupt != 0 {
		t.Fatalf("stats %+v, want one miss", st)
	}
}

// TestStoreEmptyArenaSkipped: an arena with no frozen refs publishes
// nothing.
func TestStoreEmptyArenaSkipped(t *testing.T) {
	dir := t.TempDir()
	s := New(dir)
	if err := s.Save("empty", trace.NewArena(testGen(1))); err != nil {
		t.Fatalf("Save of empty arena: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err == nil && len(ents) != 0 {
		t.Fatalf("empty arena published %d files", len(ents))
	}
}

// TestStoreRejectsCorruption is the acceptance matrix: every way a file
// can be damaged — truncated mid-header, truncated mid-payload, bit
// flips in payload or header, a stale codec version, trailing garbage, a
// colliding file holding the wrong key — must read as a clean rejection
// (nil + corrupt counter), after which live synthesis and a flush
// repopulate the store.
func TestStoreRejectsCorruption(t *testing.T) {
	const key = "mix/2/store-test/1/8"
	mutations := []struct {
		name   string
		mutate func(b []byte) []byte
	}{
		{"truncated-mid-header", func(b []byte) []byte { return b[:17] }},
		{"truncated-mid-payload", func(b []byte) []byte { return b[:len(b)-13] }},
		{"payload-bit-flip", func(b []byte) []byte { b[len(b)-9] ^= 0x40; return b }},
		{"header-bit-flip", func(b []byte) []byte { b[offRefs] ^= 0x01; return b }},
		{"version-mismatch", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[offVersion:], trace.PackCodecVersion+1)
			// A future writer would stamp a correct checksum for its own
			// format; mimic that so only the version gate can reject.
			binary.LittleEndian.PutUint64(b[offHeaderSum:], headerChecksum(b, len(key)))
			return b
		}},
		{"trailing-garbage", func(b []byte) []byte { return append(b, 0xde, 0xad, 0xbe, 0xef) }},
		{"wrong-key", nil}, // handled specially below
		{"empty-file", func(b []byte) []byte { return nil }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			dir := t.TempDir()
			s := New(dir)
			defer s.Close()
			mustSave(t, s, key, 9, 30_000)
			path := s.path(key)
			if m.name == "wrong-key" {
				// A file whose header names a different key parked at
				// this key's path (hash collision stand-in).
				other := New(dir)
				mustSave(t, other, "mix/3/other/1/8", 9, 30_000)
				if err := os.Rename(other.path("mix/3/other/1/8"), path); err != nil {
					t.Fatal(err)
				}
			} else {
				b, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, m.mutate(b), 0o644); err != nil {
					t.Fatal(err)
				}
			}

			if a := s.Load(key, testGen(9)); a != nil {
				t.Fatal("Load adopted a damaged file")
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("stats %+v, want exactly one corrupt rejection", st)
			}

			// Fallback and self-heal: the cache regenerates live, a flush
			// overwrites the damaged file, and the next load is clean.
			c := trace.NewArenaCache(0)
			c.SetStore(s)
			a := c.Get(key, testGen(9))
			a.Extend(30_000)
			checkStream(t, a.NewReplayer(), 9, 30_000)
			if err := c.FlushStore(); err != nil {
				t.Fatalf("FlushStore: %v", err)
			}
			if healed := s.Load(key, testGen(9)); healed == nil {
				t.Fatalf("store did not heal after flush (stats %+v)", s.Stats())
			}
		})
	}
}

// writeRawFile publishes a hand-built chunk file with *valid* checksums
// for the given payload and header claims — the adversarial shape
// checksums alone cannot catch.
func writeRawFile(t *testing.T, s *Store, key string, words []uint64, refs, lastAddr uint64) {
	t.Helper()
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(key), rawFileBytes(key, words, refs, lastAddr), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStoreRejectsStructuralLies covers files that pass every checksum but
// whose payload disagrees with the header's claims: a truncated escape
// record (would march a replayer past the chunk table), a lying reference
// count, a lying final address. WalkPacked must veto all three.
func TestStoreRejectsStructuralLies(t *testing.T) {
	const key = "mix/4/store-test/1/8"
	// One packed ref (delta +8 = zigzag 16, gap 1, read), then an escape
	// marker word missing its two payload words.
	packedRef := uint64(16)<<13 | uint64(1)<<1
	escapeMarker := uint64((1<<12)-1) << 1
	refs, last, ok := trace.WalkPacked([]uint64{packedRef})
	if !ok || refs != 1 || last != 8 {
		t.Fatalf("self-check: WalkPacked on one packed ref gave refs=%d last=%d ok=%v", refs, last, ok)
	}
	cases := []struct {
		name           string
		words          []uint64
		refs, lastAddr uint64
	}{
		{"truncated-escape", []uint64{packedRef, escapeMarker}, 2, 8},
		{"lying-ref-count", []uint64{packedRef}, 2, 8},
		{"lying-last-addr", []uint64{packedRef}, 1, 9},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := New(t.TempDir())
			defer s.Close()
			writeRawFile(t, s, key, c.words, c.refs, c.lastAddr)
			if a := s.Load(key, testGen(1)); a != nil {
				t.Fatal("Load adopted a structurally lying file")
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("stats %+v, want one corrupt rejection", st)
			}
		})
	}
	// The honest twin of the lies must load.
	s := New(t.TempDir())
	defer s.Close()
	writeRawFile(t, s, key, []uint64{packedRef}, 1, 8)
	a := s.Load(key, testGen(1))
	if a == nil {
		t.Fatalf("honest hand-built file rejected (stats %+v)", s.Stats())
	}
	if got := a.NewReplayer().Next(); got != (trace.Ref{Addr: 8, Gap: 1}) {
		t.Fatalf("hand-built ref decoded as %+v", got)
	}
}

// TestCacheReadThroughAndEvictionWriteBehind pins the two-tier protocol:
// a cache miss reads through to the store, an eviction persists a dirty
// arena before dropping it, and FlushStore only rewrites what grew.
func TestCacheReadThroughAndEvictionWriteBehind(t *testing.T) {
	dir := t.TempDir()
	s := New(dir)
	defer s.Close()

	// Session 1: synthesise two streams, flush.
	c1 := trace.NewArenaCache(0)
	c1.SetStore(s)
	c1.Get("k/a", testGen(1)).Extend(50_000)
	c1.Get("k/b", testGen(2)).Extend(50_000)
	if err := c1.FlushStore(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if st := s.Stats(); st.Saves != 2 {
		t.Fatalf("stats %+v, want 2 saves", st)
	}
	// A second flush with nothing grown must write nothing.
	if err := c1.FlushStore(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Saves != 2 {
		t.Fatalf("clean flush rewrote files: %+v", st)
	}

	// Session 2: a fresh cache on the same store adopts both streams.
	s2 := New(dir)
	defer s2.Close()
	c2 := trace.NewArenaCache(0)
	c2.SetStore(s2)
	a := c2.Get("k/a", testGen(1))
	b := c2.Get("k/b", testGen(2))
	if st := s2.Stats(); st.Loads != 2 {
		t.Fatalf("stats %+v, want 2 read-through loads", st)
	}
	checkStream(t, a.NewReplayer(), 1, int(a.Refs()))
	checkStream(t, b.NewReplayer(), 2, int(b.Refs()))

	// Eviction write-behind: a tiny budget forces the cold arena out;
	// its grown prefix must hit the disk on the way.
	dir3 := t.TempDir()
	s3 := New(dir3)
	defer s3.Close()
	c3 := trace.NewArenaCache(1) // any two arenas overshoot
	c3.SetStore(s3)
	c3.Get("cold", testGen(5)).Extend(10_000)
	c3.Get("hot", testGen(6)).Extend(10_000)
	c3.Get("hot", testGen(6)) // sweep: evicts "cold"
	if st := s3.Stats(); st.Saves == 0 {
		t.Fatalf("eviction dropped a dirty arena without saving (stats %+v)", st)
	}
	if re := s3.Load("cold", testGen(5)); re == nil {
		t.Fatalf("evicted arena not loadable (stats %+v)", s3.Stats())
	}
}

// TestConcurrentPublish is the -race acceptance pin for atomic publish:
// writers republishing ever-longer prefixes of the same key race against
// readers loading and replaying it, across two Store handles (distinct
// "processes" sharing the directory). A reader must never observe a
// partial or torn file — every load either misses (before the first
// publish) or adopts a complete, valid prefix; the corrupt counter stays
// zero throughout.
func TestConcurrentPublish(t *testing.T) {
	dir := t.TempDir()
	const key = "race/0/store-test/1/8"
	writer := New(dir)
	reader := New(dir)
	defer reader.Close()

	exp := make([]trace.Ref, 60_000)
	testGen(4).NextBatch(exp)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		a := trace.NewArena(testGen(4))
		for grow := uint64(2_000); grow <= 60_000; grow += 2_000 {
			a.Extend(grow)
			if err := writer.Save(key, a); err != nil {
				t.Errorf("Save: %v", err)
				return
			}
		}
	}()

	const readers = 4
	verify := func(a *trace.Arena) {
		rp := a.NewReplayer()
		buf := make([]trace.Ref, 512)
		n := int(a.Refs())
		for done := 0; done < n; done += len(buf) {
			k := len(buf)
			if done+k > n {
				k = n - done
			}
			rp.NextBatch(buf[:k])
			for j := 0; j < k; j++ {
				if done+j < len(exp) && buf[j] != exp[done+j] {
					t.Errorf("ref %d diverged under concurrent publish", done+j)
					return
				}
			}
		}
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if a := reader.Load(key, testGen(4)); a != nil {
					verify(a)
				} // pre-publish miss: fine
			}
		}()
	}
	wg.Wait()

	if st := reader.Stats(); st.Corrupt != 0 {
		t.Fatalf("reader saw %d corrupt files during atomic publishes (stats %+v)", st.Corrupt, st)
	}
	// The fully published file must load cleanly once the dust settles.
	final := reader.Load(key, testGen(4))
	if final == nil || final.Refs() < 60_000 {
		t.Fatalf("final load failed or short (stats %+v)", reader.Stats())
	}
	verify(final)
	// No temp debris beyond the published file once writers are done.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("leaked temp file %s", e.Name())
		}
	}
}

// TestStorePathStability: the file name must be a pure function of the
// key (cross-process rendezvous) and distinct for distinct keys.
func TestStorePathStability(t *testing.T) {
	s := New("/tmp/x")
	if s.path("mix/0/a/1/8") != s.path("mix/0/a/1/8") {
		t.Fatal("path not deterministic")
	}
	keys := []string{"mix/0/a/1/8", "mix/1/a/1/8", "single/0/a/1/8", "mt/0/a/1/8", "mix/0/a/2/8", "mix/0/a/1/4"}
	seen := map[string]string{}
	for _, k := range keys {
		p := s.path(k)
		if prev, dup := seen[p]; dup {
			t.Fatalf("keys %q and %q collide on %s", prev, k, p)
		}
		seen[p] = k
	}
}
