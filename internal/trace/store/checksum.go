package store

import (
	"encoding/binary"
	"math/bits"
)

// digest is an xxhash-style streaming 64-bit checksum: per-word
// multiply-rotate-multiply mixing folded into a rolling state, with an
// avalanche finisher. It exists to detect file corruption — bit flips,
// truncation, torn writes — without pulling in a dependency; it is not a
// cryptographic hash and the store never treats it as one (the key is
// compared byte-for-byte on load regardless). The zero value is ready to
// use.
type digest struct {
	h       uint64
	started bool
}

const (
	prime1 uint64 = 0x9E3779B185EBCA87
	prime2 uint64 = 0xC2B2AE3D27D4EB4F
	prime3 uint64 = 0x165667B19E3779F9
)

func (d *digest) start() {
	if !d.started {
		d.h = prime1 ^ prime2
		d.started = true
	}
}

// word folds one value into the state.
func (d *digest) word(w uint64) {
	d.start()
	w *= prime2
	w = bits.RotateLeft64(w, 31)
	w *= prime1
	d.h = bits.RotateLeft64(d.h^w, 27)*prime1 + prime2
}

// words folds a span of values into the state.
func (d *digest) words(ws []uint64) {
	d.start()
	h := d.h
	for _, w := range ws {
		w *= prime2
		w = bits.RotateLeft64(w, 31)
		w *= prime1
		h = bits.RotateLeft64(h^w, 27)*prime1 + prime2
	}
	d.h = h
}

// bytes folds a byte span into the state, 8 bytes per word with a
// length-tagged final partial word so "abc" and "abc\x00" digest
// differently.
func (d *digest) bytes(b []byte) {
	d.start()
	for len(b) >= 8 {
		d.word(binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) > 0 {
		var tail [8]byte
		copy(tail[:], b)
		d.word(binary.LittleEndian.Uint64(tail[:]) | uint64(len(b))<<56)
	}
}

// sum finishes the digest with an avalanche pass; the state is not
// consumed, so more data may still be folded in afterwards.
func (d *digest) sum() uint64 {
	d.start()
	h := d.h
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

// checksumWords digests one complete word span (the whole payload).
func checksumWords(ws []uint64) uint64 {
	var d digest
	d.words(ws)
	return d.sum()
}
