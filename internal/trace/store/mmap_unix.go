//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared. The mapping outlives
// the descriptor; release it with the returned unmap function once nothing
// aliases the bytes. On failure the caller falls back to reading the file
// onto the heap.
func mmapFile(f *os.File, size int) ([]byte, func(), error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() { syscall.Munmap(data) }, nil
}
