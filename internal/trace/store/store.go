// Package store persists packed trace arenas as memory-mapped chunk files,
// so every process — each asccbench invocation, golden-test run, fuzz
// round, CI job — replays streams the first one synthesised instead of
// regenerating them (DESIGN.md §14).
//
// One file per arena-cache key lives under the store root. The layout is a
// fixed 56-byte header (magic, codec version, key length, word count,
// reference count, final encoder address, payload checksum, header
// checksum), the key bytes zero-padded to an 8-byte boundary, then the raw
// little-endian packed words exactly as the arena holds them in memory. A
// load is therefore open + mmap + validate: the mapped payload becomes the
// arena's chunk table directly — zero decode, zero per-reference
// allocation (trace.AdoptFrozen).
//
// Publishing is atomic: Save streams into a unique temp file in the store
// directory, fsyncs, then renames over the final name, so a concurrent
// reader in another process sees either the old complete file or the new
// complete file, never a partial one. Mappings taken before a rename keep
// referencing the old inode, which is immutable from then on — files are
// never modified in place.
//
// Every failure on the read side — absent file, short file, bad magic,
// codec-version mismatch, key mismatch, checksum mismatch, or a payload
// whose packed structure disagrees with its header (WalkPacked) — is a
// soft miss: Load returns nil, the caller synthesises live, and the next
// flush overwrites the bad file. Corruption can cost a regeneration pass
// but never a panic and never a wrong simulation result.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"unsafe"

	"ascc/internal/trace"
)

// Header layout (all fields little-endian):
//
//	[0:8)   magic "ASCCARN1"
//	[8:12)  codec version (trace.PackCodecVersion)
//	[12:16) key length in bytes
//	[16:24) payload word count
//	[24:32) reference count the payload encodes
//	[32:40) final decoded address (delta base for extension)
//	[40:48) payload checksum (over the packed words)
//	[48:56) header checksum (over bytes [0:48) plus the key bytes)
//
// The key follows at [56:56+keyLen), zero-padded so the payload starts on
// an 8-byte boundary.
const (
	headerLen = 56
	magic     = "ASCCARN1"

	offVersion     = 8
	offKeyLen      = 12
	offWords       = 16
	offRefs        = 24
	offLastAddr    = 32
	offPayloadSum  = 40
	offHeaderSum   = 48
	maxKeyLen      = 1 << 12
	fileNameMaxKey = 48 // readable key prefix kept in the file name
)

// payloadOff returns the byte offset of the first packed word for a key of
// keyLen bytes: header plus key, rounded up to an 8-byte boundary.
func payloadOff(keyLen int) int {
	return headerLen + (keyLen+7)&^7
}

// Stats counts store traffic since construction.
type Stats struct {
	Loads   uint64 // successful loads (arena adopted from a file)
	Misses  uint64 // loads that found no file for the key
	Corrupt uint64 // loads that found a file and rejected it
	Saves   uint64 // files published
}

// Store is a persistent arena tier rooted at one directory. It implements
// trace.ArenaStore and is safe for concurrent use, including concurrent
// Save and Load of the same key from multiple goroutines or processes.
// The zero value is not usable; construct with New.
type Store struct {
	dir string

	loads, misses, corrupt, saves atomic.Uint64

	mu     sync.Mutex
	unmaps []func()
	closed bool
}

// New builds a store rooted at dir. No IO happens here: the directory is
// created lazily on the first Save, and an unreadable root simply makes
// every load a miss — the store degrades to live synthesis, it never
// fails construction.
func New(dir string) *Store { return &Store{dir: dir} }

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	return Stats{
		Loads:   s.loads.Load(),
		Misses:  s.misses.Load(),
		Corrupt: s.corrupt.Load(),
		Saves:   s.saves.Load(),
	}
}

// DefaultDir returns the conventional store root,
// os.UserCacheDir()/ascc/arenas (~/.cache/ascc/arenas on Linux).
func DefaultDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("store: resolving user cache dir: %w", err)
	}
	return filepath.Join(base, "ascc", "arenas"), nil
}

// Close unmaps every file mapping this store handed out. It is only safe
// once no arena adopted from this store — and no replayer over one — will
// be touched again; the harness never calls it (mappings live for the
// process), it exists so tests and benchmarks that churn stores do not
// exhaust address space.
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range s.unmaps {
		f()
	}
	s.unmaps = nil
	s.closed = true
}

// track retains an unmap function until Close.
func (s *Store) track(unmap func()) {
	if unmap == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		unmap()
		return
	}
	s.unmaps = append(s.unmaps, unmap)
}

// Load returns the stored arena for key with src continuing the stream
// past the stored prefix, or nil when the store cannot serve it — no
// file, or a file that fails any validation step. On the mmap path the
// file's payload backs the arena's chunk table directly; the mapping
// stays alive until Close.
func (s *Store) Load(key string, src trace.Generator) *trace.Arena {
	f, err := os.Open(s.path(key))
	if err != nil {
		s.misses.Add(1)
		return nil
	}
	st, err := f.Stat()
	if err != nil || st.Size() < headerLen || st.Size() > 1<<46 {
		f.Close()
		s.corrupt.Add(1)
		return nil
	}
	size := int(st.Size())

	var data []byte
	var unmap func()
	if hostLittleEndian {
		data, unmap, _ = mmapFile(f, size)
	}
	if data == nil {
		// Portable fallback (non-unix build, big-endian host, or a
		// failed map): read the file onto the heap. The payload is
		// copy-decoded below instead of aliased.
		data = make([]byte, size)
		if _, err := f.ReadAt(data, 0); err != nil {
			f.Close()
			s.corrupt.Add(1)
			return nil
		}
	}
	f.Close() // the mapping, if any, survives the descriptor

	reject := func() *trace.Arena {
		if unmap != nil {
			unmap()
		}
		s.corrupt.Add(1)
		return nil
	}

	hdr, ok := parseHeader(data, key)
	if !ok || size != payloadOff(len(key))+8*int(hdr.words) {
		return reject()
	}
	words := payloadWords(data, payloadOff(len(key)), hdr.words, unmap != nil)
	if checksumWords(words) != hdr.payloadSum {
		return reject()
	}
	refs, lastAddr, ok := trace.WalkPacked(words)
	if !ok || refs == 0 || refs != hdr.refs || lastAddr != hdr.lastAddr {
		return reject()
	}

	s.track(unmap)
	s.loads.Add(1)
	return trace.AdoptFrozen(src, words, refs, lastAddr)
}

// header is the parsed, not-yet-cross-checked file header.
type header struct {
	words, refs, lastAddr, payloadSum uint64
}

// parseHeader validates everything the header alone can prove: magic,
// codec version, key identity, and the header's own checksum. The word
// count is validated against the file size by the caller, the reference
// count and final address against the payload by WalkPacked.
func parseHeader(data []byte, key string) (header, bool) {
	if len(data) < headerLen || string(data[:8]) != magic {
		return header{}, false
	}
	if binary.LittleEndian.Uint32(data[offVersion:]) != trace.PackCodecVersion {
		return header{}, false
	}
	keyLen := int(binary.LittleEndian.Uint32(data[offKeyLen:]))
	if keyLen != len(key) || keyLen > maxKeyLen || len(data) < payloadOff(keyLen) {
		return header{}, false
	}
	if string(data[headerLen:headerLen+keyLen]) != key {
		return header{}, false
	}
	if headerChecksum(data, keyLen) != binary.LittleEndian.Uint64(data[offHeaderSum:]) {
		return header{}, false
	}
	return header{
		words:      binary.LittleEndian.Uint64(data[offWords:]),
		refs:       binary.LittleEndian.Uint64(data[offRefs:]),
		lastAddr:   binary.LittleEndian.Uint64(data[offLastAddr:]),
		payloadSum: binary.LittleEndian.Uint64(data[offPayloadSum:]),
	}, true
}

// payloadWords exposes the packed payload as a word slice: aliased in
// place when the bytes are a little-endian mapping (alias=true), decoded
// onto the heap otherwise. The payload offset is always 8-aligned (the
// header is 56 bytes and the key is padded), and mapped memory is
// page-aligned, so the aliasing cast is well-formed.
func payloadWords(data []byte, off int, nwords uint64, alias bool) []uint64 {
	if nwords == 0 {
		return nil
	}
	if alias && hostLittleEndian {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&data[off])), nwords)
	}
	ws := make([]uint64, nwords)
	for i := range ws {
		ws[i] = binary.LittleEndian.Uint64(data[off+8*i:])
	}
	return ws
}

// Save publishes the arena's current frozen prefix under key: stream to a
// unique temp file in the store directory, fsync, rename over the final
// name. Concurrent savers of the same key each publish a complete file
// and the last rename wins; concurrent readers see old-complete or
// new-complete, never partial. An empty arena is skipped (nothing to
// replay; a zero-length payload would just be rejected on load).
func (s *Store) Save(key string, a *trace.Arena) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("store: key length %d out of range", len(key))
	}
	if a.Refs() == 0 {
		return nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("store: creating root: %w", err)
	}
	f, err := os.CreateTemp(s.dir, ".arena-*.tmp")
	if err != nil {
		return fmt.Errorf("store: creating temp file: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}

	off := payloadOff(len(key))
	if _, err := f.Write(make([]byte, off)); err != nil {
		return fail(fmt.Errorf("store: reserving header: %w", err))
	}

	bw := bufio.NewWriterSize(f, 1<<16)
	var d digest
	scratch := make([]byte, 1<<15)
	snap, err := a.Snapshot(func(span []uint64) error {
		d.words(span)
		for len(span) > 0 {
			n := len(span)
			if max := len(scratch) / 8; n > max {
				n = max
			}
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint64(scratch[8*i:], span[i])
			}
			if _, err := bw.Write(scratch[:8*n]); err != nil {
				return err
			}
			span = span[n:]
		}
		return nil
	})
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		return fail(fmt.Errorf("store: writing payload: %w", err))
	}

	hdr := make([]byte, off)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[offVersion:], trace.PackCodecVersion)
	binary.LittleEndian.PutUint32(hdr[offKeyLen:], uint32(len(key)))
	binary.LittleEndian.PutUint64(hdr[offWords:], snap.Words)
	binary.LittleEndian.PutUint64(hdr[offRefs:], snap.Refs)
	binary.LittleEndian.PutUint64(hdr[offLastAddr:], snap.LastAddr)
	binary.LittleEndian.PutUint64(hdr[offPayloadSum:], d.sum())
	copy(hdr[headerLen:], key)
	binary.LittleEndian.PutUint64(hdr[offHeaderSum:], headerChecksum(hdr, len(key)))
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return fail(fmt.Errorf("store: writing header: %w", err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("store: syncing: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: closing temp file: %w", err)
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publishing: %w", err)
	}
	s.saves.Add(1)
	return nil
}

// path maps a cache key to its chunk-file path: a sanitised readable
// prefix for humans plus a 128-bit key hash for uniqueness. The key is
// additionally stored in the header and verified on load, so even a hash
// collision degrades to a miss, never a wrong stream.
func (s *Store) path(key string) string {
	var name []byte
	for i := 0; i < len(key) && i < fileNameMaxKey; i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '.', c == '-', c == '_':
			name = append(name, c)
		default:
			name = append(name, '-')
		}
	}
	var d1, d2 digest
	d1.bytes([]byte(key))
	d2.word(^uint64(len(key)))
	d2.bytes([]byte(key))
	name = append(name, '-')
	name = appendHex(name, d1.sum())
	name = appendHex(name, d2.sum())
	return filepath.Join(s.dir, string(name)+".arena")
}

func appendHex(b []byte, v uint64) []byte {
	const hexDigits = "0123456789abcdef"
	for i := 60; i >= 0; i -= 4 {
		b = append(b, hexDigits[(v>>i)&0xf])
	}
	return b
}

// headerChecksum digests the fixed header fields before the checksum slot
// plus the key bytes; data must hold at least payloadOff(keyLen) bytes.
func headerChecksum(data []byte, keyLen int) uint64 {
	var d digest
	d.bytes(data[:offHeaderSum])
	d.bytes(data[headerLen : headerLen+keyLen])
	return d.sum()
}

// hostLittleEndian reports whether uint64s are stored little-endian in
// memory, i.e. whether a mapped payload can be aliased without decoding.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()
