//go:build !unix

package store

import (
	"errors"
	"os"
)

// mmapFile is unavailable without unix mmap support; Load falls back to
// reading files onto the heap and copy-decoding the payload.
func mmapFile(_ *os.File, _ int) ([]byte, func(), error) {
	return nil, nil, errors.New("store: no mmap on this platform")
}
