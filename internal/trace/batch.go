package trace

// Batch is a fixed-capacity decoded reference buffer with a consumption
// cursor — the unit of work handed between a Generator's bulk decode
// (NextBatch), the simulator's per-core stepping, and the L1 burst kernel
// in internal/cachesim, which consumes consecutive references directly
// from Refs[Pos:].
//
// The cursor survives arbitrary handoffs: a consumer that stops mid-batch
// (a frontier crossing, an instruction quota, an L1 miss event) leaves Pos
// pointing at the first unconsumed reference, so the stream observed
// across refills is bit-identical to unbatched Next calls.
type Batch struct {
	Refs []Ref // the decoded references; filled len(Refs) at a time
	Pos  int   // index of the next unconsumed reference
}

// Empty reports whether every decoded reference has been consumed (also
// true for a freshly built Batch, whose first use must Refill).
func (b *Batch) Empty() bool { return b.Pos == len(b.Refs) }

// Refill decodes the next len(Refs) references from g and rewinds the
// cursor. It must only be called when the batch is Empty: refilling would
// otherwise drop the unconsumed tail and desynchronise the stream.
func (b *Batch) Refill(g Generator) {
	g.NextBatch(b.Refs)
	b.Pos = 0
}
