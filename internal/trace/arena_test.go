package trace

import (
	"encoding/binary"
	"sync"
	"testing"

	"ascc/internal/rng"
)

// testComposite builds a representative multi-component generator (Zipf
// regions, a random walk and a hot pool — the mixture shape the workload
// models use).
func testComposite(seed uint64) *Composite {
	return NewComposite("arena-test", seed, 170, []Mixed{
		{Comp: &ZipfRegions{Base: 0, Footprint: 512 * 1024, NumRegions: 32, Skew: 0.9, BurstLen: 4}, Weight: 40, WriteFrac: 0.2},
		{Comp: &RandomWalk{Base: 1 << 24, Footprint: 1 << 23, Align: 32}, Weight: 2},
		{Comp: &HotLines{Base: 1 << 25, Lines: 512}, Weight: 90, WriteFrac: 0.25},
	})
}

// TestReplayerMatchesGenerator is the core equivalence obligation: a
// replayer over an arena must yield exactly the stream its source
// generator produces, across uneven batch sizes and batch/Next mixing.
func TestReplayerMatchesGenerator(t *testing.T) {
	want := testComposite(7)
	rp := NewArena(testComposite(7)).NewReplayer()

	if rp.Name() != "arena-test" {
		t.Fatalf("replayer name %q", rp.Name())
	}
	sizes := []int{1, 64, 3, 256, 7, 1000, 64}
	step := 0
	for _, n := range sizes {
		got := make([]Ref, n)
		exp := make([]Ref, n)
		rp.NextBatch(got)
		want.NextBatch(exp)
		for i := range got {
			if got[i] != exp[i] {
				t.Fatalf("ref %d (batch of %d): got %+v want %+v", step+i, n, got[i], exp[i])
			}
		}
		step += n
	}
	for i := 0; i < 100; i++ {
		if g, w := rp.Next(), want.Next(); g != w {
			t.Fatalf("Next %d: got %+v want %+v", i, g, w)
		}
	}
}

// TestReplayerCrossesChunkBoundaries packs enough references to span
// several chunks, with periodic escape records positioned to straddle the
// chunk edges, and checks the decode against the source stream.
func TestReplayerCrossesChunkBoundaries(t *testing.T) {
	const n = 3*arenaChunkWords/2 + 17 // >1 chunk of single-word refs + escapes
	refs := make([]Ref, 0, 4096)
	r := rng.New(3)
	for i := 0; i < 4096; i++ {
		ref := Ref{Addr: r.Uint64() % (1 << 30), Gap: int32(r.Uint64() % 9), Write: r.Uint64()&1 == 0}
		if i%500 == 250 {
			ref.Addr = r.Uint64() // full-range address: forces an escape record
			ref.Gap = int32(5000 + i)
		}
		refs = append(refs, ref)
	}
	src, err := NewReplay("chunks", refs)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewReplay("chunks", refs)
	rp := NewArena(src).NewReplayer()
	got := make([]Ref, 731)
	exp := make([]Ref, 731)
	for done := 0; done < n; done += len(got) {
		rp.NextBatch(got)
		want.NextBatch(exp)
		for i := range got {
			if got[i] != exp[i] {
				t.Fatalf("ref %d: got %+v want %+v", done+i, got[i], exp[i])
			}
		}
	}
	if a := rp.a; a.Bytes() < arenaChunkWords*8*2 {
		t.Fatalf("arena holds %d bytes; expected multiple chunks", a.Bytes())
	}
}

// TestEscapeRecords exercises every field of the escape path directly:
// oversized gaps, negative gaps, and deltas beyond the packed range, all
// of which must round-trip exactly.
func TestEscapeRecords(t *testing.T) {
	refs := []Ref{
		{Addr: 64, Gap: 3, Write: true},
		{Addr: 96, Gap: packGapMask, Write: false},           // gap == field max: escape
		{Addr: 128, Gap: -5, Write: true},                    // negative gap: escape
		{Addr: 1 << 60, Gap: 2, Write: false},                // delta overflow: escape
		{Addr: 0, Gap: 1, Write: true},                       // huge negative delta: escape
		{Addr: 32, Gap: 1 << 30, Write: false},               // huge gap: escape
		{Addr: 33, Gap: 0, Write: false},                     // unaligned address, packed
		{Addr: 1<<63 + 7, Gap: packGapMask - 1, Write: true}, // top-bit address
	}
	src, err := NewReplay("escape", refs)
	if err != nil {
		t.Fatal(err)
	}
	rp := NewArena(src).NewReplayer()
	for round := 0; round < 3; round++ { // Replay cycles: cross the wrap too
		for i, want := range refs {
			if got := rp.Next(); got != want {
				t.Fatalf("round %d ref %d: got %+v want %+v", round, i, got, want)
			}
		}
	}
}

// TestArenaConcurrentReplayers races several replayers of very different
// consumption rates against on-demand extension — the shape of concurrent
// policy runs sharing a mix's arena (run with -race via make race).
func TestArenaConcurrentReplayers(t *testing.T) {
	a := NewArena(testComposite(11))
	want := testComposite(11)
	const total = 40000
	exp := make([]Ref, total)
	want.NextBatch(exp)

	var wg sync.WaitGroup
	errs := make([]error, 6)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rp := a.NewReplayer()
			batch := 17 + 31*g // uneven rates
			buf := make([]Ref, batch)
			for done := 0; done+batch <= total; done += batch {
				rp.NextBatch(buf)
				for i := range buf {
					if buf[i] != exp[done+i] {
						t.Errorf("goroutine %d ref %d diverged", g, done+i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestArenaCacheSharingAndEviction pins the cache contract: same key →
// same arena; distinct keys → distinct arenas; exceeding the budget evicts
// the least recently used entry but never the one being acquired.
func TestArenaCacheSharingAndEviction(t *testing.T) {
	c := NewArenaCache(3 * arenaChunkWords * 8) // room for ~3 single-chunk arenas
	a1 := c.Get("k1", testComposite(1))
	if c.Get("k1", testComposite(1)) != a1 {
		t.Fatal("same key returned a different arena")
	}
	if c.Get("k2", testComposite(2)) == a1 {
		t.Fatal("distinct keys shared an arena")
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d arenas, want 2", c.Len())
	}

	// Grow three arenas to one chunk each, then add a fourth: the budget
	// (3 chunks) forces the coldest out.
	a1.Extend(1)
	c.Get("k2", testComposite(2)).Extend(1)
	c.Get("k3", testComposite(3)).Extend(1)
	c.Get("k2", testComposite(2)) // refresh k2: k1 is now coldest
	c.Get("k3", testComposite(3))
	a4 := c.Get("k4", testComposite(4))
	a4.Extend(1)
	c.Get("k4", testComposite(4)) // re-acquire: triggers the budget sweep
	if c.Len() != 3 {
		t.Fatalf("cache holds %d arenas after eviction, want 3", c.Len())
	}
	if got := c.Get("k1", testComposite(1)); got == a1 {
		t.Fatal("evicted arena resurfaced instead of regenerating")
	}
	// The evicted arena's replayers must keep working.
	rp := a1.NewReplayer()
	want := testComposite(1)
	for i := 0; i < 1000; i++ {
		if g, w := rp.Next(), want.Next(); g != w {
			t.Fatalf("evicted arena replay diverged at ref %d", i)
		}
	}
}

// TestArenaCacheRaise pins the budget-reconciliation contract used by the
// harness pool: budgets only ever become more permissive. A lower bound is
// ignored, a higher bound wins, unbounded wins over any bound and is never
// revoked.
func TestArenaCacheRaise(t *testing.T) {
	c := NewArenaCache(100)
	c.Raise(50)
	if got := c.MaxBytes(); got != 100 {
		t.Fatalf("lower Raise shrank the budget to %d", got)
	}
	c.Raise(200)
	if got := c.MaxBytes(); got != 200 {
		t.Fatalf("higher Raise gave %d, want 200", got)
	}
	c.Raise(0)
	if got := c.MaxBytes(); got > 0 {
		t.Fatalf("unbounded Raise gave %d, want <= 0", got)
	}
	c.Raise(10)
	if got := c.MaxBytes(); got > 0 {
		t.Fatalf("bounded Raise revoked unbounded: %d", got)
	}

	// The raised budget must be effective, not just reported: under the
	// original one-chunk budget a second arena evicts the first; after
	// raising, both stay resident.
	c2 := NewArenaCache(arenaChunkWords * 8)
	c2.Get("a", testComposite(1)).Extend(1)
	c2.Get("b", testComposite(2)).Extend(1)
	c2.Get("b", testComposite(2))
	if got := c2.Len(); got != 1 {
		t.Fatalf("one-chunk budget kept %d arenas, want 1", got)
	}
	c2.Raise(4 * arenaChunkWords * 8)
	c2.Get("a", testComposite(1)).Extend(1)
	c2.Get("c", testComposite(3)).Extend(1)
	c2.Get("c", testComposite(3))
	if got := c2.Len(); got != 3 {
		t.Fatalf("raised budget kept %d arenas, want 3", got)
	}
}

// TestArenaCacheConcurrentExtendAccounting is the byte-budget regression
// under the racy shape the pool actually produces: replayers extending
// shared arenas past the cache budget while other goroutines acquire fresh
// keys (churning evictions), audit the accounting, and issue concurrent
// Raise calls. Run with -race via make race. The pinned invariants:
// accounted bytes never go negative, a lower concurrent Raise never shrinks
// the budget, every replayed stream stays bit-identical to its generator,
// and once extensions quiesce a single acquisition sweeps the cache back
// within budget (or down to the one entry being acquired).
func TestArenaCacheConcurrentExtendAccounting(t *testing.T) {
	const (
		budget  = 3 * arenaChunkWords * 8
		seeds   = 4
		total   = arenaChunkWords + 512 // two chunks per arena: any two arenas overshoot
		passes  = 3
		keyOf   = "extend-key-"
		batchSz = 997
	)
	exp := make([][]Ref, seeds)
	for s := range exp {
		exp[s] = make([]Ref, total)
		testComposite(uint64(s)).NextBatch(exp[s])
	}

	c := NewArenaCache(budget)
	done := make(chan struct{})
	var audit sync.WaitGroup
	audit.Add(1)
	go func() {
		defer audit.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if b := c.Bytes(); b < 0 {
				t.Errorf("accounted bytes drifted negative: %d", b)
				return
			}
			c.Raise(budget / 2) // lower: must be ignored even mid-churn
			if got := c.MaxBytes(); got != budget {
				t.Errorf("concurrent Raise shrank budget to %d", got)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < seeds; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]Ref, batchSz)
			for pass := 0; pass < passes; pass++ {
				s := (g + pass) % seeds
				a := c.Get(keyOf+string(rune('0'+s)), testComposite(uint64(s)))
				rp := a.NewReplayer()
				for off := 0; off+batchSz <= total; off += batchSz {
					rp.NextBatch(buf)
					for i := range buf {
						if buf[i] != exp[s][off+i] {
							t.Errorf("seed %d ref %d diverged under churn", s, off+i)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(done)
	audit.Wait()

	// Quiescent: one more acquisition must restore the budget invariant —
	// the sweep only stops early when the entry being acquired is the last
	// one standing.
	c.Get(keyOf+"0", testComposite(0))
	if b := c.Bytes(); b > budget && c.Len() > 1 {
		t.Fatalf("post-quiescence acquisition left %d bytes across %d arenas (budget %d)",
			b, c.Len(), budget)
	}
}

// TestArenaCacheUnbounded checks that a non-positive budget never evicts.
func TestArenaCacheUnbounded(t *testing.T) {
	c := NewArenaCache(0)
	for i := uint64(0); i < 8; i++ {
		c.Get(string(rune('a'+i)), testComposite(i)).Extend(1)
	}
	if c.Len() != 8 {
		t.Fatalf("unbounded cache evicted: %d entries, want 8", c.Len())
	}
	if c.Bytes() < 8*arenaChunkWords*8 {
		t.Fatalf("accounted bytes %d too small", c.Bytes())
	}
}

// refRecordSize is the fuzz input encoding: 8-byte address, 4-byte gap,
// 1-byte write flag per reference.
const refRecordSize = 13

// refsFromBytes decodes the fuzz input into a reference sequence.
func refsFromBytes(data []byte) []Ref {
	refs := make([]Ref, 0, len(data)/refRecordSize)
	for len(data) >= refRecordSize {
		refs = append(refs, Ref{
			Addr:  binary.LittleEndian.Uint64(data),
			Gap:   int32(binary.LittleEndian.Uint32(data[8:])),
			Write: data[12]&1 != 0,
		})
		data = data[refRecordSize:]
	}
	return refs
}

// refRecord encodes one reference in the fuzz input format (seed helper).
func refRecord(addr uint64, gap int32, write bool) []byte {
	b := make([]byte, refRecordSize)
	binary.LittleEndian.PutUint64(b, addr)
	binary.LittleEndian.PutUint32(b[8:], uint32(gap))
	if write {
		b[12] = 1
	}
	return b
}

// FuzzRefCodec round-trips arbitrary reference sequences through the
// packed codec: encode via an Arena, decode via a Replayer (in uneven
// batches, cycling past the sequence end), and require equality with the
// raw sequence. The committed corpus under testdata/fuzz covers the
// packed fast path, oversized/negative gaps, delta overflow and unaligned
// addresses (every escape-record trigger).
func FuzzRefCodec(f *testing.F) {
	concat := func(recs ...[]byte) []byte {
		var out []byte
		for _, r := range recs {
			out = append(out, r...)
		}
		return out
	}
	f.Add(concat(refRecord(64, 3, true), refRecord(128, 4, false), refRecord(96, 0, true)))
	f.Add(concat(refRecord(0, packGapMask, false), refRecord(1<<52, 2, true)))
	f.Add(concat(refRecord(1<<40, -1, true), refRecord(33, 1<<20, false)))
	f.Add(concat(refRecord(^uint64(0), 0, false), refRecord(0, -1<<31, true)))
	f.Fuzz(func(t *testing.T, data []byte) {
		refs := refsFromBytes(data)
		if len(refs) == 0 {
			return
		}
		src, err := NewReplay("fuzz", refs)
		if err != nil {
			t.Skip()
		}
		want, _ := NewReplay("fuzz", refs)
		rp := NewArena(src).NewReplayer()
		// Decode three full cycles plus a remainder in uneven batches.
		n := 3*len(refs) + 7
		sizes := []int{1, 5, 64, 2}
		got := make([]Ref, 64)
		exp := make([]Ref, 64)
		for done, si := 0, 0; done < n; si++ {
			k := sizes[si%len(sizes)]
			if done+k > n {
				k = n - done
			}
			rp.NextBatch(got[:k])
			want.NextBatch(exp[:k])
			for i := 0; i < k; i++ {
				if got[i] != exp[i] {
					t.Fatalf("ref %d: got %+v want %+v", done+i, got[i], exp[i])
				}
			}
			done += k
		}
	})
}
