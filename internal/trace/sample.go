package trace

// Set-sampled reference streams (DESIGN.md §16).
//
// ASCC is set-granular by construction: every policy decision is trained by
// and applied to individual L2 sets, and the DSR/SDM machinery derives its
// global signals (PSELs, spill/receive roles) from a fixed arithmetic
// pattern of leader sets. A SampleSpec picks a deterministic 1/Den subset of
// L2 set indices — always containing those leaders — and filters a reference
// stream down to the accesses that can ever touch them, accumulating the
// skipped references' instruction gaps into the survivors so instruction
// counts (and therefore the BaseCPI share of every core's clock) are exactly
// preserved.
//
// The subset is closed under everything the simulator does with an address:
//
//   - Residue granularity. The sample is a set of residues mod Granule,
//     where Granule is the *L1* set count. Since the L1 and L2 set counts
//     are both powers of two with l1Sets | l2Sets, a block's L1 set index
//     (block mod l1Sets) determines membership, and an L2 set s is sampled
//     iff s mod Granule is a chosen residue. A skipped reference therefore
//     cannot touch a sampled block's L1 set either: the two levels filter
//     together, which is what makes single-core sampled state *exactly* the
//     full run's state restricted to the sampled sets (cmp's
//     TestSampleTrueRestriction pins this).
//   - Cross-core consistency. The spec is a pure function of the geometry,
//     so every core filters identically: coherence, spilling, swapping and
//     the directory only ever relate same-index sets across caches, and all
//     of those indices are sampled or skipped together.
//   - Leader inclusion. The DSR/SDM monitor sets (classes 0..3 mod the SDM
//     stride) are chosen first, spill/receive monitors before the DIP
//     monitors, so the policies' global training inputs survive sampling at
//     any denominator the residue granule admits.
//
// RewriteBlock maps a surviving block address onto the compact geometry
// (l2Sets/Den sets) by replacing its residue with the residue's rank: an
// injective map, so tag equality, coherence holder masks and L1 indices are
// all preserved. View applies filter+merge+rewrite (the compact-machine
// stream); FilterView applies filter+merge only (the same stream at full
// addresses, the reference arm of FuzzSampleEquivalence).

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// SampleSpec describes one deterministic 1/Den set sample of an L1+L2
// geometry. Build with NewSampleSpec; the zero value is not usable.
type SampleSpec struct {
	// Den is the sampling denominator: 1/Den of the residues (and therefore
	// of the L2 sets) survive.
	Den int
	// Granule is the residue granularity — the L1 set count.
	Granule int
	// Sets is the full L2 set count.
	Sets int
	// LineBytes is the cache line size (addresses below it pass through
	// rewriting untouched).
	LineBytes int
	// Residues are the chosen residues mod Granule, sorted ascending;
	// len(Residues) == Granule/Den. Residues[k] is the original L1 set
	// index of compact L1 set k.
	Residues []int

	rank      []int16 // residue -> rank in Residues, -1 when filtered out
	lineShift uint
	gShift    uint // log2(Granule)
	kShift    uint // log2(len(Residues))
	sShift    uint // log2(Sets)
	cShift    uint // log2(Sets/Den)
}

// NewSampleSpec derives the deterministic sample for a geometry.
// leaderStride is the SDM leader stride of the policies that will run on the
// sampled machine (internal/policies: max(l2Sets/SDMSets, 4)); when it tiles
// the granule, monitor classes 0..3 are selected first so DSR/SDM training
// is closed under the sample. A stride that does not tile the granule (tiny
// test geometries) degrades leader inclusion to best effort — the sampled
// machine is still exact against a full machine fed the same filtered
// stream, which is the contract everything downstream verifies.
func NewSampleSpec(l2Sets, l1Sets, lineBytes, den, leaderStride int) (*SampleSpec, error) {
	switch {
	case den < 2:
		return nil, fmt.Errorf("trace: sample denominator %d < 2", den)
	case l1Sets < 1 || l1Sets&(l1Sets-1) != 0:
		return nil, fmt.Errorf("trace: L1 set count %d not a positive power of two", l1Sets)
	case l2Sets < l1Sets || l2Sets&(l2Sets-1) != 0 || l2Sets%l1Sets != 0:
		return nil, fmt.Errorf("trace: L2 set count %d not a power-of-two multiple of the %d L1 sets", l2Sets, l1Sets)
	case l1Sets%den != 0:
		return nil, fmt.Errorf("trace: sample 1/%d does not divide the %d-set residue granule (use a power of two <= the L1 set count)", den, l1Sets)
	case lineBytes < 1 || lineBytes&(lineBytes-1) != 0:
		return nil, fmt.Errorf("trace: line size %dB not a power of two", lineBytes)
	}
	g := l1Sets
	k := g / den
	used := make([]bool, g)
	chosen := make([]int, 0, k)
	add := func(r int) {
		if len(chosen) < k && !used[r] {
			used[r] = true
			chosen = append(chosen, r)
		}
	}
	if leaderStride > 0 && g%leaderStride == 0 {
		// Monitor classes in priority order: the spill/receive SDMs (set %
		// stride == 0, 1) train the cooperation PSEL, the DIP SDMs (2, 3)
		// the insertion PSEL. Copy-major within each pair, so a tiny sample
		// holds one of each class before doubling up.
		copies := g / leaderStride
		nclass := leaderStride
		if nclass > 4 {
			nclass = 4
		}
		for _, span := range [2][2]int{{0, 2}, {2, 4}} {
			for copy := 0; copy < copies; copy++ {
				for cl := span[0]; cl < span[1] && cl < nclass; cl++ {
					add(copy*leaderStride + cl)
				}
			}
		}
	}
	// Fill the remainder evenly across the granule (follower-set coverage).
	if need := k - len(chosen); need > 0 {
		for i := 0; i < need; i++ {
			target := i * g / need
			for j := 0; j < g; j++ {
				if r := (target + j) % g; !used[r] {
					add(r)
					break
				}
			}
		}
	}
	// Ascending residues make rank order-preserving, so the compact set
	// index is monotone in the original one within each granule copy.
	for i := 1; i < len(chosen); i++ {
		for j := i; j > 0 && chosen[j-1] > chosen[j]; j-- {
			chosen[j-1], chosen[j] = chosen[j], chosen[j-1]
		}
	}
	rank := make([]int16, g)
	for i := range rank {
		rank[i] = -1
	}
	for i, r := range chosen {
		rank[r] = int16(i)
	}
	s := &SampleSpec{
		Den:       den,
		Granule:   g,
		Sets:      l2Sets,
		LineBytes: lineBytes,
		Residues:  chosen,
		rank:      rank,
	}
	s.lineShift = log2u(lineBytes)
	s.gShift = log2u(g)
	s.kShift = log2u(k)
	s.sShift = log2u(l2Sets)
	s.cShift = log2u(l2Sets / den)
	return s, nil
}

// log2u returns log2 of a power of two.
func log2u(n int) uint {
	var s uint
	for 1<<s != n {
		s++
	}
	return s
}

// CompactSets returns the sampled machine's L2 set count, Sets/Den.
func (s *SampleSpec) CompactSets() int { return s.Sets / s.Den }

// KeepBlock reports whether a block address maps to a sampled set.
func (s *SampleSpec) KeepBlock(block uint64) bool {
	return s.rank[block&uint64(s.Granule-1)] >= 0
}

// Keep reports whether a byte address maps to a sampled set.
func (s *SampleSpec) Keep(addr uint64) bool { return s.KeepBlock(addr >> s.lineShift) }

// RewriteBlock maps a kept block address onto the compact geometry: the
// residue field is replaced by its rank among the chosen residues and the
// upper bits close over it. Injective over kept blocks, so tag equality is
// preserved; the compact L1 set index is the residue's rank and the compact
// L2 set index is OrigSet's inverse. Must only be called on kept blocks.
func (s *SampleSpec) RewriteBlock(block uint64) uint64 {
	set := block & uint64(s.Sets-1)
	high := block >> s.sShift
	cset := (set>>s.gShift)<<s.kShift | uint64(s.rank[set&uint64(s.Granule-1)])
	return high<<s.cShift | cset
}

// UnrewriteBlock inverts RewriteBlock (differential tests translate compact
// tags back for comparison against a full-geometry machine).
func (s *SampleSpec) UnrewriteBlock(block uint64) uint64 {
	cset := block & uint64(s.CompactSets()-1)
	high := block >> s.cShift
	k := uint64(len(s.Residues))
	set := (cset>>s.kShift)<<s.gShift | uint64(s.Residues[cset&(k-1)])
	return high<<s.sShift | set
}

// RewriteAddr is RewriteBlock over a byte address, preserving sub-line bits.
func (s *SampleSpec) RewriteAddr(addr uint64) uint64 {
	line := addr & uint64(s.LineBytes-1)
	return s.RewriteBlock(addr>>s.lineShift)<<s.lineShift | line
}

// OrigSet returns the full-geometry L2 set index that compact set cs
// simulates.
func (s *SampleSpec) OrigSet(cs int) int {
	k := len(s.Residues)
	return (cs>>s.kShift)<<s.gShift | s.Residues[cs&(k-1)]
}

// OrigL1Set returns the full-geometry L1 set index that compact L1 set cs
// simulates (the cs-th chosen residue).
func (s *SampleSpec) OrigL1Set(cs int) int { return s.Residues[cs] }

// String renders the spec compactly and uniquely — sub-arena cache/store
// keys append it to the parent stream key.
func (s *SampleSpec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "1of%d.g%d.s%d.l%d.r", s.Den, s.Granule, s.Sets, s.LineBytes)
	for i, r := range s.Residues {
		if i > 0 {
			b.WriteByte('-')
		}
		b.WriteString(strconv.Itoa(r))
	}
	return b.String()
}

// ParseSampleRatio parses the CLI sampling grammar: "off" (or "") is full
// fidelity (0), "1/N" samples one set in N. N must be at least 2.
func ParseSampleRatio(v string) (int, error) {
	if v == "" || v == "off" {
		return 0, nil
	}
	num, den, ok := strings.Cut(v, "/")
	if !ok || num != "1" {
		return 0, fmt.Errorf("trace: sample ratio %q: want \"1/N\" or \"off\"", v)
	}
	d, err := strconv.Atoi(den)
	if err != nil || d < 2 {
		return 0, fmt.Errorf("trace: sample ratio %q: denominator must be an integer >= 2", v)
	}
	return d, nil
}

// View wraps src into the compact-machine stream: references to unsampled
// sets are dropped with their instruction gaps folded into the next
// survivor, and surviving addresses are rewritten onto the compact geometry.
// The view owns src (like NewArena); it implements Generator, so it can be
// replayed directly or packed into a cached sub-arena.
func (s *SampleSpec) View(src Generator) Generator {
	return &sampledView{spec: s, src: src, rewrite: true, buf: make([]Ref, arenaGenBatch)}
}

// FilterView is View without the address rewrite: the identical reference
// subsequence at full addresses. Feeding it to a full-geometry machine
// yields the exact per-set state the compact machine computes (the two-arm
// contract FuzzSampleEquivalence holds together).
func (s *SampleSpec) FilterView(src Generator) Generator {
	return &sampledView{spec: s, src: src, buf: make([]Ref, arenaGenBatch)}
}

// sampledView streams the kept subsequence of src. Skipped references
// contribute their gap plus themselves (Gap+1 instructions) to a pending
// count folded into the next kept reference's gap, so cumulative instruction
// totals at every kept reference are exactly the full stream's. The pending
// count saturates at the Ref.Gap field width — both the compact and
// full-address views clamp identically, so the arms never diverge.
type sampledView struct {
	spec    *SampleSpec
	src     Generator
	rewrite bool
	buf     []Ref
	pos, n  int
	pending int64
}

// Name implements Generator (the stream name is the source's: sampling is
// keyed by the spec elsewhere).
func (v *sampledView) Name() string { return v.src.Name() }

// Next implements Generator.
func (v *sampledView) Next() Ref {
	var one [1]Ref
	v.NextBatch(one[:])
	return one[0]
}

// NextBatch implements Generator. The source must eventually produce kept
// references (every workload model covers all residues within a few hundred
// references); a stream that never touches the sample would spin.
func (v *sampledView) NextBatch(out []Ref) {
	spec := v.spec
	pending := v.pending
	i := 0
	for i < len(out) {
		if v.pos == v.n {
			v.src.NextBatch(v.buf)
			v.pos, v.n = 0, len(v.buf)
		}
		for _, ref := range v.buf[v.pos:v.n] {
			v.pos++
			if !spec.KeepBlock(ref.Addr >> spec.lineShift) {
				pending += int64(ref.Gap) + 1
				continue
			}
			g := pending + int64(ref.Gap)
			if g > math.MaxInt32 {
				g = math.MaxInt32
			}
			pending = 0
			if v.rewrite {
				ref.Addr = spec.RewriteAddr(ref.Addr)
			}
			ref.Gap = int32(g)
			out[i] = ref
			if i++; i == len(out) {
				break
			}
		}
	}
	v.pending = pending
}
