// Package coop defines the interface between the CMP engine (internal/cmp)
// and the cooperative last-level-cache policies (internal/policies).
//
// The engine drives the memory hierarchy and consults the policy at each L2
// event: to update its counters, to classify sets as spillers/receivers, to
// pick spill destinations, and to choose insertion positions. Everything a
// policy can observe in the paper's hardware descriptions (hits, misses,
// spill failures, access counts) flows through these callbacks, so each
// published design maps onto one implementation of Policy.
package coop

import (
	"ascc/internal/cachesim"
	"ascc/internal/ssl"
)

// Policy is a cooperative-caching design for a CMP with private LLCs.
// Implementations are single-threaded: the engine serialises calls.
type Policy interface {
	// Name identifies the design ("baseline", "DSR", "ASCC", ...).
	Name() string

	// OnL2Access is called for every demand access to LLC c (set index set)
	// once the local hit/miss outcome is known. This is where saturation
	// counters, PSELs and miss counters are trained.
	OnL2Access(c, set int, hit bool)

	// Role classifies (c, set) for the spilling mechanism. The engine spills
	// a last-copy victim only when the evicting set is a Spiller, and only
	// into caches whose same-index set is a Receiver.
	Role(c, set int) ssl.Role

	// Receivers returns the caches eligible to receive a spill from (c,
	// set), in preference order (the engine tries them until one admits
	// the guest). Empty means no candidate. Implementations must not list
	// c itself, and may reuse the returned slice between calls.
	Receivers(c, set int) []int

	// OnSpillFail is called when a spiller set's eviction found no receiver
	// (ASCC reacts by switching the set to SABIP insertion).
	OnSpillFail(c, set int)

	// InsertPos returns the recency position for a demand fill into (c,
	// set). Probabilistic policies (BIP/SABIP) sample internally, so each
	// call may answer differently.
	InsertPos(c, set int) cachesim.InsertPos

	// SpillInsertPos returns the recency position for a spilled line
	// arriving at receiver (c, set). guestReused reports whether the line
	// was hit at least once during its previous residence — evidence of
	// locality that placement policies may reward.
	SpillInsertPos(c, set int, guestReused bool) cachesim.InsertPos

	// AllowRespill reports whether a line that was itself spilled in may be
	// spilled again on eviction (false implements CC-style one-chance
	// forwarding; ASCC relies on its SSL conditions instead).
	AllowRespill() bool

	// SpillRequiresReuse reports whether only victims that were reused
	// during their residence are worth spilling. An unreused victim in a
	// spiller set then takes the capacity path instead (OnSpillFail), which
	// is what lets SABIP bootstrap reuse in thrashing sets. Streaming
	// applications' dead lines are never spilled under this filter.
	SpillRequiresReuse() bool

	// SwapEnabled reports whether the paper's last-copy swap on remote hits
	// (§3.2) is active — true for the ASCC family.
	SwapEnabled() bool

	// DemandVictimAllow optionally restricts which ways a demand fill in
	// (c, set) may evict; nil means any way. Used by region-partitioned
	// designs (ECC private region).
	DemandVictimAllow(c, set int) func(way int) bool

	// SpillVictimAllow optionally restricts which ways an incoming spill in
	// (c, set) may evict; nil means any way (ECC shared region).
	SpillVictimAllow(c, set int) func(way int) bool

	// GuestVictim selects how a receiver set chooses the line an incoming
	// guest displaces.
	GuestVictim() GuestVictimMode

	// Tick is called after every demand access to LLC c with that cache's
	// running access count; periodic work (AVGCC granularity re-evaluation,
	// QoS ratio recomputation, ECC repartitioning) hooks in here.
	Tick(c int, accesses uint64)
}

// AccessBatcher is an optional extension of Policy for the batched below-L1
// engine (internal/cmp, DESIGN.md §12). The engine defers L2 hit events on
// the stepping core and delivers them in one call per flush; a policy
// implementing this interface receives the run of deferred events instead of
// one OnL2Access+Tick interface-call pair each.
//
// OnL2AccessBatch(c, events, tickBase) must be observably identical to
//
//	for i, e := range events {
//		p.OnL2Access(c, int(e>>1), e&1 == 1)
//		p.Tick(c, tickBase+uint64(i)+1)
//	}
//
// where each event packs an access as set<<1 | hit. Events are consecutive
// demand accesses of cache c (access numbers tickBase+1 .. tickBase+len):
// the engine guarantees no other policy method is invoked between them, so
// implementations may hoist per-call work (bank lookup, periodic-tick
// boundary checks) out of the loop. Policies that do not implement the
// interface get exactly the loop above.
type AccessBatcher interface {
	OnL2AccessBatch(c int, events []uint32, tickBase uint64)
}

// GuestVictimMode selects how a receiver set makes room for a guest.
type GuestVictimMode int

const (
	// GuestAnyLRU evicts the receiver set's plain LRU victim (CC, DSR).
	GuestAnyLRU GuestVictimMode = iota
	// GuestDeadLines admits a guest only over an invalid or never-reused
	// line, with second-chance aging (cachesim.VictimDead); a set whose
	// lines are all live rejects the spill. Used by the ASCC family: the
	// paper defines receivers as sets with underutilised lines, and this is
	// the line-level check of that property.
	GuestDeadLines
	// GuestRegion restricts guests to the ways allowed by
	// SpillVictimAllow (ECC's shared region).
	GuestRegion
)

// Base provides neutral defaults so simple policies only override what they
// use: never spill, MRU insertion, no restrictions, no periodic work.
type Base struct{}

// OnL2Access implements Policy.
func (Base) OnL2Access(c, set int, hit bool) {}

// Role implements Policy: everything neutral, so no spilling ever happens.
func (Base) Role(c, set int) ssl.Role { return ssl.Neutral }

// Receivers implements Policy.
func (Base) Receivers(c, set int) []int { return nil }

// GuestVictim implements Policy.
func (Base) GuestVictim() GuestVictimMode { return GuestAnyLRU }

// OnSpillFail implements Policy.
func (Base) OnSpillFail(c, set int) {}

// InsertPos implements Policy.
func (Base) InsertPos(c, set int) cachesim.InsertPos { return cachesim.InsertMRU }

// SpillInsertPos implements Policy.
func (Base) SpillInsertPos(c, set int, guestReused bool) cachesim.InsertPos {
	return cachesim.InsertMRU
}

// AllowRespill implements Policy.
func (Base) AllowRespill() bool { return false }

// SpillRequiresReuse implements Policy.
func (Base) SpillRequiresReuse() bool { return false }

// SwapEnabled implements Policy.
func (Base) SwapEnabled() bool { return false }

// DemandVictimAllow implements Policy.
func (Base) DemandVictimAllow(c, set int) func(way int) bool { return nil }

// SpillVictimAllow implements Policy.
func (Base) SpillVictimAllow(c, set int) func(way int) bool { return nil }

// Tick implements Policy.
func (Base) Tick(c int, accesses uint64) {}
