package coop

import (
	"testing"

	"ascc/internal/cachesim"
	"ascc/internal/ssl"
)

// compile-time check that Base satisfies everything but Name.
type named struct {
	Base
}

func (named) Name() string { return "named" }

var _ Policy = named{}

func TestBaseDefaults(t *testing.T) {
	var b named
	b.OnL2Access(0, 0, true) // must not panic
	b.OnSpillFail(0, 0)
	b.Tick(0, 12345)
	if b.Role(0, 0) != ssl.Neutral {
		t.Fatal("base role not neutral")
	}
	if b.Receivers(0, 0) != nil {
		t.Fatal("base offers receivers")
	}
	if b.InsertPos(0, 0) != cachesim.InsertMRU {
		t.Fatal("base insert not MRU")
	}
	if b.SpillInsertPos(0, 0, true) != cachesim.InsertMRU {
		t.Fatal("base spill insert not MRU")
	}
	if b.AllowRespill() || b.SwapEnabled() {
		t.Fatal("base enables cooperative features")
	}
	if b.DemandVictimAllow(0, 0) != nil || b.SpillVictimAllow(0, 0) != nil {
		t.Fatal("base restricts victims")
	}
	if b.GuestVictim() != GuestAnyLRU {
		t.Fatal("base guest victim mode wrong")
	}
}

func TestGuestVictimModes(t *testing.T) {
	if GuestAnyLRU == GuestDeadLines || GuestDeadLines == GuestRegion {
		t.Fatal("guest victim modes not distinct")
	}
}
