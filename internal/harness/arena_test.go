package harness

import (
	"testing"
)

// arenaConfig is tinyConfig with the budgets trimmed further: the arena
// tests assert sharing structure, not simulation fidelity.
func arenaConfig() Config {
	cfg := tinyConfig()
	cfg.WarmupInstr = 40_000
	cfg.MeasureInstr = 100_000
	return cfg
}

// TestArenaSharedAcrossPoliciesAndMixes pins the tentpole sharing claims:
// one generation pass per (benchmark, core) stream feeds every policy run
// of a mix, the single-app baselines of AloneCPI, and other mixes placing
// the same benchmark at the same core.
func TestArenaSharedAcrossPoliciesAndMixes(t *testing.T) {
	r := NewRunner(arenaConfig())
	if r.arenas == nil {
		t.Fatal("default config did not attach a trace cache")
	}
	mix := []int{445, 456}
	for _, id := range []PolicyID{PBaseline, PDSR, PASCC, PAVGCC} {
		if _, err := r.RunMix(mix, id); err != nil {
			t.Fatal(err)
		}
	}
	// 4 policies over a 2-core mix: exactly one arena per core stream.
	if got := r.arenas.Len(); got != 2 {
		t.Fatalf("%d arenas after 4 policy runs of one mix, want 2", got)
	}
	// The single-app "alone" run of 445 is the mix stream for core 0.
	if _, err := r.AloneCPI(445); err != nil {
		t.Fatal(err)
	}
	if got := r.arenas.Len(); got != 2 {
		t.Fatalf("%d arenas after AloneCPI(445), want 2 (stream shared)", got)
	}
	// A different mix reusing 445 at core 0 shares its arena; 471 at
	// core 1 is a new stream.
	if _, err := r.RunMix([]int{445, 471}, PBaseline); err != nil {
		t.Fatal(err)
	}
	if got := r.arenas.Len(); got != 3 {
		t.Fatalf("%d arenas after second mix, want 3", got)
	}
	// The same benchmark at a different core is a different stream (its
	// seed and address base derive from the core index).
	if _, err := r.RunMix([]int{456, 445}, PBaseline); err != nil {
		t.Fatal(err)
	}
	if got := r.arenas.Len(); got != 5 {
		t.Fatalf("%d arenas after swapped mix, want 5", got)
	}
}

// TestArenaReplayBitIdentical compares full simulation results with the
// trace cache on and off for a representative mix and policy: the replayed
// stream must reproduce every statistic of live generation exactly.
func TestArenaReplayBitIdentical(t *testing.T) {
	mixes := [][]int{{445, 456}, {433, 471, 473, 482}}
	for _, mix := range mixes {
		cfgOn := arenaConfig()
		cfgOff := arenaConfig()
		cfgOff.TraceCache = false
		for _, id := range []PolicyID{PBaseline, PAVGCC} {
			on, err := NewRunner(cfgOn).RunMix(mix, id)
			if err != nil {
				t.Fatal(err)
			}
			off, err := NewRunner(cfgOff).RunMix(mix, id)
			if err != nil {
				t.Fatal(err)
			}
			for c := range on.Cores {
				if on.Cores[c] != off.Cores[c] {
					t.Fatalf("mix %v policy %s core %d: replay %+v != live %+v",
						mix, id, c, on.Cores[c], off.Cores[c])
				}
			}
		}
	}
}

// TestArenaSharedAcrossConfigsOnOnePool checks the pool-level cache: two
// runners differing only in machine geometry (an L2-size override) share
// the workload arenas, because streams depend only on (workload, seed,
// scale).
func TestArenaSharedAcrossConfigsOnOnePool(t *testing.T) {
	p := NewPool(1)
	cfgA := arenaConfig().WithPool(p)
	cfgB := cfgA
	cfgB.L2SizeBytes = 512 * 1024
	ra := SharedRunner(cfgA)
	rb := SharedRunner(cfgB)
	if ra == rb {
		t.Fatal("distinct configs resolved to one runner")
	}
	if ra.arenas != rb.arenas {
		t.Fatal("pool-attached runners did not share the arena cache")
	}
	if _, err := ra.RunMix([]int{445, 456}, PBaseline); err != nil {
		t.Fatal(err)
	}
	n := ra.arenas.Len()
	if _, err := rb.RunMix([]int{445, 456}, PBaseline); err != nil {
		t.Fatal(err)
	}
	if got := rb.arenas.Len(); got != n {
		t.Fatalf("L2-size override regenerated streams: %d arenas, want %d", got, n)
	}
}

// TestArenaBudgetUnionAcrossRunners is the regression for the pool budget
// gap: the first runner's TraceCacheMB used to fix the shared cache's
// budget forever, silently capping any later runner that asked for more.
// The pool must reconcile to the most permissive budget, in either
// attachment order.
func TestArenaBudgetUnionAcrossRunners(t *testing.T) {
	mk := func(mbFirst, mbSecond int) int64 {
		p := NewPool(1)
		cfgA := arenaConfig().WithPool(p)
		cfgA.TraceCacheMB = mbFirst
		cfgB := arenaConfig().WithPool(p)
		cfgB.TraceCacheMB = mbSecond
		ra, rb := SharedRunner(cfgA), SharedRunner(cfgB)
		if ra.arenas != rb.arenas {
			t.Fatal("pool-attached runners did not share the arena cache")
		}
		return ra.arenas.MaxBytes()
	}
	const mi = int64(1 << 20)
	if got := mk(1, 512); got != 512*mi {
		t.Fatalf("small-then-large: budget %d, want %d", got, 512*mi)
	}
	if got := mk(512, 1); got != 512*mi {
		t.Fatalf("large-then-small: budget %d, want %d", got, 512*mi)
	}
	// TraceCacheMB = 0 resolves to the default, which participates in the
	// union like any explicit bound.
	if got := mk(1, 0); got != int64(DefaultTraceCacheMB)*mi {
		t.Fatalf("small-then-default: budget %d, want %d", got, int64(DefaultTraceCacheMB)*mi)
	}
}

// TestArenaDisabled pins the opt-out: no cache is attached and runs still
// work on live generation.
func TestArenaDisabled(t *testing.T) {
	cfg := arenaConfig()
	cfg.TraceCache = false
	r := NewRunner(cfg)
	if r.arenas != nil {
		t.Fatal("TraceCache=false still attached a cache")
	}
	if _, err := r.RunMix([]int{445, 456}, PBaseline); err != nil {
		t.Fatal(err)
	}
}

// TestArenaMTStreams checks the multithreaded path: per-thread streams get
// per-thread arenas keyed apart from the mix streams.
func TestArenaMTStreams(t *testing.T) {
	r := NewRunner(arenaConfig())
	if _, err := r.RunMT("ocean", 2, PBaseline); err != nil {
		t.Fatal(err)
	}
	if got := r.arenas.Len(); got != 2 {
		t.Fatalf("%d arenas after 2-thread MT run, want 2", got)
	}
	if _, err := r.RunMT("ocean", 2, PASCC); err != nil {
		t.Fatal(err)
	}
	if got := r.arenas.Len(); got != 2 {
		t.Fatalf("%d arenas after second MT policy, want 2 (shared)", got)
	}
}

// TestArenaSingleRunsShareStream pins RunSingle sharing (the Fig. 1 way
// sweep replays one stream per benchmark across every geometry point).
func TestArenaSingleRunsShareStream(t *testing.T) {
	r := NewRunner(arenaConfig())
	for _, ways := range []int{2, 4, 8} {
		p := r.Cfg.Params(1)
		p.L2.Ways = ways
		if _, _, err := r.RunSingle(445, p); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.arenas.Len(); got != 1 {
		t.Fatalf("%d arenas after 3-point way sweep, want 1", got)
	}
}
