package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNewPoolDefaultsToNumCPU(t *testing.T) {
	if got := NewPool(0).Size(); got != runtime.NumCPU() {
		t.Fatalf("default pool size %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := NewPool(-3).Size(); got != runtime.NumCPU() {
		t.Fatalf("negative pool size %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := NewPool(5).Size(); got != 5 {
		t.Fatalf("pool size %d, want 5", got)
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(2)
	var active, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.run(func() {
				n := active.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				runtime.Gosched()
				active.Add(-1)
			})
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > 2 {
		t.Fatalf("pool of 2 ran %d simulations at once", got)
	}
}

func TestForEachCollectsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	var calls atomic.Int64
	err := ForEach(8, func(i int) error {
		calls.Add(1)
		switch i {
		case 3:
			return errA
		case 6:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Fatalf("got %v, want the lowest-index error %v", err, errA)
	}
	if calls.Load() != 8 {
		t.Fatalf("%d calls, want all 8 (no short-circuit)", calls.Load())
	}
	if err := ForEach(0, func(int) error { return errA }); err != nil {
		t.Fatalf("empty ForEach returned %v", err)
	}
	if err := ForEach(4, func(int) error { return nil }); err != nil {
		t.Fatalf("clean ForEach returned %v", err)
	}
}

// TestRunMixSingleflight drives 8 goroutines at the same (mix, policy) key
// and asserts exactly one simulation executed with every caller seeing the
// same result.
func TestRunMixSingleflight(t *testing.T) {
	r := NewRunner(tinyConfig())
	const callers = 8
	results := make([]float64, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.RunMix([]int{445, 456}, PASCC)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = res.Cores[0].CPI()
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("caller %d saw CPI %v, caller 0 saw %v", i, results[i], results[0])
		}
	}
	if n := r.Simulations(); n != 1 {
		t.Fatalf("%d simulations for one key under %d concurrent callers, want 1", n, callers)
	}
	// A repeat call is a pure cache hit.
	if _, err := r.RunMix([]int{445, 456}, PASCC); err != nil {
		t.Fatal(err)
	}
	if n := r.Simulations(); n != 1 {
		t.Fatalf("repeat call re-simulated (%d runs)", n)
	}
	// A different policy is a different key.
	if _, err := r.RunMix([]int{445, 456}, PBaseline); err != nil {
		t.Fatal(err)
	}
	if n := r.Simulations(); n != 2 {
		t.Fatalf("distinct key did not simulate (%d runs)", n)
	}
}

// TestAloneCPISharesBaselineRun checks that the alone-CPI calibration and an
// explicit single-benchmark baseline run share one simulation.
func TestAloneCPISharesBaselineRun(t *testing.T) {
	r := NewRunner(tinyConfig())
	cpi, err := r.AloneCPI(445)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunMix([]int{445}, PBaseline)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Cores[0].CPI(); got != cpi {
		t.Fatalf("alone CPI %v != baseline mix CPI %v", cpi, got)
	}
	if n := r.Simulations(); n != 1 {
		t.Fatalf("%d simulations, want 1 shared run", n)
	}
}

func TestPoolSharedRunnerPerConfig(t *testing.T) {
	p := NewPool(2)
	cfg := tinyConfig()
	r1, r2 := p.Runner(cfg), p.Runner(cfg)
	if r1 != r2 {
		t.Fatal("equal configs must share one runner")
	}
	other := cfg
	other.L2SizeBytes = 512 * 1024
	if p.Runner(other) == r1 {
		t.Fatal("distinct configs must not share a runner")
	}
	// SharedRunner resolves through the pool only when cfg carries one.
	if SharedRunner(cfg.WithPool(p)) != r1 {
		t.Fatal("SharedRunner ignored the attached pool")
	}
	if SharedRunner(cfg) == r1 {
		t.Fatal("SharedRunner without a pool must build a private runner")
	}
}

// TestParallelMatchesSequential asserts bit-identical results between a
// sequential (Parallel=1) and a concurrent (Parallel=8) runner for a grid
// of mixes and policies issued from many goroutines.
func TestParallelMatchesSequential(t *testing.T) {
	mixes := [][]int{{445, 456}, {433, 473}}
	pols := []PolicyID{PBaseline, PASCC, PAVGCC}

	seqCfg := tinyConfig()
	seqCfg.Parallel = 1
	parCfg := tinyConfig()
	parCfg.Parallel = 8

	collect := func(cfg Config) []string {
		r := NewRunner(cfg)
		out := make([]string, len(mixes)*len(pols))
		err := ForEach(len(out), func(k int) error {
			res, err := r.RunMix(mixes[k/len(pols)], pols[k%len(pols)])
			if err != nil {
				return err
			}
			out[k] = fmt.Sprintf("%#v", res.Cores)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq, par := collect(seqCfg), collect(parCfg)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("run %d differs between -parallel 1 and -parallel 8:\n%s\nvs\n%s", i, seq[i], par[i])
		}
	}
}
