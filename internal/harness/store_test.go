package harness

import (
	"os"
	"reflect"
	"testing"

	"ascc/internal/trace/store"
)

// storeConfig is arenaConfig rooted at a per-test persistent arena store.
func storeConfig(t *testing.T) Config {
	t.Helper()
	cfg := arenaConfig()
	cfg.ArenaStoreDir = t.TempDir()
	return cfg
}

// storeStats digs the runner's persistent tier out for assertions.
func storeStats(t *testing.T, r *Runner) store.Stats {
	t.Helper()
	if r.arenas == nil {
		t.Fatal("runner has no trace cache")
	}
	s, ok := r.arenas.Store().(*store.Store)
	if !ok {
		t.Fatalf("runner store is %T, want *store.Store", r.arenas.Store())
	}
	return s.Stats()
}

// TestRunnerStoreRoundTrip pins the cross-process contract at the harness
// level: one runner simulates and flushes, a second runner (fresh pool,
// same store directory — a "new process") replays every stream from the
// store and reproduces bit-identical results.
func TestRunnerStoreRoundTrip(t *testing.T) {
	cfg := storeConfig(t)
	mix := []int{445, 456}

	r1 := NewRunner(cfg)
	cold, err := r1.RunMix(mix, PAVGCC)
	if err != nil {
		t.Fatal(err)
	}
	if st := storeStats(t, r1); st.Loads != 0 || st.Misses == 0 {
		t.Fatalf("cold run stats %+v, want misses and no loads", st)
	}
	if err := r1.FlushArenas(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(cfg.ArenaStoreDir)
	if err != nil || len(ents) != 2 {
		t.Fatalf("store holds %d files after a 2-core flush (err %v), want 2", len(ents), err)
	}

	r2 := NewRunner(cfg)
	warm, err := r2.RunMix(mix, PAVGCC)
	if err != nil {
		t.Fatal(err)
	}
	if st := storeStats(t, r2); st.Loads != 2 || st.Misses != 0 || st.Corrupt != 0 {
		t.Fatalf("warm run stats %+v, want exactly 2 loads", st)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm-store run diverged from cold run")
	}

	// A re-flush with nothing grown must not rewrite files.
	if err := r2.FlushArenas(); err != nil {
		t.Fatal(err)
	}
	if st := storeStats(t, r2); st.Saves != 0 {
		t.Fatalf("idle flush saved %d files", st.Saves)
	}
}

// TestPrewarmCoversSuiteStreams is the prewarm contract: after
// PrewarmArenas, a fresh runner can execute every run shape the
// experiment suite uses — mixes, alone baselines, the way-sweep singles,
// multithreaded workloads — without a single store miss, i.e. the
// enumeration agrees key-for-key with replayGens.
func TestPrewarmCoversSuiteStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("prewarm synthesises the full stream set")
	}
	cfg := storeConfig(t)
	n, err := NewRunner(cfg).PrewarmArenas()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("prewarm warmed no streams")
	}
	ents, err := os.ReadDir(cfg.ArenaStoreDir)
	if err != nil || len(ents) != n {
		t.Fatalf("store holds %d files after prewarming %d streams (err %v)", len(ents), n, err)
	}

	r := NewRunner(cfg)
	if _, err := r.RunMix([]int{445, 456}, PASCC); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AloneCPIs([]int{433, 471, 473, 482}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.RunSingle(429, r.Cfg.Params(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunMT("ocean", 4, PBaseline); err != nil {
		t.Fatal(err)
	}
	if st := storeStats(t, r); st.Misses != 0 || st.Corrupt != 0 || st.Loads == 0 {
		t.Fatalf("post-prewarm stats %+v, want loads only", st)
	}
}

// TestPrewarmPreconditions: prewarming is meaningless without the cache
// tier it fills or the store it fills into.
func TestPrewarmPreconditions(t *testing.T) {
	noCache := arenaConfig()
	noCache.TraceCache = false
	if _, err := NewRunner(noCache).PrewarmArenas(); err == nil {
		t.Fatal("prewarm without a trace cache did not fail")
	}
	noStore := arenaConfig()
	if _, err := NewRunner(noStore).PrewarmArenas(); err == nil {
		t.Fatal("prewarm without a store did not fail")
	}
}

// TestPoolSharesOneStore: runners of different configurations on one pool
// share the pool cache and therefore one store — the first directory
// wins, mirroring the cache-budget union semantics.
func TestPoolSharesOneStore(t *testing.T) {
	pool := NewPool(2)
	cfgA := storeConfig(t)
	cfgB := storeConfig(t) // different directory: must be ignored
	rA := pool.Runner(cfgA.WithPool(pool))
	rB := pool.Runner(cfgB.WithPool(pool))
	sA, okA := rA.arenas.Store().(*store.Store)
	sB, okB := rB.arenas.Store().(*store.Store)
	if !okA || !okB || sA != sB {
		t.Fatal("pooled runners did not share one store")
	}
	if sA.Dir() != cfgA.ArenaStoreDir {
		t.Fatalf("shared store rooted at %q, want first runner's %q", sA.Dir(), cfgA.ArenaStoreDir)
	}

	// Pool-level flush persists what pooled runners grew.
	if _, err := rA.RunMix([]int{445, 456}, PBaseline); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushArenas(); err != nil {
		t.Fatal(err)
	}
	if st := sA.Stats(); st.Saves != 2 {
		t.Fatalf("pool flush saved %d files, want 2", st.Saves)
	}
}
