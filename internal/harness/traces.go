package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ascc/internal/cmp"
	"ascc/internal/trace"
)

// TraceSpec describes one core's externally supplied trace.
type TraceSpec struct {
	Path string
	// BaseCPI and Overlap are the timing-model parameters for this trace's
	// core (see cmp.CoreTiming); zero values default to 1.0 and 0.5.
	BaseCPI float64
	Overlap float64
}

// LoadTraceFile reads a trace file (binary .trc or .csv, by extension) into
// a replayable generator.
func LoadTraceFile(path string) (*trace.Replay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var refs []trace.Ref
	switch strings.ToLower(filepath.Ext(path)) {
	case ".csv":
		refs, err = trace.ReadCSV(f)
	default:
		refs, err = trace.ReadBinary(f)
	}
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", path, err)
	}
	return trace.NewReplay(filepath.Base(path), refs)
}

// RunTraces simulates one externally supplied trace per core under a
// registry policy, using the runner's machine configuration.
func (r *Runner) RunTraces(specs []TraceSpec, id PolicyID) (cmp.Results, error) {
	if len(specs) == 0 {
		return cmp.Results{}, fmt.Errorf("harness: no traces")
	}
	gens := make([]trace.Generator, len(specs))
	timing := make([]cmp.CoreTiming, len(specs))
	for i, spec := range specs {
		rp, err := LoadTraceFile(spec.Path)
		if err != nil {
			return cmp.Results{}, err
		}
		gens[i] = rp
		timing[i] = cmp.CoreTiming{BaseCPI: spec.BaseCPI, Overlap: spec.Overlap}
		if timing[i].BaseCPI <= 0 {
			timing[i].BaseCPI = 1.0
		}
		if timing[i].Overlap <= 0 {
			timing[i].Overlap = 0.5
		}
	}
	p := r.Cfg.params(len(specs))
	sets, ways := r.Cfg.L2Geometry()
	pol, err := NewPolicy(id, len(specs), sets, ways, r.Cfg.Seed, r.Cfg.ResizePeriod())
	if err != nil {
		return cmp.Results{}, err
	}
	sys, err := cmp.New(p, gens, timing, pol)
	if err != nil {
		return cmp.Results{}, err
	}
	return r.simulate(sys), nil
}
