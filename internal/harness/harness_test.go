package harness

import (
	"strings"
	"testing"
)

func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.WarmupInstr = 150_000
	cfg.MeasureInstr = 400_000
	return cfg
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Scale != 8 || cfg.Seed == 0 {
		t.Fatalf("default config %+v", cfg)
	}
	sets, ways := cfg.L2Geometry()
	if sets != 512 || ways != 8 {
		t.Fatalf("scaled geometry %d sets / %d ways, want 512/8", sets, ways)
	}
	if p := cfg.ResizePeriod(); p != 100000/64 {
		t.Fatalf("resize period %d, want %d", p, 100000/64)
	}
	scale1 := cfg
	scale1.Scale = 1
	if s, _ := scale1.L2Geometry(); s != 4096 {
		t.Fatalf("paper-scale sets %d, want 4096", s)
	}
	if scale1.ResizePeriod() != 100000 {
		t.Fatal("paper-scale resize period must stay 100000")
	}
}

func TestL2SizeOverrideIsPaperScale(t *testing.T) {
	cfg := tinyConfig()
	cfg.L2SizeBytes = 512 * 1024
	p := cfg.Params(2)
	if p.L2.SizeBytes != 512*1024/8 {
		t.Fatalf("override not scaled: %d", p.L2.SizeBytes)
	}
}

func TestNewPolicyRegistry(t *testing.T) {
	ids := []PolicyID{PBaseline, PCC, PDSR, PDSRDIP, PDSR3S, PECC, PLRS, PLMS,
		PGMS, PLMSBIP, PGMSSABIP, PASCC, PASCC2S, PAVGCC, PQoSAVGCC}
	for _, id := range ids {
		pol, err := NewPolicy(id, 4, 512, 8, 1, 0)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if pol.Name() != string(id) {
			t.Errorf("%s: policy names itself %q", id, pol.Name())
		}
	}
	if _, err := NewPolicy("bogus", 4, 512, 8, 1, 0); err == nil {
		t.Fatal("unknown policy id accepted")
	}
}

func TestAloneCPIMemoised(t *testing.T) {
	r := NewRunner(tinyConfig())
	a, err := r.AloneCPI(445)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.AloneCPI(445)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("memoised alone CPI changed: %v vs %v", a, b)
	}
	if a <= 0 {
		t.Fatalf("alone CPI %v", a)
	}
	cpis, err := r.AloneCPIs([]int{445, 456})
	if err != nil || len(cpis) != 2 || cpis[0] != a {
		t.Fatalf("AloneCPIs = %v, %v", cpis, err)
	}
	if _, err := r.AloneCPI(999); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunMixDeterministic(t *testing.T) {
	r1, r2 := NewRunner(tinyConfig()), NewRunner(tinyConfig())
	a, err := r1.RunMix([]int{445, 456}, PASCC)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r2.RunMix([]int{445, 456}, PASCC)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cores {
		if a.Cores[i] != b.Cores[i] {
			t.Fatalf("core %d differs across identical runs", i)
		}
	}
}

func TestRunShared(t *testing.T) {
	r := NewRunner(tinyConfig())
	res, err := r.RunShared([]int{445, 456})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "shared-LLC" || len(res.Cores) != 2 {
		t.Fatalf("shared run wrong: %q %d cores", res.Policy, len(res.Cores))
	}
}

func TestRunMT(t *testing.T) {
	cfg := tinyConfig()
	cfg.L2SizeBytes = 512 * 1024
	r := NewRunner(cfg)
	res, err := r.RunMT("ocean", 4, PAVGCC)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 4 {
		t.Fatalf("MT run has %d cores", len(res.Cores))
	}
	// Shared data must produce coherence traffic under the baseline too.
	base, err := r.RunMT("lu", 4, PBaseline)
	if err != nil {
		t.Fatal(err)
	}
	var remote uint64
	for _, c := range base.Cores {
		remote += c.L2RemoteHits
	}
	if remote == 0 {
		t.Fatal("multithreaded run produced no remote hits")
	}
	if _, err := r.RunMT("nope", 4, PBaseline); err == nil {
		t.Fatal("unknown MT workload accepted")
	}
}

func TestRunSingleCustomCache(t *testing.T) {
	cfg := tinyConfig()
	r := NewRunner(cfg)
	p := cfg.Params(1)
	p.L2.EnabledWays = 2
	res, sys, err := r.RunSingle(444, p)
	if err != nil {
		t.Fatal(err)
	}
	if sys.L2(0).Ways() != 2 {
		t.Fatalf("enabled ways not honoured: %d", sys.L2(0).Ways())
	}
	if res.Cores[0].Instructions == 0 {
		t.Fatal("no instructions committed")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{
		Title:  "Demo",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"x", "1"}, {"longer", "2"}},
		Notes:  []string{"a note"},
	}
	s := tbl.String()
	for _, want := range []string{"== Demo ==", "longer", "note: a note", "----"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
	// Columns must align: every data line has the same prefix width for
	// column 2.
	lines := strings.Split(s, "\n")
	if !strings.HasPrefix(lines[1], "a     ") {
		t.Fatalf("header not padded: %q", lines[1])
	}
}

func TestTableRaggedRows(t *testing.T) {
	// Regression: a row with more cells than the header used to panic with
	// an index-out-of-range on widths[i]. Extra columns render unheaded.
	tbl := Table{
		Title:  "Ragged",
		Header: []string{"a"},
		Rows: [][]string{
			{"x", "extra", "more"},
			{"y"},
			{},
		},
	}
	s := tbl.String()
	for _, want := range []string{"== Ragged ==", "x", "extra", "more", "y"} {
		if !strings.Contains(s, want) {
			t.Fatalf("ragged table output missing %q:\n%s", want, s)
		}
	}
	// The widened column set must not disturb header alignment.
	if lines := strings.Split(s, "\n"); !strings.HasPrefix(lines[1], "a") {
		t.Fatalf("header line wrong: %q", lines[1])
	}
}

func TestFormatHelpers(t *testing.T) {
	if Pct(0.078) != "+7.8%" || Pct(-0.01) != "-1.0%" {
		t.Fatal("Pct wrong")
	}
	if F2(1.234) != "1.23" {
		t.Fatal("F2 wrong")
	}
}
