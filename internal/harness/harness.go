// Package harness wires workloads, the CMP engine and the policies into
// runnable experiments, caches the expensive single-application baseline
// runs that the weighted-speedup metrics normalise against, and renders
// text tables for the per-figure reproductions in internal/experiments.
package harness

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"ascc/internal/cmp"
	"ascc/internal/coop"
	"ascc/internal/policies"
	"ascc/internal/rng"
	"ascc/internal/trace"
	"ascc/internal/trace/store"
	"ascc/internal/workload"
)

// Config fixes the experimental conditions shared by every run of a suite.
type Config struct {
	// Scale is the geometry scale divisor (DESIGN.md §5): caches and
	// workload footprints are shrunk together. 8 is the fast default; 1 is
	// the paper's absolute geometry.
	Scale int
	// WarmupInstr instructions are executed per core before measurement.
	WarmupInstr uint64
	// MeasureInstr instructions are measured per core (the paper uses 10
	// billion; the scaled default is a few million).
	MeasureInstr uint64
	// Seed fixes every random sequence in the suite.
	Seed uint64
	// Prefetch enables the per-LLC stride prefetcher (§6.3).
	Prefetch bool
	// L2SizeBytes overrides the LLC size when non-zero, expressed at PAPER
	// scale (it is divided by Scale like everything else). Table 4 and the
	// multithreaded study use it.
	L2SizeBytes int
	// Parallel bounds how many simulations run at once: 0 uses all CPUs
	// (runtime.NumCPU), 1 recovers sequential execution. Results are
	// bit-identical at every setting; only wall-clock changes.
	Parallel int
	// TraceCache memoises each workload's generated reference stream in a
	// packed in-memory arena (trace.Arena, DESIGN.md §10): the stream is
	// synthesised once per (workload, seed, scale) and every subsequent run
	// replays it by straight decode, skipping the component mixing and RNG
	// draws that otherwise dominate steady-state CPU. Results are
	// bit-identical with the cache on or off.
	TraceCache bool
	// TraceCacheMB bounds the resident size of the packed-stream cache in
	// MiB; cold arenas are evicted least-recently-used first when the
	// budget is exceeded. 0 uses DefaultTraceCacheMB. Only meaningful when
	// TraceCache is set.
	TraceCacheMB int
	// ArenaStoreDir, when non-empty, roots the persistent arena store
	// (internal/trace/store, DESIGN.md §14) beneath the packed-stream
	// cache: cache misses memory-map previously persisted streams instead
	// of re-synthesising them, evictions write dirty arenas behind, and
	// Runner/Pool.FlushArenas persists what a batch of runs grew — so
	// arenas survive the process and every later run, sweep or CI job
	// replays instead of regenerates. Empty keeps the cache purely
	// in-memory (the default; DefaultArenaStoreDir returns the
	// conventional root). Only meaningful when TraceCache is set; results
	// are bit-identical with the store on, off, cold or warm. Runners
	// sharing one pool share one store — the first store-carrying
	// configuration fixes the directory.
	ArenaStoreDir string
	// Engine selects the below-L1 stepping engine (cmp.Params.Engine,
	// DESIGN.md §§12, 15). The zero value is cmp.EngineRefStep, the
	// per-reference descent — the fastest measured engine and the shipped
	// default; cmp.EngineFused is the fused L1→L2 kernel (required by
	// SimParallel), cmp.EngineBatched the demoted batched turn engine kept
	// as a differential reference. Results are bit-identical across
	// engines.
	Engine cmp.Engine
	// Cores, when non-zero, widens every mix run to that many cores by
	// cyclic replication (workload.ExtendMix): a 4-app mix on Cores=16 runs
	// four independent copies of each application. Zero keeps each mix's
	// natural width. Single-application calibration runs (AloneCPI) are
	// never widened. At most 64 (the holder-mask word).
	Cores int
	// SimParallel is the speculative-worker count for in-run core
	// parallelism (cmp.Params.SimParallel, DESIGN.md §13): 0 or 1 runs each
	// simulation on one goroutine, larger values offload upcoming L1 bursts.
	// Results are bit-identical at any setting. Composes with Parallel
	// (across-simulation fan-out): total goroutine demand is the product.
	SimParallel int
	// NoDirectory disables the set-sharded coherence directory
	// (cmp.Params.NoDirectory, DESIGN.md §13) and answers holder-mask
	// queries with broadcast row scans. Results are bit-identical either
	// way; the toggle exists for the honest A/B and as an escape hatch.
	NoDirectory bool
	// SampleDen, when > 1, runs every simulation on the set-sampled fast
	// path (cmp.Params.SampleDen, DESIGN.md §16): the machine models
	// 1/SampleDen of the L2 sets (a deterministic residue sample that
	// always contains the policies' SDM leader sets), the reference
	// streams are pre-filtered to those sets at the arena layer (the
	// filtered sub-arena is cached and persisted like any other arena),
	// and the results are rescaled to full-run magnitudes
	// (cmp.System.ScaleSampled). Single-core per-set behaviour is exact;
	// multi-core results differ only through cross-core interleave.
	// Ignored (full fidelity) when Prefetch is set — the stride prefetcher
	// crosses set boundaries. Experiments that inspect per-set state
	// (fig1, fig2) or run the shared-LLC machine clear it internally.
	SampleDen int

	// pool, when non-nil, is the worker pool shared by every Runner built
	// from this configuration (set via WithPool / EnsurePool). The zero
	// value gives each Runner a private pool of Parallel slots.
	pool *Pool
}

// WithPool returns a copy of the configuration whose runners share pool p:
// they contend for its worker slots and, through Pool.Runner, share
// memoised simulations across experiments with identical configurations.
func (c Config) WithPool(p *Pool) Config {
	c.pool = p
	return c
}

// EnsurePool returns the configuration carrying a worker pool, attaching a
// fresh one of Parallel slots if none is shared yet.
func (c Config) EnsurePool() Config {
	if c.pool == nil {
		c.pool = NewPool(c.Parallel)
	}
	return c
}

// DefaultTraceCacheMB is the packed-stream cache budget applied when
// Config.TraceCacheMB is zero. At one word per reference, 256 MiB holds
// ~33 million packed references (roughly 150–250 million simulated
// instructions' worth of stream) — comfortably above what the full
// default-budget evaluation suite touches, so eviction only engages on
// much larger instruction budgets.
const DefaultTraceCacheMB = 256

// DefaultConfig returns the standard fast configuration.
func DefaultConfig() Config {
	return Config{
		Scale:        8,
		WarmupInstr:  1_000_000,
		MeasureInstr: 3_000_000,
		Seed:         1,
		TraceCache:   true,
	}
}

// traceCacheBytes resolves the packed-stream cache budget in bytes.
func (c Config) traceCacheBytes() int64 {
	mb := c.TraceCacheMB
	if mb <= 0 {
		mb = DefaultTraceCacheMB
	}
	return int64(mb) << 20
}

// Params builds the machine description for a core count (exported for the
// experiment runners that need to customise the L2, e.g. Figure 1's way
// sweep).
func (c Config) Params(cores int) cmp.Params { return c.params(cores) }

// params builds the machine description for a core count.
func (c Config) params(cores int) cmp.Params {
	p := cmp.DefaultParams(cores, c.Scale)
	if c.L2SizeBytes > 0 {
		p.L2.SizeBytes = c.L2SizeBytes / c.Scale
	}
	p.Prefetch = c.Prefetch
	p.Engine = c.Engine
	p.NoDirectory = c.NoDirectory
	p.SimParallel = c.SimParallel
	if c.SampleDen > 1 && !c.Prefetch {
		p.SampleDen = c.SampleDen
		// Sync cores at sampled granularity: a kept reference stands for
		// SampleDen full-stream references, so the exact per-reference
		// frontier would keep full-fidelity turn counts over 1/SampleDen the
		// references and the turn bookkeeping would swamp the kernel. The
		// slack recovers most of the lost references-per-turn; the interleave
		// skew it admits (SampleDen-1 skipped references' worth of base
		// cycles — 112 cycles at 1/8, a quarter of one memory round trip)
		// keeps the measured CPI drift within ~2% at 1/8, and the
		// `sampling` experiment golden pins the accuracy at every
		// denominator.
		p.SyncSlack = syncSlackPerSkip * float64(c.SampleDen-1)
	}
	return p
}

// syncSlackPerSkip is the sampled-run interleave slack per skipped
// reference (cmp.Params.SyncSlack), in cycles. The measured knee: 16
// recovers nearly all of the turn-overhead reduction that 4x coarser
// slack reaches (suite CPU 24s -> 21s at 1/8) while keeping mean
// aggregate-CPI drift ~2% where coarser slack reached 8%.
const syncSlackPerSkip = 16.0

// extend widens a mix to the configured core count (no-op when Cores is
// zero or the mix is already at least that wide).
func (c Config) extend(mix []int) []int { return workload.ExtendMix(mix, c.Cores) }

// L2Geometry returns (sets, ways) of the configured LLC — what policy
// constructors need.
func (c Config) L2Geometry() (sets, ways int) {
	p := c.params(1)
	return p.L2.SizeBytes / p.L2.LineBytes / p.L2.Ways, p.L2.Ways
}

// ResizePeriod returns the AVGCC/QoS re-evaluation period for this
// configuration. The paper's 100 000 accesses amount to thousands of
// adaptation decisions over a 10-billion-instruction run; scaled runs are
// orders of magnitude shorter, so the period shrinks quadratically with the
// geometry scale (the counter count to refine through also shrinks) to give
// AVGCC a comparable number of decisions before measurement ends.
// Under set sampling the policies see 1/SampleDen of the L2 accesses for
// the same instruction count, so the period shrinks by the denominator too,
// keeping the adaptation cadence (decisions per instruction) aligned with
// the full-fidelity run it estimates.
func (c Config) ResizePeriod() uint64 {
	p := uint64(100000) / uint64(c.Scale*c.Scale)
	if p < 500 {
		p = 500
	}
	if c.SampleDen > 1 && !c.Prefetch {
		p /= uint64(c.SampleDen)
		if p < 1 {
			p = 1
		}
	}
	return p
}

// PolicyID names a cooperative-caching design for the registry.
type PolicyID string

// The registry of designs reproduced from the paper.
const (
	PBaseline PolicyID = "baseline"
	PCC       PolicyID = "CC"
	PDSR      PolicyID = "DSR"
	PDSRDIP   PolicyID = "DSR+DIP"
	PDSR3S    PolicyID = "DSR-3S"
	PECC      PolicyID = "ECC"
	PLRS      PolicyID = "LRS"
	PLMS      PolicyID = "LMS"
	PGMS      PolicyID = "GMS"
	PLMSBIP   PolicyID = "LMS+BIP"
	PGMSSABIP PolicyID = "GMS+SABIP"
	PASCC     PolicyID = "ASCC"
	PASCC2S   PolicyID = "ASCC-2S"
	PAVGCC    PolicyID = "AVGCC"
	PQoSAVGCC PolicyID = "QoS-AVGCC"
)

// NewPolicy instantiates a registry design for the given machine.
// resizePeriod is the AVGCC/QoS re-evaluation period in cache accesses;
// pass 0 for the paper's 100 000 (use Config.ResizePeriod for scaled runs).
func NewPolicy(id PolicyID, caches, sets, ways int, seed uint64, resizePeriod uint64) (coop.Policy, error) {
	if resizePeriod == 0 {
		resizePeriod = 100000
	}
	switch id {
	case PBaseline:
		return policies.NewBaseline(), nil
	case PCC:
		return policies.NewCC(caches, seed), nil
	case PDSR:
		return policies.NewDSR(caches, sets, ways, seed), nil
	case PDSRDIP:
		return policies.NewDSRDIP(caches, sets, ways, seed), nil
	case PDSR3S:
		return policies.NewDSR3S(caches, sets, ways, seed), nil
	case PECC:
		return policies.NewECC(caches, sets, ways, seed), nil
	case PLRS:
		return policies.NewLRS(caches, sets, ways, seed), nil
	case PLMS:
		return policies.NewLMS(caches, sets, ways, seed), nil
	case PGMS:
		return policies.NewGMS(caches, sets, ways, seed), nil
	case PLMSBIP:
		return policies.NewLMSBIP(caches, sets, ways, seed), nil
	case PGMSSABIP:
		return policies.NewGMSSABIP(caches, sets, ways, seed), nil
	case PASCC:
		return policies.NewASCC(caches, sets, ways, seed), nil
	case PASCC2S:
		return policies.NewASCC2S(caches, sets, ways, seed), nil
	case PAVGCC:
		cfg := policies.AVGCCDefaultConfig(caches, sets, ways, seed)
		cfg.ResizePeriod = resizePeriod
		return policies.NewASCCVariant("AVGCC", cfg), nil
	case PQoSAVGCC:
		cfg := policies.AVGCCDefaultConfig(caches, sets, ways, seed)
		cfg.ResizePeriod = resizePeriod
		cfg.QoS = true
		return policies.NewASCCVariant("QoS-AVGCC", cfg), nil
	}
	return nil, fmt.Errorf("harness: unknown policy %q", id)
}

// Runner executes mixes under policies. It is safe for concurrent use: any
// number of goroutines may issue runs, the configuration's worker pool
// bounds how many simulations occupy the machine, and a singleflight-style
// cache memoises every registry run — concurrent requests for the same
// (mix, policy) pair, including the alone-CPI and baseline-mix simulations
// that the weighted-speedup metrics repeat across figures, share a single
// simulation instead of duplicating it.
type Runner struct {
	Cfg Config

	pool *Pool

	// arenas is the packed reference-stream cache (nil when
	// Config.TraceCache is off): every registry run replays its workload
	// streams from memoised arenas instead of re-synthesising them, so the
	// 5–10 policy runs of a mix — and every other run touching the same
	// (benchmark, core, seed, scale) stream — share one generation pass.
	// Pool-attached runners share the pool's cache, extending the sharing
	// across experiments.
	arenas *trace.ArenaCache

	mu   sync.Mutex
	runs map[runKey]*inflight

	// nSims counts uncached simulations actually executed (tests assert
	// the memoisation collapses duplicates with it).
	nSims atomic.Uint64
}

// runKey identifies one memoisable simulation of the runner's fixed
// configuration.
type runKey struct {
	kind    string // "mix", "shared" or "mt"
	name    string // mix name (e.g. "445+456") or MT workload name
	threads int
	policy  PolicyID
}

// inflight is a singleflight slot: the first requester simulates, everyone
// else blocks on done and shares the outcome.
type inflight struct {
	done chan struct{}
	res  cmp.Results
	err  error
}

// NewRunner builds a Runner for the configuration, attaching the
// configuration's shared pool or a private one of Config.Parallel slots.
func NewRunner(cfg Config) *Runner {
	p := cfg.pool
	if p == nil {
		p = NewPool(cfg.Parallel)
	}
	return newRunner(cfg, p)
}

func newRunner(cfg Config, p *Pool) *Runner {
	cfg.pool = p
	r := &Runner{Cfg: cfg, pool: p, runs: map[runKey]*inflight{}}
	if cfg.TraceCache {
		r.arenas = p.arenaCache(cfg.traceCacheBytes())
		if cfg.ArenaStoreDir != "" {
			r.arenas.SetStore(store.New(cfg.ArenaStoreDir))
		}
	}
	return r
}

// DefaultArenaStoreDir returns the conventional persistent arena store
// root, ~/.cache/ascc/arenas (platform equivalent via os.UserCacheDir).
func DefaultArenaStoreDir() (string, error) { return store.DefaultDir() }

// FlushArenas persists every cached stream arena that grew since its last
// save to the configured persistent store. A no-op without a store (or
// with the trace cache off); call it once after a batch of runs — the CLI
// flushes per invocation — so later processes replay these streams
// instead of re-synthesising them.
func (r *Runner) FlushArenas() error {
	if r.arenas == nil {
		return nil
	}
	return r.arenas.FlushStore()
}

// FlushArenas persists the pool-wide stream cache to its persistent store
// (see Runner.FlushArenas); a no-op when no store-carrying runner is
// attached.
func (p *Pool) FlushArenas() error {
	p.arenaMu.Lock()
	a := p.arenas
	p.arenaMu.Unlock()
	if a == nil {
		return nil
	}
	return a.FlushStore()
}

// replayGens swaps each freshly built generator for an allocation-free
// replayer over its memoised packed arena (no-op when the trace cache is
// disabled). kind plus the slot index, the generator name and the runner's
// seed and scale uniquely determine the stream: workload generators derive
// their RNG seed and address base from the slot index, so e.g. benchmark
// 445 at core 0 produces one stream no matter which mix (or single-app
// baseline) it appears in — all of those runs replay one arena.
//
// When p carries a set sample (DESIGN.md §16) each stream is additionally
// filtered to the sampled sets: the filtered, address-rewritten stream is
// itself a cached arena — keyed by the parent arena's key plus the complete
// sample spec, so it composes with the LRU budget, the singleflight
// synthesis and the persistent store tier for free — built by a single
// straight-decode pass over the parent arena on first use. Every subsequent
// sampled run replays the compact stream at full arena speed, touching
// 1/Den of the references.
func (r *Runner) replayGens(kind string, gens []trace.Generator, p cmp.Params) ([]trace.Generator, error) {
	spec, err := p.SampleSpec()
	if err != nil {
		return nil, err
	}
	out := make([]trace.Generator, len(gens))
	for i, g := range gens {
		if r.arenas == nil {
			if spec == nil {
				out[i] = g
			} else {
				out[i] = spec.View(g) // live filtering, no cache to land in
			}
			continue
		}
		key := r.arenaKey(kind, i, g.Name())
		a := r.arenas.Get(key, g)
		if spec == nil {
			out[i] = a.NewReplayer()
			continue
		}
		skey := key + "?sample=" + spec.String()
		out[i] = r.arenas.Get(skey, spec.View(a.NewReplayer())).NewReplayer()
	}
	return out, nil
}

// arenaKey names the packed arena for one stream slot: the cache (and the
// persistent store beneath it) rendezvous on this string, across runs and
// across processes.
func (r *Runner) arenaKey(kind string, slot int, name string) string {
	return fmt.Sprintf("%s/%d/%s/%d/%d", kind, slot, name, r.Cfg.Seed, r.Cfg.Scale)
}

// memo returns the cached result for key, running f exactly once per key
// even under concurrent callers.
func (r *Runner) memo(key runKey, f func() (cmp.Results, error)) (cmp.Results, error) {
	r.mu.Lock()
	if c, ok := r.runs[key]; ok {
		r.mu.Unlock()
		<-c.done
		return c.res, c.err
	}
	c := &inflight{done: make(chan struct{})}
	r.runs[key] = c
	r.mu.Unlock()
	c.res, c.err = f()
	close(c.done)
	return c.res, c.err
}

// simulate executes a built system while holding a pool worker slot.
func (r *Runner) simulate(sys interface {
	Run(warmup, measure uint64) cmp.Results
}) cmp.Results {
	r.nSims.Add(1)
	var res cmp.Results
	r.pool.run(func() { res = sys.Run(r.Cfg.WarmupInstr, r.Cfg.MeasureInstr) })
	return res
}

// Simulations reports how many simulations this runner has actually
// executed (cache hits excluded).
func (r *Runner) Simulations() uint64 { return r.nSims.Load() }

// timingFor converts profiles into core timing parameters.
func timingFor(profs []workload.Profile) []cmp.CoreTiming {
	t := make([]cmp.CoreTiming, len(profs))
	for i, p := range profs {
		t[i] = cmp.CoreTiming{BaseCPI: p.BaseCPI, Overlap: p.Overlap}
	}
	return t
}

// AloneCPI returns benchmark id's CPI when running alone on a single-core
// baseline machine of the configured geometry. The underlying simulation is
// memoised: every figure that normalises against the same benchmark shares
// one run, even when they request it concurrently. The run bypasses the
// Cores widening — "alone" means one core no matter how wide the mixes are.
func (r *Runner) AloneCPI(id int) (float64, error) {
	res, err := r.runMix([]int{id}, PBaseline)
	if err != nil {
		return 0, err
	}
	return res.Cores[0].CPI(), nil
}

// AloneCPIs resolves alone CPIs for a whole mix, fanning the uncached
// calibration runs out on the worker pool. The mix is widened to the
// configured core count first, so the result aligns slot-for-slot with the
// Cores returned by RunMix for the same mix.
func (r *Runner) AloneCPIs(mix []int) ([]float64, error) {
	mix = r.Cfg.extend(mix)
	out := make([]float64, len(mix))
	err := ForEach(len(mix), func(i int) error {
		cpi, err := r.AloneCPI(mix[i])
		out[i] = cpi
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunMix runs a multiprogrammed mix under a registry policy (memoised —
// callers share the returned Results and must not mutate them). The mix is
// widened to Config.Cores by cyclic replication first.
func (r *Runner) RunMix(mix []int, id PolicyID) (cmp.Results, error) {
	return r.runMix(r.Cfg.extend(mix), id)
}

// runMix is RunMix after widening (AloneCPI enters here to stay one-core).
func (r *Runner) runMix(mix []int, id PolicyID) (cmp.Results, error) {
	key := runKey{kind: "mix", name: workload.MixName(mix), policy: id}
	return r.memo(key, func() (cmp.Results, error) {
		gens, profs, err := workload.BuildMix(mix, r.Cfg.Seed, r.Cfg.Scale)
		if err != nil {
			return cmp.Results{}, err
		}
		p := r.Cfg.params(len(mix))
		if gens, err = r.replayGens("mix", gens, p); err != nil {
			return cmp.Results{}, err
		}
		sets, ways := r.Cfg.L2Geometry()
		pol, err := NewPolicy(id, len(mix), sets, ways, r.Cfg.Seed, r.Cfg.ResizePeriod())
		if err != nil {
			return cmp.Results{}, err
		}
		sys, err := cmp.New(p, gens, timingFor(profs), pol)
		if err != nil {
			return cmp.Results{}, err
		}
		return sys.ScaleSampled(r.simulate(sys)), nil
	})
}

// NewMixSystem builds (but does not run) the simulated machine for a
// multiprogrammed mix under a registry policy. Benchmarks and tests use it
// to time or instrument the simulation itself, separately from workload and
// system construction; unlike RunMix the result is caller-owned and never
// memoised. The mix is widened to Config.Cores like RunMix.
func (r *Runner) NewMixSystem(mix []int, id PolicyID) (*cmp.System, error) {
	mix = r.Cfg.extend(mix)
	gens, profs, err := workload.BuildMix(mix, r.Cfg.Seed, r.Cfg.Scale)
	if err != nil {
		return nil, err
	}
	p := r.Cfg.params(len(mix))
	if gens, err = r.replayGens("mix", gens, p); err != nil {
		return nil, err
	}
	sets, ways := r.Cfg.L2Geometry()
	pol, err := NewPolicy(id, len(mix), sets, ways, r.Cfg.Seed, r.Cfg.ResizePeriod())
	if err != nil {
		return nil, err
	}
	return cmp.New(p, gens, timingFor(profs), pol)
}

// RunMixWith runs a mix under an explicitly constructed policy (for the
// granularity sweep and other parameterised variants). The policy instance
// is caller-owned mutable state, so these runs are pool-bounded but never
// memoised.
func (r *Runner) RunMixWith(mix []int, pol coop.Policy) (cmp.Results, error) {
	gens, profs, err := workload.BuildMix(mix, r.Cfg.Seed, r.Cfg.Scale)
	if err != nil {
		return cmp.Results{}, err
	}
	p := r.Cfg.params(len(mix))
	if gens, err = r.replayGens("mix", gens, p); err != nil {
		return cmp.Results{}, err
	}
	sys, err := cmp.New(p, gens, timingFor(profs), pol)
	if err != nil {
		return cmp.Results{}, err
	}
	return sys.ScaleSampled(r.simulate(sys)), nil
}

// RunShared runs a mix on the shared-LLC machine of §6.1 (memoised). The
// mix is widened to Config.Cores like RunMix.
func (r *Runner) RunShared(mix []int) (cmp.Results, error) {
	mix = r.Cfg.extend(mix)
	key := runKey{kind: "shared", name: workload.MixName(mix)}
	return r.memo(key, func() (cmp.Results, error) {
		gens, profs, err := workload.BuildMix(mix, r.Cfg.Seed, r.Cfg.Scale)
		if err != nil {
			return cmp.Results{}, err
		}
		// The shared machine samples with the private machine's spec (its
		// aggregate L2 keeps the same residue granule), so the filtered
		// sub-arenas built for the mix runs are replayed here as-is.
		p := r.Cfg.params(len(mix))
		if gens, err = r.replayGens("mix", gens, p); err != nil {
			return cmp.Results{}, err
		}
		sp := cmp.DefaultSharedParams(len(mix), r.Cfg.Scale)
		if r.Cfg.L2SizeBytes > 0 {
			sp.L2.SizeBytes = r.Cfg.L2SizeBytes / r.Cfg.Scale * len(mix)
		}
		sp.SampleDen = p.SampleDen
		sys, err := cmp.NewShared(sp, gens, timingFor(profs))
		if err != nil {
			return cmp.Results{}, err
		}
		return sys.ScaleSampled(r.simulate(sys)), nil
	})
}

// RunMT runs a multithreaded workload (threads share one address space)
// under a registry policy (memoised).
func (r *Runner) RunMT(name string, threads int, id PolicyID) (cmp.Results, error) {
	key := runKey{kind: "mt", name: name, threads: threads, policy: id}
	return r.memo(key, func() (cmp.Results, error) {
		prof, err := workload.MTProfileByName(name)
		if err != nil {
			return cmp.Results{}, err
		}
		p := r.Cfg.params(threads)
		gens, err := r.replayGens("mt", prof.NewGenerators(threads, rng.Mix64(r.Cfg.Seed^0x317), r.Cfg.Scale), p)
		if err != nil {
			return cmp.Results{}, err
		}
		timing := make([]cmp.CoreTiming, threads)
		for i := range timing {
			timing[i] = cmp.CoreTiming{BaseCPI: prof.BaseCPI, Overlap: prof.Overlap}
		}
		sets, ways := r.Cfg.L2Geometry()
		pol, err := NewPolicy(id, threads, sets, ways, r.Cfg.Seed, r.Cfg.ResizePeriod())
		if err != nil {
			return cmp.Results{}, err
		}
		sys, err := cmp.New(p, gens, timing, pol)
		if err != nil {
			return cmp.Results{}, err
		}
		return sys.ScaleSampled(r.simulate(sys)), nil
	})
}

// RunSingle runs one benchmark alone on a machine with an explicit L2
// configuration (Fig. 1's way sweep, Fig. 2's per-set study). It returns
// the results and the system itself for per-set inspection.
func (r *Runner) RunSingle(id int, p cmp.Params) (cmp.Results, *cmp.System, error) {
	prof, err := workload.ByID(id)
	if err != nil {
		return cmp.Results{}, nil, err
	}
	gen := prof.NewGenerator(rng.Mix64(r.Cfg.Seed+77), 0, r.Cfg.Scale)
	gens, err := r.replayGens("single", []trace.Generator{gen}, p)
	if err != nil {
		return cmp.Results{}, nil, err
	}
	sys, err := cmp.New(p, gens,
		[]cmp.CoreTiming{{BaseCPI: prof.BaseCPI, Overlap: prof.Overlap}}, policies.NewBaseline())
	if err != nil {
		return cmp.Results{}, nil, err
	}
	res := sys.ScaleSampled(r.simulate(sys))
	return res, sys, nil
}

// Table is a renderable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text. Ragged rows are tolerated: a
// row with more cells than the header extends the width table (the extra
// columns simply have no heading) instead of panicking on widths[i].
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i == len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Pct formats a fraction as a signed percentage.
func Pct(x float64) string { return fmt.Sprintf("%+.1f%%", 100*x) }

// F2 formats a float with two decimals.
func F2(x float64) string { return fmt.Sprintf("%.2f", x) }
