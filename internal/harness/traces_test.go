package harness

import (
	"os"
	"path/filepath"
	"testing"

	"ascc/internal/trace"
	"ascc/internal/workload"
)

// writeTestTraces produces one binary and one CSV trace from the synthetic
// models.
func writeTestTraces(t *testing.T) (binPath, csvPath string) {
	t.Helper()
	dir := t.TempDir()

	gen := workload.MustByID(445).NewGenerator(1, 0, 8)
	refs := trace.Record(gen, 50000)

	binPath = filepath.Join(dir, "a.trc")
	f, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriter(f)
	for _, r := range refs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	gen2 := workload.MustByID(456).NewGenerator(2, 1<<36, 8)
	csvPath = filepath.Join(dir, "b.csv")
	f2, err := os.Create(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteCSV(f2, trace.Record(gen2, 50000)); err != nil {
		t.Fatal(err)
	}
	f2.Close()
	return binPath, csvPath
}

func TestLoadTraceFile(t *testing.T) {
	binPath, csvPath := writeTestTraces(t)
	rp, err := LoadTraceFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Len() != 50000 {
		t.Fatalf("binary trace has %d refs", rp.Len())
	}
	rp2, err := LoadTraceFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if rp2.Len() != 50000 {
		t.Fatalf("csv trace has %d refs", rp2.Len())
	}
	if _, err := LoadTraceFile(filepath.Join(t.TempDir(), "missing.trc")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunTraces(t *testing.T) {
	binPath, csvPath := writeTestTraces(t)
	cfg := DefaultConfig()
	cfg.WarmupInstr = 100_000
	cfg.MeasureInstr = 300_000
	r := NewRunner(cfg)
	res, err := r.RunTraces([]TraceSpec{
		{Path: binPath, BaseCPI: 1.0, Overlap: 0.39},
		{Path: csvPath}, // defaults
	}, PAVGCC)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 2 {
		t.Fatalf("cores %d", len(res.Cores))
	}
	for i, c := range res.Cores {
		if c.Instructions < cfg.MeasureInstr {
			t.Errorf("core %d under quota: %d", i, c.Instructions)
		}
		if c.L2Accesses != c.L2LocalHits+c.L2RemoteHits+c.L2MemFills {
			t.Errorf("core %d conservation broken", i)
		}
	}
	if _, err := r.RunTraces(nil, PAVGCC); err == nil {
		t.Fatal("empty trace list accepted")
	}
}
