package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func demoTable() Table {
	return Table{
		Title:  "Demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"x", "+1.0%"}, {"y, z", "-2.0%"}},
		Notes:  []string{"a note"},
	}
}

func TestTableCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := demoTable().CSV(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv has %d lines, want 4:\n%s", len(lines), s)
	}
	if lines[0] != "a,b" {
		t.Fatalf("header %q", lines[0])
	}
	// The comma-containing cell must be quoted.
	if !strings.Contains(lines[2], `"y, z"`) {
		t.Fatalf("cell not quoted: %q", lines[2])
	}
	if !strings.HasPrefix(lines[3], "# a note") {
		t.Fatalf("note missing: %q", lines[3])
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := demoTable().JSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	want := demoTable()
	if back.Title != want.Title || len(back.Rows) != len(want.Rows) ||
		back.Rows[1][0] != "y, z" || back.Notes[0] != "a note" {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestSeedStatsSummary(t *testing.T) {
	s := summarise([]float64{0.01, 0.02, 0.03})
	if s.N != 3 || s.Min != 0.01 || s.Max != 0.03 {
		t.Fatalf("stats %+v", s)
	}
	if s.Mean < 0.0199 || s.Mean > 0.0201 {
		t.Fatalf("mean %v", s.Mean)
	}
	if s.StdDev < 0.0099 || s.StdDev > 0.0101 {
		t.Fatalf("stddev %v", s.StdDev)
	}
	if s.CI95() <= 0 {
		t.Fatal("zero CI for n=3")
	}
	if summarise(nil).N != 0 {
		t.Fatal("empty summary wrong")
	}
	if summarise([]float64{5}).CI95() != 0 {
		t.Fatal("CI for n=1 must be 0")
	}
	if !strings.Contains(s.String(), "n=3") {
		t.Fatalf("string %q", s.String())
	}
}

func TestSpeedupOverSeeds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupInstr = 150_000
	cfg.MeasureInstr = 350_000
	r := NewRunner(cfg)
	st, err := r.SpeedupOverSeeds([]int{445, 456}, PASCC, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 3 {
		t.Fatalf("n = %d", st.N)
	}
	if st.Min > st.Mean || st.Mean > st.Max {
		t.Fatalf("ordering broken: %+v", st)
	}
	if _, err := r.SpeedupOverSeeds([]int{445}, PASCC, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}
