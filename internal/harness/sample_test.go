package harness

import (
	"math"
	"testing"
)

// TestSampleConfigPropagation pins how Config.SampleDen reaches the machine
// description: plumbed through params() when active, dropped entirely — not
// merely unvalidated — under the prefetcher (cross-set state), and driving
// the resize-period rescale that keeps adaptation decisions per instruction
// aligned with the full run.
func TestSampleConfigPropagation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SampleDen = 8
	if p := cfg.params(4); p.SampleDen != 8 {
		t.Fatalf("params dropped SampleDen: %+v", p)
	} else if want := syncSlackPerSkip * 7; p.SyncSlack != want {
		t.Fatalf("sampled SyncSlack %v, want %v", p.SyncSlack, want)
	}
	if got, want := cfg.ResizePeriod(), uint64(100000/64/8); got != want {
		t.Fatalf("sampled resize period %d, want %d", got, want)
	}
	spec, err := cfg.params(1).SampleSpec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Den != 8 || spec.Granule != 32 || spec.Sets != 512 {
		t.Fatalf("derived spec %+v", spec)
	}

	cfg.Prefetch = true
	if p := cfg.params(4); p.SampleDen != 0 {
		t.Fatalf("prefetch run kept SampleDen: %+v", p)
	} else if p.SyncSlack != 0 {
		t.Fatalf("prefetch run kept SyncSlack %v, want 0 (exact sync)", p.SyncSlack)
	}
	if got, want := cfg.ResizePeriod(), uint64(100000/64); got != want {
		t.Fatalf("prefetch resize period %d, want %d", got, want)
	}
}

// TestRunMixSampled is the end-to-end smoke for the fast path: a sampled
// mix run completes, retires the full run's instruction quota (the filtered
// streams carry the skipped references' gaps), is deterministic
// across runners (the filtered sub-arena is itself memoised), and lands
// within a loose accuracy envelope of the full-fidelity CPI — the tight
// per-set exactness lives in cmp's FuzzSampleEquivalence; the measured
// error is pinned by the `sampling` experiment golden.
func TestRunMixSampled(t *testing.T) {
	mix := []int{445, 456}
	full, err := NewRunner(tinyConfig()).RunMix(mix, PASCC)
	if err != nil {
		t.Fatal(err)
	}

	scfg := tinyConfig()
	scfg.SampleDen = 8
	r1, r2 := NewRunner(scfg), NewRunner(scfg)
	a, err := r1.RunMix(mix, PASCC)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r2.RunMix(mix, PASCC)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cores {
		if a.Cores[i] != b.Cores[i] {
			t.Fatalf("core %d differs across identical sampled runs", i)
		}
		// The cumulative instruction stream is exact; the stop boundary can
		// overshoot the quota by at most the final reference's merged gap.
		fi, si := float64(full.Cores[i].Instructions), float64(a.Cores[i].Instructions)
		if math.Abs(si-fi)/fi > 0.001 {
			t.Fatalf("core %d instructions: sampled %d, full %d",
				i, a.Cores[i].Instructions, full.Cores[i].Instructions)
		}
		fullCPI, sampCPI := full.Cores[i].CPI(), a.Cores[i].CPI()
		if relErr := math.Abs(sampCPI-fullCPI) / fullCPI; relErr > 0.25 {
			t.Fatalf("core %d CPI error %.1f%%: sampled %.3f, full %.3f",
				i, 100*relErr, sampCPI, fullCPI)
		}
	}
}

// TestRunSharedSampled is TestRunMixSampled for the shared-LLC machine: the
// aggregate cache samples with the private machine's spec (replaying the
// same filtered sub-arenas), deterministically and within the same loose
// envelope of the full-fidelity run.
func TestRunSharedSampled(t *testing.T) {
	mix := []int{445, 456}
	full, err := NewRunner(tinyConfig()).RunShared(mix)
	if err != nil {
		t.Fatal(err)
	}

	scfg := tinyConfig()
	scfg.SampleDen = 8
	r1, r2 := NewRunner(scfg), NewRunner(scfg)
	a, err := r1.RunShared(mix)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r2.RunShared(mix)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cores {
		if a.Cores[i] != b.Cores[i] {
			t.Fatalf("core %d differs across identical sampled shared runs", i)
		}
		fi, si := float64(full.Cores[i].Instructions), float64(a.Cores[i].Instructions)
		if math.Abs(si-fi)/fi > 0.001 {
			t.Fatalf("core %d instructions: sampled %d, full %d",
				i, a.Cores[i].Instructions, full.Cores[i].Instructions)
		}
		fullCPI, sampCPI := full.Cores[i].CPI(), a.Cores[i].CPI()
		if relErr := math.Abs(sampCPI-fullCPI) / fullCPI; relErr > 0.25 {
			t.Fatalf("core %d shared CPI error %.1f%%: sampled %.3f, full %.3f",
				i, 100*relErr, sampCPI, fullCPI)
		}
	}
}
