package harness

import (
	"fmt"
	"sort"

	"ascc/internal/rng"
	"ascc/internal/trace"
	"ascc/internal/workload"
)

// prewarmStream is one arena the prewarmer will synthesise: its cache key,
// the generator that produces it, and how many references the
// configuration's runs will consume from it.
type prewarmStream struct {
	key  string
	gen  trace.Generator
	refs uint64
}

// prewarmRefs estimates how many references a run consumes from one
// stream: the instruction budget times the profile's reference rate, plus
// the replayer's extend-ahead margin so a real run never outruns the
// prewarmed prefix by a few batches.
func (r *Runner) prewarmRefs(refsPerKInstr float64) uint64 {
	instr := r.Cfg.WarmupInstr + r.Cfg.MeasureInstr
	return uint64(float64(instr)*refsPerKInstr/1000) + 32*1024
}

// prewarmStreams enumerates every distinct stream the experiment suite
// draws on under this configuration, deduplicated by arena key:
//
//   - "mix" streams for the evaluation's two- and four-application mixes
//     (widened to Config.Cores exactly as RunMix widens them) and for the
//     single-application baselines every speedup metric normalises
//     against;
//   - "single" streams for the way/set studies (Figs. 1-2);
//   - "mt" streams for the multithreaded workloads (4 threads, §6.3).
//
// The scaleout experiment's extra-wide replicas (16/32/64 cores) are
// deliberately not enumerated: they depend on widths chosen inside the
// experiment, so their arenas reach the store through eviction
// write-behind and FlushArenas on the first real scaleout run instead.
func (r *Runner) prewarmStreams() ([]prewarmStream, error) {
	var streams []prewarmStream
	seen := map[string]bool{}
	add := func(kind string, slot int, gen trace.Generator, rate float64) {
		key := r.arenaKey(kind, slot, gen.Name())
		if !seen[key] {
			seen[key] = true
			streams = append(streams, prewarmStream{key: key, gen: gen, refs: r.prewarmRefs(rate)})
		}
	}

	var mixes [][]int
	for _, p := range workload.Profiles() {
		mixes = append(mixes, []int{p.ID}) // AloneCPI baselines (never widened)
	}
	for _, mix := range append(workload.TwoAppMixes(), workload.FourAppMixes()...) {
		mixes = append(mixes, r.Cfg.extend(mix))
	}
	for _, mix := range mixes {
		gens, profs, err := workload.BuildMix(mix, r.Cfg.Seed, r.Cfg.Scale)
		if err != nil {
			return nil, err
		}
		for i, g := range gens {
			add("mix", i, g, profs[i].RefsPerKInstr)
		}
	}

	for _, p := range workload.Profiles() {
		add("single", 0, p.NewGenerator(rng.Mix64(r.Cfg.Seed+77), 0, r.Cfg.Scale), p.RefsPerKInstr)
	}

	const mtThreads = 4
	for _, p := range workload.MTProfiles() {
		gens := p.NewGenerators(mtThreads, rng.Mix64(r.Cfg.Seed^0x317), r.Cfg.Scale)
		for i, g := range gens {
			add("mt", i, g, p.RefsPerKInstr)
		}
	}
	return streams, nil
}

// PrewarmArenas synthesises every reference-stream arena the experiment
// suite draws on under this configuration — in parallel, bounded by the
// worker pool — and persists them to the configured arena store, so
// subsequent processes (runs, sweeps, CI jobs) replay from mmap'd files
// instead of regenerating. It returns how many distinct streams were
// warmed. Requires the trace cache and a store (Config.ArenaStoreDir);
// asccbench -prewarm is the CLI entry.
func (r *Runner) PrewarmArenas() (int, error) {
	if r.arenas == nil {
		return 0, fmt.Errorf("harness: prewarm requires the trace cache (Config.TraceCache)")
	}
	if r.arenas.Store() == nil {
		return 0, fmt.Errorf("harness: prewarm requires a persistent arena store (Config.ArenaStoreDir)")
	}
	streams, err := r.prewarmStreams()
	if err != nil {
		return 0, err
	}
	// Longest first: the synthesis passes dominate wall clock, so keep the
	// big ones from starting last.
	sort.Slice(streams, func(i, j int) bool { return streams[i].refs > streams[j].refs })
	err = ForEach(len(streams), func(i int) error {
		r.pool.run(func() {
			// Get reads through to the store first: a prewarmed file only
			// re-extends when this configuration demands a longer prefix.
			r.arenas.Get(streams[i].key, streams[i].gen).Extend(streams[i].refs)
		})
		return nil
	})
	if err != nil {
		return 0, err
	}
	if err := r.FlushArenas(); err != nil {
		return 0, err
	}
	return len(streams), nil
}
