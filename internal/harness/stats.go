package harness

import (
	"fmt"
	"math"

	"ascc/internal/metrics"
)

// SeedStats summarises a metric measured across independent seeds.
type SeedStats struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation
	Min    float64
	Max    float64
}

// CI95 returns the half-width of the ~95% confidence interval of the mean
// under the normal approximation (1.96 σ/√N). Zero for N < 2.
func (s SeedStats) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.StdDev / math.Sqrt(float64(s.N))
}

// String renders "mean ± ci95 [min, max] (n=N)" with percentages.
func (s SeedStats) String() string {
	return fmt.Sprintf("%+.2f%% ± %.2f%% [%+.2f%%, %+.2f%%] (n=%d)",
		100*s.Mean, 100*s.CI95(), 100*s.Min, 100*s.Max, s.N)
}

// summarise computes SeedStats over samples.
func summarise(samples []float64) SeedStats {
	st := SeedStats{N: len(samples)}
	if st.N == 0 {
		return st
	}
	st.Min, st.Max = samples[0], samples[0]
	sum := 0.0
	for _, v := range samples {
		sum += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean = sum / float64(st.N)
	if st.N > 1 {
		ss := 0.0
		for _, v := range samples {
			d := v - st.Mean
			ss += d * d
		}
		st.StdDev = math.Sqrt(ss / float64(st.N-1))
	}
	return st
}

// SpeedupOverSeeds measures a policy's weighted-speedup improvement over
// the baseline for one mix across n independent seeds (seed, seed+1, ...),
// returning the distribution. Each seed gets fresh generators, policy state
// and alone-CPI calibrations, so the spread reflects genuine workload
// randomness rather than measurement noise (the simulator itself is
// deterministic per seed). The seeds fan out on the runner's worker pool;
// the distribution is identical at every pool size.
func (r *Runner) SpeedupOverSeeds(mix []int, id PolicyID, n int) (SeedStats, error) {
	if n <= 0 {
		return SeedStats{}, fmt.Errorf("harness: non-positive seed count %d", n)
	}
	samples := make([]float64, n)
	err := ForEach(n, func(i int) error {
		cfg := r.Cfg
		cfg.Seed = r.Cfg.Seed + uint64(i)
		sub := NewRunner(cfg) // r.Cfg carries the pool, so sub shares it
		alone, err := sub.AloneCPIs(mix)
		if err != nil {
			return err
		}
		base, err := sub.RunMix(mix, PBaseline)
		if err != nil {
			return err
		}
		run, err := sub.RunMix(mix, id)
		if err != nil {
			return err
		}
		samples[i] = metrics.Improvement(
			metrics.WeightedSpeedup(metrics.CPIs(run), alone),
			metrics.WeightedSpeedup(metrics.CPIs(base), alone))
		return nil
	})
	if err != nil {
		return SeedStats{}, err
	}
	return summarise(samples), nil
}
