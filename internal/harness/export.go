package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// CSV writes the table as RFC-4180 CSV: one header record, one record per
// row. Notes are emitted as trailing comment-style records prefixed with
// "#" in the first field.
func (t Table) CSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return fmt.Errorf("harness: csv header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("harness: csv row: %w", err)
		}
	}
	for _, n := range t.Notes {
		if err := cw.Write([]string{"# " + n}); err != nil {
			return fmt.Errorf("harness: csv note: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// tableJSON is the stable JSON shape of a Table.
type tableJSON struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (t Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableJSON{Title: t.Title, Header: t.Header, Rows: t.Rows, Notes: t.Notes})
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Table) UnmarshalJSON(data []byte) error {
	var j tableJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	t.Title, t.Header, t.Rows, t.Notes = j.Title, j.Header, j.Rows, j.Notes
	return nil
}

// JSON writes the table as indented JSON.
func (t Table) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}
