package harness

import (
	"runtime"
	"sync"

	"ascc/internal/trace"
)

// Pool bounds how many cache simulations execute at once. Runners acquire a
// worker slot around each simulation, so any number of goroutines may issue
// runs concurrently while at most Size of them occupy the machine. A pool
// also acts as a registry of shared Runners: experiments that attach the
// same pool to their Config (see Config.WithPool and Config.EnsurePool)
// reuse one memoised Runner per distinct configuration, deduplicating the
// alone-CPI and baseline simulations the whole suite normalises against.
//
// Results are bit-identical at every pool size: each simulation is a pure
// function of (Config, workload, policy, seed), and every aggregation in
// internal/experiments collects by index, never by completion order.
type Pool struct {
	sem chan struct{}

	mu      sync.Mutex
	runners map[Config]*Runner
	// arenas is the pool-wide packed reference-stream cache (created on
	// first use by a trace-caching runner): arena keys carry seed and
	// scale, so runners with different machine configurations — an L2-size
	// sweep, a prefetcher study — still share the one generation pass per
	// workload stream. It has its own lock because runner construction
	// (which attaches the cache) can itself run under mu.
	arenaMu sync.Mutex
	arenas  *trace.ArenaCache
}

// NewPool builds a pool with n worker slots; n <= 0 uses runtime.NumCPU().
// A pool of size 1 recovers fully sequential execution.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	return &Pool{sem: make(chan struct{}, n), runners: map[Config]*Runner{}}
}

// Size returns the worker bound.
func (p *Pool) Size() int { return cap(p.sem) }

// run executes f while holding a worker slot.
func (p *Pool) run(f func()) {
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	f()
}

// arenaCache returns the pool's shared packed-stream cache, creating it
// with the given budget on first use. Later callers with a more permissive
// budget raise the shared one (never shrink it): a runner configured for a
// larger trace cache must not be silently capped to whatever the pool's
// first runner asked for, which would evict arenas that concurrent runs
// are still extending and re-pay their generation passes.
func (p *Pool) arenaCache(maxBytes int64) *trace.ArenaCache {
	p.arenaMu.Lock()
	defer p.arenaMu.Unlock()
	if p.arenas == nil {
		p.arenas = trace.NewArenaCache(maxBytes)
	} else {
		p.arenas.Raise(maxBytes)
	}
	return p.arenas
}

// Runner returns the pool's shared runner for cfg, creating it on first
// use. Two callers with identical configurations receive the same Runner
// and therefore share its memoised simulations.
func (p *Pool) Runner(cfg Config) *Runner {
	cfg.pool = p
	p.mu.Lock()
	defer p.mu.Unlock()
	if r, ok := p.runners[cfg]; ok {
		return r
	}
	r := newRunner(cfg, p)
	p.runners[cfg] = r
	return r
}

// SharedRunner resolves cfg to its pool-shared Runner when cfg carries a
// pool, and to a fresh private Runner otherwise. The experiment runners use
// it so that a plain Config keeps the old one-Runner-per-experiment
// behaviour while a pooled Config (experiments.All, asccbench -exp all)
// shares baselines suite-wide.
func SharedRunner(cfg Config) *Runner {
	if cfg.pool != nil {
		return cfg.pool.Runner(cfg)
	}
	return NewRunner(cfg)
}

// ForEach runs f(0), ..., f(n-1) on their own goroutines and waits for all
// of them. It returns the lowest-index error, so the reported failure does
// not depend on goroutine scheduling. Simulation concurrency is bounded by
// the Runner's pool, not by ForEach — callers may fan out entire sweeps.
func ForEach(n int, f func(i int) error) error {
	if n == 1 {
		return f(0)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
