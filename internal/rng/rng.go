// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the simulator.
//
// Reproducibility is a hard requirement for the experiment harness: two runs
// with the same seed must produce bit-identical reference streams and policy
// decisions, so the policies under comparison observe exactly the same
// workload. math/rand would work, but a self-contained implementation pins
// the sequence independently of Go release changes.
package rng

import "math"

// SplitMix64 is the splitmix64 generator by Sebastiano Vigna. It is used to
// seed other generators and for cheap one-off hashing of seeds.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes x through one splitmix64 round. Useful to derive independent
// seeds from (seed, index) pairs.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro256 implements xoshiro256** 1.0 (Blackman & Vigna), the simulator's
// workhorse generator.
type Xoshiro256 struct {
	s [4]uint64
}

// New returns a Xoshiro256 generator seeded from seed via splitmix64, as
// recommended by the xoshiro authors.
func New(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	// An all-zero state would be absorbing; splitmix cannot produce four
	// zero outputs from any seed, but guard anyway.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64-bit value. The state update runs on locals —
// one load and one store per state word — which keeps the function within
// the compiler's inlining budget, so the simulator's per-reference draws
// compile to straight-line code instead of calls.
func (x *Xoshiro256) Uint64() uint64 {
	s0, s1, s2, s3 := x.s[0], x.s[1], x.s[2], x.s[3]
	r := s1 * 5
	result := (r<<7 | r>>57) * 9
	t := s1 << 17
	s2 ^= s0
	s3 ^= s1
	s1 ^= s2
	s0 ^= s3
	s2 ^= t
	s3 = s3<<45 | s3>>19
	x.s[0], x.s[1], x.s[2], x.s[3] = s0, s1, s2, s3
	return result
}

// Uint32 returns the next 32-bit value (high bits of Uint64).
func (x *Xoshiro256) Uint32() uint32 { return uint32(x.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(x.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	return x.Uint64() % n
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (x *Xoshiro256) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return x.Float64() < p
}

// Geometric returns a sample from a geometric distribution with success
// probability p (mean 1/p), at least 1. For p >= 1 it returns 1.
func (x *Xoshiro256) Geometric(p float64) int {
	if p >= 1 {
		return 1
	}
	if p <= 0 {
		panic("rng: Geometric with non-positive p")
	}
	n := 1
	for !x.Bernoulli(p) {
		n++
		if n >= 1<<20 { // statistically unreachable guard
			break
		}
	}
	return n
}

// Zipf samples from a Zipf-like distribution over [0, n) using precomputed
// cumulative weights. It is a small, allocation-free sampler for skewed
// region selection in the workload generators.
type Zipf struct {
	cum []float64
	rng *Xoshiro256
}

// NewZipf builds a Zipf sampler over n items with exponent s (s >= 0;
// s == 0 degenerates to uniform). rng must not be nil.
func NewZipf(rng *Xoshiro256, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		w := 1.0 / math.Pow(float64(i+1), s)
		total += w
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum, rng: rng}
}

// Next returns the next sample in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search the cumulative table.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
