package rng

import (
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownSequence(t *testing.T) {
	// Reference values for splitmix64 with seed 0 (from the reference C
	// implementation by Vigna).
	s := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("splitmix64[%d] = %#x, want %#x", i, got, w)
		}
	}
}

func TestMix64MatchesSplitMixStep(t *testing.T) {
	// Mix64(x) must equal the output of a SplitMix64 whose state is x.
	f := func(x uint64) bool {
		s := &SplitMix64{state: x}
		return Mix64(x) == s.Next()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXoshiroDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := New(54321)
	same := 0
	a = New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different-seed generators agreed %d/1000 times", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(11)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(1.0 / 32.0) {
			hits++
		}
	}
	rate := float64(hits) / n
	if rate < 0.025 || rate > 0.038 {
		t.Fatalf("Bernoulli(1/32) rate = %v, want ~0.03125", rate)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(17)
	const n = 50000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(0.25)
	}
	mean := float64(sum) / n
	if mean < 3.8 || mean > 4.2 {
		t.Fatalf("Geometric(0.25) mean = %v, want ~4", mean)
	}
	if g := r.Geometric(1); g != 1 {
		t.Fatalf("Geometric(1) = %d, want 1", g)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(5)
	z := NewZipf(r, 4, 0)
	counts := make([]int, 4)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if frac < 0.22 || frac > 0.28 {
			t.Fatalf("uniform zipf bucket %d frequency %v, want ~0.25", i, frac)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(5)
	z := NewZipf(r, 8, 1.2)
	counts := make([]int, 8)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Monotone non-increasing in expectation; check first bucket dominates
	// the last by a wide margin.
	if counts[0] < counts[7]*4 {
		t.Fatalf("zipf skew too weak: first=%d last=%d", counts[0], counts[7])
	}
}

func TestZipfInRangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		z := NewZipf(r, 16, 0.8)
		for i := 0; i < 64; i++ {
			v := z.Next()
			if v < 0 || v >= 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}
