package workload

import (
	"fmt"

	"ascc/internal/rng"
	"ascc/internal/trace"
)

// MTProfile is a multithreaded workload model for the §6.3 sensitivity
// study. All threads share one address space: shared components use common
// bases (so the MESI protocol sees real sharing, invalidations and
// cache-to-cache transfers), while private components are offset per thread.
//
// The models are inspired by SPLASH2/PARSEC kernels; the paper runs them on
// a reduced 512 kB LLC because most are not memory-hungry.
type MTProfile struct {
	Name string
	// BaseCPI/Overlap/RefsPerKInstr play the same timing role as in Profile.
	BaseCPI       float64
	Overlap       float64
	RefsPerKInstr float64

	build func(thread int, seed uint64) []trace.Mixed
}

// NewGenerators builds one generator per thread. scale is the geometry
// scale divisor (see ScaleComponents).
func (p MTProfile) NewGenerators(threads int, seed uint64, scale int) []trace.Generator {
	gens := make([]trace.Generator, threads)
	for t := 0; t < threads; t++ {
		name := fmt.Sprintf("%s.t%d", p.Name, t)
		comps := p.build(t, seed)
		ScaleComponents(comps, scale)
		gens[t] = trace.NewComposite(name, rng.Mix64(seed+uint64(t)*0x51ed), p.RefsPerKInstr, comps)
	}
	return gens
}

// threadPrivateBase places thread-private data well away from the shared
// regions (which occupy the low addresses).
func threadPrivateBase(thread int) uint64 { return 1<<35 + uint64(thread)<<32 }

// MTProfiles returns the multithreaded workload models.
func MTProfiles() []MTProfile {
	return []MTProfile{
		{
			// Grid solver: each thread sweeps its own partition of a shared
			// grid and reads boundary rows owned by its neighbours.
			Name:    "ocean",
			BaseCPI: 0.7, Overlap: 0.3, RefsPerKInstr: 180,
			build: func(thread int, seed uint64) []trace.Mixed {
				const grid = 4 * MB
				part := uint64(grid / 4)
				own := uint64(thread) * part
				neighbour := uint64((thread+1)%4) * part
				return []trace.Mixed{
					{Comp: &trace.SeqStream{Base: own, Footprint: part, Stride: 32}, Weight: 20, WriteFrac: 0.4},
					// Boundary reads from the neighbour's partition.
					{Comp: &trace.SeqStream{Base: neighbour, Footprint: 64 * KB, Stride: 32}, Weight: 3},
					{Comp: &trace.HotLines{Base: threadPrivateBase(thread), Lines: 256}, Weight: 157, WriteFrac: 0.2},
				}
			},
		},
		{
			// Blocked LU: threads walk shared matrix blocks round-robin, so
			// blocks migrate between caches phase by phase.
			Name:    "lu",
			BaseCPI: 0.6, Overlap: 0.25, RefsPerKInstr: 170,
			build: func(thread int, seed uint64) []trace.Mixed {
				return []trace.Mixed{
					{Comp: &trace.ZipfRegions{Base: 0, Footprint: 1536 * KB, NumRegions: 48, Skew: 0.5, BurstLen: 16}, Weight: 30, WriteFrac: 0.35},
					{Comp: &trace.HotLines{Base: threadPrivateBase(thread), Lines: 256}, Weight: 140, WriteFrac: 0.2},
				}
			},
		},
		{
			// N-body tree walk: highly skewed read-mostly sharing of the
			// octree plus private particle updates.
			Name:    "barnes",
			BaseCPI: 0.8, Overlap: 0.4, RefsPerKInstr: 150,
			build: func(thread int, seed uint64) []trace.Mixed {
				return []trace.Mixed{
					{Comp: &trace.ZipfRegions{Base: 0, Footprint: 2 * MB, NumRegions: 64, Skew: 1.1, BurstLen: 4}, Weight: 25, WriteFrac: 0.05},
					{Comp: &trace.Loop{Base: threadPrivateBase(thread), Footprint: 128 * KB, Stride: 32}, Weight: 30, WriteFrac: 0.4},
					{Comp: &trace.HotLines{Base: threadPrivateBase(thread) + 16*MB, Lines: 256}, Weight: 95, WriteFrac: 0.2},
				}
			},
		},
		{
			// Clustering: read-only streaming over the shared point set with
			// small private accumulators.
			Name:    "streamcluster",
			BaseCPI: 0.6, Overlap: 0.2, RefsPerKInstr: 200,
			build: func(thread int, seed uint64) []trace.Mixed {
				return []trace.Mixed{
					{Comp: &trace.SeqStream{Base: 0, Footprint: 4 * MB, Stride: 32}, Weight: 22},
					{Comp: &trace.Loop{Base: threadPrivateBase(thread), Footprint: 48 * KB, Stride: 32}, Weight: 40, WriteFrac: 0.5},
					{Comp: &trace.HotLines{Base: threadPrivateBase(thread) + 16*MB, Lines: 128}, Weight: 138, WriteFrac: 0.2},
				}
			},
		},
		{
			// Sort/transform kernel: random scatter over a shared array.
			Name:    "radix",
			BaseCPI: 0.7, Overlap: 0.35, RefsPerKInstr: 190,
			build: func(thread int, seed uint64) []trace.Mixed {
				return []trace.Mixed{
					{Comp: &trace.RandomWalk{Base: 0, Footprint: 3 * MB}, Weight: 12, WriteFrac: 0.5},
					{Comp: &trace.SeqStream{Base: threadPrivateBase(thread), Footprint: 512 * KB, Stride: 32}, Weight: 15, WriteFrac: 0.2},
					{Comp: &trace.HotLines{Base: threadPrivateBase(thread) + 16*MB, Lines: 256}, Weight: 163, WriteFrac: 0.2},
				}
			},
		},
		{
			// Simulated annealing: random reads and writes over a large
			// shared netlist.
			Name:    "canneal",
			BaseCPI: 0.9, Overlap: 0.5, RefsPerKInstr: 160,
			build: func(thread int, seed uint64) []trace.Mixed {
				return []trace.Mixed{
					{Comp: &trace.RandomWalk{Base: 0, Footprint: 6 * MB}, Weight: 18, WriteFrac: 0.3},
					{Comp: &trace.HotLines{Base: threadPrivateBase(thread), Lines: 512}, Weight: 142, WriteFrac: 0.2},
				}
			},
		},
	}
}

// MTProfileByName finds a multithreaded workload by name.
func MTProfileByName(name string) (MTProfile, error) {
	for _, p := range MTProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return MTProfile{}, fmt.Errorf("workload: unknown multithreaded workload %q", name)
}
