// Package workload provides the synthetic stand-ins for the paper's
// benchmarks: the 13 SPEC CPU2006 models of Table 3, the multiprogrammed
// mixes of the evaluation, and the SPLASH2/PARSEC-like multithreaded
// workloads of the sensitivity study (§6.3).
//
// Each SPEC model is a trace.Composite mixing streaming, cyclic-loop,
// random-walk, Zipf-region and hot-line components whose footprints are
// chosen against the baseline 1 MB L2 so that the model lands near the
// benchmark's Table 3 L2 MPKI and — via the BaseCPI/Overlap timing
// parameters — its CPI. What matters for reproducing the paper's *shape* is
// each benchmark's category: streaming (insensitive to extra ways),
// small-working-set (cache giver), and capacity-hungry (cache taker);
// DESIGN.md §3 documents this substitution.
package workload

import (
	"fmt"
	"sort"
	"strings"

	"ascc/internal/rng"
	"ascc/internal/trace"
)

// KB and MB are byte-size helpers for footprint literals.
const (
	KB = 1024
	MB = 1024 * KB
)

// Category classifies a benchmark's relation to LLC capacity (Fig. 1's
// upper/lower rows).
type Category int

const (
	// Streaming: huge footprint, no reuse; insensitive to capacity; can give
	// space away (upper row of Fig. 1: milc, libquantum, lbm, sphinx3).
	Streaming Category = iota
	// SmallWS: working set fits comfortably; a capacity giver (namd, gobmk,
	// sjeng).
	SmallWS
	// CapacityHungry: benefits from extra ways/capacity (lower row: bzip2,
	// soplex, hmmer, omnetpp, astar, mcf).
	CapacityHungry
)

// String names the category.
func (c Category) String() string {
	switch c {
	case Streaming:
		return "streaming"
	case SmallWS:
		return "small-ws"
	case CapacityHungry:
		return "capacity-hungry"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// Profile describes one synthetic SPEC CPU2006 benchmark model.
type Profile struct {
	ID       int    // SPEC number, e.g. 401
	Name     string // e.g. "bzip2"
	Category Category

	TableMPKI float64 // paper Table 3 L2 MPKI (calibration target)
	TableCPI  float64 // paper Table 3 CPI (calibration target)

	// Timing-model parameters (see internal/cmp): CPI contribution of
	// non-memory work, and the fraction of each memory-stall latency that
	// is NOT hidden by out-of-order overlap/MLP.
	BaseCPI float64
	Overlap float64

	// RefsPerKInstr is the L1 reference rate.
	RefsPerKInstr float64

	build func(seed, base uint64) []trace.Mixed
}

// NewGenerator builds the benchmark's reference stream. base offsets the
// address space (each core of a multiprogrammed mix gets a disjoint region);
// seed fixes the random sequence; scale is the geometry scale divisor (see
// ScaleComponents).
func (p Profile) NewGenerator(seed, base uint64, scale int) trace.Generator {
	comps := p.build(seed, base)
	ScaleComponents(comps, scale)
	return trace.NewComposite(p.Name, seed, p.RefsPerKInstr, comps)
}

// ScaleComponents divides every component's footprint (and hot-line pool) by
// the geometry scale divisor. Experiments shrink caches and footprints by
// the same divisor (DESIGN.md §5), preserving every footprint-to-capacity
// ratio while compressing reuse-cycle times so that runs of a few million
// instructions exhibit the reuse behaviour of the paper's 10-billion-
// instruction runs. Scale 1 reproduces the paper's absolute sizes.
func ScaleComponents(comps []trace.Mixed, scale int) {
	if scale < 1 {
		panic(fmt.Sprintf("workload: scale %d < 1", scale))
	}
	if scale == 1 {
		return
	}
	div := uint64(scale)
	scaleFootprint := func(f uint64) uint64 {
		f /= div
		// Keep at least a few lines so degenerate components still work.
		if f < 1*KB {
			f = 1 * KB
		}
		return f
	}
	for i := range comps {
		switch c := comps[i].Comp.(type) {
		case *trace.SeqStream:
			c.Footprint = scaleFootprint(c.Footprint)
		case *trace.Loop:
			c.Footprint = scaleFootprint(c.Footprint)
		case *trace.RandomWalk:
			c.Footprint = scaleFootprint(c.Footprint)
		case *trace.StridedWalk:
			c.Footprint = scaleFootprint(c.Footprint)
		case *trace.ZipfRegions:
			c.Footprint = scaleFootprint(c.Footprint)
			// Keep regions at least a line-burst long.
			for c.NumRegions > 1 && c.Footprint/uint64(c.NumRegions) < 512 {
				c.NumRegions /= 2
			}
		case *trace.ColumnWalk:
			c.RowStride /= div
			if c.RowStride < 32 {
				c.RowStride = 32
			}
			c.Cols /= scale
			if c.Cols < 1 {
				c.Cols = 1
			}
			c.SetOffset /= scale
		case *trace.HotLines:
			c.Lines /= scale
			if c.Lines < 32 {
				c.Lines = 32
			}
		default:
			panic(fmt.Sprintf("workload: unscalable component %T", c))
		}
	}
}

// setSpan is the baseline L2's set span at paper scale (4096 sets x 32 B):
// a ColumnWalk with this row stride lands each column in a single set.
const setSpan = 128 * KB

// profiles lists the 13 benchmarks of Table 3. Component rates below are
// per-kinstr shares of RefsPerKInstr (weight = share/rate); footprints are
// sized against the 1 MB/8-way baseline L2 and 32 kB L1.
var profiles = []Profile{
	{
		ID: 401, Name: "bzip2", Category: CapacityHungry,
		TableMPKI: 2.7, TableCPI: 1.8,
		BaseCPI: 0.80, Overlap: 0.42, RefsPerKInstr: 140,
		build: func(seed, base uint64) []trace.Mixed {
			return []trace.Mixed{
				// The compressor's sliding window: a loop slightly over LLC
				// capacity — thrashes at 1 MB, fits with spilled/extra ways.
				{Comp: &trace.Loop{Base: base, Footprint: 1280 * KB, Stride: 32}, Weight: 1.3, WriteFrac: 0.25},
				// Suffix-array walks: strided, column-like per-set bursts.
				{Comp: &trace.ColumnWalk{Base: base + 8*MB, Rows: 12, Cols: 1024, SetOffset: 3072, RowStride: setSpan}, Weight: 1.3, WriteFrac: 0.25},
				// Mid-size structures with skewed popularity.
				{Comp: &trace.ZipfRegions{Base: base + 16*MB, Footprint: 96 * KB, NumRegions: 16, Skew: 0.9, BurstLen: 8}, Weight: 100, WriteFrac: 0.15},
				// L1-resident hot data.
				{Comp: &trace.HotLines{Base: base + 32*MB, Lines: 256}, Weight: 37.4, WriteFrac: 0.3},
			}
		},
	},
	{
		ID: 429, Name: "mcf", Category: CapacityHungry,
		TableMPKI: 40.1, TableCPI: 10.4,
		BaseCPI: 1.0, Overlap: 0.48, RefsPerKInstr: 250,
		build: func(seed, base uint64) []trace.Mixed {
			return []trace.Mixed{
				// Pointer chasing over a heap far beyond any LLC.
				{Comp: &trace.RandomWalk{Base: base, Footprint: 24 * MB}, Weight: 33, WriteFrac: 0.1},
				// Node clusters with some locality — the part extra capacity helps.
				{Comp: &trace.ZipfRegions{Base: base + 32*MB, Footprint: 2 * MB, NumRegions: 64, Skew: 1.4, BurstLen: 2}, Weight: 60, WriteFrac: 0.1},
				{Comp: &trace.HotLines{Base: base + 48*MB, Lines: 512}, Weight: 157, WriteFrac: 0.2},
			}
		},
	},
	{
		ID: 433, Name: "milc", Category: Streaming,
		TableMPKI: 33.1, TableCPI: 4.28,
		BaseCPI: 0.70, Overlap: 0.23, RefsPerKInstr: 180,
		build: func(seed, base uint64) []trace.Mixed {
			return []trace.Mixed{
				// Lattice sweep: pure streaming.
				{Comp: &trace.SeqStream{Base: base, Footprint: 32 * MB, Stride: 32}, Weight: 33, WriteFrac: 0.35},
				{Comp: &trace.HotLines{Base: base + 64*MB, Lines: 256}, Weight: 100, WriteFrac: 0.2},
				{Comp: &trace.Loop{Base: base + 80*MB, Footprint: 24 * KB, Stride: 32}, Weight: 47},
			}
		},
	},
	{
		ID: 444, Name: "namd", Category: SmallWS,
		TableMPKI: 1.0, TableCPI: 0.76,
		BaseCPI: 0.55, Overlap: 0.23, RefsPerKInstr: 150,
		build: func(seed, base uint64) []trace.Mixed {
			return []trace.Mixed{
				// Particle arrays: fit easily in the L2 (a quarter-MB).
				{Comp: &trace.Loop{Base: base, Footprint: 192 * KB, Stride: 32}, Weight: 50, WriteFrac: 0.2},
				{Comp: &trace.HotLines{Base: base + 8*MB, Lines: 512}, Weight: 99, WriteFrac: 0.25},
				// Rare far misses.
				{Comp: &trace.RandomWalk{Base: base + 16*MB, Footprint: 16 * MB}, Weight: 1},
			}
		},
	},
	{
		ID: 445, Name: "gobmk", Category: SmallWS,
		TableMPKI: 1.1, TableCPI: 1.34,
		BaseCPI: 1.0, Overlap: 0.39, RefsPerKInstr: 130,
		build: func(seed, base uint64) []trace.Mixed {
			return []trace.Mixed{
				{Comp: &trace.ZipfRegions{Base: base, Footprint: 512 * KB, NumRegions: 32, Skew: 0.8, BurstLen: 4}, Weight: 40, WriteFrac: 0.2},
				{Comp: &trace.RandomWalk{Base: base + 16*MB, Footprint: 8 * MB}, Weight: 1.2},
				{Comp: &trace.HotLines{Base: base + 32*MB, Lines: 512}, Weight: 88.8, WriteFrac: 0.25},
			}
		},
	},
	{
		ID: 450, Name: "soplex", Category: CapacityHungry,
		TableMPKI: 3.6, TableCPI: 1.0,
		BaseCPI: 0.50, Overlap: 0.22, RefsPerKInstr: 160,
		build: func(seed, base uint64) []trace.Mixed {
			return []trace.Mixed{
				// Simplex tableau: column-major sweeps — one set at a time
				// takes a burst of misses while its neighbours idle.
				{Comp: &trace.ColumnWalk{Base: base, Rows: 12, Cols: 1024, SetOffset: 3072, RowStride: setSpan}, Weight: 3.0, WriteFrac: 0.2},
				{Comp: &trace.ZipfRegions{Base: base + 16*MB, Footprint: 96 * KB, NumRegions: 24, Skew: 1.0, BurstLen: 8}, Weight: 60, WriteFrac: 0.15},
				{Comp: &trace.RandomWalk{Base: base + 32*MB, Footprint: 8 * MB}, Weight: 0.6},
				{Comp: &trace.HotLines{Base: base + 48*MB, Lines: 512}, Weight: 96, WriteFrac: 0.2},
			}
		},
	},
	{
		ID: 456, Name: "hmmer", Category: CapacityHungry,
		TableMPKI: 3.4, TableCPI: 1.3,
		BaseCPI: 0.75, Overlap: 0.28, RefsPerKInstr: 170,
		build: func(seed, base uint64) []trace.Mixed {
			return []trace.Mixed{
				// Profile-HMM dynamic-programming matrix, walked column-wise:
				// per-set miss bursts over a footprint slightly above 1 MB.
				{Comp: &trace.ColumnWalk{Base: base, Rows: 12, Cols: 1024, SetOffset: 3072, RowStride: setSpan}, Weight: 3.4, WriteFrac: 0.3},
				{Comp: &trace.Loop{Base: base + 16*MB, Footprint: 96 * KB, Stride: 32}, Weight: 47, WriteFrac: 0.2},
				{Comp: &trace.HotLines{Base: base + 32*MB, Lines: 1024}, Weight: 120, WriteFrac: 0.25},
			}
		},
	},
	{
		ID: 458, Name: "sjeng", Category: SmallWS,
		TableMPKI: 1.36, TableCPI: 1.6,
		BaseCPI: 1.1, Overlap: 0.55, RefsPerKInstr: 120,
		build: func(seed, base uint64) []trace.Mixed {
			return []trace.Mixed{
				// Transposition table: skewed, mostly resident.
				{Comp: &trace.ZipfRegions{Base: base, Footprint: 640 * KB, NumRegions: 32, Skew: 0.7, BurstLen: 2}, Weight: 30, WriteFrac: 0.25},
				{Comp: &trace.RandomWalk{Base: base + 16*MB, Footprint: 12 * MB}, Weight: 1.2},
				{Comp: &trace.HotLines{Base: base + 32*MB, Lines: 512}, Weight: 89, WriteFrac: 0.2},
			}
		},
	},
	{
		ID: 462, Name: "libquantum", Category: Streaming,
		TableMPKI: 22.4, TableCPI: 4.3,
		BaseCPI: 0.60, Overlap: 0.35, RefsPerKInstr: 160,
		build: func(seed, base uint64) []trace.Mixed {
			return []trace.Mixed{
				// The quantum register vector: one long sequential stream.
				{Comp: &trace.SeqStream{Base: base, Footprint: 32 * MB, Stride: 32}, Weight: 22.5, WriteFrac: 0.3},
				{Comp: &trace.Loop{Base: base + 64*MB, Footprint: 16 * KB, Stride: 32}, Weight: 137.5, WriteFrac: 0.1},
			}
		},
	},
	{
		ID: 470, Name: "lbm", Category: Streaming,
		TableMPKI: 29.0, TableCPI: 2.0,
		BaseCPI: 0.55, Overlap: 0.105, RefsPerKInstr: 190,
		build: func(seed, base uint64) []trace.Mixed {
			return []trace.Mixed{
				// Two interleaved lattice streams (read old grid, write new).
				{Comp: &trace.SeqStream{Base: base, Footprint: 32 * MB, Stride: 32}, Weight: 15, WriteFrac: 0.1},
				{Comp: &trace.SeqStream{Base: base + 48*MB, Footprint: 32 * MB, Stride: 32}, Weight: 14, WriteFrac: 0.8},
				{Comp: &trace.HotLines{Base: base + 96*MB, Lines: 256}, Weight: 161, WriteFrac: 0.2},
			}
		},
	},
	{
		ID: 471, Name: "omnetpp", Category: CapacityHungry,
		TableMPKI: 15.2, TableCPI: 2.0,
		BaseCPI: 0.65, Overlap: 0.185, RefsPerKInstr: 170,
		build: func(seed, base uint64) []trace.Mixed {
			return []trace.Mixed{
				// Event-queue heap: skewed access over ~3 MB — benefits
				// gradually from every extra way.
				{Comp: &trace.ZipfRegions{Base: base, Footprint: 3 * MB, NumRegions: 96, Skew: 1.0, BurstLen: 2}, Weight: 41, WriteFrac: 0.25},
				{Comp: &trace.RandomWalk{Base: base + 16*MB, Footprint: 8 * MB}, Weight: 2},
				// Calendar-queue buckets: bucket chains walk single sets.
				{Comp: &trace.ColumnWalk{Base: base + 64*MB, Rows: 12, Cols: 1024, SetOffset: 3072, RowStride: setSpan}, Weight: 2, WriteFrac: 0.25},
				{Comp: &trace.HotLines{Base: base + 32*MB, Lines: 512}, Weight: 121, WriteFrac: 0.2},
			}
		},
	},
	{
		ID: 473, Name: "astar", Category: CapacityHungry,
		TableMPKI: 7.3, TableCPI: 3.5,
		BaseCPI: 0.90, Overlap: 0.70, RefsPerKInstr: 150,
		build: func(seed, base uint64) []trace.Mixed {
			return []trace.Mixed{
				// Graph nodes with regional popularity over ~2 MB.
				{Comp: &trace.ZipfRegions{Base: base, Footprint: 2 * MB, NumRegions: 64, Skew: 0.9, BurstLen: 2}, Weight: 20, WriteFrac: 0.15},
				// Map-grid column scans: per-set miss bursts.
				{Comp: &trace.ColumnWalk{Base: base + 16*MB, Rows: 12, Cols: 1024, SetOffset: 3072, RowStride: setSpan}, Weight: 1.5, WriteFrac: 0.3},
				{Comp: &trace.HotLines{Base: base + 32*MB, Lines: 512}, Weight: 128.5, WriteFrac: 0.2},
			}
		},
	},
	{
		ID: 482, Name: "sphinx3", Category: Streaming,
		TableMPKI: 16.1, TableCPI: 4.37,
		BaseCPI: 0.80, Overlap: 0.47, RefsPerKInstr: 180,
		build: func(seed, base uint64) []trace.Mixed {
			return []trace.Mixed{
				// Acoustic-model scan: streaming over the model file.
				{Comp: &trace.SeqStream{Base: base, Footprint: 8 * MB, Stride: 32}, Weight: 12, WriteFrac: 0.05},
				{Comp: &trace.ZipfRegions{Base: base + 16*MB, Footprint: 640 * KB, NumRegions: 16, Skew: 0.8, BurstLen: 8}, Weight: 60, WriteFrac: 0.1},
				{Comp: &trace.HotLines{Base: base + 32*MB, Lines: 512}, Weight: 106, WriteFrac: 0.15},
			}
		},
	},
}

// Profiles returns the benchmark models, sorted by SPEC number.
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the profile with the given SPEC number.
func ByID(id int) (Profile, error) {
	for _, p := range profiles {
		if p.ID == id {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %d", id)
}

// MustByID is ByID for static mix tables; it panics on unknown IDs.
func MustByID(id int) Profile {
	p, err := ByID(id)
	if err != nil {
		panic(err)
	}
	return p
}

// MixName renders a mix as the paper writes it, e.g. "445+401+444+456".
func MixName(ids []int) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%d", id)
	}
	return strings.Join(parts, "+")
}

// FourAppMixes returns the six 4-application multiprogrammed workloads of
// Table 1 / Figures 4, 5, 8 and 9.
func FourAppMixes() [][]int {
	return [][]int{
		{445, 401, 444, 456},
		{445, 444, 456, 471},
		{433, 462, 450, 401},
		{433, 471, 473, 482},
		{458, 444, 401, 471},
		{458, 444, 471, 462},
	}
}

// TwoAppMixes returns the fourteen 2-application workloads of Figures 7 and
// 10. The paper names only seven of them (in Figures 4, 5 and 10); the
// remaining seven are chosen to cover the same giver/taker/streamer grid —
// see DESIGN.md §4.
func TwoAppMixes() [][]int {
	return [][]int{
		{445, 456}, // giver + mild taker
		{456, 471}, // taker + taker
		{450, 462}, // taker + streamer
		{473, 482}, // taker + streamer
		{458, 471}, // giver + taker
		{462, 471}, // streamer + taker
		{429, 401}, // heavy taker + taker (Fig. 10's degradation case)
		{433, 473}, // streamer + taker
		{470, 444}, // streamer + giver
		{482, 401}, // streamer + taker
		{429, 471}, // heavy taker + taker
		{462, 450}, // streamer + taker
		{433, 444}, // streamer + giver
		{401, 473}, // taker + taker
	}
}

// ExtendMix replicates a mix cyclically to fill cores slots — the scaling
// methodology for core counts beyond the paper's 4/8: a 4-app mix on a
// 16-core machine runs four independent copies of each application, each in
// its own address space (BuildMix derives per-slot seeds and address bases
// from the slot index, so replicas never share a reference stream). When
// cores does not exceed the mix, the mix is returned unchanged.
func ExtendMix(ids []int, cores int) []int {
	if cores <= len(ids) {
		return ids
	}
	out := make([]int, cores)
	for i := range out {
		out[i] = ids[i%len(ids)]
	}
	return out
}

// CoreAddressBase returns the base address of core i's private address
// space. 42-bit addresses; 64 GB spacing keeps all mixes disjoint.
func CoreAddressBase(core int) uint64 { return uint64(core) << 36 }

// BuildMix instantiates generators for a multiprogrammed mix, one per core,
// each in a disjoint address range, with per-core derived seeds. scale is
// the geometry scale divisor (see ScaleComponents).
func BuildMix(ids []int, seed uint64, scale int) ([]trace.Generator, []Profile, error) {
	gens := make([]trace.Generator, len(ids))
	profs := make([]Profile, len(ids))
	for i, id := range ids {
		p, err := ByID(id)
		if err != nil {
			return nil, nil, err
		}
		profs[i] = p
		gens[i] = p.NewGenerator(rng.Mix64(seed+uint64(i)*0x9e37), CoreAddressBase(i), scale)
	}
	return gens, profs, nil
}
