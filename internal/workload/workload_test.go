package workload

import (
	"testing"

	"ascc/internal/trace"
)

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 13 {
		t.Fatalf("have %d profiles, want 13 (Table 3)", len(ps))
	}
	wantIDs := []int{401, 429, 433, 444, 445, 450, 456, 458, 462, 470, 471, 473, 482}
	for i, id := range wantIDs {
		if ps[i].ID != id {
			t.Fatalf("profile[%d].ID = %d, want %d", i, ps[i].ID, id)
		}
	}
	// Every benchmark in Table 3 has MPKI >= 1 (the paper's selection rule).
	for _, p := range ps {
		if p.TableMPKI < 1 {
			t.Errorf("%s: Table MPKI %v < 1", p.Name, p.TableMPKI)
		}
		if p.BaseCPI <= 0 || p.Overlap <= 0 || p.Overlap > 1 {
			t.Errorf("%s: implausible timing params base=%v overlap=%v", p.Name, p.BaseCPI, p.Overlap)
		}
		if p.RefsPerKInstr <= 0 || p.RefsPerKInstr > 1000 {
			t.Errorf("%s: implausible reference rate %v", p.Name, p.RefsPerKInstr)
		}
	}
}

func TestByID(t *testing.T) {
	p, err := ByID(433)
	if err != nil || p.Name != "milc" {
		t.Fatalf("ByID(433) = %+v, %v", p, err)
	}
	if _, err := ByID(999); err == nil {
		t.Fatal("ByID(999) did not fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustByID(999) did not panic")
		}
	}()
	MustByID(999)
}

func TestCategories(t *testing.T) {
	want := map[int]Category{
		433: Streaming, 462: Streaming, 470: Streaming, 482: Streaming,
		444: SmallWS, 445: SmallWS, 458: SmallWS,
		401: CapacityHungry, 429: CapacityHungry, 450: CapacityHungry,
		456: CapacityHungry, 471: CapacityHungry, 473: CapacityHungry,
	}
	for id, cat := range want {
		if p := MustByID(id); p.Category != cat {
			t.Errorf("%d.%s category %v, want %v", id, p.Name, p.Category, cat)
		}
	}
	if Streaming.String() != "streaming" || SmallWS.String() != "small-ws" || CapacityHungry.String() != "capacity-hungry" {
		t.Error("category names wrong")
	}
}

func TestMixName(t *testing.T) {
	if got := MixName([]int{445, 401, 444, 456}); got != "445+401+444+456" {
		t.Fatalf("MixName = %q", got)
	}
}

func TestMixes(t *testing.T) {
	four := FourAppMixes()
	if len(four) != 6 {
		t.Fatalf("four-app mixes: %d, want 6", len(four))
	}
	for _, m := range four {
		if len(m) != 4 {
			t.Fatalf("mix %v has %d apps, want 4", m, len(m))
		}
	}
	// The Table 1 mixes, verbatim.
	if MixName(four[0]) != "445+401+444+456" || MixName(four[5]) != "458+444+471+462" {
		t.Fatalf("four-app mixes do not match Table 1: %v", four)
	}
	two := TwoAppMixes()
	if len(two) != 14 {
		t.Fatalf("two-app mixes: %d, want 14 (paper §5)", len(two))
	}
	seen := map[string]bool{}
	for _, m := range two {
		if len(m) != 2 {
			t.Fatalf("mix %v has %d apps, want 2", m, len(m))
		}
		n := MixName(m)
		if seen[n] {
			t.Fatalf("duplicate two-app mix %s", n)
		}
		seen[n] = true
		for _, id := range m {
			MustByID(id) // must resolve
		}
	}
	// The seven mixes the paper names must be present.
	for _, name := range []string{"445+456", "456+471", "450+462", "473+482", "458+471", "462+471", "429+401"} {
		if !seen[name] {
			t.Errorf("paper-named mix %s missing", name)
		}
	}
}

func TestBuildMixDisjointAddressSpaces(t *testing.T) {
	gens, profs, err := BuildMix([]int{445, 401, 444, 456}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 4 || len(profs) != 4 {
		t.Fatalf("BuildMix sizes %d/%d", len(gens), len(profs))
	}
	for core, g := range gens {
		lo, hi := CoreAddressBase(core), CoreAddressBase(core+1)
		for i := 0; i < 5000; i++ {
			a := g.Next().Addr
			if a < lo || a >= hi {
				t.Fatalf("core %d address %#x outside [%#x,%#x)", core, a, lo, hi)
			}
		}
	}
	if _, _, err := BuildMix([]int{445, 999}, 1, 1); err == nil {
		t.Fatal("BuildMix with unknown ID did not fail")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	for _, p := range Profiles() {
		g1 := p.NewGenerator(7, 0, 1)
		g2 := p.NewGenerator(7, 0, 1)
		for i := 0; i < 1000; i++ {
			if g1.Next() != g2.Next() {
				t.Fatalf("%s: same-seed generators diverged at ref %d", p.Name, i)
			}
		}
	}
}

func TestGeneratorRatesMatchProfiles(t *testing.T) {
	for _, p := range Profiles() {
		g := p.NewGenerator(3, 0, 1)
		var instr, refs uint64
		for i := 0; i < 20000; i++ {
			r := g.Next()
			instr += uint64(r.Gap) + 1
			refs++
		}
		rate := float64(refs) / float64(instr) * 1000
		if rate < p.RefsPerKInstr*0.95 || rate > p.RefsPerKInstr*1.05 {
			t.Errorf("%s: measured rate %.1f, profile says %.1f", p.Name, rate, p.RefsPerKInstr)
		}
	}
}

func TestStreamingProfilesHaveHugeFootprints(t *testing.T) {
	// A streaming model must touch far more distinct lines than the LLC
	// holds; a small-WS model must stay small.
	distinctLines := func(id int, n int) int {
		p := MustByID(id)
		g := p.NewGenerator(5, 0, 1)
		seen := make(map[uint64]bool)
		for i := 0; i < n; i++ {
			seen[g.Next().Addr>>5] = true
		}
		return len(seen)
	}
	const refs = 200000
	llcLines := (1 * MB) / 32
	if got := distinctLines(433, refs); got < llcLines/4 {
		t.Errorf("milc touched only %d lines in %d refs", got, refs)
	}
	if got := distinctLines(444, refs); got > llcLines {
		t.Errorf("namd touched %d lines, should fit near the LLC (%d)", got, llcLines)
	}
}

func TestMTProfiles(t *testing.T) {
	ps := MTProfiles()
	if len(ps) != 6 {
		t.Fatalf("MT profiles: %d, want 6", len(ps))
	}
	for _, p := range ps {
		gens := p.NewGenerators(4, 9, 1)
		if len(gens) != 4 {
			t.Fatalf("%s: %d generators, want 4", p.Name, len(gens))
		}
		// Threads must be deterministic and distinct.
		again := p.NewGenerators(4, 9, 1)
		for i := 0; i < 200; i++ {
			if gens[0].Next() != again[0].Next() {
				t.Fatalf("%s: thread 0 not deterministic", p.Name)
			}
		}
	}
	if _, err := MTProfileByName("ocean"); err != nil {
		t.Fatal(err)
	}
	if _, err := MTProfileByName("nope"); err == nil {
		t.Fatal("unknown MT name did not fail")
	}
}

func TestMTSharingExists(t *testing.T) {
	// Different threads of a shared workload must touch overlapping lines
	// (that is the point of the MT sensitivity study).
	p, _ := MTProfileByName("lu")
	gens := p.NewGenerators(4, 11, 1)
	sets := make([]map[uint64]bool, 4)
	for tIdx, g := range gens {
		sets[tIdx] = map[uint64]bool{}
		for i := 0; i < 30000; i++ {
			sets[tIdx][g.Next().Addr>>5] = true
		}
	}
	common := 0
	for line := range sets[0] {
		if sets[1][line] {
			common++
		}
	}
	if common < 100 {
		t.Fatalf("threads 0 and 1 share only %d lines", common)
	}
}

func TestScaleComponentsPreservesRatios(t *testing.T) {
	// At scale 8, milc's stream must still dwarf the scaled 128 kB LLC and
	// namd's loop must still fit inside it.
	distinctLines := func(id, scale, n int) int {
		g := MustByID(id).NewGenerator(5, 0, scale)
		seen := make(map[uint64]bool)
		for i := 0; i < n; i++ {
			seen[g.Next().Addr>>5] = true
		}
		return len(seen)
	}
	const refs = 100000
	scaledLLCLines := (1 * MB / 8) / 32
	if got := distinctLines(433, 8, refs); got < scaledLLCLines {
		t.Errorf("scaled milc touched %d lines, want > scaled LLC (%d)", got, scaledLLCLines)
	}
	if got := distinctLines(444, 8, refs); got > scaledLLCLines {
		t.Errorf("scaled namd touched %d lines, want < scaled LLC (%d)", got, scaledLLCLines)
	}
}

func TestScaleComponentsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("scale 0 did not panic")
		}
	}()
	ScaleComponents(nil, 0)
}

func TestScaleCyclesFaster(t *testing.T) {
	// The point of scaling: a capacity-hungry loop must complete full
	// passes within a modest instruction budget at scale 8.
	g := MustByID(456).NewGenerator(5, 0, 8) // hmmer: 1.25MB loop -> 160KB
	first := uint64(0)
	repeats := 0
	for i := 0; i < 400000; i++ {
		r := g.Next()
		if i == 0 {
			first = r.Addr
		} else if r.Addr == first {
			repeats++
		}
	}
	if repeats == 0 {
		t.Fatal("scaled hmmer loop never completed a pass in 400k refs")
	}
}

var sinkRef trace.Ref

func BenchmarkGeneratorNext(b *testing.B) {
	g := MustByID(471).NewGenerator(1, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkRef = g.Next()
	}
}
