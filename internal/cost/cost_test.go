package cost

import (
	"math"
	"strings"
	"testing"
)

func TestPaperGeometry(t *testing.T) {
	g := PaperGeometry()
	if g.Sets() != 4096 {
		t.Fatalf("sets = %d, want 4096", g.Sets())
	}
	if g.Lines() != 32768 {
		t.Fatalf("lines = %d, want 32768 (Table 5)", g.Lines())
	}
	// Table 5: tag = 42 - log2(4096) - log2(32) = 25 bits; entry = 30 bits.
	if g.TagEntryBits() != 30 {
		t.Fatalf("tag entry = %d bits, want 30", g.TagEntryBits())
	}
	// Table 5: tag store 120 kB = 30 bits * 32768 entries.
	if got := g.TagStoreBits(); got != 30*32768 {
		t.Fatalf("tag store = %d bits", got)
	}
	if kb := float64(g.TagStoreBits()) / 8 / 1024; kb != 120 {
		t.Fatalf("tag store = %v kB, want 120", kb)
	}
	if g.DataStoreBits() != 8<<20 {
		t.Fatalf("data store = %d bits", g.DataStoreBits())
	}
	// Baseline total = 1144 kB (Table 5).
	if kb := float64(g.BaselineTotalBits()) / 8 / 1024; kb != 1144 {
		t.Fatalf("baseline total = %v kB, want 1144", kb)
	}
}

func TestAVGCCTable5(t *testing.T) {
	r := AVGCCReport(PaperGeometry(), 0)
	// Table 5: 5 bits per set * 4096 sets = 2560 B, plus A+B+D = 28 bits.
	wantBits := 4096*5 + 28
	if r.TotalOverheadBits() != wantBits {
		t.Fatalf("AVGCC overhead = %d bits, want %d", r.TotalOverheadBits(), wantBits)
	}
	bytes := float64(r.TotalOverheadBits()) / 8
	if math.Abs(bytes-2563.5) > 0.01 {
		t.Fatalf("AVGCC overhead = %v B, want 2560B + ~4B", bytes)
	}
	// Exact fraction: 20508 bits over 1144 kB = 0.219%.
	if pct := 100 * r.OverheadFraction(); math.Abs(pct-0.219) > 0.002 {
		t.Fatalf("AVGCC exact overhead = %.3f%%, want ~0.219%%", pct)
	}
	// Table 5 reports 0.17% because it rounds to whole kilobytes
	// (1146 kB vs 1144 kB).
	if pct := r.PaperRoundedPercent(); math.Abs(pct-0.175) > 0.01 {
		t.Fatalf("AVGCC rounded overhead = %.3f%%, want ~0.17%% (Table 5)", pct)
	}
}

func TestASCCOverheadSlightlyBelowAVGCC(t *testing.T) {
	g := PaperGeometry()
	ascc := ASCCReport(g).TotalOverheadBits()
	avgcc := AVGCCReport(g, 0).TotalOverheadBits()
	if avgcc-ascc != 28 {
		t.Fatalf("AVGCC - ASCC = %d bits, want 28 (A, B, D counters)", avgcc-ascc)
	}
}

func TestLimitedCounters(t *testing.T) {
	g := PaperGeometry()
	// §7: limiting to 128 counters needs only 83 B; 2048 counters 1284 B.
	r128 := AVGCCReport(g, 128)
	if b := float64(r128.TotalOverheadBits()) / 8; math.Abs(b-83.5) > 1 {
		t.Fatalf("128-counter overhead = %v B, want ~83 B (paper §7)", b)
	}
	r2048 := AVGCCReport(g, 2048)
	if b := float64(r2048.TotalOverheadBits()) / 8; math.Abs(b-1283.5) > 1 {
		t.Fatalf("2048-counter overhead = %v B, want ~1284 B (paper §7)", b)
	}
	// A cap above the set count is a no-op.
	if AVGCCReport(g, 1<<20).TotalOverheadBits() != AVGCCReport(g, 0).TotalOverheadBits() {
		t.Fatal("oversized cap changed the report")
	}
}

func TestQoSOverhead(t *testing.T) {
	// §8: QoS-AVGCC is 0.35% at the finest granularity.
	r := QoSAVGCCReport(PaperGeometry())
	if pct := 100 * r.OverheadFraction(); math.Abs(pct-0.35) > 0.03 {
		t.Fatalf("QoS overhead = %.3f%%, want ~0.35%%", pct)
	}
}

func TestDSRReportTiny(t *testing.T) {
	r := DSRReport(PaperGeometry())
	if r.TotalOverheadBits() != 10 {
		t.Fatalf("DSR overhead = %d bits, want 10", r.TotalOverheadBits())
	}
}

func TestReportString(t *testing.T) {
	s := AVGCCReport(PaperGeometry(), 0).String()
	for _, want := range []string{"4096 sets", "saturation counters", "0.22%"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestScaling(t *testing.T) {
	// Overhead percentage is essentially size-independent for fixed
	// ways/line (Table 4 reports the same 0.17% at 1, 2 and 4 MB; the exact
	// fraction is ~0.22% at each size).
	for _, size := range []int{1 << 20, 2 << 20, 4 << 20} {
		g := CacheGeometry{SizeBytes: size, Ways: 8, LineBytes: 32, AddressBits: 42}
		pct := 100 * AVGCCReport(g, 0).OverheadFraction()
		if math.Abs(pct-0.22) > 0.02 {
			t.Fatalf("size %d: overhead %.3f%%, want ~0.22%%", size, pct)
		}
	}
}
