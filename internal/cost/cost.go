// Package cost reproduces the paper's storage-overhead arithmetic (§7,
// Table 5): the baseline tag/data store of a private LLC, the additional
// structures of ASCC/AVGCC (saturation counters, insertion-policy bits, and
// the A/B/D counters), the QoS extension of §8, and the limited-counter
// variants.
//
// Everything here is exact bit arithmetic at the paper's geometry — it is
// independent of the simulation scale divisor.
package cost

import "fmt"

// CacheGeometry describes the cache being costed.
type CacheGeometry struct {
	SizeBytes   int
	Ways        int
	LineBytes   int
	AddressBits int // paper: 42
}

// PaperGeometry returns Table 5's 1 MB / 8-way / 32 B / 42-bit baseline.
func PaperGeometry() CacheGeometry {
	return CacheGeometry{SizeBytes: 1 << 20, Ways: 8, LineBytes: 32, AddressBits: 42}
}

// Sets returns the number of sets.
func (g CacheGeometry) Sets() int { return g.SizeBytes / g.LineBytes / g.Ways }

// Lines returns the number of cache lines (tag/data entries).
func (g CacheGeometry) Lines() int { return g.SizeBytes / g.LineBytes }

func log2(n int) int {
	d := 0
	for n > 1 {
		n >>= 1
		d++
	}
	return d
}

// TagEntryBits returns bits per tag-store entry: MESI+LRU state (5 bits in
// the paper's accounting) plus the tag itself
// (addressBits - log2(sets) - log2(lineBytes)).
func (g CacheGeometry) TagEntryBits() int {
	return 5 + g.AddressBits - log2(g.Sets()) - log2(g.LineBytes)
}

// TagStoreBits returns total tag-store bits.
func (g CacheGeometry) TagStoreBits() int { return g.TagEntryBits() * g.Lines() }

// DataStoreBits returns total data-store bits.
func (g CacheGeometry) DataStoreBits() int { return g.SizeBytes * 8 }

// BaselineTotalBits returns tag store + data store.
func (g CacheGeometry) BaselineTotalBits() int { return g.TagStoreBits() + g.DataStoreBits() }

// Overhead describes an addition over the baseline cache.
type Overhead struct {
	Name string
	Bits int
}

// Report is a costed design.
type Report struct {
	Geometry  CacheGeometry
	Overheads []Overhead
}

// TotalOverheadBits sums the additional storage.
func (r Report) TotalOverheadBits() int {
	n := 0
	for _, o := range r.Overheads {
		n += o.Bits
	}
	return n
}

// OverheadFraction is the exact overhead relative to the baseline total.
func (r Report) OverheadFraction() float64 {
	return float64(r.TotalOverheadBits()) / float64(r.Geometry.BaselineTotalBits())
}

// PaperRoundedPercent reproduces Table 5's arithmetic, which rounds both
// totals down to whole kilobytes before comparing (1146 kB vs 1144 kB →
// 0.17%). The exact fraction (OverheadFraction) is slightly larger.
func (r Report) PaperRoundedPercent() float64 {
	baseKB := r.Geometry.BaselineTotalBits() / 8 / 1024
	totalKB := (r.Geometry.BaselineTotalBits() + r.TotalOverheadBits()) / 8 / 1024
	return 100 * float64(totalKB-baseKB) / float64(baseKB)
}

// sslCounterBits is the per-counter size: the counters span [0, 2K-1], so
// they need log2(2K) bits (4 bits for the paper's 8-way cache).
func sslCounterBits(ways int) int { return log2(2 * ways) }

// ASCCReport costs ASCC at the finest granularity: one saturation counter
// and one insertion-policy bit per set.
func ASCCReport(g CacheGeometry) Report {
	sets := g.Sets()
	return Report{
		Geometry: g,
		Overheads: []Overhead{
			{Name: "saturation counters", Bits: sets * sslCounterBits(g.Ways)},
			{Name: "insertion policy bits", Bits: sets},
		},
	}
}

// AVGCCReport costs AVGCC with at most maxCounters counters (0 = one per
// set): the counters and policy bits, plus the A, B (12 bits each) and D
// (4 bits) counters of the halving/duplication mechanism.
func AVGCCReport(g CacheGeometry, maxCounters int) Report {
	counters := g.Sets()
	if maxCounters > 0 && maxCounters < counters {
		counters = maxCounters
	}
	return Report{
		Geometry: g,
		Overheads: []Overhead{
			{Name: "saturation counters", Bits: counters * sslCounterBits(g.Ways)},
			{Name: "insertion policy bits", Bits: counters},
			{Name: "A counter", Bits: 12},
			{Name: "B counter", Bits: 12},
			{Name: "D counter", Bits: 4},
		},
	}
}

// QoSAVGCCReport costs the §8 QoS-Aware AVGCC: AVGCC plus two 8-bit miss
// counters (2 bytes total per cache), a 4-bit QoSRatio, a sampled-set
// counter (log2(sets) bits), and 3 extra fractional bits per saturation
// counter (4.3 fixed point).
func QoSAVGCCReport(g CacheGeometry) Report {
	r := AVGCCReport(g, 0)
	sets := g.Sets()
	r.Overheads = append(r.Overheads,
		Overhead{Name: "miss counters (MissesWithAVGCC + SampledSetMisses)", Bits: 16},
		Overhead{Name: "QoSRatio (1.3 fixed point)", Bits: 4},
		Overhead{Name: "sampled-set counter", Bits: log2(sets)},
		Overhead{Name: "fractional counter bits (4.3 fixed point)", Bits: 3 * sets},
	)
	return r
}

// DSRReport costs Dynamic Spill-Receive for comparison: one PSEL per cache
// (10 bits, per the paper's configuration).
func DSRReport(g CacheGeometry) Report {
	return Report{
		Geometry:  g,
		Overheads: []Overhead{{Name: "PSEL selector", Bits: 10}},
	}
}

// String renders the report as a Table 5-style summary.
func (r Report) String() string {
	g := r.Geometry
	s := fmt.Sprintf("geometry: %dkB/%d-way/%dB lines, %d sets, %d-bit addresses\n",
		g.SizeBytes/1024, g.Ways, g.LineBytes, g.Sets(), g.AddressBits)
	s += fmt.Sprintf("tag entry: %d bits; tag store: %d bits (%.0f kB); data store: %d kB\n",
		g.TagEntryBits(), g.TagStoreBits(), float64(g.TagStoreBits())/8/1024, g.SizeBytes/1024)
	for _, o := range r.Overheads {
		s += fmt.Sprintf("  + %-48s %8d bits\n", o.Name, o.Bits)
	}
	s += fmt.Sprintf("total overhead: %d bits (%.1f B), %.2f%% of the baseline\n",
		r.TotalOverheadBits(), float64(r.TotalOverheadBits())/8, 100*r.OverheadFraction())
	return s
}
