// Package mem models the shared resources behind the private LLCs: the
// on-chip snoop/transfer bus and the off-chip memory port, both as simple
// single-server queues, plus the energy accounting used for the paper's
// power-reduction claims.
//
// Latency and occupancy are separated: a request observes the fixed service
// latency plus whatever queueing delay the port's occupancy history imposes.
// Because the CMP engine always advances the core with the smallest local
// clock, requests arrive in non-decreasing time order and a scalar
// busy-until suffices.
package mem

// Port is a single-server queue for a shared resource.
type Port struct {
	// Occupancy is how many cycles each request holds the port.
	Occupancy float64

	busyUntil float64
	requests  uint64
	queued    float64 // accumulated queueing delay
}

// Request records a request arriving at time t and returns the queueing
// delay it suffers before service starts.
func (p *Port) Request(t float64) (queueDelay float64) {
	p.requests++
	start := t
	if p.busyUntil > start {
		start = p.busyUntil
		queueDelay = start - t
	}
	p.busyUntil = start + p.Occupancy
	p.queued += queueDelay
	return queueDelay
}

// Stats returns the number of requests and total queueing delay so far.
func (p *Port) Stats() (requests uint64, totalQueueDelay float64) {
	return p.requests, p.queued
}

// Reset clears the port's history.
func (p *Port) Reset() {
	p.busyUntil, p.requests, p.queued = 0, 0, 0
}

// Energy holds the per-event energy constants of the memory hierarchy, in
// arbitrary units (the paper reports relative power, which cancels the
// units). Defaults follow the usual SRAM-vs-DRAM orders of magnitude.
type Energy struct {
	L2Access float64 // tag+data access of a private L2
	BusXfer  float64 // one line transferred or snooped on the on-chip bus
	DRAM     float64 // one off-chip access (read or writeback)
}

// DefaultEnergy is the model used by all experiments.
func DefaultEnergy() Energy {
	return Energy{L2Access: 1.0, BusXfer: 2.0, DRAM: 30.0}
}

// Total computes hierarchy energy from event counts.
func (e Energy) Total(l2Accesses, busTransfers, dramAccesses uint64) float64 {
	return e.L2Access*float64(l2Accesses) + e.BusXfer*float64(busTransfers) + e.DRAM*float64(dramAccesses)
}
