package mem

import "testing"

func TestPortNoContention(t *testing.T) {
	p := &Port{Occupancy: 4}
	if d := p.Request(0); d != 0 {
		t.Fatalf("first request delayed %v", d)
	}
	if d := p.Request(10); d != 0 {
		t.Fatalf("spaced request delayed %v", d)
	}
}

func TestPortQueueing(t *testing.T) {
	p := &Port{Occupancy: 4}
	p.Request(0) // busy until 4
	if d := p.Request(1); d != 3 {
		t.Fatalf("second request delay %v, want 3", d)
	}
	// busy until 1+3+4 = 8
	if d := p.Request(2); d != 6 {
		t.Fatalf("third request delay %v, want 6", d)
	}
	reqs, total := p.Stats()
	if reqs != 3 || total != 9 {
		t.Fatalf("stats %d/%v, want 3/9", reqs, total)
	}
}

func TestPortBackToBackSaturation(t *testing.T) {
	// n simultaneous arrivals serialise completely.
	p := &Port{Occupancy: 2}
	var total float64
	for i := 0; i < 10; i++ {
		total += p.Request(100)
	}
	// Delays: 0,2,4,...,18 = 90.
	if total != 90 {
		t.Fatalf("total delay %v, want 90", total)
	}
}

func TestPortReset(t *testing.T) {
	p := &Port{Occupancy: 4}
	p.Request(0)
	p.Request(0)
	p.Reset()
	if d := p.Request(0); d != 0 {
		t.Fatalf("request after reset delayed %v", d)
	}
	if reqs, q := p.Stats(); reqs != 1 || q != 0 {
		t.Fatalf("stats after reset %d/%v", reqs, q)
	}
}

func TestEnergyTotal(t *testing.T) {
	e := Energy{L2Access: 1, BusXfer: 2, DRAM: 30}
	got := e.Total(100, 10, 5)
	if got != 100+20+150 {
		t.Fatalf("energy %v, want 270", got)
	}
	d := DefaultEnergy()
	if d.DRAM <= d.BusXfer || d.BusXfer <= 0 || d.L2Access <= 0 {
		t.Fatalf("default energy ordering implausible: %+v", d)
	}
}
