package prefetch

import "testing"

func TestStrideDetection(t *testing.T) {
	p := NewStride(64, 2)
	// Blocks 0,1,2: stride 1 confirmed on the third observation.
	if got := p.Observe(0); len(got) != 0 {
		t.Fatalf("prefetch on first touch: %v", got)
	}
	if got := p.Observe(1); len(got) != 0 {
		t.Fatalf("prefetch before confirmation: %v", got)
	}
	if got := p.Observe(2); len(got) != 0 {
		t.Fatalf("prefetch with conf=1: %v", got)
	}
	got := p.Observe(3)
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("proposals = %v, want [4 5]", got)
	}
	if p.Issued() != 2 {
		t.Fatalf("issued = %d, want 2", p.Issued())
	}
}

func TestStrideNonUnit(t *testing.T) {
	p := NewStride(64, 1)
	for _, b := range []uint64{10, 13, 16, 19} {
		p.Observe(b)
	}
	got := p.Observe(22)
	if len(got) != 1 || got[0] != 25 {
		t.Fatalf("proposals = %v, want [25]", got)
	}
}

func TestStrideBreakResetsConfidence(t *testing.T) {
	p := NewStride(64, 2)
	for _, b := range []uint64{0, 1, 2, 3} {
		p.Observe(b)
	}
	// Break the pattern: jump within the same region.
	if got := p.Observe(40); len(got) != 0 {
		t.Fatalf("prefetch after stride break: %v", got)
	}
	if got := p.Observe(41); len(got) != 0 {
		t.Fatalf("prefetch before re-confirmation: %v", got)
	}
	p.Observe(42)
	if got := p.Observe(43); len(got) != 2 {
		t.Fatalf("stride not re-learned: %v", got)
	}
}

func TestRandomStreamNoPrefetch(t *testing.T) {
	p := NewStride(64, 2)
	// Irregular deltas within one region never confirm.
	blocks := []uint64{0, 5, 7, 20, 21, 50, 3, 90, 11}
	issued := 0
	for _, b := range blocks {
		issued += len(p.Observe(b))
	}
	if issued != 0 {
		t.Fatalf("issued %d prefetches on an irregular stream", issued)
	}
}

func TestRepeatedBlockIgnored(t *testing.T) {
	p := NewStride(64, 2)
	for i := 0; i < 10; i++ {
		if got := p.Observe(7); len(got) != 0 {
			t.Fatalf("prefetch on zero stride: %v", got)
		}
	}
}

func TestRegionConflictReplaces(t *testing.T) {
	p := NewStride(1, 1) // single entry: every region conflicts
	p.Observe(0)
	p.Observe(1)
	p.Observe(2)
	// A different region evicts the trained entry.
	p.Observe(1 << 20)
	if got := p.Observe(3); len(got) != 0 {
		t.Fatalf("prefetch from evicted entry: %v", got)
	}
}

func TestDefault16KB(t *testing.T) {
	p := Default16KB()
	if len(p.entries) != 2048 || p.degree != 2 {
		t.Fatalf("default table %d entries degree %d, want 2048/2", len(p.entries), p.degree)
	}
}

func TestNewStrideValidation(t *testing.T) {
	for _, bad := range []struct{ e, d int }{{0, 1}, {3, 1}, {64, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewStride(%d,%d) did not panic", bad.e, bad.d)
				}
			}()
			NewStride(bad.e, bad.d)
		}()
	}
}

func BenchmarkObserve(b *testing.B) {
	p := Default16KB()
	for i := 0; i < b.N; i++ {
		p.Observe(uint64(i))
	}
}
