// Package prefetch implements the 16 kB stride prefetcher attached to each
// LLC in the paper's §6.3 sensitivity experiment.
//
// The prefetcher observes the demand stream of its cache at line (block)
// granularity, detects constant-stride sequences within aligned address
// regions, and — once a stride has been confirmed twice — proposes the next
// lines of the sequence. The CMP engine fetches proposals from memory into
// the LLC, consuming bus and memory bandwidth, which is exactly the
// interaction with the cooperative policies the paper studies.
package prefetch

// regionShift groups blocks into 4 kB regions (128 lines of 32 B) for
// stride tracking: strides are tracked per region, the usual table design.
const regionShift = 7

// entry is one stride-table row: roughly 8 bytes of architectural state
// (tag, last block offset, stride, 2-bit confidence), so the default 2048
// entries model the paper's 16 kB budget.
type entry struct {
	tag    uint64
	last   uint64
	stride int64
	conf   uint8
}

// Stride is a per-cache stride prefetcher.
type Stride struct {
	entries []entry
	mask    uint64
	degree  int

	buf    []uint64 // reused proposal buffer
	issued uint64
}

// NewStride builds a prefetcher with the given table entries (power of two;
// 2048 models the paper's 16 kB) and prefetch degree (lines proposed per
// confirmed-stride access).
func NewStride(entries, degree int) *Stride {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("prefetch: entries must be a positive power of two")
	}
	if degree <= 0 {
		panic("prefetch: non-positive degree")
	}
	return &Stride{
		entries: make([]entry, entries),
		mask:    uint64(entries - 1),
		degree:  degree,
	}
}

// Default16KB returns the paper's configuration: a 16 kB table (2048
// 8-byte entries) with degree 2.
func Default16KB() *Stride { return NewStride(2048, 2) }

// Observe trains the prefetcher with a demand-accessed block and returns
// the blocks to prefetch (possibly none). Returned slices are only valid
// until the next call.
func (s *Stride) Observe(block uint64) []uint64 {
	region := block >> regionShift
	e := &s.entries[region&s.mask]
	if e.tag != region {
		*e = entry{tag: region, last: block}
		return nil
	}
	stride := int64(block) - int64(e.last)
	if stride == 0 {
		return nil
	}
	if stride == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
	}
	e.last = block
	if e.conf < 2 {
		return nil
	}
	out := s.buf[:0]
	next := int64(block)
	for i := 0; i < s.degree; i++ {
		next += stride
		if next < 0 {
			break
		}
		out = append(out, uint64(next))
	}
	s.buf = out
	s.issued += uint64(len(out))
	return out
}

// Issued returns the number of prefetch proposals made so far.
func (s *Stride) Issued() uint64 { return s.issued }
