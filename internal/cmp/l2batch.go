// The batched below-L1 engine (DESIGN.md §12): run-to-event extended past
// the L1. The unbatched engine resolves each L2 demand miss as one fully
// interleaved descent — probe, policy training, coherence, queueing, stat
// updates — with the core clock published before every descent. This file
// splits that descent into a decision half and a latency half and defers
// everything deferrable to a per-turn fold, while producing bit-identical
// results (golden CSVs, FuzzBurstEquivalence, the frozen refRunPhase
// oracle):
//
//   - Coherence is answered by the ganged slab's fused demand probe
//     (cachesim.CacheGroup.DemandAccess): the local Access, the peer holder
//     mask and the serving holder's way come out of one pass over one row,
//     replacing the Access -> HolderMask -> holder-Lookup triple.
//
//   - The decision half (l2DemandBatched and the *Batched call tree below
//     it) performs every cache/policy mutation in the original order but
//     issues no port traffic; each bus/memory request is recorded as a
//     portOp. The latency half (replayOps) then replays the ops in stream
//     order against the live ports, reproducing the exact same sequence of
//     Request calls — same timestamps, same queue-delay values, same
//     floating-point addition order into the miss latency and QueueDelay —
//     the unbatched engine would have issued.
//
//   - Policy events for L2 hits are deferred into a per-turn buffer and
//     delivered in bulk (coop.AccessBatcher, or the equivalent per-event
//     loop) at the next miss or at the turn fold. Hits read no policy state
//     and train only the stepping core's own bank, so delaying them to the
//     next policy read is invisible. With prefetching enabled the hit path
//     can reach policy reads (a prefetch fill may evict and spill), so the
//     deferral is disabled there (s.deferPol).
//
//   - CoreStats' float accumulators (LatencySum, QueueDelay) are carried in
//     registers across the turn (turnAcc) and stored once at the fold. The
//     adds execute in the identical per-access order, so the fold is
//     bitwise-identical to field-at-a-time updates — only the loads/stores
//     between them disappear. Counter deltas fold the same way.
//
// Clock contract (the satellite-1 audit): the unbatched engine publishes
// s.clock[c] before every descent because the ports read it. The batched
// engine instead passes the running clock by value into the descent and the
// replay; s.clock[c] holds the turn-start value until the fold. That is
// sound because the only below-L1 readers of s.clock are the port replays
// here, and they read either the by-value stepping clock (op.src == c) or a
// peer's clock (receiver-side dirty writebacks, op.src == r != c), and a
// peer's clock is only ever written at that peer's own turn fold — exactly
// the value the unbatched engine would have read mid-descent. The frontier
// scan reads s.clock only between turns, after the fold. TestL2BatchClock*
// pins this.
package cmp

import (
	"math"
	"math/bits"

	"ascc/internal/cachesim"
	"ascc/internal/coop"
	"ascc/internal/ssl"
)

// portOp records one deferred port request of a miss descent: which port,
// whose clock timestamps the request, whose QueueDelay accrues the queue
// delay (-1 discards it, as the spill-bus and prefetch requests do), and
// whether the delay joins the miss latency.
type portOp struct {
	src    int16
	charge int16
	mem    bool
	inLat  bool
}

// turnAcc carries one turn's deferred CoreStats state for the stepping
// core: the float accumulators as running register values (loaded at turn
// start, stored at the fold) and the integer counters as deltas.
type turnAcc struct {
	latencySum float64
	queueDelay float64
	l2Accesses uint64
	localHits  uint64
	remoteHits uint64
	memFills   uint64
}

// recBus / recMem append a deferred port request to the descent record.
func (s *System) recBus(src, charge int, inLat bool) {
	s.ops = append(s.ops, portOp{src: int16(src), charge: int16(charge), inLat: inLat})
}

func (s *System) recMem(src, charge int, inLat bool) {
	s.ops = append(s.ops, portOp{src: int16(src), charge: int16(charge), mem: true, inLat: inLat})
}

// replayOps is the latency half: it replays the descent's recorded port
// requests in stream order, accumulating inLat queue delays onto lat in the
// same order the unbatched engine added them, and charging QueueDelay to
// the recorded cores (the stepping core's share goes through the turn
// accumulator). clock is the stepping core's by-value running clock; a
// request by any other core reads that core's published (turn-fold) clock.
func (s *System) replayOps(c int, clock, lat float64, ta *turnAcc) float64 {
	for _, op := range s.ops {
		t := clock
		if int(op.src) != c {
			t = s.clock[op.src]
		}
		var qd float64
		if op.mem {
			qd = s.memPort.Request(t)
		} else {
			qd = s.bus.Request(t)
		}
		if op.inLat {
			lat += qd
		}
		switch int(op.charge) {
		case c:
			ta.queueDelay += qd
		case -1:
		default:
			s.live[op.charge].QueueDelay += qd
		}
	}
	s.ops = s.ops[:0]
	return lat
}

// flushPolicy delivers the deferred hit events of the stepping core, in
// order, with their original access numbers (polBase, recorded when the
// buffer started — s.l2Accesses[c] may already count an in-flight miss when
// the miss path flushes). Called before any policy read (the miss path) and
// at the turn fold.
func (s *System) flushPolicy(c int) {
	if len(s.polBuf) == 0 {
		return
	}
	base := s.polBase
	if s.batcher != nil {
		s.batcher.OnL2AccessBatch(c, s.polBuf, base)
	} else {
		for i, e := range s.polBuf {
			s.policy.OnL2Access(c, int(e>>1), e&1 == 1)
			s.policy.Tick(c, base+uint64(i)+1)
		}
	}
	s.polBuf = s.polBuf[:0]
}

// runPhaseBatched is runPhaseNoBatch with the batched below-L1 engine: the
// same incremental (clock, index)-sorted frontier and L1 burst stepping,
// but descents go through l2DemandBatched with the clock passed by value,
// and the turn fold additionally flushes deferred policy events and stores
// the turn accumulator. See the file comment for the equivalence argument.
func (s *System) runPhaseBatched(quota uint64) {
	n := s.p.Cores
	shift := s.lineShift
	front := s.front[:0]
	for i := 0; i < n; i++ {
		if s.done[i] {
			continue
		}
		j := len(front)
		front = append(front, int32(i))
		for ; j > 0; j-- {
			p := front[j-1]
			if s.clock[p] < s.clock[i] || (s.clock[p] == s.clock[i] && p < int32(i)) {
				break
			}
			front[j], front[j-1] = front[j-1], front[j]
		}
	}
	for len(front) > 0 {
		c := int(front[0])
		second := math.Inf(1)
		if len(front) > 1 {
			// SyncSlack is 0 outside the sampled fast path (Params.SyncSlack).
			second = s.clock[front[1]] + s.p.SyncSlack
		}
		st := &s.live[c]
		t := s.timing[c]
		gen := s.gens[c]
		bt := &s.batches[c]
		l1 := s.l1s[c]
		instr := st.Instructions
		clock := s.clock[c]
		ta := turnAcc{latencySum: st.LatencySum, queueDelay: st.QueueDelay}
		var accesses, allHits uint64
		var ev cachesim.BurstEvent
		var hits, block uint64
		var way int
		var write bool
	stepping:
		for {
			ev, instr, clock, hits, block, way, write =
				l1.ReadBurst(bt, shift, t.BaseCPI, quota, second, instr, clock)
			accesses += hits
			allHits += hits
			switch ev {
			case cachesim.BurstBatchEnd:
				bt.Refill(gen)
				continue
			case cachesim.BurstQuota, cachesim.BurstFrontier:
				break stepping
			case cachesim.BurstUpgrade:
				// Write-through upgrade: no ports, no policy, no latency —
				// identical to the unbatched engine.
				line := l1.Line(l1.SetIndex(block), way)
				s.writeThroughHit(c, block)
				line.State = cachesim.Modified
			case cachesim.BurstMiss:
				accesses++
				lat := s.l2DemandBatched(c, block, write, clock, &ta)
				clock += lat * t.Overlap
			}
			if instr >= quota || clock >= second {
				break stepping
			}
		}
		// Turn fold: deferred policy events, then the accumulated stats,
		// then the clock — all before the frontier (or a freeze) can
		// observe them.
		s.flushPolicy(c)
		st.Instructions = instr
		st.L1Accesses += accesses
		st.L1Hits += allHits
		st.Cycles = clock
		st.L2Accesses += ta.l2Accesses
		st.L2LocalHits += ta.localHits
		st.L2RemoteHits += ta.remoteHits
		st.L2MemFills += ta.memFills
		st.LatencySum = ta.latencySum
		st.QueueDelay = ta.queueDelay
		s.clock[c] = clock
		if instr >= quota {
			s.frozen[c] = *st
			s.done[c] = true
			front = front[1:]
			continue
		}
		j := 0
		for j+1 < len(front) {
			nx := front[j+1]
			cv := s.clock[nx]
			if cv < clock || (cv == clock && int(nx) < c) {
				front[j] = nx
				j++
			} else {
				break
			}
		}
		front[j] = int32(c)
	}
}

// l2DemandBatched is l2Demand split into its decision half (executed here,
// recording port ops) and latency half (replayOps). clock is the stepping
// core's running clock, passed by value; ta is the turn accumulator.
func (s *System) l2DemandBatched(c int, block uint64, write bool, clock float64, ta *turnAcc) float64 {
	st := &s.live[c]
	l2 := s.l2s[c]
	set := l2.SetIndex(block)
	ta.l2Accesses++
	s.l2Accesses[c]++
	w, hit, holders, hway := s.group.DemandAccess(c, block)

	if hit {
		if s.deferPol {
			if len(s.polBuf) == 0 {
				s.polBase = s.l2Accesses[c] - 1
			}
			s.polBuf = append(s.polBuf, uint32(set)<<1|1)
		} else {
			s.policy.OnL2Access(c, set, true)
		}
		line := l2.Line(set, w)
		line.Reused = true
		if line.Prefetch {
			line.Prefetch = false
			st.PrefUseful++
		}
		if write {
			if line.State == cachesim.Shared {
				s.invalidateOthers(block, c)
				st.BusTransfers++
			}
			line.State = cachesim.Modified
			line.Dirty = true
		}
		ta.localHits++
		lat := s.p.L2LocalHitCycles
		s.fillL1(c, block)
		if s.pf != nil {
			s.trainPrefetcherBatched(c, block)
			lat = s.replayOps(c, clock, lat, ta)
			ta.latencySum += lat
			s.policy.Tick(c, s.l2Accesses[c])
			return lat
		}
		ta.latencySum += lat
		if !s.deferPol {
			// Direct delivery (no AccessBatcher): the Tick the flush would
			// otherwise replay happens here, in access order.
			s.policy.Tick(c, s.l2Accesses[c])
		}
		return lat
	}

	// Miss: every path below reads policy state, so deliver the deferred
	// hit events first, then this access's own event, in order.
	s.flushPolicy(c)
	s.policy.OnL2Access(c, set, false)
	tick := s.l2Accesses[c]

	s.recBus(c, c, true)
	st.BusTransfers++
	var lat float64
	if holders != 0 {
		lat = s.p.L2RemoteHitCycles
		ta.remoteHits++
		s.remoteHitBatched(c, block, set, holders, hway, write)
	} else {
		s.recMem(c, c, true)
		lat = s.p.MemLatencyCycles
		ta.memFills++
		st.OffChip++
		state := cachesim.Exclusive
		if write {
			state = cachesim.Modified
		}
		s.insertAndEvictBatched(c, block, cachesim.Line{State: state, Dirty: write, Owner: int16(c)})
		s.fillL1(c, block)
	}
	if s.pf != nil {
		s.trainPrefetcherBatched(c, block)
	}
	lat = s.replayOps(c, clock, lat, ta)
	ta.latencySum += lat
	s.policy.Tick(c, tick)
	return lat
}

// remoteHitBatched is remoteHit's decision half: identical protocol and
// mutation order, with the holder's way supplied by the fused demand probe
// (no re-Lookup) and the M->S writeback recorded instead of issued.
func (s *System) remoteHitBatched(c int, block uint64, set int, holders uint64, hway int, write bool) {
	st := &s.live[c]
	r := bits.TrailingZeros64(holders)
	l2r := s.l2s[r]
	rw := hway
	rl := *l2r.Line(set, rw)
	lastCopy := holders&(holders-1) == 0

	if rl.Spilled {
		s.live[rl.Owner].SpillHits++
	}

	if write {
		for m := holders; m != 0; m &= m - 1 {
			h := bits.TrailingZeros64(m)
			s.l2s[h].Invalidate(block)
			s.l1MutLock(h)
			s.l1s[h].Invalidate(block)
			s.l1MutUnlock(h)
			st.BusTransfers++
		}
		proto := cachesim.Line{State: cachesim.Modified, Dirty: true, Reused: true, Owner: int16(c)}
		if !(lastCopy && s.allocWithSwap(c, block, r, rw, proto)) {
			s.insertAndEvictBatched(c, block, proto)
		}
		s.fillL1(c, block)
		return
	}

	if s.policy.SwapEnabled() && lastCopy {
		s.l1MutLock(r)
		s.l1s[r].Invalidate(block)
		s.l1MutUnlock(r)
		l2r.Invalidate(block)
		state := cachesim.Exclusive
		if rl.Dirty {
			state = cachesim.Modified
		}
		proto := cachesim.Line{State: state, Dirty: rl.Dirty, Reused: true, Owner: rl.Owner}
		if !s.allocWithSwap(c, block, r, rw, proto) {
			s.insertAndEvictBatched(c, block, proto)
		}
		s.fillL1(c, block)
		st.BusTransfers++
		return
	}

	if rl.Spilled {
		l2r.Touch(set, rw)
		l2r.Line(set, rw).Reused = true
		st.BusTransfers++
		return
	}

	if rl.State == cachesim.Modified {
		// M -> S: the dirty data reaches memory on the requester's clock,
		// charged to the requester but outside the miss latency.
		s.recMem(c, c, false)
		s.live[r].Writebacks++
		s.live[r].OffChip++
		l2r.Line(set, rw).Dirty = false
		s.l1MutLock(r)
		l1r := s.l1s[r]
		if lw, ok := l1r.Lookup(block); ok {
			l1r.Line(l1r.SetIndex(block), lw).State = cachesim.Exclusive
		}
		s.l1MutUnlock(r)
	}
	l2r.Line(set, rw).State = cachesim.Shared
	st.BusTransfers++
	s.insertAndEvictBatched(c, block, cachesim.Line{State: cachesim.Shared, Owner: int16(c)})
	s.fillL1(c, block)
}

// insertAndEvictBatched is insertAndEvict with the eviction routed through
// the recording path.
func (s *System) insertAndEvictBatched(c int, block uint64, proto cachesim.Line) {
	l2 := s.l2s[c]
	set := l2.SetIndex(block)
	pos := s.policy.InsertPos(c, set)
	var ev cachesim.Line
	if allow := s.policy.DemandVictimAllow(c, set); allow != nil {
		w := l2.VictimAmong(set, allow)
		if w < 0 {
			w = l2.VictimInSet(set)
		}
		ev = l2.InsertWay(block, w, pos, proto)
	} else {
		ev = l2.Insert(block, pos, proto)
	}
	s.handleEvictionBatched(c, set, ev, true)
}

// handleEvictionBatched is handleEviction's decision half: the dirty
// writeback's memory request is recorded (timestamped with and charged to
// the evicting core — which on receiver-side evictions is the receiver,
// whose published clock the replay reads) instead of issued.
func (s *System) handleEvictionBatched(c, set int, ev cachesim.Line, allowSpill bool) {
	if !ev.Valid() {
		return
	}
	// c may be a spill receiver, not the stepping core, so the L1
	// back-invalidate takes the speculation lock.
	s.l1MutLock(c)
	s.l1s[c].Invalidate(ev.Tag)
	s.l1MutUnlock(c)
	if !s.isLastCopy(ev.Tag, c) {
		return
	}
	st := &s.live[c]
	if allowSpill && !ev.Prefetch &&
		(!ev.Spilled || s.policy.AllowRespill()) &&
		s.policy.Role(c, set) == ssl.Spiller {
		if !ev.Reused && !ev.Spilled && s.policy.SpillRequiresReuse() {
			s.policy.OnSpillFail(c, set)
		} else {
			for _, r := range s.policy.Receivers(c, set) {
				if r != c && s.spillIntoBatched(c, r, set, ev) {
					return
				}
			}
			s.policy.OnSpillFail(c, set)
		}
	}
	if ev.Dirty {
		s.recMem(c, c, false)
		st.Writebacks++
		st.OffChip++
	}
}

// spillIntoBatched is spillInto's decision half: the spill's bus transfer is
// recorded (its queue delay was always discarded) instead of issued.
func (s *System) spillIntoBatched(c, r, set int, ev cachesim.Line) bool {
	l2r := s.l2s[r]
	pos := s.policy.SpillInsertPos(r, set, ev.Reused)
	proto := ev
	proto.Spilled = true
	proto.Prefetch = false
	proto.Reused = false
	var ev2 cachesim.Line
	switch s.policy.GuestVictim() {
	case coop.GuestDeadLines:
		w, ok := l2r.VictimDead(set)
		if !ok {
			return false
		}
		ev2 = l2r.InsertWay(ev.Tag, w, pos, proto)
	case coop.GuestRegion:
		allow := s.policy.SpillVictimAllow(r, set)
		w := l2r.VictimAmong(set, allow)
		if w < 0 {
			return false
		}
		ev2 = l2r.InsertWay(ev.Tag, w, pos, proto)
	default:
		ev2 = l2r.Insert(ev.Tag, pos, proto)
	}
	s.handleEvictionBatched(r, set, ev2, false)
	s.recBus(c, -1, false)
	s.live[c].SpillsOut++
	s.live[c].BusTransfers++
	s.live[r].SpillsIn++
	return true
}

// trainPrefetcherBatched is trainPrefetcher with the per-proposal presence
// check fused into one ganged-row probe (local copy and peer holders in the
// same scan) and the fetch's port traffic recorded. Proposals stay
// sequential: an earlier proposal's insert can evict a later proposal's
// block, so probing them as a batch would not be bit-exact.
func (s *System) trainPrefetcherBatched(c int, block uint64) {
	st := &s.live[c]
	for _, pb := range s.pf[c].Observe(block) {
		if s.group.Probe(pb).Holders != 0 {
			continue // already on chip, locally or in a peer
		}
		s.recBus(c, -1, false)
		s.recMem(c, -1, false)
		st.PrefIssued++
		st.OffChip++
		st.BusTransfers++
		s.insertAndEvictBatched(c, pb, cachesim.Line{State: cachesim.Exclusive, Prefetch: true, Owner: int16(c)})
	}
}
