package cmp

import (
	"fmt"
	"reflect"
	"testing"

	"ascc/internal/cachesim"
	"ascc/internal/coop"
	"ascc/internal/policies"
	"ascc/internal/ssl"
	"ascc/internal/trace"
)

// buildPair constructs the same machine twice — the batched turn engine
// and the per-reference EngineRefStep — with independent generator and
// policy instances. Both are explicit (the default is the fused kernel):
// this file pins the demoted batched engine against its original A/B side.
func buildPair(t *testing.T, p Params, mkGens func() []trace.Generator,
	timing []CoreTiming, mkPol func() coop.Policy) (batched, unbatched *System) {
	t.Helper()
	pb := p
	pb.Engine = EngineBatched
	pn := p
	pn.Engine = EngineRefStep
	var err error
	if batched, err = New(pb, mkGens(), timing, mkPol()); err != nil {
		t.Fatal(err)
	}
	if unbatched, err = New(pn, mkGens(), timing, mkPol()); err != nil {
		t.Fatal(err)
	}
	return batched, unbatched
}

// requireIdentical demands bit-identical Results, clocks and cache state
// between the two engines.
func requireIdentical(t *testing.T, batched, unbatched *System, a, b Results) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("engines diverge:\nbatched:  %+v\nno-batch: %+v", a, b)
	}
	for i := range batched.clock {
		if batched.clock[i] != unbatched.clock[i] {
			t.Errorf("core %d clock: batched %v, no-batch %v", i, batched.clock[i], unbatched.clock[i])
		}
		compareCaches(t, "L1", i, batched.l1s[i], unbatched.l1s[i])
		compareCaches(t, "L2", i, batched.L2(i), unbatched.L2(i))
	}
}

// TestL2BatchEquivalenceAcrossPolicies runs the batched and unbatched
// engines over every policy family on a contended machine (nonzero bus and
// memory occupancies, so queue-delay values depend on exact request
// ordering and timestamps) and demands bit-identical results.
func TestL2BatchEquivalenceAcrossPolicies(t *testing.T) {
	p := tinyParams(3)
	p.BusOccupancy = 4
	p.MemOccupancy = 16
	sets := p.L2.SizeBytes / p.L2.LineBytes / p.L2.Ways
	pols := map[string]func() coop.Policy{
		"baseline": func() coop.Policy { return policies.NewBaseline() },
		"CC":       func() coop.Policy { return policies.NewCC(3, 7) },
		"DSR":      func() coop.Policy { return policies.NewDSR(3, sets, p.L2.Ways, 7) },
		"ASCC":     func() coop.Policy { return policies.NewASCC(3, sets, p.L2.Ways, 7) },
		"AVGCC": func() coop.Policy {
			cfg := policies.AVGCCDefaultConfig(3, sets, p.L2.Ways, 7)
			cfg.ResizePeriod = 64
			return policies.NewASCCVariant("AVGCC", cfg)
		},
		"QoS-AVGCC": func() coop.Policy {
			cfg := policies.AVGCCDefaultConfig(3, sets, p.L2.Ways, 7)
			cfg.ResizePeriod = 64
			cfg.QoS = true
			return policies.NewASCCVariant("QoS-AVGCC", cfg)
		},
	}
	mkGens := func() []trace.Generator {
		return []trace.Generator{
			&scriptGen{name: "storm", refs: append(loopRefs(0, 4, 6, 1), trace.Ref{Addr: 0, Gap: 1, Write: true})},
			&scriptGen{name: "light", refs: loopRefs(1, 4, 3, 2)},
			&scriptGen{name: "mixed", refs: append(loopRefs(2, 4, 5, 1), trace.Ref{Addr: 2 * 32, Gap: 3, Write: true})},
		}
	}
	for name, mkPol := range pols {
		t.Run(name, func(t *testing.T) {
			batched, unbatched := buildPair(t, p, mkGens, evenTiming(3), mkPol)
			a := batched.Run(500, 4000)
			b := unbatched.Run(500, 4000)
			requireIdentical(t, batched, unbatched, a, b)
		})
	}
}

// TestL2BatchClockContract pins the lazy-clock publication contract
// (DESIGN.md §12): every below-L1 port request must observe the same clock
// in both engines — the stepping core's running clock for its own traffic,
// and the receiver's turn-fold clock for receiver-side dirty writebacks
// triggered by an incoming spill. The scenario forces exactly that cross-
// core path: core 1 dirties never-reused lines in set 0 (dead, dirty —
// guest-admission victims), then decays its SSL with L2 hits elsewhere so
// it turns receiver, while core 0 saturates set 0 with reused last-copy
// victims that spill into core 1 and displace the dirty lines. With
// nonzero occupancies, a batched engine reading the wrong clock would shift
// the writeback's queue delay and diverge.
func TestL2BatchClockContract(t *testing.T) {
	p := tinyParams(2)
	p.BusOccupancy = 4
	p.MemOccupancy = 16
	sets := p.L2.SizeBytes / p.L2.LineBytes / p.L2.Ways
	mkPol := func() coop.Policy {
		cfg := policies.AVGCCDefaultConfig(2, sets, p.L2.Ways, 3)
		cfg.ResizePeriod = 1 << 20 // no resizes: roles evolve only via SSL
		cfg.Granularity = 0        // per-set counters
		cfg.Dynamic = false
		return policies.NewASCCVariant("ASCC", cfg)
	}
	mkGens := func() []trace.Generator {
		// Core 0: L2 set-0 storm, re-references at distance 3 (past the
		// 2-way L1, inside the 4-way L2) so victims are reused.
		storm := make([]trace.Ref, 0, 10)
		for _, b := range []uint64{0, 4, 8, 12, 0, 4, 8, 12, 16, 20} {
			storm = append(storm, trace.Ref{Addr: b * 32, Gap: 1})
		}
		// Core 1: dirty four set-0 blocks once (dead + dirty guests-to-be),
		// then loop L2 hits in sets 1-3 to decay the set-0 SSL's cache-wide
		// pressure and keep the cache receiving.
		recv := []trace.Ref{
			{Addr: 24 * 32, Gap: 1, Write: true}, {Addr: 28 * 32, Gap: 1, Write: true},
			{Addr: 32 * 32, Gap: 1, Write: true}, {Addr: 36 * 32, Gap: 1, Write: true},
		}
		recv = append(recv, loopRefs(1, 4, 6, 1)...)
		recv = append(recv, loopRefs(2, 4, 6, 1)...)
		return []trace.Generator{
			&scriptGen{name: "storm", refs: storm},
			&scriptGen{name: "recv", refs: recv},
		}
	}
	batched, unbatched := buildPair(t, p, mkGens, evenTiming(2), mkPol)
	a := batched.Run(0, 6000)
	b := unbatched.Run(0, 6000)
	requireIdentical(t, batched, unbatched, a, b)
	if a.Cores[0].SpillsOut == 0 && a.Cores[0].Swaps == 0 {
		t.Fatalf("scenario failed to spill or swap: %+v", a.Cores[0])
	}
	if a.Cores[1].Writebacks == 0 {
		t.Fatalf("scenario produced no receiver-side writebacks: %+v", a.Cores[1])
	}
	if a.Cores[1].QueueDelay == 0 {
		t.Fatalf("receiver accrued no queue delay: %+v", a.Cores[1])
	}
}

// spyPolicy wraps a real policy and records the full call sequence,
// including returned values where they feed the engine's decisions. It
// deliberately does NOT implement coop.AccessBatcher, so the batched engine
// must deliver deferred events through the per-event fallback loop — the
// recorded sequence then proves the deferral is invisible to policies.
type spyPolicy struct {
	inner coop.Policy
	log   []string
}

func (s *spyPolicy) rec(format string, args ...any) {
	s.log = append(s.log, fmt.Sprintf(format, args...))
}

func (s *spyPolicy) Name() string { return s.inner.Name() }
func (s *spyPolicy) OnL2Access(c, set int, hit bool) {
	s.rec("OnL2Access(%d,%d,%v)", c, set, hit)
	s.inner.OnL2Access(c, set, hit)
}
func (s *spyPolicy) Role(c, set int) ssl.Role {
	r := s.inner.Role(c, set)
	s.rec("Role(%d,%d)=%v", c, set, r)
	return r
}
func (s *spyPolicy) Receivers(c, set int) []int {
	r := s.inner.Receivers(c, set)
	s.rec("Receivers(%d,%d)=%v", c, set, r)
	return r
}
func (s *spyPolicy) OnSpillFail(c, set int) {
	s.rec("OnSpillFail(%d,%d)", c, set)
	s.inner.OnSpillFail(c, set)
}
func (s *spyPolicy) InsertPos(c, set int) cachesim.InsertPos {
	p := s.inner.InsertPos(c, set)
	s.rec("InsertPos(%d,%d)=%v", c, set, p)
	return p
}
func (s *spyPolicy) SpillInsertPos(c, set int, guestReused bool) cachesim.InsertPos {
	p := s.inner.SpillInsertPos(c, set, guestReused)
	s.rec("SpillInsertPos(%d,%d,%v)=%v", c, set, guestReused, p)
	return p
}
func (s *spyPolicy) AllowRespill() bool       { return s.inner.AllowRespill() }
func (s *spyPolicy) SpillRequiresReuse() bool { return s.inner.SpillRequiresReuse() }
func (s *spyPolicy) SwapEnabled() bool        { return s.inner.SwapEnabled() }
func (s *spyPolicy) GuestVictim() coop.GuestVictimMode {
	return s.inner.GuestVictim()
}
func (s *spyPolicy) DemandVictimAllow(c, set int) func(int) bool {
	return s.inner.DemandVictimAllow(c, set)
}
func (s *spyPolicy) SpillVictimAllow(c, set int) func(int) bool {
	return s.inner.SpillVictimAllow(c, set)
}
func (s *spyPolicy) Tick(c int, accesses uint64) {
	s.rec("Tick(%d,%d)", c, accesses)
	s.inner.Tick(c, accesses)
}

// TestL2BatchPolicyCallSequence proves the batched engine's policy-event
// deferral is unobservable: the exact sequence of policy invocations
// (training events, ticks, roles, receiver draws, insertion positions —
// with arguments and returned values) is identical to the unbatched
// engine's.
func TestL2BatchPolicyCallSequence(t *testing.T) {
	p := tinyParams(2)
	p.BusOccupancy = 2
	p.MemOccupancy = 8
	sets := p.L2.SizeBytes / p.L2.LineBytes / p.L2.Ways
	mkSpy := func() *spyPolicy {
		cfg := policies.AVGCCDefaultConfig(2, sets, p.L2.Ways, 11)
		cfg.ResizePeriod = 32
		return &spyPolicy{inner: policies.NewASCCVariant("AVGCC", cfg)}
	}
	mkGens := func() []trace.Generator {
		return []trace.Generator{
			&scriptGen{name: "a", refs: append(loopRefs(0, 4, 6, 1), trace.Ref{Addr: 4 * 32, Gap: 1, Write: true})},
			&scriptGen{name: "b", refs: loopRefs(1, 4, 3, 2)},
		}
	}
	spyA, spyB := mkSpy(), mkSpy()
	pb := p
	pb.Engine = EngineBatched
	batched, err := New(pb, mkGens(), evenTiming(2), spyA)
	if err != nil {
		t.Fatal(err)
	}
	pn := p
	pn.Engine = EngineRefStep
	unbatched, err := New(pn, mkGens(), evenTiming(2), spyB)
	if err != nil {
		t.Fatal(err)
	}
	resA := batched.Run(200, 2500)
	resB := unbatched.Run(200, 2500)
	if !reflect.DeepEqual(resA, resB) {
		t.Fatalf("results diverge under spy:\nbatched:  %+v\nno-batch: %+v", resA, resB)
	}
	if len(spyA.log) == 0 {
		t.Fatal("spy recorded no policy calls")
	}
	if len(spyA.log) != len(spyB.log) {
		t.Fatalf("call counts diverge: batched %d, no-batch %d", len(spyA.log), len(spyB.log))
	}
	for i := range spyA.log {
		if spyA.log[i] != spyB.log[i] {
			t.Fatalf("call %d diverges:\nbatched:  %s\nno-batch: %s", i, spyA.log[i], spyB.log[i])
		}
	}
}

// TestL2BatchGroupProbeAgreement checks the batch probe API against the
// single-block probes on live post-run cache state (the engine-facing
// contract of cachesim.ProbeBatch).
func TestL2BatchGroupProbeAgreement(t *testing.T) {
	p := tinyParams(2)
	mkGens := func() []trace.Generator {
		return []trace.Generator{
			&scriptGen{name: "a", refs: loopRefs(0, 4, 6, 1)},
			&scriptGen{name: "b", refs: loopRefs(0, 4, 3, 1)},
		}
	}
	sys, err := New(p, mkGens(), evenTiming(2), policies.NewBaseline())
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(0, 2000)
	blocks := make([]uint64, 0, 32)
	for b := uint64(0); b < 32; b++ {
		blocks = append(blocks, b)
	}
	out := make([]cachesim.GroupProbe, len(blocks))
	sys.group.ProbeBatch(blocks, out)
	for i, b := range blocks {
		if got, want := out[i], sys.group.Probe(b); got != want {
			t.Errorf("block %d: batch %+v, single %+v", b, got, want)
		}
		holders := sys.group.HolderMask(b)
		if out[i].Holders != holders {
			t.Errorf("block %d: probe holders %b, HolderMask %b", b, out[i].Holders, holders)
		}
		for c := 0; c < 2; c++ {
			if got, want := out[i].LastCopyFor(c), sys.group.LastCopy(b, c); got != want {
				t.Errorf("block %d except %d: LastCopyFor %v, LastCopy %v", b, c, got, want)
			}
		}
	}
}
