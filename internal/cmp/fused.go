package cmp

import (
	"math"

	"ascc/internal/cachesim"
)

// Fused L1→L2 run-to-event engine (DESIGN.md §15).
//
// runPhaseNoBatch's turn machinery — the frontier maintenance, the kernel
// re-entry, the event switch, the CoreStats fold — costs a fixed amount per
// kernel exit, and DESIGN.md §12's profile showed the exit rate is set by
// the L1 miss rate (~1.2 references per burst at scale 8) while 88.9% of
// those exits resolve as clean local L2 hits that mutate nothing outside
// the stepping core's own slab segment and L1. This engine pushes exactly
// that case into the kernel: cachesim.ReadBurstFused probes the local L2
// segment on an L1 miss and, for a provably event-free clean hit, commits
// the whole access in place and keeps consuming references, so the turn
// machinery runs once per true event (local L2 miss, write upgrade, quota,
// frontier, batch end) instead of once per L1 miss.
//
// Equivalence argument (why every engine stays bit-identical): an absorbed
// access performs, in order, the same mutations the per-descent engine's
// clean-hit path performs — the L2 set hit counter and SWAR MRU touch
// (l2.Access), Reused, the write's Modified/Dirty transition, the L1 victim
// fill (fillL1's Insert), one HitLat add to LatencySum and one HitCost add
// to the clock (the same float operands in the same stream order, HitCost
// being L2LocalHitCycles*Overlap multiplied once per core from the very
// operands the reference multiplies per access) — and defers only the
// policy's OnL2Access+Tick pair, which sees no cache state (the Policy
// interface traffics in set indices and access numbers only). flushPolicy
// replays the deferred pairs with their original access numbers before any
// descent can read or advance policy state, so the policy observes the
// exact call sequence of the reference engines. Non-absorbable accesses
// (local L2 miss, write hit on a Shared line, prefetched line) leave the
// kernel with zero L2 mutations and replay from scratch through l2Demand's
// unchanged call sites — including the probe counters, so CoherenceProbes
// agrees across engines too.
//
// The policy-event buffer piggybacks on the batched engine's polBuf/polBase
// machinery: the kernel appends packed uint32(set)<<1|1 events, and the
// engine records the access number preceding the buffer's first event when
// the buffer transitions empty→non-empty (per-call bookkeeping below, since
// the kernel batches the s.l2Accesses[c] advance into one fold).
//
// Measured honestly (BenchmarkPhaseFused vs BenchmarkPhaseBurst, the
// l1l2fused block in BENCH_kernel.json), the absorption loses: 0.85-0.96x
// of the per-reference descent on the scale-8 mixes. The turn overhead it
// removes was already near-free — the kernel exchanges all-scalar state —
// while tryAbsorb re-probes the L2 set the descent would probe anyway on
// every refused access, and the deferral adds per-call buffer bookkeeping.
// DESIGN.md §15 documents the profile-backed bound. The engine therefore
// ships selectable (-engine fused) rather than default, and stays
// load-bearing as the only engine whose event-aligned turns support the
// -sim-parallel speculation protocol (parallel.go).
func (s *System) runPhaseFused(quota uint64) {
	n := s.p.Cores
	shift := s.lineShift
	front := s.front[:0]
	for i := 0; i < n; i++ {
		if s.done[i] {
			continue
		}
		j := len(front)
		front = append(front, int32(i))
		for ; j > 0; j-- {
			p := front[j-1]
			if s.clock[p] < s.clock[i] || (s.clock[p] == s.clock[i] && p < int32(i)) {
				break
			}
			front[j], front[j-1] = front[j-1], front[j]
		}
	}
	ab := &s.ab
	ab.HitLat = s.p.L2LocalHitCycles
	for len(front) > 0 {
		c := int(front[0])
		second := math.Inf(1)
		if len(front) > 1 {
			// SyncSlack is 0 outside the sampled fast path (Params.SyncSlack).
			second = s.clock[front[1]] + s.p.SyncSlack
		}
		st := &s.live[c]
		t := s.timing[c]
		gen := s.gens[c]
		bt := &s.batches[c]
		l1 := s.l1s[c]
		instr := st.Instructions
		clock := s.clock[c]
		ab.L2 = s.l2s[c]
		ab.Bind()
		ab.Owner = int16(c)
		ab.HitCost = s.hitCost[c]
		ab.LatencySum = st.LatencySum
		var accesses, allHits, absorbed uint64
		var ev cachesim.BurstEvent
		var hits, block uint64
		var way int
		var write bool
	stepping:
		for {
			polEmpty := len(s.polBuf) == 0
			accBefore := s.l2Accesses[c]
			ab.PolBuf = s.polBuf
			ev, instr, clock, hits, block, way, write =
				l1.ReadBurstFused(bt, shift, t.BaseCPI, quota, second, instr, clock, ab)
			s.polBuf = ab.PolBuf
			if a := ab.Absorbed; a != 0 {
				ab.Absorbed = 0
				// The kernel's absorbed accesses are L2 accesses
				// accBefore+1 .. accBefore+a; their deferred events carry
				// those numbers through polBase when they started the
				// buffer.
				s.l2Accesses[c] = accBefore + a
				absorbed += a
				if polEmpty {
					s.polBase = accBefore
				}
			}
			accesses += hits
			allHits += hits
			switch ev {
			case cachesim.BurstBatchEnd:
				bt.Refill(gen)
				continue
			case cachesim.BurstQuota, cachesim.BurstFrontier:
				break stepping
			case cachesim.BurstUpgrade:
				// Store hit on a line whose inclusive L2 copy is not yet
				// Modified: cache-state work only, no policy read — the
				// deferred events stay buffered across it.
				line := l1.Line(l1.SetIndex(block), way)
				s.writeThroughHit(c, block)
				line.State = cachesim.Modified
			case cachesim.BurstMiss:
				// Unabsorbable reference: the kernel left the L2 untouched,
				// so the full descent replays the access at the reference
				// engine's call sites. Deferred policy events flush first
				// (l2Demand delivers its own event directly), and the
				// LatencySum accumulator syncs through CoreStats around the
				// descent so the adds stay in stream order.
				accesses++
				s.flushPolicy(c)
				st.LatencySum = ab.LatencySum
				s.clock[c] = clock
				lat := s.l2Demand(c, block, write)
				ab.LatencySum = st.LatencySum
				clock += lat * t.Overlap
				s.clock[c] = clock
			}
			if instr >= quota || clock >= second {
				break stepping
			}
		}
		s.flushPolicy(c)
		st.Instructions = instr
		st.L1Accesses += accesses + absorbed
		st.L1Hits += allHits
		st.L2Accesses += absorbed
		st.L2LocalHits += absorbed
		st.LatencySum = ab.LatencySum
		st.Cycles = clock
		s.clock[c] = clock
		if instr >= quota {
			s.frozen[c] = *st
			s.done[c] = true
			front = front[1:]
			continue
		}
		j := 0
		for j+1 < len(front) {
			nx := front[j+1]
			cv := s.clock[nx]
			if cv < clock || (cv == clock && int(nx) < c) {
				front[j] = nx
				j++
			} else {
				break
			}
		}
		front[j] = int32(c)
	}
}
