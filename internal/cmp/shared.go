package cmp

import (
	"fmt"

	"ascc/internal/cachesim"
	"ascc/internal/mem"
	"ascc/internal/trace"
)

// SharedParams describes the shared-LLC alternative the paper simulates in
// §6.1: one LLC of the private caches' aggregate capacity, banked and
// address-interleaved, accessed by every core at a uniform average latency
// (≈2× the private local-hit latency for 2 cores, ≈4× for 4).
type SharedParams struct {
	Cores int

	L1 cachesim.Config
	L2 cachesim.Config // the aggregate shared cache

	HitCycles        float64 // average banked-access latency
	MemLatencyCycles float64
	MemOccupancy     float64

	// SampleDen, when > 1, runs the shared machine on the set-sampled fast
	// path (DESIGN.md §16): both geometries are compacted to 1/SampleDen of
	// their sets and the caller feeds streams filtered with the private
	// machine's SampleSpec (the aggregate L2's set count is a multiple of
	// the same residue granule, so one filtered stream serves both
	// machines). The shared machine is purely set-local — per-set LRU, no
	// cooperative policy — so the closure argument needs no policy
	// translation here at all.
	SampleDen int
}

// DefaultSharedParams mirrors DefaultParams with the aggregate shared LLC:
// capacity scales with the core count and the average hit latency follows
// the paper's "almost twice / almost four times" description.
func DefaultSharedParams(cores, scale int) SharedParams {
	p := DefaultParams(cores, scale)
	hit := p.L2LocalHitCycles * float64(cores)
	if hit < 2*p.L2LocalHitCycles {
		hit = 2 * p.L2LocalHitCycles
	}
	return SharedParams{
		Cores: cores,
		L1:    p.L1,
		L2: cachesim.Config{
			SizeBytes: p.L2.SizeBytes * cores,
			Ways:      p.L2.Ways,
			LineBytes: p.L2.LineBytes,
		},
		HitCycles:        hit,
		MemLatencyCycles: p.MemLatencyCycles,
		MemOccupancy:     p.MemOccupancy,
	}
}

// SharedSystem simulates the shared-LLC CMP. All caches are write-back in
// this configuration (paper §6.1).
type SharedSystem struct {
	p      SharedParams
	gens   []trace.Generator
	timing []CoreTiming

	l1s []*cachesim.Cache
	l2  *cachesim.Cache

	memPort mem.Port

	clock  []float64
	live   []CoreStats
	frozen []CoreStats
	done   []bool

	lineShift uint
}

// NewShared builds the shared-LLC system.
func NewShared(p SharedParams, gens []trace.Generator, timing []CoreTiming) (*SharedSystem, error) {
	if p.Cores <= 0 {
		return nil, fmt.Errorf("cmp: non-positive core count %d", p.Cores)
	}
	if p.SampleDen > 1 {
		var err error
		if p.L1, err = cachesim.SampledConfig(p.L1, p.SampleDen); err != nil {
			return nil, err
		}
		if p.L2, err = cachesim.SampledConfig(p.L2, p.SampleDen); err != nil {
			return nil, err
		}
	}
	if err := p.L1.Validate(); err != nil {
		return nil, err
	}
	if err := p.L2.Validate(); err != nil {
		return nil, err
	}
	if len(gens) != p.Cores || len(timing) != p.Cores {
		return nil, fmt.Errorf("cmp: %d cores but %d generators / %d timings", p.Cores, len(gens), len(timing))
	}
	s := &SharedSystem{
		p:       p,
		gens:    gens,
		timing:  timing,
		l1s:     make([]*cachesim.Cache, p.Cores),
		l2:      cachesim.New(p.L2),
		memPort: mem.Port{Occupancy: p.MemOccupancy},
		clock:   make([]float64, p.Cores),
		live:    make([]CoreStats, p.Cores),
		frozen:  make([]CoreStats, p.Cores),
		done:    make([]bool, p.Cores),
	}
	for i := range s.l1s {
		s.l1s[i] = cachesim.New(p.L1)
	}
	for ls := uint(0); ls < 32; ls++ {
		if 1<<ls == p.L2.LineBytes {
			s.lineShift = ls
			break
		}
	}
	return s, nil
}

// Run mirrors System.Run for the shared configuration.
func (s *SharedSystem) Run(warmup, instrPerCore uint64) Results {
	if warmup > 0 {
		s.runPhase(warmup)
		for i := range s.live {
			s.live[i] = CoreStats{}
			s.clock[i] = 0
			s.done[i] = false
		}
		s.memPort.Reset()
	}
	s.runPhase(instrPerCore)
	res := Results{Policy: "shared-LLC", Cores: make([]CoreStats, s.p.Cores)}
	copy(res.Cores, s.frozen)
	return res
}

func (s *SharedSystem) runPhase(quota uint64) {
	for {
		c := -1
		best := 0.0
		for i := 0; i < s.p.Cores; i++ {
			if !s.done[i] && (c == -1 || s.clock[i] < best) {
				c = i
				best = s.clock[i]
			}
		}
		if c == -1 {
			return
		}
		ref := s.gens[c].Next()
		st := &s.live[c]
		t := s.timing[c]
		instr := uint64(ref.Gap) + 1
		st.Instructions += instr
		s.clock[c] += float64(instr) * t.BaseCPI
		lat := s.access(c, ref)
		s.clock[c] += lat * t.Overlap
		st.Cycles = s.clock[c]
		if st.Instructions >= quota {
			s.frozen[c] = *st
			s.done[c] = true
		}
	}
}

func (s *SharedSystem) access(c int, ref trace.Ref) float64 {
	block := ref.Addr >> s.lineShift
	st := &s.live[c]
	st.L1Accesses++
	if _, hit := s.l1s[c].Access(block); hit {
		st.L1Hits++
		if ref.Write {
			s.writeThrough(c, block)
		}
		return 0
	}
	st.L2Accesses++
	w, hit := s.l2.Access(block)
	var lat float64
	if hit {
		line := s.l2.Line(s.l2.SetIndex(block), w)
		if ref.Write {
			s.invalidatePeerL1s(block, c)
			line.Dirty = true
			line.State = cachesim.Modified
		}
		st.L2LocalHits++
		lat = s.p.HitCycles
	} else {
		mqd := s.memPort.Request(s.clock[c])
		st.QueueDelay += mqd
		lat = s.p.MemLatencyCycles + mqd
		st.L2MemFills++
		st.OffChip++
		state := cachesim.Exclusive
		if ref.Write {
			state = cachesim.Modified
			s.invalidatePeerL1s(block, c)
		}
		ev := s.l2.Insert(block, cachesim.InsertMRU, cachesim.Line{State: state, Dirty: ref.Write, Owner: int16(c)})
		if ev.Valid() {
			// Inclusion: back-invalidate every L1.
			for i := range s.l1s {
				s.l1s[i].Invalidate(ev.Tag)
			}
			if ev.Dirty {
				mq := s.memPort.Request(s.clock[c])
				st.QueueDelay += mq
				st.Writebacks++
				st.OffChip++
			}
		}
	}
	if _, ok := s.l1s[c].Lookup(block); !ok {
		s.l1s[c].Insert(block, cachesim.InsertMRU, cachesim.Line{State: cachesim.Exclusive, Owner: int16(c)})
	}
	st.LatencySum += lat
	return lat
}

// writeThrough propagates an L1 store hit into the shared L2 and keeps peer
// L1s coherent.
func (s *SharedSystem) writeThrough(c int, block uint64) {
	w, ok := s.l2.Lookup(block)
	if !ok {
		panic(fmt.Sprintf("cmp: inclusion violated: block %#x in L1[%d] but not the shared L2", block, c))
	}
	s.invalidatePeerL1s(block, c)
	line := s.l2.Line(s.l2.SetIndex(block), w)
	line.Dirty = true
	line.State = cachesim.Modified
}

func (s *SharedSystem) invalidatePeerL1s(block uint64, c int) {
	for i := range s.l1s {
		if i != c {
			s.l1s[i].Invalidate(block)
		}
	}
}
