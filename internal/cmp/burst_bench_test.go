package cmp

import (
	"sync"
	"testing"

	"ascc/internal/policies"
	"ascc/internal/trace"
	"ascc/internal/workload"
)

// benchArenas memoises the packed reference streams across benchmark
// iterations and across the two A/B sides, mirroring the harness trace
// cache: the real BenchmarkSimulatorThroughput machine steps allocation-free
// replayers, not live generators, so the phase A/B should too.
var benchArenas struct {
	once   sync.Once
	arenas []*trace.Arena
}

// newBenchSystem builds the 4-core AVGCC mix machine that
// BenchmarkSimulatorThroughput measures end-to-end, constructed directly
// (the harness imports cmp, so cmp benchmarks cannot import the harness).
// Geometry, timing, trace replay and the AVGCC resize period mirror harness
// defaults at scale 8.
func newBenchSystem(b *testing.B) *System { return newBenchSystemOpt(b, false) }

// newBenchSystemOpt additionally lets the caller disable the batched
// below-L1 engine — the off side of the l2batch A/B.
func newBenchSystemOpt(b *testing.B, noBatch bool) *System {
	b.Helper()
	gens, profs, err := workload.BuildMix([]int{445, 444, 456, 471}, 1, 8)
	if err != nil {
		b.Fatal(err)
	}
	benchArenas.once.Do(func() {
		benchArenas.arenas = make([]*trace.Arena, len(gens))
		for i, g := range gens {
			benchArenas.arenas[i] = trace.NewArena(g)
			// Pre-generate well past what benchInstr consumes: otherwise the
			// lazy extension lands in the first declared benchmark's timed
			// region and biases every A/B pair against it.
			benchArenas.arenas[i].Extend(1_000_000)
		}
	})
	for i := range gens {
		gens[i] = benchArenas.arenas[i].NewReplayer()
	}
	tim := make([]CoreTiming, len(profs))
	for i, pr := range profs {
		tim[i] = CoreTiming{BaseCPI: pr.BaseCPI, Overlap: pr.Overlap}
	}
	p := DefaultParams(4, 8)
	p.NoL2Batch = noBatch
	sets := p.L2.SizeBytes / p.L2.LineBytes / p.L2.Ways
	cfg := policies.AVGCCDefaultConfig(4, sets, p.L2.Ways, 1)
	cfg.ResizePeriod = 100000 / 64
	pol := policies.NewASCCVariant("AVGCC", cfg)
	sys, err := New(p, gens, tim, pol)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

const benchInstr = 1_000_000

// BenchmarkPhaseBurst drives the live run-to-event engine (System.Run over
// cachesim.ReadBurst) for 1M instructions per core on the 4-core AVGCC mix.
// Its per-op time against BenchmarkPhaseRefStep is the in-binary A/B for
// the burst kernel: both run the identical machine, workload and accounting,
// differing only in the stepping loop. scripts/bench_kernel.sh interleaves
// the two and records the ratio as the "burst" block in BENCH_kernel.json.
func BenchmarkPhaseBurst(b *testing.B) {
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := newBenchSystem(b)
		b.StartTimer()
		res := sys.Run(0, benchInstr)
		for _, c := range res.Cores {
			total += c.Instructions
		}
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkPhaseNoBatch is the burst engine with the batched below-L1 path
// disabled (Params.NoL2Batch): L1 runs still resolve in-kernel, but every
// L2 demand miss pays its coherence walk, port queueing and policy calls
// inline. Against BenchmarkPhaseBurst it isolates the win of batching the
// below-L1 work (the "l2batch" block in BENCH_kernel.json); both sides
// produce bit-identical results.
func BenchmarkPhaseNoBatch(b *testing.B) {
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := newBenchSystemOpt(b, true)
		b.StartTimer()
		res := sys.Run(0, benchInstr)
		for _, c := range res.Cores {
			total += c.Instructions
		}
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkPhaseRefStep is the frozen pre-burst per-reference stepping
// loop (refstep_test.go) over the same machine — the A side of the burst
// A/B comparison.
func BenchmarkPhaseRefStep(b *testing.B) {
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := newBenchSystem(b)
		b.StartTimer()
		res := sys.refRun(0, benchInstr)
		for _, c := range res.Cores {
			total += c.Instructions
		}
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "instr/s")
}
