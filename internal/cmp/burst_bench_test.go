package cmp

import (
	"sync"
	"testing"

	"ascc/internal/policies"
	"ascc/internal/trace"
	"ascc/internal/workload"
)

// benchArenas memoises the packed reference streams across benchmark
// iterations and across the two A/B sides, mirroring the harness trace
// cache: the real BenchmarkSimulatorThroughput machine steps allocation-free
// replayers, not live generators, so the phase A/B should too.
var benchArenas struct {
	once   sync.Once
	arenas []*trace.Arena
}

// newBenchSystem builds the 4-core AVGCC mix machine that
// BenchmarkSimulatorThroughput measures end-to-end, constructed directly
// (the harness imports cmp, so cmp benchmarks cannot import the harness).
// Geometry, timing, trace replay and the AVGCC resize period mirror harness
// defaults at scale 8, running the shipped default engine.
func newBenchSystem(b *testing.B) *System { return newBenchSystemOpt(b, EngineRefStep) }

// newBenchSystemOpt additionally lets the caller pick the below-L1 engine —
// the sides of the engine A/Bs.
func newBenchSystemOpt(b *testing.B, engine Engine) *System {
	b.Helper()
	gens, profs, err := workload.BuildMix([]int{445, 444, 456, 471}, 1, 8)
	if err != nil {
		b.Fatal(err)
	}
	benchArenas.once.Do(func() {
		benchArenas.arenas = make([]*trace.Arena, len(gens))
		for i, g := range gens {
			benchArenas.arenas[i] = trace.NewArena(g)
			// Pre-generate well past what benchInstr consumes: otherwise the
			// lazy extension lands in the first declared benchmark's timed
			// region and biases every A/B pair against it.
			benchArenas.arenas[i].Extend(1_000_000)
		}
	})
	for i := range gens {
		gens[i] = benchArenas.arenas[i].NewReplayer()
	}
	tim := make([]CoreTiming, len(profs))
	for i, pr := range profs {
		tim[i] = CoreTiming{BaseCPI: pr.BaseCPI, Overlap: pr.Overlap}
	}
	p := DefaultParams(4, 8)
	p.Engine = engine
	sets := p.L2.SizeBytes / p.L2.LineBytes / p.L2.Ways
	cfg := policies.AVGCCDefaultConfig(4, sets, p.L2.Ways, 1)
	cfg.ResizePeriod = 100000 / 64
	pol := policies.NewASCCVariant("AVGCC", cfg)
	sys, err := New(p, gens, tim, pol)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

const benchInstr = 1_000_000

// BenchmarkPhaseBurst drives the shipped default engine — the per-reference
// descent (EngineRefStep) under the run-to-event burst kernel — for 1M
// instructions per core on the 4-core AVGCC mix. Its per-op time against
// BenchmarkPhaseRefStep is the in-binary A/B for the whole run-to-event
// rewrite ("burst" block in BENCH_kernel.json), and it is the descent side
// of the "l1l2fused" (vs BenchmarkPhaseFused) and "l2batch" (vs
// BenchmarkPhaseBatched) engine A/Bs: all sides run the identical machine,
// workload and accounting, differing only in the stepping.
func BenchmarkPhaseBurst(b *testing.B) {
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := newBenchSystem(b)
		b.StartTimer()
		res := sys.Run(0, benchInstr)
		for _, c := range res.Cores {
			total += c.Instructions
		}
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkPhaseFused is the fused L1→L2 engine (EngineFused, fused.go):
// clean local L2 hits are absorbed inside the burst kernel instead of
// exiting for a descent. Against BenchmarkPhaseBurst it isolates the cost
// of the fused absorption (the "l1l2fused" block in BENCH_kernel.json) —
// measured 0.85-0.96x of the descent on this mix, the structural bound
// DESIGN.md §15 documents; all engines produce bit-identical results.
func BenchmarkPhaseFused(b *testing.B) {
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := newBenchSystemOpt(b, EngineFused)
		b.StartTimer()
		res := sys.Run(0, benchInstr)
		for _, c := range res.Cores {
			total += c.Instructions
		}
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkPhaseBatched is the demoted batched turn engine (EngineBatched,
// l2batch.go), kept measurable so its 0.918-0.936x regression against
// EngineRefStep stays on record (the "l2batch" block in BENCH_kernel.json).
func BenchmarkPhaseBatched(b *testing.B) {
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := newBenchSystemOpt(b, EngineBatched)
		b.StartTimer()
		res := sys.Run(0, benchInstr)
		for _, c := range res.Cores {
			total += c.Instructions
		}
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkPhaseRefStep is the frozen pre-burst per-reference stepping
// loop (refstep_test.go) over the same machine — the A side of the burst
// A/B comparison.
func BenchmarkPhaseRefStep(b *testing.B) {
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := newBenchSystem(b)
		b.StartTimer()
		res := sys.refRun(0, benchInstr)
		for _, c := range res.Cores {
			total += c.Instructions
		}
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "instr/s")
}
