package cmp

import "math"

// This file freezes the pre-burst per-reference stepping loop — the
// runPhase body that shipped with the batched-generation rewrite — as the
// differential oracle for the run-to-event burst kernel. It is verbatim
// except for the mechanical refs/refPos -> trace.Batch cursor rename, and
// it must NOT be "improved": FuzzBurstEquivalence and the phase benchmark
// compare the live engine against exactly this stepping.

// refRunPhase advances every core to the quota, one reference at a time:
// per reference it publishes the core clock twice, calls the general
// access path and updates CoreStats field by field.
func (s *System) refRunPhase(quota uint64) {
	n := s.p.Cores
	for {
		// Rescan the frontier: the smallest clock (lowest index winning
		// ties) and the second-smallest value.
		c := -1
		best := 0.0
		second := math.Inf(1)
		for i := 0; i < n; i++ {
			if s.done[i] {
				continue
			}
			ci := s.clock[i]
			switch {
			case c == -1:
				c, best = i, ci
			case ci < best:
				c, best, second = i, ci, best
			case ci < second:
				second = ci
			}
		}
		if c < 0 {
			return
		}
		// Step the minimum core until it crosses the runner-up or retires.
		st := &s.live[c]
		t := s.timing[c]
		gen := s.gens[c]
		bt := &s.batches[c]
		clock := s.clock[c]
		for {
			if bt.Empty() {
				bt.Refill(gen)
			}
			ref := bt.Refs[bt.Pos]
			bt.Pos++
			instr := uint64(ref.Gap) + 1
			st.Instructions += instr
			clock += float64(instr) * t.BaseCPI
			// The access path reads s.clock[c] (bus and memory queueing), so
			// the local clock is published before descending.
			s.clock[c] = clock
			lat := s.access(c, ref)
			clock += lat * t.Overlap
			s.clock[c] = clock
			st.Cycles = clock
			if st.Instructions >= quota {
				s.frozen[c] = *st
				s.done[c] = true
				break
			}
			if clock >= second {
				break
			}
		}
	}
}

// refRun mirrors System.Run over the frozen stepping loop.
func (s *System) refRun(warmup, instrPerCore uint64) Results {
	if warmup > 0 {
		s.refRunPhase(warmup)
		for i := range s.live {
			s.live[i] = CoreStats{}
			s.clock[i] = 0
			s.done[i] = false
		}
		s.bus.Reset()
		s.memPort.Reset()
	}
	s.refRunPhase(instrPerCore)
	res := Results{Policy: s.policy.Name(), Cores: make([]CoreStats, s.p.Cores)}
	copy(res.Cores, s.frozen)
	return res
}
