package cmp

import (
	"testing"
	"testing/quick"

	"ascc/internal/cachesim"
	"ascc/internal/coop"
	"ascc/internal/policies"
	"ascc/internal/rng"
	"ascc/internal/trace"
)

// randGen produces a randomised but deterministic reference pattern that
// mixes small loops, shared blocks and writes — enough to exercise every
// engine path.
type randGen struct {
	r *rng.Xoshiro256
}

func (g *randGen) Name() string { return "rand" }

func (g *randGen) NextBatch(buf []trace.Ref) { trace.FillBatch(g, buf) }
func (g *randGen) Next() trace.Ref {
	// Blocks 0..63 are shared across cores; a per-core region sits higher.
	var addr uint64
	switch g.r.Intn(3) {
	case 0:
		addr = uint64(g.r.Intn(64)) * 32
	case 1:
		addr = 1<<20 + uint64(g.r.Intn(256))*32
	default:
		addr = 1<<30 + uint64(g.r.Intn(4096))*32
	}
	return trace.Ref{
		Addr:  addr,
		Write: g.r.Bernoulli(0.25),
		Gap:   int32(g.r.Intn(8)),
	}
}

// checkSystemInvariants verifies the structural invariants every run must
// uphold regardless of policy:
//  1. inclusion: every L1 line is present in the same core's L2;
//  2. single-writer: a dirty block lives in at most one L2;
//  3. conservation: local hits + remote hits + memory fills = L2 accesses.
func checkSystemInvariants(t *testing.T, sys *System, res Results, label string) {
	t.Helper()
	cores := len(res.Cores)
	for c := 0; c < cores; c++ {
		c := c
		sys.l1s[c].ForEachLine(func(si, w int, l *cachesim.Line) {
			if _, ok := sys.l2s[c].Lookup(l.Tag); !ok {
				t.Errorf("%s: core %d: inclusion violated for block %#x", label, c, l.Tag)
			}
		})
	}
	dirty := map[uint64]int{}
	for c := 0; c < cores; c++ {
		sys.l2s[c].ForEachLine(func(si, w int, l *cachesim.Line) {
			if l.Dirty {
				dirty[l.Tag]++
			}
		})
	}
	for tag, n := range dirty {
		if n > 1 {
			t.Errorf("%s: dirty block %#x in %d caches", label, tag, n)
		}
	}
	for i, c := range res.Cores {
		if c.L2Accesses != c.L2LocalHits+c.L2RemoteHits+c.L2MemFills {
			t.Errorf("%s: core %d: conservation broken (%d != %d+%d+%d)",
				label, i, c.L2Accesses, c.L2LocalHits, c.L2RemoteHits, c.L2MemFills)
		}
	}
}

// TestEngineInvariantsAcrossPolicies fuzzes every policy with randomised
// shared/private reference mixes and checks the structural invariants.
func TestEngineInvariantsAcrossPolicies(t *testing.T) {
	mkPolicies := func(cores, sets, ways int, seed uint64) []coop.Policy {
		return []coop.Policy{
			policies.NewBaseline(),
			policies.NewCC(cores, seed),
			policies.NewDSR(cores, sets, ways, seed),
			policies.NewDSRDIP(cores, sets, ways, seed),
			policies.NewDSR3S(cores, sets, ways, seed),
			policies.NewECC(cores, sets, ways, seed),
			policies.NewASCC(cores, sets, ways, seed),
			policies.NewASCC2S(cores, sets, ways, seed),
			policies.NewAVGCC(cores, sets, ways, seed),
			policies.NewQoSAVGCC(cores, sets, ways, seed),
			policies.NewLRS(cores, sets, ways, seed),
		}
	}
	f := func(seed uint64) bool {
		p := tinyParams(3)
		sets := p.L2.SizeBytes / p.L2.LineBytes / p.L2.Ways
		ok := true
		for _, pol := range mkPolicies(3, sets, p.L2.Ways, seed) {
			gens := make([]trace.Generator, 3)
			for i := range gens {
				gens[i] = &randGen{r: rng.New(rng.Mix64(seed + uint64(i)))}
			}
			sys, err := New(p, gens, evenTiming(3), pol)
			if err != nil {
				t.Errorf("%s: %v", pol.Name(), err)
				return false
			}
			res := sys.Run(2000, 6000)
			before := t.Failed()
			checkSystemInvariants(t, sys, res, pol.Name())
			if !before && t.Failed() {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestPrefetchInvariants runs the fuzz with the prefetcher enabled.
func TestPrefetchInvariants(t *testing.T) {
	p := tinyParams(2)
	p.Prefetch = true
	p.PrefetchEntries = 64
	p.PrefetchDegree = 2
	sets := p.L2.SizeBytes / p.L2.LineBytes / p.L2.Ways
	gens := []trace.Generator{
		&randGen{r: rng.New(1)},
		&randGen{r: rng.New(2)},
	}
	sys, _ := New(p, gens, evenTiming(2), policies.NewAVGCC(2, sets, p.L2.Ways, 3))
	res := sys.Run(3000, 9000)
	checkSystemInvariants(t, sys, res, "AVGCC+prefetch")
}
