package cmp

import (
	"testing"

	"ascc/internal/cachesim"
	"ascc/internal/mem"
	"ascc/internal/policies"
	"ascc/internal/trace"
	"ascc/internal/workload"
)

// scriptGen replays a fixed reference pattern forever.
type scriptGen struct {
	name string
	refs []trace.Ref
	i    int
}

func (g *scriptGen) Name() string { return g.name }
func (g *scriptGen) Next() trace.Ref {
	r := g.refs[g.i%len(g.refs)]
	g.i++
	return r
}
func (g *scriptGen) NextBatch(buf []trace.Ref) { trace.FillBatch(g, buf) }

// loopRefs builds a cyclic read loop over n blocks that all map to L2 set
// `set` of a cache with `sets` sets (block = set + i*sets), with the given
// instruction gap.
func loopRefs(set, sets, n int, gap int32) []trace.Ref {
	refs := make([]trace.Ref, n)
	for i := range refs {
		refs[i] = trace.Ref{Addr: uint64(set+i*sets) * 32, Gap: gap}
	}
	return refs
}

// tinyParams is a small machine for fast, precise tests:
// L1 = 128 B / 2-way (2 sets), L2 = 512 B / 4-way (4 sets).
func tinyParams(cores int) Params {
	return Params{
		Cores:             cores,
		L1:                cachesim.Config{SizeBytes: 128, Ways: 2, LineBytes: 32},
		L2:                cachesim.Config{SizeBytes: 512, Ways: 4, LineBytes: 32},
		L2LocalHitCycles:  9,
		L2RemoteHitCycles: 25,
		MemLatencyCycles:  460,
		BusOccupancy:      0,
		MemOccupancy:      0,
	}
}

func evenTiming(cores int) []CoreTiming {
	t := make([]CoreTiming, cores)
	for i := range t {
		t[i] = CoreTiming{BaseCPI: 1, Overlap: 0.5}
	}
	return t
}

func TestNewValidation(t *testing.T) {
	p := tinyParams(2)
	gens := []trace.Generator{
		&scriptGen{name: "a", refs: loopRefs(0, 4, 2, 3)},
		&scriptGen{name: "b", refs: loopRefs(1, 4, 2, 3)},
	}
	if _, err := New(p, gens[:1], evenTiming(2), policies.NewBaseline()); err == nil {
		t.Fatal("mismatched generator count accepted")
	}
	if _, err := New(p, gens, evenTiming(2), nil); err == nil {
		t.Fatal("nil policy accepted")
	}
	bad := p
	bad.L1.LineBytes = 64
	if _, err := New(bad, gens, evenTiming(2), policies.NewBaseline()); err == nil {
		t.Fatal("mismatched line sizes accepted")
	}
	if _, err := New(p, gens, evenTiming(2), policies.NewBaseline()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestAccessConservation(t *testing.T) {
	// Local hits + remote hits + memory fills must equal L2 demand accesses.
	p := tinyParams(2)
	gens := []trace.Generator{
		&scriptGen{name: "a", refs: loopRefs(0, 4, 8, 2)},
		&scriptGen{name: "b", refs: loopRefs(1, 4, 3, 2)},
	}
	sys, err := New(p, gens, evenTiming(2), policies.NewBaseline())
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run(0, 5000)
	for i, c := range res.Cores {
		if c.L2Accesses != c.L2LocalHits+c.L2RemoteHits+c.L2MemFills {
			t.Errorf("core %d: %d accesses != %d + %d + %d", i,
				c.L2Accesses, c.L2LocalHits, c.L2RemoteHits, c.L2MemFills)
		}
		if c.Instructions < 5000 {
			t.Errorf("core %d committed %d instructions, want >= 5000", i, c.Instructions)
		}
		if c.Cycles <= 0 {
			t.Errorf("core %d has non-positive cycles", i)
		}
	}
}

func TestBaselineMultiprogrammedHasNoRemoteHits(t *testing.T) {
	// Disjoint address spaces, no spilling: nothing can hit remotely.
	p := tinyParams(2)
	gens := []trace.Generator{
		&scriptGen{name: "a", refs: loopRefs(0, 4, 8, 2)},
		&scriptGen{name: "b", refs: []trace.Ref{{Addr: 1 << 20, Gap: 2}}},
	}
	sys, _ := New(p, gens, evenTiming(2), policies.NewBaseline())
	res := sys.Run(0, 5000)
	for i, c := range res.Cores {
		if c.L2RemoteHits != 0 || c.SpillsOut != 0 || c.SpillsIn != 0 {
			t.Errorf("core %d: remote=%d spillsOut=%d spillsIn=%d under baseline", i,
				c.L2RemoteHits, c.SpillsOut, c.SpillsIn)
		}
	}
}

func TestInclusionInvariant(t *testing.T) {
	p := tinyParams(2)
	gens := []trace.Generator{
		&scriptGen{name: "a", refs: loopRefs(0, 4, 8, 1)},
		&scriptGen{name: "b", refs: loopRefs(2, 4, 6, 1)},
	}
	sys, _ := New(p, gens, evenTiming(2), policies.NewASCC(2, 4, 4, 1))
	sys.Run(0, 3000)
	// Every valid L1 line must be present in the same core's L2.
	for c := 0; c < 2; c++ {
		sys.l1s[c].ForEachLine(func(si, w int, l *cachesim.Line) {
			if _, ok := sys.l2s[c].Lookup(l.Tag); !ok {
				t.Errorf("core %d: L1 line %#x not in its L2 (inclusion violated)", c, l.Tag)
			}
		})
	}
}

func TestDirtySingleCopyInvariant(t *testing.T) {
	// A dirty line must exist in exactly one L2 (MESI single-writer).
	p := tinyParams(2)
	w := []trace.Ref{
		{Addr: 0, Write: true, Gap: 1}, {Addr: 128, Gap: 1}, {Addr: 256, Write: true, Gap: 1},
		{Addr: 32, Gap: 1}, {Addr: 64, Write: true, Gap: 1}, {Addr: 384, Gap: 1},
	}
	gens := []trace.Generator{
		&scriptGen{name: "a", refs: w},
		&scriptGen{name: "b", refs: w}, // same addresses: real sharing
	}
	sys, _ := New(p, gens, evenTiming(2), policies.NewBaseline())
	sys.Run(0, 3000)
	count := map[uint64]int{}
	for c := 0; c < 2; c++ {
		sys.l2s[c].ForEachLine(func(si, wy int, l *cachesim.Line) {
			if l.Dirty {
				count[l.Tag]++
			}
		})
	}
	for tag, n := range count {
		if n > 1 {
			t.Errorf("dirty block %#x present in %d caches", tag, n)
		}
	}
}

func TestSharedReadsReplicate(t *testing.T) {
	// Two cores reading the same small set of lines must end up with remote
	// hits (first access) and then local hits on their own S copies.
	p := tinyParams(2)
	refs := []trace.Ref{{Addr: 0, Gap: 1}, {Addr: 32, Gap: 1}, {Addr: 64, Gap: 1}}
	gens := []trace.Generator{
		&scriptGen{name: "a", refs: refs},
		&scriptGen{name: "b", refs: refs},
	}
	sys, _ := New(p, gens, evenTiming(2), policies.NewBaseline())
	res := sys.Run(0, 2000)
	remote := res.Cores[0].L2RemoteHits + res.Cores[1].L2RemoteHits
	if remote == 0 {
		t.Fatal("no remote hits on a shared read workload")
	}
	// Steady state: both caches hold S copies, so L1/L2 local hits dominate.
	local := res.Cores[0].L1Hits + res.Cores[1].L1Hits
	if local == 0 {
		t.Fatal("shared lines never became locally cached")
	}
}

func TestASCCSpillsFromTakerToGiver(t *testing.T) {
	// Core 0 thrashes set 0 with 8 blocks (> 4 ways); core 1 only touches
	// set 2. Under ASCC core 0's set 0 saturates and spills into core 1's
	// idle set 0; the spilled lines then serve remote hits.
	p := tinyParams(2)
	mk := func() []trace.Generator {
		return []trace.Generator{
			&scriptGen{name: "taker", refs: loopRefs(0, 4, 8, 2)},
			&scriptGen{name: "giver", refs: loopRefs(2, 4, 2, 2)},
		}
	}
	base, _ := New(tinyParams(2), mk(), evenTiming(2), policies.NewBaseline())
	baseRes := base.Run(0, 20000)

	sys, _ := New(p, mk(), evenTiming(2), policies.NewASCC(2, 4, 4, 1))
	res := sys.Run(0, 20000)

	if res.Cores[0].SpillsOut == 0 {
		t.Fatal("ASCC never spilled from the thrashing cache")
	}
	if res.Cores[0].L2RemoteHits+res.Cores[0].Swaps == 0 {
		t.Fatal("spilled lines never produced remote hits or swaps")
	}
	if got, want := res.Cores[0].LocalMPKI(), baseRes.Cores[0].LocalMPKI(); got >= want {
		t.Fatalf("ASCC off-chip MPKI %.2f not better than baseline %.2f", got, want)
	}
	if res.Cores[0].CPI() >= baseRes.Cores[0].CPI() {
		t.Fatalf("ASCC CPI %.3f not better than baseline %.3f", res.Cores[0].CPI(), baseRes.Cores[0].CPI())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Results {
		gens, profs, err := workload.BuildMix([]int{445, 456}, 42, 8)
		if err != nil {
			t.Fatal(err)
		}
		timing := make([]CoreTiming, 2)
		for i, pr := range profs {
			timing[i] = CoreTiming{BaseCPI: pr.BaseCPI, Overlap: pr.Overlap}
		}
		sys, err := New(DefaultParams(2, 8), gens, timing, policies.NewASCC(2, 512, 8, 7))
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run(5000, 40000)
	}
	a, b := run(), run()
	for i := range a.Cores {
		if a.Cores[i] != b.Cores[i] {
			t.Fatalf("run not deterministic: core %d %+v vs %+v", i, a.Cores[i], b.Cores[i])
		}
	}
}

func TestWritebacksHappen(t *testing.T) {
	// A write-heavy stream larger than the L2 must produce dirty
	// writebacks.
	p := tinyParams(1)
	refs := make([]trace.Ref, 64)
	for i := range refs {
		refs[i] = trace.Ref{Addr: uint64(i) * 32, Write: true, Gap: 2}
	}
	gens := []trace.Generator{&scriptGen{name: "w", refs: refs}}
	sys, _ := New(p, gens, evenTiming(1), policies.NewBaseline())
	res := sys.Run(0, 5000)
	if res.Cores[0].Writebacks == 0 {
		t.Fatal("no writebacks from a write stream exceeding the L2")
	}
	if res.Cores[0].OffChip <= res.Cores[0].L2MemFills {
		t.Fatal("off-chip count does not include writebacks")
	}
}

func TestStatsFreezeAtQuota(t *testing.T) {
	// A fast core freezes at its quota while the slow core keeps going; the
	// frozen instruction count must be close to the quota, not the total.
	p := tinyParams(2)
	gens := []trace.Generator{
		&scriptGen{name: "fast", refs: []trace.Ref{{Addr: 0, Gap: 0}}},
		&scriptGen{name: "slow", refs: []trace.Ref{{Addr: 1 << 20, Gap: 99}}},
	}
	timing := []CoreTiming{{BaseCPI: 0.5, Overlap: 0.1}, {BaseCPI: 2, Overlap: 1}}
	sys, _ := New(p, gens, timing, policies.NewBaseline())
	res := sys.Run(0, 10000)
	for i, c := range res.Cores {
		if c.Instructions < 10000 || c.Instructions > 10000+100 {
			t.Errorf("core %d frozen at %d instructions, want ~10000", i, c.Instructions)
		}
	}
}

func TestWarmupDiscardsColdMisses(t *testing.T) {
	// With warmup, a loop fitting in the L2 should measure (almost) no
	// memory fills; without warmup the cold misses show.
	p := tinyParams(1)
	mk := func() []trace.Generator {
		return []trace.Generator{&scriptGen{name: "fit", refs: loopRefs(0, 4, 3, 2)}}
	}
	cold, _ := New(p, mk(), evenTiming(1), policies.NewBaseline())
	coldRes := cold.Run(0, 3000)
	warm, _ := New(p, mk(), evenTiming(1), policies.NewBaseline())
	warmRes := warm.Run(1000, 3000)
	if warmRes.Cores[0].L2MemFills >= coldRes.Cores[0].L2MemFills {
		t.Fatalf("warmup did not reduce cold misses: %d vs %d",
			warmRes.Cores[0].L2MemFills, coldRes.Cores[0].L2MemFills)
	}
	if warmRes.Cores[0].L2MemFills != 0 {
		t.Fatalf("fitting loop still misses after warmup: %d", warmRes.Cores[0].L2MemFills)
	}
}

func TestPrefetcherReducesStreamMisses(t *testing.T) {
	p := tinyParams(1)
	mkStream := func() []trace.Generator {
		refs := make([]trace.Ref, 4096)
		for i := range refs {
			refs[i] = trace.Ref{Addr: uint64(i) * 32, Gap: 3}
		}
		return []trace.Generator{&scriptGen{name: "stream", refs: refs}}
	}
	base, _ := New(p, mkStream(), evenTiming(1), policies.NewBaseline())
	baseRes := base.Run(0, 8000)

	pp := p
	pp.Prefetch = true
	pp.PrefetchEntries = 64
	pp.PrefetchDegree = 2
	pf, _ := New(pp, mkStream(), evenTiming(1), policies.NewBaseline())
	pfRes := pf.Run(0, 8000)

	if pfRes.Cores[0].PrefIssued == 0 || pfRes.Cores[0].PrefUseful == 0 {
		t.Fatalf("prefetcher idle on a pure stream: %+v", pfRes.Cores[0])
	}
	if pfRes.Cores[0].L2MemFills >= baseRes.Cores[0].L2MemFills {
		t.Fatalf("prefetching did not reduce demand fills: %d vs %d",
			pfRes.Cores[0].L2MemFills, baseRes.Cores[0].L2MemFills)
	}
}

func TestMemoryPortContentionAddsLatency(t *testing.T) {
	// Two streaming cores over a busy memory port must see queueing delay.
	p := tinyParams(2)
	p.MemOccupancy = 64
	mk := func(base uint64) trace.Generator {
		refs := make([]trace.Ref, 1024)
		for i := range refs {
			refs[i] = trace.Ref{Addr: base + uint64(i)*32, Gap: 0}
		}
		return &scriptGen{name: "s", refs: refs}
	}
	sys, _ := New(p, []trace.Generator{mk(0), mk(1 << 30)}, evenTiming(2), policies.NewBaseline())
	res := sys.Run(0, 2000)
	if res.Cores[0].QueueDelay+res.Cores[1].QueueDelay == 0 {
		t.Fatal("no queueing delay despite saturated memory port")
	}
}

func TestCPIAndAMLAccounting(t *testing.T) {
	// Single reference pattern with known outcome: all L2 accesses miss to
	// memory with no contention => AML == MemLatencyCycles.
	p := tinyParams(1)
	refs := make([]trace.Ref, 8192)
	for i := range refs {
		refs[i] = trace.Ref{Addr: uint64(i) * 64, Gap: 9} // stride 2 blocks: no L1 reuse
	}
	gens := []trace.Generator{&scriptGen{name: "m", refs: refs}}
	sys, _ := New(p, gens, []CoreTiming{{BaseCPI: 1, Overlap: 0.5}}, policies.NewBaseline())
	res := sys.Run(0, 20000)
	c := res.Cores[0]
	if c.AML() != 460 {
		t.Fatalf("AML = %v, want 460 (all memory)", c.AML())
	}
	// CPI = 1 (base) + stalls: each ref is 10 instructions, stall 460*0.5.
	wantCPI := 1.0 + 460.0*0.5/10.0
	if got := c.CPI(); got < wantCPI*0.95 || got > wantCPI*1.05 {
		t.Fatalf("CPI = %v, want ~%v", got, wantCPI)
	}
	if c.MPKI() == 0 || c.LocalMPKI() == 0 {
		t.Fatal("MPKI accounting broken")
	}
}

func TestResultsAggregates(t *testing.T) {
	r := Results{Cores: []CoreStats{
		{OffChip: 10, L2Accesses: 100, SpillsIn: 5, BusTransfers: 20},
		{OffChip: 7, L2Accesses: 50, SpillsIn: 0, BusTransfers: 10},
	}}
	if r.TotalOffChip() != 17 {
		t.Fatalf("TotalOffChip = %d", r.TotalOffChip())
	}
	e := r.Energy(mem.Energy{L2Access: 1, BusXfer: 2, DRAM: 30})
	// l2 = 100+5+50 = 155, bus = 30, dram = 17 => 155 + 60 + 510.
	if e != 155+60+510 {
		t.Fatalf("energy = %v, want 725", e)
	}
}

func TestSharedSystemRuns(t *testing.T) {
	sp := DefaultSharedParams(2, 8)
	gens, profs, err := workload.BuildMix([]int{445, 456}, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	timing := make([]CoreTiming, 2)
	for i, pr := range profs {
		timing[i] = CoreTiming{BaseCPI: pr.BaseCPI, Overlap: pr.Overlap}
	}
	sys, err := NewShared(sp, gens, timing)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run(2000, 20000)
	if res.Policy != "shared-LLC" {
		t.Fatalf("policy name %q", res.Policy)
	}
	for i, c := range res.Cores {
		if c.L2Accesses != c.L2LocalHits+c.L2MemFills {
			t.Errorf("core %d: shared conservation broken: %+v", i, c)
		}
		if c.Instructions < 20000 {
			t.Errorf("core %d under quota", i)
		}
	}
	// The shared hit latency must follow the ~2x rule for 2 cores.
	if sp.HitCycles != 18 {
		t.Fatalf("2-core shared hit latency %v, want 18", sp.HitCycles)
	}
	if DefaultSharedParams(4, 8).HitCycles != 36 {
		t.Fatalf("4-core shared hit latency %v, want 36", DefaultSharedParams(4, 8).HitCycles)
	}
}

func TestDefaultParamsScaling(t *testing.T) {
	p1 := DefaultParams(4, 1)
	if p1.L2.SizeBytes != 1024*1024 || p1.L1.SizeBytes != 32*1024 {
		t.Fatalf("scale-1 geometry wrong: %+v", p1)
	}
	p8 := DefaultParams(4, 8)
	if p8.L2.SizeBytes != 128*1024 || p8.L1.SizeBytes != 4*1024 {
		t.Fatalf("scale-8 geometry wrong: %+v", p8)
	}
	if err := p8.Validate(); err != nil {
		t.Fatal(err)
	}
	if cachesim.New(p8.L2).NumSets() != 512 {
		t.Fatal("scale-8 L2 should have 512 sets")
	}
}
