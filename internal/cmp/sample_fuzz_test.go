package cmp

import (
	"reflect"
	"testing"

	"ascc/internal/cachesim"
	"ascc/internal/coop"
	"ascc/internal/policies"
	"ascc/internal/trace"
)

// sampleFuzzParams is the sampling fuzz machine: L1 = 512 B / 2-way (8 sets,
// so the sample granule is 8 residues and denominators 2 and 4 both divide
// it), L2 = 4 KiB / 4-way (32 sets). Nonzero port occupancies keep the bus
// and memory queues in play.
func sampleFuzzParams(cores int) Params {
	p := tinyParams(cores)
	p.L1 = cachesim.Config{SizeBytes: 512, Ways: 2, LineBytes: 32}
	p.L2 = cachesim.Config{SizeBytes: 4096, Ways: 4, LineBytes: 32}
	p.BusOccupancy = 2
	p.MemOccupancy = 8
	return p
}

// samplePolicy builds the full-geometry policy variant `kind%3` — both arms
// construct it identically (same seeds, same full set count), so any state
// divergence can only come from the engines or the set translation.
func samplePolicy(kind, cores, sets, ways int) coop.Policy {
	switch kind % 3 {
	case 1:
		cfg := policies.AVGCCDefaultConfig(cores, sets, ways, 1)
		cfg.ResizePeriod = 50
		return policies.NewASCCVariant("AVGCC", cfg)
	case 2:
		return policies.NewDSR(cores, sets, ways, 1)
	}
	return policies.NewBaseline()
}

// FuzzSampleEquivalence is the exactness wall for the set-sampled fast path
// (DESIGN.md §16). Two arms consume the same filtered reference stream: the
// sampled arm runs the compact 1/den machine (every engine — per-reference,
// fused, batched, and the fused engine under speculative parallelism)
// against spec.View (filter + gap merge + address rewrite); the oracle arm
// runs the frozen per-reference stepping on the FULL geometry against
// spec.FilterView (same filter and gap merge, original addresses). The
// sample-closure argument says these are the same computation under an
// injective renaming of sets and blocks, so the wall demands bit-identical
// raw results, core clocks, batch cursors, and complete per-set cache state
// (tags compared through UnrewriteBlock) — and that the oracle's unsampled
// sets saw zero traffic, which is the filter doing its job. The inputs
// vary the denominator, core count, policy (baseline / AVGCC with a short
// resize period / DSR), warmup cut, and per-core scripts over a 64-block
// space with stores and variable instruction gaps.
func FuzzSampleEquivalence(f *testing.F) {
	f.Add([]byte("sample-closure-seed"))
	// Leader traffic: single core, AVGCC, den=4 (residues {0,1}) — every
	// reference lands in a monitor residue, driving the resize machinery
	// through the translation wrapper.
	f.Add([]byte{
		0, 1, 1, 9, 1,
		0, 1, 0, 1, 2, 1, 8, 3, 0, 9, 1, 1, 16, 0, 0, 17, 5, 0,
		24, 1, 1, 25, 2, 0, 32, 1, 0, 33, 1, 1, 40, 2, 0, 41, 1, 0,
	})
	// Cross-core sharing: three cores, DSR, den=2, overlapping blocks so
	// remote hits, spills and invalidations cross the sampled directory.
	f.Add([]byte{
		2, 0, 2, 40, 3,
		4, 1, 1, 12, 1, 0, 20, 1, 0, 4, 2, 1, 12, 2, 0, 20, 2, 1,
		4, 1, 0, 12, 1, 1, 20, 1, 0, 4, 2, 0, 12, 2, 1, 20, 2, 0,
		4, 1, 1, 12, 1, 0, 20, 1, 1, 4, 2, 1, 12, 2, 0, 20, 2, 1,
	})
	// Quota/resize boundaries: two cores, AVGCC, warmup on, large gaps so
	// the instruction quota lands mid-gap and the merged-gap accounting at
	// the warmup and measure cuts is exercised.
	f.Add([]byte{
		1, 1, 1, 5, 5,
		0, 7, 0, 8, 7, 1, 16, 7, 0, 24, 7, 1, 32, 7, 0, 40, 7, 1,
		1, 6, 1, 9, 6, 0, 17, 6, 1, 25, 6, 0, 33, 6, 1, 41, 6, 0,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			t.Skip()
		}
		cores := 1 + int(data[0]%3)
		den := 2 << (data[1] % 2) // 1/2 or 1/4 of the 8-residue granule
		polKind := int(data[2] % 3)
		quota := 100 + uint64(data[3])*16
		warmup := uint64(0)
		if data[4]%2 == 1 {
			warmup = quota / 3
		}
		simPar := int(data[4]>>2) % 4

		p := sampleFuzzParams(cores)
		p.SampleDen = den
		spec, err := p.SampleSpec()
		if err != nil {
			t.Fatal(err)
		}

		body := data[5:]
		per := len(body) / (3 * cores)
		if per == 0 {
			t.Skip()
		}
		script := func(core int) *scriptGen {
			refs := make([]trace.Ref, per)
			for i := range refs {
				b := body[(core*per+i)*3:]
				refs[i] = trace.Ref{
					Addr:  uint64(b[0]%64) * 32,
					Gap:   int32(b[1] % 8),
					Write: b[2]&1 == 1,
				}
			}
			return &scriptGen{name: "fuzz", refs: refs}
		}
		for c := 0; c < cores; c++ {
			kept := false
			for _, r := range script(c).refs {
				kept = kept || spec.Keep(r.Addr)
			}
			if !kept {
				t.Skip() // this core's filtered view would spin forever
			}
		}
		timing := make([]CoreTiming, cores)
		for i := range timing {
			timing[i] = CoreTiming{BaseCPI: 1 + float64((int(data[0])+i)%3)/2, Overlap: 0.5}
		}
		l2Sets := p.L2.SizeBytes / p.L2.LineBytes / p.L2.Ways

		build := func(engine Engine, simParallel, sampleDen int) *System {
			pv := p
			pv.Engine = engine
			pv.SimParallel = simParallel
			pv.SampleDen = sampleDen
			gens := make([]trace.Generator, cores)
			for i := range gens {
				if sampleDen > 1 {
					gens[i] = spec.View(script(i))
				} else {
					gens[i] = spec.FilterView(script(i))
				}
			}
			sys, err := New(pv, gens, timing, samplePolicy(polKind, cores, l2Sets, p.L2.Ways))
			if err != nil {
				t.Fatal(err)
			}
			return sys
		}

		arms := []struct {
			name string
			sys  *System
		}{
			{"sampled/refstep", build(EngineRefStep, 0, den)},
			{"sampled/fused", build(EngineFused, 0, den)},
			{"sampled/batched", build(EngineBatched, 0, den)},
		}
		if simPar > 1 {
			arms = append(arms, struct {
				name string
				sys  *System
			}{"sampled/fused-parallel", build(EngineFused, simPar, den)})
		}
		oracle := build(EngineRefStep, 0, 0)
		wantRes := oracle.refRun(warmup, quota)

		for _, arm := range arms {
			gotRes := arm.sys.Run(warmup, quota)
			if !reflect.DeepEqual(gotRes, wantRes) {
				t.Errorf("results diverge:\n%s: %+v\nfull-filtered: %+v", arm.name, gotRes, wantRes)
			}
			for i := 0; i < cores; i++ {
				if arm.sys.clock[i] != oracle.clock[i] {
					t.Errorf("core %d clock: %s %v, full-filtered %v", i, arm.name, arm.sys.clock[i], oracle.clock[i])
				}
				if arm.sys.batches[i].Pos != oracle.batches[i].Pos {
					t.Errorf("core %d batch cursor: %s %d, full-filtered %d",
						i, arm.name, arm.sys.batches[i].Pos, oracle.batches[i].Pos)
				}
				compareSampledCaches(t, "L1/"+arm.name, i, spec, arm.sys.l1s[i], oracle.l1s[i], true)
				compareSampledCaches(t, "L2/"+arm.name, i, spec, arm.sys.L2(i), oracle.L2(i), false)
			}
		}

		// The filter's other half: the oracle ran the full machine, so every
		// set outside the sample must be untouched.
		for i := 0; i < cores; i++ {
			checkUnsampledQuiet(t, "L1", i, spec, oracle.l1s[i], true)
			checkUnsampledQuiet(t, "L2", i, spec, oracle.L2(i), false)
		}

		// The shared-LLC machine samples with the same spec (its aggregate
		// set count keeps the residue granule), so it gets its own two-arm
		// wall. The aggregate must stay a power of two, hence the core-count
		// guard; OrigSet is pure residue arithmetic, so it maps the larger
		// compact shared L2 back to full shared sets unchanged.
		if cores&(cores-1) == 0 {
			buildShared := func(sampleDen int) *SharedSystem {
				sp := SharedParams{
					Cores: cores,
					L1:    p.L1,
					L2: cachesim.Config{
						SizeBytes: p.L2.SizeBytes * cores,
						Ways:      p.L2.Ways,
						LineBytes: p.L2.LineBytes,
					},
					HitCycles:        2 * p.L2LocalHitCycles,
					MemLatencyCycles: p.MemLatencyCycles,
					MemOccupancy:     p.MemOccupancy,
					SampleDen:        sampleDen,
				}
				gens := make([]trace.Generator, cores)
				for i := range gens {
					if sampleDen > 1 {
						gens[i] = spec.View(script(i))
					} else {
						gens[i] = spec.FilterView(script(i))
					}
				}
				sys, err := NewShared(sp, gens, timing)
				if err != nil {
					t.Fatal(err)
				}
				return sys
			}
			sharedArm := buildShared(den)
			sharedOracle := buildShared(0)
			got, want := sharedArm.Run(warmup, quota), sharedOracle.Run(warmup, quota)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("shared results diverge:\nsampled: %+v\nfull-filtered: %+v", got, want)
			}
			for i := 0; i < cores; i++ {
				compareSampledCaches(t, "sharedL1", i, spec, sharedArm.l1s[i], sharedOracle.l1s[i], true)
				checkUnsampledQuiet(t, "sharedL1", i, spec, sharedOracle.l1s[i], true)
			}
			compareSampledCaches(t, "sharedL2", 0, spec, sharedArm.l2, sharedOracle.l2, false)
			for si := 0; si < sharedOracle.l2.NumSets(); si++ {
				if spec.KeepBlock(uint64(si)) {
					continue
				}
				if st := sharedOracle.l2.SetStatsFor(si); st != (cachesim.SetStats{}) {
					t.Errorf("shared L2 unsampled set %d saw traffic: %+v", si, st)
				}
			}
		}
	})
}

// origSetOf maps a compact set index to the corresponding full-geometry set:
// the sampled residue itself for the L1 (whose set count is the granule),
// the un-compacted L2 index otherwise.
func origSetOf(spec *trace.SampleSpec, cs int, l1 bool) int {
	if l1 {
		return spec.OrigL1Set(cs)
	}
	return spec.OrigSet(cs)
}

// compareSampledCaches demands that the compact machine's cache state is the
// full machine's state at the sampled sets under the address renaming:
// identical per-set counters and recency stacks, and way-for-way identical
// lines with tags compared through UnrewriteBlock (a valid compact line's
// tag is the rewritten block; stale tags on invalidated lines are ignored).
func compareSampledCaches(t *testing.T, level string, core int, spec *trace.SampleSpec, sampled, full *cachesim.Cache, l1 bool) {
	t.Helper()
	sets, ways := sampled.NumSets(), sampled.Ways()
	for cs := 0; cs < sets; cs++ {
		os := origSetOf(spec, cs, l1)
		if sa, sb := sampled.SetStatsFor(cs), full.SetStatsFor(os); sa != sb {
			t.Errorf("%s[%d] set %d/%d stats: sampled %+v, full-filtered %+v", level, core, cs, os, sa, sb)
		}
		if ra, rb := sampled.RecencyStack(cs), full.RecencyStack(os); !reflect.DeepEqual(ra, rb) {
			t.Errorf("%s[%d] set %d/%d recency: sampled %v, full-filtered %v", level, core, cs, os, ra, rb)
		}
		for w := 0; w < ways; w++ {
			la, lb := *sampled.Line(cs, w), *full.Line(os, w)
			ta, tb := la, lb
			ta.Tag, tb.Tag = 0, 0
			if ta != tb {
				t.Errorf("%s[%d] set %d/%d way %d flags: sampled %+v, full-filtered %+v", level, core, cs, os, w, la, lb)
				continue
			}
			if la.Valid() && spec.UnrewriteBlock(la.Tag) != lb.Tag {
				t.Errorf("%s[%d] set %d/%d way %d tag: sampled %#x (orig %#x), full-filtered %#x",
					level, core, cs, os, w, la.Tag, spec.UnrewriteBlock(la.Tag), lb.Tag)
			}
		}
	}
}

// checkUnsampledQuiet asserts a full-geometry cache saw no traffic outside
// the sampled sets: zero per-set counters and no valid lines.
func checkUnsampledQuiet(t *testing.T, level string, core int, spec *trace.SampleSpec, full *cachesim.Cache, l1 bool) {
	t.Helper()
	inSample := make(map[int]bool)
	for cs := 0; cs < spec.CompactSets(); cs++ {
		inSample[spec.OrigSet(cs)] = true
	}
	if l1 {
		inSample = make(map[int]bool)
		for _, r := range spec.Residues {
			inSample[r] = true
		}
	}
	for si := 0; si < full.NumSets(); si++ {
		if inSample[si] {
			continue
		}
		if st := full.SetStatsFor(si); st != (cachesim.SetStats{}) {
			t.Errorf("%s[%d] unsampled set %d saw traffic: %+v", level, core, si, st)
		}
		for w := 0; w < full.Ways(); w++ {
			if full.Line(si, w).Valid() {
				t.Errorf("%s[%d] unsampled set %d way %d holds a line: %+v", level, core, si, w, *full.Line(si, w))
			}
		}
	}
}

// TestSampleTrueRestriction is the strong form of the closure argument for
// the single-core case: because the sample granule is the L1 set count, a
// block's residue decides both its L1 set and its L2 residue, so unsampled
// references never touch a sampled block's L1 set either — the sampled
// machine's state must equal the TRUE, unfiltered full run's state
// restricted to the sampled sets, exactly, not merely match a filtered
// replay. With set-local replacement (baseline LRU) there is no cross-set
// state at all; multi-core interleave is therefore the only approximation
// the fast path ever makes (DESIGN.md §16). The script uses gap 0 so each
// reference is one instruction, and the quota is chosen to land on a kept
// reference so both arms freeze at the same stream position.
func TestSampleTrueRestriction(t *testing.T) {
	p := sampleFuzzParams(1)
	p.SampleDen = 4
	spec, err := p.SampleSpec()
	if err != nil {
		t.Fatal(err)
	}

	// A deterministic pseudo-random walk over 96 blocks, gap 0 throughout.
	const n = 997
	refs := make([]trace.Ref, n)
	x := uint64(12345)
	for i := range refs {
		x = x*6364136223846793005 + 1442695040888963407
		refs[i] = trace.Ref{Addr: (x >> 33) % 96 * 32, Write: (x>>21)&7 == 0}
	}

	// Pick the measurement quota so the reference AT the cut is kept: with
	// gap 0 the full run stops after exactly `quota` references, and the
	// sampled view's merged gaps put its own stop at the same position.
	quota := uint64(0)
	for i := 600; i < n; i++ {
		if spec.Keep(refs[i].Addr) {
			quota = uint64(i + 1)
			break
		}
	}
	if quota == 0 {
		t.Fatal("no kept reference in the probe window")
	}

	build := func(sampleDen int) *System {
		pv := p
		pv.SampleDen = sampleDen
		g := trace.Generator(&scriptGen{name: "true-restriction", refs: refs})
		if sampleDen > 1 {
			g = spec.View(g)
		}
		sys, err := New(pv, []trace.Generator{g}, evenTiming(1), policies.NewBaseline())
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	full := build(0)
	fullRes := full.Run(0, quota)
	sampled := build(4)
	sampledRes := sampled.Run(0, quota)

	if got, want := sampledRes.Cores[0].Instructions, fullRes.Cores[0].Instructions; got != want {
		t.Errorf("instructions: sampled %d, full %d", got, want)
	}
	compareSampledCaches(t, "L1", 0, spec, sampled.l1s[0], full.l1s[0], true)
	compareSampledCaches(t, "L2", 0, spec, sampled.L2(0), full.L2(0), false)
}

// TestSharedSampleTrueRestriction is TestSampleTrueRestriction for the
// shared-LLC machine: single core, TRUE unfiltered full run versus the
// compact machine on the filtered stream — the per-set LRU shared cache is
// set-local, so the restriction must again be exact.
func TestSharedSampleTrueRestriction(t *testing.T) {
	p := sampleFuzzParams(1)
	p.SampleDen = 4
	spec, err := p.SampleSpec()
	if err != nil {
		t.Fatal(err)
	}
	const n = 997
	refs := make([]trace.Ref, n)
	x := uint64(54321)
	for i := range refs {
		x = x*6364136223846793005 + 1442695040888963407
		refs[i] = trace.Ref{Addr: (x >> 33) % 96 * 32, Write: (x>>21)&7 == 0}
	}
	quota := uint64(0)
	for i := 600; i < n; i++ {
		if spec.Keep(refs[i].Addr) {
			quota = uint64(i + 1)
			break
		}
	}
	if quota == 0 {
		t.Fatal("no kept reference in the probe window")
	}

	build := func(sampleDen int) *SharedSystem {
		sp := SharedParams{
			Cores:            1,
			L1:               p.L1,
			L2:               p.L2,
			HitCycles:        2 * p.L2LocalHitCycles,
			MemLatencyCycles: p.MemLatencyCycles,
			MemOccupancy:     p.MemOccupancy,
			SampleDen:        sampleDen,
		}
		g := trace.Generator(&scriptGen{name: "shared-true-restriction", refs: refs})
		if sampleDen > 1 {
			g = spec.View(g)
		}
		sys, err := NewShared(sp, []trace.Generator{g}, evenTiming(1))
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}

	full := build(0)
	fullRes := full.Run(0, quota)
	sampled := build(4)
	sampledRes := sampled.Run(0, quota)

	if got, want := sampledRes.Cores[0].Instructions, fullRes.Cores[0].Instructions; got != want {
		t.Errorf("instructions: sampled %d, full %d", got, want)
	}
	compareSampledCaches(t, "sharedL1", 0, spec, sampled.l1s[0], full.l1s[0], true)
	compareSampledCaches(t, "sharedL2", 0, spec, sampled.l2, full.l2, false)
}
