package cmp

import (
	"testing"

	"ascc/internal/cachesim"
	"ascc/internal/policies"
	"ascc/internal/trace"
)

// newUpgradeSystem builds a small scripted machine for driving single
// references through the hierarchy by hand.
func newUpgradeSystem(t *testing.T, cores int) *System {
	t.Helper()
	gens := make([]trace.Generator, cores)
	for i := range gens {
		gens[i] = &scriptGen{name: "manual", refs: []trace.Ref{{}}}
	}
	sys, err := New(tinyParams(cores), gens, evenTiming(cores), policies.NewBaseline())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestWriteUpgradeInvalidatesPeers covers the writeThroughHit path: a store
// that hits the L1 while the inclusive L2 copy is Shared must invalidate
// every peer copy (L1 and L2), upgrade the local copy to Modified/Dirty, and
// cost exactly one bus transfer.
func TestWriteUpgradeInvalidatesPeers(t *testing.T) {
	s := newUpgradeSystem(t, 2)
	const block = uint64(1)
	addr := block * 32

	// Core 0 fills the block from memory (Exclusive), core 1 read-shares it:
	// both L2s now hold it Shared, both L1s hold it.
	s.access(0, trace.Ref{Addr: addr})
	s.access(1, trace.Ref{Addr: addr})
	for c := 0; c < 2; c++ {
		w, ok := s.l2s[c].Lookup(block)
		if !ok {
			t.Fatalf("setup: core %d L2 lost the block", c)
		}
		if st := s.l2s[c].Line(s.l2s[c].SetIndex(block), w).State; st != cachesim.Shared {
			t.Fatalf("setup: core %d L2 state = %v, want Shared", c, st)
		}
	}
	if _, ok := s.l1s[1].Lookup(block); !ok {
		t.Fatal("setup: core 1 L1 does not hold the shared block")
	}

	bus0 := s.live[0].BusTransfers
	s.access(0, trace.Ref{Addr: addr, Write: true})

	if _, ok := s.l2s[1].Lookup(block); ok {
		t.Error("upgrade left the peer L2 copy valid")
	}
	if _, ok := s.l1s[1].Lookup(block); ok {
		t.Error("upgrade left the peer L1 copy valid (inclusion would break)")
	}
	w, ok := s.l2s[0].Lookup(block)
	if !ok {
		t.Fatal("upgrade dropped the writer's own L2 copy")
	}
	line := s.l2s[0].Line(s.l2s[0].SetIndex(block), w)
	if line.State != cachesim.Modified || !line.Dirty {
		t.Errorf("writer's L2 line = {State %v Dirty %v}, want Modified/dirty", line.State, line.Dirty)
	}
	if got := s.live[0].BusTransfers - bus0; got != 1 {
		t.Errorf("upgrade cost %d bus transfers, want exactly 1", got)
	}
	if got := s.holderMask(block, 0); got != 0 {
		t.Errorf("holder mask after upgrade = %b, want no peers", got)
	}

	// A repeat store to the Modified line is L1-local: no further bus
	// traffic, no state change.
	s.access(0, trace.Ref{Addr: addr, Write: true})
	if got := s.live[0].BusTransfers - bus0; got != 1 {
		t.Errorf("repeat store moved the bus counter to %d, want still 1", got)
	}
	if line.State != cachesim.Modified || !line.Dirty {
		t.Errorf("repeat store changed the L2 line to {State %v Dirty %v}", line.State, line.Dirty)
	}
}

// TestWriteUpgradeOnL2Hit covers the l2Demand upgrade: a store whose block
// missed the L1 but hits the local L2 in Shared state runs the same
// invalidate-others upgrade.
func TestWriteUpgradeOnL2Hit(t *testing.T) {
	s := newUpgradeSystem(t, 2)
	const block = uint64(1)
	addr := block * 32

	s.access(0, trace.Ref{Addr: addr})
	s.access(1, trace.Ref{Addr: addr})
	// Knock the writer's L1 copy out so the store takes the L2 path.
	s.l1s[0].Invalidate(block)

	bus0 := s.live[0].BusTransfers
	s.access(0, trace.Ref{Addr: addr, Write: true})

	if _, ok := s.l2s[1].Lookup(block); ok {
		t.Error("L2-hit upgrade left the peer L2 copy valid")
	}
	if _, ok := s.l1s[1].Lookup(block); ok {
		t.Error("L2-hit upgrade left the peer L1 copy valid")
	}
	w, ok := s.l2s[0].Lookup(block)
	if !ok {
		t.Fatal("L2-hit upgrade dropped the writer's copy")
	}
	line := s.l2s[0].Line(s.l2s[0].SetIndex(block), w)
	if line.State != cachesim.Modified || !line.Dirty {
		t.Errorf("writer's L2 line = {State %v Dirty %v}, want Modified/dirty", line.State, line.Dirty)
	}
	if got := s.live[0].BusTransfers - bus0; got != 1 {
		t.Errorf("upgrade cost %d bus transfers, want exactly 1", got)
	}
}

// TestWriteUpgradeSingleCore is the degenerate case: with one core there are
// no peers, so a store to an Exclusive line upgrades silently — no
// invalidations, no bus transfer.
func TestWriteUpgradeSingleCore(t *testing.T) {
	s := newUpgradeSystem(t, 1)
	const block = uint64(1)
	addr := block * 32

	s.access(0, trace.Ref{Addr: addr})
	bus0 := s.live[0].BusTransfers
	s.access(0, trace.Ref{Addr: addr, Write: true})

	w, ok := s.l2s[0].Lookup(block)
	if !ok {
		t.Fatal("store dropped the only copy")
	}
	line := s.l2s[0].Line(s.l2s[0].SetIndex(block), w)
	if line.State != cachesim.Modified || !line.Dirty {
		t.Errorf("L2 line = {State %v Dirty %v}, want Modified/dirty", line.State, line.Dirty)
	}
	if got := s.live[0].BusTransfers - bus0; got != 0 {
		t.Errorf("single-core upgrade cost %d bus transfers, want 0", got)
	}
	// And once more: the Modified marker short-circuits in the L1.
	s.access(0, trace.Ref{Addr: addr, Write: true})
	if got := s.live[0].BusTransfers - bus0; got != 0 {
		t.Errorf("repeat store cost %d bus transfers, want 0", got)
	}
}

// TestDowngradeClearsL1Marker pins the marker-coherence subtlety: when a
// peer read downgrades a Modified line to Shared while the owner's L1 copy
// survives, the next store must run the full upgrade again (invalidating the
// peer), not short-circuit on a stale Modified marker.
func TestDowngradeClearsL1Marker(t *testing.T) {
	s := newUpgradeSystem(t, 2)
	const block = uint64(1)
	addr := block * 32

	// Core 0 writes the block (Modified, L1 marker set), then core 1 reads
	// it: M -> S downgrade with the dirty data written back.
	s.access(0, trace.Ref{Addr: addr, Write: true})
	s.access(1, trace.Ref{Addr: addr})
	w, ok := s.l2s[0].Lookup(block)
	if !ok {
		t.Fatal("downgrade dropped the owner's copy")
	}
	if st := s.l2s[0].Line(s.l2s[0].SetIndex(block), w).State; st != cachesim.Shared {
		t.Fatalf("owner's L2 state after peer read = %v, want Shared", st)
	}
	if _, ok := s.l1s[0].Lookup(block); !ok {
		t.Fatal("downgrade should leave the owner's L1 copy resident")
	}

	bus0 := s.live[0].BusTransfers
	s.access(0, trace.Ref{Addr: addr, Write: true})
	if got := s.live[0].BusTransfers - bus0; got != 1 {
		t.Errorf("post-downgrade store cost %d bus transfers, want 1 (upgrade must rerun)", got)
	}
	if _, ok := s.l2s[1].Lookup(block); ok {
		t.Error("post-downgrade store left the peer copy valid")
	}
}
