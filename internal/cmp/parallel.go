// In-run core parallelism (DESIGN.md §13): speculative first-burst workers.
//
// The run-to-event engine steps one core at a time at the sorted
// (clock, index) frontier; every inter-core interaction (the shared L2 slab,
// the ports, the policy) happens inside that serial turn order, which is what
// makes results bit-identical run to run. This file parallelises the one
// piece of a turn that touches no shared state: the opening L1 burst. When
// core c finishes a turn and goes back into the frontier, a worker goroutine
// speculatively runs c's *next* opening burst on a private clone of c's L1 —
// the L1 is core-private (peers only ever invalidate lines in it), the
// reference batch is core-private, and the burst kernel touches nothing else.
// When c's next turn starts, the main goroutine adopts the speculative result
// if it is still valid, or discards it and redoes the burst live. Both paths
// produce identical state, so the simulation stays deterministic at any
// -sim-parallel setting; speculation only moves work off the critical thread.
//
// Validity has two halves:
//
//   - The basis must be untouched: no peer invalidated a line in c's L1
//     after the worker copied it. Every peer-L1 write site goes through
//     l1MutLock/l1MutUnlock, which bumps the slot's version under the slot
//     mutex; the worker records the version under the same mutex while
//     copying, and the claim compares. (A bump *before* the copy is fine:
//     the copy then includes the mutation.)
//
//   - The burst must not overrun the frontier. The worker runs with no clock
//     limit (the true runner-up clock is unknowable ahead of time), so the
//     claim accepts the result only when its final clock is strictly below
//     the turn's actual runner-up clock. ReadBurst checks the frontier after
//     each committed hit reference and the clock is monotone, so a final
//     clock below the limit means every in-kernel check the live run would
//     have made passes — the live kernel would have consumed exactly the
//     same references and returned the same event.
//
// Ownership protocol per slot (one slot per core), all transitions through
// the atomic state word:
//
//	Idle -> Requested        main, at c's turn fold (basis fields written first,
//	                         including the request generation)
//	Requested -> Copying     worker, claiming the job poke
//	Copying -> Done          worker, result written
//	any -> Claimed           main, at c's next turn start (Swap)
//	Requested/Idle -> Idle   main, a claim that found no worker activity,
//	                         or a withdrawn request
//	Done -> Idle             main, after reading the result at claim time
//	Claimed -> Idle          the worker, and ONLY the worker: a claim that
//	                         catches a worker mid-copy or mid-burst leaves the
//	                         slot Claimed, and the worker relinquishes it when
//	                         its dead burst finishes. Main never resets a
//	                         Claimed slot — a later claim that observes
//	                         Claimed returns nil and leaves it alone — so the
//	                         slot's clone/refs/res stay exclusively the
//	                         zombie's until it stores Idle, and no new request
//	                         can be issued over a still-running burst.
//
// Each request additionally carries a generation number (slot.gen, bumped by
// main on every Idle -> Requested transition and echoed by the worker into
// its result); the claim accepts a Done result only when the generations
// match, so a result can never be adopted against a basis written by a
// different request than the one that produced it.
//
// The only cross-goroutine data are the slot fields (ordered by the state
// word's release/acquire transitions), the live L1 and batch contents (read
// by the worker only inside the slot mutex; the claim's mutex fence keeps a
// mid-copy worker ordered before the turn's mutations), and s.l1s[c] /
// s.batches[c].Refs themselves, which main mutates only while the slot is
// Claimed.
package cmp

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"ascc/internal/cachesim"
	"ascc/internal/trace"
)

// Slot states. See the protocol table in the file comment.
const (
	specIdle int32 = iota
	specRequested
	specCopying
	specDone
	specClaimed
)

// specResult is one speculative burst outcome: ReadBurst's return values,
// the batch cursor after the burst, the basis version the clone was copied
// at, and the generation of the request that produced it.
type specResult struct {
	ev      cachesim.BurstEvent
	instr   uint64
	clock   float64
	hits    uint64
	block   uint64
	way     int
	write   bool
	endPos  int
	version uint64
	gen     uint64
}

// specSlot is one core's speculation state.
type specSlot struct {
	state atomic.Int32

	// mu guards the basis copy: the worker holds it while cloning the live
	// L1 and batch tail, and main takes it to bump version at peer-L1 write
	// sites (l1MutLock) or to fence a mid-copy worker at claim time.
	mu sync.Mutex

	// version counts invalidation epochs of this core's L1. Written by main
	// (under mu), read by the worker (under mu) and by main's claim (no mu:
	// main is the only writer).
	version uint64

	// Request basis: written by main while the slot is Idle, published by
	// the Idle -> Requested transition. gen is the request generation —
	// bumped once per request, echoed by the worker into res.gen, and
	// required to match at claim time (see the file comment).
	gen   uint64
	quota uint64
	pos   int
	nrefs int
	instr uint64
	clock float64

	baseCPI float64
	refs    []trace.Ref     // private copy of the live batch buffer
	clone   *cachesim.Cache // private L1 the burst runs on
	res     specResult
}

// specEngine is the per-System speculation machinery. Workers live for one
// phase (specStart/specStop) so phase resets can never race a stale burst.
type specEngine struct {
	slots []specSlot
	jobs  chan int32
	wg    sync.WaitGroup
	shift uint

	// Diagnostics, main-goroutine only.
	requested uint64
	committed uint64
	discarded uint64
}

// specStart builds the engine on first use, resets every slot and spawns the
// phase's workers.
func (s *System) specStart() {
	if s.spec == nil {
		e := &specEngine{
			slots: make([]specSlot, s.p.Cores),
			shift: s.lineShift,
		}
		for i := range e.slots {
			sl := &e.slots[i]
			sl.clone = cachesim.New(s.p.L1)
			sl.refs = make([]trace.Ref, refBatch)
			sl.baseCPI = s.timing[i].BaseCPI
		}
		s.spec = e
	}
	e := s.spec
	for i := range e.slots {
		e.slots[i].state.Store(specIdle)
		e.slots[i].version++
	}
	e.jobs = make(chan int32, 4*s.p.Cores)
	workers := s.p.SimParallel
	if workers > s.p.Cores {
		workers = s.p.Cores
	}
	e.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go e.worker(s)
	}
}

// specStop drains and joins the phase's workers. Slots may be left in any
// state; specStart resets them.
func (s *System) specStop() {
	close(s.spec.jobs)
	s.spec.wg.Wait()
}

// SpecStats reports the speculation outcome counters (requested, committed,
// discarded) — diagnostics for the honest A/B, not part of Results.
func (s *System) SpecStats() (requested, committed, discarded uint64) {
	if s.spec == nil {
		return 0, 0, 0
	}
	return s.spec.requested, s.spec.committed, s.spec.discarded
}

// worker services burst jobs until the phase closes the channel. A poke is
// only a hint: the slot's state word decides whether the job is still live.
func (e *specEngine) worker(s *System) {
	defer e.wg.Done()
	for ci := range e.jobs {
		sl := &e.slots[ci]
		if !sl.state.CompareAndSwap(specRequested, specCopying) {
			continue // stale poke: the request was claimed or withdrawn
		}
		sl.mu.Lock()
		if sl.state.Load() != specCopying {
			// Claimed between our CAS and the lock: the main goroutine saw
			// Copying, fenced on mu (possibly before we got here) and went on
			// to mutate the live L1. Abort without touching it; the aborting
			// side owns the transition back to Idle.
			sl.mu.Unlock()
			sl.state.Store(specIdle)
			continue
		}
		ver, gen := sl.version, sl.gen
		sl.clone.CopyStateFrom(s.l1s[ci])
		copy(sl.refs[sl.pos:sl.nrefs], s.batches[ci].Refs[sl.pos:sl.nrefs])
		sl.mu.Unlock()
		bt := trace.Batch{Refs: sl.refs[:sl.nrefs], Pos: sl.pos}
		ev, instr, clock, hits, block, way, write := sl.clone.ReadBurst(
			&bt, e.shift, sl.baseCPI, sl.quota, math.Inf(1), sl.instr, sl.clock)
		res := specResult{ev: ev, instr: instr, clock: clock, hits: hits,
			block: block, way: way, write: write, endPos: bt.Pos,
			version: ver, gen: gen}
		if sl.state.Load() != specCopying {
			// Claimed mid-burst; the result is dead. Don't publish it —
			// the slot stayed Claimed the whole time we ran (main never
			// resets a Claimed slot), so we still own the transition back
			// to Idle, and only after it can main issue a new request.
			sl.state.Store(specIdle)
			continue
		}
		sl.res = res
		if !sl.state.CompareAndSwap(specCopying, specDone) {
			// Claimed between the check and the publish; same story.
			sl.state.Store(specIdle)
		}
	}
}

// specClaimGrace bounds the claim's cooperative wait for an in-flight
// speculation: on a single-P or loaded machine the worker may not have run
// between the request and the claim, so main yields its quantum a bounded
// number of times to let the burst finish instead of always discarding it.
// On an idle multi-core machine the slot is already Done (or promptly
// becomes so) and the loop exits on the first checks.
const specClaimGrace = 128

// specClaim takes ownership of core c's slot at the start of its turn and
// returns the speculative result if one is present and its basis is intact,
// else nil. After specClaim returns, no worker reads core c's live L1 or
// batch, so the turn may mutate and (on adoption) swap them freely.
func (s *System) specClaim(c int, quota uint64) *specResult {
	sl := &s.spec.slots[c]
	for i := 0; i < specClaimGrace; i++ {
		if st := sl.state.Load(); st != specRequested && st != specCopying {
			break
		}
		runtime.Gosched()
	}
	switch sl.state.Swap(specClaimed) {
	case specCopying:
		// The worker is somewhere between its claim CAS and its publish.
		// Fence on the copy mutex: either the copy already finished (the
		// worker sees Claimed at its pre-publish check and drops the dead
		// result), or the worker aborts at its in-mutex state check. Either
		// way it no longer touches the live L1. The slot stays Claimed and
		// the worker owns the transition back to Idle — see specClaimed.
		sl.mu.Lock()
		sl.mu.Unlock() //nolint:staticcheck // empty critical section is the fence
		return nil
	case specDone:
		res := &sl.res
		ok := res.gen == sl.gen &&
			res.version == sl.version &&
			sl.instr == s.live[c].Instructions &&
			sl.clock == s.clock[c] &&
			sl.quota == quota
		sl.state.Store(specIdle)
		if !ok {
			s.spec.discarded++
			return nil
		}
		return res
	case specClaimed:
		// A worker caught mid-copy/mid-burst by an earlier claim is still
		// finishing its dead burst on this slot's clone/refs. It owns the
		// transition back to Idle; resetting the slot here would let main
		// issue a new request over the still-running burst (a second worker
		// would then clone into the same buffers the zombie is mutating).
		// Leave the slot alone — speculation for c simply sits out until
		// the zombie relinquishes.
		return nil
	default: // Idle (nothing requested) or Requested (no worker got to it)
		sl.state.Store(specIdle)
		return nil
	}
}

// specRequest asks a worker to run core c's next opening burst. Called at
// c's turn fold, after the batch cursor, instruction count and clock have
// settled; those values are the basis the burst runs from.
func (s *System) specRequest(c int, quota, instr uint64, clock float64) {
	sl := &s.spec.slots[c]
	if sl.state.Load() != specIdle {
		return
	}
	bt := &s.batches[c]
	sl.gen++
	sl.quota = quota
	sl.pos = bt.Pos
	sl.nrefs = len(bt.Refs)
	sl.instr = instr
	sl.clock = clock
	sl.state.Store(specRequested)
	select {
	case s.spec.jobs <- int32(c):
		s.spec.requested++
	default:
		// Queue full: withdraw, unless a stale poke already took the job.
		sl.state.CompareAndSwap(specRequested, specIdle)
	}
}

// l1MutLock serialises a write to peer core p's L1 against a worker cloning
// it, and bumps the slot version so any snapshot taken before the write is
// rejected at claim time. No-ops when speculation is off. The stepping
// core's own L1 writes need no lock: its slot is Claimed for the whole turn,
// so no worker can be copying it.
func (s *System) l1MutLock(p int) {
	if s.spec == nil {
		return
	}
	sl := &s.spec.slots[p]
	sl.mu.Lock()
	sl.version++
}

func (s *System) l1MutUnlock(p int) {
	if s.spec == nil {
		return
	}
	s.spec.slots[p].mu.Unlock()
}

// runPhaseParallel is runPhaseFused with the speculation protocol spliced
// in: claim-and-adopt at turn start, request at the fold. Everything else —
// the frontier, the event switch, the turn fold — is identical, and the
// adopted path reproduces exactly the state the live kernel would have
// produced, so results are bit-identical to the serial engines.
//
// Speculation stays sound with in-kernel L2 absorption without any new
// lock site. Workers read exactly two shared things: the stepping core's
// L1 (cloned under the slot mutex, guarded by the version bumps at every
// peer-L1 mutation site) and its decoded batch. The fused kernel's new
// mutations — the local L2 segment's recency/state and the core's own L1
// fill — are both invisible to workers: no worker ever reads L2 state
// (speculative bursts run the plain L1-only kernel with a nil absorber),
// and the core's own L1 only mutates during its own turn, when its slot is
// Claimed and no worker can be copying it. A speculative burst therefore
// still ends at the first L1 miss; when that miss would have been absorbed,
// the adopted result's trailing BurstMiss resolves through the descent
// below, which commits the identical state the in-kernel absorption would
// have (the §15 per-access equivalence), and the loop re-enters the fused
// kernel for the rest of the run.
func (s *System) runPhaseParallel(quota uint64) {
	s.specStart()
	defer s.specStop()
	n := s.p.Cores
	shift := s.lineShift
	front := s.front[:0]
	for i := 0; i < n; i++ {
		if s.done[i] {
			continue
		}
		j := len(front)
		front = append(front, int32(i))
		for ; j > 0; j-- {
			p := front[j-1]
			if s.clock[p] < s.clock[i] || (s.clock[p] == s.clock[i] && p < int32(i)) {
				break
			}
			front[j], front[j-1] = front[j-1], front[j]
		}
	}
	for len(front) > 0 {
		c := int(front[0])
		second := math.Inf(1)
		if len(front) > 1 {
			// SyncSlack is 0 outside the sampled fast path (Params.SyncSlack).
			second = s.clock[front[1]] + s.p.SyncSlack
		}
		// Take the slot before touching anything a worker might be reading.
		sp := s.specClaim(c, quota)
		if sp != nil && sp.clock >= second {
			// The speculative burst overran the frontier: somewhere inside it
			// the live kernel would have stopped. Redo it live.
			s.spec.discarded++
			sp = nil
		}
		st := &s.live[c]
		t := s.timing[c]
		gen := s.gens[c]
		bt := &s.batches[c]
		if sp != nil {
			// Adopt: the clone (already stepped through the burst) becomes
			// the live L1, the old live L1 becomes the next clone, and the
			// cursor jumps over the consumed references.
			sl := &s.spec.slots[c]
			s.l1s[c], sl.clone = sl.clone, s.l1s[c]
			bt.Pos = sp.endPos
			s.spec.committed++
		}
		l1 := s.l1s[c]
		instr := st.Instructions
		clock := s.clock[c]
		// With a prefetcher attached nothing is absorbable (prefetch trains
		// on every demand access), so the kernel runs with a nil absorber
		// and every L1 miss descends — the serial fused engine's own
		// fallback, here inline so speculation still applies.
		ab := &s.ab
		if s.pf != nil {
			ab = nil
		} else {
			ab.L2 = s.l2s[c]
			ab.Bind()
			ab.Owner = int16(c)
			ab.HitLat = s.p.L2LocalHitCycles
			ab.HitCost = s.hitCost[c]
			ab.LatencySum = st.LatencySum
		}
		var accesses, allHits, absorbed uint64
		var ev cachesim.BurstEvent
		var hits, block uint64
		var way int
		var write bool
	stepping:
		for {
			if sp != nil {
				ev, instr, clock, hits, block, way, write =
					sp.ev, sp.instr, sp.clock, sp.hits, sp.block, sp.way, sp.write
				sp = nil
			} else {
				polEmpty := len(s.polBuf) == 0
				accBefore := s.l2Accesses[c]
				if ab != nil {
					ab.PolBuf = s.polBuf
				}
				ev, instr, clock, hits, block, way, write =
					l1.ReadBurstFused(bt, shift, t.BaseCPI, quota, second, instr, clock, ab)
				if ab != nil {
					s.polBuf = ab.PolBuf
					if a := ab.Absorbed; a != 0 {
						ab.Absorbed = 0
						s.l2Accesses[c] = accBefore + a
						absorbed += a
						if polEmpty {
							s.polBase = accBefore
						}
					}
				}
			}
			accesses += hits
			allHits += hits
			switch ev {
			case cachesim.BurstBatchEnd:
				bt.Refill(gen)
				continue
			case cachesim.BurstQuota, cachesim.BurstFrontier:
				break stepping
			case cachesim.BurstUpgrade:
				line := l1.Line(l1.SetIndex(block), way)
				s.writeThroughHit(c, block)
				line.State = cachesim.Modified
			case cachesim.BurstMiss:
				accesses++
				s.flushPolicy(c)
				if ab != nil {
					st.LatencySum = ab.LatencySum
				}
				s.clock[c] = clock
				lat := s.l2Demand(c, block, write)
				if ab != nil {
					ab.LatencySum = st.LatencySum
				}
				clock += lat * t.Overlap
				s.clock[c] = clock
			}
			if instr >= quota || clock >= second {
				break stepping
			}
		}
		s.flushPolicy(c)
		st.Instructions = instr
		st.L1Accesses += accesses + absorbed
		st.L1Hits += allHits
		st.L2Accesses += absorbed
		st.L2LocalHits += absorbed
		if ab != nil {
			st.LatencySum = ab.LatencySum
		}
		st.Cycles = clock
		s.clock[c] = clock
		if instr >= quota {
			s.frozen[c] = *st
			s.done[c] = true
			front = front[1:]
			continue
		}
		j := 0
		for j+1 < len(front) {
			nx := front[j+1]
			cv := s.clock[nx]
			if cv < clock || (cv == clock && int(nx) < c) {
				front[j] = nx
				j++
			} else {
				break
			}
		}
		front[j] = int32(c)
		// Speculate on this core's next opening burst — unless it is already
		// next (main would only wait on the worker).
		if front[0] != int32(c) {
			s.specRequest(c, quota, instr, clock)
		}
	}
}
