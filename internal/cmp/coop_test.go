package cmp

import (
	"testing"

	"ascc/internal/cachesim"
	"ascc/internal/policies"
	"ascc/internal/trace"
)

// TestSwapKeepsBothLinesOnChip drives the §3.2 swap directly: a thrashing
// set under ASCC spills lines, then re-accesses them; swaps must bring them
// home while pushing the local victim into the freed remote slot, so that
// off-chip misses for the cycling working set vanish in steady state.
func TestSwapKeepsBothLinesOnChip(t *testing.T) {
	p := tinyParams(2)
	// Core 0 cycles 5 blocks of set 0 (4 ways): needs 1 extra way. Core 1
	// cycles 3 blocks of its own set 0: they thrash its 2-way L1 so the L2
	// sees hits, keeping that set's SSL low (receiver) with one dead way.
	giver := make([]trace.Ref, 3)
	for i := range giver {
		giver[i] = trace.Ref{Addr: 1<<30 + uint64(i*4)*32, Gap: 2}
	}
	gens := []trace.Generator{
		&scriptGen{name: "cycler", refs: loopRefs(0, 4, 5, 2)},
		&scriptGen{name: "giver", refs: giver},
	}
	sys, _ := New(p, gens, evenTiming(2), policies.NewASCC(2, 4, 4, 1))
	res := sys.Run(20000, 30000)
	c0 := res.Cores[0]
	if c0.Swaps == 0 {
		t.Fatalf("no swaps on a cycling spilled working set: %+v", c0)
	}
	// After warmup the 6-block cycle must be served on-chip: essentially no
	// memory fills for core 0.
	if frac := float64(c0.L2MemFills) / float64(c0.L2Accesses); frac > 0.02 {
		t.Fatalf("%.1f%% of accesses still go to memory; swap/spill not retaining the set", 100*frac)
	}
	if c0.L2RemoteHits == 0 {
		t.Fatal("no remote hits: lines are not being found in the peer cache")
	}
}

// TestECCRegionEnforcement verifies the engine honours ECC's way
// partitioning: guests only ever occupy the shared region.
func TestECCRegionEnforcement(t *testing.T) {
	p := tinyParams(2)
	ecc := policies.NewECC(2, 4, 4, 1)
	gens := []trace.Generator{
		&scriptGen{name: "spiller", refs: loopRefs(0, 4, 8, 1)},
		&scriptGen{name: "victim", refs: loopRefs(2, 4, 2, 1)},
	}
	sys, _ := New(p, gens, evenTiming(2), ecc)
	sys.Run(0, 20000)
	// Every spilled line residing in cache 1 must sit in its shared region
	// (ways >= PrivateWays(1)).
	bad := 0
	sys.l2s[1].ForEachLine(func(si, w int, l *cachesim.Line) {
		if l.Spilled && w < ecc.PrivateWays(1) {
			bad++
		}
	})
	if bad > 0 {
		t.Fatalf("%d guests found in ECC private-region ways", bad)
	}
}

// TestDeadLineAdmissionProtectsHotSets: a receiver set whose lines are all
// live (recently reused) must reject guests, so a busy peer is not polluted
// by a thrashing neighbour under ASCC.
func TestDeadLineAdmissionProtectsHotSets(t *testing.T) {
	p := tinyParams(2)
	// Core 0 thrashes set 0. Core 1 has a hot working set in ITS set 0
	// (4 blocks cycling fast => all reused).
	hot := make([]trace.Ref, 0, 8)
	for i := 0; i < 2; i++ {
		for b := 0; b < 4; b++ {
			hot = append(hot, trace.Ref{Addr: 1<<30 + uint64(b*4*32), Gap: 1})
		}
	}
	gens := []trace.Generator{
		&scriptGen{name: "thrash", refs: loopRefs(0, 4, 12, 4)},
		&scriptGen{name: "hot", refs: hot},
	}
	base, _ := New(tinyParams(2), []trace.Generator{
		&scriptGen{name: "thrash", refs: loopRefs(0, 4, 12, 4)},
		&scriptGen{name: "hot", refs: hot},
	}, evenTiming(2), policies.NewBaseline())
	baseRes := base.Run(5000, 20000)

	sys, _ := New(p, gens, evenTiming(2), policies.NewASCC(2, 4, 4, 1))
	res := sys.Run(5000, 20000)

	// The hot core must not lose meaningful performance to guest pollution.
	if res.Cores[1].CPI() > baseRes.Cores[1].CPI()*1.03 {
		t.Fatalf("hot core CPI %.3f vs baseline %.3f: polluted by guests",
			res.Cores[1].CPI(), baseRes.Cores[1].CPI())
	}
}

// TestMTWriteInvalidatesAllCopies checks the MESI write-upgrade path across
// more than two caches.
func TestMTWriteInvalidatesAllCopies(t *testing.T) {
	p := tinyParams(3)
	// All three cores read block 0; then core 0 writes it.
	readers := []trace.Ref{{Addr: 0, Gap: 3}, {Addr: 32, Gap: 3}}
	writer := []trace.Ref{{Addr: 0, Gap: 3}, {Addr: 0, Write: true, Gap: 3}, {Addr: 32, Gap: 3}}
	gens := []trace.Generator{
		&scriptGen{name: "w", refs: writer},
		&scriptGen{name: "r1", refs: readers},
		&scriptGen{name: "r2", refs: readers},
	}
	sys, _ := New(p, gens, evenTiming(3), policies.NewBaseline())
	sys.Run(0, 5000)
	// Invariant: if any cache holds block 0 in M, no other cache holds it.
	holders := 0
	dirtyHolders := 0
	for c := 0; c < 3; c++ {
		if w, ok := sys.l2s[c].Lookup(0); ok {
			holders++
			if sys.l2s[c].Line(sys.l2s[c].SetIndex(0), w).State == cachesim.Modified {
				dirtyHolders++
			}
		}
	}
	if dirtyHolders > 0 && holders > 1 {
		t.Fatalf("modified block co-resident in %d caches", holders)
	}
}

// TestPolicyStatePersistsAcrossWarmup: the warmup phase must train policy
// state (SSLs, PSELs) — only the statistics are reset.
func TestPolicyStatePersistsAcrossWarmup(t *testing.T) {
	p := tinyParams(2)
	pol := policies.NewASCC(2, 4, 4, 1)
	gens := []trace.Generator{
		&scriptGen{name: "a", refs: loopRefs(0, 4, 8, 2)},
		&scriptGen{name: "b", refs: loopRefs(2, 4, 2, 2)},
	}
	sys, _ := New(p, gens, evenTiming(2), pol)
	res := sys.Run(15000, 15000)
	// With a trained policy, spilled lines are already in place when
	// measurement starts: remote hits should flow from the first window.
	if res.Cores[0].L2RemoteHits+res.Cores[0].Swaps == 0 {
		t.Fatal("no remote traffic after warmup; policy state may have been reset")
	}
}
