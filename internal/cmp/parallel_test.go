// Tests for the set-sharded directory and the speculative parallel engine at
// the full-system level: a three-engine differential fuzzer (directory vs
// broadcast vs the frozen per-reference oracle), bit-identical determinism at
// every -sim-parallel setting, and proof the speculation actually commits
// (so the determinism runs exercise the adoption path, not just the
// fallback). The group-level differential wall is group_diff_test.go; the
// shard mechanics are directory_test.go.
package cmp

import (
	"reflect"
	"testing"

	"ascc/internal/cachesim"
	"ascc/internal/coop"
	"ascc/internal/policies"
	"ascc/internal/rng"
	"ascc/internal/trace"
)

// fuzzSystem builds one system over per-core cyclic scripts decoded from the
// fuzz body (3 bytes per reference over a 64-block space, as in
// FuzzBurstEquivalence — heavy cross-core sharing by construction).
func fuzzSystem(t *testing.T, p Params, body []byte, cores int, useASCC bool, timing []CoreTiming) *System {
	t.Helper()
	per := len(body) / (3 * cores)
	gens := make([]trace.Generator, cores)
	for core := range gens {
		refs := make([]trace.Ref, per)
		for i := range refs {
			b := body[(core*per+i)*3:]
			refs[i] = trace.Ref{
				Addr:  uint64(b[0]%64) * 32,
				Gap:   int32(b[1] % 8),
				Write: b[2]&1 == 1,
			}
		}
		gens[core] = &scriptGen{name: "fuzz", refs: refs}
	}
	var pol coop.Policy
	if useASCC {
		sets := p.L2.SizeBytes / p.L2.LineBytes / p.L2.Ways
		cfg := policies.AVGCCDefaultConfig(cores, sets, p.L2.Ways, 1)
		cfg.ResizePeriod = 50
		pol = policies.NewASCCVariant("AVGCC", cfg)
	} else {
		pol = policies.NewBaseline()
	}
	sys, err := New(p, gens, timing, pol)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// FuzzDirectoryEquivalence is the three-engine differential wall for the
// coherence directory and the parallel engine: the batched engine with the
// directory (the default), the batched engine in broadcast mode
// (NoDirectory), and the directory engine under speculative parallelism
// (SimParallel 2..5) all run the same machine and reference streams, and all
// three must be bit-identical — frozen CoreStats, final clocks, batch
// cursors, complete L1/L2 state — to the frozen per-reference broadcast
// oracle (refRun). The directory and broadcast runs must also answer the
// same number of coherence probes (the property that makes the scaling
// table's probe column an apples-to-apples A/B). Core counts reach 8 so
// holder masks cover more than 4 peers; ASCC variants exercise last-copy
// swaps and spills through the directory's remove/add paths.
func FuzzDirectoryEquivalence(f *testing.F) {
	f.Add([]byte("directory-differential-seed"))
	// 8 cores, ASCC, SimParallel 5, every core hammering blocks 0/1 —
	// holder masks with 7 peers from the first few turns.
	f.Add([]byte{6, 1, 1, 0x40, 0x0c,
		0, 0, 0, 1, 0, 1, 0, 1, 0, 1, 1, 1, 0, 2, 0, 1, 2, 1,
		0, 0, 1, 1, 3, 0, 0, 1, 1, 1, 0, 0, 0, 2, 1, 1, 1, 0,
		0, 4, 0, 1, 0, 1, 0, 1, 0, 1, 2, 1})
	// 6 cores, baseline + prefetch, striding writes over the block space.
	f.Add([]byte{4, 0, 0, 0x20, 0x06,
		0, 1, 1, 8, 1, 0, 16, 1, 1, 24, 1, 0, 32, 1, 1, 40, 1, 0,
		48, 1, 1, 56, 1, 0, 4, 1, 1, 12, 1, 0, 20, 1, 1, 28, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			t.Skip()
		}
		cores := 2 + int(data[0]%7) // 2..8: past the 4-core golden config
		l1Ways := 2 << (data[1] % 2)
		useASCC := data[2]%2 == 1
		quota := 100 + uint64(data[3])*16
		warmup := uint64(0)
		if data[4]%2 == 1 {
			warmup = quota / 3
		}
		simPar := 2 + int(data[4]>>2)%4
		p := tinyParams(cores)
		p.L1 = cachesim.Config{SizeBytes: 32 * 2 * l1Ways, Ways: l1Ways, LineBytes: 32}
		if data[4]&2 != 0 {
			p.Prefetch = true
			p.PrefetchEntries = 64
			p.PrefetchDegree = 2
		}
		body := data[5:]
		if len(body)/(3*cores) == 0 {
			t.Skip()
		}
		timing := make([]CoreTiming, cores)
		for i := range timing {
			timing[i] = CoreTiming{BaseCPI: 1 + float64((int(data[0])+i)%3)/2, Overlap: 0.5}
		}
		build := func(noDir bool, simParallel int) *System {
			pv := p
			pv.NoDirectory = noDir
			pv.SimParallel = simParallel
			if simParallel > 1 {
				pv.Engine = EngineFused // the speculation protocol's required engine
			}
			return fuzzSystem(t, pv, body, cores, useASCC, timing)
		}

		dir := build(false, 0)
		bcast := build(true, 0)
		par := build(false, simPar)
		oracle := build(true, 0)
		dirRes := dir.Run(warmup, quota)
		bcastRes := bcast.Run(warmup, quota)
		parRes := par.Run(warmup, quota)
		wantRes := oracle.refRun(warmup, quota)

		for _, eng := range []struct {
			name string
			sys  *System
			res  Results
		}{{"directory", dir, dirRes}, {"broadcast", bcast, bcastRes}, {"parallel", par, parRes}} {
			if !reflect.DeepEqual(eng.res, wantRes) {
				t.Errorf("%s results diverge:\ngot:  %+v\nwant: %+v", eng.name, eng.res, wantRes)
			}
			for i := 0; i < cores; i++ {
				if eng.sys.clock[i] != oracle.clock[i] {
					t.Errorf("%s core %d clock: got %v, want %v", eng.name, i, eng.sys.clock[i], oracle.clock[i])
				}
				if eng.sys.batches[i].Pos != oracle.batches[i].Pos {
					t.Errorf("%s core %d batch cursor: got %d, want %d",
						eng.name, i, eng.sys.batches[i].Pos, oracle.batches[i].Pos)
				}
				compareCaches(t, "L1/"+eng.name, i, eng.sys.l1s[i], oracle.l1s[i])
				compareCaches(t, "L2/"+eng.name, i, eng.sys.L2(i), oracle.L2(i))
			}
		}
		if dp, bp := dir.CoherenceProbes(), bcast.CoherenceProbes(); dp != bp {
			t.Errorf("probe counts diverge: directory %d, broadcast %d", dp, bp)
		}
	})
}

// parTestSystem builds a conflict-heavy shared-traffic machine: every core
// draws random mostly-read references from the same 64-block space, so turns
// are short, misses and holder churn constant — the regime speculation has
// to stay correct in.
func parTestSystem(t *testing.T, cores, simParallel int) *System {
	t.Helper()
	p := tinyParams(cores)
	p.SimParallel = simParallel
	if simParallel > 1 {
		p.Engine = EngineFused // the speculation protocol's required engine
	}
	r := rng.New(0x5eed)
	body := make([]byte, 3*cores*40)
	for i := range body {
		body[i] = byte(r.Uint64())
	}
	timing := make([]CoreTiming, cores)
	for i := range timing {
		timing[i] = CoreTiming{BaseCPI: 1 + float64(i%3)/2, Overlap: 0.5}
	}
	return fuzzSystem(t, p, body, cores, true, timing)
}

// TestParallelDeterminism pins the headline property: the same machine run
// at every -sim-parallel setting produces bit-identical results — frozen
// stats, final clocks, complete cache state. Runs under -race in `make
// race`, which is what actually checks the speculation protocol's memory
// ordering.
func TestParallelDeterminism(t *testing.T) {
	const cores, quota = 8, 30_000
	base := parTestSystem(t, cores, 0)
	want := base.Run(quota/10, quota)
	for _, par := range []int{1, 2, 4, 8} {
		sys := parTestSystem(t, cores, par)
		got := sys.Run(quota/10, quota)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("SimParallel=%d results diverge from serial:\ngot:  %+v\nwant: %+v", par, got, want)
		}
		for i := 0; i < cores; i++ {
			if sys.clock[i] != base.clock[i] {
				t.Errorf("SimParallel=%d core %d clock: got %v, want %v", par, i, sys.clock[i], base.clock[i])
			}
			compareCaches(t, "L1", i, sys.l1s[i], base.l1s[i])
			compareCaches(t, "L2", i, sys.L2(i), base.L2(i))
		}
	}
}

// TestParallelSpecCommits proves the speculation path is live, not
// vacuously-correct fallback: a conflict-heavy run at SimParallel=4 must
// adopt a meaningful share of speculative bursts.
func TestParallelSpecCommits(t *testing.T) {
	sys := parTestSystem(t, 8, 4)
	sys.Run(0, 50_000)
	req, com, dis := sys.SpecStats()
	t.Logf("speculation: %d requested, %d committed, %d discarded", req, com, dis)
	if req == 0 {
		t.Fatal("no speculative bursts requested")
	}
	if com == 0 {
		t.Fatal("no speculative bursts committed: parallelism is vacuous")
	}
}

// TestSpecClaimZombieProtocol pins the slot state machine around a zombie
// worker — one whose burst outlived the turn that claimed it mid-flight. The
// claim must NOT reset a Claimed slot to Idle (the worker owns that
// transition; resetting would let main re-request the slot and a second
// worker clone into the buffers the zombie is still mutating), no request may
// be issued while the zombie holds the slot, and a Done result is adoptable
// only when its request generation matches the slot's.
func TestSpecClaimZombieProtocol(t *testing.T) {
	sys := parTestSystem(t, 2, 1)
	sys.specStart()
	defer sys.specStop()

	// Core 0's slot is held by a zombie worker (claimed mid-copy/mid-burst
	// on an earlier turn, burst still running).
	sl := &sys.spec.slots[0]
	sl.state.Store(specClaimed)
	if res := sys.specClaim(0, 100); res != nil {
		t.Fatal("claim returned a result from a zombie-owned slot")
	}
	if st := sl.state.Load(); st != specClaimed {
		t.Fatalf("claim moved a zombie-owned slot to state %d; only the worker owns Claimed -> Idle", st)
	}
	sys.specRequest(0, 100, 0, 0)
	if st := sl.state.Load(); st != specClaimed {
		t.Fatalf("request issued over a zombie-owned slot (state %d)", st)
	}

	// Core 1 has a Done result whose basis matches the live core but whose
	// generation is stale: it must be discarded. Bumping only the generation
	// back into agreement makes the same result adoptable.
	sl = &sys.spec.slots[1]
	sl.gen = 7
	sl.quota = 100
	sl.instr = sys.live[1].Instructions
	sl.clock = sys.clock[1]
	sl.res = specResult{version: sl.version, gen: 6,
		instr: sl.instr, clock: sl.clock}
	sl.state.Store(specDone)
	if res := sys.specClaim(1, 100); res != nil {
		t.Fatal("claim adopted a result from a different request generation")
	}
	if st := sl.state.Load(); st != specIdle {
		t.Fatalf("rejected claim left slot in state %d, want Idle", st)
	}
	sl.res.gen = 7
	sl.state.Store(specDone)
	if res := sys.specClaim(1, 100); res == nil {
		t.Fatal("claim rejected a result whose generation and basis both match")
	}
}

// TestValidateParallelParams pins the machine-description limits the new
// flags introduce.
func TestValidateParallelParams(t *testing.T) {
	base := tinyParams(4)
	cases := []struct {
		name string
		mod  func(*Params)
		ok   bool
	}{
		{"default", func(p *Params) {}, true},
		{"max_cores", func(p *Params) { p.Cores = 64 }, true},
		{"over_64_cores", func(p *Params) { p.Cores = 65 }, false},
		{"negative_parallel", func(p *Params) { p.SimParallel = -1 }, false},
		{"parallel_default_engine", func(p *Params) { p.SimParallel = 4 }, false},
		{"parallel_batched_engine", func(p *Params) { p.SimParallel = 4; p.Engine = EngineBatched }, false},
		{"parallel_fused_engine", func(p *Params) { p.SimParallel = 4; p.Engine = EngineFused }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base
			tc.mod(&p)
			err := p.Validate()
			if tc.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("invalid params accepted")
			}
		})
	}
}
