// Set-sampled fast-path support (DESIGN.md §16): the spec derivation shared
// with the harness's stream filtering, the set-index translation that lets
// unmodified policies drive a compact machine, and the scaled accounting
// that reconstructs full-run-comparable results.
package cmp

import (
	"ascc/internal/cachesim"
	"ascc/internal/coop"
	"ascc/internal/ssl"
	"ascc/internal/trace"
)

// sampleSDMSets mirrors the policies' default SDM leader count
// (internal/policies: SDMSets = 32, leader stride = max(sets/SDMSets, 4)).
// The spec derivation pins the leader residues from the same formula so the
// sampled sets always contain the monitor sets the policies train on;
// trace's TestSampleSpecLeaders and the two-arm FuzzSampleEquivalence hold
// the coupling together.
const sampleSDMSets = 32

// SampleSpec derives the deterministic set sample for this machine (nil
// when SampleDen <= 1). The harness uses the same spec to filter the
// reference streams it feeds New; both sides are pure functions of the
// Params, so they can never disagree.
func (p Params) SampleSpec() (*trace.SampleSpec, error) {
	if p.SampleDen <= 1 {
		return nil, nil
	}
	l1Sets := p.L1.SizeBytes / p.L1.LineBytes / p.L1.Ways
	l2Sets := p.L2.SizeBytes / p.L2.LineBytes / p.L2.Ways
	stride := l2Sets / sampleSDMSets
	if stride < 4 {
		stride = 4
	}
	return trace.NewSampleSpec(l2Sets, l1Sets, p.L2.LineBytes, p.SampleDen, stride)
}

// wrapSampledPolicy translates the compact machine's set indices back to
// full-geometry indices at the coop.Policy boundary. The policy is
// constructed for (and reasons about) the full machine; the engines run
// compact sets; the wrapper is the only place the two views meet, so every
// engine — including the frozen per-reference oracle — works unchanged.
func wrapSampledPolicy(p coop.Policy, spec *trace.SampleSpec) coop.Policy {
	orig := make([]int32, spec.CompactSets())
	for cs := range orig {
		orig[cs] = int32(spec.OrigSet(cs))
	}
	w := sampledPolicy{Policy: p, orig: orig}
	if b, ok := p.(coop.AccessBatcher); ok {
		return &sampledPolicyBatcher{sampledPolicy: w, b: b}
	}
	return &w
}

// sampledPolicy wraps every set-taking Policy method with the compact->full
// translation; the set-free methods pass through the embedded interface.
type sampledPolicy struct {
	coop.Policy
	orig []int32 // compact set index -> full-geometry set index
}

func (w *sampledPolicy) OnL2Access(c, set int, hit bool) {
	w.Policy.OnL2Access(c, int(w.orig[set]), hit)
}

func (w *sampledPolicy) Role(c, set int) ssl.Role {
	return w.Policy.Role(c, int(w.orig[set]))
}

func (w *sampledPolicy) Receivers(c, set int) []int {
	return w.Policy.Receivers(c, int(w.orig[set]))
}

func (w *sampledPolicy) OnSpillFail(c, set int) {
	w.Policy.OnSpillFail(c, int(w.orig[set]))
}

func (w *sampledPolicy) InsertPos(c, set int) cachesim.InsertPos {
	return w.Policy.InsertPos(c, int(w.orig[set]))
}

func (w *sampledPolicy) SpillInsertPos(c, set int, guestReused bool) cachesim.InsertPos {
	return w.Policy.SpillInsertPos(c, int(w.orig[set]), guestReused)
}

func (w *sampledPolicy) DemandVictimAllow(c, set int) func(way int) bool {
	return w.Policy.DemandVictimAllow(c, int(w.orig[set]))
}

func (w *sampledPolicy) SpillVictimAllow(c, set int) func(way int) bool {
	return w.Policy.SpillVictimAllow(c, int(w.orig[set]))
}

// sampledPolicyBatcher additionally forwards the batched hit-event path:
// the packed events (set<<1 | hit) are translated in place — the buffer is
// the engine's polBuf, reset right after the flush — so the deferred path
// stays allocation-free and the inner batcher sees exactly the events a
// full-geometry engine would deliver.
type sampledPolicyBatcher struct {
	sampledPolicy
	b coop.AccessBatcher
}

func (w *sampledPolicyBatcher) OnL2AccessBatch(c int, events []uint32, tickBase uint64) {
	for i, e := range events {
		events[i] = uint32(w.orig[e>>1])<<1 | e&1
	}
	w.b.OnL2AccessBatch(c, events, tickBase)
}

// ScaleSampled reconstructs full-run-comparable results from a sampled
// run's raw counters (the identity when SampleDen <= 1; Run's return stays
// raw so the differential walls compare exact values). Instruction counts
// are faithful — the filtered streams carry the skipped references'
// instruction gaps, so the run boundary differs from the full run's by at
// most one merged gap — and the BaseCPI share of each core's cycles with
// them; the memory
// share and every traffic counter are per-sampled-set quantities scaled by
// the denominator. Ratio metrics (CPI, MPKI, AML, weighted speedup) then
// estimate the full run's; DESIGN.md §16 derives which are exact and which
// approximate, and the `sampling` experiment pins the measured error.
func (s *System) ScaleSampled(r Results) Results {
	return scaleSampled(s.p.SampleDen, s.timing, r)
}

// ScaleSampled is System.ScaleSampled for the shared-LLC machine — the
// shared configuration samples with the private machine's spec (see
// SharedParams.SampleDen), so its raw counters rescale identically.
func (s *SharedSystem) ScaleSampled(r Results) Results {
	return scaleSampled(s.p.SampleDen, s.timing, r)
}

func scaleSampled(den int, timing []CoreTiming, r Results) Results {
	if den <= 1 {
		return r
	}
	d, df := uint64(den), float64(den)
	out := Results{Policy: r.Policy, Cores: make([]CoreStats, len(r.Cores))}
	for i, c := range r.Cores {
		base := float64(c.Instructions) * timing[i].BaseCPI
		c.Cycles = base + (c.Cycles-base)*df
		c.L1Accesses *= d
		c.L1Hits *= d
		c.L2Accesses *= d
		c.L2LocalHits *= d
		c.L2RemoteHits *= d
		c.L2MemFills *= d
		c.LatencySum *= df
		c.QueueDelay *= df
		c.Writebacks *= d
		c.OffChip *= d
		c.SpillsOut *= d
		c.SpillsIn *= d
		c.Swaps *= d
		c.SpillHits *= d
		c.PrefIssued *= d
		c.PrefUseful *= d
		c.BusTransfers *= d
		out.Cores[i] = c
	}
	return out
}
