package cmp

import (
	"reflect"
	"testing"

	"ascc/internal/cachesim"
	"ascc/internal/coop"
	"ascc/internal/policies"
	"ascc/internal/trace"
)

// FuzzBurstEquivalence drives a random machine and reference stream through
// the live run-to-event engine (System.Run over cachesim.ReadBurst with the
// batched below-L1 engine of l2batch.go), the same engine with batching off
// (Params.NoL2Batch), and the frozen per-reference stepping (refRun,
// refstep_test.go), then demands all three bit-identical: frozen CoreStats,
// final core clocks, the complete L1 and L2 state (tags, line flags,
// recency stacks, set counters) and the batch cursors. The decoded input
// varies every event class the kernel can hit: quota and frontier cut
// points (diverse BaseCPI), write-hit upgrades (random store bits over a
// tiny block space), batch wrap-around (streams longer than the 64-ref
// batch), both kernel paths (4-way specialized, non-4-way generic), and the
// prefetcher (which disables the batched engine's policy-event deferral).
func FuzzBurstEquivalence(f *testing.F) {
	f.Add([]byte("burst-kernel-seed"))
	f.Add([]byte{3, 1, 1, 9, 1, 0x10, 2, 1, 0x31, 5, 0, 0x52, 7, 1})
	f.Add([]byte{2, 0, 0, 200, 0, 0x21, 0, 0, 0x22, 1, 1, 0x23, 2, 0, 0x24, 3, 1})
	f.Add([]byte{0, 1, 1, 4, 1, 0xFF, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			t.Skip()
		}
		cores := 1 + int(data[0]%3)
		l1Ways := 2 << (data[1] % 2) // 2: generic kernel path, 4: specialized
		useASCC := data[2]%2 == 1
		quota := 100 + uint64(data[3])*16
		warmup := uint64(0)
		if data[4]%2 == 1 {
			warmup = quota / 3
		}
		p := tinyParams(cores)
		p.L1 = cachesim.Config{SizeBytes: 32 * 2 * l1Ways, Ways: l1Ways, LineBytes: 32}
		if data[4]&2 != 0 {
			p.Prefetch = true
			p.PrefetchEntries = 64
			p.PrefetchDegree = 2
		}
		// Per-core cyclic scripts from the tail bytes: 3 bytes per
		// reference over a 64-block space (heavy conflict pressure), with
		// store bits to force upgrade events.
		body := data[5:]
		per := len(body) / (3 * cores)
		if per == 0 {
			t.Skip()
		}
		script := func(core int) *scriptGen {
			refs := make([]trace.Ref, per)
			for i := range refs {
				b := body[(core*per+i)*3:]
				refs[i] = trace.Ref{
					Addr:  uint64(b[0]%64) * 32,
					Gap:   int32(b[1] % 8),
					Write: b[2]&1 == 1,
				}
			}
			return &scriptGen{name: "fuzz", refs: refs}
		}
		timing := make([]CoreTiming, cores)
		for i := range timing {
			timing[i] = CoreTiming{BaseCPI: 1 + float64((int(data[0])+i)%3)/2, Overlap: 0.5}
		}
		build := func(noBatch bool) *System {
			pv := p
			pv.NoL2Batch = noBatch
			gens := make([]trace.Generator, cores)
			for i := range gens {
				gens[i] = script(i)
			}
			var pol coop.Policy
			if useASCC {
				sets := p.L2.SizeBytes / p.L2.LineBytes / p.L2.Ways
				cfg := policies.AVGCCDefaultConfig(cores, sets, p.L2.Ways, 1)
				cfg.ResizePeriod = 50
				pol = policies.NewASCCVariant("AVGCC", cfg)
			} else {
				pol = policies.NewBaseline()
			}
			sys, err := New(pv, gens, timing, pol)
			if err != nil {
				t.Fatal(err)
			}
			return sys
		}

		live := build(false)
		unbatched := build(true)
		oracle := build(false)
		gotRes := live.Run(warmup, quota)
		unbRes := unbatched.Run(warmup, quota)
		wantRes := oracle.refRun(warmup, quota)

		if !reflect.DeepEqual(gotRes, wantRes) {
			t.Errorf("results diverge:\nburst: %+v\nper-ref: %+v", gotRes, wantRes)
		}
		if !reflect.DeepEqual(unbRes, wantRes) {
			t.Errorf("results diverge:\nno-batch: %+v\nper-ref: %+v", unbRes, wantRes)
		}
		for i := 0; i < cores; i++ {
			if live.clock[i] != oracle.clock[i] {
				t.Errorf("core %d clock: burst %v, per-ref %v", i, live.clock[i], oracle.clock[i])
			}
			if unbatched.clock[i] != oracle.clock[i] {
				t.Errorf("core %d clock: no-batch %v, per-ref %v", i, unbatched.clock[i], oracle.clock[i])
			}
			if live.batches[i].Pos != oracle.batches[i].Pos {
				t.Errorf("core %d batch cursor: burst %d, per-ref %d",
					i, live.batches[i].Pos, oracle.batches[i].Pos)
			}
			compareCaches(t, "L1", i, live.l1s[i], oracle.l1s[i])
			compareCaches(t, "L2", i, live.L2(i), oracle.L2(i))
			compareCaches(t, "L1/no-batch", i, unbatched.l1s[i], oracle.l1s[i])
			compareCaches(t, "L2/no-batch", i, unbatched.L2(i), oracle.L2(i))
		}
	})
}

// compareCaches demands identical observable cache state: per-set counters
// and recency stacks, and every line's tag and flags.
func compareCaches(t *testing.T, level string, core int, a, b *cachesim.Cache) {
	t.Helper()
	sets, ways := a.NumSets(), a.Ways()
	for si := 0; si < sets; si++ {
		if sa, sb := a.SetStatsFor(si), b.SetStatsFor(si); sa != sb {
			t.Errorf("%s[%d] set %d stats: burst %+v, per-ref %+v", level, core, si, sa, sb)
		}
		if ra, rb := a.RecencyStack(si), b.RecencyStack(si); !reflect.DeepEqual(ra, rb) {
			t.Errorf("%s[%d] set %d recency: burst %v, per-ref %v", level, core, si, ra, rb)
		}
		for w := 0; w < ways; w++ {
			if la, lb := *a.Line(si, w), *b.Line(si, w); la != lb {
				t.Errorf("%s[%d] set %d way %d: burst %+v, per-ref %+v", level, core, si, w, la, lb)
			}
		}
	}
}
