package cmp

import (
	"reflect"
	"testing"

	"ascc/internal/cachesim"
	"ascc/internal/coop"
	"ascc/internal/policies"
	"ascc/internal/trace"
)

// FuzzBurstEquivalence drives a random machine and reference stream through
// every below-L1 engine — the fused L1→L2 kernel (fused.go),
// the same engine under speculative in-run parallelism (SimParallel from a
// seed byte), the per-reference descent (EngineRefStep) and the batched
// turn engine (EngineBatched) — and demands all of them bit-identical to
// the frozen per-reference stepping (refRun, refstep_test.go): frozen
// CoreStats, final core clocks, the complete L1 and L2 state (tags, line
// flags, recency stacks, set counters) and the batch cursors. The decoded
// input varies every event class the kernels can hit: quota and frontier
// cut points (diverse BaseCPI), write-hit upgrades (random store bits over
// a tiny block space, exercising the fused kernel's refusal of Shared-line
// writes), clean-hit absorption runs (read-heavy streams over an
// L1-thrashing L2-resident working set), batch wrap-around (streams longer
// than the 64-ref batch), all kernel paths (4-way specialized, non-4-way
// generic), and the prefetcher (under which the fused engine falls back to
// the per-descent stepping and the batched engine disables policy-event
// deferral).
func FuzzBurstEquivalence(f *testing.F) {
	f.Add([]byte("burst-kernel-seed"))
	f.Add([]byte{3, 1, 1, 9, 1, 0x10, 2, 1, 0x31, 5, 0, 0x52, 7, 1})
	f.Add([]byte{2, 0, 0, 200, 0, 0x21, 0, 0, 0x22, 1, 1, 0x23, 2, 0, 0x24, 3, 1})
	f.Add([]byte{0, 1, 1, 4, 1, 0xFF, 0, 1})
	// L2-hit-heavy: one core, specialized 4-way L1, a read-only cycle over
	// 21 distinct blocks — far beyond the tiny L1 but L2-resident, so
	// nearly every access is an absorbable clean local hit.
	f.Add([]byte{
		0, 1, 0, 120, 0,
		0, 1, 0, 3, 1, 0, 6, 1, 0, 9, 1, 0, 12, 1, 0, 15, 1, 0, 18, 1, 0,
		21, 1, 0, 24, 1, 0, 27, 1, 0, 30, 1, 0, 33, 1, 0, 36, 1, 0, 39, 1, 0,
		42, 1, 0, 45, 1, 0, 48, 1, 0, 51, 1, 0, 54, 1, 0, 57, 1, 0, 60, 1, 0,
	})
	// Upgrade-heavy: two cores, every reference a store over overlapping
	// blocks — Shared-line write hits (absorption refused, descent
	// upgrades) and first-store L1 upgrades dominate.
	f.Add([]byte{
		1, 1, 1, 80, 16,
		0, 1, 1, 8, 1, 1, 16, 1, 1, 24, 1, 1, 0, 2, 1, 8, 2, 1,
		0, 1, 1, 8, 1, 1, 16, 1, 1, 24, 1, 1, 0, 2, 1, 16, 2, 1,
	})
	// Parallel widths: cores=3, SimParallel=3 (data[4] high bits), mixed
	// read/write stream — the speculative fused engine against the oracle.
	f.Add([]byte{
		2, 1, 1, 60, 12,
		5, 1, 0, 10, 1, 1, 15, 1, 0, 20, 1, 0, 25, 1, 1, 30, 1, 0,
		35, 1, 0, 40, 1, 1, 45, 1, 0, 50, 1, 0, 55, 1, 1, 60, 1, 0,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 8 {
			t.Skip()
		}
		cores := 1 + int(data[0]%3)
		l1Ways := 2 << (data[1] % 2) // 2: generic kernel path, 4: specialized
		useASCC := data[2]%2 == 1
		quota := 100 + uint64(data[3])*16
		warmup := uint64(0)
		if data[4]%2 == 1 {
			warmup = quota / 3
		}
		simPar := int(data[4]>>2) % 4 // 0..3 speculative workers
		p := tinyParams(cores)
		p.L1 = cachesim.Config{SizeBytes: 32 * 2 * l1Ways, Ways: l1Ways, LineBytes: 32}
		if data[4]&2 != 0 {
			p.Prefetch = true
			p.PrefetchEntries = 64
			p.PrefetchDegree = 2
		}
		// Per-core cyclic scripts from the tail bytes: 3 bytes per
		// reference over a 64-block space (heavy conflict pressure), with
		// store bits to force upgrade events.
		body := data[5:]
		per := len(body) / (3 * cores)
		if per == 0 {
			t.Skip()
		}
		script := func(core int) *scriptGen {
			refs := make([]trace.Ref, per)
			for i := range refs {
				b := body[(core*per+i)*3:]
				refs[i] = trace.Ref{
					Addr:  uint64(b[0]%64) * 32,
					Gap:   int32(b[1] % 8),
					Write: b[2]&1 == 1,
				}
			}
			return &scriptGen{name: "fuzz", refs: refs}
		}
		timing := make([]CoreTiming, cores)
		for i := range timing {
			timing[i] = CoreTiming{BaseCPI: 1 + float64((int(data[0])+i)%3)/2, Overlap: 0.5}
		}
		build := func(engine Engine, simParallel int) *System {
			pv := p
			pv.Engine = engine
			pv.SimParallel = simParallel
			gens := make([]trace.Generator, cores)
			for i := range gens {
				gens[i] = script(i)
			}
			var pol coop.Policy
			if useASCC {
				sets := p.L2.SizeBytes / p.L2.LineBytes / p.L2.Ways
				cfg := policies.AVGCCDefaultConfig(cores, sets, p.L2.Ways, 1)
				cfg.ResizePeriod = 50
				pol = policies.NewASCCVariant("AVGCC", cfg)
			} else {
				pol = policies.NewBaseline()
			}
			sys, err := New(pv, gens, timing, pol)
			if err != nil {
				t.Fatal(err)
			}
			return sys
		}

		arms := []struct {
			name string
			sys  *System
		}{
			{"fused", build(EngineFused, 0)},
			{"refstep", build(EngineRefStep, 0)},
			{"batched", build(EngineBatched, 0)},
		}
		if simPar > 1 {
			arms = append(arms, struct {
				name string
				sys  *System
			}{"fused-parallel", build(EngineFused, simPar)})
		}
		oracle := build(EngineRefStep, 0)
		wantRes := oracle.refRun(warmup, quota)

		for _, arm := range arms {
			gotRes := arm.sys.Run(warmup, quota)
			if !reflect.DeepEqual(gotRes, wantRes) {
				t.Errorf("results diverge:\n%s: %+v\nper-ref: %+v", arm.name, gotRes, wantRes)
			}
			for i := 0; i < cores; i++ {
				if arm.sys.clock[i] != oracle.clock[i] {
					t.Errorf("core %d clock: %s %v, per-ref %v", i, arm.name, arm.sys.clock[i], oracle.clock[i])
				}
				if arm.sys.batches[i].Pos != oracle.batches[i].Pos {
					t.Errorf("core %d batch cursor: %s %d, per-ref %d",
						i, arm.name, arm.sys.batches[i].Pos, oracle.batches[i].Pos)
				}
				compareCaches(t, "L1/"+arm.name, i, arm.sys.l1s[i], oracle.l1s[i])
				compareCaches(t, "L2/"+arm.name, i, arm.sys.L2(i), oracle.L2(i))
			}
		}
	})
}

// compareCaches demands identical observable cache state: per-set counters
// and recency stacks, and every line's tag and flags.
func compareCaches(t *testing.T, level string, core int, a, b *cachesim.Cache) {
	t.Helper()
	sets, ways := a.NumSets(), a.Ways()
	for si := 0; si < sets; si++ {
		if sa, sb := a.SetStatsFor(si), b.SetStatsFor(si); sa != sb {
			t.Errorf("%s[%d] set %d stats: burst %+v, per-ref %+v", level, core, si, sa, sb)
		}
		if ra, rb := a.RecencyStack(si), b.RecencyStack(si); !reflect.DeepEqual(ra, rb) {
			t.Errorf("%s[%d] set %d recency: burst %v, per-ref %v", level, core, si, ra, rb)
		}
		for w := 0; w < ways; w++ {
			if la, lb := *a.Line(si, w), *b.Line(si, w); la != lb {
				t.Errorf("%s[%d] set %d way %d: burst %+v, per-ref %+v", level, core, si, w, la, lb)
			}
		}
	}
}
