// Package cmp implements the chip-multiprocessor simulator: private L1/L2
// hierarchies per core, MESI-style broadcast coherence between the private
// L2s, the cooperative spilling/swap mechanics the policies drive, a
// trace-driven timing model, and the shared-LLC alternative of §6.1.
//
// The engine is deterministic at any parallelism setting: all inter-core
// interaction happens in the serial frontier turn order, and the optional
// speculation workers (parallel.go) only precompute work the serial order
// then validates. Experiments compare policies on bit-identical reference
// streams, which is what the paper's relative improvements measure.
package cmp

import (
	"fmt"
	"math"
	"math/bits"

	"ascc/internal/cachesim"
	"ascc/internal/coop"
	"ascc/internal/mem"
	"ascc/internal/prefetch"
	"ascc/internal/ssl"
	"ascc/internal/trace"
)

// Params describes the simulated machine. Latencies are in core cycles at
// the paper's 4 GHz (Table 2: 9-cycle local L2 hit, 25-cycle remote hit,
// 115 ns ≈ 460-cycle memory).
type Params struct {
	Cores int

	L1 cachesim.Config
	L2 cachesim.Config

	L2LocalHitCycles  float64
	L2RemoteHitCycles float64
	MemLatencyCycles  float64

	// BusOccupancy / MemOccupancy are the cycles each transfer holds the
	// shared on-chip bus and off-chip memory port (the bandwidth model).
	BusOccupancy float64
	MemOccupancy float64

	// Prefetch enables the per-LLC 16 kB stride prefetcher (§6.3).
	Prefetch        bool
	PrefetchEntries int
	PrefetchDegree  int

	// Engine selects the below-L1 stepping engine. The zero value — the
	// fused L1→L2 kernel (DESIGN.md §15) — is the default everywhere;
	// results are bit-identical across all engines (FuzzBurstEquivalence
	// holds them together against the frozen per-reference oracle), so the
	// non-default engines exist for the honest A/Bs and as differential
	// references.
	Engine Engine

	// NoDirectory disables the set-sharded coherence directory (DESIGN.md
	// §13) and answers holder-mask queries with the broadcast row scan. The
	// zero value — directory on — is the default everywhere; results are
	// bit-identical either way (FuzzDirectoryEquivalence holds the modes
	// together), so the flag exists for the honest A/B and as an escape
	// hatch.
	NoDirectory bool

	// SimParallel is the speculative-worker count for in-run core
	// parallelism (parallel.go). 0 and 1 run the engine serially; larger
	// values offload upcoming L1 bursts to that many goroutines. Results
	// are bit-identical at any setting. Requires the fused engine (the
	// speculation protocol is spliced into its turn loop only).
	SimParallel int

	// SampleDen, when > 1, runs the set-sampled fast path (DESIGN.md §16):
	// the machine is built at 1/SampleDen of the L2 sets (the deterministic,
	// leader-including residue sample of trace.SampleSpec) and the caller
	// must feed it the correspondingly filtered and rewritten reference
	// streams (SampleSpec.View — the harness wires this). Per-set state and
	// raw counters are then exactly a full-geometry machine's on the same
	// filtered streams (FuzzSampleEquivalence); System.ScaleSampled
	// reconstructs full-run-comparable cycles and counters. 0 and 1 are
	// full fidelity. Incompatible with Prefetch, whose stride tables carry
	// cross-set address deltas that filtering destroys.
	SampleDen int

	// SyncSlack coarsens the cross-core interleave by letting the minimum-
	// clock core run that many cycles past the frontier runner-up before
	// yielding its turn. 0 (the default) is the exact per-reference sync
	// every full-fidelity run uses. The knob exists for the set-sampled fast
	// path, whose cross-core interleave is already approximate: the clock
	// trajectories a sampled run walks are the full run's, so without slack
	// the turn count stays at full-fidelity levels while the references per
	// turn shrink by SampleDen, and the per-turn bookkeeping swamps the
	// kernel. A slack of a fraction of one memory round trip keeps the
	// interleave skew within the magnitude of the skew a single full-
	// fidelity event already causes, while recovering most of the full-
	// fidelity references-per-turn. The harness sets this for sampled runs
	// (harness.Config.params); the `sampling` experiment golden pins the
	// resulting accuracy. Single-core runs have no frontier, so the
	// FuzzSampleEquivalence exactness claim is slack-independent there.
	SyncSlack float64
}

// Engine names a below-L1 stepping engine (Params.Engine).
type Engine uint8

const (
	// EngineRefStep is the shipped default and the fastest measured engine
	// (BENCH_kernel.json "burst"/"l1l2fused"): every L1 miss exits the
	// run-to-event kernel and resolves as one fully-resolved descent
	// (DESIGN.md §11-12). The all-scalar kernel exit is cheap enough that
	// neither deferring the below-L1 work (EngineBatched) nor absorbing it
	// in-kernel (EngineFused) beats it — see DESIGN.md §15's bound.
	EngineRefStep Engine = iota
	// EngineFused is the fused L1→L2 run-to-event kernel (DESIGN.md §15):
	// cachesim.ReadBurstFused absorbs provably event-free clean local L2
	// hits in-kernel and exits only at true events. Bit-identical to
	// EngineRefStep; measured 0.85-0.96x on the scale-8 mixes (the
	// absorber's probe duplicates the descent's on every refusal, and the
	// exit it saves was already nearly free). Required by -sim-parallel —
	// the speculation protocol is spliced into its turn loop — and kept
	// selectable for absorption-heavy workloads.
	EngineFused
	// EngineBatched is the PR 6 batched turn engine (l2batch.go), demoted
	// to a fuzz/differential reference after measuring 0.918-0.936x
	// against EngineRefStep (BENCH_kernel.json "l2batch").
	EngineBatched
)

// String names the engine (flag parsing round-trips through these).
func (e Engine) String() string {
	switch e {
	case EngineFused:
		return "fused"
	case EngineRefStep:
		return "refstep"
	case EngineBatched:
		return "batched"
	}
	return fmt.Sprintf("Engine(%d)", uint8(e))
}

// ParseEngine maps a flag value to an Engine.
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "fused":
		return EngineFused, nil
	case "refstep":
		return EngineRefStep, nil
	case "batched":
		return EngineBatched, nil
	}
	return 0, fmt.Errorf("cmp: unknown engine %q (want fused, refstep or batched)", name)
}

// DefaultParams returns the paper's Table 2 machine with the geometry scale
// divisor applied (DESIGN.md §5): scale 1 is the paper's exact machine,
// scale 8 is the fast configuration used by tests and benches.
func DefaultParams(cores, scale int) Params {
	if scale < 1 {
		panic(fmt.Sprintf("cmp: scale %d < 1", scale))
	}
	return Params{
		Cores:             cores,
		L1:                cachesim.Config{SizeBytes: 32 * 1024 / scale, Ways: 4, LineBytes: 32},
		L2:                cachesim.Config{SizeBytes: 1024 * 1024 / scale, Ways: 8, LineBytes: 32},
		L2LocalHitCycles:  9,
		L2RemoteHitCycles: 25,
		MemLatencyCycles:  460,
		BusOccupancy:      4,
		MemOccupancy:      16,
		PrefetchEntries:   2048,
		PrefetchDegree:    2,
	}
}

// Validate checks the machine description.
func (p Params) Validate() error {
	if p.Cores <= 0 {
		return fmt.Errorf("cmp: non-positive core count %d", p.Cores)
	}
	if p.Cores > 64 {
		return fmt.Errorf("cmp: core count %d exceeds the 64-bit holder-mask limit", p.Cores)
	}
	if p.SimParallel < 0 {
		return fmt.Errorf("cmp: negative sim parallelism %d", p.SimParallel)
	}
	if p.SimParallel > 1 && p.Engine != EngineFused {
		return fmt.Errorf("cmp: sim parallelism %d requires the fused engine (Engine is %s)", p.SimParallel, p.Engine)
	}
	if err := p.L1.Validate(); err != nil {
		return err
	}
	if err := p.L2.Validate(); err != nil {
		return err
	}
	if p.L1.LineBytes != p.L2.LineBytes {
		return fmt.Errorf("cmp: L1 line %dB != L2 line %dB", p.L1.LineBytes, p.L2.LineBytes)
	}
	if p.SampleDen > 1 {
		if p.Prefetch {
			return fmt.Errorf("cmp: set sampling (1/%d) is incompatible with the stride prefetcher (cross-set state)", p.SampleDen)
		}
		if _, err := p.SampleSpec(); err != nil {
			return err
		}
	}
	return nil
}

// CoreTiming carries the per-benchmark timing-model parameters: the CPI of
// non-memory work and the fraction of memory latency the out-of-order core
// cannot hide (see internal/workload.Profile).
type CoreTiming struct {
	BaseCPI float64
	Overlap float64
}

// CoreStats is everything measured for one core, frozen when the core
// commits its instruction quota.
type CoreStats struct {
	Instructions uint64
	Cycles       float64

	L1Accesses uint64
	L1Hits     uint64

	L2Accesses   uint64 // demand accesses (L1 misses)
	L2LocalHits  uint64
	L2RemoteHits uint64
	L2MemFills   uint64

	LatencySum float64 // raw (un-overlapped) latency over demand L2 accesses
	QueueDelay float64 // bus + memory queueing included in LatencySum

	Writebacks uint64 // dirty evictions written to memory
	OffChip    uint64 // memory fills + writebacks + prefetch fetches

	SpillsOut uint64 // last-copy victims this cache pushed to a peer
	SpillsIn  uint64 // guest lines accepted
	Swaps     uint64 // §3.2 last-copy swaps performed on remote hits
	SpillHits uint64 // remote hits served by lines this core had spilled

	PrefIssued uint64
	PrefUseful uint64

	BusTransfers uint64
}

// CPI returns cycles per committed instruction.
func (s CoreStats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return s.Cycles / float64(s.Instructions)
}

// IPC returns instructions per cycle.
func (s CoreStats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / s.Cycles
}

// MPKI returns L2 misses (remote hits and memory fills both miss the local
// L2; the paper's L2 MPKI counts local misses) per kilo-instruction.
func (s CoreStats) MPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.L2RemoteHits+s.L2MemFills) / float64(s.Instructions) * 1000
}

// LocalMPKI returns misses that left the chip per kilo-instruction.
func (s CoreStats) LocalMPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.L2MemFills) / float64(s.Instructions) * 1000
}

// AML returns the average memory latency per demand L2 access, the paper's
// Figure 10 metric (sequential-processing assumption).
func (s CoreStats) AML() float64 {
	if s.L2Accesses == 0 {
		return 0
	}
	return s.LatencySum / float64(s.L2Accesses)
}

// Results is the outcome of one simulation.
type Results struct {
	Policy string
	Cores  []CoreStats
}

// TotalOffChip sums off-chip accesses over the cores.
func (r Results) TotalOffChip() uint64 {
	var n uint64
	for _, c := range r.Cores {
		n += c.OffChip
	}
	return n
}

// Energy evaluates the memory-hierarchy energy model over the run.
func (r Results) Energy(e mem.Energy) float64 {
	var l2, bus, dram uint64
	for _, c := range r.Cores {
		l2 += c.L2Accesses + c.SpillsIn
		bus += c.BusTransfers
		dram += c.OffChip
	}
	return e.Total(l2, bus, dram)
}

// refBatch is how many references step prefetches per core per NextBatch
// call: large enough to amortise the dynamic dispatch into the generator,
// small enough that the per-core buffers stay resident in L1.
const refBatch = 64

// System is the private-LLC CMP.
type System struct {
	p      Params
	policy coop.Policy
	gens   []trace.Generator
	timing []CoreTiming

	l1s []*cachesim.Cache
	// group gangs the private L2s into one set-interleaved tag slab; the
	// coherence paths ask it holder-mask questions instead of snooping each
	// peer cache separately. l2s are its member views.
	group *cachesim.CacheGroup
	l2s   []*cachesim.Cache
	pf    []*prefetch.Stride

	bus     mem.Port
	memPort mem.Port

	clock      []float64
	live       []CoreStats
	frozen     []CoreStats
	done       []bool
	l2Accesses []uint64

	// batches are the per-core decoded-reference buffers the burst kernel
	// consumes from (all views into one flat backing array so the hot
	// buffers stay adjacent); unconsumed references survive phase
	// boundaries, so the per-core streams are identical to unbatched
	// generation.
	batches []trace.Batch

	// front is runPhase's frontier scratch: active core indices kept
	// sorted by (clock, index), so each turn reads the minimum core and
	// the runner-up's clock in O(1) and re-inserts the stepped core
	// instead of rescanning every clock.
	front []int32

	lineShift uint

	// Batched below-L1 engine state (l2batch.go). polBuf is the stepping
	// core's deferred policy events (set<<1|hit) since the last flush; ops
	// is the port-operation record of the current miss descent; batcher is
	// the policy's optional bulk event handler; deferPol gates the hit-path
	// deferral — off when prefetching (whose insert/evict path reads policy
	// state on L2 hits) and for policies without an AccessBatcher, where
	// the flush would replay the identical per-event calls and buffering
	// would be pure overhead.
	polBuf   []uint32
	polBase  uint64 // access number preceding polBuf[0]'s
	ops      []portOp
	batcher  coop.AccessBatcher
	deferPol bool

	// Fused-engine state (fused.go). ab is the turn's kernel-side
	// absorption scratch (reused, never reallocated); hitCost is the
	// per-core precomputed L2LocalHitCycles*Overlap clock add.
	ab      cachesim.L2Absorb
	hitCost []float64

	// spec is the speculative-burst engine (parallel.go), nil unless a
	// phase has run with Params.SimParallel > 1.
	spec *specEngine
}

// New builds a system. gens and timing must have p.Cores entries; policy
// must not be nil (use policies.NewBaseline() for the plain private LLC).
func New(p Params, gens []trace.Generator, timing []CoreTiming, policy coop.Policy) (*System, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(gens) != p.Cores || len(timing) != p.Cores {
		return nil, fmt.Errorf("cmp: %d cores but %d generators / %d timings", p.Cores, len(gens), len(timing))
	}
	if policy == nil {
		return nil, fmt.Errorf("cmp: nil policy")
	}
	spec, err := p.SampleSpec()
	if err != nil {
		return nil, err
	}
	if spec != nil {
		// Set-sampled fast path (DESIGN.md §16): compact the geometry to
		// the sampled sets — everything below allocates and indexes 1/den
		// of the L2 (and L1) sets — while the policy keeps seeing
		// full-geometry set indices through the translating wrapper, so its
		// SDM classes, PSEL training, per-set quotas and RNG draw sequence
		// are exactly the full machine's on the same filtered streams.
		if p.L1, err = cachesim.SampledConfig(p.L1, p.SampleDen); err != nil {
			return nil, err
		}
		if p.L2, err = cachesim.SampledConfig(p.L2, p.SampleDen); err != nil {
			return nil, err
		}
		policy = wrapSampledPolicy(policy, spec)
	}
	s := &System{
		p:          p,
		policy:     policy,
		gens:       gens,
		timing:     timing,
		l1s:        make([]*cachesim.Cache, p.Cores),
		group:      cachesim.NewGroup(p.Cores, p.L2),
		l2s:        make([]*cachesim.Cache, p.Cores),
		bus:        mem.Port{Occupancy: p.BusOccupancy},
		memPort:    mem.Port{Occupancy: p.MemOccupancy},
		clock:      make([]float64, p.Cores),
		live:       make([]CoreStats, p.Cores),
		frozen:     make([]CoreStats, p.Cores),
		done:       make([]bool, p.Cores),
		l2Accesses: make([]uint64, p.Cores),
		batches:    make([]trace.Batch, p.Cores),
		front:      make([]int32, p.Cores),
	}
	backing := make([]trace.Ref, p.Cores*refBatch)
	for i := 0; i < p.Cores; i++ {
		s.l1s[i] = cachesim.New(p.L1)
		s.l2s[i] = s.group.Cache(i)
		s.batches[i] = trace.Batch{
			Refs: backing[i*refBatch : (i+1)*refBatch : (i+1)*refBatch],
			Pos:  refBatch, // empty: first step refills
		}
	}
	if p.Prefetch {
		s.pf = make([]*prefetch.Stride, p.Cores)
		for i := range s.pf {
			s.pf[i] = prefetch.NewStride(p.PrefetchEntries, p.PrefetchDegree)
		}
	}
	for ls := uint(0); ls < 32; ls++ {
		if 1<<ls == p.L2.LineBytes {
			s.lineShift = ls
			break
		}
	}
	if !p.NoDirectory {
		s.group.EnableDirectory()
	}
	s.batcher, _ = policy.(coop.AccessBatcher)
	s.deferPol = s.pf == nil && s.batcher != nil
	s.polBuf = make([]uint32, 0, 64)
	s.ops = make([]portOp, 0, 8)
	// The absorbed-hit clock add, multiplied once per core outside the
	// kernel: the same two float64 operands as the reference engines'
	// per-access lat*Overlap, so the product is bit-identical.
	s.hitCost = make([]float64, p.Cores)
	for i := range s.hitCost {
		s.hitCost[i] = p.L2LocalHitCycles * timing[i].Overlap
	}
	return s, nil
}

// L2 exposes core i's private LLC (tests, harness introspection).
func (s *System) L2(i int) *cachesim.Cache { return s.l2s[i] }

// Policy returns the active cooperation policy.
func (s *System) Policy() coop.Policy { return s.policy }

// CoherenceProbes returns the number of holder-mask queries the coherence
// fabric has answered — row scans in broadcast mode, directory lookups with
// the directory on. Counted at identical call sites in both modes
// (TestProbeCountParity), so the figures are comparable across an A/B.
func (s *System) CoherenceProbes() uint64 { return s.group.Probes() }

// Run simulates until every core has committed instrPerCore instructions.
// Per the paper, a core that reaches its quota keeps executing (and keeps
// disturbing the caches) until the last core finishes; its statistics are
// frozen at the quota. Warmup instructions (statistics discarded, caches
// warmed) are run first when warmup > 0.
func (s *System) Run(warmup, instrPerCore uint64) Results {
	if warmup > 0 {
		s.runPhase(warmup)
		for i := range s.live {
			s.live[i] = CoreStats{}
			s.clock[i] = 0
			s.done[i] = false
		}
		s.bus.Reset()
		s.memPort.Reset()
	}
	s.runPhase(instrPerCore)
	res := Results{Policy: s.policy.Name(), Cores: make([]CoreStats, s.p.Cores)}
	copy(res.Cores, s.frozen)
	return res
}

// runPhase advances every core to the quota through the selected engine:
// the fused L1→L2 kernel by default (speculatively parallel when
// SimParallel asks for it, and falling back to the per-descent stepping
// when a prefetcher is attached — prefetch trains on every demand access,
// so nothing is absorbable), or one of the reference engines.
func (s *System) runPhase(quota uint64) {
	switch {
	case s.p.Engine == EngineRefStep:
		s.runPhaseNoBatch(quota)
	case s.p.Engine == EngineBatched:
		s.runPhaseBatched(quota)
	case s.p.SimParallel > 1:
		s.runPhaseParallel(quota)
	case s.pf != nil:
		s.runPhaseNoBatch(quota)
	default:
		s.runPhaseFused(quota)
	}
}

// runPhaseNoBatch advances every core to the quota, interleaving by local time.
// Stepping a core only moves that core's clock forward, so the minimum core
// stays the minimum until it crosses the runner-up: the loop caches the
// (argmin, second-smallest) frontier and only rescans on a crossing or when
// the stepped core finishes, instead of scanning every clock per step.
//
// Within a core's turn the stepping is run-to-event (DESIGN.md §11): the
// L1 burst kernel (cachesim.ReadBurst) consumes consecutive latency-0
// references — L1 read hits and repeat stores to Modified lines — entirely
// inside internal/cachesim, keeping instructions, hits and the clock in
// registers, and returns only on an event: an L1 miss, a store needing the
// write-through upgrade, batch exhaustion, the instruction quota, or the
// clock crossing the frontier's runner-up. Event references are consumed
// too — the kernel performs their L1-level half (tag probe, set counters,
// recency touch, instruction-gap clock add) and returns only the below-L1
// remainder, so no reference is ever probed twice. The burst accounting is
// folded into CoreStats once per event, and s.clock[c] is published lazily
// — its only readers are the bus/memory queueing models reached through
// l2Demand, and the frontier scan above, both of which run only after a
// publish. The differential oracle for all of this is the frozen
// per-reference loop in refstep_test.go (FuzzBurstEquivalence).
//
// This function is EngineRefStep: the per-descent side of the below-L1
// engine A/Bs (DESIGN.md §§12, 15), kept verbatim — changing it would skew
// the recorded comparisons. It also serves as the fused engine's fallback
// when a prefetcher is attached (every demand access trains the prefetcher,
// so no access is absorbable and the engines coincide).
func (s *System) runPhaseNoBatch(quota uint64) {
	n := s.p.Cores
	shift := s.lineShift
	// The frontier is the active cores sorted by (clock, index) — the lex
	// order a full rescan's strict-< comparisons produce, so ties resolve
	// to the lowest index exactly as the original linear scan did. It is
	// maintained incrementally: each turn steps front[0] against the
	// runner-up front[1], then re-inserts the stepped core at its new
	// clock (or drops it at the quota), which replaces the per-turn
	// all-cores rescan with a short shift of the few cores passed.
	front := s.front[:0]
	for i := 0; i < n; i++ {
		if s.done[i] {
			continue
		}
		j := len(front)
		front = append(front, int32(i))
		for ; j > 0; j-- {
			p := front[j-1]
			// Initial clocks may be mid-run values (a warmup handoff
			// leaves cores at distinct times): same lex order as below.
			if s.clock[p] < s.clock[i] || (s.clock[p] == s.clock[i] && p < int32(i)) {
				break
			}
			front[j], front[j-1] = front[j-1], front[j]
		}
	}
	for len(front) > 0 {
		c := int(front[0])
		second := math.Inf(1)
		if len(front) > 1 {
			// SyncSlack is 0 outside the sampled fast path, keeping the
			// exact per-reference sync (see Params.SyncSlack).
			second = s.clock[front[1]] + s.p.SyncSlack
		}
		// Step the minimum core until it crosses the runner-up or retires.
		st := &s.live[c]
		t := s.timing[c]
		gen := s.gens[c]
		bt := &s.batches[c]
		l1 := s.l1s[c]
		instr := st.Instructions
		clock := s.clock[c]
		var accesses, allHits uint64
		var ev cachesim.BurstEvent
		var hits, block uint64
		var way int
		var write bool
	stepping:
		for {
			ev, instr, clock, hits, block, way, write =
				l1.ReadBurst(bt, shift, t.BaseCPI, quota, second, instr, clock)
			accesses += hits
			allHits += hits
			switch ev {
			case cachesim.BurstBatchEnd:
				bt.Refill(gen)
				continue
			case cachesim.BurstQuota, cachesim.BurstFrontier:
				break stepping
			case cachesim.BurstUpgrade:
				// Store hit on a line whose inclusive L2 copy is not yet
				// Modified: the kernel already did the L1 hit accounting and
				// recency touch; the write-through upgrade and the marker
				// transition happen here (access's logic, sans re-probe).
				// The upgrade's latency is 0, so the clock is unchanged.
				line := l1.Line(l1.SetIndex(block), way)
				s.writeThroughHit(c, block)
				line.State = cachesim.Modified
			case cachesim.BurstMiss:
				// The kernel counted the set-level miss and the reference's
				// instruction-gap clock add; only the descent below the L1
				// remains. l2Demand reads s.clock[c] (bus and memory
				// queueing), so the lazy clock is published first.
				accesses++
				s.clock[c] = clock
				lat := s.l2Demand(c, block, write)
				clock += lat * t.Overlap
				s.clock[c] = clock
			}
			// The event reference is now fully committed: apply the same
			// quota-then-frontier checks the per-reference loop ran after it.
			if instr >= quota || clock >= second {
				break stepping
			}
		}
		// Fold the burst's deferred accounting into CoreStats and publish
		// the lazy clock, once per turn: the register state above is the
		// only live copy between events, so nothing mid-turn reads
		// CoreStats' instruction/L1/cycle fields — and s.clock[c] only
		// before descending into l2Demand (DESIGN.md §11).
		st.Instructions = instr
		st.L1Accesses += accesses
		st.L1Hits += allHits
		st.Cycles = clock
		s.clock[c] = clock
		if instr >= quota {
			s.frozen[c] = *st
			s.done[c] = true
			front = front[1:]
			continue
		}
		// Re-insert the stepped core: shift forward every core now lex
		// (clock, index)-before it. Only this core's clock moved, so the
		// rest of the frontier is still sorted.
		j := 0
		for j+1 < len(front) {
			nx := front[j+1]
			cv := s.clock[nx]
			if cv < clock || (cv == clock && int(nx) < c) {
				front[j] = nx
				j++
			} else {
				break
			}
		}
		front[j] = int32(c)
	}
}

// access runs one reference through the hierarchy and returns its raw
// latency (before the overlap factor).
func (s *System) access(c int, ref trace.Ref) float64 {
	block := ref.Addr >> s.lineShift
	st := &s.live[c]
	st.L1Accesses++
	if w, hit := s.l1s[c].Access(block); hit {
		st.L1Hits++
		if ref.Write {
			// The L1 line's state mirrors whether the inclusive L2 copy is
			// already Modified: the first store per L1 residency runs the
			// write-through upgrade, repeat stores skip the L2 probe. The
			// marker is cleared whenever the L2 copy leaves Modified while
			// the L1 copy survives (the M->S downgrade in remoteHit); every
			// other exit from Modified invalidates the L1 line too.
			l1 := s.l1s[c]
			line := l1.Line(l1.SetIndex(block), w)
			if line.State != cachesim.Modified {
				s.writeThroughHit(c, block)
				line.State = cachesim.Modified
			}
		}
		return 0 // L1 hit latency is folded into BaseCPI
	}
	return s.l2Demand(c, block, ref.Write)
}

// writeThroughHit propagates a store that hit the L1 to the inclusive L2:
// the L2 copy is dirtied without touching recency or policy counters, and a
// shared line is upgraded (invalidating remote copies) first.
func (s *System) writeThroughHit(c int, block uint64) {
	l2 := s.l2s[c]
	w, ok := l2.Lookup(block)
	if !ok {
		panic(fmt.Sprintf("cmp: inclusion violated: block %#x in L1[%d] but not its L2", block, c))
	}
	line := l2.Line(l2.SetIndex(block), w)
	if line.State == cachesim.Shared {
		s.invalidateOthers(block, c)
		s.live[c].BusTransfers++
	}
	line.State = cachesim.Modified
	line.Dirty = true
}

// l2Demand handles an L1 miss: local L2, then the snoop bus, then memory.
func (s *System) l2Demand(c int, block uint64, write bool) float64 {
	st := &s.live[c]
	l2 := s.l2s[c]
	set := l2.SetIndex(block)
	st.L2Accesses++
	s.l2Accesses[c]++
	w, hit := l2.Access(block)
	s.policy.OnL2Access(c, set, hit)
	// Tick runs after the access resolves (it was a defer; hoisted out of
	// the per-access path — nothing below returns early).
	tick := s.l2Accesses[c]

	var lat float64
	switch {
	case hit:
		line := l2.Line(set, w)
		line.Reused = true
		if line.Prefetch {
			line.Prefetch = false
			st.PrefUseful++
		}
		if write {
			if line.State == cachesim.Shared {
				s.invalidateOthers(block, c)
				st.BusTransfers++
			}
			line.State = cachesim.Modified
			line.Dirty = true
		}
		st.L2LocalHits++
		lat = s.p.L2LocalHitCycles
		s.fillL1(c, block)

	default:
		// Local miss: broadcast snoop on the bus. The ganged tag slab
		// answers "who holds this block" in one fused row scan.
		qd := s.bus.Request(s.clock[c])
		st.BusTransfers++
		st.QueueDelay += qd
		holders := s.holderMask(block, c)
		if holders != 0 {
			lat = s.p.L2RemoteHitCycles + qd
			st.L2RemoteHits++
			s.remoteHit(c, block, set, holders, write)
		} else {
			mqd := s.memPort.Request(s.clock[c])
			st.QueueDelay += mqd
			lat = s.p.MemLatencyCycles + qd + mqd
			st.L2MemFills++
			st.OffChip++
			state := cachesim.Exclusive
			if write {
				state = cachesim.Modified
			}
			s.insertAndEvict(c, block, cachesim.Line{State: state, Dirty: write, Owner: int16(c)})
			s.fillL1(c, block)
		}
	}
	st.LatencySum += lat
	s.trainPrefetcher(c, block)
	s.policy.Tick(c, tick)
	return lat
}

// remoteHit resolves a demand miss that found the line in one or more peer
// LLCs (holders is the peer bitmask from the fused snoop, never zero). See
// DESIGN.md §2 for the protocol choices: spilled lines are served in place
// (repeated 25-cycle remote hits, as in DSR); ASCC-family policies migrate
// last copies home and swap a last-copy victim into the freed slot (§3.2);
// genuinely shared lines replicate as in plain MESI.
func (s *System) remoteHit(c int, block uint64, set int, holders uint64, write bool) {
	st := &s.live[c]
	r := bits.TrailingZeros64(holders)
	l2r := s.l2s[r]
	rw, ok := l2r.Lookup(block)
	if !ok {
		panic("cmp: holder lost the line")
	}
	rl := *l2r.Line(set, rw)
	lastCopy := holders&(holders-1) == 0

	if rl.Spilled {
		s.live[rl.Owner].SpillHits++
	}

	if write {
		// Take ownership: every remote copy is invalidated and the data
		// moves here. Dirty data travels with the line — no memory write.
		for m := holders; m != 0; m &= m - 1 {
			h := bits.TrailingZeros64(m)
			s.l2s[h].Invalidate(block)
			s.l1MutLock(h)
			s.l1s[h].Invalidate(block)
			s.l1MutUnlock(h)
			st.BusTransfers++
		}
		proto := cachesim.Line{State: cachesim.Modified, Dirty: true, Reused: true, Owner: int16(c)}
		if !(lastCopy && s.allocWithSwap(c, block, r, rw, proto)) {
			s.insertAndEvict(c, block, proto)
		}
		s.fillL1(c, block)
		return
	}

	if s.policy.SwapEnabled() && lastCopy {
		// ASCC §3.2: migrate the last copy home; if the local victim is
		// itself a last copy, swap it into the slot freed in the remote
		// cache to keep both lines on chip.
		s.l1MutLock(r)
		s.l1s[r].Invalidate(block)
		s.l1MutUnlock(r)
		l2r.Invalidate(block)
		state := cachesim.Exclusive
		if rl.Dirty {
			state = cachesim.Modified
		}
		proto := cachesim.Line{State: state, Dirty: rl.Dirty, Reused: true, Owner: rl.Owner}
		if !s.allocWithSwap(c, block, r, rw, proto) {
			s.insertAndEvict(c, block, proto)
		}
		s.fillL1(c, block)
		st.BusTransfers++
		return
	}

	if rl.Spilled {
		// Serve in place: the guest line stays where it was spilled and is
		// refreshed in its host set's recency stack.
		l2r.Touch(set, rw)
		l2r.Line(set, rw).Reused = true
		st.BusTransfers++
		return
	}

	// Plain MESI read sharing: downgrade the owner, replicate locally.
	if rl.State == cachesim.Modified {
		// M -> S requires the dirty data to reach memory.
		mqd := s.memPort.Request(s.clock[c])
		st.QueueDelay += mqd
		s.live[r].Writebacks++
		s.live[r].OffChip++
		l2r.Line(set, rw).Dirty = false
		// The owner's L1 copy (if any) carried the Modified marker; the L2
		// copy is Shared from here on, so the next store must re-upgrade.
		s.l1MutLock(r)
		l1r := s.l1s[r]
		if lw, ok := l1r.Lookup(block); ok {
			l1r.Line(l1r.SetIndex(block), lw).State = cachesim.Exclusive
		}
		s.l1MutUnlock(r)
	}
	l2r.Line(set, rw).State = cachesim.Shared
	st.BusTransfers++
	s.insertAndEvict(c, block, cachesim.Line{State: cachesim.Shared, Owner: int16(c)})
	s.fillL1(c, block)
}

// allocWithSwap implements the §3.2 swap: if the policy has swapping
// enabled and the victim the local fill would evict is a valid last copy,
// the victim is placed into the way just freed in the remote cache (way rw
// of cache r) and the requested line takes its place locally. Returns false
// when the swap conditions do not hold (the caller falls back to a normal
// fill).
func (s *System) allocWithSwap(c int, block uint64, r, rw int, proto cachesim.Line) bool {
	if !s.policy.SwapEnabled() {
		return false
	}
	l2 := s.l2s[c]
	set := l2.SetIndex(block)
	if allow := s.policy.DemandVictimAllow(c, set); allow != nil {
		return false // region-partitioned policies do not swap
	}
	vw := l2.VictimInSet(set)
	victim := *l2.Line(set, vw)
	if !victim.Valid() || !s.isLastCopy(victim.Tag, c) {
		return false
	}
	// The remote way must still be free (Invalidate left it invalid).
	ev := l2.InsertWay(block, vw, s.policy.InsertPos(c, set), proto)
	if ev.Tag != victim.Tag {
		panic("cmp: swap victim changed underfoot")
	}
	s.l1s[c].Invalidate(victim.Tag)
	victim.Spilled = true
	victim.Reused = false
	s.l2s[r].InsertWay(victim.Tag, rw, cachesim.InsertLRU, victim)
	s.live[c].Swaps++
	s.live[c].BusTransfers++
	return true
}

// insertAndEvict performs a fill into cache c, honouring the policy's
// insertion position and victim-region restriction, and sends the evicted
// line down the eviction path (which may spill it).
func (s *System) insertAndEvict(c int, block uint64, proto cachesim.Line) {
	l2 := s.l2s[c]
	set := l2.SetIndex(block)
	pos := s.policy.InsertPos(c, set)
	var ev cachesim.Line
	if allow := s.policy.DemandVictimAllow(c, set); allow != nil {
		w := l2.VictimAmong(set, allow)
		if w < 0 {
			w = l2.VictimInSet(set)
		}
		ev = l2.InsertWay(block, w, pos, proto)
	} else {
		ev = l2.Insert(block, pos, proto)
	}
	s.handleEviction(c, set, ev, true)
}

// handleEviction routes an evicted line: back-invalidate the L1 (inclusion),
// drop it silently if a peer still holds a copy, spill it if the policy
// wants to (demand evictions only — spills do not cascade), else write it
// back to memory when dirty.
func (s *System) handleEviction(c, set int, ev cachesim.Line, allowSpill bool) {
	if !ev.Valid() {
		return
	}
	// c may be a spill receiver, not the stepping core, so the L1
	// back-invalidate takes the speculation lock.
	s.l1MutLock(c)
	s.l1s[c].Invalidate(ev.Tag)
	s.l1MutUnlock(c)
	if !s.isLastCopy(ev.Tag, c) {
		return
	}
	st := &s.live[c]
	if allowSpill && !ev.Prefetch &&
		(!ev.Spilled || s.policy.AllowRespill()) &&
		s.policy.Role(c, set) == ssl.Spiller {
		if !ev.Reused && !ev.Spilled && s.policy.SpillRequiresReuse() {
			// The victim showed no locality: not worth a peer's way. The
			// set still has a capacity problem, so take the §3.2 path.
			s.policy.OnSpillFail(c, set)
		} else {
			for _, r := range s.policy.Receivers(c, set) {
				if r != c && s.spillInto(c, r, set, ev) {
					return
				}
			}
			s.policy.OnSpillFail(c, set)
		}
	}
	if ev.Dirty {
		mqd := s.memPort.Request(s.clock[c])
		st.QueueDelay += mqd
		st.Writebacks++
		st.OffChip++
	}
}

// spillInto places a last-copy victim from cache c into the same-index set
// of cache r. The receiver's own victim goes straight to memory (no spill
// cascades). Returns false when the receiver has no eligible way (a dead-
// line receiver whose lines are all live, or a full ECC shared region).
func (s *System) spillInto(c, r, set int, ev cachesim.Line) bool {
	l2r := s.l2s[r]
	pos := s.policy.SpillInsertPos(r, set, ev.Reused)
	proto := ev
	proto.Spilled = true
	proto.Prefetch = false
	proto.Reused = false
	var ev2 cachesim.Line
	switch s.policy.GuestVictim() {
	case coop.GuestDeadLines:
		w, ok := l2r.VictimDead(set)
		if !ok {
			return false
		}
		ev2 = l2r.InsertWay(ev.Tag, w, pos, proto)
	case coop.GuestRegion:
		allow := s.policy.SpillVictimAllow(r, set)
		w := l2r.VictimAmong(set, allow)
		if w < 0 {
			return false
		}
		ev2 = l2r.InsertWay(ev.Tag, w, pos, proto)
	default:
		ev2 = l2r.Insert(ev.Tag, pos, proto)
	}
	s.handleEviction(r, set, ev2, false)
	s.bus.Request(s.clock[c])
	s.live[c].SpillsOut++
	s.live[c].BusTransfers++
	s.live[r].SpillsIn++
	return true
}

// fillL1 installs a block in core c's L1 (evictions are clean: the L1 is
// write-through). Every caller sits on the demand path of an L1 miss for
// this very block, and nothing between the miss and the fill can add it to
// core c's L1 — peers only ever invalidate — so the fill inserts without a
// presence probe.
func (s *System) fillL1(c int, block uint64) {
	s.l1s[c].Insert(block, cachesim.InsertMRU, cachesim.Line{State: cachesim.Exclusive, Owner: int16(c)})
}

// trainPrefetcher feeds the demand stream to core c's stride prefetcher and
// performs the proposed fetches (skipping blocks already on chip).
func (s *System) trainPrefetcher(c int, block uint64) {
	if s.pf == nil {
		return
	}
	st := &s.live[c]
	for _, pb := range s.pf[c].Observe(block) {
		if _, ok := s.l2s[c].Lookup(pb); ok {
			continue
		}
		if s.holderMask(pb, c) != 0 {
			continue // already on chip in a peer cache
		}
		s.bus.Request(s.clock[c])
		s.memPort.Request(s.clock[c])
		st.PrefIssued++
		st.OffChip++
		st.BusTransfers++
		s.insertAndEvict(c, pb, cachesim.Line{State: cachesim.Exclusive, Prefetch: true, Owner: int16(c)})
	}
}

// invalidateOthers removes block from every L1 and L2 except core c's (the
// write-upgrade path of MESI). The ganged slab locates the L2 holders in one
// fused scan; inclusion guarantees a core whose L2 lacks the block has no L1
// copy either, so only actual holders run invalidations.
func (s *System) invalidateOthers(block uint64, c int) {
	for m := s.group.InvalidateOthers(block, c); m != 0; m &= m - 1 {
		h := bits.TrailingZeros64(m)
		s.l1MutLock(h)
		s.l1s[h].Invalidate(block)
		s.l1MutUnlock(h)
	}
}

// holderMask returns the bitmask of peer caches holding block, excluding
// cache c — the fused replacement for the per-peer snoop loop.
func (s *System) holderMask(block uint64, c int) uint64 {
	return s.group.HolderMask(block) &^ (1 << uint(c))
}

// isLastCopy reports whether no cache other than exclude holds block.
func (s *System) isLastCopy(block uint64, exclude int) bool {
	return s.group.LastCopy(block, exclude)
}
