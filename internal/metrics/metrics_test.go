package metrics

import (
	"math"
	"testing"

	"ascc/internal/cachesim"
	"ascc/internal/cmp"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestWeightedSpeedup(t *testing.T) {
	// Two apps: one at alone speed, one at half speed.
	ws := WeightedSpeedup([]float64{2, 4}, []float64{2, 2})
	if !almost(ws, 1.5) {
		t.Fatalf("WS = %v, want 1.5", ws)
	}
	// Identical CPIs: WS = N.
	if ws := WeightedSpeedup([]float64{1, 1, 1}, []float64{1, 1, 1}); !almost(ws, 3) {
		t.Fatalf("WS = %v, want 3", ws)
	}
}

func TestHMeanFairness(t *testing.T) {
	// Perfect: hmean of 1s is 1.
	if h := HMeanFairness([]float64{2, 3}, []float64{2, 3}); !almost(h, 1) {
		t.Fatalf("hmean = %v, want 1", h)
	}
	// One app slowed 2x: hmean = 2/(1+2) * 2 = 4/3... check formula:
	// den = 1 + 2 = 3, h = 2/3.
	if h := HMeanFairness([]float64{2, 6}, []float64{2, 3}); !almost(h, 2.0/3.0) {
		t.Fatalf("hmean = %v, want 2/3", h)
	}
}

func TestImprovement(t *testing.T) {
	if !almost(Improvement(1.078, 1.0), 0.078) {
		t.Fatal("improvement wrong")
	}
	if !almost(Improvement(0.9, 1.0), -0.1) {
		t.Fatal("degradation wrong")
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); !almost(g, 4) {
		t.Fatalf("geomean = %v, want 4", g)
	}
	if g := GeomeanImprovement([]float64{0.1, -0.05}); math.Abs(g-0.02233) > 0.001 {
		t.Fatalf("geomean improvement = %v, want ~0.0223", g)
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"ws-len":     func() { WeightedSpeedup([]float64{1}, []float64{1, 2}) },
		"ws-zero":    func() { WeightedSpeedup([]float64{0}, []float64{1}) },
		"hm-len":     func() { HMeanFairness([]float64{1}, []float64{1, 2}) },
		"hm-zero":    func() { HMeanFairness([]float64{1}, []float64{0}) },
		"imp-zero":   func() { Improvement(1, 0) },
		"geo-empty":  func() { Geomean(nil) },
		"geo-nonpos": func() { Geomean([]float64{1, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCPIs(t *testing.T) {
	r := cmp.Results{Cores: []cmp.CoreStats{
		{Instructions: 100, Cycles: 150},
		{Instructions: 100, Cycles: 300},
	}}
	c := CPIs(r)
	if !almost(c[0], 1.5) || !almost(c[1], 3) {
		t.Fatalf("CPIs = %v", c)
	}
}

func TestBreakdownOf(t *testing.T) {
	r := cmp.Results{Cores: []cmp.CoreStats{
		{L2Accesses: 60, L2LocalHits: 30, L2RemoteHits: 15, L2MemFills: 15, LatencySum: 600},
		{L2Accesses: 40, L2LocalHits: 40, LatencySum: 360},
	}}
	b := BreakdownOf(r)
	if !almost(b.AML, 9.6) {
		t.Fatalf("AML = %v, want 9.6", b.AML)
	}
	if !almost(b.LocalFrac, 0.7) || !almost(b.RemoteFrac, 0.15) || !almost(b.MemoryFrac, 0.15) {
		t.Fatalf("fractions = %+v", b)
	}
	if b.LocalFrac+b.RemoteFrac+b.MemoryFrac != 1 {
		t.Fatal("fractions do not sum to 1")
	}
	if empty := BreakdownOf(cmp.Results{}); empty.AML != 0 {
		t.Fatal("empty breakdown not zero")
	}
}

func TestSpillStatsOf(t *testing.T) {
	r := cmp.Results{Cores: []cmp.CoreStats{
		{SpillsOut: 10, Swaps: 2, SpillHits: 30},
		{SpillsOut: 8, SpillHits: 10},
	}}
	s := SpillStatsOf(r)
	if s.Spills != 20 || s.SpillHits != 40 {
		t.Fatalf("spill stats %+v", s)
	}
	if !almost(s.HitsPerSpill, 2) {
		t.Fatalf("hits/spill = %v, want 2", s.HitsPerSpill)
	}
	if z := SpillStatsOf(cmp.Results{}); z.HitsPerSpill != 0 {
		t.Fatal("zero-spill division")
	}
}

func TestGuestDepthProfile(t *testing.T) {
	// 2 sets x 4 ways. Fill set 0 with three native lines and one guest;
	// the guest is inserted last at LRU-1, so it must be counted at depth 2.
	c := cachesim.New(cachesim.Config{SizeBytes: 2 * 4 * 64, Ways: 4, LineBytes: 64})
	for i := uint64(0); i < 3; i++ {
		c.Insert(i*2, cachesim.InsertMRU, cachesim.Line{State: cachesim.Exclusive})
	}
	c.Insert(6, cachesim.InsertLRU1, cachesim.Line{State: cachesim.Shared, Spilled: true})
	// And one guest at the MRU of set 1.
	c.Insert(1, cachesim.InsertMRU, cachesim.Line{State: cachesim.Shared, Spilled: true})

	prof := GuestDepthProfile(c)
	want := []uint64{1, 0, 1, 0}
	if len(prof) != len(want) {
		t.Fatalf("profile length %d, want %d", len(prof), len(want))
	}
	for d := range want {
		if prof[d] != want[d] {
			t.Fatalf("guest depth profile %v, want %v", prof, want)
		}
	}
}
