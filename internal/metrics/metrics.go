// Package metrics implements the evaluation metrics of the paper: weighted
// speedup (Snavely & Tullsen) for performance, the harmonic mean of
// normalised IPCs (Luo et al.) for fairness, geometric means for the
// cross-workload summaries, and the average-memory-latency breakdown of
// Figure 10.
package metrics

import (
	"fmt"
	"math"

	"ascc/internal/cachesim"
	"ascc/internal/cmp"
)

// WeightedSpeedup computes sum(IPC_i / IPCalone_i): each application's
// progress relative to running alone, summed over the cores. cpis and
// aloneCPIs must be parallel slices.
func WeightedSpeedup(cpis, aloneCPIs []float64) float64 {
	if len(cpis) != len(aloneCPIs) {
		panic(fmt.Sprintf("metrics: %d CPIs vs %d alone CPIs", len(cpis), len(aloneCPIs)))
	}
	ws := 0.0
	for i := range cpis {
		if cpis[i] <= 0 {
			panic("metrics: non-positive CPI")
		}
		ws += aloneCPIs[i] / cpis[i]
	}
	return ws
}

// HMeanFairness computes the harmonic mean of normalised IPCs,
// N / sum(CPI_i / CPIalone_i), which balances fairness and throughput.
func HMeanFairness(cpis, aloneCPIs []float64) float64 {
	if len(cpis) != len(aloneCPIs) {
		panic(fmt.Sprintf("metrics: %d CPIs vs %d alone CPIs", len(cpis), len(aloneCPIs)))
	}
	den := 0.0
	for i := range cpis {
		if aloneCPIs[i] <= 0 {
			panic("metrics: non-positive alone CPI")
		}
		den += cpis[i] / aloneCPIs[i]
	}
	return float64(len(cpis)) / den
}

// Improvement returns the relative improvement of value over base as a
// fraction (0.078 = +7.8%).
func Improvement(value, base float64) float64 {
	if base == 0 {
		panic("metrics: zero base")
	}
	return value/base - 1
}

// Geomean returns the geometric mean of (1+x_i)-style ratios. Inputs are
// the ratios themselves (e.g. speedups); the result is their geometric
// mean. Panics on non-positive entries.
func Geomean(ratios []float64) float64 {
	if len(ratios) == 0 {
		panic("metrics: geomean of nothing")
	}
	s := 0.0
	for _, r := range ratios {
		if r <= 0 {
			panic(fmt.Sprintf("metrics: non-positive ratio %v", r))
		}
		s += math.Log(r)
	}
	return math.Exp(s / float64(len(ratios)))
}

// GeomeanImprovement converts a slice of fractional improvements into their
// geometric-mean improvement: geomean(1+x_i) - 1. This is how the paper's
// "geomean" columns summarise per-mix percentages.
func GeomeanImprovement(improvements []float64) float64 {
	ratios := make([]float64, len(improvements))
	for i, x := range improvements {
		ratios[i] = 1 + x
	}
	return Geomean(ratios) - 1
}

// CPIs extracts per-core CPIs from a simulation result.
func CPIs(r cmp.Results) []float64 {
	out := make([]float64, len(r.Cores))
	for i, c := range r.Cores {
		out[i] = c.CPI()
	}
	return out
}

// AMLBreakdown is the Figure 10 decomposition of demand L2 accesses.
type AMLBreakdown struct {
	AML        float64 // cycles per demand L2 access
	LocalFrac  float64
	RemoteFrac float64
	MemoryFrac float64
	L2Accesses uint64
}

// BreakdownOf aggregates the AML breakdown over all cores of a run.
func BreakdownOf(r cmp.Results) AMLBreakdown {
	var acc, local, remote, mem uint64
	var latSum float64
	for _, c := range r.Cores {
		acc += c.L2Accesses
		local += c.L2LocalHits
		remote += c.L2RemoteHits
		mem += c.L2MemFills
		latSum += c.LatencySum
	}
	if acc == 0 {
		return AMLBreakdown{}
	}
	return AMLBreakdown{
		AML:        latSum / float64(acc),
		LocalFrac:  float64(local) / float64(acc),
		RemoteFrac: float64(remote) / float64(acc),
		MemoryFrac: float64(mem) / float64(acc),
		L2Accesses: acc,
	}
}

// GuestDepthProfile counts the spilled (guest) lines of a cache by recency
// depth: element d is the number of guest lines sitting at depth d of their
// set's recency stack (0 = MRU). A profile concentrated near the LRU end
// means guests are admitted but not protected — the situation SABIP's
// LRU-1 insertion is designed to improve — so this is the diagnostic view
// behind the paper's §6.4 spill-behaviour discussion. One recency buffer is
// reused across all sets via AppendRecencyStack, so profiling a cache costs
// two small allocations (the profile and the buffer) regardless of set
// count.
func GuestDepthProfile(c *cachesim.Cache) []uint64 {
	prof := make([]uint64, c.Ways())
	buf := make([]int, 0, c.Ways())
	for s := 0; s < c.NumSets(); s++ {
		buf = c.AppendRecencyStack(s, buf[:0])
		for d, w := range buf {
			if l := c.Line(s, w); l.Valid() && l.Spilled {
				prof[d]++
			}
		}
	}
	return prof
}

// SpillStats aggregates the §6.4 behaviour metrics of a run.
type SpillStats struct {
	Spills       uint64 // spill transfers (including swaps)
	SpillHits    uint64 // hits served by spilled lines
	HitsPerSpill float64
}

// SpillStatsOf computes spill behaviour over all cores.
func SpillStatsOf(r cmp.Results) SpillStats {
	var s SpillStats
	for _, c := range r.Cores {
		s.Spills += c.SpillsOut + c.Swaps
		s.SpillHits += c.SpillHits
	}
	if s.Spills > 0 {
		s.HitsPerSpill = float64(s.SpillHits) / float64(s.Spills)
	}
	return s
}
