package experiments

import (
	"fmt"

	"ascc/internal/harness"
	"ascc/internal/metrics"
	"ascc/internal/workload"
)

// Fig10 reproduces Figure 10: average-memory-latency improvement over the
// baseline with the local/remote/memory access breakdown, on the 2-core
// mixes, plus the 4-core geomean summary the paper gives in the text.
func Fig10(cfg harness.Config) (Result, error) {
	r := harness.SharedRunner(cfg)
	pols := []harness.PolicyID{harness.PDSR, harness.PDSRDIP, harness.PECC, harness.PASCC, harness.PAVGCC}
	// Warm the memoised cache over both mix sets: the baseline plus every
	// policy run, fanned out on the worker pool.
	allMixes := append(append([][]int{}, workload.TwoAppMixes()...), workload.FourAppMixes()...)
	ids := append([]harness.PolicyID{harness.PBaseline}, pols...)
	if err := harness.ForEach(len(allMixes)*len(ids), func(k int) error {
		_, err := r.RunMix(allMixes[k/len(ids)], ids[k%len(ids)])
		return err
	}); err != nil {
		return Result{}, err
	}
	res := Result{ID: "fig10"}
	res.Table = harness.Table{
		Title:  "Figure 10: AML improvement and access breakdown (2 cores)",
		Header: []string{"workload", "policy", "AML impr", "local%", "remote%", "memory%"},
		Notes: []string{
			"AML treats accesses as sequentially processed (paper §6.2); L1 hits excluded",
			"paper 2-core geomeans: DSR +5%, DSR+DIP +12%, ECC +1%, ASCC +18%, AVGCC +22%",
		},
	}
	per := make(map[harness.PolicyID][]float64)
	for _, mix := range workload.TwoAppMixes() {
		base, err := r.RunMix(mix, harness.PBaseline)
		if err != nil {
			return Result{}, err
		}
		bb := metrics.BreakdownOf(base)
		res.Table.Rows = append(res.Table.Rows, []string{
			workload.MixName(mix), "baseline", "-",
			fmt.Sprintf("%.0f", 100*bb.LocalFrac),
			fmt.Sprintf("%.0f", 100*bb.RemoteFrac),
			fmt.Sprintf("%.0f", 100*bb.MemoryFrac),
		})
		for _, p := range pols {
			run, err := r.RunMix(mix, p)
			if err != nil {
				return Result{}, err
			}
			b := metrics.BreakdownOf(run)
			// Improvement = latency reduction: positive when AML dropped.
			imp := 1 - b.AML/bb.AML
			per[p] = append(per[p], imp)
			res.Table.Rows = append(res.Table.Rows, []string{
				"", string(p), harness.Pct(imp),
				fmt.Sprintf("%.0f", 100*b.LocalFrac),
				fmt.Sprintf("%.0f", 100*b.RemoteFrac),
				fmt.Sprintf("%.0f", 100*b.MemoryFrac),
			})
		}
	}
	geo := []string{"geomean", "", "", "", "", ""}
	res.Table.Rows = append(res.Table.Rows, geo)
	for _, p := range pols {
		g := metrics.GeomeanImprovement(per[p])
		res.set("aml2/"+string(p), g)
		res.Table.Rows = append(res.Table.Rows, []string{
			"", string(p), harness.Pct(g), "", "", "",
		})
	}
	// The 4-core AML summary (paper: DSR 10%, DSR+DIP 14%, ECC 11%,
	// ASCC 21%, AVGCC 27%).
	per4 := make(map[harness.PolicyID][]float64)
	for _, mix := range workload.FourAppMixes() {
		base, err := r.RunMix(mix, harness.PBaseline)
		if err != nil {
			return Result{}, err
		}
		bb := metrics.BreakdownOf(base)
		for _, p := range pols {
			run, err := r.RunMix(mix, p)
			if err != nil {
				return Result{}, err
			}
			per4[p] = append(per4[p], 1-metrics.BreakdownOf(run).AML/bb.AML)
		}
	}
	res.Table.Rows = append(res.Table.Rows, []string{"geomean-4core", "", "", "", "", ""})
	for _, p := range pols {
		g := metrics.GeomeanImprovement(per4[p])
		res.set("aml4/"+string(p), g)
		res.Table.Rows = append(res.Table.Rows, []string{
			"", string(p), harness.Pct(g), "", "", "",
		})
	}
	return res, nil
}

// SpillBehavior reproduces §6.4: total spill transfers and hits per spilled
// line for AVGCC against DSR+DIP and ECC, on 2- and 4-core mixes.
func SpillBehavior(cfg harness.Config) (Result, error) {
	r := harness.SharedRunner(cfg)
	pols := []harness.PolicyID{harness.PDSRDIP, harness.PECC, harness.PASCC, harness.PAVGCC}
	// Warm the memoised cache: every (mix, policy) run across both core
	// counts, fanned out on the worker pool.
	allMixes := append(append([][]int{}, workload.TwoAppMixes()...), workload.FourAppMixes()...)
	if err := harness.ForEach(len(allMixes)*len(pols), func(k int) error {
		_, err := r.RunMix(allMixes[k/len(pols)], pols[k%len(pols)])
		return err
	}); err != nil {
		return Result{}, err
	}
	res := Result{ID: "spills"}
	res.Table = harness.Table{
		Title:  "§6.4: spill volume and hits per spilled line",
		Header: []string{"cores", "policy", "spills", "spill hits", "hits/spill"},
		Notes: []string{
			"paper: AVGCC performs 13%/28% fewer spills than the next-best policy and earns 28%/36% more hits per spill (2/4 cores)",
		},
	}
	for _, group := range []struct {
		cores int
		mixes [][]int
	}{
		{2, workload.TwoAppMixes()},
		{4, workload.FourAppMixes()},
	} {
		totals := map[harness.PolicyID]metrics.SpillStats{}
		for _, mix := range group.mixes {
			for _, p := range pols {
				run, err := r.RunMix(mix, p)
				if err != nil {
					return Result{}, err
				}
				s := metrics.SpillStatsOf(run)
				agg := totals[p]
				agg.Spills += s.Spills
				agg.SpillHits += s.SpillHits
				totals[p] = agg
			}
		}
		for _, p := range pols {
			s := totals[p]
			hps := 0.0
			if s.Spills > 0 {
				hps = float64(s.SpillHits) / float64(s.Spills)
			}
			res.Table.Rows = append(res.Table.Rows, []string{
				fmt.Sprintf("%d", group.cores), string(p),
				fmt.Sprintf("%d", s.Spills), fmt.Sprintf("%d", s.SpillHits),
				fmt.Sprintf("%.3f", hps),
			})
			res.set(fmt.Sprintf("hitsPerSpill%d/%s", group.cores, p), hps)
			res.set(fmt.Sprintf("spills%d/%s", group.cores, p), float64(s.Spills))
		}
	}
	return res, nil
}
