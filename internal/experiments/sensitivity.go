package experiments

import (
	"fmt"

	"ascc/internal/cmp"
	"ascc/internal/cost"
	"ascc/internal/harness"
	"ascc/internal/metrics"
	"ascc/internal/policies"
	"ascc/internal/workload"
)

// Multithreaded reproduces the §6.3 multithreaded study: SPLASH2/PARSEC-like
// 4-thread workloads on a reduced 512 kB LLC; the metric is the reduction in
// execution time (completion time of the slowest thread) over the baseline.
func Multithreaded(cfg harness.Config) (Result, error) {
	cfg.L2SizeBytes = 512 * 1024 // paper-scale; harness divides by Scale
	r := harness.SharedRunner(cfg)
	pols := []harness.PolicyID{harness.PDSR, harness.PECC, harness.PASCC, harness.PAVGCC}
	// Warm the memoised cache: every workload under the baseline and each
	// policy, fanned out on the worker pool.
	profiles := workload.MTProfiles()
	ids := append([]harness.PolicyID{harness.PBaseline}, pols...)
	if err := harness.ForEach(len(profiles)*len(ids), func(k int) error {
		_, err := r.RunMT(profiles[k/len(ids)].Name, 4, ids[k%len(ids)])
		return err
	}); err != nil {
		return Result{}, err
	}
	res := Result{ID: "mt"}
	header := []string{"workload"}
	for _, p := range pols {
		header = append(header, string(p))
	}
	res.Table = harness.Table{
		Title:  "§6.3: multithreaded workloads (4 threads, 512 kB LLC), execution-time reduction",
		Header: header,
		Notes:  []string{"paper: ASCC +5%, AVGCC +6% on average"},
	}
	per := make(map[harness.PolicyID][]float64)
	for _, w := range workload.MTProfiles() {
		base, err := r.RunMT(w.Name, 4, harness.PBaseline)
		if err != nil {
			return Result{}, err
		}
		baseTime := maxCycles(base)
		row := []string{w.Name}
		for _, p := range pols {
			run, err := r.RunMT(w.Name, 4, p)
			if err != nil {
				return Result{}, err
			}
			imp := 1 - maxCycles(run)/baseTime
			per[p] = append(per[p], imp)
			row = append(row, harness.Pct(imp))
		}
		res.Table.Rows = append(res.Table.Rows, row)
	}
	geo := []string{"geomean"}
	for _, p := range pols {
		g := metrics.GeomeanImprovement(per[p])
		geo = append(geo, harness.Pct(g))
		res.set("geomean/"+string(p), g)
	}
	res.Table.Rows = append(res.Table.Rows, geo)
	return res, nil
}

// maxCycles is the completion time of a run: the slowest thread's cycles.
func maxCycles(res cmp.Results) float64 {
	max := 0.0
	for _, c := range res.Cores {
		if c.Cycles > max {
			max = c.Cycles
		}
	}
	return max
}

// Prefetcher reproduces the §6.3 stride-prefetcher sensitivity: ASCC and
// AVGCC improvements with a 16 kB stride prefetcher per LLC.
func Prefetcher(cfg harness.Config) (Result, error) {
	cfg.Prefetch = true
	cfg.SampleDen = 0 // the stride prefetcher crosses set boundaries (harness drops it too)
	res := Result{ID: "prefetch"}
	res.Table = harness.Table{
		Title:  "§6.3: with a 16 kB stride prefetcher per LLC",
		Header: []string{"cores", "ASCC", "AVGCC"},
		Notes:  []string{"paper: ASCC +6%/+5.5% and AVGCC +6.4%/+7.6% (2/4 cores)"},
	}
	r := harness.SharedRunner(cfg)
	// Warm the memoised cache: both policies over both mix sets, fanned
	// out on the worker pool (2- and 4-core mixes never share a cache key,
	// so one runner serves both groups).
	allMixes := append(append([][]int{}, workload.TwoAppMixes()...), workload.FourAppMixes()...)
	warmPols := []harness.PolicyID{harness.PASCC, harness.PAVGCC}
	if err := harness.ForEach(len(allMixes)*len(warmPols), func(k int) error {
		_, err := speedupImprovement(r, allMixes[k/len(warmPols)], warmPols[k%len(warmPols)])
		return err
	}); err != nil {
		return Result{}, err
	}
	for _, group := range []struct {
		cores int
		mixes [][]int
	}{
		{2, workload.TwoAppMixes()},
		{4, workload.FourAppMixes()},
	} {
		var ascc, avgcc []float64
		for _, mix := range group.mixes {
			a, err := speedupImprovement(r, mix, harness.PASCC)
			if err != nil {
				return Result{}, err
			}
			v, err := speedupImprovement(r, mix, harness.PAVGCC)
			if err != nil {
				return Result{}, err
			}
			ascc = append(ascc, a)
			avgcc = append(avgcc, v)
		}
		ga, gv := metrics.GeomeanImprovement(ascc), metrics.GeomeanImprovement(avgcc)
		res.Table.Rows = append(res.Table.Rows, []string{
			fmt.Sprintf("%d", group.cores), harness.Pct(ga), harness.Pct(gv),
		})
		res.set(fmt.Sprintf("ASCC/%dcore", group.cores), ga)
		res.set(fmt.Sprintf("AVGCC/%dcore", group.cores), gv)
	}
	return res, nil
}

// Table4 reproduces the cost-benefit analysis: AVGCC's reduction in
// off-chip accesses versus the baseline for 1, 2 and 4 MB caches (paper
// scale), with the storage overhead from the cost model.
func Table4(cfg harness.Config) (Result, error) {
	cfg = cfg.EnsurePool() // the warm and assembly phases must share runners
	res := Result{ID: "table4"}
	res.Table = harness.Table{
		Title:  "Table 4: AVGCC off-chip access reduction vs cache size",
		Header: []string{"cache size", "4-core reduction", "2-core reduction", "storage overhead"},
		Notes:  []string{"paper: 27%/14% at 1 MB, 12%/9% at 2 and 4 MB, 0.17% overhead (kB-rounded)"},
	}
	// Warm the memoised caches of all three cache-size runners at once, so
	// the whole (size, mix, policy) cube fans out on one worker pool.
	sizes := []int{1 << 20, 2 << 20, 4 << 20}
	allMixes := append(append([][]int{}, workload.FourAppMixes()...), workload.TwoAppMixes()...)
	type task struct {
		r   *harness.Runner
		mix []int
		id  harness.PolicyID
	}
	tasks := make([]task, 0, len(sizes)*len(allMixes)*2)
	for _, size := range sizes {
		c := cfg
		c.L2SizeBytes = size
		r := harness.SharedRunner(c)
		for _, mix := range allMixes {
			tasks = append(tasks,
				task{r, mix, harness.PBaseline}, task{r, mix, harness.PAVGCC})
		}
	}
	if err := harness.ForEach(len(tasks), func(i int) error {
		_, err := tasks[i].r.RunMix(tasks[i].mix, tasks[i].id)
		return err
	}); err != nil {
		return Result{}, err
	}
	for _, size := range sizes {
		c := cfg
		c.L2SizeBytes = size
		r := harness.SharedRunner(c)
		reduction := func(mixes [][]int) (float64, error) {
			var base, avgcc uint64
			for _, mix := range mixes {
				b, err := r.RunMix(mix, harness.PBaseline)
				if err != nil {
					return 0, err
				}
				a, err := r.RunMix(mix, harness.PAVGCC)
				if err != nil {
					return 0, err
				}
				base += b.TotalOffChip()
				avgcc += a.TotalOffChip()
			}
			return 1 - float64(avgcc)/float64(base), nil
		}
		r4, err := reduction(workload.FourAppMixes())
		if err != nil {
			return Result{}, err
		}
		r2, err := reduction(workload.TwoAppMixes())
		if err != nil {
			return Result{}, err
		}
		geom := cost.CacheGeometry{SizeBytes: size, Ways: 8, LineBytes: 32, AddressBits: 42}
		oh := cost.AVGCCReport(geom, 0).OverheadFraction()
		res.Table.Rows = append(res.Table.Rows, []string{
			fmt.Sprintf("%dMB", size>>20),
			harness.Pct(r4), harness.Pct(r2),
			fmt.Sprintf("%.2f%%", 100*oh),
		})
		res.set(fmt.Sprintf("reduction4/%dMB", size>>20), r4)
		res.set(fmt.Sprintf("reduction2/%dMB", size>>20), r2)
	}
	return res, nil
}

// LimitedCounters reproduces the §7 storage-reduction study: AVGCC capped
// at a fraction of the full counter count, with the paper-scale storage cost.
func LimitedCounters(cfg harness.Config) (Result, error) {
	r := harness.SharedRunner(cfg)
	sets, ways := cfg.L2Geometry()
	res := Result{ID: "limited"}
	res.Table = harness.Table{
		Title:  "§7: AVGCC with a limited number of counters (4 cores)",
		Header: []string{"max counters (fraction)", "speedup improvement", "storage @ paper scale"},
		Notes:  []string{"paper: +6.8% with 128 counters (83 B), +7.1% with 2048 (1284 B), +7.8% unlimited"},
	}
	paperGeom := cost.PaperGeometry()
	fracs := []int{32, 2, 1} // sets/32, sets/2, unlimited
	mixes := workload.FourAppMixes()
	// RunMixWith policies are caller-owned state, so the (fraction, mix)
	// grid collects by index instead of warming a cache.
	imps := make([][]float64, len(fracs))
	for i := range imps {
		imps[i] = make([]float64, len(mixes))
	}
	if err := harness.ForEach(len(fracs)*len(mixes), func(k int) error {
		fi, mi := k/len(mixes), k%len(mixes)
		// Caller-built policy ⇒ caller-owned -cores widening (see Table1).
		frac, mix := fracs[fi], workload.ExtendMix(mixes[mi], cfg.Cores)
		alone, err := r.AloneCPIs(mix)
		if err != nil {
			return err
		}
		base, err := r.RunMix(mix, harness.PBaseline)
		if err != nil {
			return err
		}
		maxCounters := sets / frac
		pcfg := policies.AVGCCDefaultConfig(len(mix), sets, ways, cfg.Seed)
		pcfg.ResizePeriod = cfg.ResizePeriod()
		if frac > 1 {
			pcfg.MaxCounters = maxCounters
		}
		pol := policies.NewASCCVariant(fmt.Sprintf("AVGCC-max%d", maxCounters), pcfg)
		run, err := r.RunMixWith(mix, pol)
		if err != nil {
			return err
		}
		imps[fi][mi] = metrics.Improvement(
			metrics.WeightedSpeedup(metrics.CPIs(run), alone),
			metrics.WeightedSpeedup(metrics.CPIs(base), alone))
		return nil
	}); err != nil {
		return Result{}, err
	}
	for fi, frac := range fracs {
		maxCounters := sets / frac
		g := metrics.GeomeanImprovement(imps[fi])
		paperCounters := paperGeom.Sets() / frac
		rep := cost.AVGCCReport(paperGeom, paperCounters)
		label := fmt.Sprintf("%d (sets/%d)", maxCounters, frac)
		if frac == 1 {
			label = fmt.Sprintf("%d (all)", maxCounters)
		}
		res.Table.Rows = append(res.Table.Rows, []string{
			label, harness.Pct(g),
			fmt.Sprintf("%.0fB", float64(rep.TotalOverheadBits())/8),
		})
		res.set(fmt.Sprintf("geomean/div%d", frac), g)
	}
	return res, nil
}

// Fig11 reproduces Figure 11: QoS-Aware AVGCC versus AVGCC on the 2-core
// mixes, plus the 4-core geomean the paper gives in the text (8.1%).
func Fig11(cfg harness.Config) (Result, error) {
	r := harness.SharedRunner(cfg)
	// Warm the memoised cache: AVGCC and QoS-AVGCC over both mix sets,
	// fanned out on the worker pool.
	allMixes := append(append([][]int{}, workload.TwoAppMixes()...), workload.FourAppMixes()...)
	warmPols := []harness.PolicyID{harness.PAVGCC, harness.PQoSAVGCC}
	if err := harness.ForEach(len(allMixes)*len(warmPols), func(k int) error {
		_, err := speedupImprovement(r, allMixes[k/len(warmPols)], warmPols[k%len(warmPols)])
		return err
	}); err != nil {
		return Result{}, err
	}
	res := Result{ID: "fig11"}
	res.Table = harness.Table{
		Title:  "Figure 11: QoS-Aware AVGCC vs AVGCC (2 cores)",
		Header: []string{"workload", "AVGCC", "QoS-AVGCC"},
		Notes:  []string{"paper: QoS-AVGCC removes AVGCC's degradations and edges it out overall"},
	}
	var av, qs []float64
	for _, mix := range workload.TwoAppMixes() {
		a, err := speedupImprovement(r, mix, harness.PAVGCC)
		if err != nil {
			return Result{}, err
		}
		q, err := speedupImprovement(r, mix, harness.PQoSAVGCC)
		if err != nil {
			return Result{}, err
		}
		av = append(av, a)
		qs = append(qs, q)
		res.Table.Rows = append(res.Table.Rows, []string{
			workload.MixName(mix), harness.Pct(a), harness.Pct(q),
		})
	}
	ga, gq := metrics.GeomeanImprovement(av), metrics.GeomeanImprovement(qs)
	res.Table.Rows = append(res.Table.Rows, []string{"geomean", harness.Pct(ga), harness.Pct(gq)})
	res.set("geomean/AVGCC", ga)
	res.set("geomean/QoS-AVGCC", gq)

	// 4-core summary.
	var av4, qs4 []float64
	for _, mix := range workload.FourAppMixes() {
		a, err := speedupImprovement(r, mix, harness.PAVGCC)
		if err != nil {
			return Result{}, err
		}
		q, err := speedupImprovement(r, mix, harness.PQoSAVGCC)
		if err != nil {
			return Result{}, err
		}
		av4 = append(av4, a)
		qs4 = append(qs4, q)
	}
	g4a, g4q := metrics.GeomeanImprovement(av4), metrics.GeomeanImprovement(qs4)
	res.Table.Rows = append(res.Table.Rows, []string{"geomean-4core", harness.Pct(g4a), harness.Pct(g4q)})
	res.set("geomean4/AVGCC", g4a)
	res.set("geomean4/QoS-AVGCC", g4q)
	return res, nil
}

// Table5 reproduces the storage-cost table (pure arithmetic at the paper's
// geometry — independent of the simulation scale).
func Table5(cfg harness.Config) (Result, error) {
	g := cost.PaperGeometry()
	avgcc := cost.AVGCCReport(g, 0)
	ascc := cost.ASCCReport(g)
	qos := cost.QoSAVGCCReport(g)
	dsr := cost.DSRReport(g)
	res := Result{ID: "table5"}
	res.Table = harness.Table{
		Title:  "Table 5: storage cost at the paper's 1MB/8-way/32B geometry",
		Header: []string{"design", "overhead bits", "overhead bytes", "exact %", "paper-rounded %"},
	}
	for _, row := range []struct {
		name string
		rep  cost.Report
	}{
		{"ASCC", ascc}, {"AVGCC", avgcc}, {"QoS-AVGCC", qos}, {"DSR", dsr},
	} {
		res.Table.Rows = append(res.Table.Rows, []string{
			row.name,
			fmt.Sprintf("%d", row.rep.TotalOverheadBits()),
			fmt.Sprintf("%.1f", float64(row.rep.TotalOverheadBits())/8),
			fmt.Sprintf("%.3f%%", 100*row.rep.OverheadFraction()),
			fmt.Sprintf("%.2f%%", row.rep.PaperRoundedPercent()),
		})
	}
	res.set("avgccBits", float64(avgcc.TotalOverheadBits()))
	res.set("avgccPct", 100*avgcc.OverheadFraction())
	res.set("qosPct", 100*qos.OverheadFraction())
	return res, nil
}
