package experiments

import (
	"bytes"
	"testing"

	"ascc/internal/harness"
)

// diffConfig is deliberately smaller than the golden budget: the
// differential test runs every experiment twice (arena replay vs live
// generation), so it trades statistical weight for coverage of all IDs.
func diffConfig() harness.Config {
	cfg := tinyConfig()
	cfg.WarmupInstr = 60_000
	cfg.MeasureInstr = 150_000
	return cfg
}

// shortDiffIDs is the -short subset: one multiprogrammed figure, the
// multithreaded workload path and the single-app way sweep — together they
// exercise every Runner entry point the arena cache intercepts.
var shortDiffIDs = map[string]bool{"fig1": true, "fig8": true, "mt": true}

// TestArenaDifferential renders every experiment with the trace cache on
// and off and requires byte-identical CSV output. This is the end-to-end
// guarantee behind the memoised arena: packed replay is indistinguishable
// from live workload-model generation, for every table the repo produces.
func TestArenaDifferential(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && !shortDiffIDs[id] {
				t.Skip("-short: representative subset only")
			}
			t.Parallel()
			render := func(traceCache bool) []byte {
				cfg := diffConfig()
				cfg.TraceCache = traceCache
				res, err := ByID(cfg, id)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := res.Table.CSV(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			replay := render(true)
			live := render(false)
			if !bytes.Equal(replay, live) {
				t.Fatalf("%s: arena replay diverged from live generation\n--- replay ---\n%s\n--- live ---\n%s",
					id, firstDiffWindow(replay, live), firstDiffWindow(live, replay))
			}
		})
	}
}
