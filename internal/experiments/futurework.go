package experiments

import (
	"ascc/internal/harness"
	"ascc/internal/metrics"
	"ascc/internal/policies"
	"ascc/internal/workload"
)

// FutureWork explores the paper's closing research directions ("tuning the
// size and limits of saturation counters, as well as exploring other
// metrics"): ASCC with saturation ceilings from K+2 to 4K-1, and ASCC with
// the miss-ratio EWMA metric instead of saturating counters.
func FutureWork(cfg harness.Config) (Result, error) {
	r := harness.SharedRunner(cfg)
	sets, ways := cfg.L2Geometry()

	variants := []struct {
		name string
		mk   func(cores int) *policies.ASCC
	}{
		{"SSL ceiling K+2", func(cores int) *policies.ASCC {
			c := asccBase(cores, sets, ways, cfg.Seed)
			c.SSLMax = ways + 2
			return policies.NewASCCVariant("ASCC-maxK+2", c)
		}},
		{"SSL ceiling 3K/2", func(cores int) *policies.ASCC {
			c := asccBase(cores, sets, ways, cfg.Seed)
			c.SSLMax = ways + ways/2
			return policies.NewASCCVariant("ASCC-max3K/2", c)
		}},
		{"SSL ceiling 2K-1 (paper)", func(cores int) *policies.ASCC {
			return policies.NewASCCVariant("ASCC", asccBase(cores, sets, ways, cfg.Seed))
		}},
		{"SSL ceiling 4K-1", func(cores int) *policies.ASCC {
			c := asccBase(cores, sets, ways, cfg.Seed)
			c.SSLMax = 4*ways - 1
			return policies.NewASCCVariant("ASCC-max4K-1", c)
		}},
		{"EWMA miss-ratio metric", func(cores int) *policies.ASCC {
			c := asccBase(cores, sets, ways, cfg.Seed)
			c.EWMA = true
			return policies.NewASCCVariant("ASCC-EWMA", c)
		}},
	}

	res := Result{ID: "futurework"}
	res.Table = harness.Table{
		Title:  "Future work (§9): counter limits and alternative metrics (4 cores)",
		Header: []string{"variant", "speedup improvement"},
		Notes: []string{
			"the paper proposes tuning the saturation-counter limits and exploring other metrics",
		},
	}
	// RunMixWith variants own their policy state, so the (variant, mix)
	// grid collects by index; baseline and alone runs dedupe via the cache.
	mixes := workload.FourAppMixes()
	imps := make([][]float64, len(variants))
	for i := range imps {
		imps[i] = make([]float64, len(mixes))
	}
	if err := harness.ForEach(len(variants)*len(mixes), func(k int) error {
		vi, mi := k/len(mixes), k%len(mixes)
		// Caller-built policy => caller-owned -cores widening (see Table1).
		mix := workload.ExtendMix(mixes[mi], cfg.Cores)
		alone, err := r.AloneCPIs(mix)
		if err != nil {
			return err
		}
		base, err := r.RunMix(mix, harness.PBaseline)
		if err != nil {
			return err
		}
		run, err := r.RunMixWith(mix, variants[vi].mk(len(mix)))
		if err != nil {
			return err
		}
		imps[vi][mi] = metrics.Improvement(
			metrics.WeightedSpeedup(metrics.CPIs(run), alone),
			metrics.WeightedSpeedup(metrics.CPIs(base), alone))
		return nil
	}); err != nil {
		return Result{}, err
	}
	for vi, v := range variants {
		g := metrics.GeomeanImprovement(imps[vi])
		res.Table.Rows = append(res.Table.Rows, []string{v.name, harness.Pct(g)})
		res.set(v.name, g)
	}
	return res, nil
}

// asccBase is the published ASCC configuration for the future-work sweeps.
func asccBase(cores, sets, ways int, seed uint64) policies.ASCCConfig {
	return policies.ASCCConfig{
		Caches: cores, Sets: sets, Assoc: ways,
		Capacity: policies.CapacitySABIP, Epsilon: 1.0 / 32.0,
		Swap: true, Seed: seed,
	}
}
