package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ascc/internal/harness"
)

// updateGolden regenerates the committed golden tables instead of diffing
// against them:
//
//	go test ./internal/experiments -run TestGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden experiment tables under testdata/")

// goldenConfig is the fixed configuration the golden tables are generated
// with. It must never change silently: the tables under testdata/ pin the
// exact numeric output of the simulator at this budget, so any kernel or
// policy change that perturbs results fails the diff loudly.
func goldenConfig() harness.Config {
	cfg := tinyConfig()
	cfg.Parallel = 0 // determinism is independent of the worker count (PR 1)
	return cfg
}

// goldenExperiments are the artefacts pinned byte-for-byte: the headline
// 4-core speedup figure, the fairness figure, the cache-size sensitivity
// table, the core-count scaling table (whose probe column pins the
// directory's query count at every width) and the set-sampling accuracy
// table (whose error columns pin how far the 1/N fast path may drift).
var goldenExperiments = []string{"fig8", "fig9", "table4", "scaleout", "sampling"}

// TestGoldenTables regenerates each pinned experiment with the golden
// configuration and requires its CSV rendering to be byte-identical to the
// committed file. Run with -update after an intentional result change and
// commit the new tables alongside the change that caused them.
func TestGoldenTables(t *testing.T) {
	for _, id := range goldenExperiments {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			res, err := ByID(goldenConfig(), id)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := res.Table.CSV(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", id+".golden.csv")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", path, buf.Len())
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden table (regenerate with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("%s drifted from golden table %s\n--- got ---\n%s\n--- want ---\n%s\n(run with -update if the change is intentional)",
					id, path, firstDiffWindow(buf.Bytes(), want), firstDiffWindow(want, buf.Bytes()))
			}
		})
	}
}

// firstDiffWindow returns a readable slice of a around the first byte where
// a and b differ, so failures point at the drifted cell rather than dumping
// whole tables.
func firstDiffWindow(a, b []byte) []byte {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	start := i - 120
	if start < 0 {
		start = 0
	}
	end := i + 120
	if end > len(a) {
		end = len(a)
	}
	return a[start:end]
}
