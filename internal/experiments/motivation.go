package experiments

import (
	"fmt"

	"ascc/internal/cachesim"
	"ascc/internal/harness"
	"ascc/internal/workload"
)

// fig1Benchmarks are the eight SPEC models of Figure 1: the upper row can
// offer capacity (streaming / small working sets), the lower row benefits
// from extra ways.
var fig1Benchmarks = []int{
	433, 482, 444, 445, // upper row: milc, sphinx3, namd, gobmk
	401, 450, 456, 473, // lower row: bzip2, soplex, hmmer, astar
}

// fig1Cache builds the 2 MB / 16-way study cache with w enabled ways
// (w == 0 means fully associative), scaled like everything else.
func fig1Cache(cfg harness.Config, w int) cachesim.Config {
	c := cachesim.Config{
		SizeBytes: 2 * 1024 * 1024 / cfg.Scale,
		Ways:      16,
		LineBytes: 32,
	}
	if w == 0 {
		c.FullyAssoc = true
	} else {
		c.EnabledWays = w
	}
	return c
}

// Fig1 reproduces Figure 1: MPKI and CPI as the number of enabled ways of a
// 2 MB/16-way L2 grows from 2 to 16, plus full associativity. The
// (benchmark, ways) grid fans out on the worker pool and is assembled by
// index, so the table is identical at every Config.Parallel setting.
func Fig1(cfg harness.Config) (Result, error) {
	r := harness.SharedRunner(cfg)
	ways := []int{2, 4, 6, 8, 10, 12, 14, 16, 0} // 0 = fully associative
	res := Result{ID: "fig1"}
	res.Table = harness.Table{
		Title:  "Figure 1: MPKI / CPI vs enabled ways (2MB 16-way L2, scaled)",
		Header: []string{"benchmark", "metric", "2", "4", "6", "8", "10", "12", "14", "16", "FA"},
		Notes: []string{
			"upper rows can offer capacity; lower rows benefit from more ways (paper Fig. 1)",
		},
	}
	type cell struct{ mpki, cpi float64 }
	cells := make([][]cell, len(fig1Benchmarks))
	for i := range cells {
		cells[i] = make([]cell, len(ways))
	}
	if err := harness.ForEach(len(fig1Benchmarks)*len(ways), func(k int) error {
		bi, wi := k/len(ways), k%len(ways)
		params := cfg.Params(1)
		params.L2 = fig1Cache(cfg, ways[wi])
		if ways[wi] == 0 {
			// Single-core way points sample exactly (the closure argument,
			// DESIGN.md §16), but the fully associative point has one set —
			// nothing to sample — so it alone stays full fidelity.
			params.SampleDen = 0
		}
		run, _, err := r.RunSingle(fig1Benchmarks[bi], params)
		if err != nil {
			return err
		}
		cells[bi][wi] = cell{mpki: run.Cores[0].MPKI(), cpi: run.Cores[0].CPI()}
		return nil
	}); err != nil {
		return Result{}, err
	}
	for bi, id := range fig1Benchmarks {
		p := workload.MustByID(id)
		mpkiRow := []string{p.Name, "MPKI"}
		cpiRow := []string{"", "CPI"}
		for wi, w := range ways {
			c := cells[bi][wi]
			mpkiRow = append(mpkiRow, fmt.Sprintf("%.2f", c.mpki))
			cpiRow = append(cpiRow, fmt.Sprintf("%.2f", c.cpi))
			if w == 2 {
				res.set(fmt.Sprintf("%s/mpki@2", p.Name), c.mpki)
			}
			if w == 16 {
				res.set(fmt.Sprintf("%s/mpki@16", p.Name), c.mpki)
			}
		}
		res.Table.Rows = append(res.Table.Rows, mpkiRow, cpiRow)
	}
	return res, nil
}

// Fig2 reproduces Figure 2: the percentage of sets that benefit from more
// ways (favored) versus sets that remain unchanged (constant), for astar and
// milc, comparing each way count with two fewer ways.
func Fig2(cfg harness.Config) (Result, error) {
	// Fig2 inspects per-set miss rates across the whole L2; the set sample
	// would leave most of those sets unsimulated, so it runs full fidelity.
	cfg.SampleDen = 0
	r := harness.SharedRunner(cfg)
	ways := []int{4, 6, 8, 10, 12, 14, 16}
	res := Result{ID: "fig2"}
	res.Table = harness.Table{
		Title:  "Figure 2: favored vs constant sets as ways grow (2MB 16-way L2, scaled)",
		Header: []string{"benchmark", "ways", "favored%", "constant%"},
		Notes: []string{
			"a set is favored when its MPKI drops >1% vs the run with 2 fewer ways (paper §2)",
		},
	}
	benchmarks := []int{473, 433} // astar (a), milc (b)
	allWays := append([]int{2}, ways...)
	// Per-set miss rates for every (benchmark, way count), fanned out on
	// the worker pool and collected by index.
	countsAt := make([][][]float64, len(benchmarks))
	for i := range countsAt {
		countsAt[i] = make([][]float64, len(allWays))
	}
	if err := harness.ForEach(len(benchmarks)*len(allWays), func(k int) error {
		bi, wi := k/len(allWays), k%len(allWays)
		params := cfg.Params(1)
		params.L2 = fig1Cache(cfg, allWays[wi])
		run, sys, err := r.RunSingle(benchmarks[bi], params)
		if err != nil {
			return err
		}
		instr := float64(run.Cores[0].Instructions)
		l2 := sys.L2(0)
		counts := make([]float64, l2.NumSets())
		for s := 0; s < l2.NumSets(); s++ {
			counts[s] = float64(l2.SetStatsFor(s).Misses) / instr * 1000
		}
		countsAt[bi][wi] = counts
		return nil
	}); err != nil {
		return Result{}, err
	}
	for bi, id := range benchmarks {
		p := workload.MustByID(id)
		perSet := make(map[int][]float64, len(allWays))
		for wi, w := range allWays {
			perSet[w] = countsAt[bi][wi]
		}
		for _, w := range ways {
			cur, prev := perSet[w], perSet[w-2]
			favored, constant := 0, 0
			for s := range cur {
				if cur[s] < prev[s]*0.99 {
					favored++
				} else {
					constant++
				}
			}
			total := float64(len(cur))
			fPct := 100 * float64(favored) / total
			cPct := 100 * float64(constant) / total
			res.Table.Rows = append(res.Table.Rows, []string{
				p.Name, fmt.Sprintf("%d", w), fmt.Sprintf("%.0f", fPct), fmt.Sprintf("%.0f", cPct),
			})
			res.set(fmt.Sprintf("%s/favored@%d", p.Name, w), fPct)
		}
	}
	return res, nil
}
