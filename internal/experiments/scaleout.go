package experiments

import (
	"fmt"
	"time"

	"ascc/internal/harness"
	"ascc/internal/workload"
)

// scaleoutCores are the machine widths the scaling study sweeps. The paper
// evaluates 4 and 8 cores; the extension replicates its first Table 1 mix
// out to the 64-core holder-mask limit (workload.ExtendMix).
var scaleoutCores = []int{4, 16, 32, 64}

// Scaleout measures how the simulator scales with core count: the first
// 4-app mix of Table 1 is widened by cyclic replication to 4/16/32/64 cores
// and run under AVGCC, reporting per-width aggregate CPI and the coherence
// fabric's probe count (set-sharded directory lookups; the broadcast A/B at
// the same call sites is scripts/bench_kernel.sh's scaleout block). The
// table's columns are all deterministic in (config, seed); wall-clock per
// width — the one number that is not — goes into Values ("wall_ms/16") so
// EXPERIMENTS.md can quote it without perturbing golden CSVs.
//
// The sweep runs the widths one after another, NOT through harness.ForEach:
// concurrent widths would time each other's contention on the shared worker
// pool and the wall_ms figures would overstate per-width cost. (Under
// `-exp all` sibling experiments still run concurrently; a dedicated
// `-exp scaleout` invocation is the supported way to record clean timings.)
//
// Each width overrides Config.Cores for its own runs, so the experiment
// sweeps the same widths no matter what -cores the suite was invoked with.
func Scaleout(cfg harness.Config) (Result, error) {
	mix := workload.FourAppMixes()[0]
	type row struct {
		cores  int
		instr  uint64
		cpi    float64
		probes uint64
		wall   time.Duration
	}
	rows := make([]row, len(scaleoutCores))
	for i := range scaleoutCores {
		c := cfg
		c.Cores = scaleoutCores[i]
		r := harness.SharedRunner(c)
		// NewMixSystem + a direct Run instead of RunMix: the probe counter
		// lives on the system, which the memoised path does not hand back.
		sys, err := r.NewMixSystem(mix, harness.PAVGCC)
		if err != nil {
			return Result{}, err
		}
		start := time.Now()
		res := sys.ScaleSampled(sys.Run(c.WarmupInstr, c.MeasureInstr))
		wall := time.Since(start)
		var instr uint64
		var cycles float64
		for _, cs := range res.Cores {
			instr += cs.Instructions
			cycles += cs.Cycles
		}
		rows[i] = row{
			cores:  c.Cores,
			instr:  instr,
			cpi:    cycles / float64(instr),
			probes: sys.CoherenceProbes(),
			wall:   wall,
		}
	}

	res := Result{ID: "scaleout"}
	res.Table = harness.Table{
		Title:  "Scaling the first Table 1 mix by cyclic replication (AVGCC, set-sharded directory)",
		Header: []string{"cores", "instructions", "agg CPI", "coherence probes", "probes/Kinst"},
		Notes: []string{
			"probes count holder-mask queries over warmup+measure; wall-clock is in Values, not here",
		},
	}
	for _, rw := range rows {
		res.Table.Rows = append(res.Table.Rows, []string{
			fmt.Sprintf("%d", rw.cores),
			fmt.Sprintf("%d", rw.instr),
			harness.F2(rw.cpi),
			fmt.Sprintf("%d", rw.probes),
			harness.F2(float64(rw.probes) / float64(rw.instr) * 1000),
		})
		res.set(fmt.Sprintf("cpi/%dcores", rw.cores), rw.cpi)
		res.set(fmt.Sprintf("probes/%dcores", rw.cores), float64(rw.probes))
		res.set(fmt.Sprintf("wall_ms/%dcores", rw.cores), float64(rw.wall.Milliseconds()))
	}
	return res, nil
}
