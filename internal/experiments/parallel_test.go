package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"ascc/internal/cmp"
)

// TestByIDParallelDeterminism asserts that experiments render bit-identical
// tables and headline values at -parallel 1 and -parallel 8. The three ids
// cover the three execution shapes: the warm-then-assemble cache path
// (fig8), the RunSingle indexed fan-out (fig2) and the RunMixWith indexed
// fan-out (limited).
func TestByIDParallelDeterminism(t *testing.T) {
	for _, id := range []string{"fig8", "fig2", "limited"} {
		seqCfg := tinyConfig()
		seqCfg.Parallel = 1
		parCfg := tinyConfig()
		parCfg.Parallel = 8

		seq, err := ByID(seqCfg, id)
		if err != nil {
			t.Fatalf("%s sequential: %v", id, err)
		}
		par, err := ByID(parCfg, id)
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if s, p := seq.Table.String(), par.Table.String(); s != p {
			t.Errorf("%s table differs between -parallel 1 and -parallel 8:\n--- parallel 1 ---\n%s\n--- parallel 8 ---\n%s", id, s, p)
		}
		if !reflect.DeepEqual(seq.Values, par.Values) {
			t.Errorf("%s headline values differ:\n%v\nvs\n%v", id, seq.Values, par.Values)
		}
	}
}

// TestSimParallelDeterminism asserts the speculative in-run parallelism
// (harness.Config.SimParallel -> cmp.Params.SimParallel) renders
// byte-identical experiment CSVs: the engine's determinism contract holds
// all the way up through the table layer. fig8 covers the memoised RunMix
// path; scaleout covers the widened NewMixSystem path at 4..64 cores.
func TestSimParallelDeterminism(t *testing.T) {
	for _, id := range []string{"fig8", "scaleout"} {
		var want string
		for _, par := range []int{1, 4} {
			cfg := tinyConfig()
			cfg.WarmupInstr = 30_000
			cfg.MeasureInstr = 80_000
			cfg.SimParallel = par
			if par > 1 {
				cfg.Engine = cmp.EngineFused // -sim-parallel's required engine
			}
			res, err := ByID(cfg, id)
			if err != nil {
				t.Fatalf("%s sim-parallel %d: %v", id, par, err)
			}
			var buf bytes.Buffer
			if err := res.Table.CSV(&buf); err != nil {
				t.Fatal(err)
			}
			if par == 1 {
				want = buf.String()
			} else if got := buf.String(); got != want {
				t.Errorf("%s CSV differs between -sim-parallel 1 and %d:\n--- 1 ---\n%s\n--- %d ---\n%s",
					id, par, want, par, got)
			}
		}
	}
}

// TestAllSharedPoolOrdering runs the full suite on a shared pool at a very
// small budget and checks the results come back in paper order.
func TestAllSharedPoolOrdering(t *testing.T) {
	cfg := tinyConfig()
	cfg.WarmupInstr = 30_000
	cfg.MeasureInstr = 80_000
	cfg.Parallel = 4
	out, err := All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids := IDs()
	if len(out) != len(ids) {
		t.Fatalf("%d results, want %d", len(out), len(ids))
	}
	for i, res := range out {
		if res.ID != ids[i] {
			t.Fatalf("result %d is %q, want %q (paper order)", i, res.ID, ids[i])
		}
		if len(res.Table.Rows) == 0 {
			t.Fatalf("experiment %s produced an empty table", res.ID)
		}
	}
}
