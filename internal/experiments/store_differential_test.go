package experiments

import (
	"bytes"
	"os"
	"testing"

	"ascc/internal/harness"
)

// shortStoreIDs is the -short subset for the store differential: one
// multiprogrammed figure, the multithreaded path and the scaleout widths —
// together they cover every arena kind the store persists, including the
// extra-wide replicas prewarm deliberately skips.
var shortStoreIDs = map[string]bool{"fig8": true, "mt": true, "scaleout": true}

// TestStoreDifferential renders every experiment three ways — persistent
// store off, store cold (empty directory, write-behind populates it) and
// store warm (same directory, streams replayed from mmap'd files) — and
// requires byte-identical CSV output. This is the end-to-end guarantee
// behind the arena store: cross-process packed replay is indistinguishable
// from live workload-model generation, for every table the repo produces.
func TestStoreDifferential(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			if testing.Short() && !shortStoreIDs[id] {
				t.Skip("-short: representative subset only")
			}
			t.Parallel()
			dir := t.TempDir()
			render := func(storeDir string) []byte {
				cfg := diffConfig()
				cfg.ArenaStoreDir = storeDir
				if storeDir != "" {
					// Each store-backed render gets its own pool (a "new
					// process"): the warm render must read files, not hit
					// a shared in-memory cache. The flush persists what
					// the render grew, like asccbench does on exit.
					pool := harness.NewPool(0)
					cfg = cfg.WithPool(pool)
					defer func() {
						if err := pool.FlushArenas(); err != nil {
							t.Fatal(err)
						}
					}()
				}
				res, err := ByID(cfg, id)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := res.Table.CSV(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			off := render("")
			cold := render(dir)
			// table5 is the analytic storage-cost table: it simulates
			// nothing, so its cold render legitimately persists nothing.
			if ents, err := os.ReadDir(dir); (err != nil || len(ents) == 0) && id != "table5" {
				t.Fatalf("store dir empty after cold render (err %v): write-behind persisted nothing", err)
			}
			warm := render(dir)
			if !bytes.Equal(off, cold) {
				t.Fatalf("%s: cold-store render diverged from store-off\n--- off ---\n%s\n--- cold ---\n%s",
					id, firstDiffWindow(off, cold), firstDiffWindow(cold, off))
			}
			if !bytes.Equal(off, warm) {
				t.Fatalf("%s: warm-store render diverged from store-off\n--- off ---\n%s\n--- warm ---\n%s",
					id, firstDiffWindow(off, warm), firstDiffWindow(warm, off))
			}
		})
	}
}
