// Package experiments reproduces every table and figure of the paper's
// evaluation. Each Fig*/Table* function runs the required simulations
// through a harness.Runner and returns a Result holding a renderable text
// table plus the headline numbers (for tests, benches and EXPERIMENTS.md).
//
// The mapping from experiment to paper artefact is indexed in DESIGN.md §4.
package experiments

import (
	"fmt"

	"ascc/internal/harness"
	"ascc/internal/metrics"
)

// Result is one reproduced table or figure.
type Result struct {
	ID     string // "fig7", "table1", ...
	Table  harness.Table
	Values map[string]float64 // headline numbers, e.g. "geomean/AVGCC"
}

// set records a headline value.
func (r *Result) set(key string, v float64) {
	if r.Values == nil {
		r.Values = map[string]float64{}
	}
	r.Values[key] = v
}

// speedupImprovement computes a policy's weighted-speedup improvement over
// the baseline for one mix.
func speedupImprovement(r *harness.Runner, mix []int, id harness.PolicyID) (float64, error) {
	alone, err := r.AloneCPIs(mix)
	if err != nil {
		return 0, err
	}
	base, err := r.RunMix(mix, harness.PBaseline)
	if err != nil {
		return 0, err
	}
	res, err := r.RunMix(mix, id)
	if err != nil {
		return 0, err
	}
	wsBase := metrics.WeightedSpeedup(metrics.CPIs(base), alone)
	ws := metrics.WeightedSpeedup(metrics.CPIs(res), alone)
	return metrics.Improvement(ws, wsBase), nil
}

// All runs the complete reproduction suite in paper order. The experiments
// execute concurrently on one shared worker pool of cfg.Parallel slots
// (Config.Parallel = 1 recovers the sequential suite), sharing memoised
// alone-CPI and baseline simulations wherever their configurations
// coincide. The returned slice is always in paper order and bit-identical
// to a sequential run: every simulation is deterministic in (config,
// workload, policy, seed) and every aggregation collects by index.
func All(cfg harness.Config) ([]Result, error) {
	type runner func(harness.Config) (Result, error)
	steps := []runner{
		Fig1, Fig2, Fig4, Fig5, Table1,
		Fig7, Fig8, Fig9, SharedLLC, Fig10,
		Multithreaded, Prefetcher, Table4, SpillBehavior,
		LimitedCounters, Fig11, Table5, Ablation, FutureWork,
		Scaleout, Sampling,
	}
	cfg = cfg.EnsurePool()
	out := make([]Result, len(steps))
	err := harness.ForEach(len(steps), func(i int) error {
		res, err := steps[i](cfg)
		if err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ByID runs a single experiment by its identifier. The experiment's
// simulations fan out on the configuration's worker pool (Config.Parallel
// slots; attach a shared pool with Config.WithPool to reuse baseline runs
// across several ByID calls).
func ByID(cfg harness.Config, id string) (Result, error) {
	m := map[string]func(harness.Config) (Result, error){
		"fig1":       Fig1,
		"fig2":       Fig2,
		"fig4":       Fig4,
		"fig5":       Fig5,
		"table1":     Table1,
		"fig7":       Fig7,
		"fig8":       Fig8,
		"fig9":       Fig9,
		"shared":     SharedLLC,
		"fig10":      Fig10,
		"mt":         Multithreaded,
		"prefetch":   Prefetcher,
		"table4":     Table4,
		"spills":     SpillBehavior,
		"limited":    LimitedCounters,
		"fig11":      Fig11,
		"table5":     Table5,
		"ablation":   Ablation,
		"futurework": FutureWork,
		"scaleout":   Scaleout,
		"sampling":   Sampling,
	}
	fn, ok := m[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown experiment %q (see DESIGN.md §4)", id)
	}
	return fn(cfg.EnsurePool())
}

// IDs lists the experiment identifiers in paper order.
func IDs() []string {
	return []string{
		"fig1", "fig2", "fig4", "fig5", "table1",
		"fig7", "fig8", "fig9", "shared", "fig10",
		"mt", "prefetch", "table4", "spills",
		"limited", "fig11", "table5", "ablation", "futurework",
		"scaleout", "sampling",
	}
}
