package experiments

import (
	"fmt"
	"math"

	"ascc/internal/cmp"
	"ascc/internal/harness"
	"ascc/internal/metrics"
	"ascc/internal/workload"
)

// samplingDens are the sampled-arm denominators the accuracy study sweeps.
var samplingDens = []int{4, 8, 16}

// samplingPols are the policies whose estimates are checked — the paper's
// plain DSR (whose spill/receive monitor residues the sample always
// contains) and the headline AVGCC.
var samplingPols = []harness.PolicyID{harness.PDSR, harness.PAVGCC}

// aggCPI is a run's aggregate CPI (total cycles over total instructions).
func aggCPI(res cmp.Results) float64 {
	var cycles, instr float64
	for _, c := range res.Cores {
		cycles += c.Cycles
		instr += float64(c.Instructions)
	}
	return cycles / instr
}

// Sampling measures the set-sampled fast path's accuracy (DESIGN.md §16):
// for each denominator it reruns a fixed subset of the four-application
// mixes under sampling
// and tabulates the sampled estimates against the full-fidelity run — the
// aggregate-CPI relative error per policy run and the weighted-speedup
// improvement both ways. Single-core per-set behaviour is exact by the
// closure argument (cmp's FuzzSampleEquivalence); these multi-core errors
// isolate the one approximation the fast path makes, cross-core interleave,
// and the golden table pins them so they cannot drift silently. The control
// arm ignores any -sample the suite was invoked with (the CLI rejects the
// combination); each sampled arm sets its own denominator.
func Sampling(cfg harness.Config) (Result, error) {
	cfg.SampleDen = 0
	// A fixed three-mix subset keeps the accuracy table's control arm — six
	// full-fidelity four-core runs that the sampled suite would otherwise not
	// pay for — from dominating `-exp all -sample` wall clock. The subset is
	// positional, so it is as pinned as the mix list itself.
	mixes := workload.FourAppMixes()[:3]
	full := harness.SharedRunner(cfg)

	// One arm per denominator plus the full control, all warmed on the
	// shared pool: (alone CPIs + baseline + both policies) per mix per arm.
	arms := make([]*harness.Runner, len(samplingDens))
	for i, den := range samplingDens {
		c := cfg
		c.SampleDen = den
		arms[i] = harness.SharedRunner(c)
	}
	runners := append([]*harness.Runner{full}, arms...)
	if err := harness.ForEach(len(runners)*len(mixes)*len(samplingPols), func(k int) error {
		r := runners[k/(len(mixes)*len(samplingPols))]
		mix := mixes[k/len(samplingPols)%len(mixes)]
		_, err := speedupImprovement(r, mix, samplingPols[k%len(samplingPols)])
		return err
	}); err != nil {
		return Result{}, err
	}

	res := Result{ID: "sampling"}
	res.Table = harness.Table{
		Title:  "Set-sampling accuracy: 1/N estimates vs full fidelity (4-core mixes)",
		Header: []string{"sample", "policy", "CPI err% mean", "CPI err% max", "WS impr full", "WS impr sampled", "WS err pp mean"},
		Notes: []string{
			"CPI err compares each policy run's aggregate CPI; WS err compares weighted-speedup improvement per mix in percentage points",
			"single-core per-set behaviour is exact (DESIGN.md §16); these multi-core errors isolate cross-core interleave",
		},
	}
	for i, den := range samplingDens {
		name := fmt.Sprintf("1/%d", den)
		for _, pol := range samplingPols {
			var cpiErrs, wsFull, wsSamp []float64
			for _, mix := range mixes {
				fr, err := full.RunMix(mix, pol)
				if err != nil {
					return Result{}, err
				}
				sr, err := arms[i].RunMix(mix, pol)
				if err != nil {
					return Result{}, err
				}
				fc, sc := aggCPI(fr), aggCPI(sr)
				cpiErrs = append(cpiErrs, math.Abs(sc-fc)/fc*100)
				fi, err := speedupImprovement(full, mix, pol)
				if err != nil {
					return Result{}, err
				}
				si, err := speedupImprovement(arms[i], mix, pol)
				if err != nil {
					return Result{}, err
				}
				wsFull = append(wsFull, fi)
				wsSamp = append(wsSamp, si)
			}
			var cpiMean, cpiMax, wsErr float64
			for j := range cpiErrs {
				cpiMean += cpiErrs[j] / float64(len(cpiErrs))
				cpiMax = math.Max(cpiMax, cpiErrs[j])
				wsErr += math.Abs(wsSamp[j]-wsFull[j]) * 100 / float64(len(cpiErrs))
			}
			gf, gs := metrics.GeomeanImprovement(wsFull), metrics.GeomeanImprovement(wsSamp)
			res.Table.Rows = append(res.Table.Rows, []string{
				name, string(pol),
				harness.F2(cpiMean), harness.F2(cpiMax),
				harness.Pct(gf), harness.Pct(gs),
				harness.F2(wsErr),
			})
			res.set(fmt.Sprintf("cpierr/%s/%s", name, pol), cpiMean)
			res.set(fmt.Sprintf("wserrpp/%s/%s", name, pol), wsErr)
		}
	}
	return res, nil
}
