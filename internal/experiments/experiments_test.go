package experiments

import (
	"strings"
	"testing"

	"ascc/internal/harness"
)

// tinyConfig trades fidelity for speed: experiment tests verify structure
// and basic sanity, not the headline magnitudes (the benches and
// EXPERIMENTS.md cover those at the full budget).
func tinyConfig() harness.Config {
	cfg := harness.DefaultConfig()
	cfg.WarmupInstr = 120_000
	cfg.MeasureInstr = 300_000
	return cfg
}

func TestIDsAndByID(t *testing.T) {
	ids := IDs()
	if len(ids) != 21 {
		t.Fatalf("%d experiment ids, want 21", len(ids))
	}
	if _, err := ByID(tinyConfig(), "bogus"); err == nil {
		t.Fatal("unknown id accepted")
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

func TestFig1Structure(t *testing.T) {
	res, err := Fig1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "fig1" {
		t.Fatalf("id %q", res.ID)
	}
	// 8 benchmarks x 2 rows (MPKI + CPI).
	if len(res.Table.Rows) != 16 {
		t.Fatalf("%d rows, want 16", len(res.Table.Rows))
	}
	// Streaming milc must be nearly flat: 16-way MPKI close to 4-way's.
	if res.Values["milc/mpki@16"] < res.Values["milc/mpki@2"]*0.5 {
		t.Errorf("milc MPKI halves with ways (%v -> %v): should be capacity-insensitive",
			res.Values["milc/mpki@2"], res.Values["milc/mpki@16"])
	}
	// astar must benefit substantially.
	if res.Values["astar/mpki@16"] >= res.Values["astar/mpki@2"]*0.8 {
		t.Errorf("astar MPKI barely improves with ways (%v -> %v)",
			res.Values["astar/mpki@2"], res.Values["astar/mpki@16"])
	}
}

func TestFig2Structure(t *testing.T) {
	res, err := Fig2(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 14 { // 2 benchmarks x 7 way counts
		t.Fatalf("%d rows, want 14", len(res.Table.Rows))
	}
	// milc's sets are overwhelmingly constant at high way counts; astar has
	// far more favored sets at low way counts.
	if res.Values["milc/favored@16"] > 20 {
		t.Errorf("milc favored@16 = %v%%, want near zero", res.Values["milc/favored@16"])
	}
	if res.Values["astar/favored@6"] < 50 {
		t.Errorf("astar favored@6 = %v%%, want majority", res.Values["astar/favored@6"])
	}
}

func TestSpeedupTableStructure(t *testing.T) {
	res, err := Fig8(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 6 mixes + geomean row.
	if len(res.Table.Rows) != 7 {
		t.Fatalf("%d rows, want 7", len(res.Table.Rows))
	}
	if res.Table.Rows[6][0] != "geomean" {
		t.Fatalf("last row %v, want geomean", res.Table.Rows[6])
	}
	for _, key := range []string{"geomean/DSR", "geomean/ASCC", "geomean/AVGCC"} {
		if _, ok := res.Values[key]; !ok {
			t.Errorf("missing headline value %s", key)
		}
	}
}

func TestSamplingStructure(t *testing.T) {
	res, err := Sampling(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 3 denominators x 2 policies.
	if len(res.Table.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(res.Table.Rows))
	}
	if res.Table.Rows[0][0] != "1/4" || res.Table.Rows[5][0] != "1/16" {
		t.Fatalf("denominator order wrong: %v ... %v", res.Table.Rows[0], res.Table.Rows[5])
	}
	for _, key := range []string{"cpierr/1/8/DSR", "cpierr/1/8/AVGCC", "wserrpp/1/16/AVGCC"} {
		v, ok := res.Values[key]
		if !ok {
			t.Errorf("missing headline value %s", key)
			continue
		}
		// The estimate must stay in the same regime as the full run even at
		// the test budget; the golden pins the exact figures.
		if v < 0 || v > 50 {
			t.Errorf("%s = %v, outside the sane accuracy envelope", key, v)
		}
	}
}

func TestTable1Structure(t *testing.T) {
	res, err := Table1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Header) != 7 { // workload + 6 granularities
		t.Fatalf("header %v", res.Table.Header)
	}
	if res.Table.Header[1] != "ASCC512" || res.Table.Header[6] != "ASCC1" {
		t.Fatalf("granularity columns wrong: %v", res.Table.Header)
	}
}

func TestFig10Structure(t *testing.T) {
	res, err := Fig10(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Table.String()
	if !strings.Contains(s, "geomean-4core") {
		t.Fatal("missing 4-core summary")
	}
	for _, key := range []string{"aml2/AVGCC", "aml4/AVGCC"} {
		if _, ok := res.Values[key]; !ok {
			t.Errorf("missing %s", key)
		}
	}
	// The breakdown fractions of any baseline row must sum to ~100.
	row := res.Table.Rows[0]
	if row[1] != "baseline" {
		t.Fatalf("first row %v", row)
	}
}

func TestTable5Exact(t *testing.T) {
	res, err := Table5(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["avgccBits"] != 20508 {
		t.Fatalf("AVGCC bits %v, want 20508", res.Values["avgccBits"])
	}
	if v := res.Values["qosPct"]; v < 0.3 || v > 0.4 {
		t.Fatalf("QoS overhead %v%%, want ~0.35%%", v)
	}
}

func TestMultithreadedStructure(t *testing.T) {
	res, err := Multithreaded(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 7 { // 6 workloads + geomean
		t.Fatalf("%d rows, want 7", len(res.Table.Rows))
	}
}

func TestLimitedCountersStructure(t *testing.T) {
	res, err := LimitedCounters(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(res.Table.Rows))
	}
	// The storage column must show the paper's 83B and 1284B entries.
	s := res.Table.String()
	if !strings.Contains(s, "84B") && !strings.Contains(s, "83B") {
		t.Fatalf("paper-scale 83B storage figure missing:\n%s", s)
	}
}

func TestFig11Structure(t *testing.T) {
	res, err := Fig11(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 16 { // 14 mixes + 2 geomean rows
		t.Fatalf("%d rows, want 16", len(res.Table.Rows))
	}
	for _, key := range []string{"geomean/QoS-AVGCC", "geomean4/QoS-AVGCC"} {
		if _, ok := res.Values[key]; !ok {
			t.Errorf("missing %s", key)
		}
	}
}

func TestSharedLLCStructure(t *testing.T) {
	res, err := SharedLLC(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(res.Table.Rows))
	}
}

func TestSpillBehaviorStructure(t *testing.T) {
	res, err := SpillBehavior(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Table.Rows) != 8 { // 4 policies x 2 core counts
		t.Fatalf("%d rows, want 8", len(res.Table.Rows))
	}
	// The cooperative designs must actually spill in these workloads.
	if res.Values["spills4/AVGCC"] == 0 {
		t.Error("AVGCC never spilled across the 4-core mixes")
	}
}
