package experiments

import (
	"ascc/internal/harness"
	"ascc/internal/metrics"
	"ascc/internal/policies"
	"ascc/internal/workload"
)

// Ablation studies the implementation choices DESIGN.md §6 makes where the
// paper is silent: guest placement (by-reuse vs always-MRU vs always-LRU-1
// vs always-LRU), dead-line guest admission, and the §3.2 swap. It runs
// ASCC variants over the 4-core mixes and reports weighted-speedup
// geomeans.
func Ablation(cfg harness.Config) (Result, error) {
	r := harness.SharedRunner(cfg)
	sets, ways := cfg.L2Geometry()

	base := func() policies.ASCCConfig {
		return policies.ASCCConfig{
			Caches: 4, Sets: sets, Assoc: ways,
			Capacity: policies.CapacitySABIP, Epsilon: 1.0 / 32.0,
			Swap: true, Seed: cfg.Seed,
		}
	}
	variants := []struct {
		name string
		mk   func() policies.ASCCConfig
	}{
		{"ASCC (by-reuse guests)", base},
		{"guests always MRU", func() policies.ASCCConfig {
			c := base()
			c.SpillPlacement = policies.SpillMRU
			return c
		}},
		{"guests always LRU-1", func() policies.ASCCConfig {
			c := base()
			c.SpillPlacement = policies.SpillLRU1
			return c
		}},
		{"guests always LRU", func() policies.ASCCConfig {
			c := base()
			c.SpillPlacement = policies.SpillLRU
			return c
		}},
		{"no swap", func() policies.ASCCConfig {
			c := base()
			c.Swap = false
			return c
		}},
		{"no capacity response", func() policies.ASCCConfig {
			c := base()
			c.Capacity = policies.CapacityNone
			return c
		}},
		{"spill any victim", func() policies.ASCCConfig {
			c := base()
			c.SpillAnyVictim = true
			return c
		}},
	}

	res := Result{ID: "ablation"}
	res.Table = harness.Table{
		Title:  "Design-choice ablations on ASCC (4 cores, geomean over the Table 1 mixes)",
		Header: []string{"variant", "speedup improvement"},
		Notes: []string{
			"ablates the choices of DESIGN.md §6 the paper leaves open",
		},
	}
	// Each variant run owns its policy state (RunMixWith is uncached), so
	// the (variant, mix) grid collects improvements by index; the baseline
	// and alone runs dedupe through the runner's memoised cache.
	mixes := workload.FourAppMixes()
	imps := make([][]float64, len(variants))
	for i := range imps {
		imps[i] = make([]float64, len(mixes))
	}
	if err := harness.ForEach(len(variants)*len(mixes), func(k int) error {
		vi, mi := k/len(mixes), k%len(mixes)
		// Caller-built policy ⇒ caller-owned -cores widening (see Table1).
		mix := workload.ExtendMix(mixes[mi], cfg.Cores)
		alone, err := r.AloneCPIs(mix)
		if err != nil {
			return err
		}
		baseRun, err := r.RunMix(mix, harness.PBaseline)
		if err != nil {
			return err
		}
		pcfg := variants[vi].mk()
		pcfg.Caches = len(mix)
		pol := policies.NewASCCVariant(variants[vi].name, pcfg)
		run, err := r.RunMixWith(mix, pol)
		if err != nil {
			return err
		}
		imps[vi][mi] = metrics.Improvement(
			metrics.WeightedSpeedup(metrics.CPIs(run), alone),
			metrics.WeightedSpeedup(metrics.CPIs(baseRun), alone))
		return nil
	}); err != nil {
		return Result{}, err
	}
	for vi, v := range variants {
		g := metrics.GeomeanImprovement(imps[vi])
		res.Table.Rows = append(res.Table.Rows, []string{v.name, harness.Pct(g)})
		res.set(v.name, g)
	}
	return res, nil
}
