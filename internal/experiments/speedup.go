package experiments

import (
	"fmt"

	"ascc/internal/harness"
	"ascc/internal/metrics"
	"ascc/internal/policies"
	"ascc/internal/workload"
)

// speedupTable runs each mix under each policy and tabulates the
// weighted-speedup improvement over the private baseline, with a geomean
// summary row — the shape of Figures 4, 5, 7 and 8. The (mix, policy) grid
// fans out on the worker pool; the runner's memoised cache collapses the
// repeated baseline and alone-CPI runs to one simulation each, and the
// sequential assembly below renders from cache hits in paper order.
func speedupTable(cfg harness.Config, id, title string, mixes [][]int, pols []harness.PolicyID) (Result, error) {
	r := harness.SharedRunner(cfg)
	if err := harness.ForEach(len(mixes)*len(pols), func(k int) error {
		_, err := speedupImprovement(r, mixes[k/len(pols)], pols[k%len(pols)])
		return err
	}); err != nil {
		return Result{}, err
	}
	res := Result{ID: id}
	header := []string{"workload"}
	for _, p := range pols {
		header = append(header, string(p))
	}
	res.Table = harness.Table{Title: title, Header: header}
	per := make(map[harness.PolicyID][]float64)
	for _, mix := range mixes {
		row := []string{workload.MixName(mix)}
		for _, p := range pols {
			imp, err := speedupImprovement(r, mix, p)
			if err != nil {
				return Result{}, err
			}
			per[p] = append(per[p], imp)
			row = append(row, harness.Pct(imp))
		}
		res.Table.Rows = append(res.Table.Rows, row)
	}
	geo := []string{"geomean"}
	for _, p := range pols {
		g := metrics.GeomeanImprovement(per[p])
		geo = append(geo, harness.Pct(g))
		res.set("geomean/"+string(p), g)
	}
	res.Table.Rows = append(res.Table.Rows, geo)
	return res, nil
}

// Fig4 reproduces the design breakdown of Figure 4: LRS, LMS, GMS, LMS+BIP,
// GMS+SABIP, DSR and ASCC on the four-application mixes.
func Fig4(cfg harness.Config) (Result, error) {
	return speedupTable(cfg, "fig4",
		"Figure 4: design breakdown, weighted-speedup improvement (4 cores)",
		workload.FourAppMixes(),
		[]harness.PolicyID{harness.PLRS, harness.PLMS, harness.PGMS,
			harness.PLMSBIP, harness.PGMSSABIP, harness.PDSR, harness.PASCC})
}

// Fig5 reproduces the neutral-state study of Figure 5: ASCC vs its
// two-state variant, and DSR vs its three-state variant.
func Fig5(cfg harness.Config) (Result, error) {
	return speedupTable(cfg, "fig5",
		"Figure 5: value of the neutral state (4 cores)",
		workload.FourAppMixes(),
		[]harness.PolicyID{harness.PASCC, harness.PASCC2S, harness.PDSR, harness.PDSR3S})
}

// Fig7 reproduces Figure 7: the main 2-core comparison.
func Fig7(cfg harness.Config) (Result, error) {
	return speedupTable(cfg, "fig7",
		"Figure 7: weighted-speedup improvement over baseline (2 cores)",
		workload.TwoAppMixes(),
		[]harness.PolicyID{harness.PDSR, harness.PDSRDIP, harness.PECC, harness.PASCC, harness.PAVGCC})
}

// Fig8 reproduces Figure 8: the main 4-core comparison.
func Fig8(cfg harness.Config) (Result, error) {
	return speedupTable(cfg, "fig8",
		"Figure 8: weighted-speedup improvement over baseline (4 cores)",
		workload.FourAppMixes(),
		[]harness.PolicyID{harness.PDSR, harness.PDSRDIP, harness.PECC, harness.PASCC, harness.PAVGCC})
}

// Fig9 reproduces Figure 9: fairness (harmonic mean of normalised IPCs)
// improvement on the 4-core mixes.
func Fig9(cfg harness.Config) (Result, error) {
	r := harness.SharedRunner(cfg)
	pols := []harness.PolicyID{harness.PDSR, harness.PDSRDIP, harness.PECC, harness.PASCC, harness.PAVGCC}
	// Warm the memoised cache: every (mix, policy) run plus the baseline
	// and alone calibrations, fanned out on the worker pool.
	mixes := workload.FourAppMixes()
	if err := harness.ForEach(len(mixes)*(len(pols)+1), func(k int) error {
		mix := mixes[k/(len(pols)+1)]
		if pi := k % (len(pols) + 1); pi > 0 {
			_, err := r.RunMix(mix, pols[pi-1])
			return err
		}
		if _, err := r.AloneCPIs(mix); err != nil {
			return err
		}
		_, err := r.RunMix(mix, harness.PBaseline)
		return err
	}); err != nil {
		return Result{}, err
	}
	res := Result{ID: "fig9"}
	header := []string{"workload"}
	for _, p := range pols {
		header = append(header, string(p))
	}
	res.Table = harness.Table{
		Title:  "Figure 9: fairness (harmonic mean) improvement over baseline (4 cores)",
		Header: header,
	}
	per := make(map[harness.PolicyID][]float64)
	for _, mix := range workload.FourAppMixes() {
		alone, err := r.AloneCPIs(mix)
		if err != nil {
			return Result{}, err
		}
		base, err := r.RunMix(mix, harness.PBaseline)
		if err != nil {
			return Result{}, err
		}
		hBase := metrics.HMeanFairness(metrics.CPIs(base), alone)
		row := []string{workload.MixName(mix)}
		for _, p := range pols {
			run, err := r.RunMix(mix, p)
			if err != nil {
				return Result{}, err
			}
			imp := metrics.Improvement(metrics.HMeanFairness(metrics.CPIs(run), alone), hBase)
			per[p] = append(per[p], imp)
			row = append(row, harness.Pct(imp))
		}
		res.Table.Rows = append(res.Table.Rows, row)
	}
	geo := []string{"geomean"}
	for _, p := range pols {
		g := metrics.GeomeanImprovement(per[p])
		geo = append(geo, harness.Pct(g))
		res.set("geomean/"+string(p), g)
	}
	res.Table.Rows = append(res.Table.Rows, geo)
	return res, nil
}

// SharedLLC reproduces the §6.1 shared-cache comparison: a shared LLC of
// the private caches' aggregate capacity versus the private baseline, in
// performance and fairness, for 2 and 4 cores.
func SharedLLC(cfg harness.Config) (Result, error) {
	r := harness.SharedRunner(cfg)
	// Warm the cache over both core counts: alone CPIs, private baseline
	// and the shared-LLC machine for every mix.
	allMixes := append(append([][]int{}, workload.TwoAppMixes()...), workload.FourAppMixes()...)
	if err := harness.ForEach(len(allMixes), func(i int) error {
		mix := allMixes[i]
		if _, err := r.AloneCPIs(mix); err != nil {
			return err
		}
		if _, err := r.RunMix(mix, harness.PBaseline); err != nil {
			return err
		}
		_, err := r.RunShared(mix)
		return err
	}); err != nil {
		return Result{}, err
	}
	res := Result{ID: "shared"}
	res.Table = harness.Table{
		Title:  "§6.1: shared LLC of aggregate capacity vs private baseline",
		Header: []string{"cores", "perf improvement", "fairness improvement"},
		Notes: []string{
			"paper: +1.8%/+1.7% at 2 cores and +3%/+3% at 4 cores — far below ASCC/AVGCC",
		},
	}
	for _, group := range []struct {
		cores int
		mixes [][]int
	}{
		{2, workload.TwoAppMixes()},
		{4, workload.FourAppMixes()},
	} {
		var perfs, fairs []float64
		for _, mix := range group.mixes {
			alone, err := r.AloneCPIs(mix)
			if err != nil {
				return Result{}, err
			}
			base, err := r.RunMix(mix, harness.PBaseline)
			if err != nil {
				return Result{}, err
			}
			shared, err := r.RunShared(mix)
			if err != nil {
				return Result{}, err
			}
			perfs = append(perfs, metrics.Improvement(
				metrics.WeightedSpeedup(metrics.CPIs(shared), alone),
				metrics.WeightedSpeedup(metrics.CPIs(base), alone)))
			fairs = append(fairs, metrics.Improvement(
				metrics.HMeanFairness(metrics.CPIs(shared), alone),
				metrics.HMeanFairness(metrics.CPIs(base), alone)))
		}
		perf := metrics.GeomeanImprovement(perfs)
		fair := metrics.GeomeanImprovement(fairs)
		res.Table.Rows = append(res.Table.Rows, []string{
			fmt.Sprintf("%d", group.cores), harness.Pct(perf), harness.Pct(fair),
		})
		res.set(fmt.Sprintf("perf/%dcore", group.cores), perf)
		res.set(fmt.Sprintf("fair/%dcore", group.cores), fair)
	}
	return res, nil
}

// Table1 reproduces the granularity sweep: ASCC grouping 1, 4, 16, 64, 256
// and all sets per counter (the paper's ASCC..ASCC1 columns, expressed as
// counters per cache at the configured geometry).
func Table1(cfg harness.Config) (Result, error) {
	r := harness.SharedRunner(cfg)
	sets, ways := cfg.L2Geometry()
	groupSizes := []int{1, 4, 16, 64, 256, sets}
	res := Result{ID: "table1"}
	header := []string{"workload"}
	for _, g := range groupSizes {
		header = append(header, fmt.Sprintf("ASCC%d", sets/g))
	}
	res.Table = harness.Table{
		Title:  "Table 1: ASCC granularity sweep, weighted-speedup improvement (4 cores)",
		Header: header,
		Notes: []string{
			fmt.Sprintf("columns are counters per cache at the scaled geometry (%d sets); the paper's 4096-set columns map proportionally", sets),
		},
	}
	// RunMixWith takes caller-owned policy state and is not memoised, so
	// the (mix, granularity) grid collects improvements by index instead of
	// warming a cache; the baseline and alone runs still dedupe.
	mixes := workload.FourAppMixes()
	imps := make([][]float64, len(mixes))
	for i := range imps {
		imps[i] = make([]float64, len(groupSizes))
	}
	if err := harness.ForEach(len(mixes)*len(groupSizes), func(k int) error {
		mi, gi := k/len(groupSizes), k%len(groupSizes)
		// RunMixWith takes a caller-built policy, so the caller also owns
		// the -cores widening: extend the mix first and size the policy
		// from the widened length (RunMix/AloneCPIs widen identically).
		mix := workload.ExtendMix(mixes[mi], cfg.Cores)
		alone, err := r.AloneCPIs(mix)
		if err != nil {
			return err
		}
		base, err := r.RunMix(mix, harness.PBaseline)
		if err != nil {
			return err
		}
		pol := policies.NewASCCGranular(len(mix), sets, ways, log2(groupSizes[gi]), cfg.Seed)
		run, err := r.RunMixWith(mix, pol)
		if err != nil {
			return err
		}
		imps[mi][gi] = metrics.Improvement(
			metrics.WeightedSpeedup(metrics.CPIs(run), alone),
			metrics.WeightedSpeedup(metrics.CPIs(base), alone))
		return nil
	}); err != nil {
		return Result{}, err
	}
	per := make([][]float64, len(groupSizes))
	for mi, mix := range mixes {
		row := []string{workload.MixName(mix)}
		for gi := range groupSizes {
			per[gi] = append(per[gi], imps[mi][gi])
			row = append(row, harness.Pct(imps[mi][gi]))
		}
		res.Table.Rows = append(res.Table.Rows, row)
	}
	geo := []string{"geomean"}
	for gi, g := range groupSizes {
		m := metrics.GeomeanImprovement(per[gi])
		geo = append(geo, harness.Pct(m))
		res.set(fmt.Sprintf("geomean/ASCC%d", sets/g), m)
	}
	res.Table.Rows = append(res.Table.Rows, geo)
	return res, nil
}

func log2(n int) int {
	d := 0
	for n > 1 {
		n >>= 1
		d++
	}
	return d
}
