package ssl

// EWMABank is an alternative per-set stress metric, implementing the
// paper's closing future-work direction ("exploring other metrics, to
// obtain a more accurate picture of the state of the cache"): instead of a
// saturating up/down counter, each set group tracks an exponentially
// weighted moving average of its miss ratio in fixed point.
//
// Classification mirrors the SSL bands so the ASCC machinery is unchanged:
// a set is a receiver below LowThreshold, a spiller above HighThreshold,
// neutral in between. Unlike the SSL — where one hit cancels exactly one
// miss — the EWMA gives recent behaviour geometrically more weight, so it
// reacts faster to phase changes and is not pinned by equal hit/miss rates.
type EWMABank struct {
	numSets int
	d       int // log2(sets per tracker), fixed (no AVGCC resize for EWMA)

	// avg is the miss-ratio EWMA in 16-bit fixed point (0 = all hits,
	// 65535 = all misses).
	avg []uint16

	// shift sets the smoothing factor alpha = 1/2^shift.
	shift uint

	// thresholds in the same fixed point.
	low, high uint16
}

// NewEWMABank builds an EWMA tracker with one entry per set, smoothing
// alpha = 1/8, and the default receiver/spiller thresholds (miss ratios
// 0.35 and 0.75).
func NewEWMABank(numSets int) *EWMABank {
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic("ssl: numSets must be a positive power of two")
	}
	b := &EWMABank{
		numSets: numSets,
		avg:     make([]uint16, numSets),
		shift:   3,
		low:     ratio16(0.35),
		high:    ratio16(0.75),
	}
	for i := range b.avg {
		b.avg[i] = b.low - 1 // start just inside the receiver band (like SSL's K-1)
	}
	return b
}

// ratio16 converts a fraction in [0, 1] to 16-bit fixed point.
func ratio16(f float64) uint16 { return uint16(f * 65535) }

// SetThresholds overrides the receiver/spiller miss-ratio thresholds
// (fractions in [0, 1], low < high).
func (b *EWMABank) SetThresholds(low, high float64) {
	if low < 0 || high > 1 || low >= high {
		panic("ssl: bad EWMA thresholds")
	}
	b.low = ratio16(low)
	b.high = ratio16(high)
}

// SetGranularity groups 2^d adjacent sets per tracker.
func (b *EWMABank) SetGranularity(d int) {
	if d < 0 || b.numSets>>d < 1 {
		panic("ssl: bad EWMA granularity")
	}
	b.d = d
	for i := 0; i < b.numSets>>d; i++ {
		b.avg[i] = b.low - 1
	}
}

func (b *EWMABank) idx(set int) int { return set >> b.d }

// Observe folds one access outcome into the set's EWMA.
func (b *EWMABank) Observe(set int, hit bool) {
	i := b.idx(set)
	old := uint32(b.avg[i])
	var sample uint32
	if !hit {
		sample = 65535
	}
	b.avg[i] = uint16(old - old>>b.shift + sample>>b.shift)
}

// MissRatio returns the set's current smoothed miss ratio in [0, 1].
func (b *EWMABank) MissRatio(set int) float64 {
	return float64(b.avg[b.idx(set)]) / 65535
}

// Role classifies the set with the same three states as the SSL design.
func (b *EWMABank) Role(set int) Role {
	switch v := b.avg[b.idx(set)]; {
	case v < b.low:
		return Receiver
	case v >= b.high:
		return Spiller
	default:
		return Neutral
	}
}

// Value maps the EWMA onto the SSL's [0, 2K-1] scale for a given
// associativity, so receiver ordering (lowest first) keeps working.
func (b *EWMABank) Value(set int, assoc int) int {
	return int(b.MissRatio(set) * float64(2*assoc-1))
}
