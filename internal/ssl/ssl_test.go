package ssl

import (
	"testing"
	"testing/quick"

	"ascc/internal/rng"
)

func TestInitialState(t *testing.T) {
	b := NewBank(16, 8)
	if b.K() != 8 || b.NumSets() != 16 || b.D() != 0 || b.InUse() != 16 {
		t.Fatalf("unexpected initial geometry: %+v", b)
	}
	for s := 0; s < 16; s++ {
		if v := b.Value(s); v != 7 {
			t.Fatalf("initial SSL[%d] = %d, want K-1 = 7", s, v)
		}
		if b.Role(s) != Receiver {
			t.Fatalf("initial role of set %d = %v, want receiver", s, b.Role(s))
		}
		if b.BIPMode(s) {
			t.Fatalf("set %d starts in BIP mode", s)
		}
	}
	if b.B() != 16 {
		t.Fatalf("initial B = %d, want 16 (all below K)", b.B())
	}
	if b.A() != 8 {
		t.Fatalf("initial A = %d, want 8 (all pairs similar)", b.A())
	}
}

func TestSaturationBounds(t *testing.T) {
	b := NewBank(4, 8) // counters in [0, 15]
	for i := 0; i < 100; i++ {
		b.OnMiss(0)
	}
	if v := b.Value(0); v != 15 {
		t.Fatalf("saturated high at %d, want 2K-1 = 15", v)
	}
	if b.Role(0) != Spiller {
		t.Fatalf("saturated counter role = %v, want spiller", b.Role(0))
	}
	for i := 0; i < 200; i++ {
		b.OnHit(0)
	}
	if v := b.Value(0); v != 0 {
		t.Fatalf("saturated low at %d, want 0", v)
	}
	if b.Role(0) != Receiver {
		t.Fatalf("zero counter role = %v, want receiver", b.Role(0))
	}
}

func TestRoleThresholds(t *testing.T) {
	b := NewBank(4, 8)
	// Start at 7 (K-1). One miss -> 8 = K: neutral.
	b.OnMiss(0)
	if b.Value(0) != 8 || b.Role(0) != Neutral {
		t.Fatalf("SSL=%d role=%v, want 8/neutral", b.Value(0), b.Role(0))
	}
	// Climb to 14: still neutral. 15: spiller.
	for i := 0; i < 6; i++ {
		b.OnMiss(0)
	}
	if b.Value(0) != 14 || b.Role(0) != Neutral {
		t.Fatalf("SSL=%d role=%v, want 14/neutral", b.Value(0), b.Role(0))
	}
	b.OnMiss(0)
	if b.Value(0) != 15 || b.Role(0) != Spiller {
		t.Fatalf("SSL=%d role=%v, want 15/spiller", b.Value(0), b.Role(0))
	}
	// One hit drops it out of spiller.
	b.OnHit(0)
	if b.Role(0) != Neutral {
		t.Fatalf("role after hit = %v, want neutral", b.Role(0))
	}
}

func TestRoleTwoState(t *testing.T) {
	b := NewBank(4, 8)
	if b.RoleTwoState(0) != Receiver {
		t.Fatal("K-1 should be receiver in 2-state mode")
	}
	b.OnMiss(0) // -> K
	if b.RoleTwoState(0) != Spiller {
		t.Fatal("K should be spiller in 2-state mode")
	}
}

func TestGranularityGrouping(t *testing.T) {
	b := NewBank(16, 8)
	b.SetGranularity(2) // 4 sets per counter
	if b.InUse() != 4 {
		t.Fatalf("in use = %d, want 4", b.InUse())
	}
	// Sets 0..3 share counter 0.
	b.OnMiss(1)
	for s := 0; s < 4; s++ {
		if b.Value(s) != 8 {
			t.Fatalf("set %d SSL = %d, want shared 8", s, b.Value(s))
		}
	}
	if b.Value(4) != 7 {
		t.Fatalf("set 4 SSL = %d, want untouched 7", b.Value(4))
	}
}

func TestBCounterTracksBelowK(t *testing.T) {
	b := NewBank(8, 4) // K=4, counters start at 3, B=8
	if b.B() != 8 {
		t.Fatalf("B = %d, want 8", b.B())
	}
	b.OnMiss(0) // counter 0: 3->4, leaves below-K
	if b.B() != 7 {
		t.Fatalf("B = %d after crossing up, want 7", b.B())
	}
	b.OnHit(0) // 4->3, back below K
	if b.B() != 8 {
		t.Fatalf("B = %d after crossing down, want 8", b.B())
	}
}

func TestACounterTracksSimilarPairs(t *testing.T) {
	b := NewBank(8, 4)
	if b.A() != 4 {
		t.Fatalf("A = %d, want 4", b.A())
	}
	// Push counter 0 three units above counter 1: pair becomes dissimilar.
	b.OnMiss(0)
	b.OnMiss(0)
	if b.A() != 4 {
		t.Fatalf("A = %d with diff 2 (still similar), want 4", b.A())
	}
	b.OnMiss(0)
	if b.A() != 3 {
		t.Fatalf("A = %d with diff 3, want 3", b.A())
	}
	// Pull it back: similar again.
	b.OnHit(0)
	if b.A() != 4 {
		t.Fatalf("A = %d after rebalance, want 4", b.A())
	}
}

func TestACountsPolicyBit(t *testing.T) {
	b := NewBank(8, 4)
	b.SetBIPMode(0, true) // counter 0 differs from counter 1 in policy
	if b.A() != 3 {
		t.Fatalf("A = %d after policy divergence, want 3", b.A())
	}
	b.SetBIPMode(1, true)
	if b.A() != 4 {
		t.Fatalf("A = %d after policies match again, want 4", b.A())
	}
	// Setting the same value twice is a no-op.
	b.SetBIPMode(1, true)
	if b.A() != 4 {
		t.Fatalf("A = %d after redundant set, want 4", b.A())
	}
}

func TestResizeFinerWhenManyReceivers(t *testing.T) {
	b := NewBank(16, 8)
	b.SetGranularity(4) // 1 counter for all sets
	if b.InUse() != 1 {
		t.Fatalf("in use = %d, want 1", b.InUse())
	}
	// The single counter starts at K-1 < K, so B=1 > 1/2=0: refine.
	d, changed := b.Resize()
	if !changed || d != 3 {
		t.Fatalf("resize -> d=%d changed=%v, want 3/true", d, changed)
	}
	if b.InUse() != 2 {
		t.Fatalf("in use = %d after refine, want 2", b.InUse())
	}
	// Counters were reinitialised.
	if b.Value(0) != 7 || b.Value(15) != 7 {
		t.Fatal("counters not reinitialised after resize")
	}
}

func TestResizeCoarserWhenAllPairsSimilar(t *testing.T) {
	b := NewBank(16, 8)
	// Push every counter to neutral so B = 0, keep pairs similar.
	for s := 0; s < 16; s++ {
		b.OnMiss(s)
		b.OnMiss(s)
	}
	if b.B() != 0 {
		t.Fatalf("B = %d, want 0", b.B())
	}
	if b.A() != 8 {
		t.Fatalf("A = %d, want 8", b.A())
	}
	d, changed := b.Resize()
	if !changed || d != 1 {
		t.Fatalf("resize -> d=%d changed=%v, want 1/true", d, changed)
	}
}

func TestResizeNoChangeWhenMixed(t *testing.T) {
	b := NewBank(16, 8)
	// Make exactly half the counters neutral with dissimilar pairs:
	// counters 0,2,4,6,8,10,12,14 get +4 (SSL 11), odd ones stay at 7.
	for s := 0; s < 16; s += 2 {
		for i := 0; i < 4; i++ {
			b.OnMiss(s)
		}
	}
	// B = 8 (odd counters below K), not > 8; A = 0 (diff 4 > 2).
	if b.B() != 8 || b.A() != 0 {
		t.Fatalf("B=%d A=%d, want 8/0", b.B(), b.A())
	}
	if _, changed := b.Resize(); changed {
		t.Fatal("resize changed granularity with neither condition met")
	}
}

func TestResizeRespectsBounds(t *testing.T) {
	b := NewBank(4, 8)
	// At finest granularity, refine must not go below 0.
	if b.D() != 0 {
		t.Fatal("not at finest")
	}
	// All counters below K: B=4 > 2, but D=0 already.
	if _, changed := b.Resize(); changed {
		t.Fatal("refined below finest granularity")
	}
	// At coarsest, coarsen must not exceed maxD.
	b.SetGranularity(2) // 1 counter
	b.OnMiss(0)         // push to K: B=0; single counter: no pairs, A=0, inUse=1
	if _, changed := b.Resize(); changed {
		t.Fatal("coarsened past a single counter")
	}
}

func TestLimitCounters(t *testing.T) {
	b := NewBank(4096, 8)
	b.LimitCounters(128)
	if b.D() != 5 || b.InUse() != 128 {
		t.Fatalf("after limit: D=%d inUse=%d, want 5/128", b.D(), b.InUse())
	}
	// Refinement stops at the cap even when B favours it (all below K).
	if _, changed := b.Resize(); changed {
		t.Fatal("resize refined beyond the counter limit")
	}
	// Coarsening is still allowed.
	for s := 0; s < 4096; s += 32 {
		b.OnMiss(s)
		b.OnMiss(s) // every counter to SSL 9 -> B = 0, pairs similar
	}
	if d, changed := b.Resize(); !changed || d != 6 {
		t.Fatalf("resize -> d=%d changed=%v, want 6/true", d, changed)
	}
}

func TestQoSFractionalIncrement(t *testing.T) {
	b := NewBank(4, 8)
	b.SetMissIncrement(4) // 0.5 in 1.3 fixed point
	b.OnMiss(0)
	if v := b.Value(0); v != 7 {
		t.Fatalf("SSL = %d after 0.5 increment from 7.0, want still 7 (7.5)", v)
	}
	b.OnMiss(0)
	if v := b.Value(0); v != 8 {
		t.Fatalf("SSL = %d after two 0.5 increments, want 8", v)
	}
	// Hits still subtract a full unit.
	b.OnHit(0)
	if v := b.Value(0); v != 7 {
		t.Fatalf("SSL = %d after hit, want 7", v)
	}
	// Zero increment freezes upward movement entirely (full inhibition).
	b.SetMissIncrement(0)
	for i := 0; i < 100; i++ {
		b.OnMiss(0)
	}
	if b.Role(0) != Receiver {
		t.Fatalf("role = %v with zero increment, want receiver", b.Role(0))
	}
	// Clamping.
	b.SetMissIncrement(99)
	if b.MissIncrement() != One {
		t.Fatalf("increment clamped to %d, want %d", b.MissIncrement(), One)
	}
	b.SetMissIncrement(-5)
	if b.MissIncrement() != 0 {
		t.Fatalf("increment clamped to %d, want 0", b.MissIncrement())
	}
}

// TestABInvariantProperty drives the bank with random hits/misses/policy
// flips/resizes and cross-checks the incrementally maintained A and B
// against a from-scratch recount.
func TestABInvariantProperty(t *testing.T) {
	recount := func(b *Bank) (a, bb int) {
		n := b.InUse()
		vals := b.Counters()
		for i := 0; i < n; i++ {
			if vals[i] < b.K() {
				bb++
			}
		}
		for i := 0; i+1 < n; i += 2 {
			d := vals[i] - vals[i+1]
			if d < 0 {
				d = -d
			}
			if d <= 2 && b.BIPMode(i<<b.D()) == b.BIPMode((i+1)<<b.D()) {
				a++
			}
		}
		return
	}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		b := NewBank(32, 8)
		for i := 0; i < 2000; i++ {
			s := r.Intn(32)
			switch r.Intn(10) {
			case 0:
				b.SetBIPMode(s, r.Bernoulli(0.5))
			case 1:
				if r.Bernoulli(0.05) {
					b.Resize()
				}
			case 2, 3, 4:
				b.OnHit(s)
			default:
				b.OnMiss(s)
			}
			wantA, wantB := recount(b)
			if b.A() != wantA || b.B() != wantB {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestValueFixedAndCountersView(t *testing.T) {
	b := NewBank(4, 8)
	b.OnMiss(0)
	if got := b.ValueFixed(0); got != 8<<3 {
		t.Fatalf("fixed value = %d, want %d", got, 8<<3)
	}
	c := b.Counters()
	if len(c) != 4 || c[0] != 8 || c[1] != 7 {
		t.Fatalf("counters view = %v", c)
	}
}

func TestRoleString(t *testing.T) {
	if Receiver.String() != "receiver" || Neutral.String() != "neutral" || Spiller.String() != "spiller" {
		t.Fatal("role names wrong")
	}
}

func TestNewBankValidation(t *testing.T) {
	for _, bad := range []struct{ sets, k int }{{0, 8}, {3, 8}, {8, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBank(%d,%d) did not panic", bad.sets, bad.k)
				}
			}()
			NewBank(bad.sets, bad.k)
		}()
	}
}

// TestLazyABMatchesRecount drives a bank through a randomized interleave of
// every mutation (hits, misses with a fractional QoS increment, policy-bit
// flips, granularity changes, resizes) and checks A and B after each step
// against a brute-force recount from the public per-set state. This pins
// the deferred A/B maintenance (abDirty): readers must always observe the
// values incremental bookkeeping would have produced.
func TestLazyABMatchesRecount(t *testing.T) {
	const sets, assoc = 16, 4
	b := NewBankMax(sets, assoc, 2*assoc-1)
	oracle := func() (a, bb int) {
		n := b.InUse()
		step := sets / n // sets per counter
		for i := 0; i < n; i++ {
			if b.Value(i*step) < assoc {
				bb++
			}
		}
		for i := 0; i+1 < n; i += 2 {
			lo, hi := i*step, (i+1)*step
			d := b.Value(lo) - b.Value(hi)
			if d < 0 {
				d = -d
			}
			if d <= 2 && b.BIPMode(lo) == b.BIPMode(hi) {
				a++
			}
		}
		return a, bb
	}
	state := uint64(0x9e3779b97f4a7c15)
	next := func(n int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(n))
	}
	for step := 0; step < 2000; step++ {
		set := next(sets)
		switch next(7) {
		case 0, 1:
			b.OnMiss(set)
		case 2, 3:
			b.OnHit(set)
		case 4:
			b.SetBIPMode(set, next(2) == 1)
		case 5:
			b.SetMissIncrement(1 + next(One))
		case 6:
			if next(4) == 0 {
				b.Resize()
			}
		}
		wantA, wantB := oracle()
		if gotA, gotB := b.A(), b.B(); gotA != wantA || gotB != wantB {
			t.Fatalf("step %d: A/B = (%d,%d), recount (%d,%d)", step, gotA, gotB, wantA, wantB)
		}
	}
}
