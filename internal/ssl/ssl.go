// Package ssl implements the Set Saturation Level machinery of the paper:
// per-set saturating counters (Rolán et al., MICRO'09), the three-way
// spiller/neutral/receiver classification of ASCC, the per-group insertion
// policy bit, and the A/B/D counters that drive AVGCC's dynamic granularity.
//
// Counters are kept in 4.3 fixed point (three fractional bits) so that the
// QoS-Aware AVGCC extension, which adds a fractional QoSRatio on each miss,
// shares the same arithmetic as the plain designs (which always add 1.0).
package ssl

import "fmt"

// Role is the classification of a set (or set group) derived from its SSL.
type Role int

const (
	// Receiver: SSL < K. The set holds its working set comfortably and can
	// host lines spilled by other caches.
	Receiver Role = iota
	// Neutral: K <= SSL < 2K-1. The set neither spills nor receives.
	Neutral
	// Spiller: SSL == 2K-1 (saturated). The set cannot hold its working set
	// and spills last-copy victims.
	Spiller
)

// String names the role.
func (r Role) String() string {
	switch r {
	case Receiver:
		return "receiver"
	case Neutral:
		return "neutral"
	case Spiller:
		return "spiller"
	}
	return fmt.Sprintf("Role(%d)", int(r))
}

// fracBits is the number of fractional bits in the fixed-point counters
// (the paper's QoS design uses 4.3 format).
const fracBits = 3

// One is the fixed-point representation of 1.0 — the default miss increment
// and the hit decrement.
const One = 1 << fracBits

// Bank is the set-saturation-counter state for one cache: the counters, the
// per-group insertion-policy bits, and the A/B/D bookkeeping of AVGCC.
//
// With granularity D, counter i covers sets [i<<D, (i+1)<<D) and the number
// of counters in use is numSets>>D. The backing arrays are sized for the
// finest granularity; only the first numSets>>D entries are live.
type Bank struct {
	numSets int
	assoc   int // K
	kFix    int // K in fixed point
	maxFix  int // (2K-1) in fixed point: saturation ceiling

	d    int // log2(sets per counter)
	maxD int // coarsest allowed (1 counter for the whole cache)
	minD int // finest allowed (raised by the §7 limited-counter experiments)

	counters []int  // fixed point, len numSets
	bip      []bool // insertion-policy bit per counter (true = SABIP/BIP mode)

	a int // pairs of adjacent in-use counters fulfilling the "similar" condition
	b int // in-use counters with value < K

	// abDirty marks a and b stale. The A/B counters are read only at resize
	// boundaries (Resize / A / B), so instead of re-evaluating the pair
	// condition around every counter nudge, mutations just set this flag and
	// the reader recounts — one O(counters) pass per ResizePeriod accesses
	// instead of two pairSimilar evaluations per access. The recount yields
	// exactly the value incremental maintenance would have (it is a pure
	// function of counters/bip), so observable behaviour is unchanged.
	abDirty bool

	missIncr int // fixed point; One normally, QoSRatio<<0 for QoS-AVGCC
}

// NewBank creates a bank for a cache with numSets sets (power of two) and
// associativity assoc, at the finest granularity (one counter per set).
// Counters start at K-1 — the receiver side of the K boundary, matching the
// paper's post-resize initialisation. The saturation ceiling is the paper's
// 2K-1.
func NewBank(numSets, assoc int) *Bank {
	return NewBankMax(numSets, assoc, 2*assoc-1)
}

// NewBankMax is NewBank with an explicit saturation ceiling (the paper's
// future work suggests "tuning the size and limits of saturation
// counters"): a lower ceiling makes sets become spillers after fewer
// misses, a higher one demands a longer miss streak. max must be > K.
func NewBankMax(numSets, assoc, max int) *Bank {
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("ssl: numSets %d not a positive power of two", numSets))
	}
	if assoc <= 0 {
		panic("ssl: non-positive associativity")
	}
	if max <= assoc {
		panic(fmt.Sprintf("ssl: counter ceiling %d must exceed K=%d", max, assoc))
	}
	b := &Bank{
		numSets:  numSets,
		assoc:    assoc,
		kFix:     assoc << fracBits,
		maxFix:   max << fracBits,
		maxD:     log2(numSets),
		counters: make([]int, numSets),
		bip:      make([]bool, numSets),
		missIncr: One,
	}
	b.reinit()
	return b
}

func log2(n int) int {
	d := 0
	for n > 1 {
		n >>= 1
		d++
	}
	return d
}

// K returns the associativity the bank was built for.
func (b *Bank) K() int { return b.assoc }

// NumSets returns the number of sets covered.
func (b *Bank) NumSets() int { return b.numSets }

// D returns the current granularity exponent (log2 sets per counter).
func (b *Bank) D() int { return b.d }

// InUse returns the number of counters currently live.
func (b *Bank) InUse() int { return b.numSets >> b.d }

// A returns the similar-adjacent-pairs counter (AVGCC's A).
func (b *Bank) A() int { b.ensureAB(); return b.a }

// B returns the counters-below-K counter (AVGCC's B).
func (b *Bank) B() int { b.ensureAB(); return b.b }

// SetGranularity forces granularity exponent d (ASCC with a fixed grouping,
// Table 1). All counters are reinitialised.
func (b *Bank) SetGranularity(d int) {
	if d < 0 || d > b.maxD {
		panic(fmt.Sprintf("ssl: granularity %d outside [0,%d]", d, b.maxD))
	}
	b.d = d
	b.reinit()
}

// LimitCounters caps the number of counters in use to at most max (a power
// of two), implementing the §7 storage-reduction experiments. It raises the
// finest granularity accordingly.
func (b *Bank) LimitCounters(max int) {
	if max <= 0 || max&(max-1) != 0 {
		panic(fmt.Sprintf("ssl: counter limit %d not a positive power of two", max))
	}
	if max > b.numSets {
		max = b.numSets
	}
	b.minD = log2(b.numSets / max)
	if b.d < b.minD {
		b.d = b.minD
		b.reinit()
	}
}

// reinit sets every live counter to K-1 and every policy bit to MRU, then
// recomputes A and B, mirroring the paper's post-resize initialisation.
func (b *Bank) reinit() {
	n := b.InUse()
	init := (b.assoc - 1) << fracBits
	for i := 0; i < n; i++ {
		b.counters[i] = init
		b.bip[i] = false
	}
	b.recountAB()
}

// ensureAB recounts A and B if mutations have left them stale.
func (b *Bank) ensureAB() {
	if b.abDirty {
		b.recountAB()
	}
}

// recountAB recomputes A and B from scratch.
func (b *Bank) recountAB() {
	b.abDirty = false
	n := b.InUse()
	b.b = 0
	for i := 0; i < n; i++ {
		if b.counters[i] < b.kFix {
			b.b++
		}
	}
	b.a = 0
	for i := 0; i+1 < n; i += 2 {
		if b.pairSimilar(i) {
			b.a++
		}
	}
}

// pairSimilar evaluates AVGCC's halving condition for the pair containing
// counter idx: absolute SSL difference of at most two AND same insertion
// policy. The comparison uses whole SSL units, as in the paper.
func (b *Bank) pairSimilar(idx int) bool {
	lo := idx &^ 1
	hi := lo + 1
	if hi >= b.InUse() {
		return false
	}
	if b.bip[lo] != b.bip[hi] {
		return false
	}
	d := b.counters[lo]>>fracBits - b.counters[hi]>>fracBits
	if d < 0 {
		d = -d
	}
	return d <= 2
}

// CounterIndex maps a set to its live counter.
func (b *Bank) CounterIndex(set int) int { return set >> b.d }

// Value returns the SSL of the counter covering set, in whole units.
func (b *Bank) Value(set int) int { return b.counters[b.CounterIndex(set)] >> fracBits }

// ValueFixed returns the raw fixed-point counter value for set.
func (b *Bank) ValueFixed(set int) int { return b.counters[b.CounterIndex(set)] }

// SetMissIncrement sets the fixed-point amount added on each miss — the
// QoS-Aware AVGCC QoSRatio in 1.3 fixed point (0..8 meaning 0.0..1.0).
func (b *Bank) SetMissIncrement(fixed int) {
	if fixed < 0 {
		fixed = 0
	}
	if fixed > One {
		fixed = One
	}
	b.missIncr = fixed
}

// MissIncrement returns the current fixed-point miss increment.
func (b *Bank) MissIncrement() int { return b.missIncr }

// OnMiss records a miss in set: the covering counter saturates upward by the
// miss increment.
func (b *Bank) OnMiss(set int) { b.add(b.CounterIndex(set), b.missIncr) }

// OnHit records a hit in set: the covering counter saturates downward by 1.
func (b *Bank) OnHit(set int) { b.add(b.CounterIndex(set), -One) }

// add applies a delta to counter idx with saturation. A and B are left
// stale (see abDirty) and recounted at the next resize-boundary read.
func (b *Bank) add(idx, delta int) {
	v := b.counters[idx] + delta
	if v < 0 {
		v = 0
	}
	if v > b.maxFix {
		v = b.maxFix
	}
	b.counters[idx] = v
	b.abDirty = true
}

// Role classifies the set per ASCC: receiver below K, spiller at saturation,
// neutral in between.
func (b *Bank) Role(set int) Role {
	v := b.counters[b.CounterIndex(set)]
	switch {
	case v < b.kFix:
		return Receiver
	case v >= b.maxFix:
		return Spiller
	default:
		return Neutral
	}
}

// RoleTwoState classifies with only two states (the ASCC-2S ablation of
// Fig. 5): spiller when SSL >= K, receiver otherwise.
func (b *Bank) RoleTwoState(set int) Role {
	if b.counters[b.CounterIndex(set)] >= b.kFix {
		return Spiller
	}
	return Receiver
}

// BIPMode reports whether the group covering set currently inserts with
// SABIP/BIP (true) or traditional MRU (false).
func (b *Bank) BIPMode(set int) bool { return b.bip[b.CounterIndex(set)] }

// SetBIPMode switches the insertion policy of the group covering set. The
// pair condition involves the policy bits, so A is left stale (see abDirty).
func (b *Bank) SetBIPMode(set int, on bool) {
	idx := b.CounterIndex(set)
	if b.bip[idx] == on {
		return
	}
	b.bip[idx] = on
	b.abDirty = true
}

// Resize applies AVGCC's periodic granularity update: if more than half the
// live counters are below K (B > inUse/2) the counter count is doubled
// (finer tracking, D--); else if every live pair is similar (A == inUse/2,
// inUse >= 2) the counter count is halved (coarser tracking, D++). On any
// change the live counters are reinitialised to K-1 with MRU insertion.
// It returns the new D and whether a change happened.
func (b *Bank) Resize() (d int, changed bool) {
	b.ensureAB()
	inUse := b.InUse()
	if b.b > inUse/2 {
		// The workload wants finer tracking; never coarsen in this state,
		// even if the refinement is blocked by the granularity floor.
		if b.d > b.minD {
			b.d--
			b.reinit()
			return b.d, true
		}
		return b.d, false
	}
	if inUse >= 2 && b.a == inUse/2 && b.d < b.maxD {
		b.d++
		b.reinit()
		return b.d, true
	}
	return b.d, false
}

// Counters returns a copy of the live counter values in whole SSL units
// (tests and debugging).
func (b *Bank) Counters() []int {
	out := make([]int, b.InUse())
	for i := range out {
		out[i] = b.counters[i] >> fracBits
	}
	return out
}
