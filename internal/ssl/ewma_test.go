package ssl

import "testing"

func TestEWMAInitialReceiver(t *testing.T) {
	b := NewEWMABank(16)
	for s := 0; s < 16; s++ {
		if b.Role(s) != Receiver {
			t.Fatalf("set %d starts as %v, want receiver", s, b.Role(s))
		}
	}
}

func TestEWMAConvergesToMissRatio(t *testing.T) {
	b := NewEWMABank(4)
	// Pure misses: ratio converges toward 1, role to spiller.
	for i := 0; i < 200; i++ {
		b.Observe(0, false)
	}
	if r := b.MissRatio(0); r < 0.95 {
		t.Fatalf("miss ratio %v after pure misses", r)
	}
	if b.Role(0) != Spiller {
		t.Fatalf("role %v, want spiller", b.Role(0))
	}
	// Pure hits: back to receiver.
	for i := 0; i < 200; i++ {
		b.Observe(0, true)
	}
	if r := b.MissRatio(0); r > 0.05 {
		t.Fatalf("miss ratio %v after pure hits", r)
	}
	if b.Role(0) != Receiver {
		t.Fatalf("role %v, want receiver", b.Role(0))
	}
}

func TestEWMANeutralBand(t *testing.T) {
	b := NewEWMABank(4)
	// Alternate hit/miss: ratio ~0.5 sits in the neutral band.
	for i := 0; i < 400; i++ {
		b.Observe(1, i%2 == 0)
	}
	if got := b.MissRatio(1); got < 0.4 || got > 0.6 {
		t.Fatalf("alternating ratio %v, want ~0.5", got)
	}
	if b.Role(1) != Neutral {
		t.Fatalf("role %v, want neutral", b.Role(1))
	}
}

func TestEWMAFasterThanSSLOnPhaseChange(t *testing.T) {
	// The point of the alternative metric: after a long hit phase, a burst
	// of misses flips the EWMA to spiller quicker than the SSL (which must
	// climb the whole [0,2K-1] ladder).
	e := NewEWMABank(4)
	s := NewBank(4, 8)
	for i := 0; i < 1000; i++ {
		e.Observe(0, true)
		s.OnHit(0)
	}
	flipsE, flipsS := -1, -1
	for i := 0; i < 64; i++ {
		e.Observe(0, false)
		s.OnMiss(0)
		if flipsE < 0 && e.Role(0) == Spiller {
			flipsE = i
		}
		if flipsS < 0 && s.Role(0) == Spiller {
			flipsS = i
		}
	}
	if flipsE < 0 {
		t.Fatal("EWMA never flipped to spiller")
	}
	if flipsS >= 0 && flipsE >= flipsS {
		t.Fatalf("EWMA flipped at miss %d, SSL at %d: EWMA should be faster", flipsE, flipsS)
	}
}

func TestEWMAGranularity(t *testing.T) {
	b := NewEWMABank(16)
	b.SetGranularity(2)
	for i := 0; i < 100; i++ {
		b.Observe(1, false) // trains the group covering sets 0..3
	}
	if b.Role(0) != Spiller || b.Role(3) != Spiller {
		t.Fatal("grouped sets do not share the tracker")
	}
	if b.Role(4) != Receiver {
		t.Fatal("neighbouring group affected")
	}
}

func TestEWMAValueMapping(t *testing.T) {
	b := NewEWMABank(4)
	for i := 0; i < 300; i++ {
		b.Observe(0, false)
	}
	if v := b.Value(0, 8); v < 13 || v > 15 {
		t.Fatalf("value %d, want near 2K-1=15", v)
	}
	for i := 0; i < 300; i++ {
		b.Observe(0, true)
	}
	if v := b.Value(0, 8); v > 1 {
		t.Fatalf("value %d, want near 0", v)
	}
}

func TestEWMAThresholdValidation(t *testing.T) {
	b := NewEWMABank(4)
	b.SetThresholds(0.2, 0.9)
	for _, bad := range [][2]float64{{-0.1, 0.5}, {0.5, 1.1}, {0.7, 0.7}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("thresholds %v accepted", bad)
				}
			}()
			b.SetThresholds(bad[0], bad[1])
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("bad set count accepted")
		}
	}()
	NewEWMABank(3)
}
