package policies

import (
	"testing"

	"ascc/internal/cachesim"
	"ascc/internal/ssl"
)

func TestBaselineIsInert(t *testing.T) {
	p := NewBaseline()
	if p.Name() != "baseline" {
		t.Fatalf("name %q", p.Name())
	}
	p.OnL2Access(0, 0, false)
	if p.Role(0, 0) != ssl.Neutral {
		t.Fatal("baseline set not neutral")
	}
	if len(p.Receivers(0, 0)) != 0 {
		t.Fatal("baseline chose a receiver")
	}
	if p.InsertPos(0, 0) != cachesim.InsertMRU {
		t.Fatal("baseline not MRU insertion")
	}
	if p.SwapEnabled() || p.AllowRespill() {
		t.Fatal("baseline has cooperative features on")
	}
	if p.DemandVictimAllow(0, 0) != nil || p.SpillVictimAllow(0, 0) != nil {
		t.Fatal("baseline restricts victims")
	}
}

func TestCCAlwaysSpillsRandomReceiver(t *testing.T) {
	p := NewCC(4, 1)
	if p.Name() != "CC" {
		t.Fatalf("name %q", p.Name())
	}
	if p.Role(2, 7) != ssl.Spiller {
		t.Fatal("CC set not a spiller")
	}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		rs := p.Receivers(1, 0)
		if len(rs) != 1 {
			t.Fatalf("CC offered %v, want exactly one candidate", rs)
		}
		r := rs[0]
		if r == 1 || r < 0 || r > 3 {
			t.Fatalf("CC receiver %d invalid", r)
		}
		seen[r] = true
	}
	if len(seen) != 3 {
		t.Fatalf("CC only used receivers %v", seen)
	}
	if p.AllowRespill() {
		t.Fatal("CC must be one-chance forwarding")
	}
	// Single cache: no receiver.
	if len(NewCC(1, 1).Receivers(0, 0)) != 0 {
		t.Fatal("CC with one cache found a receiver")
	}
}

func drive(p *ASCC, c, set, misses, hits int) {
	for i := 0; i < misses; i++ {
		p.OnL2Access(c, set, false)
	}
	for i := 0; i < hits; i++ {
		p.OnL2Access(c, set, true)
	}
}

func TestASCCRoleTransitions(t *testing.T) {
	p := NewASCC(2, 16, 8, 1)
	if p.Name() != "ASCC" {
		t.Fatalf("name %q", p.Name())
	}
	// Fresh sets start as receivers (SSL = K-1).
	if p.Role(0, 3) != ssl.Receiver {
		t.Fatal("fresh set not receiver")
	}
	// Enough misses saturate to spiller.
	drive(p, 0, 3, 10, 0)
	if p.Role(0, 3) != ssl.Spiller {
		t.Fatal("saturated set not spiller")
	}
	// A couple of hits drop it to neutral.
	drive(p, 0, 3, 0, 2)
	if p.Role(0, 3) != ssl.Neutral {
		t.Fatal("set not neutral after hits")
	}
}

func TestASCCChooseReceiverMinimum(t *testing.T) {
	p := NewASCC(4, 16, 8, 1)
	// Cache 1's set 5 gets hits (low SSL), cache 2's set 5 stays at K-1,
	// cache 3's saturates.
	drive(p, 1, 5, 0, 4) // SSL 3
	drive(p, 3, 5, 10, 0)
	rs := p.Receivers(0, 5)
	if len(rs) != 2 || rs[0] != 1 {
		t.Fatalf("receivers = %v, want [1 2] (lowest SSL first)", rs)
	}
	// Saturate everyone: no receiver.
	drive(p, 1, 5, 20, 0)
	drive(p, 2, 5, 20, 0)
	if rs := p.Receivers(0, 5); len(rs) != 0 {
		t.Fatalf("receivers = %v, want none", rs)
	}
}

func TestASCCChooseReceiverTieRandom(t *testing.T) {
	p := NewASCC(4, 16, 8, 1)
	// All three candidates at K-1: ties broken randomly by rotation.
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		rs := p.Receivers(0, 5)
		if len(rs) != 3 {
			t.Fatalf("receivers = %v, want 3 candidates", rs)
		}
		seen[rs[0]] = true
	}
	if len(seen) != 3 {
		t.Fatalf("tie-break explored %v, want 3 first choices", seen)
	}
}

func TestASCCNeverReturnsSelf(t *testing.T) {
	p := NewASCC(2, 16, 8, 1)
	for i := 0; i < 50; i++ {
		for _, r := range p.Receivers(1, 2) {
			if r == 1 {
				t.Fatal("receiver == spiller cache")
			}
		}
	}
}

func TestASCCCapacityModeSwitchesToSABIP(t *testing.T) {
	p := NewASCC(2, 16, 8, 1)
	if p.InsertPos(0, 4) != cachesim.InsertMRU {
		t.Fatal("fresh set not MRU")
	}
	p.OnSpillFail(0, 4)
	// Now in SABIP mode: most inserts at LRU-1, occasionally MRU.
	counts := map[cachesim.InsertPos]int{}
	for i := 0; i < 3200; i++ {
		counts[p.InsertPos(0, 4)]++
	}
	if counts[cachesim.InsertLRU1] < 2900 {
		t.Fatalf("SABIP LRU-1 fraction too low: %v", counts)
	}
	if counts[cachesim.InsertMRU] == 0 {
		t.Fatalf("SABIP never inserted at MRU (epsilon broken): %v", counts)
	}
	if counts[cachesim.InsertLRU] != 0 {
		t.Fatalf("SABIP inserted at LRU: %v", counts)
	}
}

func TestASCCRevertsToMRUWhenSSLDrops(t *testing.T) {
	p := NewASCC(2, 16, 8, 1)
	drive(p, 0, 4, 10, 0) // saturate
	p.OnSpillFail(0, 4)
	if !p.Bank(0).BIPMode(4) {
		t.Fatal("BIP mode not set after spill failure")
	}
	// Hits bring SSL below K: revert to MRU.
	drive(p, 0, 4, 0, 9)
	if p.Bank(0).BIPMode(4) {
		t.Fatal("BIP mode not cleared when SSL fell below K")
	}
	if p.InsertPos(0, 4) != cachesim.InsertMRU {
		t.Fatal("insertion not back to MRU")
	}
}

func TestLMSBIPUsesLRUNotLRU1(t *testing.T) {
	p := NewLMSBIP(2, 16, 8, 1)
	p.OnSpillFail(0, 4)
	counts := map[cachesim.InsertPos]int{}
	for i := 0; i < 1000; i++ {
		counts[p.InsertPos(0, 4)]++
	}
	if counts[cachesim.InsertLRU] < 900 || counts[cachesim.InsertLRU1] != 0 {
		t.Fatalf("LMS+BIP insertion wrong: %v", counts)
	}
}

func TestLRSRandomReceiver(t *testing.T) {
	p := NewLRS(4, 16, 8, 1)
	// Distinct SSLs: cache 1 lowest, but LRS must still pick any candidate
	// first.
	drive(p, 1, 5, 0, 4)
	seen := map[int]bool{}
	for i := 0; i < 300; i++ {
		seen[p.Receivers(0, 5)[0]] = true
	}
	if len(seen) != 3 {
		t.Fatalf("LRS explored %v, want all 3 candidates", seen)
	}
	// And no capacity response.
	p.OnSpillFail(0, 5)
	if p.InsertPos(0, 5) != cachesim.InsertMRU {
		t.Fatal("LRS changed insertion policy")
	}
}

func TestGMSSingleCounter(t *testing.T) {
	p := NewGMS(2, 16, 8, 1)
	if p.Bank(0).InUse() != 1 {
		t.Fatalf("GMS uses %d counters, want 1", p.Bank(0).InUse())
	}
	// Misses in any set drive the global role.
	drive(p, 0, 3, 10, 0)
	for set := 0; set < 16; set++ {
		if p.Role(0, set) != ssl.Spiller {
			t.Fatalf("GMS set %d not spiller after global saturation", set)
		}
	}
}

func TestASCC2SNoNeutral(t *testing.T) {
	p := NewASCC2S(2, 16, 8, 1)
	drive(p, 0, 3, 1, 0) // SSL = K: spiller under 2-state
	if p.Role(0, 3) != ssl.Spiller {
		t.Fatal("2S: SSL=K not spiller")
	}
	drive(p, 0, 3, 0, 1) // back to K-1
	if p.Role(0, 3) != ssl.Receiver {
		t.Fatal("2S: SSL=K-1 not receiver")
	}
}

func TestASCCGranularVariants(t *testing.T) {
	p := NewASCCGranular(2, 4096, 8, 2, 1)
	if p.Name() != "ASCC1024" {
		t.Fatalf("name %q, want ASCC1024", p.Name())
	}
	if p.Bank(0).InUse() != 1024 {
		t.Fatalf("in use %d, want 1024", p.Bank(0).InUse())
	}
	// Sets sharing a counter share fate.
	drive(p, 0, 0, 10, 0)
	if p.Role(0, 3) != ssl.Spiller || p.Role(0, 4) != ssl.Receiver {
		t.Fatal("granular grouping wrong")
	}
}

func TestAVGCCStartsGlobalAndRefines(t *testing.T) {
	p := NewAVGCC(2, 512, 8, 1)
	if p.Name() != "AVGCC" {
		t.Fatalf("name %q", p.Name())
	}
	if p.Bank(0).InUse() != 1 {
		t.Fatalf("AVGCC starts with %d counters, want 1", p.Bank(0).InUse())
	}
	// The single counter starts below K (B=1 > 0), so the first resize tick
	// refines.
	p.Tick(0, 100000)
	if p.Bank(0).InUse() != 2 {
		t.Fatalf("after tick: %d counters, want 2", p.Bank(0).InUse())
	}
	// Ticks at non-period counts do nothing.
	p.Tick(0, 100001)
	if p.Bank(0).InUse() != 2 {
		t.Fatal("off-period tick resized")
	}
}

func TestAVGCCLimitedCap(t *testing.T) {
	p := NewAVGCCLimited(2, 4096, 8, 128, 1)
	if p.Name() != "AVGCC-max128" {
		t.Fatalf("name %q", p.Name())
	}
	// Repeated refinement ticks must stop at 128 counters.
	for i := uint64(1); i <= 20; i++ {
		p.Tick(0, i*100000)
	}
	if p.Bank(0).InUse() > 128 {
		t.Fatalf("counter cap exceeded: %d", p.Bank(0).InUse())
	}
}

func TestQoSAVGCCInhibitsWhenWorse(t *testing.T) {
	p := NewQoSAVGCC(2, 512, 8, 1)
	if p.Name() != "QoS-AVGCC" {
		t.Fatalf("name %q", p.Name())
	}
	// Period with misses only in BIP-mode/receiver sets: the sampled-set
	// estimate MBC is 0, so QoSRatio becomes 0 and the SSL increment is
	// inhibited.
	for i := 0; i < 1000; i++ {
		p.OnL2Access(0, 3, false) // set 3: SSL starts at K-1 (receiver) -> sampled only when >K-1
	}
	// Set 3 saturated: it IS sampled (MRU mode, SSL > K-1) after warming.
	// Construct the opposite: all misses while sets stay receivers is not
	// reachable, so instead check the ratio reacts to the counters.
	p.recomputeQoS(0)
	inc := p.Bank(0).MissIncrement()
	if inc < 0 || inc > ssl.One {
		t.Fatalf("QoS increment out of range: %d", inc)
	}
	// When sampled sets see as many misses as the total, ratio ~= 1 (since
	// MBC = Sets * sampled/seen >= misses, capped at 1).
	p2 := NewQoSAVGCC(2, 512, 8, 1)
	for i := 0; i < 50; i++ {
		p2.OnL2Access(0, 7, false)
	}
	p2.recomputeQoS(0)
	if p2.Bank(0).MissIncrement() != ssl.One {
		t.Fatalf("QoS increment %d, want full (harmless period)", p2.Bank(0).MissIncrement())
	}
}

func TestCapacityModeString(t *testing.T) {
	if CapacityNone.String() != "none" || CapacityBIP.String() != "BIP" || CapacitySABIP.String() != "SABIP" {
		t.Fatal("capacity mode names wrong")
	}
}

func TestASCCSSLMaxCeiling(t *testing.T) {
	cfg := ASCCConfig{
		Caches: 2, Sets: 16, Assoc: 8,
		Capacity: CapacitySABIP, Epsilon: 1.0 / 32.0, Swap: true,
		SSLMax: 10, Seed: 1,
	}
	p := NewASCCVariant("low-ceiling", cfg)
	// With ceiling 10, saturation takes 3 misses from the K-1 start
	// instead of 8.
	drive(p, 0, 3, 3, 0)
	if p.Role(0, 3) != ssl.Spiller {
		t.Fatalf("role %v after 3 misses with ceiling 10, want spiller", p.Role(0, 3))
	}
	// The default design is still neutral at that point.
	q := NewASCC(2, 16, 8, 1)
	drive(q, 0, 3, 3, 0)
	if q.Role(0, 3) == ssl.Spiller {
		t.Fatal("default ceiling saturated after only 3 misses")
	}
}

func TestASCCEWMAMetric(t *testing.T) {
	cfg := ASCCConfig{
		Caches: 3, Sets: 16, Assoc: 8,
		Capacity: CapacitySABIP, Epsilon: 1.0 / 32.0, Swap: true,
		EWMA: true, Seed: 1,
	}
	p := NewASCCVariant("ewma", cfg)
	if p.Role(0, 3) != ssl.Receiver {
		t.Fatal("EWMA set does not start as receiver")
	}
	drive(p, 0, 3, 40, 0)
	if p.Role(0, 3) != ssl.Spiller {
		t.Fatalf("EWMA role %v after a miss storm, want spiller", p.Role(0, 3))
	}
	// Receiver ordering must use the EWMA values: cache 1's set is hotter
	// (lower miss ratio) than cache 2's.
	drive(p, 1, 3, 0, 40)
	drive(p, 2, 3, 5, 20)
	rs := p.Receivers(0, 3)
	if len(rs) != 2 || rs[0] != 1 {
		t.Fatalf("receivers %v, want [1 2]", rs)
	}
	// BIP mode reverts when the EWMA says receiver.
	p.OnSpillFail(1, 3)
	if !p.Bank(1).BIPMode(3) {
		t.Fatal("spill failure did not arm BIP")
	}
	drive(p, 1, 3, 0, 10)
	if p.Bank(1).BIPMode(3) {
		t.Fatal("BIP not reverted under EWMA receiver state")
	}
}

func TestASCCEWMARejectsDynamicAndQoS(t *testing.T) {
	for _, cfg := range []ASCCConfig{
		{Caches: 2, Sets: 16, Assoc: 8, EWMA: true, Dynamic: true},
		{Caches: 2, Sets: 16, Assoc: 8, EWMA: true, QoS: true},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			NewASCCVariant("x", cfg)
		}()
	}
}

// TestSABIPInsertionDepthOnCache drives a real cache with the insert
// positions ASCC emits in capacity mode and verifies — via the recency
// stacks themselves — that SABIP's common case lands guests one above the
// LRU, so the next spill (LRU insertion or eviction) cannot displace them
// immediately.
func TestSABIPInsertionDepthOnCache(t *testing.T) {
	p := NewASCC(2, 16, 8, 1)
	p.OnSpillFail(0, 4) // set 4 of core 0 enters capacity (SABIP) mode

	c := cachesim.New(cachesim.Config{SizeBytes: 8 * 64, Ways: 8, LineBytes: 64})
	// Fill the single set so insertions evict (the steady state).
	for blk := uint64(0); blk < 8; blk++ {
		c.Insert(blk, cachesim.InsertMRU, cachesim.Line{State: cachesim.Exclusive})
	}
	buf := make([]int, 0, c.Ways())
	lru1 := 0
	for i := 0; i < 256; i++ {
		blk := uint64(100 + i)
		c.Insert(blk, p.InsertPos(0, 4), cachesim.Line{State: cachesim.Shared, Spilled: true})
		buf = c.AppendRecencyStack(0, buf[:0])
		found, _ := c.Lookup(blk)
		depth := -1
		for d, way := range buf {
			if way == found {
				depth = d
			}
		}
		if depth == len(buf)-2 {
			lru1++
		} else if depth != 0 {
			t.Fatalf("insert %d landed at depth %d, want LRU-1 (%d) or MRU (0)", i, depth, len(buf)-2)
		}
	}
	if lru1 < 230 {
		t.Fatalf("only %d/256 SABIP insertions landed at LRU-1", lru1)
	}
}
