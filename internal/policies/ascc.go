package policies

import (
	"fmt"

	"ascc/internal/cachesim"
	"ascc/internal/coop"
	"ascc/internal/rng"
	"ascc/internal/ssl"
)

// SpillPlacement selects the recency position of incoming guest lines.
type SpillPlacement int

const (
	// SpillByReuse (the default) places a guest by the locality it
	// demonstrated at home: a victim that was reused during its previous
	// residence enters at MRU (it is part of a live working set being
	// migrated), while a never-reused victim enters at LRU-1 — it is
	// speculative, so it may only ratchet up an idle set gradually and
	// cannot displace a busy host's live lines. The paper does not pin
	// this detail down; the reuse bit is the same one that gates guest
	// admission (dead-line victims), so no extra state is needed.
	SpillByReuse SpillPlacement = iota
	// SpillLRU1 always inserts guests at the second-to-bottom position.
	SpillLRU1
	// SpillMRU always inserts guests at the top of the recency stack.
	SpillMRU
	// SpillLRU always inserts guests at the bottom.
	SpillLRU
)

// String names the placement.
func (s SpillPlacement) String() string {
	switch s {
	case SpillByReuse:
		return "by-reuse"
	case SpillLRU1:
		return "LRU-1"
	case SpillMRU:
		return "MRU"
	case SpillLRU:
		return "LRU"
	}
	return fmt.Sprintf("SpillPlacement(%d)", int(s))
}

// CapacityMode selects the insertion policy a spiller set adopts when it
// cannot find a receiver (the paper's §3.2 capacity mechanism).
type CapacityMode int

const (
	// CapacityNone leaves insertion at MRU always (the LRS/LMS/GMS
	// ablations of Fig. 4).
	CapacityNone CapacityMode = iota
	// CapacityBIP switches the set to plain BIP (most fills at LRU).
	CapacityBIP
	// CapacitySABIP switches the set to Spilling-Aware BIP (most fills at
	// LRU-1), the paper's design.
	CapacitySABIP
)

// String names the capacity mode.
func (m CapacityMode) String() string {
	switch m {
	case CapacityNone:
		return "none"
	case CapacityBIP:
		return "BIP"
	case CapacitySABIP:
		return "SABIP"
	}
	return fmt.Sprintf("CapacityMode(%d)", int(m))
}

// ASCCConfig parameterises the whole ASCC design space: the published ASCC
// and AVGCC, every ablation of Figures 4 and 5, the granularity sweep of
// Table 1, the limited-counter variants of §7 and the QoS extension of §8
// are all points in this space (see the constructors below).
type ASCCConfig struct {
	Caches int // private LLCs in the CMP
	Sets   int // sets per LLC
	Assoc  int // K

	// Granularity is the initial log2(sets per counter): 0 is the per-set
	// ASCC, log2(Sets) is the single-counter GMS/ASCC1.
	Granularity int

	// Dynamic enables AVGCC: the granularity is re-evaluated every
	// ResizePeriod accesses using the A/B/D counter mechanism.
	Dynamic      bool
	ResizePeriod uint64

	// MaxCounters caps the number of counters in use (§7 storage-reduction
	// experiments); 0 means no cap.
	MaxCounters int

	// TwoState removes the neutral state (ASCC-2S, Fig. 5): spiller when
	// SSL >= K, receiver otherwise.
	TwoState bool

	// RandomReceiver picks any candidate with SSL < K at random (the LRS
	// ablation) instead of the minimum-SSL candidate (LMS/ASCC).
	RandomReceiver bool

	// Capacity selects the no-receiver insertion response (§3.2).
	Capacity CapacityMode

	// Epsilon is BIP/SABIP's probability of inserting at MRU (paper: 1/32).
	Epsilon float64

	// Swap enables the §3.2 last-copy swap on remote hits.
	Swap bool

	// SpillPlacement selects where an incoming guest line lands in the
	// receiver set's recency stack (default SpillByReuse — see its doc).
	SpillPlacement SpillPlacement

	// SpillAnyVictim disables the reuse filter on spill victims: when
	// false (the default), only victims that were reused during their
	// residence are spilled; unreused victims take the capacity (SABIP)
	// path. See coop.Policy.SpillRequiresReuse.
	SpillAnyVictim bool

	// SSLMax overrides the saturation-counter ceiling (0 = the paper's
	// 2K-1). The paper's future work proposes tuning this limit.
	SSLMax int

	// EWMA replaces the saturating counters with an exponentially weighted
	// miss-ratio average — the paper's "exploring other metrics" future
	// work. Dynamic granularity (AVGCC) and QoS are SSL-only features.
	EWMA bool

	// QoS enables the §8 Quality-of-Service extension: the SSL miss
	// increment is scaled by QoSRatio, recomputed every ResizePeriod
	// accesses from the sampled-set estimate of baseline misses.
	QoS bool

	Seed uint64
}

// ASCC is the paper's Adaptive Set-Granular Cooperative Caching and, with
// Dynamic set, the Adaptive Variable-Granularity variant (AVGCC).
type ASCC struct {
	cfg   ASCCConfig
	name  string
	banks []*ssl.Bank
	r     *rng.Xoshiro256

	// candidate scratch buffer for receiver selection.
	cand []int

	// ewma is the alternative metric's state (nil for the SSL design).
	ewma []*ssl.EWMABank

	// QoS state, per cache and per period (§8).
	missesWith    []uint64
	sampledMisses []uint64
	sampledSeen   [][]bool
	sampledCount  []int

	// qosTrace, when set, observes each QoS recomputation (debug hook).
	qosTrace func(c int, mbc, misses, ratio float64)
}

// SetQoSTrace installs a debug observer for QoS recomputations.
func (p *ASCC) SetQoSTrace(fn func(c int, mbc, misses, ratio float64)) { p.qosTrace = fn }

// NewASCC builds the published ASCC: per-set counters, minimum-SSL receiver
// selection, SABIP capacity response, swapping enabled.
func NewASCC(caches, sets, assoc int, seed uint64) *ASCC {
	return NewASCCVariant("ASCC", ASCCConfig{
		Caches: caches, Sets: sets, Assoc: assoc,
		Capacity: CapacitySABIP, Epsilon: 1.0 / 32.0, Swap: true, Seed: seed,
	})
}

// AVGCCDefaultConfig returns the published AVGCC configuration; callers can
// adjust ResizePeriod (scaled runs) or QoS before NewASCCVariant.
func AVGCCDefaultConfig(caches, sets, assoc int, seed uint64) ASCCConfig {
	return ASCCConfig{
		Caches: caches, Sets: sets, Assoc: assoc,
		Granularity:  log2int(sets),
		Dynamic:      true,
		ResizePeriod: 100000,
		Capacity:     CapacitySABIP, Epsilon: 1.0 / 32.0, Swap: true, Seed: seed,
	}
}

// NewAVGCC builds the published AVGCC: ASCC plus dynamic granularity
// starting from one counter per cache, re-evaluated every 100 000 accesses.
func NewAVGCC(caches, sets, assoc int, seed uint64) *ASCC {
	cfg := ASCCConfig{
		Caches: caches, Sets: sets, Assoc: assoc,
		Granularity:  log2int(sets),
		Dynamic:      true,
		ResizePeriod: 100000,
		Capacity:     CapacitySABIP, Epsilon: 1.0 / 32.0, Swap: true, Seed: seed,
	}
	return NewASCCVariant("AVGCC", cfg)
}

// NewAVGCCLimited builds the §7 storage-reduction AVGCC with at most
// maxCounters counters per cache.
func NewAVGCCLimited(caches, sets, assoc, maxCounters int, seed uint64) *ASCC {
	cfg := ASCCConfig{
		Caches: caches, Sets: sets, Assoc: assoc,
		Granularity:  log2int(sets),
		Dynamic:      true,
		ResizePeriod: 100000,
		MaxCounters:  maxCounters,
		Capacity:     CapacitySABIP, Epsilon: 1.0 / 32.0, Swap: true, Seed: seed,
	}
	return NewASCCVariant(fmt.Sprintf("AVGCC-max%d", maxCounters), cfg)
}

// NewQoSAVGCC builds the §8 Quality-of-Service-aware AVGCC.
func NewQoSAVGCC(caches, sets, assoc int, seed uint64) *ASCC {
	cfg := ASCCConfig{
		Caches: caches, Sets: sets, Assoc: assoc,
		Granularity:  log2int(sets),
		Dynamic:      true,
		ResizePeriod: 100000,
		Capacity:     CapacitySABIP, Epsilon: 1.0 / 32.0, Swap: true, QoS: true, Seed: seed,
	}
	return NewASCCVariant("QoS-AVGCC", cfg)
}

// NewASCCGranular builds the fixed-granularity ASCC of Table 1 with
// counters = Sets >> g (ASCC1024, ASCC256, ..., ASCC1 for g = log2(Sets)).
func NewASCCGranular(caches, sets, assoc, g int, seed uint64) *ASCC {
	cfg := ASCCConfig{
		Caches: caches, Sets: sets, Assoc: assoc,
		Granularity: g,
		Capacity:    CapacitySABIP, Epsilon: 1.0 / 32.0, Swap: true, Seed: seed,
	}
	return NewASCCVariant(fmt.Sprintf("ASCC%d", sets>>g), cfg)
}

// NewLRS builds the Local Random Spilling ablation of Fig. 4: per-set
// counters, random receiver among SSL<K candidates, no insertion change.
func NewLRS(caches, sets, assoc int, seed uint64) *ASCC {
	return NewASCCVariant("LRS", ASCCConfig{
		Caches: caches, Sets: sets, Assoc: assoc,
		RandomReceiver: true, Capacity: CapacityNone, Swap: true, Seed: seed,
	})
}

// NewLMS builds Local Minimum Spilling: per-set counters, minimum-SSL
// receiver, no insertion change.
func NewLMS(caches, sets, assoc int, seed uint64) *ASCC {
	return NewASCCVariant("LMS", ASCCConfig{
		Caches: caches, Sets: sets, Assoc: assoc,
		Capacity: CapacityNone, Swap: true, Seed: seed,
	})
}

// NewGMS builds Global Minimum Spilling: a single counter per cache.
func NewGMS(caches, sets, assoc int, seed uint64) *ASCC {
	return NewASCCVariant("GMS", ASCCConfig{
		Caches: caches, Sets: sets, Assoc: assoc,
		Granularity: log2int(sets),
		Capacity:    CapacityNone, Swap: true, Seed: seed,
	})
}

// NewLMSBIP builds LMS+BIP (Fig. 4): LMS with plain-BIP capacity response.
func NewLMSBIP(caches, sets, assoc int, seed uint64) *ASCC {
	return NewASCCVariant("LMS+BIP", ASCCConfig{
		Caches: caches, Sets: sets, Assoc: assoc,
		Capacity: CapacityBIP, Epsilon: 1.0 / 32.0, Swap: true, Seed: seed,
	})
}

// NewGMSSABIP builds GMS+SABIP (Fig. 4): one counter per cache with the
// SABIP capacity response.
func NewGMSSABIP(caches, sets, assoc int, seed uint64) *ASCC {
	return NewASCCVariant("GMS+SABIP", ASCCConfig{
		Caches: caches, Sets: sets, Assoc: assoc,
		Granularity: log2int(sets),
		Capacity:    CapacitySABIP, Epsilon: 1.0 / 32.0, Swap: true, Seed: seed,
	})
}

// NewASCC2S builds the two-state ablation of Fig. 5 (no neutral state).
func NewASCC2S(caches, sets, assoc int, seed uint64) *ASCC {
	return NewASCCVariant("ASCC-2S", ASCCConfig{
		Caches: caches, Sets: sets, Assoc: assoc,
		TwoState: true, Capacity: CapacitySABIP, Epsilon: 1.0 / 32.0, Swap: true, Seed: seed,
	})
}

// NewASCCVariant builds an arbitrary point of the design space under the
// given display name.
func NewASCCVariant(name string, cfg ASCCConfig) *ASCC {
	if cfg.Caches <= 0 || cfg.Sets <= 0 || cfg.Assoc <= 0 {
		panic(fmt.Sprintf("policies: bad ASCC geometry %+v", cfg))
	}
	if cfg.ResizePeriod == 0 {
		cfg.ResizePeriod = 100000
	}
	if cfg.EWMA && (cfg.Dynamic || cfg.QoS) {
		panic("policies: EWMA metric does not support dynamic granularity or QoS")
	}
	p := &ASCC{
		cfg:   cfg,
		name:  name,
		banks: make([]*ssl.Bank, cfg.Caches),
		r:     rng.New(rng.Mix64(cfg.Seed ^ 0xa5cc)),
		cand:  make([]int, 0, cfg.Caches),
	}
	sslMax := cfg.SSLMax
	if sslMax == 0 {
		sslMax = 2*cfg.Assoc - 1
	}
	for i := range p.banks {
		b := ssl.NewBankMax(cfg.Sets, cfg.Assoc, sslMax)
		if cfg.MaxCounters > 0 {
			b.LimitCounters(cfg.MaxCounters)
		}
		if cfg.Granularity > 0 {
			b.SetGranularity(cfg.Granularity)
		}
		p.banks[i] = b
	}
	if cfg.EWMA {
		p.ewma = make([]*ssl.EWMABank, cfg.Caches)
		for i := range p.ewma {
			e := ssl.NewEWMABank(cfg.Sets)
			if cfg.Granularity > 0 {
				e.SetGranularity(cfg.Granularity)
			}
			p.ewma[i] = e
		}
	}
	if cfg.QoS {
		p.missesWith = make([]uint64, cfg.Caches)
		p.sampledMisses = make([]uint64, cfg.Caches)
		p.sampledCount = make([]int, cfg.Caches)
		p.sampledSeen = make([][]bool, cfg.Caches)
		for i := range p.sampledSeen {
			p.sampledSeen[i] = make([]bool, cfg.Sets)
		}
	}
	return p
}

func log2int(n int) int {
	d := 0
	for n > 1 {
		n >>= 1
		d++
	}
	return d
}

// Name implements coop.Policy.
func (p *ASCC) Name() string { return p.name }

// Bank exposes cache c's counter bank (tests, harness introspection).
func (p *ASCC) Bank(c int) *ssl.Bank { return p.banks[c] }

// OnL2Access implements coop.Policy: train the SSL, revert a BIP-mode set
// to MRU insertion once its saturation falls below K, and feed the QoS
// estimators.
func (p *ASCC) OnL2Access(c, set int, hit bool) {
	if p.ewma != nil {
		p.ewma[c].Observe(set, hit)
		b := p.banks[c] // still holds the per-set insertion-policy bits
		if p.cfg.Capacity != CapacityNone && b.BIPMode(set) && p.ewma[c].Role(set) == ssl.Receiver {
			b.SetBIPMode(set, false)
		}
		return
	}
	b := p.banks[c]
	if p.cfg.QoS && !hit {
		p.missesWith[c]++
		// The baseline-miss estimator samples sets that insert at MRU and
		// cannot receive (SSL > K-1): those behave like the baseline.
		if !b.BIPMode(set) && b.Value(set) > p.cfg.Assoc-1 {
			p.sampledMisses[c]++
			if !p.sampledSeen[c][set] {
				p.sampledSeen[c][set] = true
				p.sampledCount[c]++
			}
		}
	}
	if hit {
		b.OnHit(set)
	} else {
		b.OnMiss(set)
	}
	if p.cfg.Capacity != CapacityNone && b.BIPMode(set) && b.Value(set) < p.cfg.Assoc {
		// Capacity pressure has disappeared: back to MRU insertion (§3.2).
		b.SetBIPMode(set, false)
	}
}

// Role implements coop.Policy.
func (p *ASCC) Role(c, set int) ssl.Role {
	if p.ewma != nil {
		return p.ewma[c].Role(set)
	}
	if p.cfg.TwoState {
		return p.banks[c].RoleTwoState(set)
	}
	return p.banks[c].Role(set)
}

// value returns the receiver-ordering key for (c, set) under the active
// metric.
func (p *ASCC) value(c, set int) int {
	if p.ewma != nil {
		return p.ewma[c].Value(set, p.cfg.Assoc)
	}
	return p.banks[c].Value(set)
}

// Receivers implements coop.Policy: the peer caches whose same-index set
// has SSL < K, ordered by ascending SSL (the paper prefers the lowest
// value; ties are broken randomly by a random rotation before the stable
// sort). Under the LRS ablation the order is random instead.
func (p *ASCC) Receivers(c, set int) []int {
	p.cand = p.cand[:0]
	for r := 0; r < p.cfg.Caches; r++ {
		if r != c && p.Role(r, set) == ssl.Receiver {
			p.cand = append(p.cand, r)
		}
	}
	if len(p.cand) < 2 {
		return p.cand
	}
	// Random rotation breaks ties fairly without allocations.
	if rot := p.r.Intn(len(p.cand)); rot > 0 {
		rotateInts(p.cand, rot)
	}
	if !p.cfg.RandomReceiver {
		// Stable insertion sort by SSL keeps the rotated order among ties.
		for i := 1; i < len(p.cand); i++ {
			for j := i; j > 0 && p.value(p.cand[j], set) < p.value(p.cand[j-1], set); j-- {
				p.cand[j], p.cand[j-1] = p.cand[j-1], p.cand[j]
			}
		}
	}
	return p.cand
}

// rotateInts rotates s left by k positions (k in [0, len(s))).
func rotateInts(s []int, k int) {
	reverseInts(s[:k])
	reverseInts(s[k:])
	reverseInts(s)
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// OnSpillFail implements coop.Policy: a spiller set with no receiver
// indicates a global capacity problem, so the set switches to BIP/SABIP.
func (p *ASCC) OnSpillFail(c, set int) {
	if p.cfg.Capacity != CapacityNone {
		p.banks[c].SetBIPMode(set, true)
	}
}

// InsertPos implements coop.Policy: MRU normally; in capacity (BIP) mode,
// insert at MRU with probability epsilon, else at LRU (BIP) or LRU-1
// (SABIP).
func (p *ASCC) InsertPos(c, set int) cachesim.InsertPos {
	if p.cfg.Capacity == CapacityNone || !p.banks[c].BIPMode(set) {
		return cachesim.InsertMRU
	}
	if p.r.Bernoulli(p.cfg.Epsilon) {
		return cachesim.InsertMRU
	}
	if p.cfg.Capacity == CapacityBIP {
		return cachesim.InsertLRU
	}
	return cachesim.InsertLRU1
}

// SpillInsertPos implements coop.Policy: guests are inserted at the
// position selected by cfg.SpillPlacement (see SpillByReuse for the
// default's rationale).
func (p *ASCC) SpillInsertPos(c, set int, guestReused bool) cachesim.InsertPos {
	switch p.cfg.SpillPlacement {
	case SpillMRU:
		return cachesim.InsertMRU
	case SpillLRU:
		return cachesim.InsertLRU
	case SpillLRU1:
		return cachesim.InsertLRU1
	default:
		if guestReused {
			return cachesim.InsertMRU
		}
		return cachesim.InsertLRU1
	}
}

// AllowRespill implements coop.Policy: the SSL conditions (spill only from
// saturated sets into low-SSL sets) already prevent inactive lines from
// bouncing, so re-spills are allowed as in the paper.
func (p *ASCC) AllowRespill() bool { return true }

// SpillRequiresReuse implements coop.Policy (see ASCCConfig.SpillAnyVictim).
func (p *ASCC) SpillRequiresReuse() bool { return !p.cfg.SpillAnyVictim }

// SwapEnabled implements coop.Policy.
func (p *ASCC) SwapEnabled() bool { return p.cfg.Swap }

// DemandVictimAllow implements coop.Policy.
func (p *ASCC) DemandVictimAllow(c, set int) func(int) bool { return nil }

// GuestVictim implements coop.Policy: guests may only displace dead lines
// (the line-level reading of the paper's "sets with underutilised lines").
func (p *ASCC) GuestVictim() coop.GuestVictimMode { return coop.GuestDeadLines }

// SpillVictimAllow implements coop.Policy.
func (p *ASCC) SpillVictimAllow(c, set int) func(int) bool { return nil }

// Tick implements coop.Policy: every ResizePeriod accesses the AVGCC
// granularity is re-evaluated and, for the QoS variant, the QoSRatio is
// recomputed (§4.1, §8). Static non-QoS variants have no periodic work, so
// they skip the division entirely.
func (p *ASCC) Tick(c int, accesses uint64) {
	if !p.cfg.Dynamic && !p.cfg.QoS {
		return
	}
	if accesses%p.cfg.ResizePeriod != 0 {
		return
	}
	if p.cfg.Dynamic {
		p.banks[c].Resize()
	}
	if p.cfg.QoS {
		p.recomputeQoS(c)
	}
}

// OnL2AccessBatch implements coop.AccessBatcher: identical to the
// per-event OnL2Access+Tick loop, with the periodic-tick boundary check
// hoisted to one precomputed access number per period instead of a modulo
// per event, and — for the counter-only variants (no EWMA, no QoS) — the
// bank and configuration loads hoisted out of the loop so the per-event
// body reduces to inlined saturating-counter arithmetic. The specialised
// loops are pinned against the per-event path by
// TestASCCOnL2AccessBatchMatchesLoop.
func (p *ASCC) OnL2AccessBatch(c int, events []uint32, tickBase uint64) {
	if p.ewma != nil || p.cfg.QoS {
		// EWMA role tracking and the QoS miss estimator carry per-access
		// state beyond the bank counters: take the generic path.
		var next uint64
		if p.cfg.Dynamic || p.cfg.QoS {
			next = (tickBase/p.cfg.ResizePeriod + 1) * p.cfg.ResizePeriod
		}
		for i, e := range events {
			p.OnL2Access(c, int(e>>1), e&1 == 1)
			if next != 0 && tickBase+uint64(i)+1 == next {
				if p.cfg.Dynamic {
					p.banks[c].Resize()
				}
				if p.cfg.QoS {
					p.recomputeQoS(c)
				}
				next += p.cfg.ResizePeriod
			}
		}
		return
	}
	b := p.banks[c]
	capac := p.cfg.Capacity != CapacityNone
	assoc := p.cfg.Assoc
	if !p.cfg.Dynamic {
		// Static granularity: Tick is a no-op, no boundary to track.
		for _, e := range events {
			set := int(e >> 1)
			if e&1 == 1 {
				b.OnHit(set)
			} else {
				b.OnMiss(set)
			}
			if capac && b.BIPMode(set) && b.Value(set) < assoc {
				b.SetBIPMode(set, false)
			}
		}
		return
	}
	next := (tickBase/p.cfg.ResizePeriod + 1) * p.cfg.ResizePeriod
	for i, e := range events {
		set := int(e >> 1)
		if e&1 == 1 {
			b.OnHit(set)
		} else {
			b.OnMiss(set)
		}
		if capac && b.BIPMode(set) && b.Value(set) < assoc {
			b.SetBIPMode(set, false)
		}
		if tickBase+uint64(i)+1 == next {
			b.Resize()
			next += p.cfg.ResizePeriod
		}
	}
}

// recomputeQoS implements Equations (1) and (2): estimate the baseline
// cache's misses from the sampled sets, derive QoSRatio in 1.3 fixed point,
// and reset the period state.
func (p *ASCC) recomputeQoS(c int) {
	ratio := 1.0
	var mbc float64
	if p.sampledCount[c] > 0 {
		// Only inhibit on actual evidence that the baseline would miss
		// less. With no sampled sets the baseline miss count is unknown and
		// the mechanism must not self-inhibit: a zero ratio would freeze
		// every SSL below K, which keeps any set from ever qualifying for
		// sampling again (a deadlock).
		mbc = float64(p.cfg.Sets) * float64(p.sampledMisses[c]) / float64(p.sampledCount[c])
		if m := float64(p.missesWith[c]); m > mbc {
			ratio = mbc / m
		}
	}
	p.banks[c].SetMissIncrement(int(ratio*float64(ssl.One) + 0.5))
	if p.qosTrace != nil {
		p.qosTrace(c, mbc, float64(p.missesWith[c]), ratio)
	}
	p.missesWith[c] = 0
	p.sampledMisses[c] = 0
	p.sampledCount[c] = 0
	for i := range p.sampledSeen[c] {
		p.sampledSeen[c][i] = false
	}
}
