package policies

import (
	"testing"

	"ascc/internal/cachesim"
	"ascc/internal/ssl"
)

func TestDSRMonitorAssignment(t *testing.T) {
	p := NewDSR(2, 512, 8, 1)
	if p.Name() != "DSR" {
		t.Fatalf("name %q", p.Name())
	}
	// stride = 512/32 = 16: set 0 spill monitor, set 1 receive monitor.
	if p.Role(0, 0) != ssl.Spiller {
		t.Fatal("set 0 should always spill")
	}
	if p.Role(0, 1) != ssl.Receiver {
		t.Fatal("set 1 should always receive")
	}
	if p.Role(0, 16) != ssl.Spiller || p.Role(0, 17) != ssl.Receiver {
		t.Fatal("monitor stride wrong")
	}
}

func TestDSRPSELSteering(t *testing.T) {
	p := NewDSR(2, 512, 8, 1)
	mid := p.PSEL(0)
	// Misses in receive-monitor sets (set 1) raise PSEL: being a receiver
	// hurts, so followers become spillers.
	for i := 0; i < 100; i++ {
		p.OnL2Access(0, 1, false)
	}
	if p.PSEL(0) <= mid {
		t.Fatal("receive-monitor misses did not raise PSEL")
	}
	if p.Role(0, 5) != ssl.Spiller {
		t.Fatalf("followers not spilling, role=%v", p.Role(0, 5))
	}
	// Misses in spill-monitor sets (set 0) lower it back.
	for i := 0; i < 600; i++ {
		p.OnL2Access(0, 0, false)
	}
	if p.Role(0, 5) != ssl.Receiver {
		t.Fatalf("followers not receiving, role=%v psel=%d", p.Role(0, 5), p.PSEL(0))
	}
	// Hits never move the selector.
	v := p.PSEL(0)
	p.OnL2Access(0, 0, true)
	p.OnL2Access(0, 1, true)
	if p.PSEL(0) != v {
		t.Fatal("hits moved PSEL")
	}
}

func TestDSRChooseReceiver(t *testing.T) {
	p := NewDSR(3, 512, 8, 1)
	// Make cache 1 a spiller, cache 2 a receiver (followers).
	for i := 0; i < 600; i++ {
		p.OnL2Access(1, 1, false) // receiver sets miss -> spiller
		p.OnL2Access(2, 0, false) // spiller sets miss -> receiver
	}
	// From cache 0, a follower set (e.g. 5): only cache 2 receives.
	if rs := p.Receivers(0, 5); len(rs) != 1 || rs[0] != 2 {
		t.Fatalf("receivers = %v, want [2]", rs)
	}
	// For a receive-monitor set index (1), both peers' sets receive, and
	// the random rotation explores both orders.
	first := map[int]bool{}
	for i := 0; i < 100; i++ {
		rs := p.Receivers(0, 1)
		if len(rs) != 2 {
			t.Fatalf("receivers = %v, want both peers", rs)
		}
		first[rs[0]] = true
	}
	if !first[1] || !first[2] {
		t.Fatalf("rotation never varied the order: %v", first)
	}
}

func TestDSR3SNeutralBand(t *testing.T) {
	p := NewDSR3S(2, 512, 8, 1)
	if p.Name() != "DSR-3S" {
		t.Fatalf("name %q", p.Name())
	}
	// PSEL starts mid-range: MSBs = 10 -> neutral.
	if p.Role(0, 5) != ssl.Neutral {
		t.Fatalf("mid PSEL role %v, want neutral", p.Role(0, 5))
	}
	// Drive to the top: spiller.
	for i := 0; i < 600; i++ {
		p.OnL2Access(0, 1, false)
	}
	if p.Role(0, 5) != ssl.Spiller {
		t.Fatalf("top PSEL role %v, want spiller", p.Role(0, 5))
	}
	// Drive to the bottom: receiver.
	for i := 0; i < 1200; i++ {
		p.OnL2Access(0, 0, false)
	}
	if p.Role(0, 5) != ssl.Receiver {
		t.Fatalf("bottom PSEL role %v, want receiver", p.Role(0, 5))
	}
}

func TestDSRDIPInsertion(t *testing.T) {
	p := NewDSRDIP(2, 512, 8, 1)
	if p.Name() != "DSR+DIP" {
		t.Fatalf("name %q", p.Name())
	}
	// Monitor sets: set 2 always MRU, set 3 always BIP.
	if p.InsertPos(0, 2) != cachesim.InsertMRU {
		t.Fatal("MRU monitor not MRU")
	}
	bipLRU := 0
	for i := 0; i < 100; i++ {
		if p.InsertPos(0, 3) == cachesim.InsertLRU {
			bipLRU++
		}
	}
	if bipLRU < 90 {
		t.Fatalf("BIP monitor LRU fraction %d/100", bipLRU)
	}
	// Followers default to MRU (selector mid => not > half).
	if p.InsertPos(0, 5) != cachesim.InsertMRU {
		t.Fatal("follower not MRU at start")
	}
	// Misses in the MRU monitor push followers to BIP.
	for i := 0; i < 600; i++ {
		p.OnL2Access(0, 2, false)
	}
	lru := 0
	for i := 0; i < 100; i++ {
		if p.InsertPos(0, 5) == cachesim.InsertLRU {
			lru++
		}
	}
	if lru < 90 {
		t.Fatalf("followers not switched to BIP: %d/100 LRU", lru)
	}
	// Plain DSR never changes insertion.
	plain := NewDSR(2, 512, 8, 1)
	for i := 0; i < 600; i++ {
		plain.OnL2Access(0, 2, false)
	}
	if plain.InsertPos(0, 5) != cachesim.InsertMRU {
		t.Fatal("plain DSR changed insertion")
	}
}

func TestDSRNoSwapNoRespill(t *testing.T) {
	p := NewDSR(2, 512, 8, 1)
	if p.SwapEnabled() || p.AllowRespill() {
		t.Fatal("DSR has ASCC features enabled")
	}
	if p.SpillInsertPos(0, 0, false) != cachesim.InsertMRU {
		t.Fatal("spill insert not MRU")
	}
	if p.DemandVictimAllow(0, 0) != nil || p.SpillVictimAllow(0, 0) != nil {
		t.Fatal("DSR restricts victims")
	}
}

func TestDSRTinyCacheStride(t *testing.T) {
	// Tiny caches (tests) still get distinct monitor classes.
	p := NewDSR(2, 16, 4, 1)
	if p.Role(0, 0) != ssl.Spiller || p.Role(0, 1) != ssl.Receiver {
		t.Fatal("tiny-cache monitors wrong")
	}
}
