package policies

import (
	"ascc/internal/cachesim"
	"ascc/internal/coop"
	"ascc/internal/rng"
	"ascc/internal/ssl"
)

// DSRConfig parameterises Dynamic Spill-Receive (Qureshi, HPCA'09) as the
// paper evaluates it: 32 sets per Set Dueling Monitor, one SDM per policy,
// a 10-bit PSEL per cache, plus the DSR-3S ablation (Fig. 5) and the
// DSR+DIP combination (§6).
type DSRConfig struct {
	Caches int
	Sets   int
	Assoc  int

	// SDMSets is the number of sampling sets per monitor (paper: 32).
	SDMSets int
	// PSELBits sizes the per-cache selector counter (10 bits).
	PSELBits int
	// ThreeState uses the two PSEL MSBs to add a neutral state (DSR-3S).
	ThreeState bool
	// DIP adds per-cache LRU/BIP insertion dueling (DSR+DIP).
	DIP bool
	// Epsilon is BIP's MRU-insertion probability (1/32).
	Epsilon float64

	Seed uint64
}

// DSR implements Dynamic Spill-Receive and its variants.
//
// Monitor layout: with stride = Sets/SDMSets, sets ≡ 0 (mod stride) always
// act as spillers, sets ≡ 1 always act as receivers; under DIP, sets ≡ 2
// always insert at MRU and sets ≡ 3 always use BIP. All other sets follow
// the per-cache PSEL decisions.
type DSR struct {
	cfg     DSRConfig
	stride  int
	psel    []int // spill/receive selector, one per cache
	pselMax int
	dipsel  []int // insertion selector, one per cache (DIP only)
	r       *rng.Xoshiro256
	cand    []int
}

// NewDSR builds the paper's DSR configuration (32 sets per SDM, one SDM
// per policy). The PSEL is 8 bits rather than the traditional 10 so its
// learning time constant matches the scaled run lengths (DESIGN.md §5).
func NewDSR(caches, sets, assoc int, seed uint64) *DSR {
	return NewDSRVariant(DSRConfig{
		Caches: caches, Sets: sets, Assoc: assoc,
		SDMSets: 32, PSELBits: 8, Epsilon: 1.0 / 32.0, Seed: seed,
	})
}

// NewDSRDIP builds DSR+DIP (§6): DSR with per-cache DIP insertion dueling.
func NewDSRDIP(caches, sets, assoc int, seed uint64) *DSR {
	return NewDSRVariant(DSRConfig{
		Caches: caches, Sets: sets, Assoc: assoc,
		SDMSets: 32, PSELBits: 8, DIP: true, Epsilon: 1.0 / 32.0, Seed: seed,
	})
}

// NewDSR3S builds the DSR-3S ablation of Fig. 5: the two PSEL MSBs select
// spiller (11), receiver (00) or neutral (01/10). The selector is 6 bits:
// reaching the outer quartiles needs a net drift of a quarter of the range,
// so the band thresholds must be reachable within scaled run lengths
// (DESIGN.md §5).
func NewDSR3S(caches, sets, assoc int, seed uint64) *DSR {
	return NewDSRVariant(DSRConfig{
		Caches: caches, Sets: sets, Assoc: assoc,
		SDMSets: 32, PSELBits: 6, ThreeState: true, Epsilon: 1.0 / 32.0, Seed: seed,
	})
}

// NewDSRVariant builds an arbitrary DSR configuration.
func NewDSRVariant(cfg DSRConfig) *DSR {
	if cfg.SDMSets <= 0 {
		cfg.SDMSets = 32
	}
	if cfg.PSELBits <= 0 {
		cfg.PSELBits = 10
	}
	stride := cfg.Sets / cfg.SDMSets
	if stride < 4 {
		stride = 4 // keep the four monitor classes distinct in tiny caches
	}
	p := &DSR{
		cfg:     cfg,
		stride:  stride,
		psel:    make([]int, cfg.Caches),
		pselMax: 1<<cfg.PSELBits - 1,
		dipsel:  make([]int, cfg.Caches),
		r:       rng.New(rng.Mix64(cfg.Seed ^ 0xd52)),
		cand:    make([]int, 0, cfg.Caches),
	}
	for i := range p.psel {
		// Start exactly at the comparison threshold so followers begin in
		// the passive state (receive, MRU insertion) until evidence arrives.
		p.psel[i] = p.pselMax / 2
		p.dipsel[i] = p.pselMax / 2
	}
	return p
}

// Name implements coop.Policy.
func (p *DSR) Name() string {
	switch {
	case p.cfg.ThreeState:
		return "DSR-3S"
	case p.cfg.DIP:
		return "DSR+DIP"
	default:
		return "DSR"
	}
}

// monitor classes for a set.
const (
	monFollower = iota
	monSpill
	monReceive
	monMRU
	monBIP
)

func (p *DSR) monitorClass(set int) int {
	switch set % p.stride {
	case 0:
		return monSpill
	case 1:
		return monReceive
	case 2:
		if p.cfg.DIP {
			return monMRU
		}
	case 3:
		if p.cfg.DIP {
			return monBIP
		}
	}
	return monFollower
}

// OnL2Access implements coop.Policy: misses in the monitor sets steer the
// per-cache selectors. A miss in an always-spill set is evidence the
// spiller behaviour works poorly locally relative to the always-receive
// sets, and vice versa; the follower sets adopt whichever monitor misses
// less. DIP's insertion selector works the same way over its own monitors.
func (p *DSR) OnL2Access(c, set int, hit bool) {
	if hit {
		return
	}
	switch p.monitorClass(set) {
	case monSpill:
		if p.psel[c] > 0 {
			p.psel[c]--
		}
	case monReceive:
		if p.psel[c] < p.pselMax {
			p.psel[c]++
		}
	case monMRU:
		if p.dipsel[c] < p.pselMax {
			p.dipsel[c]++
		}
	case monBIP:
		if p.dipsel[c] > 0 {
			p.dipsel[c]--
		}
	}
}

// cacheRole is the whole-cache follower decision.
func (p *DSR) cacheRole(c int) ssl.Role {
	if p.cfg.ThreeState {
		// Two MSBs: 11 spiller, 00 receiver, else neutral.
		msbs := p.psel[c] >> (p.cfg.PSELBits - 2)
		switch msbs {
		case 3:
			return ssl.Spiller
		case 0:
			return ssl.Receiver
		default:
			return ssl.Neutral
		}
	}
	// Receiver sets missing more than spiller sets => PSEL high => being a
	// receiver hurts: act as a spiller.
	if p.psel[c] > p.pselMax/2 {
		return ssl.Spiller
	}
	return ssl.Receiver
}

// Role implements coop.Policy: monitor sets have fixed roles; followers use
// the per-cache PSEL decision.
func (p *DSR) Role(c, set int) ssl.Role {
	switch p.monitorClass(set) {
	case monSpill:
		return ssl.Spiller
	case monReceive:
		return ssl.Receiver
	}
	return p.cacheRole(c)
}

// Receivers implements coop.Policy: the caches whose same-index set
// currently receives, in random order.
func (p *DSR) Receivers(c, set int) []int {
	p.cand = p.cand[:0]
	for r := 0; r < p.cfg.Caches; r++ {
		if r != c && p.Role(r, set) == ssl.Receiver {
			p.cand = append(p.cand, r)
		}
	}
	if len(p.cand) > 1 {
		if rot := p.r.Intn(len(p.cand)); rot > 0 {
			rotateInts(p.cand, rot)
		}
	}
	return p.cand
}

// OnSpillFail implements coop.Policy (DSR has no capacity response).
func (p *DSR) OnSpillFail(c, set int) {}

// InsertPos implements coop.Policy: MRU unless DIP selects BIP for this
// cache (or the set is a BIP monitor).
func (p *DSR) InsertPos(c, set int) cachesim.InsertPos {
	if !p.cfg.DIP {
		return cachesim.InsertMRU
	}
	bip := false
	switch p.monitorClass(set) {
	case monMRU:
		bip = false
	case monBIP:
		bip = true
	default:
		// MRU monitor missing more => dipsel high => use BIP.
		bip = p.dipsel[c] > p.pselMax/2
	}
	if !bip {
		return cachesim.InsertMRU
	}
	if p.r.Bernoulli(p.cfg.Epsilon) {
		return cachesim.InsertMRU
	}
	return cachesim.InsertLRU
}

// SpillInsertPos implements coop.Policy.
func (p *DSR) SpillInsertPos(c, set int, guestReused bool) cachesim.InsertPos {
	return cachesim.InsertMRU
}

// AllowRespill implements coop.Policy: under DSR a receiver cache never
// spills while roles are stable; forbidding re-spills prevents circulation
// during role flips.
func (p *DSR) AllowRespill() bool { return false }

// SwapEnabled implements coop.Policy: the §3.2 swap is an ASCC feature.
func (p *DSR) SwapEnabled() bool { return false }

// SpillRequiresReuse implements coop.Policy: DSR spills any last copy.
func (p *DSR) SpillRequiresReuse() bool { return false }

// DemandVictimAllow implements coop.Policy.
func (p *DSR) DemandVictimAllow(c, set int) func(int) bool { return nil }

// SpillVictimAllow implements coop.Policy.
func (p *DSR) SpillVictimAllow(c, set int) func(int) bool { return nil }

// GuestVictim implements coop.Policy: DSR receivers evict their plain LRU.
func (p *DSR) GuestVictim() coop.GuestVictimMode { return coop.GuestAnyLRU }

// Tick implements coop.Policy.
func (p *DSR) Tick(c int, accesses uint64) {}

// PSEL exposes the spill/receive selector of cache c (tests).
func (p *DSR) PSEL(c int) int { return p.psel[c] }

// DIPSel exposes the insertion selector of cache c (tests).
func (p *DSR) DIPSel(c int) int { return p.dipsel[c] }
