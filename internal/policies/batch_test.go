package policies

import (
	"testing"

	"ascc/internal/rng"
)

// TestASCCOnL2AccessBatchMatchesLoop pins the coop.AccessBatcher contract:
// delivering a run of events through OnL2AccessBatch must leave the policy
// in exactly the state the per-event OnL2Access+Tick loop produces — across
// resize boundaries, QoS recomputations, and BIP-mode reverts.
func TestASCCOnL2AccessBatchMatchesLoop(t *testing.T) {
	const sets, assoc = 16, 4
	variants := map[string]func() *ASCC{
		"ASCC": func() *ASCC { return NewASCC(2, sets, assoc, 1) },
		"AVGCC": func() *ASCC {
			cfg := AVGCCDefaultConfig(2, sets, assoc, 1)
			cfg.ResizePeriod = 37 // prime: boundaries land mid-batch
			return NewASCCVariant("AVGCC", cfg)
		},
		"QoS-AVGCC": func() *ASCC {
			cfg := AVGCCDefaultConfig(2, sets, assoc, 1)
			cfg.ResizePeriod = 37
			cfg.QoS = true
			return NewASCCVariant("QoS-AVGCC", cfg)
		},
	}
	for name, mk := range variants {
		t.Run(name, func(t *testing.T) {
			batched, looped := mk(), mk()
			r := rng.New(99)
			var tick uint64
			for round := 0; round < 40; round++ {
				c := int(r.Intn(2))
				n := 1 + int(r.Intn(25))
				events := make([]uint32, n)
				for i := range events {
					set := uint32(r.Intn(sets))
					hit := uint32(r.Intn(3) % 2) // hit-biased, misses included
					events[i] = set<<1 | hit
				}
				batched.OnL2AccessBatch(c, events, tick)
				for i, e := range events {
					looped.OnL2Access(c, int(e>>1), e&1 == 1)
					looped.Tick(c, tick+uint64(i)+1)
				}
				tick += uint64(n)
				for cc := 0; cc < 2; cc++ {
					ba, la := batched.Bank(cc), looped.Bank(cc)
					if ba.D() != la.D() {
						t.Fatalf("round %d cache %d: D %d != %d", round, cc, ba.D(), la.D())
					}
					if ba.A() != la.A() || ba.B() != la.B() {
						t.Fatalf("round %d cache %d: A/B (%d,%d) != (%d,%d)",
							round, cc, ba.A(), ba.B(), la.A(), la.B())
					}
					if ba.MissIncrement() != la.MissIncrement() {
						t.Fatalf("round %d cache %d: miss increment %d != %d",
							round, cc, ba.MissIncrement(), la.MissIncrement())
					}
					for s := 0; s < sets; s++ {
						if ba.Value(s) != la.Value(s) || ba.BIPMode(s) != la.BIPMode(s) ||
							batched.Role(cc, s) != looped.Role(cc, s) {
							t.Fatalf("round %d cache %d set %d: state diverges", round, cc, s)
						}
					}
				}
			}
		})
	}
}

// TestBaselineOnL2AccessBatchIsNoop pins the baseline's trivial batch
// handler against its (empty) per-event loop.
func TestBaselineOnL2AccessBatchIsNoop(t *testing.T) {
	p := NewBaseline()
	p.OnL2AccessBatch(0, []uint32{0<<1 | 1, 3<<1 | 0, 7<<1 | 1}, 41)
	// Nothing observable to compare — the point is that the method exists,
	// satisfies coop.AccessBatcher, and does not panic on arbitrary input.
	if p.Name() != "baseline" {
		t.Fatal("baseline changed identity")
	}
}
