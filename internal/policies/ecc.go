package policies

import (
	"ascc/internal/cachesim"
	"ascc/internal/coop"
	"ascc/internal/rng"
	"ascc/internal/ssl"
)

// ECC is Elastic Cooperative Caching (Herrero, González, Canal — ISCA'10)
// as the paper implements it for comparison (§6): each private LLC is split
// into a private region (local demand fills) and a shared region (guests
// spilled by peers); the split is re-evaluated periodically from the
// cache's recent miss rate, and evictions from the private region are
// spilled — via a Spill Allocator — to the peer currently offering the most
// shared space.
//
// Simplifications relative to the original (documented in DESIGN.md): the
// repartitioning signal is the epoch miss rate with hysteresis thresholds
// rather than the original's per-region reuse counters, and the shared
// state of lines is tracked exactly (per the paper: "we have implemented it
// without the distributed structures they propose, tracking the shared
// state of the lines with an additional bit per block", which is what the
// Spilled flag provides).
type ECC struct {
	caches int
	sets   int
	assoc  int

	priv []int // private ways per cache, in [1, assoc-1]

	// Epoch counters per cache.
	accesses []uint64
	misses   []uint64

	period  uint64
	hiMiss  float64 // grow the private region above this epoch miss rate
	loMiss  float64 // shrink it below this
	r       *rng.Xoshiro256
	cand    []int
	allowFn [][]func(int) bool // memoised per cache: [0] demand, [1] spill
}

// NewECC builds the ECC comparison policy. The repartition period and
// thresholds follow the defaults discussed in DESIGN.md.
func NewECC(caches, sets, assoc int, seed uint64) *ECC {
	p := &ECC{
		caches:   caches,
		sets:     sets,
		assoc:    assoc,
		priv:     make([]int, caches),
		accesses: make([]uint64, caches),
		misses:   make([]uint64, caches),
		period:   50000,
		hiMiss:   0.05,
		loMiss:   0.02,
		r:        rng.New(rng.Mix64(seed ^ 0xecc)),
		cand:     make([]int, 0, caches),
	}
	for i := range p.priv {
		p.priv[i] = assoc / 2 // start balanced
	}
	p.allowFn = make([][]func(int) bool, caches)
	for c := 0; c < caches; c++ {
		c := c
		p.allowFn[c] = []func(int) bool{
			func(w int) bool { return w < p.priv[c] },  // demand: private region
			func(w int) bool { return w >= p.priv[c] }, // spill: shared region
		}
	}
	return p
}

// Name implements coop.Policy.
func (p *ECC) Name() string { return "ECC" }

// PrivateWays exposes the current private-region size of cache c (tests).
func (p *ECC) PrivateWays(c int) int { return p.priv[c] }

// OnL2Access implements coop.Policy.
func (p *ECC) OnL2Access(c, set int, hit bool) {
	p.accesses[c]++
	if !hit {
		p.misses[c]++
	}
}

// Role implements coop.Policy: ECC always spills private-region evictions;
// whether a spill succeeds depends on peers' shared space.
func (p *ECC) Role(c, set int) ssl.Role { return ssl.Spiller }

// Receivers implements coop.Policy: the Spill Allocator orders peers by
// descending shared-region size (ties broken by a random rotation).
func (p *ECC) Receivers(c, set int) []int {
	p.cand = p.cand[:0]
	for r := 0; r < p.caches; r++ {
		if r != c && p.assoc-p.priv[r] > 0 {
			p.cand = append(p.cand, r)
		}
	}
	if len(p.cand) > 1 {
		if rot := p.r.Intn(len(p.cand)); rot > 0 {
			rotateInts(p.cand, rot)
		}
		for i := 1; i < len(p.cand); i++ {
			for j := i; j > 0 && p.priv[p.cand[j]] < p.priv[p.cand[j-1]]; j-- {
				p.cand[j], p.cand[j-1] = p.cand[j-1], p.cand[j]
			}
		}
	}
	return p.cand
}

// OnSpillFail implements coop.Policy.
func (p *ECC) OnSpillFail(c, set int) {}

// InsertPos implements coop.Policy.
func (p *ECC) InsertPos(c, set int) cachesim.InsertPos { return cachesim.InsertMRU }

// SpillInsertPos implements coop.Policy.
func (p *ECC) SpillInsertPos(c, set int, guestReused bool) cachesim.InsertPos {
	return cachesim.InsertMRU
}

// AllowRespill implements coop.Policy: a guest evicted from a shared region
// goes to memory, as in the original design.
func (p *ECC) AllowRespill() bool { return false }

// SwapEnabled implements coop.Policy.
func (p *ECC) SwapEnabled() bool { return false }

// SpillRequiresReuse implements coop.Policy: ECC spills any private-region
// eviction.
func (p *ECC) SpillRequiresReuse() bool { return false }

// DemandVictimAllow implements coop.Policy: demand fills replace within the
// private region.
func (p *ECC) DemandVictimAllow(c, set int) func(int) bool { return p.allowFn[c][0] }

// SpillVictimAllow implements coop.Policy: guests replace within the shared
// region.
func (p *ECC) SpillVictimAllow(c, set int) func(int) bool { return p.allowFn[c][1] }

// GuestVictim implements coop.Policy: guests are confined to the shared
// region.
func (p *ECC) GuestVictim() coop.GuestVictimMode { return coop.GuestRegion }

// Tick implements coop.Policy: epoch repartitioning.
func (p *ECC) Tick(c int, accesses uint64) {
	if accesses%p.period != 0 {
		return
	}
	if p.accesses[c] > 0 {
		rate := float64(p.misses[c]) / float64(p.accesses[c])
		switch {
		case rate > p.hiMiss && p.priv[c] < p.assoc-1:
			p.priv[c]++
		case rate < p.loMiss && p.priv[c] > 1:
			p.priv[c]--
		}
	}
	p.accesses[c] = 0
	p.misses[c] = 0
}
