// Package policies implements every last-level-cache management design the
// paper evaluates, behind the coop.Policy interface:
//
//   - Baseline: plain private LRU LLCs, no cooperation (the paper's
//     reference configuration).
//   - CC: Cooperative Caching (Chang & Sohi, ISCA'06) — always spill
//     last-copy victims to a random peer, one forwarding chance.
//   - DSR: Dynamic Spill-Receive (Qureshi, HPCA'09) with set-dueling
//     monitors, its DSR+DIP combination, and the DSR-3S ablation of Fig. 5.
//   - ECC: Elastic Cooperative Caching (Herrero et al., ISCA'10),
//     simplified as described in the paper's §6.
//   - The ASCC family: the paper's contribution and all its internal
//     ablations (LRS, LMS, GMS, LMS+BIP, GMS+SABIP, ASCC-2S, fixed
//     granularities), plus AVGCC (dynamic granularity) and the QoS-aware
//     AVGCC of §8.
package policies

import (
	"ascc/internal/coop"
	"ascc/internal/rng"
	"ascc/internal/ssl"
)

// Baseline is the non-cooperative private-LLC configuration: LRU with MRU
// insertion, no spilling.
type Baseline struct {
	coop.Base
}

// NewBaseline returns the baseline policy.
func NewBaseline() *Baseline { return &Baseline{} }

// Name implements coop.Policy.
func (*Baseline) Name() string { return "baseline" }

// OnL2AccessBatch implements coop.AccessBatcher: the baseline trains no
// counters and has no periodic work, so a batch of hit events is a no-op.
// (coop.Base deliberately does not provide this — a policy that overrides
// OnL2Access or Tick must not inherit an empty batch handler.)
func (*Baseline) OnL2AccessBatch(c int, events []uint32, tickBase uint64) {}

// CC is Cooperative Caching: every last-copy victim is spilled to a
// randomly chosen peer, regardless of whether that helps (§2: "CC
// disregards whether the spilling is going to benefit the cache"), with
// one-chance forwarding (a spilled line is not re-spilled).
type CC struct {
	coop.Base
	caches int
	r      *rng.Xoshiro256
	recv   [1]int
}

// NewCC builds Cooperative Caching for the given number of private LLCs.
func NewCC(caches int, seed uint64) *CC {
	return &CC{caches: caches, r: rng.New(seed)}
}

// Name implements coop.Policy.
func (*CC) Name() string { return "CC" }

// Role implements coop.Policy: every set always spills.
func (*CC) Role(c, set int) ssl.Role { return ssl.Spiller }

// Receivers implements coop.Policy: one random peer (CC does not retry).
func (p *CC) Receivers(c, set int) []int {
	if p.caches < 2 {
		return nil
	}
	r := p.r.Intn(p.caches - 1)
	if r >= c {
		r++
	}
	p.recv[0] = r
	return p.recv[:1]
}
