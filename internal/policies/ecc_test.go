package policies

import (
	"testing"

	"ascc/internal/ssl"
)

func TestECCInitialPartition(t *testing.T) {
	p := NewECC(4, 512, 8, 1)
	if p.Name() != "ECC" {
		t.Fatalf("name %q", p.Name())
	}
	for c := 0; c < 4; c++ {
		if p.PrivateWays(c) != 4 {
			t.Fatalf("cache %d starts with %d private ways, want 4", c, p.PrivateWays(c))
		}
	}
}

func TestECCVictimRegions(t *testing.T) {
	p := NewECC(2, 512, 8, 1)
	demand := p.DemandVictimAllow(0, 0)
	spill := p.SpillVictimAllow(0, 0)
	for w := 0; w < 8; w++ {
		if demand(w) != (w < 4) {
			t.Fatalf("demand region wrong at way %d", w)
		}
		if spill(w) != (w >= 4) {
			t.Fatalf("shared region wrong at way %d", w)
		}
	}
}

func TestECCRepartitionGrowsUnderMisses(t *testing.T) {
	p := NewECC(2, 512, 8, 1)
	// Epoch of heavy missing: private region grows.
	for i := 0; i < 50000; i++ {
		p.OnL2Access(0, i%512, i%2 == 0) // 50% miss rate
	}
	p.Tick(0, 50000)
	if p.PrivateWays(0) != 5 {
		t.Fatalf("private ways %d after missy epoch, want 5", p.PrivateWays(0))
	}
	// The victim predicates must follow the new partition.
	if p.DemandVictimAllow(0, 0)(4) != true {
		t.Fatal("demand predicate did not track repartition")
	}
	// Epoch of pure hits: private region shrinks.
	for i := 0; i < 50000; i++ {
		p.OnL2Access(0, i%512, true)
	}
	p.Tick(0, 100000)
	if p.PrivateWays(0) != 4 {
		t.Fatalf("private ways %d after hit epoch, want 4", p.PrivateWays(0))
	}
}

func TestECCRepartitionBounds(t *testing.T) {
	p := NewECC(2, 512, 8, 1)
	// Grow to the limit: never exceeds assoc-1.
	for epoch := 0; epoch < 20; epoch++ {
		for i := 0; i < 50000; i++ {
			p.OnL2Access(0, 0, false)
		}
		p.Tick(0, uint64(epoch+1)*50000)
	}
	if p.PrivateWays(0) != 7 {
		t.Fatalf("private ways %d, want capped at 7", p.PrivateWays(0))
	}
	// Shrink to the floor: never below 1.
	for epoch := 0; epoch < 20; epoch++ {
		for i := 0; i < 50000; i++ {
			p.OnL2Access(0, 0, true)
		}
		p.Tick(0, uint64(epoch+21)*50000)
	}
	if p.PrivateWays(0) != 1 {
		t.Fatalf("private ways %d, want floored at 1", p.PrivateWays(0))
	}
}

func TestECCSpillAllocatorPicksMostShared(t *testing.T) {
	p := NewECC(3, 512, 8, 1)
	// Shrink cache 2's private region so it offers the most shared space.
	for i := 0; i < 50000; i++ {
		p.OnL2Access(2, 0, true)
	}
	p.Tick(2, 50000)
	if p.PrivateWays(2) != 3 {
		t.Fatalf("setup failed: private ways %d", p.PrivateWays(2))
	}
	if rs := p.Receivers(0, 9); len(rs) == 0 || rs[0] != 2 {
		t.Fatalf("spill allocator chose %v, want cache 2 first", rs)
	}
	for _, r := range p.Receivers(2, 9) {
		if r == 2 {
			t.Fatal("spill allocator chose self")
		}
	}
}

func TestECCAlwaysSpiller(t *testing.T) {
	p := NewECC(2, 512, 8, 1)
	if p.Role(0, 100) != ssl.Spiller {
		t.Fatal("ECC sets must always be spill-eligible")
	}
	if p.SwapEnabled() || p.AllowRespill() {
		t.Fatal("ECC has ASCC features on")
	}
}

func TestECCTickOffPeriod(t *testing.T) {
	p := NewECC(2, 512, 8, 1)
	for i := 0; i < 100; i++ {
		p.OnL2Access(0, 0, false)
	}
	p.Tick(0, 12345) // not a period boundary
	if p.PrivateWays(0) != 4 {
		t.Fatal("off-period tick repartitioned")
	}
}
