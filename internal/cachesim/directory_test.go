// White-box tests for the set-sharded coherence directory: shard hash-table
// mechanics (collision chains, backward-shift deletion), maintenance against
// a map oracle under random group traffic, and the probe-cost benchmarks the
// scaleout block of scripts/bench_kernel.sh records (broadcast row scan vs
// directory lookup at 4/16/64 cores). The black-box differential wall lives
// in group_diff_test.go; FuzzDirectoryEquivalence in internal/cmp pins the
// full engine.
package cachesim

import (
	"fmt"
	"testing"

	"ascc/internal/rng"
)

// TestDirectoryShardChains drives one small shard table through add/remove
// sequences chosen to collide, against a map oracle, so linear probing and
// backward-shift deletion are checked directly — including removals from the
// middle of a probe chain, the case naive deletion breaks.
func TestDirectoryShardChains(t *testing.T) {
	// 4 sets, 8 row ways -> one small table; all blocks below land in a
	// handful of slots and chain.
	d := newDirectory(4, 8)
	oracle := map[uint64]uint64{}
	r := rng.New(0xd1c7)
	for op := 0; op < 200_000; op++ {
		block := r.Uint64() % 24 // tiny space: constant collisions
		member := int(r.Uint64() % 8)
		switch r.Uint64() % 3 {
		case 0, 1:
			d.add(block, member)
			oracle[block] |= 1 << uint(member)
		case 2:
			d.remove(block, member)
			if m := oracle[block] &^ (1 << uint(member)); m == 0 {
				delete(oracle, block)
			} else {
				oracle[block] = m
			}
		}
		if got, want := d.holders(block), oracle[block]; got != want {
			t.Fatalf("op %d: holders(%d) = %b, oracle %b", op, block, got, want)
		}
	}
	if got, want := d.occupancy(), len(oracle); got != want {
		t.Fatalf("occupancy %d, oracle tracks %d blocks", got, want)
	}
	for block, want := range oracle {
		if got := d.holders(block); got != want {
			t.Fatalf("final holders(%d) = %b, oracle %b", block, got, want)
		}
	}
}

// TestEnableDirectoryIndexesExistingContents checks that flipping a
// populated group into directory mode indexes what is already resident.
func TestEnableDirectoryIndexesExistingContents(t *testing.T) {
	cfg := Config{SizeBytes: 4 * 8 * 64, Ways: 8, LineBytes: 64}
	g := NewGroup(4, cfg)
	for c := 0; c < 4; c++ {
		for b := uint64(0); b < 16; b += uint64(c + 1) {
			g.Cache(c).Insert(b, InsertMRU, Line{State: Shared, Owner: int16(c)})
		}
	}
	want := make(map[uint64]uint64)
	for c := 0; c < 4; c++ {
		g.Cache(c).ForEachLine(func(_, _ int, l *Line) { want[l.Tag] |= 1 << uint(c) })
	}
	g.EnableDirectory()
	if !g.DirectoryEnabled() {
		t.Fatal("directory not enabled")
	}
	for b := uint64(0); b < 64; b++ {
		if got := g.HolderMask(b); got != want[b] {
			t.Fatalf("HolderMask(%d) = %b after EnableDirectory, want %b", b, got, want[b])
		}
	}
}

// TestNewGroupRejectsOversizedGroups pins the uint64 holder-mask limit.
func TestNewGroupRejectsOversizedGroups(t *testing.T) {
	cfg := Config{SizeBytes: 2 * 8 * 64, Ways: 8, LineBytes: 64}
	defer func() {
		if recover() == nil {
			t.Fatal("NewGroup(65, ...) did not panic")
		}
	}()
	NewGroup(65, cfg)
}

// TestProbeCountParity pins that directory and broadcast mode count the same
// number of coherence probes for the same query sequence — the property that
// makes the scaling table's probe column comparable across modes.
func TestProbeCountParity(t *testing.T) {
	cfg := Config{SizeBytes: 8 * 8 * 64, Ways: 8, LineBytes: 64}
	run := func(directory bool) (probes uint64) {
		g := NewGroup(8, cfg)
		if directory {
			g.EnableDirectory()
		}
		r := rng.New(0x9e37)
		for op := 0; op < 50_000; op++ {
			c := int(r.Uint64() % 8)
			block := r.Uint64() % 512
			switch r.Uint64() % 5 {
			case 0:
				if _, hit, holders, _ := g.DemandAccess(c, block); !hit {
					st := Shared
					if holders == 0 {
						st = Exclusive
					}
					g.Cache(c).Insert(block, InsertMRU, Line{State: st, Owner: int16(c)})
				}
			case 1:
				g.HolderMask(block)
			case 2:
				g.Probe(block)
			case 3:
				g.InvalidateOthers(block, c)
			case 4:
				g.LastCopy(block, c)
			}
		}
		return g.Probes()
	}
	bp, dp := run(false), run(true)
	if bp != dp || bp == 0 {
		t.Fatalf("probe counts differ: broadcast %d, directory %d", bp, dp)
	}
}

// benchGroup builds an n-member group with a mixed-sharing resident
// population: roughly half the blocks private, the rest held by 2..5 members.
func benchGroup(n int, directory bool) (*CacheGroup, []uint64) {
	cfg := Config{SizeBytes: 512 * 8 * 64, Ways: 8, LineBytes: 64}
	g := NewGroup(n, cfg)
	if directory {
		g.EnableDirectory()
	}
	r := rng.New(uint64(0xbe * n))
	blocks := make([]uint64, 4096)
	for i := range blocks {
		b := r.Uint64() >> 16
		blocks[i] = b
		holders := 1 + int(r.Uint64()%5)
		for h := 0; h < holders; h++ {
			c := int(r.Uint64() % uint64(n))
			g.Cache(c).Insert(b, InsertMRU, Line{State: Shared, Owner: int16(c)})
		}
	}
	return g, blocks
}

// BenchmarkCoherenceProbe measures one HolderMask query — the primitive
// under every miss, eviction and upgrade — in broadcast vs directory mode as
// the group grows. The acceptance bar for the scaleout bench block: the
// 64-core directory probe costs at most 2x the 4-core broadcast scan.
func BenchmarkCoherenceProbe(b *testing.B) {
	for _, mode := range []string{"broadcast", "directory"} {
		for _, n := range []int{4, 16, 64} {
			g, blocks := benchGroup(n, mode == "directory")
			b.Run(fmt.Sprintf("%s-%dcores", mode, n), func(b *testing.B) {
				var sink uint64
				for i := 0; i < b.N; i++ {
					sink += g.HolderMask(blocks[i&4095])
				}
				benchSink = sink
			})
		}
	}
}

var benchSink uint64
