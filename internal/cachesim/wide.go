package cachesim

// wideState is the bookkeeping for sets wider than packedMaxWays — in
// practice the fully associative study caches, whose thousands of ways made
// the old linear-scan fallback dominate Figure 1's wall clock. Every hot
// operation is O(1) here: lookups go through a tag index over the valid
// lines, recency is an intrusive doubly-linked list per set (head = MRU,
// tail = LRU), and victim selection combines the list tail with a
// monotonic lowest-invalid-way hint. The structures are pure accelerators:
// observable state (tags, lines, recency order, statistics) is exactly what
// the old explicit stacks produced, which the refmodel differential wall
// pins.
type wideState struct {
	// next/prev link the ways of each set in recency order (set*ways+way
	// indexed, -1 terminated); every way is always linked, valid or not,
	// like the old explicit stacks.
	next, prev []int32
	head, tail []int32 // per set: MRU way, LRU way

	// idx maps each valid tag to the way holding it. A tag lives in exactly
	// one set, so the way index alone identifies the line. When duplicate
	// tags exist in one set (reachable only through fuzzer-driven
	// InsertWay sequences, flagged by dups) the entry is the lowest valid
	// way, matching the old scan's first-match order, and maintenance
	// falls back to set rescans.
	idx  map[uint64]int32
	dups bool

	// nValid counts valid lines per set; free is a per-set lower bound on
	// the lowest invalid way (no invalid way exists strictly below it), so
	// the victim scan for holes is amortised O(1) instead of O(ways).
	nValid, free []int32
}

func newWideState(numSets, ways, totalLines int) *wideState {
	ws := &wideState{
		next:   make([]int32, numSets*ways),
		prev:   make([]int32, numSets*ways),
		head:   make([]int32, numSets),
		tail:   make([]int32, numSets),
		idx:    make(map[uint64]int32, totalLines),
		nValid: make([]int32, numSets),
		free:   make([]int32, numSets),
	}
	for si := 0; si < numSets; si++ {
		base := si * ways
		for w := 0; w < ways; w++ {
			ws.next[base+w] = int32(w + 1)
			ws.prev[base+w] = int32(w - 1)
		}
		ws.next[base+ways-1] = -1
		ws.head[si] = 0
		ws.tail[si] = int32(ways - 1)
	}
	return ws
}

// unlink removes way w from set si's recency list.
func (ws *wideState) unlink(si, ways, w int) {
	base := si * ways
	n, p := ws.next[base+w], ws.prev[base+w]
	if p >= 0 {
		ws.next[base+int(p)] = n
	} else {
		ws.head[si] = n
	}
	if n >= 0 {
		ws.prev[base+int(n)] = p
	} else {
		ws.tail[si] = p
	}
}

// pushFront makes way w set si's MRU.
func (ws *wideState) pushFront(si, ways, w int) {
	base := si * ways
	h := ws.head[si]
	ws.next[base+w], ws.prev[base+w] = h, -1
	if h >= 0 {
		ws.prev[base+int(h)] = int32(w)
	} else {
		ws.tail[si] = int32(w)
	}
	ws.head[si] = int32(w)
}

// pushBack makes way w set si's LRU.
func (ws *wideState) pushBack(si, ways, w int) {
	base := si * ways
	t := ws.tail[si]
	ws.prev[base+w], ws.next[base+w] = t, -1
	if t >= 0 {
		ws.next[base+int(t)] = int32(w)
	} else {
		ws.head[si] = int32(w)
	}
	ws.tail[si] = int32(w)
}

// pushBeforeTail places way w at the LRU-1 rank (w is not in the list).
func (ws *wideState) pushBeforeTail(si, ways, w int) {
	t := ws.tail[si]
	if t < 0 {
		ws.pushFront(si, ways, w)
		return
	}
	base := si * ways
	p := ws.prev[base+int(t)]
	ws.next[base+w], ws.prev[base+w] = t, p
	ws.prev[base+int(t)] = int32(w)
	if p >= 0 {
		ws.next[base+int(p)] = int32(w)
	} else {
		ws.head[si] = int32(w)
	}
}

// wideTouch promotes way w of set si to MRU.
func (c *Cache) wideTouch(si, w int) {
	ws := c.wide
	if int(ws.head[si]) == w {
		return
	}
	ws.unlink(si, c.ways, w)
	ws.pushFront(si, c.ways, w)
}

// wideReindex recomputes the tag index entry for tag in set si — the lowest
// valid way holding it, or no entry. Only reached while duplicate tags
// exist (ws.dups).
func (c *Cache) wideReindex(si int, tag uint64) {
	base := si * c.stride
	for w := 0; w < c.ways; w++ {
		if c.lines[base+w].State != Invalid && c.tags[base+w] == tag {
			c.wide.idx[tag] = int32(w)
			return
		}
	}
	delete(c.wide.idx, tag)
}

// wideDropTag removes way w's claim on tag from the index (the line at w
// was just overwritten or invalidated).
func (c *Cache) wideDropTag(si, w int, tag uint64) {
	ws := c.wide
	if e, ok := ws.idx[tag]; ok && int(e) == w {
		if ws.dups {
			c.wideReindex(si, tag)
		} else {
			delete(ws.idx, tag)
		}
	}
}

// wideSetLine records the transition of set si's way w from line `old` to a
// line holding block with validity newValid, keeping the tag index and the
// valid/free accounting exact.
func (c *Cache) wideSetLine(si, w int, old Line, block uint64, newValid bool) {
	ws := c.wide
	if old.Valid() {
		ws.nValid[si]--
		c.wideDropTag(si, w, old.Tag)
	}
	if newValid {
		ws.nValid[si]++
		if e, ok := ws.idx[block]; ok && int(e) != w {
			// Another valid way already holds this tag (fuzzer-driven
			// sequences): keep the lowest, and flag rescan maintenance.
			ws.dups = true
			if w < int(e) {
				ws.idx[block] = int32(w)
			}
		} else {
			ws.idx[block] = int32(w)
		}
	} else if int32(w) < ws.free[si] {
		ws.free[si] = int32(w)
	}
}

// wideFirstInvalid returns the lowest invalid way of set si, or -1 when the
// set is full, advancing the free hint past the scanned prefix.
func (c *Cache) wideFirstInvalid(si int) int {
	ws := c.wide
	if int(ws.nValid[si]) == c.ways {
		return -1
	}
	base := si * c.stride
	for w := int(ws.free[si]); w < c.ways; w++ {
		if c.lines[base+w].State == Invalid {
			ws.free[si] = int32(w)
			return w
		}
	}
	// nValid says a hole exists, so the hint must have been ahead of it —
	// impossible by construction; fail loudly rather than corrupt state.
	panic("cachesim: wide valid-count/free-hint accounting diverged")
}
