// Kernel-level throughput benchmarks: the packed cachesim kernel against
// the frozen reference implementation (internal/cachesim/refmodel), which
// is the pre-rewrite kernel verbatim. Because the oracle doubles as the
// before-baseline, the speedup of the rewrite is measurable from a single
// run with no historical checkout:
//
//	go test ./internal/cachesim -run '^$' -bench . -benchmem
//
// `make bench-baseline` runs these plus the end-to-end simulator benchmark
// and records the results in BENCH_kernel.json.
package cachesim_test

import (
	"testing"

	"ascc/internal/cachesim"
	"ascc/internal/cachesim/refmodel"
)

// benchGeometry is the paper's per-core L2: 256KB, 8-way, 64B lines —
// 512 sets, the configuration the simulator spends most of its time in.
var benchGeometry = cachesim.Config{SizeBytes: 256 << 10, Ways: 8, LineBytes: 64}

// demandCache is the surface shared by the packed kernel and the reference
// model that the benchmarks drive.
type demandCache interface {
	Access(block uint64) (way int, hit bool)
	Insert(block uint64, pos cachesim.InsertPos, proto cachesim.Line) cachesim.Line
}

// benchTrace builds a deterministic demand stream with roughly a 70% hit
// rate at steady state: 3 of 4 references draw from a working set half the
// cache's size, the rest stream through a space 64x the cache.
func benchTrace(n int) []uint64 {
	const (
		hot  = 2048   // blocks; half of the 4096-line cache
		cold = 262144 // blocks; 64x the cache
	)
	// SplitMix64 step — self-contained so the trace never changes under us.
	seed := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	tr := make([]uint64, n)
	for i := range tr {
		r := next()
		if r&3 != 0 {
			tr[i] = r >> 2 % hot
		} else {
			tr[i] = hot + r>>2%cold
		}
	}
	return tr
}

// runDemand replays the trace against c: every reference is an Access, and
// every miss fills with an MRU insertion — the canonical demand loop every
// experiment reduces to.
func runDemand(b *testing.B, c demandCache, tr []uint64) {
	b.Helper()
	proto := cachesim.Line{State: cachesim.Exclusive}
	// Warm up so the steady-state hit rate applies from iteration one.
	for _, a := range tr {
		if _, hit := c.Access(a); !hit {
			c.Insert(a, cachesim.InsertMRU, proto)
		}
	}
	mask := len(tr) - 1 // len(tr) is a power of two
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := tr[i&mask]
		if _, hit := c.Access(a); !hit {
			c.Insert(a, cachesim.InsertMRU, proto)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "blocks/s")
}

// BenchmarkKernelThroughput is the headline kernel benchmark: blocks
// demanded per second through Access + miss-fill Insert on the paper's L2
// geometry, packed kernel versus the pre-rewrite reference kernel.
func BenchmarkKernelThroughput(b *testing.B) {
	tr := benchTrace(1 << 16)
	b.Run("packed", func(b *testing.B) {
		runDemand(b, cachesim.New(benchGeometry), tr)
	})
	b.Run("ref", func(b *testing.B) {
		runDemand(b, refmodel.New(benchGeometry), tr)
	})
}

// BenchmarkAccessHit isolates the hit path: every reference hits, so this
// measures probe + MRU promotion alone.
func BenchmarkAccessHit(b *testing.B) {
	run := func(b *testing.B, c demandCache) {
		proto := cachesim.Line{State: cachesim.Exclusive}
		for blk := uint64(0); blk < 4096; blk++ {
			c.Insert(blk, cachesim.InsertMRU, proto)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Multiplicative-hash walk over the resident blocks: the hit
			// way is unpredictable, as in real traffic, so early-exit
			// probes cannot ride a trained branch predictor.
			blk := uint64(i) * 2654435761 & 4095
			if _, hit := c.Access(blk); !hit {
				b.Fatalf("unexpected miss on block %d", blk)
			}
		}
	}
	b.Run("packed", func(b *testing.B) { run(b, cachesim.New(benchGeometry)) })
	b.Run("ref", func(b *testing.B) { run(b, refmodel.New(benchGeometry)) })
}

// BenchmarkInsertEvict isolates the fill path: every reference misses, so
// this measures victim selection + insertion with eviction.
func BenchmarkInsertEvict(b *testing.B) {
	run := func(b *testing.B, c demandCache) {
		proto := cachesim.Line{State: cachesim.Exclusive}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			blk := uint64(i) // strictly increasing: never hits
			if _, hit := c.Access(blk); hit {
				b.Fatalf("unexpected hit on block %d", blk)
			}
			c.Insert(blk, cachesim.InsertMRU, proto)
		}
	}
	b.Run("packed", func(b *testing.B) { run(b, cachesim.New(benchGeometry)) })
	b.Run("ref", func(b *testing.B) { run(b, refmodel.New(benchGeometry)) })
}
