// Package cachesim implements the set-associative cache model that underlies
// every cache in the simulated CMP: private L1s, private L2s and the shared
// LLC alternative.
//
// The model is policy-free: it maintains tags, MESI-style line states, a true
// LRU recency stack per set, and per-set statistics, and it exposes explicit
// insertion positions (MRU, LRU, LRU-1, ...) so that the cooperative-caching
// policies in internal/policies can implement MRU insertion, BIP and the
// paper's SABIP on top of it. Coherence across caches is orchestrated by
// internal/cmp; a Cache only answers for its own contents.
package cachesim

import "fmt"

// LineState is a MESI coherence state.
type LineState uint8

// MESI states. Invalid lines are not present for lookup purposes.
const (
	Invalid LineState = iota
	Shared
	Exclusive
	Modified
)

// String returns the canonical one-letter MESI name.
func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("LineState(%d)", uint8(s))
}

// Line is one cache line's bookkeeping. Tag stores the full block address
// (byte address >> log2(line size)); keeping the whole block address as the
// tag costs a few bits of model memory but removes any chance of aliasing
// between the simulated caches.
type Line struct {
	Tag      uint64
	State    LineState
	Dirty    bool
	Spilled  bool // line was placed here by a spill from another cache
	Prefetch bool // line was brought in by a prefetcher and not yet demanded
	Reused   bool // line was hit at least once since it was (re)inserted
	Owner    int  // core whose execution allocated the line (for stats)
}

// Valid reports whether the line holds data.
func (l *Line) Valid() bool { return l.State != Invalid }

// InsertPos selects where in the recency stack a newly inserted line lands.
type InsertPos int

const (
	// InsertMRU is traditional LRU-replacement insertion at the top of the
	// recency stack.
	InsertMRU InsertPos = iota
	// InsertLRU inserts at the bottom of the stack (LIP / the common case of
	// BIP).
	InsertLRU
	// InsertLRU1 inserts at the second-to-bottom position; this is the common
	// case of the paper's Spilling-Aware BIP (SABIP), which protects the most
	// recently inserted line from immediate eviction by spills.
	InsertLRU1
)

// String names the insertion position.
func (p InsertPos) String() string {
	switch p {
	case InsertMRU:
		return "MRU"
	case InsertLRU:
		return "LRU"
	case InsertLRU1:
		return "LRU-1"
	}
	return fmt.Sprintf("InsertPos(%d)", int(p))
}

// Config describes a cache's geometry.
type Config struct {
	SizeBytes   int // total data capacity
	Ways        int // associativity K
	LineBytes   int // line (block) size
	EnabledWays int // 0 means all Ways; < Ways models a partially disabled cache (Fig. 1)
	FullyAssoc  bool
}

// Validate checks the geometry for consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cachesim: non-positive geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cachesim: line size %d not a power of two", c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cachesim: size %dB not a multiple of line size %dB", c.SizeBytes, c.LineBytes)
	}
	if c.FullyAssoc {
		return nil
	}
	if lines%c.Ways != 0 {
		return fmt.Errorf("cachesim: %d lines not divisible by %d ways", lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cachesim: set count %d not a power of two", sets)
	}
	if c.EnabledWays < 0 || c.EnabledWays > c.Ways {
		return fmt.Errorf("cachesim: enabled ways %d outside [0,%d]", c.EnabledWays, c.Ways)
	}
	return nil
}

// SetStats accumulates per-set demand statistics; the harness uses them for
// the paper's Figure 2 favored/constant classification.
type SetStats struct {
	Hits   uint64
	Misses uint64
}

// set is one associativity set with a true-LRU recency stack. stack[0] is
// the MRU way index; stack[len-1] the LRU.
type set struct {
	lines []Line
	stack []int
}

// Cache is a single set-associative cache.
type Cache struct {
	cfg      Config
	sets     []set
	setMask  uint64
	ways     int // enabled ways
	stats    []SetStats
	hits     uint64
	misses   uint64
	accesses uint64
}

// New builds a cache from cfg. It panics on invalid geometry (construction
// happens at configuration time; runtime paths never construct caches).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	numSets := 1
	ways := lines
	if !cfg.FullyAssoc {
		numSets = lines / cfg.Ways
		ways = cfg.Ways
	}
	enabled := ways
	if !cfg.FullyAssoc && cfg.EnabledWays > 0 {
		enabled = cfg.EnabledWays
	}
	c := &Cache{
		cfg:     cfg,
		sets:    make([]set, numSets),
		setMask: uint64(numSets - 1),
		ways:    enabled,
		stats:   make([]SetStats, numSets),
	}
	for i := range c.sets {
		c.sets[i].lines = make([]Line, ways)
		c.sets[i].stack = make([]int, enabled)
		for w := 0; w < enabled; w++ {
			c.sets[i].stack[w] = w
		}
	}
	return c
}

// Config returns the cache's geometry.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.sets) }

// Ways returns the number of enabled ways per set.
func (c *Cache) Ways() int { return c.ways }

// SetIndex maps a block address to its set.
func (c *Cache) SetIndex(block uint64) int { return int(block & c.setMask) }

// Lookup finds block without changing any state. It returns the way index
// and whether the block is present.
func (c *Cache) Lookup(block uint64) (way int, ok bool) {
	s := &c.sets[c.SetIndex(block)]
	for w := 0; w < c.ways; w++ {
		if s.lines[w].State != Invalid && s.lines[w].Tag == block {
			return w, true
		}
	}
	return -1, false
}

// Line returns a pointer to the line at (setIdx, way) for inspection or
// state mutation by the coherence engine.
func (c *Cache) Line(setIdx, way int) *Line { return &c.sets[setIdx].lines[way] }

// Access performs a demand lookup: on a hit the line is promoted to MRU and
// per-set hit statistics are updated; on a miss only the miss counters move.
// The caller handles the fill via Victim/Insert.
func (c *Cache) Access(block uint64) (way int, hit bool) {
	c.accesses++
	si := c.SetIndex(block)
	w, ok := c.Lookup(block)
	if ok {
		c.hits++
		c.stats[si].Hits++
		c.touch(si, w)
		return w, true
	}
	c.misses++
	c.stats[si].Misses++
	return -1, false
}

// Touch promotes the line at (setIdx, way) to MRU without counting an access
// (used when coherence operations reuse a resident line).
func (c *Cache) Touch(setIdx, way int) { c.touch(setIdx, way) }

func (c *Cache) touch(setIdx, way int) {
	s := &c.sets[setIdx]
	for i, w := range s.stack {
		if w == way {
			copy(s.stack[1:i+1], s.stack[:i])
			s.stack[0] = way
			return
		}
	}
	panic(fmt.Sprintf("cachesim: way %d not in recency stack of set %d", way, setIdx))
}

// Victim returns the way that would be replaced next in block's set: the
// first invalid way if any, else the LRU way. It does not modify the cache.
func (c *Cache) Victim(block uint64) int {
	return c.VictimInSet(c.SetIndex(block))
}

// VictimInSet is Victim for an explicit set index.
func (c *Cache) VictimInSet(setIdx int) int {
	s := &c.sets[setIdx]
	for w := 0; w < c.ways; w++ {
		if s.lines[w].State == Invalid {
			return w
		}
	}
	return s.stack[len(s.stack)-1]
}

// Insert places a new line for block into its set at the given recency
// position, evicting whatever occupied the victim way. It returns the
// evicted line (State == Invalid if the way was free). The new line's
// State/Dirty/Spilled/Owner are taken from proto.
func (c *Cache) Insert(block uint64, pos InsertPos, proto Line) (evicted Line) {
	si := c.SetIndex(block)
	w := c.VictimInSet(si)
	s := &c.sets[si]
	evicted = s.lines[w]
	proto.Tag = block
	s.lines[w] = proto
	c.place(si, w, pos)
	return evicted
}

// place moves way w to the requested recency position.
func (c *Cache) place(setIdx, w int, pos InsertPos) {
	s := &c.sets[setIdx]
	// Remove w from the stack.
	idx := -1
	for i, x := range s.stack {
		if x == w {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("cachesim: way %d missing from stack of set %d", w, setIdx))
	}
	copy(s.stack[idx:], s.stack[idx+1:])
	s.stack = s.stack[:len(s.stack)-1]
	// Reinsert at the requested position.
	target := 0
	switch pos {
	case InsertMRU:
		target = 0
	case InsertLRU:
		target = len(s.stack)
	case InsertLRU1:
		target = len(s.stack) - 1
		if target < 0 {
			target = 0
		}
	default:
		panic(fmt.Sprintf("cachesim: unknown insert position %v", pos))
	}
	s.stack = append(s.stack, 0)
	copy(s.stack[target+1:], s.stack[target:])
	s.stack[target] = w
}

// VictimAmong returns the victim way in setIdx restricted to ways for which
// allowed returns true: the first allowed invalid way, else the least
// recently used allowed way. It returns -1 if no way is allowed. Used by
// region-partitioned policies (ECC).
func (c *Cache) VictimAmong(setIdx int, allowed func(way int) bool) int {
	s := &c.sets[setIdx]
	for w := 0; w < c.ways; w++ {
		if allowed(w) && s.lines[w].State == Invalid {
			return w
		}
	}
	for i := len(s.stack) - 1; i >= 0; i-- {
		if allowed(s.stack[i]) {
			return s.stack[i]
		}
	}
	return -1
}

// VictimDead picks a victim among the set's dead lines: the first invalid
// way, else the least-recently-used way whose line was never reused since
// insertion. If every valid line has been reused, it clears all the set's
// reuse bits (second-chance aging, so lines whose activity has ceased
// become eligible on a later attempt) and reports no victim. This is the
// guest-admission mechanism of the ASCC-family policies: spilled lines may
// only displace a receiver set's demonstrably dead lines.
func (c *Cache) VictimDead(setIdx int) (way int, ok bool) {
	s := &c.sets[setIdx]
	for w := 0; w < c.ways; w++ {
		if s.lines[w].State == Invalid {
			return w, true
		}
	}
	for i := len(s.stack) - 1; i >= 0; i-- {
		if w := s.stack[i]; !s.lines[w].Reused {
			return w, true
		}
	}
	for w := 0; w < c.ways; w++ {
		s.lines[w].Reused = false
	}
	return -1, false
}

// InsertWay places a new line for block into an explicit way of its set at
// the given recency position, returning the evicted line. The caller is
// responsible for choosing a way in block's set (e.g. via VictimAmong).
func (c *Cache) InsertWay(block uint64, way int, pos InsertPos, proto Line) (evicted Line) {
	si := c.SetIndex(block)
	s := &c.sets[si]
	evicted = s.lines[way]
	proto.Tag = block
	s.lines[way] = proto
	c.place(si, way, pos)
	return evicted
}

// Invalidate removes block from the cache if present, returning the line as
// it was (for writeback decisions). The way's stack slot moves to LRU so it
// is the immediate victim.
func (c *Cache) Invalidate(block uint64) (Line, bool) {
	w, ok := c.Lookup(block)
	if !ok {
		return Line{}, false
	}
	si := c.SetIndex(block)
	old := c.sets[si].lines[w]
	c.sets[si].lines[w] = Line{}
	c.place(si, w, InsertLRU)
	return old, true
}

// RecencyStack returns a copy of the set's recency stack, MRU first.
// Intended for tests and debugging.
func (c *Cache) RecencyStack(setIdx int) []int {
	s := c.sets[setIdx].stack
	out := make([]int, len(s))
	copy(out, s)
	return out
}

// SetStatsFor returns the accumulated stats for one set.
func (c *Cache) SetStatsFor(setIdx int) SetStats { return c.stats[setIdx] }

// ResetSetStats zeroes all per-set statistics (totals are preserved).
func (c *Cache) ResetSetStats() {
	for i := range c.stats {
		c.stats[i] = SetStats{}
	}
}

// Totals returns lifetime accesses, hits and misses.
func (c *Cache) Totals() (accesses, hits, misses uint64) {
	return c.accesses, c.hits, c.misses
}

// ResetTotals zeroes the lifetime counters and per-set stats.
func (c *Cache) ResetTotals() {
	c.accesses, c.hits, c.misses = 0, 0, 0
	c.ResetSetStats()
}

// ValidLines counts valid lines in the whole cache (tests / occupancy
// metrics).
func (c *Cache) ValidLines() int {
	n := 0
	for si := range c.sets {
		for w := 0; w < c.ways; w++ {
			if c.sets[si].lines[w].Valid() {
				n++
			}
		}
	}
	return n
}

// ForEachLine calls fn for every valid line. Iteration order is
// deterministic (set-major, then way).
func (c *Cache) ForEachLine(fn func(setIdx, way int, l *Line)) {
	for si := range c.sets {
		for w := 0; w < c.ways; w++ {
			if c.sets[si].lines[w].Valid() {
				fn(si, w, &c.sets[si].lines[w])
			}
		}
	}
}
