// Package cachesim implements the set-associative cache model that underlies
// every cache in the simulated CMP: private L1s, private L2s and the shared
// LLC alternative.
//
// The model is policy-free: it maintains tags, MESI-style line states, a true
// LRU recency stack per set, and per-set statistics, and it exposes explicit
// insertion positions (MRU, LRU, LRU-1, ...) so that the cooperative-caching
// policies in internal/policies can implement MRU insertion, BIP and the
// paper's SABIP on top of it. Coherence across caches is orchestrated by
// internal/cmp; a Cache only answers for its own contents.
//
// # Kernel layout
//
// Every experiment funnels through Access/Insert/Invalidate, so the hot
// state is bit-packed (DESIGN.md §2, "kernel layout"):
//
//   - tags: one flat ways-major []uint64 (tags[set*stride+way]), probed with
//     an unrolled comparison loop — at the paper's 8-way associativity a
//     whole set's tags span a single 64-byte host cache line.
//   - meta: one 32-byte record per set holding the packed recency word
//     (nibble k = the way at recency rank k, nibble 0 = MRU — touch, victim
//     selection and position-controlled insertion are constant-time
//     shift/mask operations instead of []int splicing), the valid mask (bit
//     w set iff way w holds data, so the probe and the invalid-way victim
//     scan never dereference Line structs) and the per-set hit/miss
//     counters. Everything an access mutates sits in half a host cache
//     line; lifetime totals are derived from the per-set counters on demand
//     rather than maintained as separate hot words.
//   - lines: the full per-line bookkeeping (state, dirty, spilled, prefetch,
//     reuse, owner) in one flat slab, kept addressable because the coherence
//     engine in internal/cmp mutates flags through the Line pointer API.
//
// Sets wider than 16 ways (the fully associative study caches of Figure 1)
// fall back to explicit []int recency stacks — the packed word fits at most
// 16 4-bit ranks. Both paths are driven against the frozen reference
// implementation in internal/cachesim/refmodel by a differential fuzzer and
// property tests (see diff_test.go): identical operation sequences must
// produce identical evictions, recency stacks and statistics.
package cachesim

import (
	"fmt"
	"math/bits"
)

// LineState is a MESI coherence state.
type LineState uint8

// MESI states. Invalid lines are not present for lookup purposes.
const (
	Invalid LineState = iota
	Shared
	Exclusive
	Modified
)

// String returns the canonical one-letter MESI name.
func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("LineState(%d)", uint8(s))
}

// Line is one cache line's bookkeeping. Tag stores the full block address
// (byte address >> log2(line size)); keeping the whole block address as the
// tag costs a few bits of model memory but removes any chance of aliasing
// between the simulated caches.
type Line struct {
	Tag      uint64
	State    LineState
	Dirty    bool
	Spilled  bool // line was placed here by a spill from another cache
	Prefetch bool // line was brought in by a prefetcher and not yet demanded
	Reused   bool // line was hit at least once since it was (re)inserted
	// Owner is the core whose execution allocated the line (for stats).
	// int16 keeps the struct at 16 bytes, so an 8-way line row spans two
	// host cache lines instead of three — the line slabs are the largest
	// data the hot probe/fill paths walk.
	Owner int16
}

// Valid reports whether the line holds data.
func (l *Line) Valid() bool { return l.State != Invalid }

// InsertPos selects where in the recency stack a newly inserted line lands.
type InsertPos int

const (
	// InsertMRU is traditional LRU-replacement insertion at the top of the
	// recency stack.
	InsertMRU InsertPos = iota
	// InsertLRU inserts at the bottom of the stack (LIP / the common case of
	// BIP).
	InsertLRU
	// InsertLRU1 inserts at the second-to-bottom position; this is the common
	// case of the paper's Spilling-Aware BIP (SABIP), which protects the most
	// recently inserted line from immediate eviction by spills.
	InsertLRU1
)

// String names the insertion position.
func (p InsertPos) String() string {
	switch p {
	case InsertMRU:
		return "MRU"
	case InsertLRU:
		return "LRU"
	case InsertLRU1:
		return "LRU-1"
	}
	return fmt.Sprintf("InsertPos(%d)", int(p))
}

// Config describes a cache's geometry.
type Config struct {
	SizeBytes   int // total data capacity
	Ways        int // associativity K
	LineBytes   int // line (block) size
	EnabledWays int // 0 means all Ways; < Ways models a partially disabled cache (Fig. 1)
	FullyAssoc  bool
}

// Validate checks the geometry for consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cachesim: non-positive geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cachesim: line size %d not a power of two", c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cachesim: size %dB not a multiple of line size %dB", c.SizeBytes, c.LineBytes)
	}
	if c.FullyAssoc {
		return nil
	}
	if lines%c.Ways != 0 {
		return fmt.Errorf("cachesim: %d lines not divisible by %d ways", lines, c.Ways)
	}
	sets := lines / c.Ways
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cachesim: set count %d not a power of two", sets)
	}
	if c.EnabledWays < 0 || c.EnabledWays > c.Ways {
		return fmt.Errorf("cachesim: enabled ways %d outside [0,%d]", c.EnabledWays, c.Ways)
	}
	return nil
}

// SampledConfig compacts a geometry to the 1/den set sample of DESIGN.md
// §16: same line size, same associativity, 1/den of the sets — so the tag
// slab, recency nibbles, per-set stats and (through NewGroup) the directory
// shards allocate only the sampled sets. den must be a power of two dividing
// the set count; fully-associative caches have a single set and cannot be
// sampled.
func SampledConfig(c Config, den int) (Config, error) {
	if den <= 1 {
		return c, nil
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	if c.FullyAssoc {
		return Config{}, fmt.Errorf("cachesim: cannot set-sample a fully associative cache")
	}
	sets := c.SizeBytes / c.LineBytes / c.Ways
	if sets%den != 0 {
		return Config{}, fmt.Errorf("cachesim: sample 1/%d does not divide %d sets", den, sets)
	}
	c.SizeBytes /= den
	return c, nil
}

// SetStats accumulates per-set demand statistics; the harness uses them for
// the paper's Figure 2 favored/constant classification.
type SetStats struct {
	Hits   uint64
	Misses uint64
}

// packedMaxWays is the widest set the packed recency word can hold: 16
// 4-bit way indices per uint64.
const packedMaxWays = 16

// Nibble-SWAR constants: the lowest and highest bit of every 4-bit lane.
const (
	nibLo = 0x1111111111111111
	nibHi = 0x8888888888888888
)

// setMeta is everything an access needs to know about one set besides its
// tag row, packed into half a host cache line so the hot path touches at
// most two lines of metadata per reference: the set's tag row and this
// struct. order nibble k = way at recency rank k (rank 0 = MRU); nibbles
// >= ways stay 0xF so the SWAR position search can never alias them with a
// real way index. valid bit w is set iff way w holds data. On the wide
// fallback path only the counters are used.
type setMeta struct {
	order  uint64
	valid  uint64
	hits   uint64
	misses uint64
}

// Cache is a single set-associative cache.
type Cache struct {
	cfg     Config
	setMask uint64
	ways    int // enabled ways (probed / replaceable)
	stride  int // physical ways per set in the flat slabs (>= ways)

	// Flat ways-major slabs: index set*stride+way.
	tags  []uint64
	lines []Line

	// One metadata word-group per set: packed recency order, valid mask and
	// demand counters.
	meta []setMeta

	// usedMask covers the 4*ways low bits of an order word; unusedMask is
	// its complement (the permanently-0xF nibbles).
	usedMask   uint64
	unusedMask uint64
	fullMask   uint64 // low `ways` bits: the all-valid metadata word

	// wide is the fallback structure for sets wider than packedMaxWays (the
	// fully associative study caches): a tag index plus intrusive recency
	// lists keep every hot operation O(1) where the packed nibble word
	// cannot apply (see wide.go). nil when the packed kernel is active.
	wide *wideState

	// shared marks a cache whose slabs are slices of a caller-owned (ganged)
	// slab rather than private allocations.
	shared bool

	// dir, when non-nil, is the owning group's coherence directory; every
	// residency change (insert, overwrite, invalidate) updates the block's
	// holder entry for member dirIdx. See directory.go.
	dir    *Directory
	dirIdx int

	// Totals() counters carried over from before the last ResetSetStats;
	// lifetime totals are base + the sum over meta.
	baseAccesses uint64
	baseMisses   uint64
}

// New builds a cache from cfg. It panics on invalid geometry (construction
// happens at configuration time; runtime paths never construct caches).
func New(cfg Config) *Cache {
	return newCache(cfg, 0, nil, nil)
}

// geometry derives (sets, physical ways per set, enabled ways) from cfg.
func geometry(cfg Config) (numSets, physWays, enabled int) {
	nLines := cfg.SizeBytes / cfg.LineBytes
	numSets = 1
	physWays = nLines
	if !cfg.FullyAssoc {
		numSets = nLines / cfg.Ways
		physWays = cfg.Ways
	}
	enabled = physWays
	if !cfg.FullyAssoc && cfg.EnabledWays > 0 {
		enabled = cfg.EnabledWays
	}
	return numSets, physWays, enabled
}

// newCache builds a cache over caller-provided tag/line slabs, or private
// ones when both are nil. stride is the element distance between consecutive
// sets' rows in the slabs (0 means the cache's own physical way count); a
// stride larger than the way count is how CacheGroup interleaves several
// caches' rows for the same set index into one contiguous slab.
func newCache(cfg Config, stride int, tags []uint64, lines []Line) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets, physWays, enabled := geometry(cfg)
	if stride == 0 {
		stride = physWays
	}
	if stride < physWays {
		panic(fmt.Sprintf("cachesim: stride %d < %d physical ways", stride, physWays))
	}
	shared := tags != nil
	if tags == nil {
		tags = make([]uint64, numSets*stride)
		lines = make([]Line, numSets*stride)
	}
	c := &Cache{
		shared:  shared,
		cfg:     cfg,
		setMask: uint64(numSets - 1),
		ways:    enabled,
		stride:  stride,
		tags:    tags,
		lines:   lines,
		meta:    make([]setMeta, numSets),
	}
	if enabled <= packedMaxWays {
		c.usedMask = ^uint64(0)
		if enabled < packedMaxWays {
			c.usedMask = uint64(1)<<(4*uint(enabled)) - 1
		}
		c.unusedMask = ^c.usedMask
		c.fullMask = uint64(1)<<uint(enabled) - 1
		// Identity recency order (rank k = way k), 0xF in unused nibbles.
		o := c.unusedMask
		for w := 0; w < enabled; w++ {
			o |= uint64(w) << (4 * uint(w))
		}
		for i := range c.meta {
			c.meta[i].order = o
		}
	} else {
		c.wide = newWideState(numSets, enabled, numSets*enabled)
	}
	return c
}

// Config returns the cache's geometry.
func (c *Cache) Config() Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.meta) }

// Ways returns the number of enabled ways per set.
func (c *Cache) Ways() int { return c.ways }

// SetIndex maps a block address to its set.
func (c *Cache) SetIndex(block uint64) int { return int(block & c.setMask) }

// Lookup finds block without changing any state. It returns the way index
// and whether the block is present.
func (c *Cache) Lookup(block uint64) (way int, ok bool) {
	w := c.probe(int(block&c.setMask), block)
	return w, w >= 0
}

// b2u converts a bool to 0 or 1. It compiles to a flag-set instruction, so
// the probe's match accumulation stays branch-free.
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// matchMask returns a bitmask of the ways in tag row t equal to block. The
// 8-way case (the paper's L2 associativity, also the chunk size of the
// ganged-row scan) and the 4-way case (the L1) cover nearly every probe the
// simulator issues; both are unrolled into one straight-line expression with
// no loop-carried dependency.
func matchMask(t []uint64, block uint64) uint64 {
	switch len(t) {
	case 8:
		return b2u(t[0] == block) | b2u(t[1] == block)<<1 |
			b2u(t[2] == block)<<2 | b2u(t[3] == block)<<3 |
			b2u(t[4] == block)<<4 | b2u(t[5] == block)<<5 |
			b2u(t[6] == block)<<6 | b2u(t[7] == block)<<7
	case 4:
		return b2u(t[0] == block) | b2u(t[1] == block)<<1 |
			b2u(t[2] == block)<<2 | b2u(t[3] == block)<<3
	}
	var m uint64
	for w := 0; w < len(t); w++ {
		m |= b2u(t[w] == block) << uint(w)
	}
	return m
}

// probe scans one set for block and returns its way, or -1. This is the
// innermost loop of the whole simulator: the packed path touches only the
// contiguous tag row and the set's metadata word. The scan is branchless —
// it accumulates a bitmask of matching ways rather than exiting early, so a
// hit costs a fixed number of straight-line ops instead of a data-dependent
// branch misprediction. The mask is ANDed with the valid word: a match on a
// stale tag left by an invalidated way must not count.
func (c *Cache) probe(si int, block uint64) int {
	base := si * c.stride
	if c.wide == nil {
		m := matchMask(c.tags[base:base+c.ways:base+c.ways], block) & c.meta[si].valid
		if m == 0 {
			return -1
		}
		return bits.TrailingZeros64(m)
	}
	if w, ok := c.wide.idx[block]; ok {
		idx := base + int(w)
		if c.lines[idx].State != Invalid && c.tags[idx] == block {
			return int(w)
		}
	}
	return -1
}

// Line returns a pointer to the line at (setIdx, way) for inspection or
// state mutation by the coherence engine.
func (c *Cache) Line(setIdx, way int) *Line { return &c.lines[setIdx*c.stride+way] }

// Access performs a demand lookup: on a hit the line is promoted to MRU and
// per-set hit statistics are updated; on a miss only the miss counters move.
// The caller handles the fill via Victim/Insert. The packed fast path is a
// single function: probe and MRU promotion fused, no calls, no allocation.
func (c *Cache) Access(block uint64) (way int, hit bool) {
	si := int(block & c.setMask)
	m := &c.meta[si]
	if c.wide == nil {
		base := si * c.stride
		// The 8- and 4-way row compares are open-coded: matchMask's generic
		// loop keeps it out of the inliner, and this probe is the hottest
		// call site in the simulator — the switch saves a call per access.
		var match uint64
		switch c.ways {
		case 8:
			t := c.tags[base : base+8 : base+8]
			match = b2u(t[0] == block) | b2u(t[1] == block)<<1 |
				b2u(t[2] == block)<<2 | b2u(t[3] == block)<<3 |
				b2u(t[4] == block)<<4 | b2u(t[5] == block)<<5 |
				b2u(t[6] == block)<<6 | b2u(t[7] == block)<<7
		case 4:
			t := c.tags[base : base+4 : base+4]
			match = b2u(t[0] == block) | b2u(t[1] == block)<<1 |
				b2u(t[2] == block)<<2 | b2u(t[3] == block)<<3
		default:
			match = matchMask(c.tags[base:base+c.ways:base+c.ways], block)
		}
		if match &= m.valid; match != 0 {
			w := bits.TrailingZeros64(match)
			m.hits++
			// Fused touch: way w takes rank 0, lower ranks shift down.
			o := m.order
			p := nibblePos(o, w)
			low := uint64(1)<<(4*uint(p)) - 1
			hi := ^uint64(0) << (4 * uint(p+1))
			m.order = o&hi | (o&low)<<4 | uint64(w)
			return w, true
		}
	} else if w := c.probe(si, block); w >= 0 {
		m.hits++
		c.touch(si, w)
		return w, true
	}
	m.misses++
	return -1, false
}

// Touch promotes the line at (setIdx, way) to MRU without counting an access
// (used when coherence operations reuse a resident line).
func (c *Cache) Touch(setIdx, way int) { c.touch(setIdx, way) }

func (c *Cache) touch(setIdx, way int) {
	if c.wide == nil {
		o := c.meta[setIdx].order
		p := nibblePos(o, way)
		if p >= c.ways {
			panic(fmt.Sprintf("cachesim: way %d not in recency stack of set %d", way, setIdx))
		}
		// Ranks below p shift down one nibble, way takes rank 0; ranks
		// above p (including the 0xF filler nibbles) are untouched.
		low := uint64(1)<<(4*uint(p)) - 1
		hi := ^uint64(0) << (4 * uint(p+1))
		c.meta[setIdx].order = o&hi | (o&low)<<4 | uint64(way)
		return
	}
	c.wideTouch(setIdx, way)
}

// nibblePos returns the rank whose nibble in order word o equals way, using
// a SWAR zero-nibble search. Positions above the first match may be flagged
// spuriously by the borrow, so the *lowest* flagged nibble is taken; filler
// nibbles (0xF) can never equal a way index (ways <= 15 on this path, or 16
// with no filler). Returns >= 16 when way is absent.
func nibblePos(o uint64, way int) int {
	x := o ^ uint64(way)*nibLo
	z := (x - nibLo) & ^x & nibHi
	return bits.TrailingZeros64(z) >> 2
}

// Victim returns the way that would be replaced next in block's set: the
// first invalid way if any, else the LRU way. It does not modify the cache.
func (c *Cache) Victim(block uint64) int {
	return c.VictimInSet(c.SetIndex(block))
}

// VictimInSet is Victim for an explicit set index.
func (c *Cache) VictimInSet(setIdx int) int {
	if c.wide == nil {
		m := &c.meta[setIdx]
		if inv := ^m.valid & c.fullMask; inv != 0 {
			return bits.TrailingZeros64(inv)
		}
		return int(m.order >> (4 * uint(c.ways-1)) & 0xF)
	}
	if w := c.wideFirstInvalid(setIdx); w >= 0 {
		return w
	}
	return int(c.wide.tail[setIdx])
}

// Insert places a new line for block into its set at the given recency
// position, evicting whatever occupied the victim way. It returns the
// evicted line (State == Invalid if the way was free). The new line's
// State/Dirty/Spilled/Owner are taken from proto.
//
// The packed full-set case — the steady state once warmup has filled every
// way — is fused: the victim is by definition the LRU nibble, so no victim
// scan runs, and each insert position reduces to a constant nibble shuffle
// of the recency word (MRU: rotate everyone down one rank; LRU: the word is
// already correct; LRU-1: swap the two bottom ranks) instead of the general
// remove-and-reinsert in place.
func (c *Cache) Insert(block uint64, pos InsertPos, proto Line) (evicted Line) {
	si := int(block & c.setMask)
	if c.wide == nil {
		m := &c.meta[si]
		if inv := ^m.valid & c.fullMask; inv != 0 {
			return c.insertAt(si, bits.TrailingZeros64(inv), block, pos, proto)
		}
		o := m.order
		sh := 4 * uint(c.ways-1)
		w := int(o >> sh & 0xF)
		idx := si*c.stride + w
		evicted = c.lines[idx]
		proto.Tag = block
		c.lines[idx] = proto
		c.tags[idx] = block
		if proto.State == Invalid {
			m.valid &^= 1 << uint(w)
		}
		if c.dir != nil {
			c.dirReplace(evicted, block, proto.State != Invalid)
		}
		switch pos {
		case InsertMRU:
			m.order = (o<<4|uint64(w))&c.usedMask | c.unusedMask
		case InsertLRU:
			// The victim way is already at the LRU rank.
		case InsertLRU1:
			if c.ways >= 2 {
				// Swap the LRU and LRU-1 nibbles.
				swap := (o ^ o<<4) >> sh & 0xF // nonzero bits where they differ
				m.order = o ^ (swap<<sh | swap<<(sh-4))
			}
		default:
			panic(fmt.Sprintf("cachesim: unknown insert position %v", pos))
		}
		return evicted
	}
	return c.insertAt(si, c.VictimInSet(si), block, pos, proto)
}

// insertAt overwrites (si, w) with proto for block, refreshes the packed
// tag/valid mirrors and moves the way to the requested recency position.
func (c *Cache) insertAt(si, w int, block uint64, pos InsertPos, proto Line) (evicted Line) {
	idx := si*c.stride + w
	evicted = c.lines[idx]
	proto.Tag = block
	c.lines[idx] = proto
	c.tags[idx] = block
	if c.wide == nil {
		if proto.State != Invalid {
			c.meta[si].valid |= 1 << uint(w)
		} else {
			c.meta[si].valid &^= 1 << uint(w)
		}
	} else {
		c.wideSetLine(si, w, evicted, block, proto.State != Invalid)
	}
	if c.dir != nil {
		c.dirReplace(evicted, block, proto.State != Invalid)
	}
	c.place(si, w, pos)
	return evicted
}

// dirReplace is the directory maintenance hook shared by Insert's fused
// full-set path and insertAt: the line previously at the target way (evicted)
// has just been overwritten by block, whose new validity is newValid, and the
// tag/valid mirrors are already updated. A displaced block only loses its
// holder bit if no other way of this member still holds it (duplicate tags in
// one set arise only under fuzzer-driven op sequences, but must stay exact).
func (c *Cache) dirReplace(evicted Line, block uint64, newValid bool) {
	if evicted.Valid() && (evicted.Tag != block || !newValid) {
		if _, ok := c.Lookup(evicted.Tag); !ok {
			c.dir.remove(evicted.Tag, c.dirIdx)
		}
	}
	if newValid {
		c.dir.add(block, c.dirIdx)
	}
}

// place moves way w to the requested recency position.
func (c *Cache) place(setIdx, w int, pos InsertPos) {
	if c.wide == nil {
		o := c.meta[setIdx].order
		p := nibblePos(o, w)
		if p >= c.ways {
			panic(fmt.Sprintf("cachesim: way %d missing from stack of set %d", w, setIdx))
		}
		// Remove rank p (ranks above shift down) ...
		low := uint64(1)<<(4*uint(p)) - 1
		rem := o&low | (o>>4)&^low
		// ... and reinsert w at the target rank (ranks at/above shift up).
		t := 0
		switch pos {
		case InsertMRU:
			t = 0
		case InsertLRU:
			t = c.ways - 1
		case InsertLRU1:
			t = c.ways - 2
			if t < 0 {
				t = 0
			}
		default:
			panic(fmt.Sprintf("cachesim: unknown insert position %v", pos))
		}
		lowT := uint64(1)<<(4*uint(t)) - 1
		ins := rem&lowT | (rem&^lowT)<<4 | uint64(w)<<(4*uint(t))
		c.meta[setIdx].order = ins&c.usedMask | c.unusedMask
		return
	}
	ws := c.wide
	ws.unlink(setIdx, c.ways, w)
	switch pos {
	case InsertMRU:
		ws.pushFront(setIdx, c.ways, w)
	case InsertLRU:
		ws.pushBack(setIdx, c.ways, w)
	case InsertLRU1:
		ws.pushBeforeTail(setIdx, c.ways, w)
	default:
		panic(fmt.Sprintf("cachesim: unknown insert position %v", pos))
	}
}

// VictimAmong returns the victim way in setIdx restricted to ways for which
// allowed returns true: the first allowed invalid way, else the least
// recently used allowed way. It returns -1 if no way is allowed. Used by
// region-partitioned policies (ECC).
func (c *Cache) VictimAmong(setIdx int, allowed func(way int) bool) int {
	if c.wide == nil {
		for m := ^c.meta[setIdx].valid & c.fullMask; m != 0; m &= m - 1 {
			if w := bits.TrailingZeros64(m); allowed(w) {
				return w
			}
		}
		o := c.meta[setIdx].order
		for i := c.ways - 1; i >= 0; i-- {
			if w := int(o >> (4 * uint(i)) & 0xF); allowed(w) {
				return w
			}
		}
		return -1
	}
	ws := c.wide
	base := setIdx * c.stride
	// No invalid way exists below the free hint, so the hole scan may
	// start there.
	for w := int(ws.free[setIdx]); w < c.ways; w++ {
		if allowed(w) && c.lines[base+w].State == Invalid {
			return w
		}
	}
	lbase := setIdx * c.ways
	for w := ws.tail[setIdx]; w >= 0; w = ws.prev[lbase+int(w)] {
		if allowed(int(w)) {
			return int(w)
		}
	}
	return -1
}

// VictimDead picks a victim among the set's dead lines: the first invalid
// way, else the least-recently-used way whose line was never reused since
// insertion. If every valid line has been reused, it clears all the set's
// reuse bits (second-chance aging, so lines whose activity has ceased
// become eligible on a later attempt) and reports no victim. This is the
// guest-admission mechanism of the ASCC-family policies: spilled lines may
// only displace a receiver set's demonstrably dead lines.
func (c *Cache) VictimDead(setIdx int) (way int, ok bool) {
	base := setIdx * c.stride
	if c.wide == nil {
		if inv := ^c.meta[setIdx].valid & c.fullMask; inv != 0 {
			return bits.TrailingZeros64(inv), true
		}
		o := c.meta[setIdx].order
		for i := c.ways - 1; i >= 0; i-- {
			if w := int(o >> (4 * uint(i)) & 0xF); !c.lines[base+w].Reused {
				return w, true
			}
		}
		for w := 0; w < c.ways; w++ {
			c.lines[base+w].Reused = false
		}
		return -1, false
	}
	if w := c.wideFirstInvalid(setIdx); w >= 0 {
		return w, true
	}
	ws := c.wide
	lbase := setIdx * c.ways
	for w := ws.tail[setIdx]; w >= 0; w = ws.prev[lbase+int(w)] {
		if !c.lines[base+int(w)].Reused {
			return int(w), true
		}
	}
	for w := 0; w < c.ways; w++ {
		c.lines[base+w].Reused = false
	}
	return -1, false
}

// InsertWay places a new line for block into an explicit way of its set at
// the given recency position, returning the evicted line. The caller is
// responsible for choosing a way in block's set (e.g. via VictimAmong).
func (c *Cache) InsertWay(block uint64, way int, pos InsertPos, proto Line) (evicted Line) {
	return c.insertAt(int(block&c.setMask), way, block, pos, proto)
}

// Invalidate removes block from the cache if present, returning the line as
// it was (for writeback decisions). The way's stack slot moves to LRU so it
// is the immediate victim.
func (c *Cache) Invalidate(block uint64) (Line, bool) {
	si := int(block & c.setMask)
	w := c.probe(si, block)
	if w < 0 {
		return Line{}, false
	}
	idx := si*c.stride + w
	old := c.lines[idx]
	c.lines[idx] = Line{}
	c.tags[idx] = 0
	if c.wide == nil {
		c.meta[si].valid &^= 1 << uint(w)
	} else {
		c.wideSetLine(si, w, old, 0, false)
	}
	if c.dir != nil {
		if _, ok := c.Lookup(block); !ok {
			c.dir.remove(block, c.dirIdx)
		}
	}
	c.place(si, w, InsertLRU)
	return old, true
}

// CopyStateFrom overwrites c's entire observable state — tags, lines,
// recency orders, valid masks, statistics — with src's, without allocating.
// Both caches must have identical geometry and privately owned slabs (group
// members share a ganged slab and cannot be bulk-copied), and c must not be
// directory-tracked. The speculative burst engine in internal/cmp uses this
// to refresh a worker's private L1 clone from the live cache each turn.
func (c *Cache) CopyStateFrom(src *Cache) {
	if c.cfg != src.cfg || c.stride != src.stride {
		panic("cachesim: CopyStateFrom geometry mismatch")
	}
	if c.shared || src.shared {
		panic("cachesim: CopyStateFrom on a ganged-slab cache")
	}
	if c.dir != nil {
		panic("cachesim: CopyStateFrom into a directory-tracked cache")
	}
	copy(c.tags, src.tags)
	copy(c.lines, src.lines)
	copy(c.meta, src.meta)
	c.baseAccesses = src.baseAccesses
	c.baseMisses = src.baseMisses
	if c.wide != nil {
		d, s := c.wide, src.wide
		copy(d.next, s.next)
		copy(d.prev, s.prev)
		copy(d.head, s.head)
		copy(d.tail, s.tail)
		copy(d.nValid, s.nValid)
		copy(d.free, s.free)
		d.dups = s.dups
		// The index starts with capacity for every line and Go retains map
		// buckets across deletes, so clear-and-refill reaches a steady
		// state with no allocation.
		for k := range d.idx {
			delete(d.idx, k)
		}
		for k, v := range s.idx {
			d.idx[k] = v
		}
	}
}

// RecencyStack returns a copy of the set's recency stack, MRU first.
// Intended for tests and debugging; stats-heavy loops should reuse a buffer
// via AppendRecencyStack instead.
func (c *Cache) RecencyStack(setIdx int) []int {
	return c.AppendRecencyStack(setIdx, make([]int, 0, c.ways))
}

// AppendRecencyStack appends the set's recency order (MRU first) to buf and
// returns the extended slice. It performs no allocation when buf has
// capacity for Ways() more entries, so per-set scans can reuse one buffer:
//
//	buf := make([]int, 0, c.Ways())
//	for s := 0; s < c.NumSets(); s++ {
//		buf = c.AppendRecencyStack(s, buf[:0])
//		...
//	}
func (c *Cache) AppendRecencyStack(setIdx int, buf []int) []int {
	if ws := c.wide; ws != nil {
		lbase := setIdx * c.ways
		for w := ws.head[setIdx]; w >= 0; w = ws.next[lbase+int(w)] {
			buf = append(buf, int(w))
		}
		return buf
	}
	o := c.meta[setIdx].order
	for i := 0; i < c.ways; i++ {
		buf = append(buf, int(o>>(4*uint(i))&0xF))
	}
	return buf
}

// SetStatsFor returns the accumulated stats for one set (since the last
// ResetSetStats).
func (c *Cache) SetStatsFor(setIdx int) SetStats {
	m := &c.meta[setIdx]
	return SetStats{Hits: m.hits, Misses: m.misses}
}

// ResetSetStats zeroes all per-set statistics. Lifetime totals are
// preserved: the per-set counts are folded into the base counters first.
func (c *Cache) ResetSetStats() {
	for i := range c.meta {
		m := &c.meta[i]
		c.baseAccesses += m.hits + m.misses
		c.baseMisses += m.misses
		m.hits, m.misses = 0, 0
	}
}

// Totals returns lifetime accesses, hits and misses: the base counters plus
// the live per-set counts. The hot path maintains only the per-set counters;
// this sum is paid by the (cold) caller instead.
func (c *Cache) Totals() (accesses, hits, misses uint64) {
	accesses, misses = c.baseAccesses, c.baseMisses
	for i := range c.meta {
		m := &c.meta[i]
		accesses += m.hits + m.misses
		misses += m.misses
	}
	return accesses, accesses - misses, misses
}

// ResetTotals zeroes the lifetime counters and per-set stats.
func (c *Cache) ResetTotals() {
	c.baseAccesses, c.baseMisses = 0, 0
	for i := range c.meta {
		c.meta[i].hits, c.meta[i].misses = 0, 0
	}
}

// ValidLines counts valid lines in the whole cache (tests / occupancy
// metrics).
func (c *Cache) ValidLines() int {
	n := 0
	for si := 0; si < c.NumSets(); si++ {
		base := si * c.stride
		for w := 0; w < c.ways; w++ {
			if c.lines[base+w].Valid() {
				n++
			}
		}
	}
	return n
}

// ForEachLine calls fn for every valid line. Iteration order is
// deterministic (set-major, then way).
func (c *Cache) ForEachLine(fn func(setIdx, way int, l *Line)) {
	for si := 0; si < c.NumSets(); si++ {
		base := si * c.stride
		for w := 0; w < c.ways; w++ {
			if c.lines[base+w].Valid() {
				fn(si, w, &c.lines[base+w])
			}
		}
	}
}
