package cachesim

import "testing"

// TestSampledConfig pins the compact set remap of DESIGN.md §16: the
// sampled geometry keeps line size and associativity and allocates exactly
// 1/den of the sets (tag slab, recency state and directory shards shrink
// with it via the ordinary constructors).
func TestSampledConfig(t *testing.T) {
	base := Config{SizeBytes: 1 << 17, Ways: 8, LineBytes: 32} // 512 sets

	c, err := SampledConfig(base, 8)
	if err != nil {
		t.Fatal(err)
	}
	cache := New(c)
	if cache.NumSets() != 64 || cache.Ways() != 8 {
		t.Fatalf("sampled geometry %d sets x %d ways, want 64 x 8", cache.NumSets(), cache.Ways())
	}
	if c.LineBytes != base.LineBytes || c.Ways != base.Ways {
		t.Fatalf("sampling changed line size or associativity: %+v", c)
	}

	if c, err := SampledConfig(base, 1); err != nil || c != base {
		t.Fatalf("den<=1 must be the identity: %+v, %v", c, err)
	}
	if _, err := SampledConfig(base, 1024); err == nil {
		t.Fatal("accepted a denominator larger than the set count")
	}
	if _, err := SampledConfig(Config{SizeBytes: 1 << 10, Ways: 4, LineBytes: 32, FullyAssoc: true}, 2); err == nil {
		t.Fatal("accepted a fully associative cache")
	}
}
