// The ganged tag slab: a CacheGroup lays the tag rows of N same-geometry
// caches out set-interleaved (all members' ways for set i contiguous in
// memory), so cross-cache questions — "who holds block X", "is this the last
// on-chip copy", "invalidate every other copy" — are answered by one fused
// scan of a single contiguous row instead of N independent per-cache probes.
// The coherence engine in internal/cmp snoops every private L2 on every
// local miss, eviction and write upgrade; with the paper's 4 cores x 8 ways
// the whole ganged row is 4 host cache lines walked branch-free, where the
// un-ganged layout touched 4 scattered slabs through 4 probe calls.
package cachesim

import (
	"fmt"
	"math/bits"
)

// CacheGroup gangs n caches of identical geometry into one shared,
// set-interleaved tag/line slab. Each member is a fully functional *Cache —
// every single-cache operation (Access, Insert, Invalidate, ...) works
// unchanged and touches only that member's ways — while the group answers
// cross-member holder queries with a fused scan.
//
// The fused path requires every member row to fit one uint64 match mask
// (n x physical ways <= 64) and the members to use the packed recency
// kernel; other geometries transparently fall back to per-member probes, so
// callers never need to special-case.
type CacheGroup struct {
	members   []*Cache
	pw        int // physical ways per member set
	rowWays   int // n*pw: scanned (real) slab elements per ganged set row
	rowStride int // slab elements between consecutive rows (>= rowWays)
	setMask   uint64
	tags      []uint64
	fused     bool

	// dir, when non-nil, answers every holder-mask question from the
	// set-sharded directory (directory.go) instead of a row scan; the members
	// keep it current through their residency hooks. probes counts coherence
	// queries (holder mask, probe, demand-miss peer scan, invalidate-others)
	// at the same call sites in both modes, so directory and broadcast runs
	// of one workload report identical probe counts.
	dir    *Directory
	probes uint64
}

// groupRowStride pads the slab stride between consecutive ganged rows to an
// odd number of 64-byte host cache lines. The natural stride of the paper's
// geometry (4 cores x 8 ways x 8-byte tags = 256 B) is a power of two, which
// maps every member's per-set row onto a quarter of the host L1's index
// space — the classic conflict-miss pathology. An odd line count makes the
// row start addresses walk every host cache set.
func groupRowStride(rowWays int) int {
	lines := (rowWays + 7) / 8
	if lines%2 == 0 {
		lines++
	}
	return lines * 8
}

// NewGroup builds n ganged caches of identical geometry. It panics on
// invalid geometry or n <= 0 (construction happens at configuration time).
func NewGroup(n int, cfg Config) *CacheGroup {
	if n <= 0 || n > 64 {
		// Holder sets are uint64 bitmasks throughout the coherence engine;
		// past 64 members they would silently truncate.
		panic(fmt.Sprintf("cachesim: group of %d caches (must be 1..64)", n))
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets, pw, enabled := geometry(cfg)
	rowWays := n * pw
	rowStride := groupRowStride(rowWays)
	tags := make([]uint64, numSets*rowStride)
	lines := make([]Line, numSets*rowStride)
	g := &CacheGroup{
		members:   make([]*Cache, n),
		pw:        pw,
		rowWays:   rowWays,
		rowStride: rowStride,
		setMask:   uint64(numSets - 1),
		tags:      tags,
		fused:     rowWays <= 64 && enabled <= packedMaxWays,
	}
	for c := 0; c < n; c++ {
		// Member c's view starts pw elements after member c-1's: with the
		// shared row stride, its (set, way) index lands inside its own pw-wide
		// segment of set's row and never aliases a sibling's.
		g.members[c] = newCache(cfg, rowStride, tags[c*pw:], lines[c*pw:])
	}
	return g
}

// Size returns the number of caches in the group.
func (g *CacheGroup) Size() int { return len(g.members) }

// Cache returns member i.
func (g *CacheGroup) Cache(i int) *Cache { return g.members[i] }

// EnableDirectory switches the group's coherence queries from broadcast row
// scans to the set-sharded directory: existing contents are indexed, and
// from here on every member insert/invalidate keeps the holder entries
// current. Idempotent; answers are bit-identical to broadcast mode.
func (g *CacheGroup) EnableDirectory() {
	if g.dir != nil {
		return
	}
	d := newDirectory(int(g.setMask)+1, g.rowWays)
	for i, c := range g.members {
		c.dir = d
		c.dirIdx = i
		c.ForEachLine(func(_, _ int, l *Line) { d.add(l.Tag, i) })
	}
	g.dir = d
}

// DirectoryEnabled reports whether holder queries are directory-backed.
func (g *CacheGroup) DirectoryEnabled() bool { return g.dir != nil }

// Probes returns the number of coherence queries answered since construction
// (or the last ResetProbes). The counter is maintained at identical call
// sites in directory and broadcast mode.
func (g *CacheGroup) Probes() uint64 { return g.probes }

// ResetProbes zeroes the coherence probe counter.
func (g *CacheGroup) ResetProbes() { g.probes = 0 }

// HolderMask returns a bitmask of the members currently holding block (bit i
// set iff member i has a valid copy). With the directory enabled this is one
// bounded hash lookup in the block's set shard; on the fused broadcast path
// it is one scan of the block's ganged tag row plus a per-member AND against
// the valid words. Stale tags left behind by invalidations can never be
// counted in either mode.
func (g *CacheGroup) HolderMask(block uint64) uint64 {
	g.probes++
	return g.holderMask(block)
}

// holderMask is HolderMask without the probe accounting, for callers that
// already counted the query.
func (g *CacheGroup) holderMask(block uint64) uint64 {
	if g.dir != nil {
		return g.dir.holders(block)
	}
	if !g.fused {
		var m uint64
		for i, c := range g.members {
			if _, ok := c.Lookup(block); ok {
				m |= 1 << uint(i)
			}
		}
		return m
	}
	base := int(block&g.setMask) * g.rowStride
	row := g.tags[base : base+g.rowWays : base+g.rowWays]
	var match uint64
	o := 0
	for ; o+8 <= len(row); o += 8 {
		match |= matchMask(row[o:o+8:o+8], block) << uint(o)
	}
	for ; o < len(row); o++ {
		match |= b2u(row[o] == block) << uint(o)
	}
	if match == 0 {
		return 0
	}
	si := int(block & g.setMask)
	var hold uint64
	for c, pw := 0, g.pw; c < len(g.members); c++ {
		if match>>uint(c*pw)&g.members[c].meta[si].valid != 0 {
			hold |= 1 << uint(c)
		}
	}
	return hold
}

// LastCopy reports whether no member other than except holds block — the
// eviction path's "may this line leave the chip?" test, fused into a single
// row scan.
func (g *CacheGroup) LastCopy(block uint64, except int) bool {
	return g.HolderMask(block)&^(1<<uint(except)) == 0
}

// GroupProbe is one block's fused coherence answer: which members hold a
// valid copy, and the way of the copy inside the lowest-index holder (the
// member a demand miss would be served from). Way is -1 when Holders == 0.
type GroupProbe struct {
	Holders uint64
	Way     int8
}

// LastCopyFor reports whether the probe's holder set, minus member except,
// is empty — the batch-probe form of LastCopy.
func (p GroupProbe) LastCopyFor(except int) bool {
	return p.Holders&^(1<<uint(except)) == 0
}

// Probe answers one block's holder mask and first-holder way without
// touching any member state — HolderMask and the subsequent holder Lookup
// fused into the same row scan (or, with the directory, one hash lookup plus
// a single Lookup inside the lowest-index holder). The prefetch filter ("is
// this block on chip anywhere?") and the batch entry point below are built
// on it.
func (g *CacheGroup) Probe(block uint64) GroupProbe {
	g.probes++
	if g.dir != nil {
		pr := GroupProbe{Holders: g.dir.holders(block), Way: -1}
		if pr.Holders != 0 {
			if w, ok := g.members[bits.TrailingZeros64(pr.Holders)].Lookup(block); ok {
				pr.Way = int8(w)
			}
		}
		return pr
	}
	if !g.fused {
		pr := GroupProbe{Way: -1}
		for i, c := range g.members {
			if w, ok := c.Lookup(block); ok {
				if pr.Holders == 0 {
					pr.Way = int8(w)
				}
				pr.Holders |= 1 << uint(i)
			}
		}
		return pr
	}
	si := int(block & g.setMask)
	base := si * g.rowStride
	pr := GroupProbe{Way: -1}
	for c, pw := 0, g.pw; c < len(g.members); c++ {
		seg := g.tags[base+c*pw : base+c*pw+pw : base+c*pw+pw]
		if m := matchMask(seg, block) & g.members[c].meta[si].valid; m != 0 {
			if pr.Holders == 0 {
				pr.Way = int8(bits.TrailingZeros64(m))
			}
			pr.Holders |= 1 << uint(c)
		}
	}
	return pr
}

// ProbeBatch answers holder masks and last-copy verdicts (via
// GroupProbe.LastCopyFor) for a batch of blocks — up to a turn's worth of
// demand misses — in one pass over the ganged slab, one fused row scan per
// block. out must be at least len(blocks) long; the answers land in
// out[:len(blocks)]. Like Probe it reads no per-member recency or counter
// state, so a batch probe commutes with the per-block decision work that
// follows it as long as no member mutates between probe and use (the
// batched below-L1 engine in internal/cmp re-probes mutating sequences
// block by block through DemandAccess for exactly that reason).
func (g *CacheGroup) ProbeBatch(blocks []uint64, out []GroupProbe) {
	if len(blocks) == 0 {
		return
	}
	_ = out[len(blocks)-1]
	for i, b := range blocks {
		out[i] = g.Probe(b)
	}
}

// DemandAccess is member c's demand lookup fused with the miss path's
// coherence probe: it performs exactly c.Access(block) — hit/miss counters
// and the packed MRU touch included — and, on a miss, continues the same
// ganged-row scan across the peer segments, returning the peer holder mask
// and the way of the block inside the lowest-index holder (hway, -1 when no
// peer holds it). On a hit the peer segments are not read (holders and hway
// are 0 and -1): the hit path needs no coherence answer, and keeping it as
// cheap as Access is what lets the hot path use this unconditionally.
//
// For the coherence engine this replaces the Access -> HolderMask -> holder
// Lookup triple of the unbatched miss path with one pass over one row.
func (g *CacheGroup) DemandAccess(c int, block uint64) (way int, hit bool, holders uint64, hway int) {
	cache := g.members[c]
	if g.dir != nil {
		way, hit = cache.Access(block)
		if hit {
			return way, true, 0, -1
		}
		g.probes++
		holders = g.dir.holders(block) &^ (1 << uint(c))
		hway = -1
		if holders != 0 {
			if w, ok := g.members[bits.TrailingZeros64(holders)].Lookup(block); ok {
				hway = w
			}
		}
		return -1, false, holders, hway
	}
	if !g.fused || cache.wide != nil {
		way, hit = cache.Access(block)
		if hit {
			return way, true, 0, -1
		}
		g.probes++
		hway = -1
		for i, m := range g.members {
			if i == c {
				continue
			}
			if w, ok := m.Lookup(block); ok {
				if holders == 0 {
					hway = w
				}
				holders |= 1 << uint(i)
			}
		}
		return -1, false, holders, hway
	}
	si := int(block & g.setMask)
	m := &cache.meta[si]
	base := si * g.rowStride
	lbase := base + c*g.pw
	// Local segment: Access's open-coded packed fast path (cachesim.go).
	var match uint64
	switch cache.ways {
	case 8:
		t := g.tags[lbase : lbase+8 : lbase+8]
		match = b2u(t[0] == block) | b2u(t[1] == block)<<1 |
			b2u(t[2] == block)<<2 | b2u(t[3] == block)<<3 |
			b2u(t[4] == block)<<4 | b2u(t[5] == block)<<5 |
			b2u(t[6] == block)<<6 | b2u(t[7] == block)<<7
	case 4:
		t := g.tags[lbase : lbase+4 : lbase+4]
		match = b2u(t[0] == block) | b2u(t[1] == block)<<1 |
			b2u(t[2] == block)<<2 | b2u(t[3] == block)<<3
	default:
		match = matchMask(g.tags[lbase:lbase+cache.ways:lbase+cache.ways], block)
	}
	if match &= m.valid; match != 0 {
		w := bits.TrailingZeros64(match)
		m.hits++
		o := m.order
		p := nibblePos(o, w)
		low := uint64(1)<<(4*uint(p)) - 1
		hi := ^uint64(0) << (4 * uint(p+1))
		m.order = o&hi | (o&low)<<4 | uint64(w)
		return w, true, 0, -1
	}
	m.misses++
	g.probes++
	hway = -1
	for r, pw := 0, g.pw; r < len(g.members); r++ {
		if r == c {
			continue
		}
		seg := g.tags[base+r*pw : base+r*pw+pw : base+r*pw+pw]
		if pm := matchMask(seg, block) & g.members[r].meta[si].valid; pm != 0 {
			if holders == 0 {
				hway = bits.TrailingZeros64(pm)
			}
			holders |= 1 << uint(r)
		}
	}
	return -1, false, holders, hway
}

// InvalidateOthers removes block from every member except `except` and
// returns the mask of members that held it — the MESI write-upgrade
// primitive. One fused scan (or directory lookup) finds the holders; only
// those members then run their (set-local) invalidation, so the chain costs
// O(holders) regardless of group size.
func (g *CacheGroup) InvalidateOthers(block uint64, except int) uint64 {
	g.probes++
	held := g.holderMask(block) &^ (1 << uint(except))
	for m := held; m != 0; m &= m - 1 {
		g.members[bits.TrailingZeros64(m)].Invalidate(block)
	}
	return held
}
