package cachesim

import (
	"testing"
	"testing/quick"

	"ascc/internal/rng"
)

func smallCache() *Cache {
	// 4 sets x 4 ways x 32B lines = 512B.
	return New(Config{SizeBytes: 512, Ways: 4, LineBytes: 32})
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{SizeBytes: 1 << 20, Ways: 8, LineBytes: 32}, true},
		{Config{SizeBytes: 512, Ways: 4, LineBytes: 32}, true},
		{Config{SizeBytes: 512, Ways: 4, LineBytes: 32, EnabledWays: 2}, true},
		{Config{SizeBytes: 512, Ways: 4, LineBytes: 32, FullyAssoc: true}, true},
		{Config{SizeBytes: 0, Ways: 4, LineBytes: 32}, false},
		{Config{SizeBytes: 512, Ways: 0, LineBytes: 32}, false},
		{Config{SizeBytes: 512, Ways: 4, LineBytes: 33}, false},
		{Config{SizeBytes: 500, Ways: 4, LineBytes: 32}, false},
		{Config{SizeBytes: 512, Ways: 5, LineBytes: 32}, false},
		{Config{SizeBytes: 512, Ways: 4, LineBytes: 32, EnabledWays: 5}, false},
		{Config{SizeBytes: 512, Ways: 4, LineBytes: 32, EnabledWays: -1}, false},
		// 3*32B lines per set => 12 sets, not a power of two.
		{Config{SizeBytes: 384, Ways: 1, LineBytes: 32}, false},
	}
	for i, tc := range cases {
		err := tc.cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("case %d (%+v): err=%v, want ok=%v", i, tc.cfg, err, tc.ok)
		}
	}
}

func TestGeometry(t *testing.T) {
	c := New(Config{SizeBytes: 1 << 20, Ways: 8, LineBytes: 32})
	if c.NumSets() != 4096 {
		t.Fatalf("1MB/8way/32B cache has %d sets, want 4096", c.NumSets())
	}
	if c.Ways() != 8 {
		t.Fatalf("ways = %d, want 8", c.Ways())
	}
	fa := New(Config{SizeBytes: 1 << 10, Ways: 8, LineBytes: 32, FullyAssoc: true})
	if fa.NumSets() != 1 || fa.Ways() != 32 {
		t.Fatalf("fully associative: sets=%d ways=%d, want 1/32", fa.NumSets(), fa.Ways())
	}
}

func TestMissThenHit(t *testing.T) {
	c := smallCache()
	if _, hit := c.Access(0x100); hit {
		t.Fatal("access to empty cache hit")
	}
	c.Insert(0x100, InsertMRU, Line{State: Exclusive})
	if _, hit := c.Access(0x100); !hit {
		t.Fatal("access after insert missed")
	}
	acc, hits, misses := c.Totals()
	if acc != 2 || hits != 1 || misses != 1 {
		t.Fatalf("totals = %d/%d/%d, want 2/1/1", acc, hits, misses)
	}
}

func TestSetIndexMapping(t *testing.T) {
	c := smallCache() // 4 sets
	for block := uint64(0); block < 64; block++ {
		if got, want := c.SetIndex(block), int(block%4); got != want {
			t.Fatalf("SetIndex(%d) = %d, want %d", block, got, want)
		}
	}
}

func TestLRUReplacementOrder(t *testing.T) {
	c := smallCache()
	// Fill set 0 with blocks 0,4,8,12 (all map to set 0).
	for i := uint64(0); i < 4; i++ {
		c.Access(i * 4)
		c.Insert(i*4, InsertMRU, Line{State: Exclusive})
	}
	// Touch block 0 so block 4 becomes LRU.
	c.Access(0)
	ev := c.Insert(16, InsertMRU, Line{State: Exclusive})
	if ev.Tag != 4 || !ev.Valid() {
		t.Fatalf("evicted tag %d (valid=%v), want 4", ev.Tag, ev.Valid())
	}
}

func TestInsertLRUPositionEvictedFirst(t *testing.T) {
	c := smallCache()
	for i := uint64(0); i < 4; i++ {
		c.Insert(i*4, InsertMRU, Line{State: Exclusive})
	}
	// Insert at LRU: it evicts the old LRU (block 0) and the new line is
	// itself next in line for eviction.
	ev := c.Insert(16, InsertLRU, Line{State: Exclusive})
	if ev.Tag != 0 {
		t.Fatalf("evicted %d, want 0", ev.Tag)
	}
	ev = c.Insert(20, InsertMRU, Line{State: Exclusive})
	if ev.Tag != 16 {
		t.Fatalf("evicted %d, want the LRU-inserted 16", ev.Tag)
	}
}

func TestInsertLRU1Position(t *testing.T) {
	c := smallCache()
	for i := uint64(0); i < 4; i++ {
		c.Insert(i*4, InsertMRU, Line{State: Exclusive})
	}
	// Recency stack is now [12 8 4 0]. Insert 16 at LRU-1: evicts 0, stack
	// becomes [12 8 16 4] => next victim is 4, then 16.
	ev := c.Insert(16, InsertLRU1, Line{State: Exclusive})
	if ev.Tag != 0 {
		t.Fatalf("evicted %d, want 0", ev.Tag)
	}
	ev = c.Insert(20, InsertMRU, Line{State: Exclusive})
	if ev.Tag != 4 {
		t.Fatalf("evicted %d, want 4 (LRU), not the LRU-1 inserted line", ev.Tag)
	}
	ev = c.Insert(24, InsertMRU, Line{State: Exclusive})
	if ev.Tag != 16 {
		t.Fatalf("evicted %d, want 16", ev.Tag)
	}
}

func TestInvalidate(t *testing.T) {
	c := smallCache()
	c.Insert(0x40, InsertMRU, Line{State: Modified, Dirty: true})
	old, ok := c.Invalidate(0x40)
	if !ok || !old.Dirty || old.State != Modified {
		t.Fatalf("invalidate returned %+v ok=%v", old, ok)
	}
	if _, ok := c.Lookup(0x40); ok {
		t.Fatal("line still present after invalidate")
	}
	if _, ok := c.Invalidate(0x40); ok {
		t.Fatal("double invalidate reported success")
	}
	// The freed way must be the next victim.
	c.Insert(0x44, InsertMRU, Line{State: Exclusive})
	if c.ValidLines() != 1 {
		t.Fatalf("valid lines = %d, want 1", c.ValidLines())
	}
}

func TestEnabledWaysRestrictCapacity(t *testing.T) {
	c := New(Config{SizeBytes: 512, Ways: 4, LineBytes: 32, EnabledWays: 2})
	if c.Ways() != 2 {
		t.Fatalf("enabled ways = %d, want 2", c.Ways())
	}
	c.Insert(0, InsertMRU, Line{State: Exclusive})
	c.Insert(4, InsertMRU, Line{State: Exclusive})
	ev := c.Insert(8, InsertMRU, Line{State: Exclusive})
	if ev.Tag != 0 || !ev.Valid() {
		t.Fatalf("2-way set evicted %+v, want block 0", ev)
	}
}

func TestFullyAssociativeNoConflicts(t *testing.T) {
	// 8-line fully associative cache: any 8 blocks coexist.
	c := New(Config{SizeBytes: 256, Ways: 4, LineBytes: 32, FullyAssoc: true})
	for i := uint64(0); i < 8; i++ {
		c.Insert(i*1024, InsertMRU, Line{State: Exclusive})
	}
	if c.ValidLines() != 8 {
		t.Fatalf("valid lines = %d, want 8", c.ValidLines())
	}
	for i := uint64(0); i < 8; i++ {
		if _, hit := c.Access(i * 1024); !hit {
			t.Fatalf("block %d missing in fully associative cache", i)
		}
	}
}

func TestPerSetStats(t *testing.T) {
	c := smallCache()
	c.Access(0) // miss set 0
	c.Insert(0, InsertMRU, Line{State: Exclusive})
	c.Access(0) // hit set 0
	c.Access(1) // miss set 1
	s0, s1 := c.SetStatsFor(0), c.SetStatsFor(1)
	if s0.Hits != 1 || s0.Misses != 1 {
		t.Fatalf("set0 stats %+v, want 1 hit 1 miss", s0)
	}
	if s1.Hits != 0 || s1.Misses != 1 {
		t.Fatalf("set1 stats %+v, want 0 hits 1 miss", s1)
	}
	c.ResetSetStats()
	if s := c.SetStatsFor(0); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
}

// stackInvariant verifies the recency stack is a permutation of the enabled
// ways.
func stackInvariant(c *Cache, setIdx int) bool {
	st := c.RecencyStack(setIdx)
	if len(st) != c.Ways() {
		return false
	}
	seen := make(map[int]bool, len(st))
	for _, w := range st {
		if w < 0 || w >= c.Ways() || seen[w] {
			return false
		}
		seen[w] = true
	}
	return true
}

func TestRecencyStackPermutationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := smallCache()
		positions := []InsertPos{InsertMRU, InsertLRU, InsertLRU1}
		for i := 0; i < 500; i++ {
			block := uint64(r.Intn(64))
			switch r.Intn(4) {
			case 0, 1:
				if _, hit := c.Access(block); !hit {
					c.Insert(block, positions[r.Intn(3)], Line{State: Exclusive})
				}
			case 2:
				c.Invalidate(block)
			case 3:
				if w, ok := c.Lookup(block); ok {
					c.Touch(c.SetIndex(block), w)
				}
			}
			for s := 0; s < c.NumSets(); s++ {
				if !stackInvariant(c, s) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNoDuplicateTagsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := smallCache()
		for i := 0; i < 400; i++ {
			block := uint64(r.Intn(32))
			if _, hit := c.Access(block); !hit {
				c.Insert(block, InsertMRU, Line{State: Exclusive})
			}
			// Check for duplicate tags within each set.
			dup := false
			tags := map[uint64]int{}
			c.ForEachLine(func(si, w int, l *Line) {
				key := l.Tag
				if prev, ok := tags[key]; ok && prev == si {
					dup = true
				}
				tags[key] = si
			})
			if dup {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHitRateOfLoopFittingInCache(t *testing.T) {
	// A loop over exactly the cache capacity under MRU insertion must hit
	// after the first pass.
	c := smallCache() // 16 lines
	misses := 0
	for pass := 0; pass < 10; pass++ {
		for b := uint64(0); b < 16; b++ {
			if _, hit := c.Access(b); !hit {
				misses++
				c.Insert(b, InsertMRU, Line{State: Exclusive})
			}
		}
	}
	if misses != 16 {
		t.Fatalf("misses = %d, want 16 (cold only)", misses)
	}
}

func TestThrashingLoopLRUvsBIPStyle(t *testing.T) {
	// A cyclic loop of 1.5x capacity thrashes under MRU insertion (0 hits
	// after cold) but retains part of the working set under LRU insertion.
	const blocks = 24 // capacity is 16 lines
	run := func(pos InsertPos, bip bool, r *rng.Xoshiro256) (hits int) {
		c := smallCache()
		for pass := 0; pass < 40; pass++ {
			for b := uint64(0); b < blocks; b++ {
				if _, hit := c.Access(b); hit {
					hits++
				} else {
					p := pos
					if bip && r.Bernoulli(1.0/32.0) {
						p = InsertMRU
					}
					c.Insert(b, p, Line{State: Exclusive})
				}
			}
		}
		return hits
	}
	r := rng.New(42)
	lruHits := run(InsertMRU, false, r)
	bipHits := run(InsertLRU, true, r)
	if bipHits <= lruHits {
		t.Fatalf("BIP-style insertion (%d hits) should beat MRU insertion (%d hits) on a thrashing loop", bipHits, lruHits)
	}
}

func TestInsertReturnsInvalidWhenWayFree(t *testing.T) {
	c := smallCache()
	ev := c.Insert(0, InsertMRU, Line{State: Exclusive})
	if ev.Valid() {
		t.Fatalf("insert into empty set evicted %+v", ev)
	}
}

func TestOwnerAndSpilledPreserved(t *testing.T) {
	c := smallCache()
	c.Insert(0, InsertMRU, Line{State: Modified, Dirty: true, Spilled: true, Owner: 3})
	w, ok := c.Lookup(0)
	if !ok {
		t.Fatal("line missing")
	}
	l := c.Line(c.SetIndex(0), w)
	if !l.Spilled || l.Owner != 3 || !l.Dirty || l.State != Modified {
		t.Fatalf("line metadata lost: %+v", *l)
	}
}

func TestLineStateString(t *testing.T) {
	for st, want := range map[LineState]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"} {
		if st.String() != want {
			t.Errorf("state %d string %q, want %q", st, st.String(), want)
		}
	}
	if InsertMRU.String() != "MRU" || InsertLRU.String() != "LRU" || InsertLRU1.String() != "LRU-1" {
		t.Error("InsertPos names wrong")
	}
}

func TestVictimAmong(t *testing.T) {
	c := smallCache()
	for i := uint64(0); i < 4; i++ {
		c.Insert(i*4, InsertMRU, Line{State: Exclusive}) // fills ways 0..3, LRU = way 0
	}
	// Restrict to ways 2,3: way with block 8 (way 2) is older than way 3.
	v := c.VictimAmong(0, func(w int) bool { return w >= 2 })
	if v != 2 {
		t.Fatalf("victim among ways>=2 = %d, want 2 (LRU of the allowed)", v)
	}
	// No allowed ways.
	if v := c.VictimAmong(0, func(w int) bool { return false }); v != -1 {
		t.Fatalf("victim among none = %d, want -1", v)
	}
	// Invalid allowed way is preferred.
	c.Invalidate(12) // way 3
	if v := c.VictimAmong(0, func(w int) bool { return w >= 2 }); v != 3 {
		t.Fatalf("victim = %d, want invalid way 3", v)
	}
}

func TestVictimDeadPrefersInvalidThenUnreused(t *testing.T) {
	c := smallCache()
	// Two valid lines (one reused), two invalid ways.
	c.Insert(0, InsertMRU, Line{State: Exclusive, Reused: true})
	c.Insert(4, InsertMRU, Line{State: Exclusive})
	w, ok := c.VictimDead(0)
	if !ok {
		t.Fatal("no dead victim despite invalid ways")
	}
	if c.Line(0, w).Valid() {
		t.Fatalf("dead victim way %d is valid; invalid ways exist", w)
	}
	// Fill the set: victims must be the unreused line.
	c.Insert(8, InsertMRU, Line{State: Exclusive, Reused: true})
	c.Insert(12, InsertMRU, Line{State: Exclusive, Reused: true})
	w, ok = c.VictimDead(0)
	if !ok {
		t.Fatal("no dead victim despite an unreused line")
	}
	if got := c.Line(0, w).Tag; got != 4 {
		t.Fatalf("dead victim is block %d, want the unreused block 4", got)
	}
}

func TestVictimDeadSecondChance(t *testing.T) {
	c := smallCache()
	for i := uint64(0); i < 4; i++ {
		c.Insert(i*4, InsertMRU, Line{State: Exclusive, Reused: true})
	}
	// All lines reused: rejection plus a wholesale reuse-bit clear.
	if _, ok := c.VictimDead(0); ok {
		t.Fatal("found a dead victim in a fully live set")
	}
	// Second attempt: the clear made every line eligible; LRU order applies.
	w, ok := c.VictimDead(0)
	if !ok {
		t.Fatal("second chance did not open the set")
	}
	if got := c.Line(0, w).Tag; got != 0 {
		t.Fatalf("second-chance victim %d, want LRU block 0", got)
	}
	// A line re-touched after the clear is protected again.
	c.Line(0, w).Reused = true
	w2, ok := c.VictimDead(0)
	if !ok || w2 == w {
		t.Fatalf("re-protected line still chosen (way %d, ok=%v)", w2, ok)
	}
}

func TestInsertWay(t *testing.T) {
	c := smallCache()
	for i := uint64(0); i < 4; i++ {
		c.Insert(i*4, InsertMRU, Line{State: Exclusive})
	}
	ev := c.InsertWay(16, 1, InsertMRU, Line{State: Exclusive, Spilled: true})
	if ev.Tag != 4 {
		t.Fatalf("InsertWay evicted %d, want the occupant of way 1 (block 4)", ev.Tag)
	}
	w, ok := c.Lookup(16)
	if !ok || w != 1 {
		t.Fatalf("block 16 at way %d ok=%v, want way 1", w, ok)
	}
	if !stackInvariant(c, 0) {
		t.Fatal("recency stack corrupted by InsertWay")
	}
	// MRU insertion means it is the last of the four to be evicted.
	st := c.RecencyStack(0)
	if st[0] != 1 {
		t.Fatalf("way 1 not MRU after InsertWay: stack %v", st)
	}
}
