// Differential verification of the packed cache kernel against the frozen
// reference implementation in internal/cachesim/refmodel.
//
// Both kernels are driven with identical operation sequences decoded from a
// byte stream: every operation's return values must match, and the full
// observable state — recency stacks, line contents, per-set statistics and
// lifetime totals — is compared after every operation. The fuzzer explores
// the op space from the seed corpus under testdata/fuzz; the property test
// replays long pseudo-random sequences on every plain `go test` run.
package cachesim_test

import (
	"fmt"
	"testing"

	"ascc/internal/cachesim"
	"ascc/internal/cachesim/refmodel"
	"ascc/internal/rng"
)

// diffConfigs are the geometries the differential tests cycle through. They
// cover every kernel path: packed sets of 1..16 ways, partially enabled
// sets (Figure 1's way-disabling study), sets wider than the 16-nibble
// recency word (the wide fallback) and fully associative caches on both
// sides of the packed-width boundary.
var diffConfigs = []cachesim.Config{
	{SizeBytes: 4 * 64, Ways: 1, LineBytes: 64},                     // 4 sets x 1 way
	{SizeBytes: 2 * 2 * 64, Ways: 2, LineBytes: 64},                 // 2 sets x 2 ways
	{SizeBytes: 8 * 4 * 64, Ways: 4, LineBytes: 64},                 // 8 sets x 4 ways (an L1 shape)
	{SizeBytes: 4 * 8 * 64, Ways: 8, LineBytes: 64},                 // 4 sets x 8 ways (the L2 shape)
	{SizeBytes: 2 * 16 * 64, Ways: 16, LineBytes: 64},               // full packed width
	{SizeBytes: 4 * 8 * 64, Ways: 8, LineBytes: 64, EnabledWays: 5}, // partially disabled
	{SizeBytes: 2 * 16 * 64, Ways: 16, LineBytes: 64, EnabledWays: 3},
	{SizeBytes: 32 * 64, Ways: 32, LineBytes: 64},                  // 1 set x 32 ways: wide path
	{SizeBytes: 20 * 64, Ways: 1, LineBytes: 64, FullyAssoc: true}, // fully assoc, wide path
	{SizeBytes: 12 * 64, Ways: 1, LineBytes: 64, FullyAssoc: true}, // fully assoc, packed path
}

// pair drives the kernel under test and the oracle in lockstep.
type pair struct {
	t    *testing.T
	dut  *cachesim.Cache
	ref  *refmodel.Cache
	sets int
	ways int
	// scratch buffers for stack comparison (exercises AppendRecencyStack's
	// no-allocation contract as a side effect).
	dutStack, refStack []int
}

func newPair(t *testing.T, cfg cachesim.Config) *pair {
	dut := cachesim.New(cfg)
	ref := refmodel.New(cfg)
	if dut.NumSets() != ref.NumSets() || dut.Ways() != ref.Ways() {
		t.Fatalf("geometry mismatch: dut %d sets x %d ways, ref %d sets x %d ways",
			dut.NumSets(), dut.Ways(), ref.NumSets(), ref.Ways())
	}
	return &pair{
		t: t, dut: dut, ref: ref,
		sets:     dut.NumSets(),
		ways:     dut.Ways(),
		dutStack: make([]int, 0, dut.Ways()),
		refStack: make([]int, 0, dut.Ways()),
	}
}

// checkState compares every piece of observable cache state.
func (p *pair) checkState(op string) {
	p.t.Helper()
	for s := 0; s < p.sets; s++ {
		p.dutStack = p.dut.AppendRecencyStack(s, p.dutStack[:0])
		p.refStack = p.ref.AppendRecencyStack(s, p.refStack[:0])
		if len(p.dutStack) != len(p.refStack) {
			p.t.Fatalf("after %s: set %d stack lengths differ: dut %v ref %v", op, s, p.dutStack, p.refStack)
		}
		for i := range p.dutStack {
			if p.dutStack[i] != p.refStack[i] {
				p.t.Fatalf("after %s: set %d recency stacks differ: dut %v ref %v", op, s, p.dutStack, p.refStack)
			}
		}
		if ds, rs := p.dut.SetStatsFor(s), p.ref.SetStatsFor(s); ds != rs {
			p.t.Fatalf("after %s: set %d stats differ: dut %+v ref %+v", op, s, ds, rs)
		}
		for w := 0; w < p.ways; w++ {
			if dl, rl := *p.dut.Line(s, w), *p.ref.Line(s, w); dl != rl {
				p.t.Fatalf("after %s: line (%d,%d) differs: dut %+v ref %+v", op, s, w, dl, rl)
			}
		}
	}
	da, dh, dm := p.dut.Totals()
	ra, rh, rm := p.ref.Totals()
	if da != ra || dh != rh || dm != rm {
		p.t.Fatalf("after %s: totals differ: dut (%d,%d,%d) ref (%d,%d,%d)", op, da, dh, dm, ra, rh, rm)
	}
	if dv, rv := p.dut.ValidLines(), p.ref.ValidLines(); dv != rv {
		p.t.Fatalf("after %s: valid-line counts differ: dut %d ref %d", op, dv, rv)
	}
}

// opStream decodes operations from a byte cursor; it hands out zero once
// exhausted so every input is a valid (finite) program.
type opStream struct {
	data []byte
	pos  int
}

func (o *opStream) next() byte {
	if o.pos >= len(o.data) {
		return 0
	}
	b := o.data[o.pos]
	o.pos++
	return b
}

func (o *opStream) done() bool { return o.pos >= len(o.data) }

// proto builds an insertion prototype from two stream bytes. State may be
// Invalid: inserting an invalid line is how a policy models reserving a way
// without filling it, and it stresses the valid-mask bookkeeping.
func (o *opStream) proto() cachesim.Line {
	fl := o.next()
	return cachesim.Line{
		State:    cachesim.LineState(fl & 3),
		Dirty:    fl&4 != 0,
		Spilled:  fl&8 != 0,
		Prefetch: fl&16 != 0,
		Reused:   fl&32 != 0,
		Owner:    int16(o.next() & 3),
	}
}

// runDiff decodes data as an op sequence over cfg and drives both kernels,
// failing on the first observable divergence.
func runDiff(t *testing.T, cfg cachesim.Config, data []byte) {
	p := newPair(t, cfg)
	ops := &opStream{data: data}
	for !ops.done() {
		switch op := ops.next() % 10; op {
		case 0, 1: // Access (weighted x2: it dominates real traffic)
			blk := uint64(ops.next())
			dw, dh := p.dut.Access(blk)
			rw, rh := p.ref.Access(blk)
			if dw != rw || dh != rh {
				t.Fatalf("Access(%d): dut (%d,%v) ref (%d,%v)", blk, dw, dh, rw, rh)
			}
			p.checkState("Access")
		case 2: // Insert
			blk := uint64(ops.next())
			pos := cachesim.InsertPos(ops.next() % 3)
			pr := ops.proto()
			if de, re := p.dut.Insert(blk, pos, pr), p.ref.Insert(blk, pos, pr); de != re {
				t.Fatalf("Insert(%d,%v): evicted dut %+v ref %+v", blk, pos, de, re)
			}
			p.checkState("Insert")
		case 3: // InsertWay
			blk := uint64(ops.next())
			way := int(ops.next()) % p.ways
			pos := cachesim.InsertPos(ops.next() % 3)
			pr := ops.proto()
			if de, re := p.dut.InsertWay(blk, way, pos, pr), p.ref.InsertWay(blk, way, pos, pr); de != re {
				t.Fatalf("InsertWay(%d,%d,%v): evicted dut %+v ref %+v", blk, way, pos, de, re)
			}
			p.checkState("InsertWay")
		case 4: // Victim / VictimInSet (pure)
			blk := uint64(ops.next())
			if dv, rv := p.dut.Victim(blk), p.ref.Victim(blk); dv != rv {
				t.Fatalf("Victim(%d): dut %d ref %d", blk, dv, rv)
			}
		case 5: // VictimAmong with a deterministic allowed set
			si := int(ops.next()) % p.sets
			mask := ops.next()
			allowed := func(w int) bool { return mask>>(w%8)&1 == 1 }
			if dv, rv := p.dut.VictimAmong(si, allowed), p.ref.VictimAmong(si, allowed); dv != rv {
				t.Fatalf("VictimAmong(%d,%08b): dut %d ref %d", si, mask, dv, rv)
			}
		case 6: // VictimDead (mutates reuse bits when every line was reused)
			si := int(ops.next()) % p.sets
			dw, dok := p.dut.VictimDead(si)
			rw, rok := p.ref.VictimDead(si)
			if dw != rw || dok != rok {
				t.Fatalf("VictimDead(%d): dut (%d,%v) ref (%d,%v)", si, dw, dok, rw, rok)
			}
			p.checkState("VictimDead")
		case 7: // Invalidate
			blk := uint64(ops.next())
			dl, dok := p.dut.Invalidate(blk)
			rl, rok := p.ref.Invalidate(blk)
			if dl != rl || dok != rok {
				t.Fatalf("Invalidate(%d): dut (%+v,%v) ref (%+v,%v)", blk, dl, dok, rl, rok)
			}
			p.checkState("Invalidate")
		case 8: // Touch
			si := int(ops.next()) % p.sets
			way := int(ops.next()) % p.ways
			p.dut.Touch(si, way)
			p.ref.Touch(si, way)
			p.checkState("Touch")
		case 9: // coherence-style flag mutation through the Line pointer
			si := int(ops.next()) % p.sets
			way := int(ops.next()) % p.ways
			fl := ops.next()
			dl, rl := p.dut.Line(si, way), p.ref.Line(si, way)
			if *dl != *rl {
				t.Fatalf("Line(%d,%d): dut %+v ref %+v", si, way, *dl, *rl)
			}
			if dl.Valid() {
				// The coherence engine flips flags and moves between the
				// valid MESI states, but never invalidates through the
				// pointer (that is Invalidate's job) — mirror that here.
				st := cachesim.LineState(1 + fl&1)
				if fl&2 != 0 {
					st = cachesim.Modified
				}
				dl.State, rl.State = st, st
				dl.Dirty, rl.Dirty = fl&4 != 0, fl&4 != 0
				dl.Reused, rl.Reused = fl&8 != 0, fl&8 != 0
				dl.Prefetch, rl.Prefetch = fl&16 != 0, fl&16 != 0
			}
			p.checkState("LineMutate")
		}
	}
	p.checkState("final")
}

// FuzzKernelEquivalence fuzzes op sequences over all geometries: the first
// byte selects the configuration, the rest is the op program. Run bounded
// as a smoke test with
//
//	go test ./internal/cachesim -run '^$' -fuzz FuzzKernelEquivalence -fuzztime 10s
func FuzzKernelEquivalence(f *testing.F) {
	f.Add([]byte{3, 0, 10, 0, 20, 2, 30, 0, 5, 1, 0, 10})
	f.Add([]byte{0, 2, 7, 0, 17, 2, 7, 1, 33, 7, 7, 6, 0})
	f.Add([]byte{7, 0, 1, 0, 2, 0, 3, 2, 4, 0, 5, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		// Full-state comparison after every op makes long programs slow;
		// capping the program keeps each exec bounded without losing
		// coverage (the interesting structure is in op interleaving, not
		// length).
		if len(data) > 4096 {
			data = data[:4096]
		}
		cfg := diffConfigs[int(data[0])%len(diffConfigs)]
		runDiff(t, cfg, data[1:])
	})
}

// TestKernelEquivalence replays long pseudo-random op sequences over every
// geometry on plain `go test` runs, so the differential check does not
// depend on anyone running the fuzzer.
func TestKernelEquivalence(t *testing.T) {
	for ci, cfg := range diffConfigs {
		ci, cfg := ci, cfg
		name := fmt.Sprintf("%dB_%dway_en%d_fa%v", cfg.SizeBytes, cfg.Ways, cfg.EnabledWays, cfg.FullyAssoc)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			r := rng.New(uint64(0xA5CC + ci))
			data := make([]byte, 20_000)
			for i := range data {
				data[i] = byte(r.Uint64())
			}
			runDiff(t, cfg, data)
		})
	}
}
