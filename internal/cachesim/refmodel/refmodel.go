// Package refmodel is the straightforward reference implementation of the
// set-associative cache model: per-set []cachesim.Line slices probed with a
// linear scan and true-LRU recency kept as an explicit []int stack that is
// spliced on every touch.
//
// It is the original internal/cachesim implementation, frozen verbatim when
// the hot kernel was rewritten around packed words. It is *the oracle*: the
// differential fuzzer and the property tests in internal/cachesim drive a
// refmodel.Cache and a cachesim.Cache with identical operation sequences
// and require identical evictions, recency order and statistics. Keep this
// package dumb and obvious — its only job is to be easy to believe.
//
// The exported types (Config, Line, InsertPos, SetStats, ...) are shared
// with package cachesim so sequences and results compare directly.
package refmodel

import (
	"fmt"

	"ascc/internal/cachesim"
)

// set is one associativity set with a true-LRU recency stack. stack[0] is
// the MRU way index; stack[len-1] the LRU.
type set struct {
	lines []cachesim.Line
	stack []int
}

// Cache is the reference set-associative cache.
type Cache struct {
	cfg      cachesim.Config
	sets     []set
	setMask  uint64
	ways     int // enabled ways
	stats    []cachesim.SetStats
	hits     uint64
	misses   uint64
	accesses uint64
}

// New builds a reference cache from cfg. It panics on invalid geometry,
// exactly like cachesim.New.
func New(cfg cachesim.Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	numSets := 1
	ways := lines
	if !cfg.FullyAssoc {
		numSets = lines / cfg.Ways
		ways = cfg.Ways
	}
	enabled := ways
	if !cfg.FullyAssoc && cfg.EnabledWays > 0 {
		enabled = cfg.EnabledWays
	}
	c := &Cache{
		cfg:     cfg,
		sets:    make([]set, numSets),
		setMask: uint64(numSets - 1),
		ways:    enabled,
		stats:   make([]cachesim.SetStats, numSets),
	}
	for i := range c.sets {
		c.sets[i].lines = make([]cachesim.Line, ways)
		c.sets[i].stack = make([]int, enabled)
		for w := 0; w < enabled; w++ {
			c.sets[i].stack[w] = w
		}
	}
	return c
}

// Config returns the cache's geometry.
func (c *Cache) Config() cachesim.Config { return c.cfg }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return len(c.sets) }

// Ways returns the number of enabled ways per set.
func (c *Cache) Ways() int { return c.ways }

// SetIndex maps a block address to its set.
func (c *Cache) SetIndex(block uint64) int { return int(block & c.setMask) }

// Lookup finds block without changing any state.
func (c *Cache) Lookup(block uint64) (way int, ok bool) {
	s := &c.sets[c.SetIndex(block)]
	for w := 0; w < c.ways; w++ {
		if s.lines[w].State != cachesim.Invalid && s.lines[w].Tag == block {
			return w, true
		}
	}
	return -1, false
}

// Line returns a pointer to the line at (setIdx, way).
func (c *Cache) Line(setIdx, way int) *cachesim.Line { return &c.sets[setIdx].lines[way] }

// Access performs a demand lookup with LRU promotion on hit.
func (c *Cache) Access(block uint64) (way int, hit bool) {
	c.accesses++
	si := c.SetIndex(block)
	w, ok := c.Lookup(block)
	if ok {
		c.hits++
		c.stats[si].Hits++
		c.touch(si, w)
		return w, true
	}
	c.misses++
	c.stats[si].Misses++
	return -1, false
}

// Touch promotes the line at (setIdx, way) to MRU without counting an
// access.
func (c *Cache) Touch(setIdx, way int) { c.touch(setIdx, way) }

func (c *Cache) touch(setIdx, way int) {
	s := &c.sets[setIdx]
	for i, w := range s.stack {
		if w == way {
			copy(s.stack[1:i+1], s.stack[:i])
			s.stack[0] = way
			return
		}
	}
	panic(fmt.Sprintf("refmodel: way %d not in recency stack of set %d", way, setIdx))
}

// Victim returns the way that would be replaced next in block's set.
func (c *Cache) Victim(block uint64) int {
	return c.VictimInSet(c.SetIndex(block))
}

// VictimInSet is Victim for an explicit set index.
func (c *Cache) VictimInSet(setIdx int) int {
	s := &c.sets[setIdx]
	for w := 0; w < c.ways; w++ {
		if s.lines[w].State == cachesim.Invalid {
			return w
		}
	}
	return s.stack[len(s.stack)-1]
}

// Insert places a new line for block at the given recency position,
// evicting the victim way's occupant.
func (c *Cache) Insert(block uint64, pos cachesim.InsertPos, proto cachesim.Line) (evicted cachesim.Line) {
	si := c.SetIndex(block)
	w := c.VictimInSet(si)
	s := &c.sets[si]
	evicted = s.lines[w]
	proto.Tag = block
	s.lines[w] = proto
	c.place(si, w, pos)
	return evicted
}

// place moves way w to the requested recency position.
func (c *Cache) place(setIdx, w int, pos cachesim.InsertPos) {
	s := &c.sets[setIdx]
	idx := -1
	for i, x := range s.stack {
		if x == w {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("refmodel: way %d missing from stack of set %d", w, setIdx))
	}
	copy(s.stack[idx:], s.stack[idx+1:])
	s.stack = s.stack[:len(s.stack)-1]
	target := 0
	switch pos {
	case cachesim.InsertMRU:
		target = 0
	case cachesim.InsertLRU:
		target = len(s.stack)
	case cachesim.InsertLRU1:
		target = len(s.stack) - 1
		if target < 0 {
			target = 0
		}
	default:
		panic(fmt.Sprintf("refmodel: unknown insert position %v", pos))
	}
	s.stack = append(s.stack, 0)
	copy(s.stack[target+1:], s.stack[target:])
	s.stack[target] = w
}

// VictimAmong returns the victim way restricted to allowed ways, -1 if none.
func (c *Cache) VictimAmong(setIdx int, allowed func(way int) bool) int {
	s := &c.sets[setIdx]
	for w := 0; w < c.ways; w++ {
		if allowed(w) && s.lines[w].State == cachesim.Invalid {
			return w
		}
	}
	for i := len(s.stack) - 1; i >= 0; i-- {
		if allowed(s.stack[i]) {
			return s.stack[i]
		}
	}
	return -1
}

// VictimDead picks a victim among the set's dead lines, clearing all reuse
// bits (and reporting no victim) when every valid line has been reused.
func (c *Cache) VictimDead(setIdx int) (way int, ok bool) {
	s := &c.sets[setIdx]
	for w := 0; w < c.ways; w++ {
		if s.lines[w].State == cachesim.Invalid {
			return w, true
		}
	}
	for i := len(s.stack) - 1; i >= 0; i-- {
		if w := s.stack[i]; !s.lines[w].Reused {
			return w, true
		}
	}
	for w := 0; w < c.ways; w++ {
		s.lines[w].Reused = false
	}
	return -1, false
}

// InsertWay places a new line for block into an explicit way.
func (c *Cache) InsertWay(block uint64, way int, pos cachesim.InsertPos, proto cachesim.Line) (evicted cachesim.Line) {
	si := c.SetIndex(block)
	s := &c.sets[si]
	evicted = s.lines[way]
	proto.Tag = block
	s.lines[way] = proto
	c.place(si, way, pos)
	return evicted
}

// Invalidate removes block from the cache if present.
func (c *Cache) Invalidate(block uint64) (cachesim.Line, bool) {
	w, ok := c.Lookup(block)
	if !ok {
		return cachesim.Line{}, false
	}
	si := c.SetIndex(block)
	old := c.sets[si].lines[w]
	c.sets[si].lines[w] = cachesim.Line{}
	c.place(si, w, cachesim.InsertLRU)
	return old, true
}

// RecencyStack returns a copy of the set's recency stack, MRU first.
func (c *Cache) RecencyStack(setIdx int) []int {
	return c.AppendRecencyStack(setIdx, nil)
}

// AppendRecencyStack appends the set's recency order (MRU first) to buf and
// returns the extended slice, mirroring cachesim.Cache.AppendRecencyStack.
func (c *Cache) AppendRecencyStack(setIdx int, buf []int) []int {
	return append(buf, c.sets[setIdx].stack...)
}

// SetStatsFor returns the accumulated stats for one set.
func (c *Cache) SetStatsFor(setIdx int) cachesim.SetStats { return c.stats[setIdx] }

// ResetSetStats zeroes all per-set statistics.
func (c *Cache) ResetSetStats() {
	for i := range c.stats {
		c.stats[i] = cachesim.SetStats{}
	}
}

// Totals returns lifetime accesses, hits and misses.
func (c *Cache) Totals() (accesses, hits, misses uint64) {
	return c.accesses, c.hits, c.misses
}

// ResetTotals zeroes the lifetime counters and per-set stats.
func (c *Cache) ResetTotals() {
	c.accesses, c.hits, c.misses = 0, 0, 0
	c.ResetSetStats()
}

// ValidLines counts valid lines in the whole cache.
func (c *Cache) ValidLines() int {
	n := 0
	for si := range c.sets {
		for w := 0; w < c.ways; w++ {
			if c.sets[si].lines[w].Valid() {
				n++
			}
		}
	}
	return n
}

// ForEachLine calls fn for every valid line (set-major, then way).
func (c *Cache) ForEachLine(fn func(setIdx, way int, l *cachesim.Line)) {
	for si := range c.sets {
		for w := 0; w < c.ways; w++ {
			if c.sets[si].lines[w].Valid() {
				fn(si, w, &c.sets[si].lines[w])
			}
		}
	}
}
