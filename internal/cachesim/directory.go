// The set-sharded coherence directory: a Directory layered over a CacheGroup
// answers "which members hold block X" from a per-shard hash table instead of
// scanning the ganged tag row. The broadcast row scan is O(cores) per probe
// (and past 8 cores x 8 ways the fused single-mask scan degrades to
// per-member probe loops); the directory answers every holder-mask question
// in O(1) expected — one bounded linear-probe lookup — and invalidation
// chains in O(holders).
//
// Layout: the group's set index space is split into contiguous ranges, one
// per shard, so a shard owns every line whose set row falls in its range —
// the set-granular analogue of a banked directory, and the unit a future
// concurrent engine could lock independently. Each shard is a fixed-capacity
// open-addressing table (linear probing, backward-shift deletion) sized at
// construction to at least twice the lines its set range can hold, so the
// load factor never exceeds 1/2 and insertion cannot fail or allocate.
//
// Maintenance is event-driven from the member caches: every residency change
// (Insert, InsertWay, Invalidate — all funnelled through insertAt/Invalidate
// plus Insert's fused full-set path) notifies the directory via the hooks in
// cachesim.go. A member may transiently hold the same block in two ways
// (sequences only the fuzzers produce); removal therefore re-probes the
// member and keeps the holder bit while any copy survives. The directory is
// bit-exact against the broadcast scan by construction, and the group fuzzer
// drives both modes against independent caches to pin that.
package cachesim

// dirEntry is one occupied directory slot: the block address and the bitmask
// of members holding it. holders == 0 marks an empty slot, which is sound
// because an entry's holder set going empty is exactly when it is deleted.
type dirEntry struct {
	block   uint64
	holders uint64
}

// dirShard is the hash table owning one contiguous range of set rows.
type dirShard struct {
	entries []dirEntry
	mask    uint64 // len(entries)-1; len is a power of two
}

// Directory is the set-sharded holder index of a CacheGroup.
type Directory struct {
	shards     []dirShard
	setMask    uint64
	shardShift uint // set-index bits below the shard index
}

// dirHashMul is the 64-bit golden-ratio multiplier; block addresses are
// near-sequential per workload region, and the multiply spreads them across
// the shard's table.
const dirHashMul = 0x9e3779b97f4a7c15

// home returns block's preferred slot in the shard.
func (sh *dirShard) home(block uint64) uint64 {
	return (block * dirHashMul) >> 32 & sh.mask
}

// newDirectory builds the directory for a group of n members with the given
// geometry: min(numSets, dirShards) shards over contiguous set ranges, each
// sized to twice its range's line capacity.
func newDirectory(numSets, rowWays int) *Directory {
	const dirShards = 16
	shards := dirShards
	if numSets < shards {
		shards = numSets
	}
	setsPerShard := numSets / shards
	shift := uint(0)
	for 1<<shift < setsPerShard {
		shift++
	}
	linesPerShard := setsPerShard * rowWays
	cap := 8
	for cap < 2*linesPerShard {
		cap <<= 1
	}
	d := &Directory{
		shards:     make([]dirShard, shards),
		setMask:    uint64(numSets - 1),
		shardShift: shift,
	}
	backing := make([]dirEntry, shards*cap)
	for i := range d.shards {
		d.shards[i] = dirShard{
			entries: backing[i*cap : (i+1)*cap : (i+1)*cap],
			mask:    uint64(cap - 1),
		}
	}
	return d
}

// shardFor returns the shard owning block's set row.
func (d *Directory) shardFor(block uint64) *dirShard {
	return &d.shards[(block&d.setMask)>>d.shardShift]
}

// holders returns the bitmask of members holding block (0 when untracked).
func (d *Directory) holders(block uint64) uint64 {
	sh := d.shardFor(block)
	for i := sh.home(block); ; i = (i + 1) & sh.mask {
		e := sh.entries[i]
		if e.holders == 0 {
			return 0
		}
		if e.block == block {
			return e.holders
		}
	}
}

// add records that member holds block. The table can never fill: capacity is
// at least twice the owning set range's line count, and distinct tracked
// blocks cannot exceed that line count.
func (d *Directory) add(block uint64, member int) {
	sh := d.shardFor(block)
	for i := sh.home(block); ; i = (i + 1) & sh.mask {
		e := &sh.entries[i]
		if e.holders == 0 {
			e.block = block
			e.holders = 1 << uint(member)
			return
		}
		if e.block == block {
			e.holders |= 1 << uint(member)
			return
		}
	}
}

// remove clears member's holder bit for block, deleting the entry when the
// holder set empties. Absent blocks are tolerated (an insert may overwrite an
// invalid-proto line that was never tracked).
func (d *Directory) remove(block uint64, member int) {
	sh := d.shardFor(block)
	for i := sh.home(block); ; i = (i + 1) & sh.mask {
		e := &sh.entries[i]
		if e.holders == 0 {
			return
		}
		if e.block == block {
			e.holders &^= 1 << uint(member)
			if e.holders == 0 {
				sh.del(i)
			}
			return
		}
	}
}

// del empties slot i and backward-shifts the probe chain behind it so every
// surviving entry stays reachable from its home slot — the standard deletion
// for linear probing, avoiding tombstones that would degrade lookups.
func (sh *dirShard) del(i uint64) {
	for {
		sh.entries[i] = dirEntry{}
		j := i
		for {
			j = (j + 1) & sh.mask
			e := sh.entries[j]
			if e.holders == 0 {
				return
			}
			// Move e back into the hole iff its home slot does not sit
			// (cyclically) strictly between the hole and j — i.e. the hole is
			// on e's probe path.
			if (j-sh.home(e.block))&sh.mask >= (j-i)&sh.mask {
				sh.entries[i] = e
				i = j
				break
			}
		}
	}
}

// occupancy returns the number of tracked blocks (tests, debugging).
func (d *Directory) occupancy() int {
	n := 0
	for i := range d.shards {
		for _, e := range d.shards[i].entries {
			if e.holders != 0 {
				n++
			}
		}
	}
	return n
}
