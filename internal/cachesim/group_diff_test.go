// Differential verification of the ganged tag slab: a CacheGroup's members
// must be observably identical to N independently allocated caches driven
// with the same operations, and the group's fused cross-cache queries
// (HolderMask, LastCopy, InvalidateOthers) must agree with the answer
// assembled from per-cache probes of the independent set.
//
// The fuzzer explores op interleavings from the committed corpus under
// testdata/fuzz/FuzzGroupEquivalence; the replay test runs long
// pseudo-random programs on every plain `go test`.
package cachesim_test

import (
	"fmt"
	"math/bits"
	"testing"

	"ascc/internal/cachesim"
	"ascc/internal/rng"
)

// groupConfigs are the ganged geometries under test: the paper's 4x8 shape,
// the fused-width boundary (8x8 = 64 scanned elements), a group wide enough
// to force the per-member fallback (5x16 = 80), partially enabled ways, and
// the 1-core degenerate group.
var groupConfigs = []struct {
	n   int
	cfg cachesim.Config
}{
	{4, cachesim.Config{SizeBytes: 4 * 8 * 64, Ways: 8, LineBytes: 64}},   // the L2 shape
	{2, cachesim.Config{SizeBytes: 8 * 4 * 64, Ways: 4, LineBytes: 64}},   // 2 cores x 4 ways
	{1, cachesim.Config{SizeBytes: 4 * 8 * 64, Ways: 8, LineBytes: 64}},   // degenerate group
	{8, cachesim.Config{SizeBytes: 2 * 8 * 64, Ways: 8, LineBytes: 64}},   // fused-width boundary
	{5, cachesim.Config{SizeBytes: 2 * 16 * 64, Ways: 16, LineBytes: 64}}, // 80 > 64: fallback path
	{3, cachesim.Config{SizeBytes: 4 * 8 * 64, Ways: 8, LineBytes: 64, EnabledWays: 5}},
	{16, cachesim.Config{SizeBytes: 2 * 8 * 64, Ways: 8, LineBytes: 64}}, // many-core: >64 row ways
}

// groupPair drives a CacheGroup and n independent caches in lockstep.
type groupPair struct {
	t     *testing.T
	group *cachesim.CacheGroup
	solo  []*cachesim.Cache
	sets  int
	ways  int
	gs    []int // scratch recency stacks
	ss    []int
}

func newGroupPair(t *testing.T, n int, cfg cachesim.Config, directory bool) *groupPair {
	g := cachesim.NewGroup(n, cfg)
	if directory {
		g.EnableDirectory()
	}
	solo := make([]*cachesim.Cache, n)
	for i := range solo {
		solo[i] = cachesim.New(cfg)
	}
	m := g.Cache(0)
	if g.Size() != n || m.NumSets() != solo[0].NumSets() || m.Ways() != solo[0].Ways() {
		t.Fatalf("geometry mismatch: group %d members %d sets x %d ways, solo %d sets x %d ways",
			g.Size(), m.NumSets(), m.Ways(), solo[0].NumSets(), solo[0].Ways())
	}
	return &groupPair{
		t: t, group: g, solo: solo,
		sets: m.NumSets(), ways: m.Ways(),
		gs: make([]int, 0, m.Ways()), ss: make([]int, 0, m.Ways()),
	}
}

// checkMember compares every piece of observable state of group member c
// against its independent twin.
func (p *groupPair) checkMember(op string, c int) {
	p.t.Helper()
	gm, sm := p.group.Cache(c), p.solo[c]
	for s := 0; s < p.sets; s++ {
		p.gs = gm.AppendRecencyStack(s, p.gs[:0])
		p.ss = sm.AppendRecencyStack(s, p.ss[:0])
		if len(p.gs) != len(p.ss) {
			p.t.Fatalf("after %s: member %d set %d stack lengths differ: group %v solo %v", op, c, s, p.gs, p.ss)
		}
		for i := range p.gs {
			if p.gs[i] != p.ss[i] {
				p.t.Fatalf("after %s: member %d set %d stacks differ: group %v solo %v", op, c, s, p.gs, p.ss)
			}
		}
		if gst, sst := gm.SetStatsFor(s), sm.SetStatsFor(s); gst != sst {
			p.t.Fatalf("after %s: member %d set %d stats differ: group %+v solo %+v", op, c, s, gst, sst)
		}
		for w := 0; w < p.ways; w++ {
			if gl, sl := *gm.Line(s, w), *sm.Line(s, w); gl != sl {
				p.t.Fatalf("after %s: member %d line (%d,%d) differs: group %+v solo %+v", op, c, s, w, gl, sl)
			}
		}
	}
	ga, gh, gmi := gm.Totals()
	sa, sh, smi := sm.Totals()
	if ga != sa || gh != sh || gmi != smi {
		p.t.Fatalf("after %s: member %d totals differ: group (%d,%d,%d) solo (%d,%d,%d)", op, c, ga, gh, gmi, sa, sh, smi)
	}
	if gv, sv := gm.ValidLines(), sm.ValidLines(); gv != sv {
		p.t.Fatalf("after %s: member %d valid-line counts differ: group %d solo %d", op, c, gv, sv)
	}
}

func (p *groupPair) checkAll(op string) {
	p.t.Helper()
	for c := range p.solo {
		p.checkMember(op, c)
	}
}

// soloHolderMask assembles the holder bitmask the slow way: one Lookup per
// independent cache. This is the oracle the fused scan must match.
func (p *groupPair) soloHolderMask(block uint64) uint64 {
	var m uint64
	for i, c := range p.solo {
		if _, ok := c.Lookup(block); ok {
			m |= 1 << uint(i)
		}
	}
	return m
}

// runGroupDiff decodes data as an op program over a ganged geometry and
// drives the group and the independent caches, failing on any divergence.
// With directory set, the group answers coherence queries from the
// set-sharded directory, so the same oracle checks pin directory maintenance
// (holder-bit adds/removes across insert, eviction, invalidation chains).
func runGroupDiff(t *testing.T, n int, cfg cachesim.Config, directory bool, data []byte) {
	p := newGroupPair(t, n, cfg, directory)
	ops := &opStream{data: data}
	for !ops.done() {
		c := int(ops.next()) % n
		gm, sm := p.group.Cache(c), p.solo[c]
		switch op := ops.next() % 10; op {
		case 0, 1: // Access (weighted: it dominates real traffic)
			blk := uint64(ops.next())
			gw, gh := gm.Access(blk)
			sw, sh := sm.Access(blk)
			if gw != sw || gh != sh {
				t.Fatalf("member %d Access(%d): group (%d,%v) solo (%d,%v)", c, blk, gw, gh, sw, sh)
			}
			p.checkMember("Access", c)
		case 2: // Insert
			blk := uint64(ops.next())
			pos := cachesim.InsertPos(ops.next() % 3)
			pr := ops.proto()
			if ge, se := gm.Insert(blk, pos, pr), sm.Insert(blk, pos, pr); ge != se {
				t.Fatalf("member %d Insert(%d,%v): evicted group %+v solo %+v", c, blk, pos, ge, se)
			}
			p.checkMember("Insert", c)
		case 3: // Invalidate
			blk := uint64(ops.next())
			gl, gok := gm.Invalidate(blk)
			sl, sok := sm.Invalidate(blk)
			if gl != sl || gok != sok {
				t.Fatalf("member %d Invalidate(%d): group (%+v,%v) solo (%+v,%v)", c, blk, gl, gok, sl, sok)
			}
			p.checkMember("Invalidate", c)
		case 4: // HolderMask: the fused scan against the per-cache oracle
			blk := uint64(ops.next())
			if gh, sh := p.group.HolderMask(blk), p.soloHolderMask(blk); gh != sh {
				t.Fatalf("HolderMask(%d): group %b solo %b", blk, gh, sh)
			}
		case 5: // LastCopy with the op's member as the exception
			blk := uint64(ops.next())
			want := p.soloHolderMask(blk)&^(1<<uint(c)) == 0
			if got := p.group.LastCopy(blk, c); got != want {
				t.Fatalf("LastCopy(%d,%d): group %v solo %v", blk, c, got, want)
			}
		case 6: // InvalidateOthers: the write-upgrade primitive
			blk := uint64(ops.next())
			want := p.soloHolderMask(blk) &^ (1 << uint(c))
			got := p.group.InvalidateOthers(blk, c)
			if got != want {
				t.Fatalf("InvalidateOthers(%d,%d): group %b solo %b", blk, c, got, want)
			}
			for m := want; m != 0; m &= m - 1 {
				p.solo[bits.TrailingZeros64(m)].Invalidate(blk)
			}
			p.checkAll("InvalidateOthers")
		case 8: // DemandAccess: fused access + peer probe vs Access + Lookups
			blk := uint64(ops.next())
			gw, gh, ghold, ghw := p.group.DemandAccess(c, blk)
			sw, sh := sm.Access(blk)
			if gw != sw || gh != sh {
				t.Fatalf("member %d DemandAccess(%d): group (%d,%v) solo (%d,%v)", c, blk, gw, gh, sw, sh)
			}
			shold, shw := uint64(0), -1
			if !sh {
				shold = p.soloHolderMask(blk) &^ (1 << uint(c))
				if shold != 0 {
					w, ok := p.solo[bits.TrailingZeros64(shold)].Lookup(blk)
					if !ok {
						t.Fatalf("solo holder lost block %d", blk)
					}
					shw = w
				}
			}
			if ghold != shold || ghw != shw {
				t.Fatalf("member %d DemandAccess(%d): group holders %b way %d, solo %b way %d",
					c, blk, ghold, ghw, shold, shw)
			}
			p.checkMember("DemandAccess", c)
		case 9: // Probe / ProbeBatch: fused read-only answers vs per-cache oracle
			nb := 1 + int(ops.next())%4
			blocks := make([]uint64, nb)
			for i := range blocks {
				blocks[i] = uint64(ops.next())
			}
			out := make([]cachesim.GroupProbe, nb)
			p.group.ProbeBatch(blocks, out)
			for i, blk := range blocks {
				want := p.soloHolderMask(blk)
				wantWay := -1
				if want != 0 {
					w, ok := p.solo[bits.TrailingZeros64(want)].Lookup(blk)
					if !ok {
						t.Fatalf("solo holder lost block %d", blk)
					}
					wantWay = w
				}
				if out[i].Holders != want || int(out[i].Way) != wantWay {
					t.Fatalf("ProbeBatch(%d): group holders %b way %d, solo %b way %d",
						blk, out[i].Holders, out[i].Way, want, wantWay)
				}
				if single := p.group.Probe(blk); single != out[i] {
					t.Fatalf("Probe(%d) %+v disagrees with ProbeBatch %+v", blk, single, out[i])
				}
				if gotLC, wantLC := out[i].LastCopyFor(c), want&^(1<<uint(c)) == 0; gotLC != wantLC {
					t.Fatalf("LastCopyFor(%d,%d): group %v solo %v", blk, c, gotLC, wantLC)
				}
			}
			p.checkAll("ProbeBatch")
		case 7: // Touch a resident way (keeps recency divergence visible)
			si := int(ops.next()) % p.sets
			way := int(ops.next()) % p.ways
			// Touch panics on ways outside the recency stack; only poke
			// ways both sides agree are tracked.
			p.gs = gm.AppendRecencyStack(si, p.gs[:0])
			found := false
			for _, w := range p.gs {
				if w == way {
					found = true
					break
				}
			}
			if !found {
				continue
			}
			gm.Touch(si, way)
			sm.Touch(si, way)
			p.checkMember("Touch", c)
		}
	}
	p.checkAll("final")
}

// FuzzGroupEquivalence fuzzes op programs over every ganged geometry: the
// first byte selects the configuration, the rest interleaves member ops with
// fused cross-cache queries. Run bounded as a smoke test with
//
//	go test ./internal/cachesim -run '^$' -fuzz FuzzGroupEquivalence -fuzztime 10s
func FuzzGroupEquivalence(f *testing.F) {
	f.Add([]byte{0, 0, 0, 10, 1, 0, 10, 2, 4, 10, 0, 6, 10, 3, 5, 10})
	f.Add([]byte{1, 0, 2, 7, 0, 2, 1, 1, 2, 7, 1, 2, 3, 7, 0, 4, 7})
	f.Add([]byte{4, 0, 0, 5, 1, 0, 5, 2, 0, 5, 3, 4, 5, 0, 6, 5, 2, 3, 5})
	f.Add([]byte{0x80, 0, 0, 10, 1, 0, 10, 2, 4, 10, 0, 6, 10, 3, 5, 10})
	f.Add([]byte{0x86, 0, 2, 9, 1, 2, 9, 2, 2, 9, 3, 2, 9, 4, 2, 9, 5, 2, 9, 0, 6, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		// Member-state comparison after every op makes long programs slow;
		// the interesting structure is in interleaving, not length.
		if len(data) > 4096 {
			data = data[:4096]
		}
		// The high bit of the selector byte flips the group into directory
		// mode; both modes must match the per-cache oracle exactly.
		gc := groupConfigs[int(data[0]&0x7f)%len(groupConfigs)]
		runGroupDiff(t, gc.n, gc.cfg, data[0]&0x80 != 0, data[1:])
	})
}

// FuzzGroupProbe concentrates on the batch-probe API: each program byte
// triple mutates one member (Access / Insert / Invalidate over a small block
// space), and after every mutation the whole recently-touched block window is
// batch-probed and checked against the per-cache oracle — holder masks,
// first-holder ways and last-copy verdicts. FuzzGroupEquivalence reaches the
// same ops through its general op stream; this target makes every mutation
// immediately visible to a batch probe, which is the access pattern of the
// batched below-L1 engine.
func FuzzGroupProbe(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add([]byte{2, 0, 9, 9, 1, 9, 0, 2, 9, 0, 1, 9, 2, 2, 9})
	f.Add([]byte{5, 0, 0, 17, 1, 1, 17, 0, 2, 17, 1, 0, 33, 0, 1, 33})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		if len(data) > 2048 {
			data = data[:2048]
		}
		gc := groupConfigs[int(data[0]&0x7f)%len(groupConfigs)]
		p := newGroupPair(t, gc.n, gc.cfg, data[0]&0x80 != 0)
		window := make([]uint64, 0, 16)
		out := make([]cachesim.GroupProbe, 16)
		for i := 1; i+2 < len(data); i += 3 {
			c := int(data[i]) % gc.n
			blk := uint64(data[i+2] % 64)
			gm, sm := p.group.Cache(c), p.solo[c]
			switch data[i+1] % 3 {
			case 0:
				gw, gh := gm.Access(blk)
				sw, sh := sm.Access(blk)
				if gw != sw || gh != sh {
					t.Fatalf("member %d Access(%d): group (%d,%v) solo (%d,%v)", c, blk, gw, gh, sw, sh)
				}
			case 1:
				pr := cachesim.Line{State: cachesim.Exclusive, Owner: int16(c)}
				if ge, se := gm.Insert(blk, cachesim.InsertMRU, pr), sm.Insert(blk, cachesim.InsertMRU, pr); ge != se {
					t.Fatalf("member %d Insert(%d): evicted group %+v solo %+v", c, blk, ge, se)
				}
			case 2:
				gl, gok := gm.Invalidate(blk)
				sl, sok := sm.Invalidate(blk)
				if gl != sl || gok != sok {
					t.Fatalf("member %d Invalidate(%d): group (%+v,%v) solo (%+v,%v)", c, blk, gl, gok, sl, sok)
				}
			}
			if len(window) == cap(window) {
				window = window[:0]
			}
			window = append(window, blk)
			p.group.ProbeBatch(window, out)
			for j, wb := range window {
				want := p.soloHolderMask(wb)
				wantWay := -1
				if want != 0 {
					w, ok := p.solo[bits.TrailingZeros64(want)].Lookup(wb)
					if !ok {
						t.Fatalf("solo holder lost block %d", wb)
					}
					wantWay = w
				}
				if out[j].Holders != want || int(out[j].Way) != wantWay {
					t.Fatalf("ProbeBatch(%d): group holders %b way %d, solo %b way %d",
						wb, out[j].Holders, out[j].Way, want, wantWay)
				}
			}
		}
	})
}

// TestGroupEquivalence replays long pseudo-random programs over every ganged
// geometry on plain `go test` runs, so the group's differential check does
// not depend on anyone running the fuzzer.
func TestGroupEquivalence(t *testing.T) {
	for gi, gc := range groupConfigs {
		for _, directory := range []bool{false, true} {
			gi, gc, directory := gi, gc, directory
			mode := "broadcast"
			if directory {
				mode = "directory"
			}
			name := fmt.Sprintf("%dx_%dB_%dway_en%d_%s", gc.n, gc.cfg.SizeBytes, gc.cfg.Ways, gc.cfg.EnabledWays, mode)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				r := rng.New(uint64(0x96CC + gi))
				data := make([]byte, 20_000)
				for i := range data {
					data[i] = byte(r.Uint64())
				}
				runGroupDiff(t, gc.n, gc.cfg, directory, data)
			})
		}
	}
}
