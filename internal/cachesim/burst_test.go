package cachesim

import (
	"math"
	"testing"

	"ascc/internal/trace"
)

// burstGeometries returns one cache per kernel path: the specialized packed
// 4-way loop, the generic packed loop (2-way) and the wide fallback (fully
// associative). Every behavioural test below runs over all three.
func burstGeometries() []struct {
	name string
	cfg  Config
} {
	return []struct {
		name string
		cfg  Config
	}{
		{"packed-4way", Config{SizeBytes: 512, Ways: 4, LineBytes: 32}},
		{"packed-2way", Config{SizeBytes: 256, Ways: 2, LineBytes: 32}},
		{"wide", Config{SizeBytes: 1 << 10, Ways: 8, LineBytes: 32, FullyAssoc: true}},
	}
}

const burstShift = 5 // 32-byte lines throughout

// ref builds a batch reference to a block.
func bref(block uint64, gap int32, write bool) trace.Ref {
	return trace.Ref{Addr: block << burstShift, Gap: gap, Write: write}
}

// preload makes blocks resident in state st.
func preload(c *Cache, st LineState, blocks ...uint64) {
	for _, b := range blocks {
		c.Insert(b, InsertMRU, Line{State: st})
	}
}

func TestBurstBatchEnd(t *testing.T) {
	for _, g := range burstGeometries() {
		t.Run(g.name, func(t *testing.T) {
			c := New(g.cfg)
			preload(c, Exclusive, 1, 2)
			refs := []trace.Ref{bref(1, 0, false), bref(2, 3, false), bref(1, 1, false)}
			bt := &trace.Batch{Refs: refs}
			ev, instr, clock, hits, _, _, _ :=
				c.ReadBurst(bt, burstShift, 2.0, math.MaxUint64, math.Inf(1), 10, 5)
			if ev != BurstBatchEnd {
				t.Fatalf("event %v, want batch-end", ev)
			}
			if bt.Pos != len(refs) || hits != 3 {
				t.Fatalf("pos %d hits %d, want 3/3", bt.Pos, hits)
			}
			// gaps 0,3,1 -> 1+4+2 = 7 instructions at CPI 2.
			if instr != 10+7 || clock != 5+7*2.0 {
				t.Fatalf("instr %d clock %v, want 17/19", instr, clock)
			}
		})
	}
}

func TestBurstMiss(t *testing.T) {
	for _, g := range burstGeometries() {
		t.Run(g.name, func(t *testing.T) {
			c := New(g.cfg)
			preload(c, Exclusive, 1)
			bt := &trace.Batch{Refs: []trace.Ref{bref(1, 0, false), bref(3, 2, true), bref(1, 0, false)}}
			ev, instr, clock, hits, block, _, write :=
				c.ReadBurst(bt, burstShift, 1.0, math.MaxUint64, math.Inf(1), 0, 0)
			if ev != BurstMiss {
				t.Fatalf("event %v, want miss", ev)
			}
			// The missing reference is consumed: its instruction gap is
			// accounted and the cursor sits past it, but it does not count as
			// a hit; the trailing reference is untouched.
			if bt.Pos != 2 || hits != 1 {
				t.Fatalf("pos %d hits %d, want 2/1", bt.Pos, hits)
			}
			if block != 3 || !write {
				t.Fatalf("event block %d write %v, want 3/true", block, write)
			}
			if instr != 4 || clock != 4 {
				t.Fatalf("instr %d clock %v, want 4/4", instr, clock)
			}
			si := c.SetIndex(3)
			if st := c.SetStatsFor(si); st.Misses != 1 {
				t.Fatalf("miss not counted in set %d: %+v", si, st)
			}
		})
	}
}

func TestBurstUpgrade(t *testing.T) {
	for _, g := range burstGeometries() {
		t.Run(g.name, func(t *testing.T) {
			c := New(g.cfg)
			preload(c, Exclusive, 1)
			wantWay, _ := c.Lookup(1)
			bt := &trace.Batch{Refs: []trace.Ref{bref(1, 0, true), bref(1, 0, false)}}
			ev, _, _, hits, block, way, _ :=
				c.ReadBurst(bt, burstShift, 1.0, math.MaxUint64, math.Inf(1), 0, 0)
			if ev != BurstUpgrade {
				t.Fatalf("event %v, want upgrade", ev)
			}
			// A store-upgrade is a hit — counted, promoted to MRU — whose
			// write-through and state transition the caller owes; the kernel
			// itself must not touch the line state.
			if hits != 1 || bt.Pos != 1 {
				t.Fatalf("hits %d pos %d, want 1/1", hits, bt.Pos)
			}
			if block != 1 || way != wantWay {
				t.Fatalf("event block %d way %d, want 1/%d", block, way, wantWay)
			}
			if st := c.Line(c.SetIndex(1), way).State; st != Exclusive {
				t.Fatalf("kernel changed line state to %v", st)
			}
			// Stores to already-Modified lines burst straight through.
			c.Line(c.SetIndex(1), way).State = Modified
			bt2 := &trace.Batch{Refs: []trace.Ref{bref(1, 0, true), bref(1, 0, true)}}
			ev, _, _, hits, _, _, _ =
				c.ReadBurst(bt2, burstShift, 1.0, math.MaxUint64, math.Inf(1), 0, 0)
			if ev != BurstBatchEnd || hits != 2 {
				t.Fatalf("modified-line stores: event %v hits %d, want batch-end/2", ev, hits)
			}
		})
	}
}

func TestBurstQuotaAndFrontier(t *testing.T) {
	for _, g := range burstGeometries() {
		t.Run(g.name, func(t *testing.T) {
			c := New(g.cfg)
			preload(c, Exclusive, 1)
			hits4 := []trace.Ref{bref(1, 0, false), bref(1, 0, false), bref(1, 0, false), bref(1, 0, false)}

			// Quota: each reference commits one instruction; quota 2 stops
			// after the second with the batch half-consumed.
			bt := &trace.Batch{Refs: hits4}
			ev, instr, _, hits, _, _, _ :=
				c.ReadBurst(bt, burstShift, 1.0, 2, math.Inf(1), 0, 0)
			if ev != BurstQuota || instr != 2 || hits != 2 || bt.Pos != 2 {
				t.Fatalf("quota: ev %v instr %d hits %d pos %d, want quota/2/2/2", ev, instr, hits, bt.Pos)
			}

			// Frontier: at CPI 1 the clock hits limit 3 after the third.
			bt = &trace.Batch{Refs: hits4}
			var clock float64
			ev, _, clock, hits, _, _, _ =
				c.ReadBurst(bt, burstShift, 1.0, math.MaxUint64, 3, 0, 0)
			if ev != BurstFrontier || clock != 3 || hits != 3 {
				t.Fatalf("frontier: ev %v clock %v hits %d, want frontier/3/3", ev, clock, hits)
			}

			// When one reference crosses both bounds, quota wins — the
			// per-reference loop's check order.
			bt = &trace.Batch{Refs: hits4}
			ev, _, _, _, _, _, _ =
				c.ReadBurst(bt, burstShift, 1.0, 1, 1, 0, 0)
			if ev != BurstQuota {
				t.Fatalf("priority: ev %v, want quota before frontier", ev)
			}
		})
	}
}

func TestBurstEventString(t *testing.T) {
	want := map[BurstEvent]string{
		BurstBatchEnd:  "batch-end",
		BurstMiss:      "miss",
		BurstUpgrade:   "upgrade",
		BurstQuota:     "quota",
		BurstFrontier:  "frontier",
		BurstEvent(99): "BurstEvent(?)",
	}
	for ev, s := range want {
		if ev.String() != s {
			t.Errorf("%d.String() = %q, want %q", ev, ev.String(), s)
		}
	}
}

// BenchmarkBurstThroughput measures the kernel on the workload it was built
// for — long runs of L1 hits — against per-reference stepping doing what
// the engine's per-reference loop did for each hit: the Access call, the
// CoreStats fields updated one reference at a time and the core clock
// published to its shared slot around the access (the frozen oracle in
// internal/cmp/refstep_test.go). The burst defers all of that to the event
// boundary, so on hit-heavy streams the gap here is the engine's per-hit
// overhead; the end-to-end BenchmarkPhase pair in internal/cmp shows how
// much survives on the miss-heavy scale-8 mixes, whose events cut bursts
// short every ~1.2 references.
func BenchmarkBurstThroughput(b *testing.B) {
	cfg := Config{SizeBytes: 64 * 4 * 32, Ways: 4, LineBytes: 32}
	const resident = 128 // half the ways of every set stay valid
	refs := make([]trace.Ref, 4096)
	for i := range refs {
		refs[i] = bref(uint64(i%resident), int32(i%4), false)
	}
	newCacheWarm := func() *Cache {
		c := New(cfg)
		for blk := uint64(0); blk < resident; blk++ {
			c.Insert(blk, InsertMRU, Line{State: Exclusive})
		}
		return c
	}

	// coreStats mirrors the engine's per-core accounting fields.
	type coreStats struct {
		Instructions, L1Accesses, L1Hits uint64
		Cycles                           float64
	}

	b.Run("burst", func(b *testing.B) {
		c := newCacheWarm()
		var st coreStats
		clocks := make([]float64, 1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			instr := st.Instructions
			clock := clocks[0]
			bt := trace.Batch{Refs: refs}
			for {
				ev, in, ck, hits, _, _, _ := c.ReadBurst(&bt, burstShift, 1.0, math.MaxUint64, math.Inf(1), instr, clock)
				instr, clock = in, ck
				st.L1Accesses += hits
				st.L1Hits += hits
				if ev == BurstBatchEnd {
					break
				}
			}
			// The engine's once-per-turn fold and lazy clock publication.
			st.Instructions = instr
			st.Cycles = clock
			clocks[0] = clock
		}
		b.ReportMetric(float64(b.N)*float64(len(refs))/b.Elapsed().Seconds(), "refs/s")
	})
	b.Run("per-ref", func(b *testing.B) {
		c := newCacheWarm()
		var st coreStats
		clocks := make([]float64, 1)
		quota := uint64(math.MaxUint64)
		limit := math.Inf(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			clock := clocks[0]
			for _, ref := range refs {
				n := uint64(ref.Gap) + 1
				st.Instructions += n
				clock += float64(n) * 1.0
				clocks[0] = clock // published before the descent could read it
				_, hit := c.Access(ref.Addr >> burstShift)
				st.L1Accesses++
				if hit {
					st.L1Hits++
				}
				clocks[0] = clock
				st.Cycles = clock
				if st.Instructions >= quota || clock >= limit {
					break
				}
			}
		}
		b.ReportMetric(float64(b.N)*float64(len(refs))/b.Elapsed().Seconds(), "refs/s")
	})
}
