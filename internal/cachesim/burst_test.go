package cachesim

import (
	"math"
	"testing"

	"ascc/internal/trace"
)

// burstGeometries returns one cache per kernel path: the specialized packed
// 4-way loop, the generic packed loop (2-way) and the wide fallback (fully
// associative). Every behavioural test below runs over all three.
func burstGeometries() []struct {
	name string
	cfg  Config
} {
	return []struct {
		name string
		cfg  Config
	}{
		{"packed-4way", Config{SizeBytes: 512, Ways: 4, LineBytes: 32}},
		{"packed-2way", Config{SizeBytes: 256, Ways: 2, LineBytes: 32}},
		{"wide", Config{SizeBytes: 1 << 10, Ways: 8, LineBytes: 32, FullyAssoc: true}},
	}
}

const burstShift = 5 // 32-byte lines throughout

// ref builds a batch reference to a block.
func bref(block uint64, gap int32, write bool) trace.Ref {
	return trace.Ref{Addr: block << burstShift, Gap: gap, Write: write}
}

// preload makes blocks resident in state st.
func preload(c *Cache, st LineState, blocks ...uint64) {
	for _, b := range blocks {
		c.Insert(b, InsertMRU, Line{State: st})
	}
}

func TestBurstBatchEnd(t *testing.T) {
	for _, g := range burstGeometries() {
		t.Run(g.name, func(t *testing.T) {
			c := New(g.cfg)
			preload(c, Exclusive, 1, 2)
			refs := []trace.Ref{bref(1, 0, false), bref(2, 3, false), bref(1, 1, false)}
			bt := &trace.Batch{Refs: refs}
			ev, instr, clock, hits, _, _, _ :=
				c.ReadBurst(bt, burstShift, 2.0, math.MaxUint64, math.Inf(1), 10, 5)
			if ev != BurstBatchEnd {
				t.Fatalf("event %v, want batch-end", ev)
			}
			if bt.Pos != len(refs) || hits != 3 {
				t.Fatalf("pos %d hits %d, want 3/3", bt.Pos, hits)
			}
			// gaps 0,3,1 -> 1+4+2 = 7 instructions at CPI 2.
			if instr != 10+7 || clock != 5+7*2.0 {
				t.Fatalf("instr %d clock %v, want 17/19", instr, clock)
			}
		})
	}
}

func TestBurstMiss(t *testing.T) {
	for _, g := range burstGeometries() {
		t.Run(g.name, func(t *testing.T) {
			c := New(g.cfg)
			preload(c, Exclusive, 1)
			bt := &trace.Batch{Refs: []trace.Ref{bref(1, 0, false), bref(3, 2, true), bref(1, 0, false)}}
			ev, instr, clock, hits, block, _, write :=
				c.ReadBurst(bt, burstShift, 1.0, math.MaxUint64, math.Inf(1), 0, 0)
			if ev != BurstMiss {
				t.Fatalf("event %v, want miss", ev)
			}
			// The missing reference is consumed: its instruction gap is
			// accounted and the cursor sits past it, but it does not count as
			// a hit; the trailing reference is untouched.
			if bt.Pos != 2 || hits != 1 {
				t.Fatalf("pos %d hits %d, want 2/1", bt.Pos, hits)
			}
			if block != 3 || !write {
				t.Fatalf("event block %d write %v, want 3/true", block, write)
			}
			if instr != 4 || clock != 4 {
				t.Fatalf("instr %d clock %v, want 4/4", instr, clock)
			}
			si := c.SetIndex(3)
			if st := c.SetStatsFor(si); st.Misses != 1 {
				t.Fatalf("miss not counted in set %d: %+v", si, st)
			}
		})
	}
}

func TestBurstUpgrade(t *testing.T) {
	for _, g := range burstGeometries() {
		t.Run(g.name, func(t *testing.T) {
			c := New(g.cfg)
			preload(c, Exclusive, 1)
			wantWay, _ := c.Lookup(1)
			bt := &trace.Batch{Refs: []trace.Ref{bref(1, 0, true), bref(1, 0, false)}}
			ev, _, _, hits, block, way, _ :=
				c.ReadBurst(bt, burstShift, 1.0, math.MaxUint64, math.Inf(1), 0, 0)
			if ev != BurstUpgrade {
				t.Fatalf("event %v, want upgrade", ev)
			}
			// A store-upgrade is a hit — counted, promoted to MRU — whose
			// write-through and state transition the caller owes; the kernel
			// itself must not touch the line state.
			if hits != 1 || bt.Pos != 1 {
				t.Fatalf("hits %d pos %d, want 1/1", hits, bt.Pos)
			}
			if block != 1 || way != wantWay {
				t.Fatalf("event block %d way %d, want 1/%d", block, way, wantWay)
			}
			if st := c.Line(c.SetIndex(1), way).State; st != Exclusive {
				t.Fatalf("kernel changed line state to %v", st)
			}
			// Stores to already-Modified lines burst straight through.
			c.Line(c.SetIndex(1), way).State = Modified
			bt2 := &trace.Batch{Refs: []trace.Ref{bref(1, 0, true), bref(1, 0, true)}}
			ev, _, _, hits, _, _, _ =
				c.ReadBurst(bt2, burstShift, 1.0, math.MaxUint64, math.Inf(1), 0, 0)
			if ev != BurstBatchEnd || hits != 2 {
				t.Fatalf("modified-line stores: event %v hits %d, want batch-end/2", ev, hits)
			}
		})
	}
}

func TestBurstQuotaAndFrontier(t *testing.T) {
	for _, g := range burstGeometries() {
		t.Run(g.name, func(t *testing.T) {
			c := New(g.cfg)
			preload(c, Exclusive, 1)
			hits4 := []trace.Ref{bref(1, 0, false), bref(1, 0, false), bref(1, 0, false), bref(1, 0, false)}

			// Quota: each reference commits one instruction; quota 2 stops
			// after the second with the batch half-consumed.
			bt := &trace.Batch{Refs: hits4}
			ev, instr, _, hits, _, _, _ :=
				c.ReadBurst(bt, burstShift, 1.0, 2, math.Inf(1), 0, 0)
			if ev != BurstQuota || instr != 2 || hits != 2 || bt.Pos != 2 {
				t.Fatalf("quota: ev %v instr %d hits %d pos %d, want quota/2/2/2", ev, instr, hits, bt.Pos)
			}

			// Frontier: at CPI 1 the clock hits limit 3 after the third.
			bt = &trace.Batch{Refs: hits4}
			var clock float64
			ev, _, clock, hits, _, _, _ =
				c.ReadBurst(bt, burstShift, 1.0, math.MaxUint64, 3, 0, 0)
			if ev != BurstFrontier || clock != 3 || hits != 3 {
				t.Fatalf("frontier: ev %v clock %v hits %d, want frontier/3/3", ev, clock, hits)
			}

			// When one reference crosses both bounds, quota wins — the
			// per-reference loop's check order.
			bt = &trace.Batch{Refs: hits4}
			ev, _, _, _, _, _, _ =
				c.ReadBurst(bt, burstShift, 1.0, 1, 1, 0, 0)
			if ev != BurstQuota {
				t.Fatalf("priority: ev %v, want quota before frontier", ev)
			}
		})
	}
}

// newAbsorber builds a packed 4-way L2 (8 sets) with the given blocks
// resident in state st, and an absorber over it with distinct HitLat and
// HitCost so the tests can tell the LatencySum add from the clock add.
func newAbsorber(st LineState, blocks ...uint64) (*Cache, *L2Absorb) {
	l2 := New(Config{SizeBytes: 1 << 10, Ways: 4, LineBytes: 32})
	preload(l2, st, blocks...)
	ab := &L2Absorb{L2: l2, Owner: 3, HitLat: 12, HitCost: 6}
	ab.Bind()
	return l2, ab
}

// TestFusedAbsorbCleanReadHit: an L1 miss that hits a clean local L2 line is
// absorbed in-kernel — the burst continues, the L1 is filled, the L2 hit is
// counted and MRU-promoted, the policy event is buffered and the latency
// lands on both LatencySum and the clock — on every kernel variant.
func TestFusedAbsorbCleanReadHit(t *testing.T) {
	for _, g := range burstGeometries() {
		t.Run(g.name, func(t *testing.T) {
			l2, ab := newAbsorber(Exclusive, 7, 15) // same L2 set, 15 is MRU
			c := New(g.cfg)
			bt := &trace.Batch{Refs: []trace.Ref{bref(7, 0, false), bref(7, 0, false)}}
			ev, instr, clock, hits, _, _, _ :=
				c.ReadBurstFused(bt, burstShift, 1.0, math.MaxUint64, math.Inf(1), 0, 0, ab)
			if ev != BurstBatchEnd || bt.Pos != 2 {
				t.Fatalf("event %v pos %d, want batch-end/2", ev, bt.Pos)
			}
			// First reference: L1 miss, absorbed; second: L1 hit on the fill.
			if hits != 1 || ab.Absorbed != 1 {
				t.Fatalf("hits %d absorbed %d, want 1/1", hits, ab.Absorbed)
			}
			// Clock: 1 (gap) + 6 (HitCost) + 1 (gap); LatencySum: one HitLat.
			if instr != 2 || clock != 8 || ab.LatencySum != 12 {
				t.Fatalf("instr %d clock %v latency %v, want 2/8/12", instr, clock, ab.LatencySum)
			}
			si := l2.SetIndex(7)
			if len(ab.PolBuf) != 1 || ab.PolBuf[0] != uint32(si)<<1|1 {
				t.Fatalf("policy buffer %v, want one hit event for set %d", ab.PolBuf, si)
			}
			// The L1 fill is the descent's: Exclusive, owned by the core.
			w, ok := c.Lookup(7)
			if !ok {
				t.Fatal("absorbed block not filled into L1")
			}
			if ln := c.Line(c.SetIndex(7), w); ln.State != Exclusive || ln.Owner != 3 {
				t.Fatalf("L1 fill %+v, want Exclusive/Owner 3", ln)
			}
			// The L2 commit is Access's: hit counted, line MRU, Reused set,
			// state untouched on a read.
			if st := l2.SetStatsFor(si); st.Hits != 1 || st.Misses != 0 {
				t.Fatalf("L2 set stats %+v, want 1 hit", st)
			}
			lw, _ := l2.Lookup(7)
			if stack := l2.RecencyStack(si); stack[0] != lw {
				t.Fatalf("recency %v, absorbed way %d not MRU", stack, lw)
			}
			if ln := l2.Line(si, lw); !ln.Reused || ln.State != Exclusive || ln.Dirty {
				t.Fatalf("L2 line %+v, want Reused/Exclusive/clean", ln)
			}
		})
	}
}

// TestFusedAbsorbExclusiveWriteHit: a store that misses the L1 and hits an
// already-Exclusive (or Modified) local L2 line needs no upgrade, so it is
// absorbed too — with the descent's Modified/Dirty transition.
func TestFusedAbsorbExclusiveWriteHit(t *testing.T) {
	for _, g := range burstGeometries() {
		t.Run(g.name, func(t *testing.T) {
			l2, ab := newAbsorber(Exclusive, 7)
			c := New(g.cfg)
			bt := &trace.Batch{Refs: []trace.Ref{bref(7, 0, true)}}
			ev, _, _, hits, _, _, _ :=
				c.ReadBurstFused(bt, burstShift, 1.0, math.MaxUint64, math.Inf(1), 0, 0, ab)
			if ev != BurstBatchEnd || hits != 0 || ab.Absorbed != 1 {
				t.Fatalf("ev %v hits %d absorbed %d, want batch-end/0/1", ev, hits, ab.Absorbed)
			}
			if ln := l2.Line(l2.SetIndex(7), 0); ln.State != Modified || !ln.Dirty {
				t.Fatalf("L2 line %+v, want Modified/Dirty", ln)
			}
		})
	}
}

// requireRefusal drives one reference through the fused kernel and demands
// the absorber refused it: BurstMiss with the block and store flag
// published, the L1 miss committed, and the L2 bit-for-bit untouched — no
// counter, no recency movement, no buffered event — so the caller's descent
// replays the access from scratch.
func requireRefusal(t *testing.T, c *Cache, ab *L2Absorb, ref trace.Ref) {
	t.Helper()
	l2 := ab.L2
	si := int((ref.Addr >> burstShift) & uint64(l2.NumSets()-1))
	statsBefore := l2.SetStatsFor(si)
	stackBefore := l2.RecencyStack(si)
	bt := &trace.Batch{Refs: []trace.Ref{ref}}
	ev, _, _, hits, block, _, write :=
		c.ReadBurstFused(bt, burstShift, 1.0, math.MaxUint64, math.Inf(1), 0, 0, ab)
	if ev != BurstMiss || hits != 0 {
		t.Fatalf("ev %v hits %d, want miss/0", ev, hits)
	}
	if block != ref.Addr>>burstShift || write != ref.Write {
		t.Fatalf("event block %d write %v, want %d/%v", block, write, ref.Addr>>burstShift, ref.Write)
	}
	if ab.Absorbed != 0 || len(ab.PolBuf) != 0 || ab.LatencySum != 0 {
		t.Fatalf("refusal leaked state: absorbed %d events %d latency %v", ab.Absorbed, len(ab.PolBuf), ab.LatencySum)
	}
	if st := l2.SetStatsFor(si); st != statsBefore {
		t.Fatalf("refusal touched L2 counters: %+v -> %+v", statsBefore, st)
	}
	if stack := l2.RecencyStack(si); len(stack) != len(stackBefore) || (len(stack) > 0 && stack[0] != stackBefore[0]) {
		t.Fatalf("refusal touched L2 recency: %v -> %v", stackBefore, stack)
	}
	if _, ok := c.Lookup(ref.Addr >> burstShift); ok {
		t.Fatal("refusal filled the L1")
	}
	if st := c.SetStatsFor(c.SetIndex(ref.Addr >> burstShift)); st.Misses != 1 {
		t.Fatalf("L1 miss not committed before refusal: %+v", st)
	}
}

// TestFusedRefusals walks every event class the absorber must hand back to
// the descent, on every kernel variant: a store hitting a Shared line (peer
// invalidation pending), a prefetched line (PrefUseful accounting pending),
// an outright L2 miss, a block held only by a peer segment of the ganged
// slab, and a wide-layout L2.
func TestFusedRefusals(t *testing.T) {
	for _, g := range burstGeometries() {
		t.Run(g.name, func(t *testing.T) {
			t.Run("shared-write", func(t *testing.T) {
				_, ab := newAbsorber(Shared, 7)
				requireRefusal(t, New(g.cfg), ab, bref(7, 0, true))
			})
			t.Run("shared-read-absorbs", func(t *testing.T) {
				// The dual: a read of the same Shared line is clean and must
				// absorb — only the write needs the upgrade.
				_, ab := newAbsorber(Shared, 7)
				c := New(g.cfg)
				bt := &trace.Batch{Refs: []trace.Ref{bref(7, 0, false)}}
				ev, _, _, _, _, _, _ :=
					c.ReadBurstFused(bt, burstShift, 1.0, math.MaxUint64, math.Inf(1), 0, 0, ab)
				if ev != BurstBatchEnd || ab.Absorbed != 1 {
					t.Fatalf("ev %v absorbed %d, want batch-end/1", ev, ab.Absorbed)
				}
			})
			t.Run("prefetched-line", func(t *testing.T) {
				l2, ab := newAbsorber(Exclusive, 7)
				w, _ := l2.Lookup(7)
				l2.Line(l2.SetIndex(7), w).Prefetch = true
				requireRefusal(t, New(g.cfg), ab, bref(7, 0, false))
			})
			t.Run("l2-miss", func(t *testing.T) {
				_, ab := newAbsorber(Exclusive, 15) // 7 not resident
				requireRefusal(t, New(g.cfg), ab, bref(7, 0, false))
			})
			t.Run("remote-holder", func(t *testing.T) {
				// The block lives only in a peer's segment of the ganged
				// slab: the local member view must refuse so the descent's
				// group probe finds the remote copy.
				grp := NewGroup(2, Config{SizeBytes: 1 << 10, Ways: 4, LineBytes: 32})
				grp.Cache(1).Insert(7, InsertMRU, Line{State: Exclusive, Owner: 1})
				ab := &L2Absorb{L2: grp.Cache(0), Owner: 0, HitLat: 12, HitCost: 6}
				ab.Bind()
				requireRefusal(t, New(g.cfg), ab, bref(7, 0, false))
			})
			t.Run("wide-l2", func(t *testing.T) {
				l2 := New(Config{SizeBytes: 1 << 10, Ways: 8, LineBytes: 32, FullyAssoc: true})
				preload(l2, Exclusive, 7)
				ab := &L2Absorb{L2: l2, Owner: 0, HitLat: 12, HitCost: 6}
				ab.Bind() // binds to the never-absorb state
				requireRefusal(t, New(g.cfg), ab, bref(7, 0, false))
			})
		})
	}
}

// TestFusedQuotaFrontierMidAbsorption: an absorbed reference gets the same
// post-commit quota-then-frontier checks as every committed reference, so a
// burst can end at quota or at the frontier ON an absorbed access — with the
// absorption fully committed and trailing references untouched.
func TestFusedQuotaFrontierMidAbsorption(t *testing.T) {
	for _, g := range burstGeometries() {
		t.Run(g.name, func(t *testing.T) {
			// Quota 1: the first (absorbable) reference commits one
			// instruction and trips the quota inside the kernel.
			_, ab := newAbsorber(Exclusive, 7, 15)
			c := New(g.cfg)
			bt := &trace.Batch{Refs: []trace.Ref{bref(7, 0, false), bref(15, 0, false)}}
			ev, instr, _, _, _, _, _ :=
				c.ReadBurstFused(bt, burstShift, 1.0, 1, math.Inf(1), 0, 0, ab)
			if ev != BurstQuota || instr != 1 || bt.Pos != 1 || ab.Absorbed != 1 {
				t.Fatalf("quota: ev %v instr %d pos %d absorbed %d, want quota/1/1/1", ev, instr, bt.Pos, ab.Absorbed)
			}
			if _, ok := c.Lookup(7); !ok {
				t.Fatal("quota exit dropped the committed absorption")
			}

			// Frontier: the gap add leaves the clock at 1, below limit 5;
			// the absorbed hit's HitCost add (6) crosses it.
			_, ab = newAbsorber(Exclusive, 7, 15)
			c = New(g.cfg)
			bt = &trace.Batch{Refs: []trace.Ref{bref(7, 0, false), bref(15, 0, false)}}
			var clock float64
			ev, _, clock, _, _, _, _ =
				c.ReadBurstFused(bt, burstShift, 1.0, math.MaxUint64, 5, 0, 0, ab)
			if ev != BurstFrontier || clock != 7 || bt.Pos != 1 {
				t.Fatalf("frontier: ev %v clock %v pos %d, want frontier/7/1", ev, clock, bt.Pos)
			}
		})
	}
}

// TestFusedNilAbsorberIsPlainBurst: ReadBurstFused with a nil absorber is
// exactly ReadBurst — an L1 miss ends the burst even when the block sits in
// a local L2 somewhere.
func TestFusedNilAbsorberIsPlainBurst(t *testing.T) {
	for _, g := range burstGeometries() {
		t.Run(g.name, func(t *testing.T) {
			c := New(g.cfg)
			bt := &trace.Batch{Refs: []trace.Ref{bref(7, 0, false)}}
			ev, _, _, _, block, _, _ :=
				c.ReadBurstFused(bt, burstShift, 1.0, math.MaxUint64, math.Inf(1), 0, 0, nil)
			if ev != BurstMiss || block != 7 {
				t.Fatalf("ev %v block %d, want miss/7", ev, block)
			}
		})
	}
}

func TestBurstEventString(t *testing.T) {
	want := map[BurstEvent]string{
		BurstBatchEnd:  "batch-end",
		BurstMiss:      "miss",
		BurstUpgrade:   "upgrade",
		BurstQuota:     "quota",
		BurstFrontier:  "frontier",
		BurstEvent(99): "BurstEvent(?)",
	}
	for ev, s := range want {
		if ev.String() != s {
			t.Errorf("%d.String() = %q, want %q", ev, ev.String(), s)
		}
	}
}

// BenchmarkBurstThroughput measures the kernel on the workload it was built
// for — long runs of L1 hits — against per-reference stepping doing what
// the engine's per-reference loop did for each hit: the Access call, the
// CoreStats fields updated one reference at a time and the core clock
// published to its shared slot around the access (the frozen oracle in
// internal/cmp/refstep_test.go). The burst defers all of that to the event
// boundary, so on hit-heavy streams the gap here is the engine's per-hit
// overhead; the end-to-end BenchmarkPhase pair in internal/cmp shows how
// much survives on the miss-heavy scale-8 mixes, whose events cut bursts
// short every ~1.2 references.
func BenchmarkBurstThroughput(b *testing.B) {
	cfg := Config{SizeBytes: 64 * 4 * 32, Ways: 4, LineBytes: 32}
	const resident = 128 // half the ways of every set stay valid
	refs := make([]trace.Ref, 4096)
	for i := range refs {
		refs[i] = bref(uint64(i%resident), int32(i%4), false)
	}
	newCacheWarm := func() *Cache {
		c := New(cfg)
		for blk := uint64(0); blk < resident; blk++ {
			c.Insert(blk, InsertMRU, Line{State: Exclusive})
		}
		return c
	}

	// coreStats mirrors the engine's per-core accounting fields.
	type coreStats struct {
		Instructions, L1Accesses, L1Hits uint64
		Cycles                           float64
	}

	b.Run("burst", func(b *testing.B) {
		c := newCacheWarm()
		var st coreStats
		clocks := make([]float64, 1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			instr := st.Instructions
			clock := clocks[0]
			bt := trace.Batch{Refs: refs}
			for {
				ev, in, ck, hits, _, _, _ := c.ReadBurst(&bt, burstShift, 1.0, math.MaxUint64, math.Inf(1), instr, clock)
				instr, clock = in, ck
				st.L1Accesses += hits
				st.L1Hits += hits
				if ev == BurstBatchEnd {
					break
				}
			}
			// The engine's once-per-turn fold and lazy clock publication.
			st.Instructions = instr
			st.Cycles = clock
			clocks[0] = clock
		}
		b.ReportMetric(float64(b.N)*float64(len(refs))/b.Elapsed().Seconds(), "refs/s")
	})
	b.Run("per-ref", func(b *testing.B) {
		c := newCacheWarm()
		var st coreStats
		clocks := make([]float64, 1)
		quota := uint64(math.MaxUint64)
		limit := math.Inf(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			clock := clocks[0]
			for _, ref := range refs {
				n := uint64(ref.Gap) + 1
				st.Instructions += n
				clock += float64(n) * 1.0
				clocks[0] = clock // published before the descent could read it
				_, hit := c.Access(ref.Addr >> burstShift)
				st.L1Accesses++
				if hit {
					st.L1Hits++
				}
				clocks[0] = clock
				st.Cycles = clock
				if st.Instructions >= quota || clock >= limit {
					break
				}
			}
		}
		b.ReportMetric(float64(b.N)*float64(len(refs))/b.Elapsed().Seconds(), "refs/s")
	})
}
