package cachesim

import (
	"math/bits"

	"ascc/internal/trace"
)

// BurstEvent is why ReadBurst stopped consuming references.
type BurstEvent uint8

const (
	// BurstBatchEnd: the batch cursor reached the end of the decoded
	// references. The caller refills the batch and re-enters the kernel.
	BurstBatchEnd BurstEvent = iota
	// BurstMiss: the reference at the cursor missed this cache. The kernel
	// consumed it — the set-level miss is counted and the instruction-gap
	// clock accounting done — and published the block and store flag; the
	// caller owes the below-L1 descent (L2, coherence, memory) and the
	// latency's clock contribution.
	BurstMiss
	// BurstUpgrade: a store hit a line whose state is not Modified. The
	// kernel consumed the reference as a normal hit (counted, promoted to
	// MRU) and published the block and way; the caller owes the
	// write-through upgrade and the line-state transition. The reference's
	// latency is 0, like every L1 hit.
	BurstUpgrade
	// BurstQuota: the just-consumed reference pushed instr to the quota or
	// beyond. The core's statistics are ready to freeze.
	BurstQuota
	// BurstFrontier: the just-consumed reference pushed clock to the limit
	// or beyond — the core crossed the frontier's runner-up and the caller
	// must rescan for the new minimum core.
	BurstFrontier
)

// L2Absorb is the optional fused L1→L2 absorption state for ReadBurstFused
// (DESIGN.md §15). When non-nil, an L1 miss no longer ends the burst
// unconditionally: the kernel probes the stepping core's member view of the
// ganged L2 slab in place, and when the access is a provably event-free
// clean local L2 hit — a read hit, or a write hit on a line already
// Exclusive or Modified, with no prefetch marker — it commits the entire
// access in-kernel (L2 hit counter and SWAR recency touch, Reused/state
// transitions, L1 victim fill, deferred policy event, latency and clock
// adds) and continues consuming references. Everything else — an L2 miss, a
// write hit on a Shared line (write upgrade, peer invalidation), a
// prefetched line (PrefUseful accounting) — leaves the L2 untouched and
// exits with BurstMiss exactly as the plain kernel would, so the caller's
// descent re-probes and resolves the access with zero duplicated state.
//
// The struct is caller-owned scratch, reused across turns: L2/Owner/HitLat/
// HitCost are per-turn constants, LatencySum and PolBuf are in-out
// accumulators the engine syncs with CoreStats and its deferred-event
// buffer around every descent, and Absorbed counts this call's absorbed
// accesses (the engine folds it into the L1-access/L2-access/L2-local-hit
// statistics and resets it).
type L2Absorb struct {
	// L2 is the stepping core's member view of the ganged slab (its tags,
	// lines and private meta — the exact state CacheGroup.DemandAccess's
	// local probe reads). Call Bind after setting it; wide-map caches bind
	// to the never-absorb state.
	L2 *Cache
	// Owner is the core id stamped on filled L1 lines (Line.Owner).
	Owner int16
	// HitLat is the raw local-hit latency (Params.L2LocalHitCycles): the
	// per-absorbed-access LatencySum add, bit-identical to the descent's
	// st.LatencySum += lat.
	HitLat float64
	// HitCost is HitLat * the core's Overlap factor, precomputed once per
	// core: the per-absorbed-access clock add. Multiplying the same two
	// operands once outside the loop yields the same bits as the per-access
	// lat*Overlap the reference engines compute, so the stepping clock
	// stays bit-identical in stream order.
	HitCost float64
	// LatencySum carries CoreStats.LatencySum through the kernel by value:
	// one HitLat add per absorbed access, in stream order.
	LatencySum float64
	// PolBuf is the engine's deferred policy-event buffer: one packed
	// uint32(set)<<1|1 event is appended per absorbed access, replayed by
	// the engine's flushPolicy with the original access numbers.
	PolBuf []uint32
	// Absorbed counts the accesses this kernel call absorbed.
	Absorbed uint64

	// Geometry of the bound L2, hoisted out of the per-miss probe by Bind:
	// tryAbsorb runs on every L1 miss, so reloading six fields through two
	// pointers there is measurable. tags == nil encodes "never absorb"
	// (wide-map L2, or Bind not called).
	tags    []uint64
	lines   []Line
	meta    []setMeta
	setMask uint64
	stride  int
	ways    int
}

// Bind hoists the bound L2's probe geometry into the absorber. Call once
// per turn after setting L2 (the backing arrays are fixed for a cache's
// lifetime, so rebinding is only needed when L2 changes). A wide-map L2
// binds to the never-absorb state: every access exits as BurstMiss and the
// descent handles it, as before the fused kernel existed.
func (ab *L2Absorb) Bind() {
	l2 := ab.L2
	if l2 == nil || l2.wide != nil {
		ab.tags = nil
		return
	}
	ab.tags = l2.tags
	ab.lines = l2.lines
	ab.meta = l2.meta
	ab.setMask = l2.setMask
	ab.stride = l2.stride
	ab.ways = l2.ways
}

// tryAbsorb resolves an L1-missed reference against the local L2 segment
// and commits it in-kernel when it is a provably event-free clean local
// hit. On refusal (L2 miss, prefetched line, or a write needing the Shared
// upgrade) it returns false having mutated nothing — no counter, no
// recency touch — so the caller's descent replays the access from scratch
// and every engine counts it at the same call sites.
//
// The commit is the exact mutation sequence of the engine descent's clean
// local-hit path (l2Demand and l2DemandBatched agree): the set hit counter
// and MRU touch that l2.Access performs, then Reused, the write's
// Modified/Dirty transition, and the L1 victim fill (Insert with an
// Exclusive line owned by this core; L1 evictions are clean — the L1 is
// write-through — so the displaced line simply vanishes, as in fillL1).
func (ab *L2Absorb) tryAbsorb(l1 *Cache, block uint64, write bool) bool {
	if ab.tags == nil {
		return false
	}
	si := int(block & ab.setMask)
	base := si * ab.stride
	m := &ab.meta[si]
	var match uint64
	switch ab.ways {
	case 8:
		t := ab.tags[base : base+8 : base+8]
		match = b2u(t[0] == block) | b2u(t[1] == block)<<1 |
			b2u(t[2] == block)<<2 | b2u(t[3] == block)<<3 |
			b2u(t[4] == block)<<4 | b2u(t[5] == block)<<5 |
			b2u(t[6] == block)<<6 | b2u(t[7] == block)<<7
	case 4:
		t := ab.tags[base : base+4 : base+4]
		match = b2u(t[0] == block) | b2u(t[1] == block)<<1 |
			b2u(t[2] == block)<<2 | b2u(t[3] == block)<<3
	default:
		match = matchMask(ab.tags[base:base+ab.ways:base+ab.ways], block)
	}
	if match &= m.valid; match == 0 {
		return false
	}
	w := bits.TrailingZeros64(match)
	line := &ab.lines[base+w]
	if line.Prefetch || (write && line.State == Shared) {
		return false
	}
	m.hits++
	o := m.order
	p := nibblePos(o, w)
	low := uint64(1)<<(4*uint(p)) - 1
	hi := ^uint64(0) << (4 * uint(p+1))
	m.order = o&hi | (o&low)<<4 | uint64(w)
	line.Reused = true
	if write {
		line.State = Modified
		line.Dirty = true
	}
	l1.Insert(block, InsertMRU, Line{State: Exclusive, Owner: ab.Owner})
	ab.PolBuf = append(ab.PolBuf, uint32(si)<<1|1)
	ab.LatencySum += ab.HitLat
	// Absorbed is advanced by the kernel loop at exit (it keeps the count
	// in a register), not here.
	return true
}

// String names the event (tests and debugging).
func (e BurstEvent) String() string {
	switch e {
	case BurstBatchEnd:
		return "batch-end"
	case BurstMiss:
		return "miss"
	case BurstUpgrade:
		return "upgrade"
	case BurstQuota:
		return "quota"
	case BurstFrontier:
		return "frontier"
	}
	return "BurstEvent(?)"
}

// ReadBurst consumes consecutive references from bt until one needs the
// hierarchy below this cache, then returns at that event. Per reference it
// probes the ways-major tag row, updates the set's packed recency word and
// hit/miss counters, and advances the deferred instruction/clock
// accounting; clock publication, CoreStats folding and all below-L1 work
// (demand descent, write-through upgrade, latency) belong to the caller.
// Read hits and stores to already-Modified lines are consumed without
// leaving the kernel; a miss or a store-upgrade consumes the reference's
// L1-level part and reports the remainder through block/way/write.
//
// The state exchange is deliberately all scalars: with events every ~1-2
// references on miss-heavy workloads, the call boundary is the kernel's
// per-reference overhead, and scalar arguments and results travel in
// registers under the Go ABI — the only memory store per call is the batch
// cursor. The parameters are the stepping bounds (quota on instructions,
// the frontier's runner-up clock as limit) and the running instr/clock;
// the results are the event, the advanced instr/clock, the number of
// references that hit (every consumed reference hit except a trailing
// BurstMiss, so total consumed is hits plus one on a miss), and the event
// reference's block, way (BurstUpgrade) and store flag (BurstMiss).
//
// Accounting contract (what keeps golden results bit-identical to per-ref
// stepping): for every consumed reference the kernel adds
// float64(gap+1)*baseCPI to clock — the same float additions in the same
// order as the per-reference loop performed them. References that stay in
// this cache have latency 0, whose per-ref step would further add
// 0.0*Overlap to a finite non-negative clock: the identity, so skipping it
// changes no bits. An event reference's latency contribution is added by
// the caller after the descent, exactly where the per-ref loop added it.
// The packed 4-way loop lives directly in ReadBurst — the geometry every
// L1 in the harness uses, so this is where the simulator spends its life
// and a second call hop per event would be measurable. All cache fields
// are hoisted into locals before the loop: the in-loop stores go through
// meta (set counters, recency) and never through the Cache struct or a
// slice header, so nothing needs reloading per reference.
func (c *Cache) ReadBurst(bt *trace.Batch, shift uint, baseCPI float64, quota uint64, limit float64, instr uint64, clock float64) (ev BurstEvent, instrOut uint64, clockOut float64, hits uint64, block uint64, way int, write bool) {
	return c.readBurst(bt, shift, baseCPI, quota, limit, instr, clock, nil)
}

// ReadBurstFused is ReadBurst extended across the L1/L2 boundary: an L1
// miss first runs ab.tryAbsorb against the local L2 segment, and an
// absorbed clean local hit adds ab.HitCost to the stepping clock (the
// reference engines' lat*Overlap add, in stream order), runs the same
// quota-then-frontier checks every committed reference gets, and continues
// the burst. Only true events — an L2 miss or upgrade-needing write
// (BurstMiss), an L1 store upgrade, quota, frontier, batch end — exit the
// kernel, which drops the exit rate from one per L1 miss to one per L2
// event and amortises the caller's turn machinery over whole L2-hit runs
// (DESIGN.md §15). With a nil absorber it is exactly ReadBurst.
func (c *Cache) ReadBurstFused(bt *trace.Batch, shift uint, baseCPI float64, quota uint64, limit float64, instr uint64, clock float64, ab *L2Absorb) (ev BurstEvent, instrOut uint64, clockOut float64, hits uint64, block uint64, way int, write bool) {
	return c.readBurst(bt, shift, baseCPI, quota, limit, instr, clock, ab)
}

func (c *Cache) readBurst(bt *trace.Batch, shift uint, baseCPI float64, quota uint64, limit float64, instr uint64, clock float64, ab *L2Absorb) (ev BurstEvent, instrOut uint64, clockOut float64, hits uint64, block uint64, way int, write bool) {
	if c.wide != nil || c.ways != 4 {
		return c.readBurstGeneric(bt, shift, baseCPI, quota, limit, instr, clock, ab)
	}
	refs := bt.Refs
	cur := bt.Pos
	start := cur
	setMask := c.setMask
	stride := c.stride
	tags := c.tags
	meta := c.meta
	lines := c.lines
	ev = BurstBatchEnd
	var evBlock uint64
	var evWay int
	var evWrite bool
	var absorbed uint64
	for cur < len(refs) {
		ref := refs[cur]
		block := ref.Addr >> shift
		si := int(block & setMask)
		base := si * stride
		t := tags[base : base+4 : base+4]
		match := b2u(t[0] == block) | b2u(t[1] == block)<<1 |
			b2u(t[2] == block)<<2 | b2u(t[3] == block)<<3
		m := &meta[si]
		if match &= m.valid; match == 0 {
			// Miss: the reference is still consumed — the set counter and
			// the instruction-gap clock add land here, in stream order —
			// and the below-L1 remainder is the caller's.
			m.misses++
			cur++
			n := uint64(ref.Gap) + 1
			instr += n
			clock += float64(n) * baseCPI
			if ab != nil && ab.tryAbsorb(c, block, ref.Write) {
				// Clean local L2 hit, fully committed in-kernel (the L1
				// fill went through Insert, which mutates the hoisted
				// slices' shared backing, so the loop's locals stay
				// coherent). Its latency lands on the clock here — the
				// descent's lat*Overlap add, in stream order — and the
				// reference gets the same post-commit checks below.
				absorbed++
				clock += ab.HitCost
				if instr >= quota {
					ev = BurstQuota
					break
				}
				if clock >= limit {
					ev = BurstFrontier
					break
				}
				continue
			}
			evBlock, evWrite = block, ref.Write
			ev = BurstMiss
			break
		}
		w := bits.TrailingZeros64(match)
		m.hits++
		// Fused MRU touch, exactly as in Access: the SWAR zero-nibble rank
		// search, then ranks below it shift down one nibble and way w takes
		// rank 0. (A compare-chain rank search profiles ~2x slower here —
		// three setcc chains against nibblePos's five straight ALU ops.)
		o := m.order
		p := nibblePos(o, w)
		low := uint64(1)<<(4*uint(p)) - 1
		hi := ^uint64(0) << (4 * uint(p+1))
		m.order = o&hi | (o&low)<<4 | uint64(w)
		cur++
		n := uint64(ref.Gap) + 1
		instr += n
		clock += float64(n) * baseCPI
		if ref.Write && lines[base+w].State != Modified {
			evBlock, evWay = block, w
			ev = BurstUpgrade
			break
		}
		// Event checks run after the reference commits, quota before
		// frontier — the per-reference loop's exact order and priority.
		// Miss/upgrade references skip them: their below-L1 part is still
		// pending, so the caller applies the same checks after finishing
		// the reference.
		if instr >= quota {
			ev = BurstQuota
			break
		}
		if clock >= limit {
			ev = BurstFrontier
			break
		}
	}
	bt.Pos = cur
	// Every consumed reference hit the L1 except the absorbed ones (L1
	// misses committed against the L2 in-kernel) and a trailing miss — at
	// most one unabsorbed miss is consumed per call, so the hit count is
	// derived at exit instead of maintained per reference.
	hits = uint64(cur-start) - absorbed
	if ev == BurstMiss {
		hits--
	}
	if absorbed != 0 {
		ab.Absorbed += absorbed
	}
	return ev, instr, clock, hits, evBlock, evWay, evWrite
}

// readBurstGeneric covers every other geometry: packed rows of any
// associativity via matchMask, and the wide fallback via probe/touch.
func (c *Cache) readBurstGeneric(bt *trace.Batch, shift uint, baseCPI float64, quota uint64, limit float64, instr uint64, clock float64, ab *L2Absorb) (BurstEvent, uint64, float64, uint64, uint64, int, bool) {
	refs := bt.Refs
	cur := bt.Pos
	start := cur
	ev := BurstBatchEnd
	var evBlock uint64
	var evWay int
	var evWrite bool
	var absorbed uint64
	for cur < len(refs) {
		ref := refs[cur]
		block := ref.Addr >> shift
		si := int(block & c.setMask)
		base := si * c.stride
		// Resolve the reference against this cache: hitWay < 0 is a miss.
		hitWay := -1
		if c.wide == nil {
			m := &c.meta[si]
			match := matchMask(c.tags[base:base+c.ways:base+c.ways], block)
			if match &= m.valid; match != 0 {
				w := bits.TrailingZeros64(match)
				hitWay = w
				m.hits++
				o := m.order
				p := nibblePos(o, w)
				low := uint64(1)<<(4*uint(p)) - 1
				hi := ^uint64(0) << (4 * uint(p+1))
				m.order = o&hi | (o&low)<<4 | uint64(w)
			} else {
				m.misses++
			}
		} else {
			if w := c.probe(si, block); w >= 0 {
				hitWay = w
				c.meta[si].hits++
				c.touch(si, w)
			} else {
				c.meta[si].misses++
			}
		}
		cur++
		n := uint64(ref.Gap) + 1
		instr += n
		clock += float64(n) * baseCPI
		if hitWay < 0 {
			if ab != nil && ab.tryAbsorb(c, block, ref.Write) {
				absorbed++
				clock += ab.HitCost
				if instr >= quota {
					ev = BurstQuota
					break
				}
				if clock >= limit {
					ev = BurstFrontier
					break
				}
				continue
			}
			evBlock, evWrite = block, ref.Write
			ev = BurstMiss
			break
		}
		if ref.Write && c.lines[base+hitWay].State != Modified {
			evBlock, evWay = block, hitWay
			ev = BurstUpgrade
			break
		}
		if instr >= quota {
			ev = BurstQuota
			break
		}
		if clock >= limit {
			ev = BurstFrontier
			break
		}
	}
	bt.Pos = cur
	hits := uint64(cur-start) - absorbed
	if ev == BurstMiss {
		hits--
	}
	if absorbed != 0 {
		ab.Absorbed += absorbed
	}
	return ev, instr, clock, hits, evBlock, evWay, evWrite
}
