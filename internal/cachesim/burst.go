package cachesim

import (
	"math/bits"

	"ascc/internal/trace"
)

// BurstEvent is why ReadBurst stopped consuming references.
type BurstEvent uint8

const (
	// BurstBatchEnd: the batch cursor reached the end of the decoded
	// references. The caller refills the batch and re-enters the kernel.
	BurstBatchEnd BurstEvent = iota
	// BurstMiss: the reference at the cursor missed this cache. The kernel
	// consumed it — the set-level miss is counted and the instruction-gap
	// clock accounting done — and published the block and store flag; the
	// caller owes the below-L1 descent (L2, coherence, memory) and the
	// latency's clock contribution.
	BurstMiss
	// BurstUpgrade: a store hit a line whose state is not Modified. The
	// kernel consumed the reference as a normal hit (counted, promoted to
	// MRU) and published the block and way; the caller owes the
	// write-through upgrade and the line-state transition. The reference's
	// latency is 0, like every L1 hit.
	BurstUpgrade
	// BurstQuota: the just-consumed reference pushed instr to the quota or
	// beyond. The core's statistics are ready to freeze.
	BurstQuota
	// BurstFrontier: the just-consumed reference pushed clock to the limit
	// or beyond — the core crossed the frontier's runner-up and the caller
	// must rescan for the new minimum core.
	BurstFrontier
)

// String names the event (tests and debugging).
func (e BurstEvent) String() string {
	switch e {
	case BurstBatchEnd:
		return "batch-end"
	case BurstMiss:
		return "miss"
	case BurstUpgrade:
		return "upgrade"
	case BurstQuota:
		return "quota"
	case BurstFrontier:
		return "frontier"
	}
	return "BurstEvent(?)"
}

// ReadBurst consumes consecutive references from bt until one needs the
// hierarchy below this cache, then returns at that event. Per reference it
// probes the ways-major tag row, updates the set's packed recency word and
// hit/miss counters, and advances the deferred instruction/clock
// accounting; clock publication, CoreStats folding and all below-L1 work
// (demand descent, write-through upgrade, latency) belong to the caller.
// Read hits and stores to already-Modified lines are consumed without
// leaving the kernel; a miss or a store-upgrade consumes the reference's
// L1-level part and reports the remainder through block/way/write.
//
// The state exchange is deliberately all scalars: with events every ~1-2
// references on miss-heavy workloads, the call boundary is the kernel's
// per-reference overhead, and scalar arguments and results travel in
// registers under the Go ABI — the only memory store per call is the batch
// cursor. The parameters are the stepping bounds (quota on instructions,
// the frontier's runner-up clock as limit) and the running instr/clock;
// the results are the event, the advanced instr/clock, the number of
// references that hit (every consumed reference hit except a trailing
// BurstMiss, so total consumed is hits plus one on a miss), and the event
// reference's block, way (BurstUpgrade) and store flag (BurstMiss).
//
// Accounting contract (what keeps golden results bit-identical to per-ref
// stepping): for every consumed reference the kernel adds
// float64(gap+1)*baseCPI to clock — the same float additions in the same
// order as the per-reference loop performed them. References that stay in
// this cache have latency 0, whose per-ref step would further add
// 0.0*Overlap to a finite non-negative clock: the identity, so skipping it
// changes no bits. An event reference's latency contribution is added by
// the caller after the descent, exactly where the per-ref loop added it.
// The packed 4-way loop lives directly in ReadBurst — the geometry every
// L1 in the harness uses, so this is where the simulator spends its life
// and a second call hop per event would be measurable. All cache fields
// are hoisted into locals before the loop: the in-loop stores go through
// meta (set counters, recency) and never through the Cache struct or a
// slice header, so nothing needs reloading per reference.
func (c *Cache) ReadBurst(bt *trace.Batch, shift uint, baseCPI float64, quota uint64, limit float64, instr uint64, clock float64) (ev BurstEvent, instrOut uint64, clockOut float64, hits uint64, block uint64, way int, write bool) {
	if c.wide != nil || c.ways != 4 {
		return c.readBurstGeneric(bt, shift, baseCPI, quota, limit, instr, clock)
	}
	refs := bt.Refs
	cur := bt.Pos
	start := cur
	setMask := c.setMask
	stride := c.stride
	tags := c.tags
	meta := c.meta
	lines := c.lines
	ev = BurstBatchEnd
	var evBlock uint64
	var evWay int
	var evWrite bool
	for cur < len(refs) {
		ref := refs[cur]
		block := ref.Addr >> shift
		si := int(block & setMask)
		base := si * stride
		t := tags[base : base+4 : base+4]
		match := b2u(t[0] == block) | b2u(t[1] == block)<<1 |
			b2u(t[2] == block)<<2 | b2u(t[3] == block)<<3
		m := &meta[si]
		if match &= m.valid; match == 0 {
			// Miss: the reference is still consumed — the set counter and
			// the instruction-gap clock add land here, in stream order —
			// and the below-L1 remainder is the caller's.
			m.misses++
			cur++
			n := uint64(ref.Gap) + 1
			instr += n
			clock += float64(n) * baseCPI
			evBlock, evWrite = block, ref.Write
			ev = BurstMiss
			break
		}
		w := bits.TrailingZeros64(match)
		m.hits++
		// Fused MRU touch, exactly as in Access: the SWAR zero-nibble rank
		// search, then ranks below it shift down one nibble and way w takes
		// rank 0. (A compare-chain rank search profiles ~2x slower here —
		// three setcc chains against nibblePos's five straight ALU ops.)
		o := m.order
		p := nibblePos(o, w)
		low := uint64(1)<<(4*uint(p)) - 1
		hi := ^uint64(0) << (4 * uint(p+1))
		m.order = o&hi | (o&low)<<4 | uint64(w)
		cur++
		n := uint64(ref.Gap) + 1
		instr += n
		clock += float64(n) * baseCPI
		if ref.Write && lines[base+w].State != Modified {
			evBlock, evWay = block, w
			ev = BurstUpgrade
			break
		}
		// Event checks run after the reference commits, quota before
		// frontier — the per-reference loop's exact order and priority.
		// Miss/upgrade references skip them: their below-L1 part is still
		// pending, so the caller applies the same checks after finishing
		// the reference.
		if instr >= quota {
			ev = BurstQuota
			break
		}
		if clock >= limit {
			ev = BurstFrontier
			break
		}
	}
	bt.Pos = cur
	// Every consumed reference hit except a trailing miss — at most one
	// miss is consumed per call, so the hit count is derived at exit
	// instead of maintained per reference.
	hits = uint64(cur - start)
	if ev == BurstMiss {
		hits--
	}
	return ev, instr, clock, hits, evBlock, evWay, evWrite
}

// readBurstGeneric covers every other geometry: packed rows of any
// associativity via matchMask, and the wide fallback via probe/touch.
func (c *Cache) readBurstGeneric(bt *trace.Batch, shift uint, baseCPI float64, quota uint64, limit float64, instr uint64, clock float64) (BurstEvent, uint64, float64, uint64, uint64, int, bool) {
	refs := bt.Refs
	cur := bt.Pos
	start := cur
	ev := BurstBatchEnd
	var evBlock uint64
	var evWay int
	var evWrite bool
	for cur < len(refs) {
		ref := refs[cur]
		block := ref.Addr >> shift
		si := int(block & c.setMask)
		base := si * c.stride
		// Resolve the reference against this cache: hitWay < 0 is a miss.
		hitWay := -1
		if c.wide == nil {
			m := &c.meta[si]
			match := matchMask(c.tags[base:base+c.ways:base+c.ways], block)
			if match &= m.valid; match != 0 {
				w := bits.TrailingZeros64(match)
				hitWay = w
				m.hits++
				o := m.order
				p := nibblePos(o, w)
				low := uint64(1)<<(4*uint(p)) - 1
				hi := ^uint64(0) << (4 * uint(p+1))
				m.order = o&hi | (o&low)<<4 | uint64(w)
			} else {
				m.misses++
			}
		} else {
			if w := c.probe(si, block); w >= 0 {
				hitWay = w
				c.meta[si].hits++
				c.touch(si, w)
			} else {
				c.meta[si].misses++
			}
		}
		cur++
		n := uint64(ref.Gap) + 1
		instr += n
		clock += float64(n) * baseCPI
		if hitWay < 0 {
			evBlock, evWrite = block, ref.Write
			ev = BurstMiss
			break
		}
		if ref.Write && c.lines[base+hitWay].State != Modified {
			evBlock, evWay = block, hitWay
			ev = BurstUpgrade
			break
		}
		if instr >= quota {
			ev = BurstQuota
			break
		}
		if clock >= limit {
			ev = BurstFrontier
			break
		}
	}
	bt.Pos = cur
	hits := uint64(cur - start)
	if ev == BurstMiss {
		hits--
	}
	return ev, instr, clock, hits, evBlock, evWay, evWrite
}
