package ascc_test

import (
	"testing"

	"ascc"
)

// TestSteadyStateRunAllocations pins the simulator's allocation behaviour:
// once a System is built, driving it allocates only the Results value each
// Run returns (a header plus the per-core stats slice). The reference
// batching, probe paths, policy counters and eviction handling must all be
// allocation-free — a regression here silently costs double-digit percent
// throughput, so the budget is enforced, not just benchmarked.
func TestSteadyStateRunAllocations(t *testing.T) {
	cfg := ascc.DefaultConfig()
	runner := ascc.NewRunner(cfg)
	sys, err := runner.NewMixSystem([]int{445, 444, 456, 471}, ascc.AVGCC)
	if err != nil {
		t.Fatal(err)
	}
	// One untimed run warms every lazily initialised path (zipf tables,
	// policy state) so the measurement sees the steady state the end-to-end
	// benchmark reports.
	sys.Run(1_000, 20_000)

	allocs := testing.AllocsPerRun(5, func() {
		sys.Run(1_000, 20_000)
	})
	// Budget 8: Results currently costs 2 allocations per Run and the rest
	// of the engine none; 8 leaves room for small accounting changes while
	// still catching any per-reference or per-batch allocation creeping in.
	if allocs > 8 {
		t.Errorf("System.Run allocates %.0f times per run, budget is 8", allocs)
	}
}

// TestReplaySteadyStateAllocations pins the arena replay path to the same
// budget. The first System's runs populate the runner's packed trace
// arenas; a second System over the same mix then replays an already-frozen
// prefix, so its Run must be a pure decode loop — no chunk growth, no
// per-batch or per-reference allocation.
func TestReplaySteadyStateAllocations(t *testing.T) {
	cfg := ascc.DefaultConfig()
	if !cfg.TraceCache {
		t.Fatal("trace cache is off by default; replay path untested")
	}
	runner := ascc.NewRunner(cfg)
	warm, err := runner.NewMixSystem([]int{445, 444, 456, 471}, ascc.AVGCC)
	if err != nil {
		t.Fatal(err)
	}
	warm.Run(1_000, 150_000) // extend the arenas well past the measured window

	sys, err := runner.NewMixSystem([]int{445, 444, 456, 471}, ascc.AVGCC)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(1_000, 20_000)

	allocs := testing.AllocsPerRun(5, func() {
		sys.Run(1_000, 20_000)
	})
	if allocs > 8 {
		t.Errorf("replaying System.Run allocates %.0f times per run, budget is 8", allocs)
	}
}
