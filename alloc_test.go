package ascc_test

import (
	"testing"

	"ascc"
)

// TestSteadyStateRunAllocations pins the simulator's allocation behaviour:
// once a System is built, driving it allocates only the Results value each
// Run returns (a header plus the per-core stats slice). The reference
// batching, the run-to-event kernel under the default per-reference
// descent, the frontier scratch, the probe paths, policy counters and
// eviction handling must all be allocation-free — a regression here
// silently costs double-digit percent throughput, so the budget is
// enforced, not just benchmarked. The default machine has 4-way L1s, so
// this drives the specialized packed kernel;
// TestGenericBurstSteadyStateAllocations covers the other kernel path.
func TestSteadyStateRunAllocations(t *testing.T) {
	cfg := ascc.DefaultConfig()
	runner := ascc.NewRunner(cfg)
	sys, err := runner.NewMixSystem([]int{445, 444, 456, 471}, ascc.AVGCC)
	if err != nil {
		t.Fatal(err)
	}
	// One untimed run warms every lazily initialised path (zipf tables,
	// policy state) so the measurement sees the steady state the end-to-end
	// benchmark reports.
	sys.Run(1_000, 20_000)

	allocs := testing.AllocsPerRun(5, func() {
		sys.Run(1_000, 20_000)
	})
	// Budget 8: Results currently costs 2 allocations per Run and the rest
	// of the engine none; 8 leaves room for small accounting changes while
	// still catching any per-reference or per-batch allocation creeping in.
	if allocs > 8 {
		t.Errorf("System.Run allocates %.0f times per run, budget is 8", allocs)
	}
}

// TestFusedSteadyStateRunAllocations pins the fused L1→L2 engine (-engine
// fused, the -sim-parallel prerequisite) to the same budget: the in-kernel
// absorption path — the L2 probe, the L1 victim fill and the deferred
// policy-event buffer, which must reuse its capacity once grown — must be
// allocation-free just like the default descent.
func TestFusedSteadyStateRunAllocations(t *testing.T) {
	cfg := ascc.DefaultConfig()
	cfg.Engine = ascc.EngineFused
	runner := ascc.NewRunner(cfg)
	sys, err := runner.NewMixSystem([]int{445, 444, 456, 471}, ascc.AVGCC)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(1_000, 20_000)

	allocs := testing.AllocsPerRun(5, func() {
		sys.Run(1_000, 20_000)
	})
	if allocs > 8 {
		t.Errorf("fused-engine System.Run allocates %.0f times per run, budget is 8", allocs)
	}
}

// TestReplaySteadyStateAllocations pins the arena replay path to the same
// budget. The first System's runs populate the runner's packed trace
// arenas; a second System over the same mix then replays an already-frozen
// prefix, so its Run must be a pure decode loop — no chunk growth, no
// per-batch or per-reference allocation.
func TestReplaySteadyStateAllocations(t *testing.T) {
	cfg := ascc.DefaultConfig()
	if !cfg.TraceCache {
		t.Fatal("trace cache is off by default; replay path untested")
	}
	runner := ascc.NewRunner(cfg)
	warm, err := runner.NewMixSystem([]int{445, 444, 456, 471}, ascc.AVGCC)
	if err != nil {
		t.Fatal(err)
	}
	warm.Run(1_000, 150_000) // extend the arenas well past the measured window

	sys, err := runner.NewMixSystem([]int{445, 444, 456, 471}, ascc.AVGCC)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(1_000, 20_000)

	allocs := testing.AllocsPerRun(5, func() {
		sys.Run(1_000, 20_000)
	})
	if allocs > 8 {
		t.Errorf("replaying System.Run allocates %.0f times per run, budget is 8", allocs)
	}
}

// TestStoreReplaySteadyStateAllocations pins the persistent-store replay
// path to the same budget. One runner synthesises the mix streams and
// flushes them to a store directory; a second runner (a "new process")
// adopts the mmap'd chunk files directly as its arena chunk tables, so a
// steady-state Run over the frozen prefix must cost no more than in-memory
// replay — the mmap tier is free once adopted, not cheaper-but-allocating.
func TestStoreReplaySteadyStateAllocations(t *testing.T) {
	cfg := ascc.DefaultConfig()
	cfg.ArenaStoreDir = t.TempDir()
	mix := []int{445, 444, 456, 471}

	warmRunner := ascc.NewRunner(cfg)
	warm, err := warmRunner.NewMixSystem(mix, ascc.AVGCC)
	if err != nil {
		t.Fatal(err)
	}
	warm.Run(1_000, 150_000) // extend the arenas well past the measured window
	if err := warmRunner.FlushArenas(); err != nil {
		t.Fatal(err)
	}

	sys, err := ascc.NewRunner(cfg).NewMixSystem(mix, ascc.AVGCC)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(1_000, 20_000)

	allocs := testing.AllocsPerRun(5, func() {
		sys.Run(1_000, 20_000)
	})
	if allocs > 8 {
		t.Errorf("store-replaying System.Run allocates %.0f times per run, budget is 8", allocs)
	}
}

// TestSampledReplaySteadyStateAllocations pins the set-sampled fast path
// (DESIGN.md §16) to the same budget. The warm run filters the packed full
// streams into cached sampled sub-arenas; a second System over the same mix
// then replays the compact streams' frozen prefix, so its Run must be the
// same pure decode loop as full-fidelity replay — the set-index translation
// wrapper and the in-place batched-event remap must not allocate.
func TestSampledReplaySteadyStateAllocations(t *testing.T) {
	cfg := ascc.DefaultConfig()
	cfg.SampleDen = 8
	runner := ascc.NewRunner(cfg)
	warm, err := runner.NewMixSystem([]int{445, 444, 456, 471}, ascc.AVGCC)
	if err != nil {
		t.Fatal(err)
	}
	warm.Run(1_000, 150_000) // extend the sampled sub-arenas past the window

	sys, err := runner.NewMixSystem([]int{445, 444, 456, 471}, ascc.AVGCC)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(1_000, 20_000)

	allocs := testing.AllocsPerRun(5, func() {
		sys.Run(1_000, 20_000)
	})
	if allocs > 8 {
		t.Errorf("sampled System.Run allocates %.0f times per run, budget is 8", allocs)
	}
}

// TestSampledStoreReplaySteadyStateAllocations pins the sampled replay over
// the persistent store tier: the filtered sub-arena is an ordinary arena to
// the store, so a second runner adopting the flushed chunk files must replay
// the compact stream at the in-memory budget too.
func TestSampledStoreReplaySteadyStateAllocations(t *testing.T) {
	cfg := ascc.DefaultConfig()
	cfg.ArenaStoreDir = t.TempDir()
	cfg.SampleDen = 8
	mix := []int{445, 444, 456, 471}

	warmRunner := ascc.NewRunner(cfg)
	warm, err := warmRunner.NewMixSystem(mix, ascc.AVGCC)
	if err != nil {
		t.Fatal(err)
	}
	warm.Run(1_000, 150_000)
	if err := warmRunner.FlushArenas(); err != nil {
		t.Fatal(err)
	}

	sys, err := ascc.NewRunner(cfg).NewMixSystem(mix, ascc.AVGCC)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(1_000, 20_000)

	allocs := testing.AllocsPerRun(5, func() {
		sys.Run(1_000, 20_000)
	})
	if allocs > 8 {
		t.Errorf("sampled store-replaying System.Run allocates %.0f times per run, budget is 8", allocs)
	}
}

// TestGenericBurstSteadyStateAllocations pins the non-4-way burst kernel
// (the generic packed/wide path, forced onto the fused engine so the
// generic kernel's absorption branch is covered too) to the same budget.
// The default harness machines all carry 4-way L1s, so without this test
// the generic kernel could silently grow a per-reference or per-event
// allocation and no gate would notice until someone swept L1
// associativity.
func TestGenericBurstSteadyStateAllocations(t *testing.T) {
	cfg := ascc.DefaultConfig()
	cfg.Engine = ascc.EngineFused
	cfg.WarmupInstr = 1_000
	cfg.MeasureInstr = 20_000
	runner := ascc.NewRunner(cfg)
	p := cfg.Params(1)
	p.L1.Ways = 2 // routes every L1 read through the generic burst kernel
	_, sys, err := runner.RunSingle(444, p)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(1_000, 20_000)

	allocs := testing.AllocsPerRun(5, func() {
		sys.Run(1_000, 20_000)
	})
	if allocs > 8 {
		t.Errorf("generic-kernel System.Run allocates %.0f times per run, budget is 8", allocs)
	}
}
