package ascc_test

import (
	"strings"
	"testing"

	"ascc"
)

// tinyConfig keeps API tests fast.
func tinyConfig() ascc.Config {
	cfg := ascc.DefaultConfig()
	cfg.WarmupInstr = 200_000
	cfg.MeasureInstr = 500_000
	return cfg
}

func TestDefaultConfig(t *testing.T) {
	cfg := ascc.DefaultConfig()
	if cfg.Scale != 8 || cfg.MeasureInstr == 0 || cfg.WarmupInstr == 0 {
		t.Fatalf("unexpected default config: %+v", cfg)
	}
	paper := ascc.PaperScaleConfig()
	if paper.Scale != 1 || paper.MeasureInstr <= cfg.MeasureInstr {
		t.Fatalf("paper-scale config wrong: %+v", paper)
	}
}

func TestPoliciesList(t *testing.T) {
	pols := ascc.Policies()
	if len(pols) != 15 {
		t.Fatalf("have %d policies, want 15", len(pols))
	}
	seen := map[ascc.Policy]bool{}
	for _, p := range pols {
		if seen[p] {
			t.Fatalf("duplicate policy %q", p)
		}
		seen[p] = true
	}
	for _, want := range []ascc.Policy{ascc.Baseline, ascc.ASCC, ascc.AVGCC, ascc.QoSAVGCC, ascc.DSR, ascc.ECC} {
		if !seen[want] {
			t.Fatalf("missing policy %q", want)
		}
	}
}

func TestRunMixAPI(t *testing.T) {
	runner := ascc.NewRunner(tinyConfig())
	res, err := runner.RunMix([]int{445, 456}, ascc.ASCC)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "ASCC" || len(res.Cores) != 2 {
		t.Fatalf("unexpected results: policy=%q cores=%d", res.Policy, len(res.Cores))
	}
	for i, c := range res.Cores {
		if c.CPI() <= 0 {
			t.Errorf("core %d CPI %v", i, c.CPI())
		}
	}
	if _, err := runner.RunMix([]int{999}, ascc.ASCC); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := runner.RunMix([]int{445}, ascc.Policy("nope")); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestEveryPolicyRuns(t *testing.T) {
	runner := ascc.NewRunner(tinyConfig())
	for _, pol := range ascc.Policies() {
		res, err := runner.RunMix([]int{445, 456}, pol)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		for i, c := range res.Cores {
			if c.L2Accesses != c.L2LocalHits+c.L2RemoteHits+c.L2MemFills {
				t.Errorf("%s core %d: access conservation broken", pol, i)
			}
		}
	}
}

func TestBenchmarksAPI(t *testing.T) {
	if len(ascc.Benchmarks()) != 13 {
		t.Fatalf("%d benchmarks, want 13", len(ascc.Benchmarks()))
	}
	p, err := ascc.BenchmarkByID(433)
	if err != nil || p.Name != "milc" {
		t.Fatalf("BenchmarkByID(433) = %v, %v", p, err)
	}
	if len(ascc.TwoAppMixes()) != 14 || len(ascc.FourAppMixes()) != 6 {
		t.Fatal("mix lists wrong")
	}
	if ascc.MixName([]int{445, 456}) != "445+456" {
		t.Fatal("MixName wrong")
	}
	if got := ascc.ExtendMix([]int{445, 456}, 5); ascc.MixName(got) != "445+456+445+456+445" {
		t.Fatalf("ExtendMix to 5 = %s", ascc.MixName(got))
	}
	if got := ascc.ExtendMix([]int{445, 456}, 0); len(got) != 2 {
		t.Fatalf("ExtendMix no-op widened to %d", len(got))
	}
}

func TestMetricsAPI(t *testing.T) {
	ws := ascc.WeightedSpeedup([]float64{2, 4}, []float64{2, 2})
	if ws != 1.5 {
		t.Fatalf("WeightedSpeedup = %v", ws)
	}
	h := ascc.HMeanFairness([]float64{2, 3}, []float64{2, 3})
	if h != 1 {
		t.Fatalf("HMeanFairness = %v", h)
	}
}

func TestStorageCostAPI(t *testing.T) {
	rep, err := ascc.StorageCost("AVGCC")
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalOverheadBits() != 20508 {
		t.Fatalf("AVGCC overhead = %d bits, want 20508", rep.TotalOverheadBits())
	}
	if _, err := ascc.StorageCost("nope"); err == nil {
		t.Fatal("unknown design accepted")
	}
}

func TestExperimentIDsResolve(t *testing.T) {
	ids := ascc.ExperimentIDs()
	if len(ids) != 21 {
		t.Fatalf("%d experiment ids, want 21", len(ids))
	}
	if _, err := ascc.RunExperiment(tinyConfig(), "nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// table5 is pure arithmetic: run it fully.
	res, err := ascc.RunExperiment(tinyConfig(), "table5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Table.String(), "AVGCC") {
		t.Fatal("table5 output missing AVGCC row")
	}
}

// TestHeadlineShape verifies the paper's core qualitative claim end to end
// through the public API: on a giver+taker mix, AVGCC beats the baseline
// in weighted speedup.
func TestHeadlineShape(t *testing.T) {
	cfg := ascc.DefaultConfig()
	cfg.WarmupInstr = 500_000
	cfg.MeasureInstr = 1_500_000
	runner := ascc.NewRunner(cfg)
	mix := []int{450, 462} // soplex (taker) + libquantum (streamer/giver)
	alone, err := runner.AloneCPIs(mix)
	if err != nil {
		t.Fatal(err)
	}
	base, err := runner.RunMix(mix, ascc.Baseline)
	if err != nil {
		t.Fatal(err)
	}
	avgcc, err := runner.RunMix(mix, ascc.AVGCC)
	if err != nil {
		t.Fatal(err)
	}
	wsBase := ascc.WeightedSpeedup(ascc.CPIs(base), alone)
	ws := ascc.WeightedSpeedup(ascc.CPIs(avgcc), alone)
	if ws <= wsBase {
		t.Fatalf("AVGCC weighted speedup %.4f not above baseline %.4f", ws, wsBase)
	}
}
