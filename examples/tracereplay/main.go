// tracereplay: drive the CMP with externally supplied traces instead of
// the built-in synthetic models. This example records two traces from the
// workload models, writes them in the binary trace format, and replays
// them through the simulator under the baseline and AVGCC — the same path
// a user would take with traces produced by their own tooling
// (see cmd/tracegen and the "addr,write,gap" CSV format).
//
//	go run ./examples/tracereplay
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ascc"
	"ascc/internal/trace"
)

func main() {
	dir, err := os.MkdirTemp("", "ascc-traces")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Record 400k references from two models into binary trace files, each
	// in its own address region (as two independent programs would be).
	specs := make([]ascc.TraceSpec, 0, 2)
	for i, id := range []int{445, 456} {
		p, err := ascc.BenchmarkByID(id)
		if err != nil {
			log.Fatal(err)
		}
		gen := p.NewGenerator(uint64(7+i), uint64(i)<<36, 8)
		path := filepath.Join(dir, fmt.Sprintf("%s.trc", p.Name))
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		w := trace.NewWriter(f)
		for j := 0; j < 400_000; j++ {
			if err := w.Write(gen.Next()); err != nil {
				log.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fi, _ := os.Stat(path)
		fmt.Printf("recorded %s: %d refs, %d bytes (%.1f B/ref)\n",
			path, w.Count(), fi.Size(), float64(fi.Size())/float64(w.Count()))
		specs = append(specs, ascc.TraceSpec{Path: path, BaseCPI: p.BaseCPI, Overlap: p.Overlap})
	}

	cfg := ascc.DefaultConfig()
	runner := ascc.NewRunner(cfg)
	fmt.Printf("\n%-10s %12s %12s\n", "policy", "core0 CPI", "core1 CPI")
	for _, pol := range []ascc.Policy{ascc.Baseline, ascc.AVGCC} {
		res, err := runner.RunTraces(specs, pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.3f %12.3f\n", pol, res.Cores[0].CPI(), res.Cores[1].CPI())
	}
}
