// qos: the §8 Quality-of-Service scenario — compare AVGCC with its
// QoS-aware extension on workloads where cooperative caching can hurt one
// of the applications, and show per-application CPI so the protection is
// visible.
//
//	go run ./examples/qos
package main

import (
	"fmt"
	"log"

	"ascc"
)

func main() {
	cfg := ascc.DefaultConfig()
	runner := ascc.NewRunner(cfg)

	// A streamer next to a capacity-sensitive app: the spilling mechanism
	// has little to gain and something to lose here.
	mixes := [][]int{{433, 473}, {429, 401}, {450, 462}}

	for _, mix := range mixes {
		baseline, err := runner.RunMix(mix, ascc.Baseline)
		if err != nil {
			log.Fatal(err)
		}
		avgcc, err := runner.RunMix(mix, ascc.AVGCC)
		if err != nil {
			log.Fatal(err)
		}
		qos, err := runner.RunMix(mix, ascc.QoSAVGCC)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("workload %s\n", ascc.MixName(mix))
		fmt.Printf("  %-12s %10s %10s %10s\n", "benchmark", "baseline", "AVGCC", "QoS-AVGCC")
		for i, id := range mix {
			p, _ := ascc.BenchmarkByID(id)
			fmt.Printf("  %-12s %10.3f %10.3f %10.3f\n", p.Name,
				baseline.Cores[i].CPI(), avgcc.Cores[i].CPI(), qos.Cores[i].CPI())
		}
		fmt.Println()
	}
	fmt.Println("QoSRatio throttles the saturation-counter increments whenever a cache")
	fmt.Println("misses more than the (sampled-set) estimate of the baseline cache, so")
	fmt.Println("the mechanism backs off where it would hurt (paper §8, Figure 11).")
}
