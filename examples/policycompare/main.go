// policycompare: evaluate every cooperative-caching design on one 4-core
// multiprogrammed workload — the paper's Figure 8 scenario for a single mix
// — reporting speedup, fairness and the memory-latency breakdown.
//
//	go run ./examples/policycompare
//	go run ./examples/policycompare 433 471 473 482
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"ascc"
)

func main() {
	mix := []int{445, 444, 456, 471} // givers + takers, Table 1's second mix
	if args := os.Args[1:]; len(args) > 0 {
		mix = mix[:0]
		for _, a := range args {
			id, err := strconv.Atoi(a)
			if err != nil {
				log.Fatalf("bad benchmark id %q", a)
			}
			mix = append(mix, id)
		}
	}

	cfg := ascc.DefaultConfig()
	runner := ascc.NewRunner(cfg)
	alone, err := runner.AloneCPIs(mix)
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := runner.RunMix(mix, ascc.Baseline)
	if err != nil {
		log.Fatal(err)
	}
	wsBase := ascc.WeightedSpeedup(ascc.CPIs(baseline), alone)
	fairBase := ascc.HMeanFairness(ascc.CPIs(baseline), alone)

	fmt.Printf("workload %s (%d cores)\n\n", ascc.MixName(mix), len(mix))
	fmt.Printf("%-10s %9s %9s %9s %9s %9s\n", "policy", "speedup", "fairness", "spills", "swaps", "offchip")
	for _, pol := range []ascc.Policy{
		ascc.CC, ascc.DSR, ascc.DSRDIP, ascc.ECC,
		ascc.ASCC, ascc.AVGCC, ascc.QoSAVGCC,
	} {
		res, err := runner.RunMix(mix, pol)
		if err != nil {
			log.Fatal(err)
		}
		ws := ascc.WeightedSpeedup(ascc.CPIs(res), alone)
		fair := ascc.HMeanFairness(ascc.CPIs(res), alone)
		var spills, swaps uint64
		for _, c := range res.Cores {
			spills += c.SpillsOut
			swaps += c.Swaps
		}
		fmt.Printf("%-10s %+8.1f%% %+8.1f%% %9d %9d %9d\n", pol,
			100*(ws/wsBase-1), 100*(fair/fairBase-1), spills, swaps, res.TotalOffChip())
	}
	fmt.Printf("\n(baseline off-chip accesses: %d)\n", baseline.TotalOffChip())
}
