// granularity: the Table 1 experiment for one workload — sweep the
// granularity at which ASCC tracks set saturation, from one counter per set
// to one counter per cache, and compare with AVGCC, which finds the
// granularity dynamically (different caches settle on different counts).
//
//	go run ./examples/granularity
package main

import (
	"fmt"
	"log"

	"ascc"
)

func main() {
	cfg := ascc.DefaultConfig()
	runner := ascc.NewRunner(cfg)
	mix := []int{433, 462, 450, 401} // two streamers + two takers

	alone, err := runner.AloneCPIs(mix)
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := runner.RunMix(mix, ascc.Baseline)
	if err != nil {
		log.Fatal(err)
	}
	wsBase := ascc.WeightedSpeedup(ascc.CPIs(baseline), alone)

	fmt.Printf("workload %s: ASCC granularity sweep (Table 1)\n\n", ascc.MixName(mix))
	res, err := ascc.RunExperiment(cfg, "table1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Table)

	avgcc, err := runner.RunMix(mix, ascc.AVGCC)
	if err != nil {
		log.Fatal(err)
	}
	ws := ascc.WeightedSpeedup(ascc.CPIs(avgcc), alone)
	fmt.Printf("AVGCC (dynamic granularity) on %s: %+.1f%%\n",
		ascc.MixName(mix), 100*(ws/wsBase-1))
	fmt.Println("\nAVGCC converges to a different counter count per cache: streaming")
	fmt.Println("caches stay coarse (their sets all behave alike), caches with per-set")
	fmt.Println("imbalance refine to fine-granular tracking.")
}
