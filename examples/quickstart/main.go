// Quickstart: run one multiprogrammed mix under the baseline private LLC
// and under AVGCC, and report the paper's headline metric (weighted-speedup
// improvement).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ascc"
)

func main() {
	cfg := ascc.DefaultConfig()
	runner := ascc.NewRunner(cfg)

	// gobmk (a small-working-set "giver") next to hmmer (a capacity-hungry
	// "taker") — the scenario cooperative caching is built for.
	mix := []int{445, 456}

	baseline, err := runner.RunMix(mix, ascc.Baseline)
	if err != nil {
		log.Fatal(err)
	}
	avgcc, err := runner.RunMix(mix, ascc.AVGCC)
	if err != nil {
		log.Fatal(err)
	}
	alone, err := runner.AloneCPIs(mix)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mix %s on a 2-core CMP with private LLCs\n\n", ascc.MixName(mix))
	fmt.Printf("%-12s %12s %12s %14s\n", "benchmark", "baseline CPI", "AVGCC CPI", "off-chip misses")
	for i, id := range mix {
		p, _ := ascc.BenchmarkByID(id)
		fmt.Printf("%-12s %12.3f %12.3f %7d -> %d\n", p.Name,
			baseline.Cores[i].CPI(), avgcc.Cores[i].CPI(),
			baseline.Cores[i].L2MemFills, avgcc.Cores[i].L2MemFills)
	}

	wsBase := ascc.WeightedSpeedup(ascc.CPIs(baseline), alone)
	wsAVGCC := ascc.WeightedSpeedup(ascc.CPIs(avgcc), alone)
	fmt.Printf("\nweighted speedup: %.3f -> %.3f (%+.1f%%)\n", wsBase, wsAVGCC, 100*(wsAVGCC/wsBase-1))
	fmt.Printf("spills: %d lines moved between the private caches, %d swaps\n",
		avgcc.Cores[0].SpillsOut+avgcc.Cores[1].SpillsOut,
		avgcc.Cores[0].Swaps+avgcc.Cores[1].Swaps)
}
