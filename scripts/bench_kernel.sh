#!/bin/sh
# Runs the cache-kernel benchmarks (packed kernel vs the frozen reference
# kernel in internal/cachesim/refmodel, i.e. the pre-rewrite implementation),
# the burst-engine A/B (the shipped default engine vs the frozen
# per-reference loop in internal/cmp/refstep_test.go), the fused L1->L2
# absorption A/B (EngineFused vs the default per-reference descent; add
# FUSED_EXPALL=1 for interleaved asccbench -exp all wall-clock pairs with
# CSV identity checks, ~15 min), the demoted batched below-L1 engine A/B
# (EngineBatched vs EngineRefStep; add L2BATCH_EXPALL=1 for its -exp all
# pairs), the persistent arena-store A/B (live stream synthesis vs mmap'd
# store replay; add STORE_EXPALL=1 for interleaved cold-vs-warm asccbench
# -exp all wall-clock pairs with CSV identity checks), the set-sampled
# fast-path A/B (sampled 1/8 vs full-fidelity end-to-end simulation plus
# the filter/replay stream halves; add SAMPLE_EXPALL=1 for interleaved
# full-vs-sampled asccbench -exp all wall-clock pairs with the `sampling`
# accuracy columns recorded), the coherence-probe
# scaleout A/B (broadcast scan vs set-sharded directory at 4/16/64 cores)
# and the end-to-end simulator benchmark, then writes BENCH_kernel.json
# with the headline numbers and appends one summary record (commit, date,
# expall median, kernel ns/block) to the BENCH_history.json array.
# Usage: [FUSED_EXPALL=1] [L2BATCH_EXPALL=1] [STORE_EXPALL=1] [SAMPLE_EXPALL=1] scripts/bench_kernel.sh [output.json]
set -eu

out=${1:-BENCH_kernel.json}
go=${GO:-go}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== kernel-level: packed vs reference (internal/cachesim) =="
$go test ./internal/cachesim -run '^$' -bench 'BenchmarkKernelThroughput' \
	-benchtime 2s -benchmem | tee "$tmp/kernel.txt"

echo "== stream: live generation vs packed arena replay (internal/trace) =="
$go test ./internal/trace -run '^$' -bench 'BenchmarkStreamThroughput' \
	-benchtime 2s -benchmem | tee "$tmp/stream.txt"

echo "== store: live synthesis vs persistent-store replay (internal/trace/store) =="
# The arena-store A/B (DESIGN.md 14): live workload-model generation — the
# cost every cold process pays per stream — against pure decode over a
# store-loaded mmap'd arena, plus the load itself (open + map + checksum +
# structural walk) amortised over the refs it unlocks.
$go test ./internal/trace/store -run '^$' -bench 'BenchmarkStoreThroughput' \
	-benchtime 2s -benchmem | tee "$tmp/store.txt"

echo "== burst: run-to-event engine vs frozen per-ref stepping (internal/cmp) =="
# The phase pair is the run-to-event rewrite's honest A/B: the shipped
# default engine (the per-reference descent under the burst kernel) against
# the pre-burst loop it replaced, frozen verbatim in refstep_test.go. One
# `go test` process runs
# both back to back; five rounds interleave the pairs so slow drift on a
# noisy host hits both sides, and the awk below takes per-side medians.
: >"$tmp/burst.txt"
for round in 1 2 3 4 5; do
	$go test ./internal/cmp -run '^$' -bench 'BenchmarkPhase(Burst|RefStep)$' \
		-benchtime 5x | tee -a "$tmp/burst.txt"
done

echo "== l1l2fused: fused L1->L2 absorption vs per-reference descent (internal/cmp) =="
# The fused kernel's own A/B (DESIGN.md 15): the fused L1->L2 kernel
# (EngineFused, BenchmarkPhaseFused) against the shipped default descent
# with every L2 demand exiting the kernel and resolving per reference
# (EngineRefStep, BenchmarkPhaseBurst). Results are bit-identical; only
# the in-kernel absorption of clean local L2 hits differs. This is the
# measurement behind §15's structural bound — fused lands at 0.85-0.96x.
: >"$tmp/l1l2fused.txt"
for round in 1 2 3 4 5; do
	$go test ./internal/cmp -run '^$' -bench 'BenchmarkPhase(Fused|Burst)$' \
		-benchtime 5x | tee -a "$tmp/l1l2fused.txt"
done

# Optional end-to-end wall-clock A/B over the full experiment sweep: five
# interleaved `asccbench -exp all` pairs, fused vs refstep engine, with
# every run's CSV demanded byte-identical. Costs about 15 minutes, so it
# only runs under FUSED_EXPALL=1; the committed BENCH_kernel.json was
# generated with it enabled.
if [ "${FUSED_EXPALL:-0}" = "1" ]; then
	echo "== l1l2fused: asccbench -exp all wall-clock pairs (FUSED_EXPALL=1) =="
	$go build -o "$tmp/asccbench" ./cmd/asccbench
	"$tmp/asccbench" -exp all -format csv -engine fused >"$tmp/fused-ref.csv"
	: >"$tmp/fusedexpall.txt"
	for round in 1 2 3 4 5; do
		for side in fused refstep; do
			t0=$(date +%s.%N)
			"$tmp/asccbench" -exp all -format csv -engine $side >"$tmp/fused-$side.csv"
			t1=$(date +%s.%N)
			awk -v s="$side" -v a="$t0" -v b="$t1" \
				'BEGIN { printf "%s %.3f\n", s, b - a }' | tee -a "$tmp/fusedexpall.txt"
			if ! cmp -s "$tmp/fused-ref.csv" "$tmp/fused-$side.csv"; then
				echo "FATAL: -engine $side -exp all CSV diverged from the fused reference" >&2
				exit 1
			fi
		done
	done
	awk '
	function median(a, n,    i, j, t) {
		for (i = 2; i <= n; i++) {
			t = a[i]
			for (j = i - 1; j >= 1 && a[j] > t; j--) a[j+1] = a[j]
			a[j+1] = t
		}
		if (n % 2) return a[(n+1)/2]
		return (a[n/2] + a[n/2+1]) / 2
	}
	$1 == "fused"   { fu[++nf] = $2 }
	$1 == "refstep" { rs[++nr] = $2 }
	END {
		f = median(fu, nf); r = median(rs, nr)
		printf "\"expall_pairs\": %d\n", nf
		printf "\"expall_csv_identical\": true\n"
		printf "\"expall_fused_s\": %.3f\n", f
		printf "\"expall_refstep_s\": %.3f\n", r
		printf "\"expall_speedup_vs_refstep\": %.3f\n", r / f
	}' "$tmp/fusedexpall.txt" >"$tmp/fusedexpall.medians"
fi

echo "== l2batch: demoted batched turn engine vs per-reference descent (internal/cmp) =="
# Same interleaved-pair discipline for the demoted batched below-L1 engine
# (DESIGN.md 12): EngineBatched (BenchmarkPhaseBatched) against the
# per-reference descent EngineRefStep (BenchmarkPhaseBurst). Results are
# bit-identical; only the stepping of the below-L1 work differs. The block
# stays in the report so the regression that demoted the engine to a
# fuzz/differential reference remains on record.
: >"$tmp/l2batch.txt"
for round in 1 2 3 4 5; do
	$go test ./internal/cmp -run '^$' -bench 'BenchmarkPhase(Batched|Burst)$' \
		-benchtime 5x | tee -a "$tmp/l2batch.txt"
done

# Optional end-to-end wall-clock A/B over the full experiment sweep: five
# interleaved `asccbench -exp all` pairs, batched vs refstep engine. Only
# runs under L2BATCH_EXPALL=1.
if [ "${L2BATCH_EXPALL:-0}" = "1" ]; then
	echo "== l2batch: asccbench -exp all wall-clock pairs (L2BATCH_EXPALL=1) =="
	[ -x "$tmp/asccbench" ] || $go build -o "$tmp/asccbench" ./cmd/asccbench
	: >"$tmp/expall.txt"
	for round in 1 2 3 4 5; do
		for side in batched refstep; do
			t0=$(date +%s.%N)
			"$tmp/asccbench" -exp all -engine $side >/dev/null
			t1=$(date +%s.%N)
			awk -v s="$side" -v a="$t0" -v b="$t1" \
				'BEGIN { printf "%s %.3f\n", s, b - a }' | tee -a "$tmp/expall.txt"
		done
	done
	awk '
	function median(a, n,    i, j, t) {
		for (i = 2; i <= n; i++) {
			t = a[i]
			for (j = i - 1; j >= 1 && a[j] > t; j--) a[j+1] = a[j]
			a[j+1] = t
		}
		if (n % 2) return a[(n+1)/2]
		return (a[n/2] + a[n/2+1]) / 2
	}
	$1 == "batched" { on[++no] = $2 }
	$1 == "refstep" { off[++nf] = $2 }
	END {
		o = median(on, no); f = median(off, nf)
		printf "\"expall_pairs\": %d\n", no
		printf "\"expall_batched_s\": %.3f\n", o
		printf "\"expall_refstep_s\": %.3f\n", f
		printf "\"expall_speedup_vs_refstep\": %.3f\n", f / o
	}' "$tmp/expall.txt" >"$tmp/expall.medians"
fi

# Optional end-to-end wall-clock A/B for the persistent store: five
# interleaved cold/warm `asccbench -exp all` pairs against a private store
# root. Each round wipes the root, runs cold (write-behind populates it),
# then warm (streams replay from mmap'd files), and requires the CSV
# output of all runs — including a store-off reference — byte-identical.
# The committed BENCH_kernel.json was generated with STORE_EXPALL=1.
if [ "${STORE_EXPALL:-0}" = "1" ]; then
	echo "== store: asccbench -exp all cold vs warm wall-clock pairs (STORE_EXPALL=1) =="
	[ -x "$tmp/asccbench" ] || $go build -o "$tmp/asccbench" ./cmd/asccbench
	storedir="$tmp/arena-store"
	"$tmp/asccbench" -exp all -format csv >"$tmp/store-off.csv"
	: >"$tmp/storepairs.txt"
	for round in 1 2 3 4 5; do
		for side in cold warm; do
			[ "$side" = cold ] && rm -rf "$storedir"
			t0=$(date +%s.%N)
			"$tmp/asccbench" -exp all -format csv -arena-store="$storedir" >"$tmp/store-$side.csv"
			t1=$(date +%s.%N)
			awk -v s="$side" -v a="$t0" -v b="$t1" \
				'BEGIN { printf "%s %.3f\n", s, b - a }' | tee -a "$tmp/storepairs.txt"
			if ! cmp -s "$tmp/store-off.csv" "$tmp/store-$side.csv"; then
				echo "FATAL: $side-store -exp all CSV diverged from store-off" >&2
				exit 1
			fi
		done
	done
	awk '
	function median(a, n,    i, j, t) {
		for (i = 2; i <= n; i++) {
			t = a[i]
			for (j = i - 1; j >= 1 && a[j] > t; j--) a[j+1] = a[j]
			a[j+1] = t
		}
		if (n % 2) return a[(n+1)/2]
		return (a[n/2] + a[n/2+1]) / 2
	}
	$1 == "cold" { cold[++nc] = $2 }
	$1 == "warm" { warm[++nw] = $2 }
	END {
		c = median(cold, nc); w = median(warm, nw)
		printf "\"expall_pairs\": %d\n", nc
		printf "\"expall_csv_identical\": true\n"
		printf "\"expall_cold_s\": %.3f\n", c
		printf "\"expall_warm_s\": %.3f\n", w
		printf "\"expall_warm_speedup_vs_cold\": %.3f\n", c / w
	}' "$tmp/storepairs.txt" >"$tmp/storeexpall.medians"
fi

echo "== sampling: filtered-stream halves, one-time filter vs sub-arena replay (internal/trace) =="
# The set-sampled fast path's stream-layer halves (DESIGN.md 16): "filter"
# is the one-time derivation of a 1/8 sub-arena from a packed full arena
# (decode + residue test + gap merge + set rewrite), "replay" the straight
# decode every subsequent sampled run pays, where each reference stands for
# ~8 source references.
$go test ./internal/trace -run '^$' -bench 'BenchmarkSampledStream' \
	-benchtime 2s | tee "$tmp/samplestream.txt"

echo "== sampling: sampled 1/8 vs full end-to-end simulation =="
# The fast path's per-run A/B: the end-to-end 4-core AVGCC simulation on
# the set-sampled fast path (BenchmarkSampledThroughput, -sample 1/8
# semantics) against the identical full-fidelity run
# (BenchmarkSimulatorThroughput), interleaved per round. instr/s counts
# retired full-stream instructions on both sides — the sampled stream
# carries the skipped references' instruction gaps — so the instr/s ratio
# is the fast path's honest per-run speedup.
: >"$tmp/samplingpair.txt"
for round in 1 2 3 4 5; do
	$go test . -run '^$' -bench 'Benchmark(Simulator|Sampled)Throughput$' \
		-benchtime 20x | tee -a "$tmp/samplingpair.txt"
done

# Optional end-to-end wall-clock A/B over the full experiment sweep: five
# interleaved `asccbench -exp all` pairs, full fidelity vs -sample 1/8,
# both arms against the same prewarmed arena store so the comparison
# isolates the fast path rather than stream synthesis. Every full-arm CSV
# must be byte-identical to the full reference (the sampled arm estimates,
# so only its own determinism across rounds is demanded), and the run
# records the `sampling` experiment's accuracy columns alongside the
# wall-clock medians. Only runs under SAMPLE_EXPALL=1; the committed
# BENCH_kernel.json was generated with it enabled.
if [ "${SAMPLE_EXPALL:-0}" = "1" ]; then
	echo "== sampling: asccbench -exp all full vs -sample 1/8 wall-clock pairs (SAMPLE_EXPALL=1) =="
	[ -x "$tmp/asccbench" ] || $go build -o "$tmp/asccbench" ./cmd/asccbench
	sampledir="$tmp/sample-store"
	"$tmp/asccbench" -exp all -format csv -arena-store="$sampledir" >"$tmp/sample-fullref.csv"
	"$tmp/asccbench" -exp all -sample 1/8 -format csv -arena-store="$sampledir" >"$tmp/sample-sampref.csv"
	: >"$tmp/samplepairs.txt"
	for round in 1 2 3 4 5; do
		for side in full sampled; do
			[ "$side" = full ] && sampleflags="" || sampleflags="-sample 1/8"
			t0=$(date +%s.%N)
			# shellcheck disable=SC2086
			"$tmp/asccbench" -exp all $sampleflags -format csv -arena-store="$sampledir" >"$tmp/sample-$side.csv"
			t1=$(date +%s.%N)
			awk -v s="$side" -v a="$t0" -v b="$t1" \
				'BEGIN { printf "%s %.3f\n", s, b - a }' | tee -a "$tmp/samplepairs.txt"
			[ "$side" = full ] && ref="$tmp/sample-fullref.csv" || ref="$tmp/sample-sampref.csv"
			if ! cmp -s "$ref" "$tmp/sample-$side.csv"; then
				echo "FATAL: $side -exp all CSV diverged from its reference run" >&2
				exit 1
			fi
		done
	done
	"$tmp/asccbench" -exp sampling -format csv -arena-store="$sampledir" >"$tmp/sample-acc.csv"
	{
		awk '
		function median(a, n,    i, j, t) {
			for (i = 2; i <= n; i++) {
				t = a[i]
				for (j = i - 1; j >= 1 && a[j] > t; j--) a[j+1] = a[j]
				a[j+1] = t
			}
			if (n % 2) return a[(n+1)/2]
			return (a[n/2] + a[n/2+1]) / 2
		}
		$1 == "full"    { fu[++nf] = $2 }
		$1 == "sampled" { sa[++ns] = $2 }
		END {
			f = median(fu, nf); s = median(sa, ns)
			printf "\"expall_pairs\": %d\n", nf
			printf "\"expall_csv_deterministic\": true\n"
			printf "\"expall_full_s\": %.3f\n", f
			printf "\"expall_sampled_s\": %.3f\n", s
			printf "\"expall_speedup_vs_full\": %.3f\n", f / s
		}' "$tmp/samplepairs.txt"
		# The accuracy table's error columns, pinned next to the speedup they
		# buy: CSV rows are sample,policy,CPI err% mean,CPI err% max,WS impr
		# full,WS impr sampled,WS err pp mean (comment lines start with #).
		awk -F, 'NR > 1 && $1 !~ /^#/ {
			s = $1; gsub("/", "of", s)
			printf "\"accuracy_%s_%s_cpi_err_pct_mean\": %s\n", s, $2, $3
			printf "\"accuracy_%s_%s_cpi_err_pct_max\": %s\n", s, $2, $4
			printf "\"accuracy_%s_%s_ws_err_pp_mean\": %s\n", s, $2, $7
		}' "$tmp/sample-acc.csv"
	} >"$tmp/sampleexpall.medians"
fi

echo "== scaleout: coherence probe, broadcast vs directory at 4/16/64 cores =="
# The directory A/B (DESIGN.md 13): one HolderMask query — the primitive
# under every miss, eviction and upgrade — against the O(cores) broadcast
# scan it replaced, at each group width. Five rounds, per-cell medians. The
# acceptance bar: the 64-core directory probe costs at most 2x the 4-core
# broadcast scan (i.e. probe cost stays flat as the machine grows).
: >"$tmp/scaleout.txt"
for round in 1 2 3 4 5; do
	$go test ./internal/cachesim -run '^$' -bench 'BenchmarkCoherenceProbe' \
		-benchtime 2000000x | tee -a "$tmp/scaleout.txt"
done

echo "== end-to-end: 4-core AVGCC simulation (BenchmarkSimulatorThroughput) =="
$go test . -run '^$' -bench 'BenchmarkSimulatorThroughput' \
	-benchtime 10x -benchmem | tee "$tmp/e2e.txt"

awk '
/BenchmarkKernelThroughput\/packed/ { pns=$3; pblk=$5 }
/BenchmarkKernelThroughput\/ref/    { rns=$3; rblk=$5 }
/packed.*allocs\/op/ { for (i=1;i<=NF;i++) if ($i=="allocs/op") pal=$(i-1) }
END {
	printf "  \"kernel\": {\n"
	printf "    \"geometry\": \"256KiB 8-way 64B lines (512 sets), ~75%% hit demand stream\",\n"
	printf "    \"packed_ns_per_block\": %s,\n", pns
	printf "    \"packed_blocks_per_sec\": %s,\n", pblk
	printf "    \"packed_allocs_per_op\": %s,\n", pal
	printf "    \"ref_ns_per_block\": %s,\n", rns
	printf "    \"ref_blocks_per_sec\": %s,\n", rblk
	printf "    \"speedup_vs_ref\": %.2f\n", rns / pns
	printf "  },\n"
}' "$tmp/kernel.txt" >"$tmp/kernel.json"

awk '
/BenchmarkStreamThroughput\/live/ {
	lns=$3
	for (i=1; i<=NF; i++) if ($i=="refs/s") lrefs=$(i-1)
}
/BenchmarkStreamThroughput\/replay/ {
	rns=$3
	for (i=1; i<=NF; i++) {
		if ($i=="refs/s") rrefs=$(i-1)
		if ($i=="allocs/op") ral=$(i-1)
	}
}
END {
	printf "  \"replay\": {\n"
	printf "    \"stream\": \"composite Zipf+walk+hot mixture, 256-reference batches\",\n"
	printf "    \"live_refs_per_sec\": %s,\n", lrefs
	printf "    \"replay_refs_per_sec\": %s,\n", rrefs
	printf "    \"replay_allocs_per_op\": %s,\n", ral
	printf "    \"speedup_vs_live\": %.2f\n", lns / rns
	printf "  },\n"
}' "$tmp/stream.txt" >"$tmp/stream.json"

awk -v expall="$tmp/storeexpall.medians" '
/BenchmarkStoreThroughput\/live/ {
	lns=$3
	for (i=1; i<=NF; i++) if ($i=="refs/s") lrefs=$(i-1)
}
/BenchmarkStoreThroughput\/store-replay/ {
	rns=$3
	for (i=1; i<=NF; i++) {
		if ($i=="refs/s") rrefs=$(i-1)
		if ($i=="allocs/op") ral=$(i-1)
	}
}
/BenchmarkStoreThroughput\/load/ {
	for (i=1; i<=NF; i++) if ($i=="refs/s") ldrefs=$(i-1)
}
END {
	printf "  \"store\": {\n"
	printf "    \"stream\": \"composite Zipf+walk+hot mixture, 256-reference batches, 2M-ref mmap-backed store file\",\n"
	printf "    \"live_refs_per_sec\": %s,\n", lrefs
	printf "    \"store_replay_refs_per_sec\": %s,\n", rrefs
	printf "    \"store_replay_allocs_per_op\": %s,\n", ral
	printf "    \"load_validate_refs_per_sec\": %s,\n", ldrefs
	printf "    \"speedup_vs_live\": %.2f", lns / rns
	while ((getline line < expall) > 0) printf ",\n    %s", line
	printf "\n  },\n"
}' "$tmp/store.txt" >"$tmp/store.json"

awk '
function median(a, n,    i, j, t) {
	for (i = 2; i <= n; i++) {
		t = a[i]
		for (j = i - 1; j >= 1 && a[j] > t; j--) a[j+1] = a[j]
		a[j+1] = t
	}
	if (n % 2) return a[(n+1)/2]
	return (a[n/2] + a[n/2+1]) / 2
}
/BenchmarkPhaseBurst/ {
	bns[++nb] = $3
	for (i = 1; i <= NF; i++) if ($i == "instr/s") bis[nb] = $(i-1)
}
/BenchmarkPhaseRefStep/ {
	rns[++nr] = $3
	for (i = 1; i <= NF; i++) if ($i == "instr/s") ris[nr] = $(i-1)
}
END {
	b = median(bns, nb); r = median(rns, nr)
	printf "  \"burst\": {\n"
	printf "    \"workload\": \"4-core AVGCC phase stepping, 1M instructions per core\",\n"
	printf "    \"rounds\": %d,\n", nb
	printf "    \"burst_ns_per_run\": %d,\n", b
	printf "    \"burst_instr_per_sec\": %d,\n", median(bis, nb)
	printf "    \"refstep_ns_per_run\": %d,\n", r
	printf "    \"refstep_instr_per_sec\": %d,\n", median(ris, nr)
	printf "    \"speedup_vs_refstep\": %.2f\n", r / b
	printf "  },\n"
}' "$tmp/burst.txt" >"$tmp/burst.json"

awk -v expall="$tmp/fusedexpall.medians" '
function median(a, n,    i, j, t) {
	for (i = 2; i <= n; i++) {
		t = a[i]
		for (j = i - 1; j >= 1 && a[j] > t; j--) a[j+1] = a[j]
		a[j+1] = t
	}
	if (n % 2) return a[(n+1)/2]
	return (a[n/2] + a[n/2+1]) / 2
}
/BenchmarkPhaseFused/ { fns[++nf] = $3 }
/BenchmarkPhaseBurst/ { dns[++nd] = $3 }
END {
	f = median(fns, nf); d = median(dns, nd)
	printf "  \"l1l2fused\": {\n"
	printf "    \"workload\": \"4-core AVGCC phase stepping, 1M instructions per core, fused L1->L2 absorption (EngineFused) vs per-reference descent (EngineRefStep)\",\n"
	printf "    \"rounds\": %d,\n", nf
	printf "    \"fused_ns_per_run\": %d,\n", f
	printf "    \"descent_ns_per_run\": %d,\n", d
	printf "    \"speedup_vs_descent\": %.3f", d / f
	while ((getline line < expall) > 0) printf ",\n    %s", line
	printf "\n  },\n"
}' "$tmp/l1l2fused.txt" >"$tmp/l1l2fused.json"

awk -v expall="$tmp/expall.medians" '
function median(a, n,    i, j, t) {
	for (i = 2; i <= n; i++) {
		t = a[i]
		for (j = i - 1; j >= 1 && a[j] > t; j--) a[j+1] = a[j]
		a[j+1] = t
	}
	if (n % 2) return a[(n+1)/2]
	return (a[n/2] + a[n/2+1]) / 2
}
/BenchmarkPhaseBatched/ { bns[++nb] = $3 }
/BenchmarkPhaseBurst/   { uns[++nu] = $3 }
END {
	b = median(bns, nb); u = median(uns, nu)
	printf "  \"l2batch\": {\n"
	printf "    \"workload\": \"4-core AVGCC phase stepping, 1M instructions per core, demoted batched turn engine (EngineBatched) vs per-reference descent (EngineRefStep)\",\n"
	printf "    \"rounds\": %d,\n", nb
	printf "    \"batched_ns_per_run\": %d,\n", b
	printf "    \"descent_ns_per_run\": %d,\n", u
	printf "    \"speedup_vs_descent\": %.3f", u / b
	while ((getline line < expall) > 0) printf ",\n    %s", line
	printf "\n  },\n"
}' "$tmp/l2batch.txt" >"$tmp/l2batch.json"

awk '
function median(a, n,    i, j, t) {
	for (i = 2; i <= n; i++) {
		t = a[i]
		for (j = i - 1; j >= 1 && a[j] > t; j--) a[j+1] = a[j]
		a[j+1] = t
	}
	if (n % 2) return a[(n+1)/2]
	return (a[n/2] + a[n/2+1]) / 2
}
/BenchmarkCoherenceProbe\// {
	split($1, parts, "/"); sub(/-[0-9]+$/, "", parts[2])
	cell = parts[2]
	v[cell, ++n[cell]] = $3
}
END {
	printf "  \"scaleout\": {\n"
	printf "    \"workload\": \"one HolderMask coherence probe over a 4096-block resident mix, per-cell medians\",\n"
	printf "    \"rounds\": %d,\n", n["directory-64cores"]
	first = 1
	for (cores = 4; cores <= 64; cores *= 4) {
		for (mi = 1; mi <= 2; mi++) {
			mode = (mi == 1) ? "broadcast" : "directory"
			cell = mode "-" cores "cores"
			m = n[cell]
			for (i = 1; i <= m; i++) tmp[i] = v[cell, i]
			printf "    \"%s_%dcores_ns_per_probe\": %.2f,\n", mode, cores, median(tmp, m)
		}
	}
	for (i = 1; i <= n["broadcast-4cores"]; i++) tmp[i] = v["broadcast-4cores", i]
	b4 = median(tmp, n["broadcast-4cores"])
	for (i = 1; i <= n["directory-64cores"]; i++) tmp[i] = v["directory-64cores", i]
	d64 = median(tmp, n["directory-64cores"])
	printf "    \"dir64_vs_broadcast4_ratio\": %.2f\n", d64 / b4
	printf "  },\n"
}' "$tmp/scaleout.txt" >"$tmp/scaleout.json"

awk -v expall="$tmp/sampleexpall.medians" '
function median(a, n,    i, j, t) {
	for (i = 2; i <= n; i++) {
		t = a[i]
		for (j = i - 1; j >= 1 && a[j] > t; j--) a[j+1] = a[j]
		a[j+1] = t
	}
	if (n % 2) return a[(n+1)/2]
	return (a[n/2] + a[n/2+1]) / 2
}
/BenchmarkSampledStream\/filter/ {
	for (i = 1; i <= NF; i++) if ($i == "refs/s") flt = $(i-1)
}
/BenchmarkSampledStream\/replay/ {
	for (i = 1; i <= NF; i++) if ($i == "refs/s") rep = $(i-1)
}
/BenchmarkSimulatorThroughput/ {
	for (i = 1; i <= NF; i++) if ($i == "instr/s") fi[++nf] = $(i-1)
}
/BenchmarkSampledThroughput/ {
	for (i = 1; i <= NF; i++) if ($i == "instr/s") si[++ns] = $(i-1)
}
END {
	f = median(fi, nf); s = median(si, ns)
	printf "  \"sampling\": {\n"
	printf "    \"workload\": \"4-core AVGCC, 1M instructions per core, set-sampled 1/8 (pre-filtered sub-arena, scale-8 geometry) vs full fidelity; instr/s counts retired full-stream instructions on both sides\",\n"
	printf "    \"rounds\": %d,\n", nf
	printf "    \"filter_refs_per_sec\": %s,\n", flt
	printf "    \"sampled_replay_refs_per_sec\": %s,\n", rep
	printf "    \"full_instr_per_sec\": %d,\n", f
	printf "    \"sampled_instr_per_sec\": %d,\n", s
	printf "    \"run_speedup_vs_full\": %.2f", s / f
	while ((getline line < expall) > 0) printf ",\n    %s", line
	printf "\n  },\n"
}' "$tmp/samplestream.txt" "$tmp/samplingpair.txt" >"$tmp/sampling.json"

awk '
/BenchmarkSimulatorThroughput/ {
	ns=$3
	for (i=1; i<=NF; i++) {
		if ($i=="blocks/s") blk=$(i-1)
		if ($i=="instr/s") ins=$(i-1)
		if ($i=="allocs/op") al=$(i-1)
	}
}
END {
	printf "  \"end_to_end\": {\n"
	printf "    \"workload\": \"4-core AVGCC, 1M instructions per core\",\n"
	printf "    \"ns_per_run\": %s,\n", ns
	printf "    \"blocks_per_sec\": %s,\n", blk
	printf "    \"instr_per_sec\": %s,\n", ins
	printf "    \"allocs_per_run\": %s\n", al
	printf "  }\n"
}' "$tmp/e2e.txt" >"$tmp/e2e.json"

{
	echo '{'
	echo '  "note": "generated by scripts/bench_kernel.sh (make bench-baseline); ref is the pre-rewrite kernel, kept verbatim as internal/cachesim/refmodel",'
	printf '  "go": "%s",\n' "$($go env GOVERSION)"
	cat "$tmp/kernel.json" "$tmp/stream.json" "$tmp/store.json" "$tmp/burst.json" "$tmp/l1l2fused.json" "$tmp/l2batch.json" "$tmp/sampling.json" "$tmp/scaleout.json" "$tmp/e2e.json"
	echo '}'
} >"$out"

echo "wrote $out:"
cat "$out"

# Append one summary record per run to the BENCH_history.json array (in the
# output file's directory), so kernel throughput and expall wall-clock can
# be tracked across commits without diffing whole BENCH_kernel.json files.
# The expall median is the fused-engine -exp all median when FUSED_EXPALL=1
# ran this invocation, else null.
hist=$(dirname "$out")/BENCH_history.json
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
kns=$(awk -F': ' '/"packed_ns_per_block"/ { gsub(/,/, "", $2); print $2 }' "$out")
emed=null
if [ -f "$tmp/fusedexpall.medians" ]; then
	emed=$(awk -F': ' '/"expall_fused_s"/ { print $2 }' "$tmp/fusedexpall.medians")
fi
smed=null
if [ -f "$tmp/sampleexpall.medians" ]; then
	smed=$(awk -F': ' '/"expall_sampled_s"/ { print $2 }' "$tmp/sampleexpall.medians")
fi
rec=$(printf '{"commit": "%s", "date": "%s", "expall_median_s": %s, "sampled_expall_median_s": %s, "kernel_ns_per_block": %s}' \
	"$commit" "$(date -u +%Y-%m-%dT%H:%M:%SZ)" "$emed" "$smed" "${kns:-null}")
{
	echo '['
	if [ -s "$hist" ]; then
		# One record per line between the brackets; re-terminate the old
		# last record with a comma before appending the new one.
		sed '1d;$d' "$hist" | sed '$ s/$/,/'
	fi
	printf '  %s\n' "$rec"
	echo ']'
} >"$tmp/hist.json"
mv "$tmp/hist.json" "$hist"
echo "appended to $hist: $rec"
