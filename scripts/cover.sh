#!/bin/sh
# Aggregate statement coverage over internal/... with a hard floor.
#
# Usage: sh scripts/cover.sh [min_percent]
#
# The floor (default 86.0) sits a little under the measured baseline
# (88.3% at the time the gate was added) so routine churn passes but a PR
# that lands untested simulator code fails loudly. Raise the floor when
# coverage rises; never lower it to make a PR pass.
set -eu

GO=${GO:-go}
MIN=${1:-86.0}
PROFILE=${PROFILE:-coverage.out}

$GO test -count=1 -coverprofile="$PROFILE" ./internal/... >/dev/null

TOTAL=$($GO tool cover -func="$PROFILE" | awk '/^total:/ {gsub(/%/, "", $3); print $3}')
if [ -z "$TOTAL" ]; then
    echo "cover.sh: could not parse total coverage from $PROFILE" >&2
    exit 1
fi

echo "internal/... statement coverage: ${TOTAL}% (floor ${MIN}%)"
awk -v got="$TOTAL" -v min="$MIN" 'BEGIN { exit !(got+0 < min+0) }' && {
    echo "cover.sh: coverage ${TOTAL}% fell below the ${MIN}% floor" >&2
    exit 1
}
exit 0
