#!/bin/sh
# Captures paired CPU profiles of the fused L1->L2 engine (the shipped
# default) and the per-reference descent engine (-engine refstep) over the
# identical 4-core AVGCC mix, then summarises where the cycles moved: the
# per-engine hot-function tables plus a pprof diff of fused relative to
# refstep (negative flat time = cycles the absorption removed). The numbers
# back DESIGN.md 15's honest A/B analysis.
# Usage: scripts/profile_diff.sh [outdir]   (or: make profile-diff)
set -eu

out=${1:-profile-diff}
go=${GO:-go}
mkdir -p "$out"
mix="445+401+444+456"

for engine in fused refstep; do
	echo "== profiling -engine $engine =="
	$go run ./cmd/asccbench -mix "$mix" -policy AVGCC -engine $engine \
		-cpuprofile "$out/cpu-$engine.prof" >/dev/null
done

echo "== hot functions: fused =="
$go tool pprof -top -nodecount 15 "$out/cpu-fused.prof"
echo "== hot functions: refstep =="
$go tool pprof -top -nodecount 15 "$out/cpu-refstep.prof"
echo "== diff: fused relative to refstep (negative flat = cycles removed) =="
$go tool pprof -top -nodecount 20 -diff_base "$out/cpu-refstep.prof" "$out/cpu-fused.prof"
echo "profiles written to $out/"
