module ascc

go 1.22
