// Benchmarks that regenerate every table and figure of the paper's
// evaluation (one Benchmark per artefact — see DESIGN.md §4). Headline
// numbers are attached via b.ReportMetric so `go test -bench` output
// doubles as a compact reproduction report; EXPERIMENTS.md holds the
// paper-versus-measured discussion.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// One artefact:
//
//	go test -bench=BenchmarkFig8
package ascc_test

import (
	"testing"

	"ascc"
)

// benchConfig is the configuration used by the reproduction benches.
func benchConfig() ascc.Config { return ascc.DefaultConfig() }

// runExperiment executes one experiment per bench iteration and reports
// selected headline values as custom metrics.
func runExperiment(b *testing.B, id string, metricKeys ...string) {
	b.Helper()
	cfg := benchConfig()
	var last ascc.ExperimentResult
	for i := 0; i < b.N; i++ {
		res, err := ascc.RunExperiment(cfg, id)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, key := range metricKeys {
		if v, ok := last.Values[key]; ok {
			b.ReportMetric(v*100, "pct_"+key)
		}
	}
}

// BenchmarkFig1 regenerates Figure 1 (MPKI/CPI vs enabled ways).
func BenchmarkFig1(b *testing.B) {
	runExperiment(b, "fig1")
}

// BenchmarkFig2 regenerates Figure 2 (favored vs constant sets).
func BenchmarkFig2(b *testing.B) {
	runExperiment(b, "fig2")
}

// BenchmarkFig4 regenerates Figure 4 (design breakdown: LRS/LMS/GMS/
// LMS+BIP/GMS+SABIP/DSR/ASCC).
func BenchmarkFig4(b *testing.B) {
	runExperiment(b, "fig4", "geomean/ASCC", "geomean/LMS", "geomean/DSR")
}

// BenchmarkFig5 regenerates Figure 5 (the neutral state: ASCC vs ASCC-2S,
// DSR vs DSR-3S).
func BenchmarkFig5(b *testing.B) {
	runExperiment(b, "fig5", "geomean/ASCC", "geomean/ASCC-2S", "geomean/DSR-3S")
}

// BenchmarkTable1 regenerates Table 1 (the ASCC granularity sweep).
func BenchmarkTable1(b *testing.B) {
	runExperiment(b, "table1")
}

// BenchmarkFig7 regenerates Figure 7 (2-core speedups).
func BenchmarkFig7(b *testing.B) {
	runExperiment(b, "fig7", "geomean/ASCC", "geomean/AVGCC", "geomean/DSR")
}

// BenchmarkFig8 regenerates Figure 8 (4-core speedups).
func BenchmarkFig8(b *testing.B) {
	runExperiment(b, "fig8", "geomean/ASCC", "geomean/AVGCC", "geomean/DSR")
}

// BenchmarkFig9 regenerates Figure 9 (4-core fairness).
func BenchmarkFig9(b *testing.B) {
	runExperiment(b, "fig9", "geomean/ASCC", "geomean/AVGCC")
}

// BenchmarkSharedLLC regenerates the §6.1 shared-cache comparison.
func BenchmarkSharedLLC(b *testing.B) {
	runExperiment(b, "shared", "perf/2core", "perf/4core")
}

// BenchmarkFig10 regenerates Figure 10 (average memory latency and the
// local/remote/memory breakdown).
func BenchmarkFig10(b *testing.B) {
	runExperiment(b, "fig10", "aml2/AVGCC", "aml4/AVGCC", "aml2/ASCC")
}

// BenchmarkMultithreaded regenerates the §6.3 multithreaded study.
func BenchmarkMultithreaded(b *testing.B) {
	runExperiment(b, "mt", "geomean/ASCC", "geomean/AVGCC")
}

// BenchmarkPrefetcher regenerates the §6.3 stride-prefetcher sensitivity.
func BenchmarkPrefetcher(b *testing.B) {
	runExperiment(b, "prefetch", "AVGCC/2core", "AVGCC/4core")
}

// BenchmarkTable4 regenerates Table 4 (off-chip access reduction vs cache
// size).
func BenchmarkTable4(b *testing.B) {
	runExperiment(b, "table4", "reduction4/1MB", "reduction2/1MB")
}

// BenchmarkSpillStats regenerates the §6.4 spill-behaviour comparison.
func BenchmarkSpillStats(b *testing.B) {
	runExperiment(b, "spills", "hitsPerSpill2/AVGCC", "hitsPerSpill4/AVGCC")
}

// BenchmarkLimitedCounters regenerates the §7 limited-counter study.
func BenchmarkLimitedCounters(b *testing.B) {
	runExperiment(b, "limited", "geomean/div1", "geomean/div32")
}

// BenchmarkFig11 regenerates Figure 11 (QoS-aware AVGCC).
func BenchmarkFig11(b *testing.B) {
	runExperiment(b, "fig11", "geomean/AVGCC", "geomean/QoS-AVGCC", "geomean4/QoS-AVGCC")
}

// BenchmarkTable5 regenerates Table 5 (storage cost; pure arithmetic).
func BenchmarkTable5(b *testing.B) {
	runExperiment(b, "table5", "avgccPct", "qosPct")
}

// BenchmarkSimulatorThroughput measures raw simulation speed: instructions
// and cache-block references simulated per second on a 4-core AVGCC run
// (the heaviest configuration). A fresh System is built every iteration —
// policies and caches carry state, so a reused system would simulate a
// different (warmer) machine — but construction happens with the timer
// stopped: the metric is the simulator's steady-state speed, not workload-
// model setup.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := benchConfig()
	cfg.WarmupInstr = 0
	cfg.MeasureInstr = 1_000_000
	mix := []int{445, 444, 456, 471}
	runner := ascc.NewRunner(cfg)
	b.ResetTimer()
	var instr, blocks uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := runner.NewMixSystem(mix, ascc.AVGCC)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res := sys.Run(cfg.WarmupInstr, cfg.MeasureInstr)
		for _, c := range res.Cores {
			instr += c.Instructions
			blocks += c.L1Accesses
		}
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "instr/s")
	b.ReportMetric(float64(blocks)/b.Elapsed().Seconds(), "blocks/s")
}

// BenchmarkSampledThroughput is BenchmarkSimulatorThroughput on the
// set-sampled fast path (DESIGN.md §16, -sample 1/8): same mix, same
// instruction budget, 1/8 of the LLC sets on pre-filtered streams. instr/s
// counts retired (full-stream) instructions, so the ratio to the full
// benchmark is the fast path's end-to-end speedup; blocks/s stays raw to
// show the actual simulated reference rate.
func BenchmarkSampledThroughput(b *testing.B) {
	cfg := benchConfig()
	cfg.WarmupInstr = 0
	cfg.MeasureInstr = 1_000_000
	cfg.SampleDen = 8
	mix := []int{445, 444, 456, 471}
	runner := ascc.NewRunner(cfg)
	b.ResetTimer()
	var instr, blocks uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := runner.NewMixSystem(mix, ascc.AVGCC)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res := sys.Run(cfg.WarmupInstr, cfg.MeasureInstr)
		for _, c := range res.Cores {
			instr += c.Instructions
			blocks += c.L1Accesses
		}
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "instr/s")
	b.ReportMetric(float64(blocks)/b.Elapsed().Seconds(), "blocks/s")
}

// BenchmarkSampling regenerates the set-sampling accuracy table.
func BenchmarkSampling(b *testing.B) {
	runExperiment(b, "sampling")
}

// BenchmarkAblation regenerates the design-choice ablation study
// (DESIGN.md §6).
func BenchmarkAblation(b *testing.B) {
	runExperiment(b, "ablation")
}

// BenchmarkFutureWork regenerates the §9 future-work exploration (counter
// limits, alternative metrics).
func BenchmarkFutureWork(b *testing.B) {
	runExperiment(b, "futurework")
}
